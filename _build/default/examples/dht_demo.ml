(* DHT demo: the future-work alternative from the paper's footnote 5.

   AShare keeps its metadata index fully replicated via broadcast; a
   DHT would shrink that state to O(replicas) per file at the price of
   multi-hop lookups — and, as the paper warns, real trouble with
   Byzantine routers.  This demo walks through both effects.

   Run with:  dune exec examples/dht_demo.exe *)

module Dht = Atum_apps.Dht

let () =
  let n = 256 in
  let d = Dht.build ~replicas:4 ~node_ids:(List.init n Fun.id) () in
  Printf.printf "Chord ring over %d nodes\n" (Dht.size d);

  (* Clean lookups: logarithmic routing. *)
  let r = Dht.lookup d ~from:0 ~key:"alice/song.mp3" in
  (match r.Dht.responsible with
  | Some owner ->
    Printf.printf "lookup alice/song.mp3: stored at node %d, %d hops\n" owner r.Dht.hops
  | None -> print_endline "lookup failed?!");
  Printf.printf "replica holders: %s\n"
    (String.concat ", " (List.map string_of_int (Dht.holders d "alice/song.mp3")));
  Printf.printf "mean lookup cost at N=%d: %.2f hops (log2 N = %.1f)\n" n
    (Dht.mean_lookup_hops d ~samples:500 ~seed:1)
    (log (float_of_int n) /. log 2.0);

  (* Churn: 25% leave; stabilization repairs the fingers. *)
  let rng = Atum_util.Rng.create 2 in
  List.iter (Dht.mark_dead d) (Atum_util.Rng.sample_without_replacement rng 64 (List.init n Fun.id));
  Printf.printf "after 25%% departures (stale fingers): success %.3f, %.2f hops\n"
    (Dht.lookup_success_rate d ~samples:400 ~seed:3)
    (Dht.mean_lookup_hops d ~samples:400 ~seed:3);
  let d = Dht.rebuild d in
  Printf.printf "after stabilization: success %.3f, %.2f hops\n"
    (Dht.lookup_success_rate d ~samples:400 ~seed:3)
    (Dht.mean_lookup_hops d ~samples:400 ~seed:3);

  (* Byzantine routers: the failure mode stabilization cannot fix. *)
  List.iter (Dht.mark_byzantine d)
    (Atum_util.Rng.sample_without_replacement rng 38 (List.init n Fun.id));
  Printf.printf
    "with ~20%% quiet Byzantine routers: success %.3f — this is why AShare\n\
     broadcast-replicates its index instead (paper §4.2, footnote 5)\n"
    (Dht.lookup_success_rate d ~samples:400 ~seed:5)
