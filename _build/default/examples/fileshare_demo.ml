(* AShare demo (§4.2): PUT / GET / SEARCH / DELETE with randomized
   replication and integrity checks, including a corrupted-replica
   read that transparently re-pulls from a correct holder.

   Run with:  dune exec examples/fileshare_demo.exe *)

module Atum = Atum_core.Atum
module Ashare = Atum_apps.Ashare

let () =
  (* Grow a 16-node deployment, then layer AShare with rho = 4. *)
  let built = Atum_workload.Builder.grow ~n:16 ~seed:5 () in
  let atum = built.Atum_workload.Builder.atum in
  let share = Ashare.attach atum ~rho:4 in
  let members = Atum_workload.Builder.correct_members built in
  let alice = List.nth members 0 and reader = List.nth members 5 in

  (* PUT: broadcast metadata; the feedback loop replicates to rho. *)
  let song = String.concat "" (List.init 64 (fun i -> Printf.sprintf "note-%03d " i)) in
  Ashare.put share ~owner:alice ~name:"song.txt" ~chunk_count:4 (Ashare.Real song);
  Ashare.put share ~owner:alice ~name:"summer-photos.zip" (Ashare.Real (String.make 4096 'p'));
  Atum.run_for atum 2_000.0;

  let owner = Ashare.owner_name alice in
  Printf.printf "replicas of song.txt after the feedback loop: %d (target rho=4)\n"
    (Ashare.replica_count share ~node:reader ~owner ~name:"song.txt");

  (* SEARCH over the reader's own soft-state index. *)
  let hits = Ashare.search share ~node:reader "song" in
  Printf.printf "search \"song\": %s\n"
    (String.concat ", " (List.map (fun (o, n) -> o ^ "/" ^ n) hits));

  (* GET with integrity verification. *)
  Ashare.get share ~reader ~owner ~name:"song.txt" ~k:(function
    | Some r ->
      Printf.printf "GET song.txt: %.3fs, %.2f MB pulled, %d corrupted chunks, intact=%b\n"
        r.Ashare.latency r.Ashare.pulled_mb r.Ashare.corrupted_chunks
        (r.Ashare.data = Some song)
    | None -> print_endline "GET failed");
  Atum.run_for atum 120.0;

  (* Corrupt a replica: a Byzantine holder serves garbage, the reader
     detects it via the chunk digests and re-pulls. *)
  let sys = Atum.system atum in
  let h_bad = List.nth members 8 and h_good = List.nth members 9 in
  Atum_core.System.make_byzantine sys h_bad;
  Ashare.place_replicas share ~owner:alice ~name:"song.txt" ~holders:[ h_bad; h_good ];
  Ashare.get share ~reader ~owner ~name:"song.txt" ~k:(function
    | Some r ->
      Printf.printf
        "GET with a corrupting holder: %.3fs, %d chunks failed their digest and were re-pulled, intact=%b\n"
        r.Ashare.latency r.Ashare.corrupted_chunks (r.Ashare.data = Some song)
    | None -> print_endline "GET failed");
  Atum.run_for atum 120.0;

  (* DELETE drops metadata and replicas everywhere. *)
  Ashare.delete share ~owner:alice ~name:"summer-photos.zip";
  Atum.run_for atum 120.0;
  Printf.printf "after DELETE, search \"photos\": %d hits\n"
    (List.length (Ashare.search share ~node:reader "photos"));
  Printf.printf "indexes converged across all correct nodes: %b\n"
    (Ashare.indexes_converged share)
