(* AStream demo (§4.3): tier 1 sends chunk digests through Atum
   broadcast; tier 2 pushes the stream data over a spanning forest in
   which every correct node has at least one correct parent.

   Run with:  dune exec examples/streaming_demo.exe *)

module Atum = Atum_core.Atum
module Astream = Atum_apps.Astream

let () =
  let built = Atum_workload.Builder.grow ~n:30 ~seed:9 () in
  let atum = built.Atum_workload.Builder.atum in
  let source = built.Atum_workload.Builder.first in

  (* Tier 1: disseminate the digest of the first stream chunk. *)
  let chunk = String.make 4096 's' in
  let digest = Atum_crypto.Sha256.digest_hex chunk in
  let digests_received = ref 0 in
  Atum.on_deliver atum (fun _ ~bid:_ ~origin:_ body ->
      if body = digest then incr digests_received);
  ignore (Atum.broadcast atum ~from:source digest);
  Atum.run_for atum 60.0;
  Printf.printf "tier 1: digest delivered to %d/%d nodes\n" !digests_received (Atum.size atum);

  (* Tier 2: build the forest and measure dissemination latency. *)
  let demo cycles_used =
    let forest = Astream.build ~atum ~source ~cycles_used ~seed:11 in
    (match Astream.check_forest forest with
    | Ok () -> Printf.printf "tier 2 (%d cycle%s): forest complete — every node has a correct path\n"
                 cycles_used (if cycles_used = 1 then "" else "s")
    | Error e -> Printf.printf "forest problem: %s\n" e);
    let stats = Astream.stream forest ~chunk_mb:1.0 in
    Printf.printf "  mean per-chunk latency %.0f ms, max %.0f ms, first-chunk probe penalty %.0f ms\n"
      (1000.0 *. stats.Astream.mean_latency)
      (1000.0 *. stats.Astream.max_latency)
      (1000.0 *. stats.Astream.first_chunk_penalty)
  in
  demo 1;
  demo 2;

  (* Byzantine parents do not partition the stream: mark some nodes
     quiet and verify the forest still spans all correct nodes. *)
  let sys = Atum.system atum in
  let members = Atum_workload.Builder.correct_members built in
  List.iteri (fun i m -> if i mod 7 = 3 && m <> source then Atum_core.System.make_byzantine sys m) members;
  let forest = Astream.build ~atum ~source ~cycles_used:1 ~seed:13 in
  let stats = Astream.stream forest ~chunk_mb:1.0 in
  Printf.printf "with Byzantine relays: %d correct nodes unreached (want 0), mean %.0f ms\n"
    (List.length stats.Astream.unreached)
    (1000.0 *. stats.Astream.mean_latency);

  (* Event-driven push-pull: the source streams 8 chunks at 1 MB/s;
     children stick to the first parent that serves valid data and
     probe past quiet or Byzantine parents. *)
  let sim = Astream.simulate forest ~chunk_mb:1.0 in
  Printf.printf
    "push-pull simulation: mean %.0f ms, max %.0f ms, %d parent switches, %d unreached\n"
    (1000.0 *. sim.Astream.sim_mean_latency)
    (1000.0 *. sim.Astream.sim_max_latency)
    sim.Astream.parent_switches
    (List.length sim.Astream.sim_unreached)
