(* Churn and fault tolerance demo: continuous leave/re-join traffic,
   a crashed node being evicted by its vgroup, and quiet Byzantine
   nodes that cannot disturb dissemination (§5.1, §6.1).

   Run with:  dune exec examples/churn_demo.exe *)

module Atum = Atum_core.Atum
module System = Atum_core.System

let () =
  let params =
    { (Atum_core.Params.for_system_size 40) with
      Atum_core.Params.heartbeat_period = 10.0;
      eviction_timeout = 40.0;
      seed = 3;
    }
  in
  let built = Atum_workload.Builder.grow ~params ~n:40 ~seed:3 () in
  let atum = built.Atum_workload.Builder.atum in
  Printf.printf "grown to %d nodes in %d vgroups\n" (Atum.size atum) (Atum.vgroup_count atum);

  (* Continuous churn: 15% of the system re-joins every minute. *)
  let probe =
    Atum_workload.Churn.probe built ~rate_per_min:6.0 ~duration:180.0 ~seed:17
  in
  Printf.printf "churn at 6 re-joins/min for 3 min: %d/%d joins completed, size %d -> %d (%s)\n"
    probe.Atum_workload.Churn.joins_completed probe.joins_started probe.size_before
    probe.size_after
    (if probe.sustained then "sustained" else "not sustained");

  (* Crash a node; heartbeats stop, its vgroup agrees to evict it. *)
  Atum.start_heartbeats atum;
  Atum.run_for atum 30.0;
  let members = Atum_workload.Builder.correct_members built in
  let victim =
    List.find (fun m -> m <> built.Atum_workload.Builder.first && Atum.is_member atum m) members
  in
  Atum.crash atum victim;
  Printf.printf "crashed node %d; waiting for heartbeat-based eviction...\n" victim;
  Atum.run_for atum 600.0;
  Printf.printf "node %d is %s\n" victim
    (if Atum.is_member atum victim then "STILL a member (bug!)" else "evicted");

  (* Byzantine minority: quiet nodes that keep heartbeating.  They are
     not evicted, and broadcast still reaches every correct node. *)
  let sys = Atum.system atum in
  let live =
    List.filter (fun m -> Atum.is_member atum m && m <> built.Atum_workload.Builder.first) members
  in
  let rng = Atum_util.Rng.create 23 in
  let byz = Atum_util.Rng.sample_without_replacement rng 3 live in
  List.iter (fun b -> System.make_byzantine sys b) byz;
  let delivered = ref 0 in
  Atum.on_deliver atum (fun _ ~bid:_ ~origin:_ _ -> incr delivered);
  ignore (Atum.broadcast atum ~from:built.Atum_workload.Builder.first "still alive");
  Atum.run_for atum 60.0;
  Printf.printf "with %d Byzantine nodes: broadcast delivered to %d correct nodes (of %d live)\n"
    (List.length byz) !delivered (Atum.size atum);
  Printf.printf "overlay %s, registry %s\n"
    (match Atum.check_overlay atum with Ok () -> "consistent" | Error e -> "BROKEN: " ^ e)
    (match Atum.check_consistency atum with Ok () -> "consistent" | Error e -> "BROKEN: " ^ e)
