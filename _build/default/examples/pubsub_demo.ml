(* ASub demo (§4.1): topic-based publish/subscribe.  Topics map to
   Atum groups; subscribing is joining, publishing is broadcasting.

   Run with:  dune exec examples/pubsub_demo.exe *)

module Asub = Atum_apps.Asub

let () =
  let s = Asub.create () in

  Asub.create_topic s "ocaml";
  Asub.create_topic s "distributed-systems";
  Printf.printf "topics: %s\n" (String.concat ", " (Asub.topics s));

  List.iter (fun c -> Asub.subscribe s ~topic:"ocaml" c) [ "alice"; "bob"; "carol" ];
  List.iter (fun c -> Asub.subscribe s ~topic:"distributed-systems" c) [ "alice"; "dave" ];
  Asub.run_for s 600.0;

  Printf.printf "ocaml subscribers: %s\n"
    (String.concat ", " (Asub.subscribers s ~topic:"ocaml"));
  Printf.printf "distributed-systems subscribers: %s\n"
    (String.concat ", " (Asub.subscribers s ~topic:"distributed-systems"));

  Asub.on_event s (fun e ->
      Printf.printf "  [%s] %s -> %s: %S\n" e.Asub.topic e.Asub.publisher e.Asub.subscriber
        e.Asub.payload);

  Printf.printf "publishing...\n";
  Asub.publish s ~topic:"ocaml" ~as_:"alice" "pattern matching is great";
  Asub.publish s ~topic:"distributed-systems" ~as_:"dave" "consensus is hard";
  Asub.run_for s 60.0;

  (* Unsubscribed clients stop receiving events. *)
  Asub.unsubscribe s ~topic:"ocaml" "bob";
  Asub.run_for s 300.0;
  Printf.printf "after bob unsubscribes: %s\n"
    (String.concat ", " (Asub.subscribers s ~topic:"ocaml"));
  Asub.publish s ~topic:"ocaml" ~as_:"carol" "bob will miss this";
  Asub.run_for s 60.0;

  Printf.printf "total events delivered: %d\n" (Asub.events_delivered s)
