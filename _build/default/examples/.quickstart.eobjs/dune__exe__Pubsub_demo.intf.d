examples/pubsub_demo.mli:
