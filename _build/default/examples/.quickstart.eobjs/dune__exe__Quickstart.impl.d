examples/quickstart.ml: Atum_core List Printf String
