examples/streaming_demo.mli:
