examples/dht_demo.mli:
