examples/fileshare_demo.ml: Atum_apps Atum_core Atum_workload List Printf String
