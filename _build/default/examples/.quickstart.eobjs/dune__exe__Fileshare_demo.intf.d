examples/fileshare_demo.mli:
