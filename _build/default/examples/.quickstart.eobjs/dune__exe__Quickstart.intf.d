examples/quickstart.mli:
