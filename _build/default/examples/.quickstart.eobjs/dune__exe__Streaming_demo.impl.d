examples/streaming_demo.ml: Atum_apps Atum_core Atum_crypto Atum_workload List Printf String
