examples/churn_demo.ml: Atum_core Atum_util Atum_workload List Printf
