examples/dht_demo.ml: Atum_apps Atum_util Fun List Printf String
