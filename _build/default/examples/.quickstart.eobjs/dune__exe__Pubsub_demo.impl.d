examples/pubsub_demo.ml: Atum_apps List Printf String
