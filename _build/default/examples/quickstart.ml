(* Quickstart: bootstrap an Atum instance, join a handful of nodes,
   broadcast a message, and watch every node deliver it.

   Run with:  dune exec examples/quickstart.exe *)

module Atum = Atum_core.Atum

let () =
  (* A synchronous deployment with 1-second rounds. *)
  let t = Atum.create () in

  (* §3.3.1: the first node bootstraps a single-vgroup instance. *)
  let n0 = Atum.bootstrap t in
  Printf.printf "bootstrapped node %d\n" n0;

  (* §3.3.2: nodes join through a contact node; the join is placed by
     a random walk and completes asynchronously in simulated time. *)
  let joiners = List.init 11 (fun _ -> Atum.join t ~contact:n0 ()) in
  Atum.run_for t 600.0;
  Printf.printf "system size after joins: %d (in %d vgroups of sizes %s)\n"
    (Atum.size t) (Atum.vgroup_count t)
    (String.concat ", " (List.map string_of_int (Atum.vgroup_sizes t)));
  List.iter
    (fun j -> assert (Atum.is_member t j))
    joiners;

  (* §3.3.4: broadcast — SMR in the publisher's vgroup, then gossip. *)
  let deliveries = ref [] in
  Atum.on_deliver t (fun nid ~bid:_ ~origin body ->
      deliveries := (nid, origin, body) :: !deliveries);
  let _bid = Atum.broadcast t ~from:n0 "hello, volatile groups!" in
  Atum.run_for t 60.0;

  Printf.printf "broadcast delivered to %d/%d nodes:\n" (List.length !deliveries) (Atum.size t);
  List.iter
    (fun (nid, origin, body) ->
      Printf.printf "  node %2d <- node %d: %S\n" nid origin body)
    (List.sort compare !deliveries);

  (* §3.3.3: one node leaves; the overlay absorbs the change. *)
  (match joiners with
  | leaver :: _ ->
    Atum.leave t leaver;
    Atum.run_for t 300.0;
    Printf.printf "after one leave: size=%d, overlay %s, registry %s\n" (Atum.size t)
      (match Atum.check_overlay t with Ok () -> "consistent" | Error e -> "BROKEN: " ^ e)
      (match Atum.check_consistency t with Ok () -> "consistent" | Error e -> "BROKEN: " ^ e)
  | [] -> ());
  print_endline "quickstart done."
