open Atum_crypto

(* ------------------------------------------------------------------ *)
(* SHA-256 against FIPS / NIST test vectors                            *)
(* ------------------------------------------------------------------ *)

let check_digest name msg expected =
  Alcotest.(check string) name expected (Sha256.digest_hex msg)

let test_sha_empty () =
  check_digest "empty" ""
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"

let test_sha_abc () =
  check_digest "abc" "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"

let test_sha_two_blocks () =
  check_digest "448-bit" "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"

let test_sha_896_bit () =
  check_digest "896-bit"
    "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"
    "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"

let test_sha_million_a () =
  check_digest "1M x a" (String.make 1_000_000 'a')
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"

let test_sha_empty_feeds_ignored () =
  let ctx = Sha256.init () in
  Sha256.feed ctx "";
  Sha256.feed ctx "abc";
  Sha256.feed ctx "";
  Alcotest.(check string) "empty feeds are no-ops"
    (Sha256.digest_hex "abc") (Sha256.hex (Sha256.finalize ctx))

let test_sha_incremental_matches_oneshot () =
  let msg = String.init 1000 (fun i -> Char.chr (i mod 256)) in
  let ctx = Sha256.init () in
  (* Feed in ragged pieces that straddle block boundaries. *)
  let rec feed i =
    if i < String.length msg then begin
      let len = min (7 + (i mod 61)) (String.length msg - i) in
      Sha256.feed ctx (String.sub msg i len);
      feed (i + len)
    end
  in
  feed 0;
  Alcotest.(check string) "incremental = one-shot"
    (Sha256.digest_hex msg)
    (Sha256.hex (Sha256.finalize ctx))

let test_sha_finalize_twice_raises () =
  let ctx = Sha256.init () in
  ignore (Sha256.finalize ctx);
  Alcotest.check_raises "double finalize"
    (Invalid_argument "Sha256.finalize: context already finalized")
    (fun () -> ignore (Sha256.finalize ctx))

let test_sha_lengths_55_56_64 () =
  (* Padding edge cases around the 56- and 64-byte boundaries: just
     check the incremental and one-shot paths agree and digests are
     distinct. *)
  let inputs = List.map (fun n -> String.make n 'x') [ 55; 56; 57; 63; 64; 65; 119; 120 ] in
  let digests = List.map Sha256.digest_hex inputs in
  Alcotest.(check int) "all distinct" (List.length inputs)
    (List.length (List.sort_uniq compare digests))

let prop_sha_injective_on_samples =
  QCheck.Test.make ~name:"distinct strings hash differently" ~count:300
    QCheck.(pair string string)
    (fun (a, b) -> a = b || Sha256.digest a <> Sha256.digest b)

let prop_sha_length =
  QCheck.Test.make ~name:"digest is 32 bytes" ~count:100 QCheck.string (fun s ->
      String.length (Sha256.digest s) = 32)

(* ------------------------------------------------------------------ *)
(* HMAC-SHA256 against RFC 4231 vectors                                *)
(* ------------------------------------------------------------------ *)

let test_hmac_rfc4231_case1 () =
  let key = String.make 20 '\x0b' in
  Alcotest.(check string) "case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Hmac.mac_hex ~key "Hi There")

let test_hmac_rfc4231_case2 () =
  Alcotest.(check string) "case 2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Hmac.mac_hex ~key:"Jefe" "what do ya want for nothing?")

let test_hmac_long_key () =
  (* Keys longer than the block size are hashed first (RFC 4231 case 6). *)
  let key = String.make 131 '\xaa' in
  Alcotest.(check string) "case 6"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Hmac.mac_hex ~key "Test Using Larger Than Block-Size Key - Hash Key First")

let test_hmac_rfc4231_case3 () =
  (* 20-byte 0xaa key, 50 bytes of 0xdd data. *)
  let key = String.make 20 '\xaa' in
  let data = String.make 50 '\xdd' in
  Alcotest.(check string) "case 3"
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    (Hmac.mac_hex ~key data)

let test_hmac_rfc4231_case4 () =
  let key = String.init 25 (fun i -> Char.chr (i + 1)) in
  let data = String.make 50 '\xcd' in
  Alcotest.(check string) "case 4"
    "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b"
    (Hmac.mac_hex ~key data)

let test_hmac_verify () =
  let tag = Hmac.mac ~key:"k" "m" in
  Alcotest.(check bool) "accepts" true (Hmac.verify ~key:"k" ~msg:"m" ~tag);
  Alcotest.(check bool) "rejects wrong msg" false (Hmac.verify ~key:"k" ~msg:"m2" ~tag);
  Alcotest.(check bool) "rejects wrong key" false (Hmac.verify ~key:"k2" ~msg:"m" ~tag);
  Alcotest.(check bool) "rejects truncated tag" false
    (Hmac.verify ~key:"k" ~msg:"m" ~tag:(String.sub tag 0 16))

(* ------------------------------------------------------------------ *)
(* Simulated signatures                                                *)
(* ------------------------------------------------------------------ *)

let test_signature_roundtrip () =
  let kr = Signature.create_keyring ~seed:1 in
  Signature.register kr "alice";
  let s = Signature.sign kr ~signer:"alice" "hello" in
  Alcotest.(check bool) "verifies" true (Signature.verify kr s ~msg:"hello");
  Alcotest.(check bool) "wrong msg" false (Signature.verify kr s ~msg:"hellO")

let test_signature_unregistered_never_verifies () =
  let kr = Signature.create_keyring ~seed:1 in
  let s = Signature.{ signer = "mallory"; tag = String.make 32 'x' } in
  Alcotest.(check bool) "unknown signer" false (Signature.verify kr s ~msg:"m")

let test_signature_forgery_rejected () =
  let kr = Signature.create_keyring ~seed:1 in
  Signature.register kr "alice";
  let forged = Signature.forge_attempt ~signer:"alice" ~msg:"pay mallory" in
  Alcotest.(check bool) "forgery rejected" false
    (Signature.verify kr forged ~msg:"pay mallory")

let test_signature_cross_signer_rejected () =
  let kr = Signature.create_keyring ~seed:1 in
  Signature.register kr "alice";
  Signature.register kr "bob";
  let s = Signature.sign kr ~signer:"alice" "m" in
  let relabeled = { s with Signature.signer = "bob" } in
  Alcotest.(check bool) "relabel rejected" false (Signature.verify kr relabeled ~msg:"m")

let test_signature_register_idempotent () =
  let kr = Signature.create_keyring ~seed:1 in
  Signature.register kr "alice";
  let s = Signature.sign kr ~signer:"alice" "m" in
  Signature.register kr "alice";
  Alcotest.(check bool) "key survives re-register" true (Signature.verify kr s ~msg:"m")

(* ------------------------------------------------------------------ *)
(* Chunks                                                              *)
(* ------------------------------------------------------------------ *)

let test_chunks_split_join () =
  let content = String.init 1000 (fun i -> Char.chr (i mod 251)) in
  let pieces = Chunks.split ~chunk_count:7 content in
  Alcotest.(check int) "piece count" 7 (List.length pieces);
  Alcotest.(check string) "join inverts split" content (Chunks.join pieces)

let test_chunks_short_content () =
  let pieces = Chunks.split ~chunk_count:5 "ab" in
  Alcotest.(check int) "still 5 pieces" 5 (List.length pieces);
  Alcotest.(check string) "join" "ab" (Chunks.join pieces)

let test_chunks_verify () =
  let content = "the quick brown fox jumps over the lazy dog" in
  let set = Chunks.digests ~chunk_count:4 content in
  let pieces = Chunks.split ~chunk_count:4 content in
  List.iteri
    (fun i piece ->
      Alcotest.(check bool) "chunk verifies" true (Chunks.verify_chunk set ~index:i piece))
    pieces;
  Alcotest.(check bool) "corruption detected" false
    (Chunks.verify_chunk set ~index:0 "corrupted");
  Alcotest.(check bool) "index out of range" false
    (Chunks.verify_chunk set ~index:99 (List.hd pieces))

let prop_chunks_roundtrip =
  QCheck.Test.make ~name:"split/join roundtrip" ~count:200
    QCheck.(pair (int_range 1 20) string)
    (fun (k, s) -> Chunks.join (Chunks.split ~chunk_count:k s) = s)

let () =
  Alcotest.run "crypto"
    [
      ( "sha256",
        [
          Alcotest.test_case "empty" `Quick test_sha_empty;
          Alcotest.test_case "abc" `Quick test_sha_abc;
          Alcotest.test_case "two blocks" `Quick test_sha_two_blocks;
          Alcotest.test_case "896-bit" `Quick test_sha_896_bit;
          Alcotest.test_case "million a" `Slow test_sha_million_a;
          Alcotest.test_case "incremental" `Quick test_sha_incremental_matches_oneshot;
          Alcotest.test_case "empty feeds" `Quick test_sha_empty_feeds_ignored;
          Alcotest.test_case "double finalize" `Quick test_sha_finalize_twice_raises;
          Alcotest.test_case "padding boundaries" `Quick test_sha_lengths_55_56_64;
          QCheck_alcotest.to_alcotest prop_sha_injective_on_samples;
          QCheck_alcotest.to_alcotest prop_sha_length;
        ] );
      ( "hmac",
        [
          Alcotest.test_case "rfc4231 case 1" `Quick test_hmac_rfc4231_case1;
          Alcotest.test_case "rfc4231 case 2" `Quick test_hmac_rfc4231_case2;
          Alcotest.test_case "long key" `Quick test_hmac_long_key;
          Alcotest.test_case "rfc4231 case 3" `Quick test_hmac_rfc4231_case3;
          Alcotest.test_case "rfc4231 case 4" `Quick test_hmac_rfc4231_case4;
          Alcotest.test_case "verify" `Quick test_hmac_verify;
        ] );
      ( "signature",
        [
          Alcotest.test_case "roundtrip" `Quick test_signature_roundtrip;
          Alcotest.test_case "unregistered" `Quick test_signature_unregistered_never_verifies;
          Alcotest.test_case "forgery rejected" `Quick test_signature_forgery_rejected;
          Alcotest.test_case "cross-signer rejected" `Quick test_signature_cross_signer_rejected;
          Alcotest.test_case "register idempotent" `Quick test_signature_register_idempotent;
        ] );
      ( "chunks",
        [
          Alcotest.test_case "split/join" `Quick test_chunks_split_join;
          Alcotest.test_case "short content" `Quick test_chunks_short_content;
          Alcotest.test_case "verify" `Quick test_chunks_verify;
          QCheck_alcotest.to_alcotest prop_chunks_roundtrip;
        ] );
    ]
