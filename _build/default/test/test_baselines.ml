open Atum_baselines

(* ------------------------------------------------------------------ *)
(* S.Gossip                                                            *)
(* ------------------------------------------------------------------ *)

let test_gossip_everyone_infected () =
  let r = Gossip.run ~n:500 ~fanout:8 ~seed:1 in
  Array.iteri
    (fun i round -> if round = max_int then Alcotest.fail (Printf.sprintf "node %d missed" i))
    r.Gossip.per_node_round;
  Alcotest.(check int) "source at round 0" 0 r.Gossip.per_node_round.(0)

let test_gossip_logarithmic_rounds () =
  let r = Gossip.run ~n:850 ~fanout:8 ~seed:2 in
  let bound = Gossip.expected_rounds_upper_bound ~n:850 ~fanout:8 in
  Alcotest.(check bool)
    (Printf.sprintf "%d rounds <= %.1f bound" r.Gossip.rounds_to_full bound)
    true
    (float_of_int r.Gossip.rounds_to_full <= bound);
  Alcotest.(check bool) "needs more than one round" true (r.Gossip.rounds_to_full > 1)

let test_gossip_fanout_speeds_up () =
  let rounds fanout = (Gossip.run ~n:1000 ~fanout ~seed:3).Gossip.rounds_to_full in
  Alcotest.(check bool) "bigger fanout, fewer rounds" true (rounds 16 <= rounds 2)

let test_gossip_latencies () =
  let r = Gossip.run ~n:100 ~fanout:4 ~seed:4 in
  let lats = Gossip.latencies r ~round_duration:1.5 in
  Alcotest.(check int) "one latency per node" 100 (List.length lats);
  Alcotest.(check bool) "multiples of round duration" true
    (List.for_all (fun l -> Float.rem l 1.5 = 0.0) lats)

let test_gossip_deterministic () =
  let a = Gossip.run ~n:300 ~fanout:6 ~seed:9 in
  let b = Gossip.run ~n:300 ~fanout:6 ~seed:9 in
  Alcotest.(check bool) "same seed, same spread" true (a.Gossip.per_node_round = b.Gossip.per_node_round)

let test_gossip_single_node () =
  let r = Gossip.run ~n:1 ~fanout:3 ~seed:5 in
  Alcotest.(check int) "zero rounds" 0 r.Gossip.rounds_to_full;
  Alcotest.(check int) "no messages" 0 r.Gossip.messages

(* ------------------------------------------------------------------ *)
(* S.SMR                                                               *)
(* ------------------------------------------------------------------ *)

let test_global_smr_rounds () =
  let r = Global_smr.run ~n:850 ~faults:50 ~round_duration:1.5 in
  Alcotest.(check int) "f+1 rounds" 51 r.Global_smr.rounds;
  (* The paper's Fig 8: ~76.5 s for the whole-system SMR baseline. *)
  Alcotest.(check (float 0.001)) "latency" 76.5 r.Global_smr.latency

let test_global_smr_latencies_step () =
  let r = Global_smr.run ~n:10 ~faults:2 ~round_duration:1.0 in
  let lats = Global_smr.latencies r ~n:10 in
  Alcotest.(check int) "all nodes" 10 (List.length lats);
  Alcotest.(check bool) "step CDF" true (List.for_all (( = ) 3.0) lats)

let test_global_smr_bad_args () =
  Alcotest.check_raises "faults >= n" (Invalid_argument "Global_smr.run: bad fault count")
    (fun () -> ignore (Global_smr.run ~n:5 ~faults:5 ~round_duration:1.0))

(* ------------------------------------------------------------------ *)
(* NFS                                                                 *)
(* ------------------------------------------------------------------ *)

let test_nfs_amortizes () =
  Alcotest.(check bool) "latency/MB falls with size" true
    (Nfs.latency_per_mb ~mb:2.0 > Nfs.latency_per_mb ~mb:2048.0)

let test_nfs_monotone_total () =
  Alcotest.(check bool) "bigger file, longer read" true
    (Nfs.read_time ~mb:100.0 < Nfs.read_time ~mb:200.0)

let test_nfs_rejects_zero () =
  Alcotest.check_raises "size must be positive"
    (Invalid_argument "Nfs.read_time: size must be positive") (fun () ->
      ignore (Nfs.read_time ~mb:0.0))

let () =
  Alcotest.run "baselines"
    [
      ( "gossip",
        [
          Alcotest.test_case "everyone infected" `Quick test_gossip_everyone_infected;
          Alcotest.test_case "logarithmic" `Quick test_gossip_logarithmic_rounds;
          Alcotest.test_case "fanout" `Quick test_gossip_fanout_speeds_up;
          Alcotest.test_case "latencies" `Quick test_gossip_latencies;
          Alcotest.test_case "deterministic" `Quick test_gossip_deterministic;
          Alcotest.test_case "single node" `Quick test_gossip_single_node;
        ] );
      ( "global-smr",
        [
          Alcotest.test_case "rounds" `Quick test_global_smr_rounds;
          Alcotest.test_case "step cdf" `Quick test_global_smr_latencies_step;
          Alcotest.test_case "bad args" `Quick test_global_smr_bad_args;
        ] );
      ( "nfs",
        [
          Alcotest.test_case "amortizes" `Quick test_nfs_amortizes;
          Alcotest.test_case "monotone" `Quick test_nfs_monotone_total;
          Alcotest.test_case "rejects zero" `Quick test_nfs_rejects_zero;
        ] );
    ]
