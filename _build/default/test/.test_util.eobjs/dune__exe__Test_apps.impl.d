test/test_apps.ml: Alcotest Ashare Astream Asub Atum_apps Atum_core Atum_overlay Atum_smr Atum_util Atum_workload Dht Fun Hashtbl Kv_index List Printf QCheck QCheck_alcotest String
