test/test_core.ml: Alcotest Atum Atum_core Atum_sim Atum_util Hashtbl List Option Params Printf QCheck QCheck_alcotest System
