test/test_workload.ml: Ablation Alcotest Ashare_exp Astream_exp Atum_core Atum_util Atum_workload Builder Churn Growth Latency_exp List Printf
