test/test_util.ml: Alcotest Array Atum_util Btree Fun Gen Hashtbl List Option Pqueue Printf QCheck QCheck_alcotest Rng Stats
