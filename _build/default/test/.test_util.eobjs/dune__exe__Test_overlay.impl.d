test/test_overlay.ml: Alcotest Array Atum_overlay Atum_util Fun Grouping Guideline Hgraph List Option Printf QCheck QCheck_alcotest Random_walk
