test/test_sim.ml: Alcotest Atum_sim Atum_util Bulk Engine List Metrics Network Printf Rounds
