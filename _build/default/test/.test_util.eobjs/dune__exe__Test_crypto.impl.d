test/test_crypto.ml: Alcotest Atum_crypto Char Chunks Hmac List QCheck QCheck_alcotest Sha256 Signature String
