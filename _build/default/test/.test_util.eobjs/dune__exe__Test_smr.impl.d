test/test_smr.ml: Alcotest Atum_crypto Atum_sim Atum_smr Atum_util Dolev_strong Fun Hashtbl List Pbft Printf QCheck QCheck_alcotest Smr_intf Sync_smr
