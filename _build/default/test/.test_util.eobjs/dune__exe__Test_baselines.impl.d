test/test_baselines.ml: Alcotest Array Atum_baselines Float Global_smr Gossip List Nfs Printf
