type host = { upload_mbps : float; download_mbps : float; cores : int; hash_mbps : float }

let ec2_micro = { upload_mbps = 8.0; download_mbps = 20.0; cores = 2; hash_mbps = 150.0 }

let setup_overhead = 0.12

(* Slow start roughly doubles the window each RTT; we charge the time
   "missing" relative to full rate for the first few MB, capped. *)
let slow_start_penalty ~mb ~rate =
  let ramp_mb = Float.min mb 4.0 in
  ramp_mb /. rate *. 0.8

let single_stream_time ~src ~dst ~mb =
  let rate = Float.min src.upload_mbps dst.download_mbps in
  setup_overhead +. slow_start_penalty ~mb ~rate +. (mb /. rate)

let parallel_pull_time ~sources ~dst ~mb ~chunks =
  match sources with
  | [] -> invalid_arg "Bulk.parallel_pull_time: no sources"
  | _ ->
    let k = List.length sources in
    let aggregate_upload = List.fold_left (fun acc s -> acc +. s.upload_mbps) 0.0 sources in
    let rate = Float.min dst.download_mbps aggregate_upload in
    (* One connection per source is set up concurrently; the chunked
       request pattern costs a small per-chunk turnaround. *)
    let per_chunk_turnaround = 0.01 in
    let effective_chunks = max chunks 1 in
    setup_overhead
    +. slow_start_penalty ~mb ~rate
    +. (mb /. rate)
    +. (per_chunk_turnaround *. float_of_int (effective_chunks / max k 1))

let hash_time host ~mb ~parallel_chunks =
  let ways = max 1 (min host.cores parallel_chunks) in
  mb /. (host.hash_mbps *. float_of_int ways)
