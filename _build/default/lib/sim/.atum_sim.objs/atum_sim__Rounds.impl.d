lib/sim/rounds.ml: Engine List
