lib/sim/network.ml: Atum_util Engine Float Hashtbl Option
