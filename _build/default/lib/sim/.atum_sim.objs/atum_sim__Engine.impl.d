lib/sim/engine.ml: Atum_util
