lib/sim/bulk.ml: Float List
