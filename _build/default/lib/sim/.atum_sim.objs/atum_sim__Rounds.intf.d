lib/sim/rounds.mli: Engine
