lib/sim/engine.mli:
