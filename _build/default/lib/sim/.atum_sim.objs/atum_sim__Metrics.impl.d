lib/sim/metrics.ml: Atum_util Format Hashtbl List
