lib/sim/bulk.mli:
