(** Named counters and sample series collected during a simulation run. *)

type t

val create : unit -> t

val incr : ?by:int -> t -> string -> unit

val counter : t -> string -> int

val observe : t -> string -> float -> unit
(** Append a sample to the named series. *)

val samples : t -> string -> float list
(** Samples in observation order; [] for unknown series. *)

val series_names : t -> string list

val clear : t -> unit

val pp_summary : Format.formatter -> t -> unit
(** One line per counter, plus count/mean/p50/p99 per series. *)
