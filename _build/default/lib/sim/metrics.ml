type t = {
  counters : (string, int ref) Hashtbl.t;
  series : (string, float list ref) Hashtbl.t; (* stored reversed *)
}

let create () = { counters = Hashtbl.create 32; series = Hashtbl.create 32 }

let incr ?(by = 1) t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.replace t.counters name (ref by)

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let observe t name x =
  match Hashtbl.find_opt t.series name with
  | Some r -> r := x :: !r
  | None -> Hashtbl.replace t.series name (ref [ x ])

let samples t name =
  match Hashtbl.find_opt t.series name with Some r -> List.rev !r | None -> []

let series_names t =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.series [])

let clear t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.series

let pp_summary fmt t =
  let counters =
    List.sort compare (Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters [])
  in
  List.iter (fun (k, v) -> Format.fprintf fmt "%-40s %d@." k v) counters;
  List.iter
    (fun name ->
      let xs = samples t name in
      if xs <> [] then
        Format.fprintf fmt "%-40s n=%d mean=%.4f p50=%.4f p99=%.4f@." name
          (List.length xs) (Atum_util.Stats.mean xs)
          (Atum_util.Stats.percentile xs 50.0)
          (Atum_util.Stats.percentile xs 99.0))
    (series_names t)
