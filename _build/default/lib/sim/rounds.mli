(** Global round driver for the synchronous deployment.

    Sync Atum (Dolev-Strong inside vgroups, lock-step gossip) assumes
    a synchronous network: every protocol step happens on a round
    boundary.  The driver ticks a shared round counter on the engine
    clock and invokes subscribers in subscription order. *)

type t

val create : Engine.t -> round_duration:float -> t

val round_duration : t -> float

val current_round : t -> int

val subscribe : t -> (int -> unit) -> int
(** [subscribe t f] calls [f round] at every round boundary; returns a
    subscription id. *)

val unsubscribe : t -> int -> unit

val start : t -> unit
(** Begin ticking at the current engine time.  Idempotent. *)

val stop : t -> unit
(** Stop ticking after the current round. *)
