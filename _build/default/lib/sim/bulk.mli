(** Bulk-transfer timing model for file and stream data.

    Control messages go through {!Network}; file chunks and stream
    data are dominated by bandwidth, not propagation latency, so this
    module computes transfer durations from host capacities instead:

    - a single TCP stream pays a [setup] overhead (handshake) plus a
      slow-start ramp that amortizes as the transfer grows — this is
      what makes latency-per-MB fall with file size in Fig 9;
    - a receiver pulling from [k] sources in parallel gets
      [min(download, k * upload)] aggregate bandwidth;
    - digest computation runs at [hash_mbps] per core and
      parallelizes across chunks up to [cores] (§4.2.2). *)

type host = {
  upload_mbps : float;   (** MB/s out *)
  download_mbps : float; (** MB/s in *)
  cores : int;
  hash_mbps : float;     (** SHA-256 MB/s per core *)
}

val ec2_micro : host
(** The paper's instance type: modest, download > upload. *)

val setup_overhead : float
(** Per-connection handshake cost in seconds. *)

val slow_start_penalty : mb:float -> rate:float -> float
(** Extra seconds lost to the congestion-window ramp; bounded, so it
    vanishes relative to large transfers. *)

val single_stream_time : src:host -> dst:host -> mb:float -> float
(** Wall time to move [mb] megabytes over one stream. *)

val parallel_pull_time : sources:host list -> dst:host -> mb:float -> chunks:int -> float
(** Wall time to pull a file of [mb] MB cut into [chunks] chunks from
    all [sources] at once.  Chunks round-robin over sources; each
    source sustains its upload rate, the receiver caps the total. *)

val hash_time : host -> mb:float -> parallel_chunks:int -> float
(** Digest-computation time with multithreading across chunks. *)
