let needs_split ~gmax ~size = size > gmax

let needs_merge ~gmin ~size = size < gmin

let split_halves rng members =
  let a = Array.of_list members in
  Atum_util.Rng.shuffle rng a;
  let n = Array.length a in
  let first = (n + 1) / 2 in
  ( Array.to_list (Array.sub a 0 first),
    Array.to_list (Array.sub a first (n - first)) )

let target_group_size ~k ~expected_n =
  if expected_n < 1 then invalid_arg "Grouping.target_group_size";
  max 1 (int_of_float (Float.round (float_of_int k *. (log (float_of_int expected_n) /. log 2.0))))

let bounds_for ~k ~expected_n =
  let gmax = max 2 (target_group_size ~k ~expected_n) in
  (max 1 (gmax / 2), gmax)

(* Binomial tail Pr[X > f], X ~ B(g, p), computed in log space. *)
let vgroup_failure_probability ~g ~f ~node_failure_rate:p =
  if p <= 0.0 then 0.0
  else if p >= 1.0 then if f >= g then 0.0 else 1.0
  else begin
    let open Atum_util.Stats in
    let log_choose n r = gammln (float_of_int (n + 1)) -. gammln (float_of_int (r + 1)) -. gammln (float_of_int (n - r + 1)) in
    let term i =
      exp
        (log_choose g i
        +. (float_of_int i *. log p)
        +. (float_of_int (g - i) *. log (1.0 -. p)))
    in
    let acc = ref 0.0 in
    for i = f + 1 to g do
      acc := !acc +. term i
    done;
    Float.min 1.0 !acc
  end

let all_groups_robust_probability ~n ~g ~f ~node_failure_rate =
  let groups = max 1 (n / max 1 g) in
  (1.0 -. vgroup_failure_probability ~g ~f ~node_failure_rate) ** float_of_int groups
