let endpoint_counts ~vgroups ~hc ~rwl ~samples ~seed =
  let rng = Atum_util.Rng.create seed in
  let g = Hgraph.create ~cycles:hc rng (List.init vgroups Fun.id) in
  let counts = Array.make vgroups 0 in
  (* Start every walk from the same vertex: the worst case for
     uniformity, and what a single joining vgroup actually does. *)
  for _ = 1 to samples do
    let v = Random_walk.walk_fast g rng ~start:0 ~length:rwl in
    counts.(v) <- counts.(v) + 1
  done;
  counts

let walk_is_uniform ?(confidence = 0.99) ~vgroups ~hc ~rwl ~samples ~seed () =
  let counts = endpoint_counts ~vgroups ~hc ~rwl ~samples ~seed in
  Atum_util.Stats.chi2_uniform_test ~confidence counts

let optimal_rwl ?(confidence = 0.99) ?(max_rwl = 25) ?(samples_per_cell = 10) ~vgroups ~hc ~seed
    () =
  let samples = samples_per_cell * vgroups in
  (* Vote over three independent graphs to smooth out topology luck. *)
  let passes rwl =
    let hits = ref 0 in
    for i = 0 to 2 do
      if walk_is_uniform ~confidence ~vgroups ~hc ~rwl ~samples ~seed:(seed + (1000 * i)) ()
      then incr hits
    done;
    !hits >= 2
  in
  (* Walks shorter than the overlay's diameter cannot be uniform, so
     start the search there instead of at 1. *)
  let floor_rwl =
    max 1 (int_of_float (log (float_of_int vgroups) /. log (float_of_int (2 * hc))))
  in
  let rec search rwl =
    if rwl > max_rwl then None else if passes rwl then Some rwl else search (rwl + 1)
  in
  search floor_rwl

let figure4 ?(vgroup_counts = [ 8; 32; 128; 512; 2048; 8192 ])
    ?(hc_values = [ 2; 4; 6; 8; 10; 12 ]) ~seed () =
  List.map
    (fun vgroups ->
      ( vgroups,
        List.map (fun hc -> (hc, optimal_rwl ~vgroups ~hc ~seed ())) hc_values ))
    vgroup_counts
