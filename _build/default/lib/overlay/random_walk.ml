let step g rng v =
  let links = Hgraph.neighbors g v in
  snd (Atum_util.Rng.pick rng links)

let walk g rng ~start ~length =
  let rec loop v n = if n = 0 then v else loop (step g rng v) (n - 1) in
  loop start length

let walk_path g rng ~start ~length =
  let rec loop v n acc =
    if n = 0 then List.rev (v :: acc) else loop (step g rng v) (n - 1) (v :: acc)
  in
  loop start length []

let bulk_choices rng ~length =
  List.init length (fun _ -> Atum_util.Rng.int rng 1_000_000_007)

let walk_with_choices g ~start ~choices =
  List.fold_left
    (fun v choice ->
      let links = Hgraph.neighbors g v in
      snd (List.nth links (choice mod List.length links)))
    start choices

let step_fast g rng v =
  let c = Atum_util.Rng.int rng (2 * Hgraph.cycles g) in
  let cycle = c lsr 1 in
  if c land 1 = 0 then Hgraph.successor g ~cycle v else Hgraph.predecessor g ~cycle v

let walk_fast g rng ~start ~length =
  let v = ref start in
  for _ = 1 to length do
    v := step_fast g rng !v
  done;
  !v
