lib/overlay/hgraph.ml: Array Atum_util Hashtbl List Printf
