lib/overlay/hgraph.mli: Atum_util
