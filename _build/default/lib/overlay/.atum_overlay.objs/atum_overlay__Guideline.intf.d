lib/overlay/guideline.mli:
