lib/overlay/grouping.mli: Atum_util
