lib/overlay/grouping.ml: Array Atum_util Float
