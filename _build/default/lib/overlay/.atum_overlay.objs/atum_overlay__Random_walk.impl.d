lib/overlay/random_walk.ml: Atum_util Hgraph List
