lib/overlay/guideline.ml: Array Atum_util Fun Hgraph List Random_walk
