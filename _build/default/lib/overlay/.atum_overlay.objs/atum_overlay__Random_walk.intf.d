lib/overlay/random_walk.mli: Atum_util Hgraph
