(** The configuration guideline of §3.2 / Fig 4: for a given overlay
    density (number of H-graph cycles [hc]) and number of vgroups,
    find the shortest random-walk length [rwl] whose endpoint
    distribution is indistinguishable from uniform under Pearson's χ²
    test at a given confidence level. *)

val endpoint_counts :
  vgroups:int -> hc:int -> rwl:int -> samples:int -> seed:int -> int array
(** Run [samples] walks of length [rwl] from a fixed worst-case start
    vertex on a fresh random H-graph and histogram the endpoints. *)

val walk_is_uniform :
  ?confidence:float -> vgroups:int -> hc:int -> rwl:int -> samples:int -> seed:int -> unit -> bool

val optimal_rwl :
  ?confidence:float ->
  ?max_rwl:int ->
  ?samples_per_cell:int ->
  vgroups:int ->
  hc:int ->
  seed:int ->
  unit ->
  int option
(** Smallest [rwl] that passes the uniformity test, averaged over a
    few independent graphs to smooth out topology luck.  [None] if no
    length up to [max_rwl] passes. *)

val figure4 :
  ?vgroup_counts:int list -> ?hc_values:int list -> seed:int -> unit -> (int * (int * int option) list) list
(** The full guideline table: for every vgroup count, the optimal
    [rwl] per [hc].  Defaults reproduce the paper's axes:
    vgroups ∈ {8, 32, 128, 512, 2048, 8192}, hc ∈ {2, 4, 6, 8, 10, 12}. *)
