(** Logarithmic grouping policy (§3.1): keep every vgroup's size
    between [gmin] and [gmax], themselves chosen so that g ≈ k·log N.
    The split/merge mechanics live in the Atum runtime; this module is
    the pure policy plus the sizing arithmetic. *)

val needs_split : gmax:int -> size:int -> bool
(** Strictly above [gmax]. *)

val needs_merge : gmin:int -> size:int -> bool
(** Strictly below [gmin] (a vgroup of exactly [gmin] is fine). *)

val split_halves : Atum_util.Rng.t -> 'a list -> 'a list * 'a list
(** Partition members into two random, equally-sized halves (the
    first gets the extra element when the size is odd). *)

val target_group_size : k:int -> expected_n:int -> int
(** g = max 1 (round (k·log₂ N)) — the robustness-vs-efficiency dial
    of §3.1. *)

val bounds_for : k:int -> expected_n:int -> int * int
(** Practical (gmin, gmax) from the target size, with
    gmin = gmax / 2 as in Table 1. *)

val vgroup_failure_probability : g:int -> f:int -> node_failure_rate:float -> float
(** Pr[more than [f] of [g] i.i.d. faulty members] — the binomial tail
    from the §3.1 robustness discussion. *)

val all_groups_robust_probability :
  n:int -> g:int -> f:int -> node_failure_rate:float -> float
(** Probability that every one of the n/g vgroups is robust. *)
