module Atum = Atum_core.Atum
module System = Atum_core.System

type attack_result = {
  shuffling : bool;
  byzantine_fraction : float;
  concentration : float;
  any_vgroup_captured : bool;
}

(* The attacker repeatedly re-joins its nodes; a node already sitting
   in the currently most-Byzantine vgroup stays put, everyone else
   churns, hoping the random walk lands them there.  This is the
   strongest strategy available to an adversary that cannot bias the
   walks (bulk RNG, §5.1). *)
let join_leave_attack ?(n = 120) ?(attackers = 10) ?(rounds = 15) ~shuffling ~seed () =
  let params =
    (* Mid-size vgroups so a captured vgroup means a beaten fault
       bound, not small-sample noise. *)
    { (Atum_core.Params.for_system_size ~seed n) with Atum_core.Params.gmin = 5; gmax = 10 }
  in
  let built = Builder.grow ~params ~n ~seed () in
  let atum = built.Builder.atum in
  let sys = Atum.system atum in
  System.set_shuffling sys shuffling;
  let rng = Atum_util.Rng.create (seed + 3) in
  (* The attacker's nodes join as Byzantine. *)
  let attacker_ids = ref [] in
  for _ = 1 to attackers do
    let contact = Builder.random_member built rng in
    let id = Atum.join atum ~byzantine:true ~contact () in
    attacker_ids := id :: !attacker_ids
  done;
  Atum.run_for atum 400.0;
  let best_vgroup () =
    let score vid =
      let members = Atum.members_of_vgroup atum vid in
      List.length
        (List.filter
           (fun m ->
             match System.node_opt sys m with Some nd -> nd.System.byzantine | None -> false)
           members)
    in
    List.fold_left
      (fun (bv, bs) vid ->
        let s = score vid in
        if s > bs then (Some vid, s) else (bv, bs))
      (None, -1)
      (Atum_overlay.Hgraph.vertices (System.hgraph sys))
    |> fst
  in
  for _ = 1 to rounds do
    let target = best_vgroup () in
    List.iter
      (fun id ->
        if Atum.is_member atum id && Atum.vgroup_of atum id <> target then begin
          (* leave and immediately re-join through a random member *)
          Atum.leave atum id;
          ()
        end)
      !attacker_ids;
    Atum.run_for atum 200.0;
    (* re-join everyone that left *)
    attacker_ids :=
      List.map
        (fun id ->
          if Atum.is_member atum id then id
          else begin
            let contact = Builder.random_member built rng in
            Atum.join atum ~byzantine:true ~contact ()
          end)
        !attacker_ids;
    Atum.run_for atum 400.0
  done;
  Atum.run_for atum 600.0;
  let concentration = System.byzantine_concentration sys in
  {
    shuffling;
    byzantine_fraction = float_of_int attackers /. float_of_int (Atum.size atum);
    concentration;
    any_vgroup_captured = concentration >= 0.5;
  }

type forward_result = {
  label : string;
  delivery_fraction : float;
  p50_latency : float;
  messages_per_broadcast : float;
}

let forward_policies ?(n = 100) ?(messages = 20) ~seed () =
  let policies =
    [
      ("flood (all cycles)", fun ~bid:_ ~from_vg:_ ~cycle:_ ~neighbor:_ -> true);
      ("two cycles", fun ~bid:_ ~from_vg:_ ~cycle ~neighbor:_ -> cycle < 2);
      ("single cycle", fun ~bid:_ ~from_vg:_ ~cycle ~neighbor:_ -> cycle = 0);
    ]
  in
  List.map
    (fun (label, policy) ->
      let built =
        Builder.grow ~params:(Atum_core.Params.for_system_size ~seed n) ~n ~seed ()
      in
      let atum = built.Builder.atum in
      Atum.on_forward atum policy;
      let before = Atum.messages_sent atum in
      let r = Latency_exp.run built ~messages ~gap:3.0 ~seed:(seed + 1) in
      let traffic = Atum.messages_sent atum - before in
      {
        label;
        delivery_fraction = r.Latency_exp.delivery_fraction;
        p50_latency = Atum_util.Stats.percentile r.Latency_exp.latencies 50.0;
        messages_per_broadcast = float_of_int traffic /. float_of_int messages;
      })
    policies
