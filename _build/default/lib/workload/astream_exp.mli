(** AStream experiment (Fig 12): tier-2 dissemination latency of a
    1 MB/s stream over forests built on one (Single) or two (Double)
    H-graph cycles, for 20- and 50-node systems. *)

type row = {
  n : int;
  single_ms : float;  (** mean per-chunk latency (analytic model), ms *)
  double_ms : float;
  single_sim_ms : float;  (** same, from the event-driven push-pull *)
  double_sim_ms : float;
}

val run : ?sizes:int list -> ?chunk_mb:float -> seed:int -> unit -> row list
