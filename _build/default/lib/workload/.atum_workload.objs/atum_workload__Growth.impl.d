lib/workload/growth.ml: Atum_core Atum_sim Atum_util Float List
