lib/workload/growth.mli: Atum_core
