lib/workload/builder.mli: Atum_core Atum_sim Atum_util
