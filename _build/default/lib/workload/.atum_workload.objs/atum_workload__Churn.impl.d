lib/workload/churn.ml: Atum_core Atum_util Builder List
