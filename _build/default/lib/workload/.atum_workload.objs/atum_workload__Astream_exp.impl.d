lib/workload/astream_exp.ml: Atum_apps Atum_core Atum_util Builder List
