lib/workload/latency_exp.mli: Builder
