lib/workload/churn.mli: Builder
