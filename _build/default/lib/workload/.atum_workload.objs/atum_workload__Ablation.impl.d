lib/workload/ablation.ml: Atum_core Atum_overlay Atum_util Builder Latency_exp List
