lib/workload/ashare_exp.mli:
