lib/workload/ashare_exp.ml: Atum_apps Atum_baselines Atum_core Atum_util Builder Hashtbl List Option Printf
