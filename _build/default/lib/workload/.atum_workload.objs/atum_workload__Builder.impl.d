lib/workload/builder.ml: Atum_core Atum_util List Printf
