lib/workload/astream_exp.mli:
