lib/workload/latency_exp.ml: Atum_core Atum_sim Atum_util Builder List String
