lib/workload/ablation.mli:
