module Atum = Atum_core.Atum
module Ashare = Atum_apps.Ashare

type fig9_row = { size_mb : float; nfs : float; simple : float; parallel : float }

let default_sizes = [ 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256.; 512.; 1024.; 2048. ]

(* One small deployment serves the whole Fig 9 sweep: the owner puts a
   synthetic file, replicas are placed explicitly, and a reader GETs
   it with the paper's two configurations. *)
let fig9 ?(sizes_mb = default_sizes) ~seed () =
  let built = Builder.grow ~n:8 ~seed () in
  let atum = built.Builder.atum in
  let share = Ashare.attach atum ~rho:1 in
  let members = Builder.correct_members built in
  let owner, holder2, reader =
    match members with
    | a :: b :: c :: _ -> (a, b, c)
    | _ -> failwith "fig9: not enough members"
  in
  let measure ~chunk_count ~holders ~name size_mb =
    Ashare.put share ~owner ~name ~chunk_count (Ashare.Synthetic size_mb);
    Atum.run_for atum 60.0;
    Ashare.place_replicas share ~owner ~name ~holders;
    let result = ref None in
    Ashare.get share ~reader ~owner:(Ashare.owner_name owner) ~name ~k:(fun r -> result := r);
    Atum.run_for atum 10_000.0;
    match !result with
    | Some r -> r.Ashare.latency /. size_mb
    | None -> failwith ("fig9: GET failed for " ^ name)
  in
  List.map
    (fun size_mb ->
      let tag = string_of_int (int_of_float size_mb) in
      {
        size_mb;
        nfs = Atum_baselines.Nfs.latency_per_mb ~mb:size_mb;
        simple =
          measure ~chunk_count:1 ~holders:[ owner ] ~name:("simple-" ^ tag) size_mb;
        parallel =
          measure ~chunk_count:10 ~holders:[ owner; holder2 ]
            ~name:("parallel-" ^ tag) size_mb;
      })
    sizes_mb

type fig10_row = {
  replicas : int;
  clean_latency_per_mb : float;
  faulty_latency_per_mb : float;
}

let byzantine_reads ~n ~files ~byzantine ~rho ~seed =
  ignore rho;
  let built = Builder.grow ~n ~byzantine ~seed () in
  let atum = built.Builder.atum in
  let share = Ashare.attach atum ~rho:1 (* feedback loop off: placement is explicit *) in
  let rng = Atum_util.Rng.create (seed + 7) in
  let correct = Builder.correct_members built in
  let byz = built.Builder.byzantine in
  let owner = List.hd correct in
  let size_mb = 10.0 and chunks = 10 in
  (* Announce all the files first (every node indexes them). *)
  let replica_counts = List.init 13 (fun i -> 8 + i) (* 8..20 *) in
  let file_specs =
    List.init files (fun i ->
        let r = List.nth replica_counts (i mod List.length replica_counts) in
        let faulty = 1 + (i mod 6) in
        (Printf.sprintf "file-%d" i, r, faulty))
  in
  List.iteri
    (fun i (name, _, _) ->
      Ashare.put share ~owner ~name ~chunk_count:chunks (Ashare.Synthetic size_mb);
      if i mod 25 = 0 then Atum.run_for atum 30.0)
    file_specs;
  Atum.run_for atum 300.0;
  (* Measure both series per file: clean placement and faulty placement. *)
  let clean_acc = Hashtbl.create 16 and faulty_acc = Hashtbl.create 16 in
  let record tbl r v =
    let l = Option.value ~default:[] (Hashtbl.find_opt tbl r) in
    Hashtbl.replace tbl r (v :: l)
  in
  let pick_holders ~faulty r =
    let nbyz = min faulty (List.length byz) in
    let byz_holders = Atum_util.Rng.sample_without_replacement rng nbyz byz in
    let correct_pool = List.filter (fun c -> c <> owner) correct in
    let corr_holders =
      Atum_util.Rng.sample_without_replacement rng (r - List.length byz_holders) correct_pool
    in
    byz_holders @ corr_holders
  in
  List.iter
    (fun (name, r, faulty) ->
      let run_one ~holders tbl =
        Ashare.place_replicas share ~owner ~name ~holders;
        let reader =
          let outside = List.filter (fun c -> not (List.mem c holders)) correct in
          Atum_util.Rng.pick rng (if outside = [] then correct else outside)
        in
        let result = ref None in
        Ashare.get share ~reader ~owner:(Ashare.owner_name owner) ~name ~k:(fun x -> result := x);
        Atum.run_for atum 2_000.0;
        match !result with
        | Some res -> record tbl r (res.Ashare.latency /. size_mb)
        | None -> ()
      in
      (* clean series: correct holders only *)
      run_one ~holders:(pick_holders ~faulty:0 r) clean_acc;
      (* faulty series: 1..6 corrupting holders *)
      run_one ~holders:(pick_holders ~faulty r) faulty_acc)
    file_specs;
  List.filter_map
    (fun r ->
      match (Hashtbl.find_opt clean_acc r, Hashtbl.find_opt faulty_acc r) with
      | Some clean, Some faulty ->
        Some
          {
            replicas = r;
            clean_latency_per_mb = Atum_util.Stats.mean clean;
            faulty_latency_per_mb = Atum_util.Stats.mean faulty;
          }
      | _ -> None)
    replica_counts
