(** Group communication latency (Fig 8): disseminate a batch of small
    messages and collect the per-(node, message) delivery latency
    distribution, with or without Byzantine nodes. *)

type result = {
  latencies : float list;  (** one sample per (correct node, message) delivery *)
  messages : int;
  expected_deliveries : int;  (** correct members × messages *)
  observed_deliveries : int;
  delivery_fraction : float;
}

val run :
  Builder.built -> messages:int -> gap:float -> seed:int -> result
(** Broadcast [messages] Twitter-sized payloads from random correct
    members, one every [gap] simulated seconds, then drain. *)

val cdf : result -> (float * float) list
(** The Fig 8 CDF: fraction of deliveries within each latency. *)
