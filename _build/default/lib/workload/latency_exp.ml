module Atum = Atum_core.Atum

type result = {
  latencies : float list;
  messages : int;
  expected_deliveries : int;
  observed_deliveries : int;
  delivery_fraction : float;
}

let run (built : Builder.built) ~messages ~gap ~seed =
  let atum = built.Builder.atum in
  (* Latency-sensitive setting (§3.3.4): gossip on every cycle. *)
  Atum.on_forward atum Atum_core.System.flood_forward;
  let rng = Atum_util.Rng.create seed in
  let correct = Builder.correct_members built in
  let m = Atum.metrics atum in
  (* Reset counters so only this experiment's deliveries count. *)
  Atum_sim.Metrics.clear m;
  let payload () =
    (* 10–100 byte messages, "comparable to Twitter messages". *)
    String.make (10 + Atum_util.Rng.int rng 91) 'x'
  in
  for _ = 1 to messages do
    let publisher = Atum_util.Rng.pick rng correct in
    ignore (Atum.broadcast atum ~from:publisher (payload ()));
    Atum.run_for atum gap
  done;
  (* Drain: generous tail so slow paths deliver. *)
  Atum.run_for atum 300.0;
  let latencies = Atum_sim.Metrics.samples m "broadcast.latency" in
  let expected = List.length correct * messages in
  let observed = List.length latencies in
  {
    latencies;
    messages;
    expected_deliveries = expected;
    observed_deliveries = observed;
    delivery_fraction =
      (if expected = 0 then 0.0 else float_of_int observed /. float_of_int expected);
  }

let cdf result = Atum_util.Stats.cdf result.latencies
