(** AShare experiments: Fig 9 (read performance vs. NFS), Figs 10/11
    (impact of Byzantine replicas on read latency). *)

type fig9_row = {
  size_mb : float;
  nfs : float;  (** latency per MB, seconds *)
  simple : float;  (** AShare, one chunk, one replica *)
  parallel : float;  (** AShare, 10 chunks, two replicas *)
}

val fig9 : ?sizes_mb:float list -> seed:int -> unit -> fig9_row list
(** File sizes default to the paper's 2 MB … 2048 MB sweep. *)

type fig10_row = {
  replicas : int;
  clean_latency_per_mb : float;  (** all replicas correct *)
  faulty_latency_per_mb : float;  (** 1–6 corrupting replicas *)
}

val byzantine_reads :
  n:int -> files:int -> byzantine:int -> rho:int -> seed:int -> fig10_row list
(** The Fig 10 / Fig 11 experiment: [files] 10-chunk 10 MB files with
    8–20 replicas each on an [n]-node system with [byzantine]
    corrupting nodes; GET each file from a random non-holder and
    report mean latency per MB by replica count. *)
