(** Ablation studies for the design choices DESIGN.md calls out.

    - {!join_leave_attack}: is random-walk shuffling actually needed?
      An adversary mounts the join-leave attack of §3.2 (Awerbuch &
      Scheideler), repeatedly re-joining its nodes to concentrate them
      in one vgroup.  With shuffling every join refreshes the target
      vgroup's composition; without it, concentration accumulates.

    - {!forward_policies}: the latency / throughput trade-off of the
      [forward] callback (§3.3.4): flooding all cycles vs. gossiping on
      two or one. *)

type attack_result = {
  shuffling : bool;
  byzantine_fraction : float;  (** attacker share of the whole system *)
  concentration : float;  (** max per-vgroup Byzantine fraction at the end *)
  any_vgroup_captured : bool;  (** some vgroup lost its correct majority *)
}

val join_leave_attack :
  ?n:int -> ?attackers:int -> ?rounds:int -> shuffling:bool -> seed:int -> unit -> attack_result

type forward_result = {
  label : string;
  delivery_fraction : float;
  p50_latency : float;
  messages_per_broadcast : float;
}

val forward_policies : ?n:int -> ?messages:int -> seed:int -> unit -> forward_result list
(** Compare flooding, two-cycle, and one-cycle forwarding on the same
    deployment size. *)
