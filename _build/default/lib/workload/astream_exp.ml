module Astream = Atum_apps.Astream

type row = {
  n : int;
  single_ms : float;
  double_ms : float;
  single_sim_ms : float;
  double_sim_ms : float;
}

let run ?(sizes = [ 20; 50 ]) ?(chunk_mb = 1.0) ~seed () =
  List.map
    (fun n ->
      (* Smaller vgroups than the default so even the 20-node system
         has a multi-hop overlay, as in the paper's AStream setup. *)
      let params =
        {
          (Atum_core.Params.for_system_size ~seed:(seed + n) n) with
          Atum_core.Params.gmin = 2;
          gmax = 5;
          hc = 3;
          rwl = 5;
        }
      in
      let built = Builder.grow ~params ~n ~seed:(seed + n) () in
      (* Average over several independent forests: parent choices are
         random, and a single draw is noisy at 20 nodes. *)
      let measure cycles_used =
        let analytic, simulated =
          List.split
            (List.init 5 (fun i ->
                 let forest =
                   Astream.build ~atum:built.Builder.atum ~source:built.Builder.first
                     ~cycles_used ~seed:(seed + (10 * cycles_used) + i)
                 in
                 ( (Astream.stream forest ~chunk_mb).Astream.mean_latency,
                   (Astream.simulate forest ~chunk_mb).Astream.sim_mean_latency )))
        in
        (1000.0 *. Atum_util.Stats.mean analytic, 1000.0 *. Atum_util.Stats.mean simulated)
      in
      let single_ms, single_sim_ms = measure 1 in
      let double_ms, double_sim_ms = measure 2 in
      { n; single_ms; double_ms; single_sim_ms; double_sim_ms })
    sizes
