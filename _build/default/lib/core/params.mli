(** Atum system parameters (Table 1) and deployment configuration. *)

type protocol =
  | Sync
      (** Dolev-Strong SMR inside vgroups; the whole deployment runs
          in lock-step rounds (single-datacenter assumption). *)
  | Async
      (** PBFT inside vgroups; event-driven, usable over WAN. *)

type t = {
  protocol : protocol;
  hc : int;  (** number of H-graph cycles (Table 1: 2..12) *)
  rwl : int;  (** random-walk length (Table 1: 4..15) *)
  gmin : int;  (** minimum vgroup size; merge below this *)
  gmax : int;  (** maximum vgroup size; split above this *)
  round_duration : float;  (** Sync only; §6 uses 1–1.5 s *)
  pbft_timeout : float;  (** Async only: view-change timer *)
  heartbeat_period : float;  (** §5.1: coarse, e.g. one per minute *)
  eviction_timeout : float;  (** silence before peers agree to evict *)
  seed : int;
}

val default : t
(** Sync, (hc, rwl) = (5, 10), gmax = 8 — the paper's 800-node
    configuration. *)

val default_async : t

val for_system_size : ?protocol:protocol -> ?seed:int -> int -> t
(** Pick (hc, rwl, gmin, gmax) from the guideline for an expected
    system size, as §6.1.1 does per experiment. *)

val validate : t -> (unit, string) result

val pp : Format.formatter -> t -> unit
