lib/core/atum.mli: Atum_sim Params System
