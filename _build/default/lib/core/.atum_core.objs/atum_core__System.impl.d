lib/core/system.ml: Atum_crypto Atum_overlay Atum_sim Atum_smr Atum_util Float Hashtbl List Option Params Printf String
