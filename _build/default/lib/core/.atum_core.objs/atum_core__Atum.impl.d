lib/core/atum.ml: Atum_overlay Atum_sim Params System
