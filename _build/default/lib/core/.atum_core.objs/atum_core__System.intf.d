lib/core/system.mli: Atum_overlay Atum_sim Atum_smr Hashtbl Params
