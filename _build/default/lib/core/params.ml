type protocol = Sync | Async

type t = {
  protocol : protocol;
  hc : int;
  rwl : int;
  gmin : int;
  gmax : int;
  round_duration : float;
  pbft_timeout : float;
  heartbeat_period : float;
  eviction_timeout : float;
  seed : int;
}

let default =
  {
    protocol = Sync;
    hc = 5;
    rwl = 10;
    gmin = 4;
    gmax = 8;
    round_duration = 1.0;
    pbft_timeout = 2.0;
    heartbeat_period = 60.0;
    eviction_timeout = 240.0;
    seed = 1;
  }

let default_async =
  {
    default with
    protocol = Async;
    (* §6.1.3: Async compensates for the lower fault threshold
       (⌊(g−1)/3⌋) with larger vgroups (k = 7). *)
    gmin = 7;
    gmax = 14;
  }

(* Guideline-derived (hc, rwl) per expected number of vgroups,
   following Fig 4: denser overlays and longer walks as the system
   grows (e.g. 128 vgroups -> (6, 9); the paper's 800-node deployment
   used (5, 10) for ~120 vgroups). *)
let overlay_for_vgroups nv =
  if nv <= 8 then (3, 5)
  else if nv <= 32 then (4, 7)
  else if nv <= 128 then (5, 9)
  else if nv <= 512 then (6, 11)
  else if nv <= 2048 then (6, 13)
  else (8, 14)

let for_system_size ?(protocol = Sync) ?(seed = 1) n =
  let base = match protocol with Sync -> default | Async -> default_async in
  let avg_g = float_of_int (base.gmin + base.gmax) /. 2.0 in
  let nv = max 1 (int_of_float (float_of_int n /. avg_g)) in
  let hc, rwl = overlay_for_vgroups nv in
  { base with protocol; hc; rwl; seed }

let validate t =
  if t.hc < 1 then Error "hc must be at least 1"
  else if t.rwl < 1 then Error "rwl must be at least 1"
  else if t.gmin < 1 then Error "gmin must be at least 1"
  else if t.gmax < t.gmin then Error "gmax must be at least gmin"
  else if t.gmax < 2 * t.gmin - 1 && t.gmax > 3 then
    (* A split of a (gmax+1)-sized vgroup yields halves of about
       (gmax+1)/2; those must not immediately need a merge. *)
    Error "gmax must be at least 2*gmin - 1, or splits immediately re-merge"
  else if t.round_duration <= 0.0 then Error "round_duration must be positive"
  else if t.heartbeat_period <= 0.0 then Error "heartbeat_period must be positive"
  else if t.eviction_timeout < t.heartbeat_period then
    Error "eviction_timeout must cover at least one heartbeat period"
  else Ok ()

let pp fmt t =
  Format.fprintf fmt "{%s; hc=%d; rwl=%d; g=[%d,%d]; round=%.2fs}"
    (match t.protocol with Sync -> "sync" | Async -> "async")
    t.hc t.rwl t.gmin t.gmax t.round_duration
