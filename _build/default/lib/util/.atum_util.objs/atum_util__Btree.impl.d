lib/util/btree.ml: Array List Printf String
