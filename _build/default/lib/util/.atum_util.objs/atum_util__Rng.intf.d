lib/util/rng.mli:
