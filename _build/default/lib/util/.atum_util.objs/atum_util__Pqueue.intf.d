lib/util/pqueue.mli:
