lib/util/stats.mli:
