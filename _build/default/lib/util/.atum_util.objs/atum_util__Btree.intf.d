lib/util/btree.mli:
