(** An in-memory B-tree: the ordered key-value store behind the AShare
    metadata index (the paper's SQLite stand-in, §4.2.2).

    Classic CLRS design: every node holds between [degree - 1] and
    [2*degree - 1] keys (except the root), all leaves sit at the same
    depth, and lookups descend O(log_degree n) nodes.  Insertion
    splits full nodes on the way down; deletion rebalances by
    borrowing from or merging with siblings on the way down, so no
    pass ever revisits a node.

    The structure is polymorphic in both keys and values; the
    comparison function is fixed at creation. *)

type ('k, 'v) t

val create : ?degree:int -> cmp:('k -> 'k -> int) -> unit -> ('k, 'v) t
(** [degree] is the minimum branching factor t (default 8): nodes hold
    t-1 .. 2t-1 keys.  Raises [Invalid_argument] if [degree < 2]. *)

val size : ('k, 'v) t -> int

val is_empty : ('k, 'v) t -> bool

val insert : ('k, 'v) t -> 'k -> 'v -> unit
(** Inserts or replaces. *)

val find : ('k, 'v) t -> 'k -> 'v option

val mem : ('k, 'v) t -> 'k -> bool

val remove : ('k, 'v) t -> 'k -> unit
(** No-op when the key is absent. *)

val min_binding : ('k, 'v) t -> ('k * 'v) option

val max_binding : ('k, 'v) t -> ('k * 'v) option

val iter : ('k -> 'v -> unit) -> ('k, 'v) t -> unit
(** In ascending key order. *)

val fold : ('k -> 'v -> 'acc -> 'acc) -> ('k, 'v) t -> 'acc -> 'acc
(** In ascending key order. *)

val to_list : ('k, 'v) t -> ('k * 'v) list
(** Ascending. *)

val range : ('k, 'v) t -> lo:'k -> hi:'k -> ('k * 'v) list
(** Bindings with lo <= key <= hi, ascending — the query shape SEARCH
    uses for owner-prefix scans. *)

val height : ('k, 'v) t -> int
(** Tree height (a singleton tree has height 1); O(log n) levels. *)

val check_invariants : ('k, 'v) t -> (unit, string) result
(** Key ordering, per-node occupancy bounds, uniform leaf depth, and
    size consistency — used by the property tests. *)
