(* CLRS-style B-tree with minimum degree [t]: every node except the
   root holds between t-1 and 2t-1 keys; insertion splits full nodes
   on the way down, deletion guarantees t keys in every node it
   descends into (borrow or merge), so both are single-pass. *)

type ('k, 'v) node = {
  mutable keys : ('k * 'v) array;
  mutable children : ('k, 'v) node array; (* empty iff leaf *)
}

type ('k, 'v) t = {
  cmp : 'k -> 'k -> int;
  degree : int;
  mutable root : ('k, 'v) node;
  mutable count : int;
}

let leaf node = Array.length node.children = 0

let create ?(degree = 8) ~cmp () =
  if degree < 2 then invalid_arg "Btree.create: degree must be at least 2";
  { cmp; degree; root = { keys = [||]; children = [||] }; count = 0 }

let size t = t.count

let is_empty t = t.count = 0

(* Index of the first key >= k, and whether it is equal. *)
let locate t node k =
  let n = Array.length node.keys in
  let rec scan i =
    if i >= n then (i, false)
    else begin
      let c = t.cmp k (fst node.keys.(i)) in
      if c = 0 then (i, true) else if c < 0 then (i, false) else scan (i + 1)
    end
  in
  scan 0

let rec find_in t node k =
  let i, eq = locate t node k in
  if eq then Some (snd node.keys.(i))
  else if leaf node then None
  else find_in t node.children.(i) k

let find t k = find_in t t.root k

let mem t k = find t k <> None

(* --- array surgery --------------------------------------------------- *)

let array_insert a i x =
  let n = Array.length a in
  Array.init (n + 1) (fun j -> if j < i then a.(j) else if j = i then x else a.(j - 1))

let array_remove a i =
  let n = Array.length a in
  Array.init (n - 1) (fun j -> if j < i then a.(j) else a.(j + 1))

let array_sub a lo len = Array.sub a lo len

(* --- insertion ------------------------------------------------------- *)

let full t node = Array.length node.keys = (2 * t.degree) - 1

(* Split the full child at index [i] of [parent]; the median key moves
   up into [parent]. *)
let split_child t parent i =
  let child = parent.children.(i) in
  let d = t.degree in
  let median = child.keys.(d - 1) in
  let right =
    {
      keys = array_sub child.keys d (d - 1);
      children = (if leaf child then [||] else array_sub child.children d d);
    }
  in
  child.keys <- array_sub child.keys 0 (d - 1);
  if not (leaf child) then child.children <- array_sub child.children 0 d;
  parent.keys <- array_insert parent.keys i median;
  parent.children <- array_insert parent.children (i + 1) right

let rec insert_nonfull t node k v =
  let i, eq = locate t node k in
  if eq then node.keys.(i) <- (k, v) (* replace *)
  else if leaf node then begin
    node.keys <- array_insert node.keys i (k, v);
    t.count <- t.count + 1
  end
  else begin
    let i =
      if full t node.children.(i) then begin
        split_child t node i;
        let c = t.cmp k (fst node.keys.(i)) in
        if c = 0 then begin
          node.keys.(i) <- (k, v);
          -1 (* replaced the promoted median; nothing to descend into *)
        end
        else if c > 0 then i + 1
        else i
      end
      else i
    in
    if i >= 0 then insert_nonfull t node.children.(i) k v
  end

let insert t k v =
  if full t t.root then begin
    let old = t.root in
    let fresh = { keys = [||]; children = [| old |] } in
    t.root <- fresh;
    split_child t fresh 0
  end;
  insert_nonfull t t.root k v

(* --- deletion -------------------------------------------------------- *)

let rec max_binding_of node =
  if leaf node then node.keys.(Array.length node.keys - 1)
  else max_binding_of node.children.(Array.length node.children - 1)

let rec min_binding_of node =
  if leaf node then node.keys.(0) else min_binding_of node.children.(0)

(* Merge children i and i+1 of [node] around separator key i. *)
let merge_children node i =
  let left = node.children.(i) and right = node.children.(i + 1) in
  left.keys <- Array.concat [ left.keys; [| node.keys.(i) |]; right.keys ];
  if not (leaf left) then left.children <- Array.append left.children right.children;
  node.keys <- array_remove node.keys i;
  node.children <- array_remove node.children (i + 1)

(* Guarantee that child [i] of [node] has at least [degree] keys
   before descending into it.  Returns the (possibly changed) index of
   the child to descend into. *)
let reinforce t node i =
  let d = t.degree in
  let child = node.children.(i) in
  if Array.length child.keys >= d then i
  else begin
    let left_ok = i > 0 && Array.length node.children.(i - 1).keys >= d in
    let right_ok =
      i < Array.length node.children - 1 && Array.length node.children.(i + 1).keys >= d
    in
    if left_ok then begin
      (* rotate through the separator from the left sibling *)
      let sib = node.children.(i - 1) in
      let moved = sib.keys.(Array.length sib.keys - 1) in
      child.keys <- array_insert child.keys 0 node.keys.(i - 1);
      node.keys.(i - 1) <- moved;
      sib.keys <- array_sub sib.keys 0 (Array.length sib.keys - 1);
      if not (leaf sib) then begin
        let moved_child = sib.children.(Array.length sib.children - 1) in
        child.children <- array_insert child.children 0 moved_child;
        sib.children <- array_sub sib.children 0 (Array.length sib.children - 1)
      end;
      i
    end
    else if right_ok then begin
      let sib = node.children.(i + 1) in
      let moved = sib.keys.(0) in
      child.keys <- Array.append child.keys [| node.keys.(i) |];
      node.keys.(i) <- moved;
      sib.keys <- array_remove sib.keys 0;
      if not (leaf sib) then begin
        child.children <- Array.append child.children [| sib.children.(0) |];
        sib.children <- array_remove sib.children 0
      end;
      i
    end
    else if i > 0 then begin
      merge_children node (i - 1);
      i - 1
    end
    else begin
      merge_children node i;
      i
    end
  end

let rec remove_from t node k =
  let i, eq = locate t node k in
  if leaf node then begin
    if eq then begin
      node.keys <- array_remove node.keys i;
      t.count <- t.count - 1
    end
  end
  else if eq then begin
    let d = t.degree in
    if Array.length node.children.(i).keys >= d then begin
      (* replace with the predecessor, then delete it below *)
      let pk, pv = max_binding_of node.children.(i) in
      node.keys.(i) <- (pk, pv);
      remove_from t node.children.(i) pk
    end
    else if Array.length node.children.(i + 1).keys >= d then begin
      let sk, sv = min_binding_of node.children.(i + 1) in
      node.keys.(i) <- (sk, sv);
      remove_from t node.children.(i + 1) sk
    end
    else begin
      merge_children node i;
      remove_from t node.children.(i) k
    end
  end
  else begin
    let i = reinforce t node i in
    (* After a merge the separator set changed; re-locate. *)
    let j, eq = locate t node k in
    if eq then remove_from_internal_hit t node j k
    else remove_from t node.children.(min j (Array.length node.children - 1)) k;
    ignore i
  end

and remove_from_internal_hit t node i k =
  (* The key moved into [node] itself during rebalancing. *)
  let d = t.degree in
  if Array.length node.children.(i).keys >= d then begin
    let pk, pv = max_binding_of node.children.(i) in
    node.keys.(i) <- (pk, pv);
    remove_from t node.children.(i) pk
  end
  else if Array.length node.children.(i + 1).keys >= d then begin
    let sk, sv = min_binding_of node.children.(i + 1) in
    node.keys.(i) <- (sk, sv);
    remove_from t node.children.(i + 1) sk
  end
  else begin
    merge_children node i;
    remove_from t node.children.(i) k
  end

let shrink_root t =
  if Array.length t.root.keys = 0 && not (leaf t.root) then t.root <- t.root.children.(0)

let remove t k =
  if mem t k then begin
    remove_from t t.root k;
    shrink_root t
  end

(* --- traversal -------------------------------------------------------- *)

let min_binding t = if t.count = 0 then None else Some (min_binding_of t.root)

let max_binding t = if t.count = 0 then None else Some (max_binding_of t.root)

let rec iter_node f node =
  if leaf node then Array.iter (fun (k, v) -> f k v) node.keys
  else begin
    let n = Array.length node.keys in
    for i = 0 to n - 1 do
      iter_node f node.children.(i);
      let k, v = node.keys.(i) in
      f k v
    done;
    iter_node f node.children.(n)
  end

let iter f t = if t.count > 0 then iter_node f t.root

let fold f t init =
  let acc = ref init in
  iter (fun k v -> acc := f k v !acc) t;
  !acc

let to_list t = List.rev (fold (fun k v acc -> (k, v) :: acc) t [])

let range t ~lo ~hi =
  let rec collect node acc =
    if leaf node then
      Array.fold_left
        (fun acc (k, v) -> if t.cmp k lo >= 0 && t.cmp k hi <= 0 then (k, v) :: acc else acc)
        acc node.keys
    else begin
      let n = Array.length node.keys in
      let acc = ref acc in
      for i = 0 to n - 1 do
        let k, v = node.keys.(i) in
        (* skip subtrees entirely below lo or above hi *)
        if t.cmp k lo >= 0 then acc := collect node.children.(i) !acc;
        if t.cmp k lo >= 0 && t.cmp k hi <= 0 then acc := (k, v) :: !acc
      done;
      if t.cmp (fst node.keys.(n - 1)) hi < 0 then acc := collect node.children.(n) !acc;
      !acc
    end
  in
  if t.count = 0 then [] else List.rev (collect t.root [])

let height t =
  let rec go node = if leaf node then 1 else 1 + go node.children.(0) in
  if t.count = 0 then 0 else go t.root

(* --- invariants ------------------------------------------------------- *)

let check_invariants t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let counted = ref 0 in
  let max_keys = (2 * t.degree) - 1 and min_keys = t.degree - 1 in
  let rec walk node ~is_root ~depth =
    let nk = Array.length node.keys in
    counted := !counted + nk;
    if nk > max_keys then err "node with %d keys exceeds max %d" nk max_keys;
    if (not is_root) && nk < min_keys then err "node with %d keys below min %d" nk min_keys;
    for i = 0 to nk - 2 do
      if t.cmp (fst node.keys.(i)) (fst node.keys.(i + 1)) >= 0 then
        err "keys out of order within a node"
    done;
    if leaf node then [ depth ]
    else begin
      if Array.length node.children <> nk + 1 then begin
        err "internal node with %d keys has %d children" nk (Array.length node.children);
        []
      end
      else begin
        (* separator ordering *)
        for i = 0 to nk - 1 do
          let sep = fst node.keys.(i) in
          let left_max = fst (max_binding_of node.children.(i)) in
          let right_min = fst (min_binding_of node.children.(i + 1)) in
          if t.cmp left_max sep >= 0 then err "left subtree reaches past separator";
          if t.cmp right_min sep <= 0 then err "right subtree starts before separator"
        done;
        List.concat_map (fun c -> walk c ~is_root:false ~depth:(depth + 1))
          (Array.to_list node.children)
      end
    end
  in
  if t.count > 0 || Array.length t.root.keys > 0 then begin
    let depths = walk t.root ~is_root:true ~depth:0 in
    (match List.sort_uniq compare depths with
    | [] | [ _ ] -> ()
    | _ -> err "leaves at different depths")
  end;
  if !counted <> t.count then err "size %d does not match %d stored keys" t.count !counted;
  match !errors with [] -> Ok () | es -> Error (String.concat "; " (List.rev es))
