type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  { state = mix64 s }

let copy t = { state = t.state }

(* Uniform int in [0, bound) by rejection on the top bits. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let rec loop () =
    let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 1) in
    let v = r mod bound in
    if r - v + (bound - 1) < 0 then loop () else v
  in
  loop ()

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let exponential t rate =
  let u = 1.0 -. float t 1.0 in
  -.log u /. rate

let gaussian t ~mean ~stddev =
  let rec draw () =
    let u1 = float t 1.0 in
    if u1 <= 1e-300 then draw () else u1
  in
  let u1 = draw () and u2 = float t 1.0 in
  mean +. (stddev *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let lognormal t ~mu ~sigma = exp (gaussian t ~mean:mu ~stddev:sigma)

let pick_array t a =
  if Array.length a = 0 then invalid_arg "Rng.pick_array: empty array";
  a.(int t (Array.length a))

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let shuffle_list t xs =
  let a = Array.of_list xs in
  shuffle t a;
  Array.to_list a

let sample_without_replacement t k xs =
  let a = Array.of_list xs in
  shuffle t a;
  let n = min k (Array.length a) in
  Array.to_list (Array.sub a 0 n)
