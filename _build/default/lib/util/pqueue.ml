type 'a entry = { prio : float; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; len = 0; next_seq = 0 }

let is_empty t = t.len = 0

let size t = t.len

let less a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let grow t =
  let cap = max 16 (2 * Array.length t.heap) in
  let heap = Array.make cap t.heap.(0) in
  Array.blit t.heap 0 heap 0 t.len;
  t.heap <- heap

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t.heap.(i) t.heap.(parent) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(parent);
      t.heap.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && less t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.len && less t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(!smallest);
    t.heap.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t prio value =
  let entry = { prio; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  if t.len = 0 && Array.length t.heap = 0 then t.heap <- Array.make 16 entry;
  if t.len = Array.length t.heap then grow t;
  t.heap.(t.len) <- entry;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.heap.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.heap.(0) <- t.heap.(t.len);
      sift_down t 0
    end;
    Some (top.prio, top.value)
  end

let peek t = if t.len = 0 then None else Some (t.heap.(0).prio, t.heap.(0).value)

let clear t =
  t.len <- 0;
  t.heap <- [||]
