(** Deterministic splittable pseudo-random number generator.

    All randomness in the simulator and in the protocols flows through
    values of type {!t}, created from an explicit seed, so that every
    experiment is reproducible.  The generator is splitmix64, which is
    fast, has a 64-bit state, and supports cheap splitting: {!split}
    derives an independent stream, which lets concurrent protocol
    instances draw random numbers without perturbing each other. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. *)

val split : t -> t
(** [split t] derives an independent generator; [t] advances. *)

val copy : t -> t
(** [copy t] duplicates the current state (the copy replays [t]'s
    future draws). *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be > 0.
    Uses rejection sampling, so it is unbiased. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t rate] samples Exp(rate); mean [1. /. rate]. *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Box-Muller normal sample. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** [exp] of a Gaussian — used for WAN latency tails. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. Raises [Invalid_argument] on
    the empty list. *)

val pick_array : t -> 'a array -> 'a

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val shuffle_list : t -> 'a list -> 'a list

val sample_without_replacement : t -> int -> 'a list -> 'a list
(** [sample_without_replacement t k xs] draws [min k (length xs)]
    distinct elements, in random order. *)
