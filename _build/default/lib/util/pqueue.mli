(** Mutable binary min-heap keyed by [(priority, sequence)].

    The simulator's event queue: events with equal priority (time) pop
    in insertion order, which makes simulation runs deterministic. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val size : 'a t -> int

val push : 'a t -> float -> 'a -> unit
(** [push q prio x] inserts [x] with priority [prio]. *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the minimum-priority element; ties break by
    insertion order. *)

val peek : 'a t -> (float * 'a) option

val clear : 'a t -> unit
