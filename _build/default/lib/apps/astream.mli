(** AStream: data streaming over Atum (§4.3).

    Tier 1 sends stream-chunk digests through Atum broadcast (reliable
    but SMR-priced); tier 2 moves the bulk data over a spanning forest
    with a push-pull scheme.

    The forest construction follows the paper: a deterministic
    function picks a cycle of the H-graph and a direction; every node
    takes [f + 1] random parents from the upstream neighbor vgroup on
    that cycle, nodes in vgroups adjacent to the source take the
    source itself as single parent, and nodes keep shortcut parents in
    the other neighbor vgroups.  Because every vgroup has a correct
    majority and parents outnumber the per-vgroup fault bound, every
    correct node has at least one correct parent — so every chunk
    eventually reaches everyone ({!check_forest}).

    The [cycles_used] knob is the Fig 12 experiment: building the
    forest over one cycle (Single) or two (Double). *)

type t

type node_id = int

val build :
  atum:Atum_core.Atum.t -> source:node_id -> cycles_used:int -> seed:int -> t
(** Construct the forest from the current overlay.  [cycles_used] must
    be between 1 and the configured [hc]. *)

val source : t -> node_id

val parents : t -> node_id -> node_id list
(** Primary parents, in preference order (first = first pushed). *)

val shortcut_parents : t -> node_id -> node_id list

val check_forest : t -> (unit, string) result
(** Every correct node must be reachable from the source through
    correct parents. *)

type stream_stats = {
  per_node_latency : (node_id * float) list;
      (** steady-state per-chunk delivery latency, seconds *)
  mean_latency : float;
  max_latency : float;
  first_chunk_penalty : float;
      (** mean extra delay on the first chunk from probing dead or
          Byzantine parents before settling on a valid one *)
  unreached : node_id list;  (** correct nodes with no correct path *)
}

val stream : t -> chunk_mb:float -> stream_stats
(** Steady-state dissemination cost of one chunk: shortest correct
    parent path from the source, each hop costing one RTT plus the
    chunk transfer time at the host uplink rate. *)

type simulation_stats = {
  sim_per_node : (node_id * float) list;
      (** mean per-chunk delivery latency over the simulated stream *)
  sim_mean_latency : float;
  sim_max_latency : float;
  parent_switches : int;
      (** children that had to probe past a dead or Byzantine parent *)
  sim_unreached : node_id list;
}

val simulate :
  ?chunks:int -> ?rate_mb_per_s:float -> t -> chunk_mb:float -> simulation_stats
(** Event-driven push-pull dissemination (§4.3): the source emits
    [chunks] chunks at [rate_mb_per_s]; chunk 1 is pushed down the
    forest, children then stick to the first parent that served a
    valid chunk and pull the rest from it, probing the next parent
    after a timeout if it stops serving.  Runs on its own
    discrete-event engine; Byzantine nodes receive but never serve. *)
