(** A Chord-style DHT — the alternative metadata layer the paper
    explicitly leaves as future work (§4.2, footnote: "An alternative
    is to use a DHT.  This method, however, is fraught with challenges
    if we want to tolerate arbitrary faults and churn").

    This module makes that remark quantitative.  It implements Chord's
    structure over the current membership — hashed ring positions,
    finger tables, successor lists — with greedy
    closest-preceding-finger routing, and then lets experiments injure
    it the two ways the paper worries about:

    - {b churn}: finger tables are a {e snapshot}; nodes that leave
      after the snapshot ({!mark_dead}) make fingers dangle, and
      lookups pay extra hops (or fail) working around them until the
      next {!rebuild} (Chord's stabilization);
    - {b Byzantine routers}: a Byzantine node ({!mark_byzantine})
      silently drops queries routed through it; lookups survive only
      by detouring, and data survives only because each key is
      replicated on [replicas] consecutive successors.

    The [dht] benchmark target compares this against Atum+AShare's
    broadcast-replicated index. *)

type t

type lookup_result = {
  responsible : int option;
      (** a live, correct holder of the key, if the lookup succeeded *)
  hops : int;  (** routing hops taken, detours included *)
  detours : int;  (** dead or Byzantine fingers the route had to skip *)
}

val build : ?bits:int -> ?replicas:int -> node_ids:int list -> unit -> t
(** Snapshot a perfectly-stabilized Chord ring over [node_ids]:
    positions are SHA-256 hashes truncated to [bits] (default 30),
    fingers are exact.  [replicas] (default 4) consecutive successors
    hold each key. *)

val size : t -> int

val position_of : t -> int -> int
(** A node's ring position. *)

val key_position : t -> string -> int

val holders : t -> string -> int list
(** The [replicas] successors responsible for a key (as of the
    snapshot). *)

val mark_dead : t -> int -> unit
(** The node left after the snapshot; its fingers dangle until
    {!rebuild}. *)

val mark_byzantine : t -> int -> unit
(** The node drops queries routed through it and corrupts anything it
    stores. *)

val lookup : t -> from:int -> key:string -> lookup_result
(** Route greedily from [from]'s finger table; skip dead or Byzantine
    fingers (each skip costs a detour hop).  Succeeds when it reaches
    a live correct replica of the key. *)

val rebuild : t -> t
(** Chord stabilization: re-snapshot the ring over the currently live
    nodes (Byzantine marks are kept — stabilization cannot detect
    quiet Byzantine routers). *)

val mean_lookup_hops : t -> samples:int -> seed:int -> float
(** Mean hops over random (source, key) lookups that succeed. *)

val lookup_success_rate : t -> samples:int -> seed:int -> float
