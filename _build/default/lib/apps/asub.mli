(** ASub: topic-based publish/subscribe on Atum (§4.1).

    Topic-based pub/sub is equivalent to group communication, so each
    operation maps directly to the Atum API:
    create_topic → bootstrap, subscribe → join, unsubscribe → leave,
    publish → broadcast.  Each topic is one Atum instance; clients are
    identified by name and mapped to a node per topic they follow. *)

type t

type event = { topic : string; subscriber : string; publisher : string; payload : string }

val create : ?params:Atum_core.Params.t -> unit -> t

val create_topic : t -> string -> unit
(** Bootstraps a fresh Atum instance for the topic; the creator is the
    implicit first subscriber, named ["@root"].  Raises
    [Invalid_argument] on duplicates. *)

val topics : t -> string list

val subscribe : t -> topic:string -> string -> unit
(** [subscribe t ~topic client] joins [client] to the topic's group
    through a random existing subscriber.  Completion is asynchronous;
    it is reflected by {!is_subscribed} once the join settles. *)

val unsubscribe : t -> topic:string -> string -> unit

val is_subscribed : t -> topic:string -> string -> bool

val subscribers : t -> topic:string -> string list

val publish : t -> topic:string -> as_:string -> string -> unit
(** Broadcast an event to every subscriber of the topic.  The
    publisher must be subscribed. *)

val on_event : t -> (event -> unit) -> unit
(** Delivery callback, invoked once per (subscriber, event). *)

val run_for : t -> float -> unit
(** Advance every topic's simulation by [dt] seconds. *)

val events_delivered : t -> int
