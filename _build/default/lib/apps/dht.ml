type t = {
  bits : int;
  replicas : int;
  ring : (int * int) array; (* (position, node), sorted by position *)
  positions : (int, int) Hashtbl.t;
  fingers : (int, int array) Hashtbl.t; (* node -> finger targets (node ids) *)
  successors : (int, int array) Hashtbl.t; (* node -> successor list *)
  dead : (int, unit) Hashtbl.t;
  byz : (int, unit) Hashtbl.t;
  rng : Atum_util.Rng.t; (* retry entry points *)
}

type lookup_result = { responsible : int option; hops : int; detours : int }



let hash_to_position ~bits s =
  let raw = Atum_crypto.Sha256.digest s in
  let v = ref 0 in
  for i = 0 to 7 do
    v := (!v lsl 8) lor Char.code raw.[i]
  done;
  !v land ((1 lsl bits) - 1)

(* First ring entry at or after [p] (circular). *)
let successor_entry ring p =
  let n = Array.length ring in
  let rec search lo hi =
    if lo >= hi then lo else begin
      let mid = (lo + hi) / 2 in
      if fst ring.(mid) < p then search (mid + 1) hi else search lo mid
    end
  in
  let i = search 0 n in
  ring.(i mod n)

let build ?(bits = 30) ?(replicas = 4) ~node_ids () =
  if node_ids = [] then invalid_arg "Dht.build: need at least one node";
  if replicas < 1 then invalid_arg "Dht.build: replicas must be at least 1";
  let positions = Hashtbl.create 64 in
  let used = Hashtbl.create 64 in
  List.iter
    (fun nid ->
      (* resolve the (unlikely) position collisions deterministically *)
      let rec place salt =
        let p = hash_to_position ~bits (Printf.sprintf "dht-node-%d-%d" nid salt) in
        if Hashtbl.mem used p then place (salt + 1) else p
      in
      let p = place 0 in
      Hashtbl.replace used p ();
      Hashtbl.replace positions nid p)
    node_ids;
  let ring =
    Array.of_list
      (List.sort compare (List.map (fun nid -> (Hashtbl.find positions nid, nid)) node_ids))
  in
  let n = Array.length ring in
  let fingers = Hashtbl.create 64 in
  let successors = Hashtbl.create 64 in
  Array.iteri
    (fun idx (p, nid) ->
      let f =
        Array.init bits (fun i -> snd (successor_entry ring ((p + (1 lsl i)) land ((1 lsl bits) - 1))))
      in
      Hashtbl.replace fingers nid f;
      let s = Array.init (min n (replicas + 2)) (fun i -> snd ring.((idx + 1 + i) mod n)) in
      Hashtbl.replace successors nid s)
    ring;
  {
    bits;
    replicas;
    ring;
    positions;
    fingers;
    successors;
    dead = Hashtbl.create 16;
    byz = Hashtbl.create 16;
    rng = Atum_util.Rng.create (Hashtbl.hash (bits, replicas, List.length node_ids));
  }

let size t = Array.length t.ring - Hashtbl.length t.dead

let position_of t nid =
  match Hashtbl.find_opt t.positions nid with
  | Some p -> p
  | None -> invalid_arg "Dht.position_of: unknown node"

let key_position t key = hash_to_position ~bits:t.bits ("dht-key-" ^ key)

let holders t key =
  let kp = key_position t key in
  let n = Array.length t.ring in
  let start =
    let rec search lo hi =
      if lo >= hi then lo else begin
        let mid = (lo + hi) / 2 in
        if fst t.ring.(mid) < kp then search (mid + 1) hi else search lo mid
      end
    in
    search 0 n mod n
  in
  List.init (min t.replicas n) (fun i -> snd t.ring.((start + i) mod n))

let mark_dead t nid = Hashtbl.replace t.dead nid ()

let mark_byzantine t nid = Hashtbl.replace t.byz nid ()

let alive t nid = not (Hashtbl.mem t.dead nid)

let usable t nid = alive t nid && not (Hashtbl.mem t.byz nid)

(* circular interval (a, b] *)
let between ~a ~b p = if a < b then a < p && p <= b else p > a || p <= b

(* One recursive routing attempt.  Dead nodes are detectable (requests
   time out), so routes detour around them; a quiet Byzantine node is
   indistinguishable from a correct one until the query lands on it
   and silently dies — that is the whole problem the paper's footnote
   alludes to. *)
let attempt t ~from ~kp ~key_holders ~hops ~detours =
  let budget = 8 * t.bits in
  let rec route current steps =
    if Hashtbl.mem t.byz current then `Dropped
    else if List.mem current key_holders && usable t current then `Found current
    else if steps > budget then `Exhausted
    else begin
      let cp = position_of t current in
      let fingers = Hashtbl.find t.fingers current in
      let best = ref None in
      Array.iter
        (fun f ->
          if f <> current && between ~a:cp ~b:kp (position_of t f) then begin
            if alive t f then begin
              match !best with
              | Some b when not (between ~a:(position_of t b) ~b:kp (position_of t f)) -> ()
              | _ -> best := Some f
            end
            else incr detours
          end)
        fingers;
      match !best with
      | Some next when next <> current ->
        incr hops;
        route next (steps + 1)
      | _ ->
        let succs = Hashtbl.find t.successors current in
        let next =
          Array.fold_left
            (fun acc s ->
              match acc with
              | Some _ -> acc
              | None ->
                if s = current then None
                else if alive t s then Some s
                else begin
                  incr detours;
                  None
                end)
            None succs
        in
        (match next with
        | Some next ->
          incr hops;
          route next (steps + 1)
        | None -> `Exhausted)
    end
  in
  route from 0

let random_alive t =
  let candidates =
    Array.to_list t.ring
    |> List.filter_map (fun (_, nid) -> if alive t nid then Some nid else None)
  in
  Atum_util.Rng.pick t.rng candidates

let lookup t ~from ~key =
  let kp = key_position t key in
  let key_holders = holders t key in
  let hops = ref 0 and detours = ref 0 in
  if not (alive t from) then { responsible = None; hops = 0; detours = 0 }
  else begin
    (* Up to three end-to-end attempts: a query that lands on a quiet
       Byzantine router vanishes, and the client re-issues it through
       a different entry point. *)
    let rec attempts entry remaining =
      match attempt t ~from:entry ~kp ~key_holders ~hops ~detours with
      | `Found owner -> { responsible = Some owner; hops = !hops; detours = !detours }
      | `Dropped | `Exhausted ->
        if remaining = 0 then { responsible = None; hops = !hops; detours = !detours }
        else attempts (random_alive t) (remaining - 1)
    in
    attempts from 2
  end

let rebuild t =
  let live =
    Array.to_list t.ring
    |> List.filter_map (fun (_, nid) -> if Hashtbl.mem t.dead nid then None else Some nid)
  in
  let fresh = build ~bits:t.bits ~replicas:t.replicas ~node_ids:live () in
  Hashtbl.iter (fun nid () -> if List.mem nid live then mark_byzantine fresh nid) t.byz;
  fresh

let random_live t rng =
  (* sampling clients: correct live nodes *)
  let candidates =
    Array.to_list t.ring
    |> List.filter_map (fun (_, nid) -> if usable t nid then Some nid else None)
  in
  Atum_util.Rng.pick rng candidates

let mean_lookup_hops t ~samples ~seed =
  let rng = Atum_util.Rng.create seed in
  let total = ref 0 and ok = ref 0 in
  for i = 1 to samples do
    let from = random_live t rng in
    let r = lookup t ~from ~key:(Printf.sprintf "sample-key-%d" i) in
    match r.responsible with
    | Some _ ->
      total := !total + r.hops;
      incr ok
    | None -> ()
  done;
  if !ok = 0 then nan else float_of_int !total /. float_of_int !ok

let lookup_success_rate t ~samples ~seed =
  let rng = Atum_util.Rng.create seed in
  let ok = ref 0 in
  for i = 1 to samples do
    let from = random_live t rng in
    let r = lookup t ~from ~key:(Printf.sprintf "rate-key-%d" i) in
    if r.responsible <> None then incr ok
  done;
  float_of_int !ok /. float_of_int samples
