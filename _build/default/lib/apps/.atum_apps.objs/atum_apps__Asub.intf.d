lib/apps/asub.mli: Atum_core
