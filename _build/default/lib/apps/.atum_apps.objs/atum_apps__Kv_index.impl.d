lib/apps/kv_index.ml: Atum_util List String
