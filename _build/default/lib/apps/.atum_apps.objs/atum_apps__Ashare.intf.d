lib/apps/ashare.mli: Atum_core
