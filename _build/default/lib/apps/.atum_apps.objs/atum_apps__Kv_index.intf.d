lib/apps/kv_index.mli:
