lib/apps/dht.mli:
