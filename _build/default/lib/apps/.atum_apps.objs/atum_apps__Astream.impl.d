lib/apps/astream.ml: Array Atum_core Atum_overlay Atum_sim Atum_smr Atum_util Float Hashtbl List Option Printf String
