lib/apps/asub.ml: Atum_core Atum_util Hashtbl List String
