lib/apps/dht.ml: Array Atum_crypto Atum_util Char Hashtbl List Printf String
