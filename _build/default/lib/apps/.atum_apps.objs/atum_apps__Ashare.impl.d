lib/apps/ashare.ml: Atum_core Atum_crypto Atum_sim Atum_util Fun Hashtbl Kv_index List Option String
