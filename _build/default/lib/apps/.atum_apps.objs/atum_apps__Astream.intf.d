lib/apps/astream.mli: Atum_core
