type result = {
  per_node_round : int array;
  rounds_to_full : int;
  messages : int;
}

let run ~n ~fanout ~seed =
  if n < 1 then invalid_arg "Gossip.run: n must be positive";
  if fanout < 1 then invalid_arg "Gossip.run: fanout must be positive";
  let rng = Atum_util.Rng.create seed in
  let round_of = Array.make n max_int in
  round_of.(0) <- 0;
  let infected = ref [ 0 ] in
  let count = ref 1 in
  let messages = ref 0 in
  let round = ref 0 in
  while !count < n do
    incr round;
    let senders = !infected in
    List.iter
      (fun _src ->
        for _ = 1 to fanout do
          incr messages;
          let dst = Atum_util.Rng.int rng n in
          if round_of.(dst) = max_int then begin
            round_of.(dst) <- !round;
            infected := dst :: !infected;
            incr count
          end
        done)
      senders
  done;
  { per_node_round = round_of; rounds_to_full = !round; messages = !messages }

let latencies result ~round_duration =
  Array.to_list (Array.map (fun r -> float_of_int r *. round_duration) result.per_node_round)

let expected_rounds_upper_bound ~n ~fanout =
  (* Push gossip with fanout F infects in O(log n / log (F+1)) rounds;
     the constant is generous to keep the test robust. *)
  (3.0 *. log (float_of_int n) /. log (float_of_int (fanout + 1))) +. 5.0
