lib/baselines/gossip.ml: Array Atum_util List
