lib/baselines/global_smr.mli:
