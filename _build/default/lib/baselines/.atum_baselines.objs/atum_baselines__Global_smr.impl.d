lib/baselines/global_smr.ml: List
