lib/baselines/gossip.mli:
