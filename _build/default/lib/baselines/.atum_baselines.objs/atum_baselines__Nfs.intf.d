lib/baselines/nfs.mli:
