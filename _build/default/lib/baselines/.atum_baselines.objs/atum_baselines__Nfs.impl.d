lib/baselines/nfs.ml: Atum_sim
