type result = { rounds : int; latency : float; messages_lower_bound : int }

let run ~n ~faults ~round_duration =
  if n < 1 then invalid_arg "Global_smr.run: n must be positive";
  if faults < 0 || faults >= n then invalid_arg "Global_smr.run: bad fault count";
  let rounds = faults + 1 in
  {
    rounds;
    latency = float_of_int rounds *. round_duration;
    messages_lower_bound = n * rounds;
  }

let latencies result ~n = List.init n (fun _ -> result.latency)
