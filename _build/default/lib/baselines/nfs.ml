let server = Atum_sim.Bulk.ec2_micro

(* NFS pays a small protocol overhead (mount/lookup/attribute round
   trips) on top of the raw stream. *)
let protocol_overhead = 0.05

let read_time ~mb =
  if mb <= 0.0 then invalid_arg "Nfs.read_time: size must be positive";
  protocol_overhead +. Atum_sim.Bulk.single_stream_time ~src:server ~dst:server ~mb

let latency_per_mb ~mb = read_time ~mb /. mb
