(** NFS4 stand-in — the Fig 9 baseline: a client reading a whole file
    from a single remote server over one stream, with no replication,
    no integrity checks, and no fault tolerance. *)

val read_time : mb:float -> float
(** Seconds to read an [mb]-megabyte file: per-request overhead plus a
    single-stream transfer (connection setup and slow-start amortize
    with size, as in Fig 9). *)

val latency_per_mb : mb:float -> float
