(** S.SMR — the second Fig 8 baseline: the synchronous Byzantine
    agreement protocol Atum uses inside vgroups (Dolev-Strong), scaled
    out to the whole system.

    Dolev-Strong over [n] nodes configured for [f] faults delivers in
    exactly [f + 1] rounds, with O(n²) messages per round — which is
    precisely why the paper (and Atum) confine it to small vgroups.
    Running the real message-level implementation at n = 850 would
    mean hundreds of millions of simulated messages carrying signature
    chains, so this module computes the exact round/message counts of
    the protocol analytically; the protocol logic itself is the tested
    [Atum_smr.Dolev_strong]. *)

type result = {
  rounds : int;  (** f + 1 *)
  latency : float;  (** seconds; every correct node delivers together *)
  messages_lower_bound : int;  (** n per round: n·(f+1) relay sends *)
}

val run : n:int -> faults:int -> round_duration:float -> result
(** [faults] is the number of faults the deployment is configured to
    tolerate.  In the paper's Fig 8 run, the 850-node system is
    provisioned for the 50 injected faults, giving 51 rounds of 1.5 s
    ≈ 76.5 s. *)

val latencies : result -> n:int -> float list
(** Per-node delivery latencies (a step CDF: everyone at [latency]). *)
