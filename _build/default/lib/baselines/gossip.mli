(** S.Gossip — the first Fig 8 baseline: a classic round-based,
    crash-tolerant push gossip protocol with global membership
    knowledge and no failures.  Every infected node sends the message
    to [fanout] uniformly random nodes each round.

    To make the comparison fair the paper sets the fanout to the size
    of an Atum node's view — a loose upper bound on Atum's fanout. *)

type result = {
  per_node_round : int array;  (** round in which each node delivered (index = node) *)
  rounds_to_full : int;  (** rounds until every node delivered *)
  messages : int;  (** total gossip messages sent *)
}

val run : n:int -> fanout:int -> seed:int -> result
(** Disseminate one rumor from node 0 until every node holds it. *)

val latencies : result -> round_duration:float -> float list
(** Per-node delivery latency in seconds (the Fig 8 CDF series). *)

val expected_rounds_upper_bound : n:int -> fanout:int -> float
(** log-based upper bound used as a sanity check in tests. *)
