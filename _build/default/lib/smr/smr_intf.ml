(** Shared types for the state-machine-replication protocols that run
    inside every vgroup. *)

type node_id = int

(** How a protocol instance talks to the outside world.  The vgroup
    runtime supplies one per (vgroup, epoch); [members] is fixed for
    the lifetime of the instance — membership changes create a new
    epoch and a new instance (SMART-style reconfiguration, §5.2). *)
type 'm transport = {
  self : node_id;
  members : node_id list;  (** includes [self]; fixed for the instance *)
  f : int;  (** fault threshold this instance is configured for *)
  send : node_id -> 'm -> unit;
  set_timer : float -> (unit -> unit) -> unit;
}

(** An operation as seen by the replicated state machine. *)
type op = { origin : node_id; payload : string }

let op_to_string { origin; payload } = string_of_int origin ^ "|" ^ payload

let op_of_string s =
  match String.index_opt s '|' with
  | None -> invalid_arg "Smr_intf.op_of_string"
  | Some i ->
    {
      origin = int_of_string (String.sub s 0 i);
      payload = String.sub s (i + 1) (String.length s - i - 1);
    }

(** Fault thresholds per protocol family (§3.1). *)
let sync_f ~group_size = (group_size - 1) / 2

let async_f ~group_size = (group_size - 1) / 3
