(** Dolev-Strong authenticated Byzantine broadcast (SIAM J. Comput.
    1983), the agreement primitive of the synchronous deployment.

    One instance lets a designated [sender] broadcast one value to a
    fixed member set, tolerating up to [f] Byzantine members (any [f],
    including the sender), in [f + 1] synchronous rounds:

    - round 1: the sender signs its value and sends it to everyone;
    - round [r]: a member that receives a value carrying [r] valid
      signatures from distinct members (the first being the sender's)
      {e extracts} it, appends its own signature and relays it — so a
      value extracted by any correct member at round [r <= f] is
      extracted by every correct member by round [r + 1];
    - after round [f + 1]: a member decides the extracted value if it
      extracted exactly one, and the default ⊥ ([None]) otherwise.

    The instance is driven externally: the vgroup runtime feeds
    received messages with {!receive} and calls {!end_of_round} at
    every round boundary, sending whatever it returns. *)

type msg

val pp_msg : Format.formatter -> msg -> unit

val msg_size : msg -> int
(** Approximate wire size in bytes (for traffic accounting). *)

type t

val create :
  keyring:Atum_crypto.Signature.keyring ->
  self:Smr_intf.node_id ->
  members:Smr_intf.node_id list ->
  sender:Smr_intf.node_id ->
  f:int ->
  instance_id:string ->
  t
(** [instance_id] must be globally unique (it is part of the signed
    payload, preventing cross-instance replay). *)

val initiate : t -> string -> (Smr_intf.node_id * msg) list
(** Called on the sender at the start of round 1; returns the signed
    messages to send (one per other member).  The sender extracts its
    own value immediately. *)

val initiate_equivocating :
  t -> (Smr_intf.node_id * string) list -> (Smr_intf.node_id * msg) list
(** Byzantine-sender fault injection: send a (possibly different)
    value to each listed member. *)

val receive : t -> src:Smr_intf.node_id -> msg -> unit
(** Buffer a message received during the current round. *)

val end_of_round : t -> round:int -> (Smr_intf.node_id * msg) list
(** Process the round's buffered messages; [round] is the 1-based
    round index within this instance.  Returns relays to send during
    the next round.  At [round = f + 1] the instance decides. *)

val decision : t -> string option option
(** [None] while running; [Some None] = ⊥; [Some (Some v)] once
    decided. *)

val extracted : t -> string list
(** Values extracted so far (ordered by first extraction). *)
