lib/smr/sync_smr.ml: Atum_crypto Dolev_strong List Printf Smr_intf String
