lib/smr/pbft.mli: Smr_intf
