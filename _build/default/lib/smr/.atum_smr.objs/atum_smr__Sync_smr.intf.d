lib/smr/sync_smr.mli: Atum_crypto Smr_intf
