lib/smr/dolev_strong.mli: Atum_crypto Format Smr_intf
