lib/smr/pbft.ml: Atum_crypto Hashtbl List Printf Smr_intf String
