lib/smr/dolev_strong.ml: Atum_crypto Format List Smr_intf String
