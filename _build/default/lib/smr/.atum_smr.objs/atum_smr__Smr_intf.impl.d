lib/smr/smr_intf.ml: String
