(** Synchronous state machine replication for one vgroup epoch.

    Time is divided into slots of [f + 1] rounds.  At each slot start,
    every member opens one Dolev-Strong broadcast instance per member;
    a member with pending operations initiates its own instance with
    the batch.  When the slot closes, every correct member has decided
    the same value (or ⊥) for every sender and executes the non-⊥
    batches in sender-id order — so all correct members execute the
    same operations in the same order.

    The instance is driven by the vgroup runtime: {!on_round_boundary}
    at every global round tick, {!receive} for incoming messages. *)

type msg

val msg_size : msg -> int

type t

val create :
  keyring:Atum_crypto.Signature.keyring ->
  transport:msg Smr_intf.transport ->
  epoch_id:string ->
  on_execute:(Smr_intf.op -> unit) ->
  t

val propose : t -> string -> unit
(** Queue a payload; it is broadcast in this member's next slot. *)

val receive : t -> src:Smr_intf.node_id -> msg -> unit

val on_round_boundary : t -> unit

val stop : t -> unit
(** Freeze the instance (epoch change); further input is ignored. *)

val pending_count : t -> int

val current_slot : t -> int

val slot_length : t -> int
(** Rounds per slot = f + 1. *)

val encode_batch : string list -> string
(** Length-prefixed batch encoding (payloads may contain any bytes). *)

val decode_batch : string -> string list
(** Total inverse of {!encode_batch}: malformed input — e.g. a batch
    crafted by a Byzantine sender — decodes to a (possibly empty)
    well-formed prefix instead of raising. *)
