(** PBFT (Castro & Liskov) for one vgroup epoch — the agreement
    protocol of the asynchronous deployment.  Requires
    [n >= 3f + 1]; safe always, live under eventual synchrony.

    Implemented: the normal three-phase case (pre-prepare / prepare /
    commit with 2f+1 quorums), request retransmission, and a
    seq-preserving view change (prepared certificates are carried into
    the new view under their original sequence numbers, gaps filled
    with no-ops).  Omitted relative to the original paper: checkpoints
    and log truncation (instances are short-lived — every membership
    change starts a new epoch — so logs stay small), and per-message
    MACs (the simulated transport authenticates point-to-point links,
    which is the abstraction MACs provide). *)

type msg

val msg_size : msg -> int

type t

val create :
  transport:msg Smr_intf.transport ->
  timeout:float ->
  on_execute:(Smr_intf.op -> unit) ->
  t
(** [timeout] is the view-change timer: how long a member waits for
    one of its requests to execute before suspecting the primary. *)

val propose : t -> string -> unit
(** Submit an operation; it is forwarded to the current primary and
    retransmitted across view changes until executed. *)

val receive : t -> src:Smr_intf.node_id -> msg -> unit

val stop : t -> unit

val view : t -> int

val primary : t -> Smr_intf.node_id

val executed_count : t -> int
