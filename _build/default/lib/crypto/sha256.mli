(** SHA-256 (FIPS 180-4), implemented from scratch.

    Used for message digests, AShare chunk integrity checks and as the
    compression function behind {!Hmac}.  Tested against the standard
    NIST test vectors. *)

type ctx

val init : unit -> ctx

val feed : ctx -> string -> unit
(** Absorb bytes; may be called repeatedly. *)

val finalize : ctx -> string
(** Returns the 32-byte raw digest and invalidates the context. *)

val digest : string -> string
(** One-shot 32-byte raw digest. *)

val hex : string -> string
(** [hex raw] renders a raw digest as lowercase hexadecimal. *)

val digest_hex : string -> string
(** [digest_hex msg] = [hex (digest msg)]. *)
