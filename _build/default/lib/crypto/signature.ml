type keyring = { secrets : (string, string) Hashtbl.t; rng : Atum_util.Rng.t }

type t = { signer : string; tag : string }

let create_keyring ~seed = { secrets = Hashtbl.create 64; rng = Atum_util.Rng.create seed }

let register kr identity =
  if not (Hashtbl.mem kr.secrets identity) then begin
    let raw = Int64.to_string (Atum_util.Rng.bits64 kr.rng) in
    Hashtbl.replace kr.secrets identity (Sha256.digest (identity ^ ":" ^ raw))
  end

let is_registered kr identity = Hashtbl.mem kr.secrets identity

let sign kr ~signer msg =
  let secret = Hashtbl.find kr.secrets signer in
  { signer; tag = Hmac.mac ~key:secret ("sig:" ^ signer ^ ":" ^ msg) }

let verify kr s ~msg =
  match Hashtbl.find_opt kr.secrets s.signer with
  | None -> false
  | Some secret -> Hmac.verify ~key:secret ~msg:("sig:" ^ s.signer ^ ":" ^ msg) ~tag:s.tag

let forge_attempt ~signer ~msg = { signer; tag = Sha256.digest ("forged:" ^ signer ^ ":" ^ msg) }
