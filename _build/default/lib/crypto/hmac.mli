(** HMAC-SHA256 (RFC 2104), used to authenticate point-to-point
    messages between nodes that share a session key. *)

val mac : key:string -> string -> string
(** [mac ~key msg] is the 32-byte raw HMAC-SHA256 tag. *)

val mac_hex : key:string -> string -> string

val verify : key:string -> msg:string -> tag:string -> bool
(** Constant-time comparison of the expected tag against [tag]. *)
