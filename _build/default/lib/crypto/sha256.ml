(* SHA-256 per FIPS 180-4.  State is eight 32-bit words kept in int32;
   the message schedule is recomputed per 64-byte block. *)

let k =
  [| 0x428a2f98l; 0x71374491l; 0xb5c0fbcfl; 0xe9b5dba5l; 0x3956c25bl;
     0x59f111f1l; 0x923f82a4l; 0xab1c5ed5l; 0xd807aa98l; 0x12835b01l;
     0x243185bel; 0x550c7dc3l; 0x72be5d74l; 0x80deb1fel; 0x9bdc06a7l;
     0xc19bf174l; 0xe49b69c1l; 0xefbe4786l; 0x0fc19dc6l; 0x240ca1ccl;
     0x2de92c6fl; 0x4a7484aal; 0x5cb0a9dcl; 0x76f988dal; 0x983e5152l;
     0xa831c66dl; 0xb00327c8l; 0xbf597fc7l; 0xc6e00bf3l; 0xd5a79147l;
     0x06ca6351l; 0x14292967l; 0x27b70a85l; 0x2e1b2138l; 0x4d2c6dfcl;
     0x53380d13l; 0x650a7354l; 0x766a0abbl; 0x81c2c92el; 0x92722c85l;
     0xa2bfe8a1l; 0xa81a664bl; 0xc24b8b70l; 0xc76c51a3l; 0xd192e819l;
     0xd6990624l; 0xf40e3585l; 0x106aa070l; 0x19a4c116l; 0x1e376c08l;
     0x2748774cl; 0x34b0bcb5l; 0x391c0cb3l; 0x4ed8aa4al; 0x5b9cca4fl;
     0x682e6ff3l; 0x748f82eel; 0x78a5636fl; 0x84c87814l; 0x8cc70208l;
     0x90befffal; 0xa4506cebl; 0xbef9a3f7l; 0xc67178f2l |]

type ctx = {
  h : int32 array; (* 8 words of chaining state *)
  block : Bytes.t; (* 64-byte buffer for a partial block *)
  mutable block_len : int;
  mutable total_len : int64; (* message length in bytes *)
  mutable finished : bool;
  w : int32 array; (* message schedule scratch *)
}

let init () =
  {
    h =
      [| 0x6a09e667l; 0xbb67ae85l; 0x3c6ef372l; 0xa54ff53al; 0x510e527fl;
         0x9b05688cl; 0x1f83d9abl; 0x5be0cd19l |];
    block = Bytes.create 64;
    block_len = 0;
    total_len = 0L;
    finished = false;
    w = Array.make 64 0l;
  }

let rotr x n = Int32.logor (Int32.shift_right_logical x n) (Int32.shift_left x (32 - n))

let process_block ctx buf off =
  let w = ctx.w in
  for t = 0 to 15 do
    let base = off + (t * 4) in
    let b i = Int32.of_int (Char.code (Bytes.get buf (base + i))) in
    w.(t) <-
      Int32.logor
        (Int32.shift_left (b 0) 24)
        (Int32.logor
           (Int32.shift_left (b 1) 16)
           (Int32.logor (Int32.shift_left (b 2) 8) (b 3)))
  done;
  for t = 16 to 63 do
    let s0 =
      Int32.logxor
        (Int32.logxor (rotr w.(t - 15) 7) (rotr w.(t - 15) 18))
        (Int32.shift_right_logical w.(t - 15) 3)
    in
    let s1 =
      Int32.logxor
        (Int32.logxor (rotr w.(t - 2) 17) (rotr w.(t - 2) 19))
        (Int32.shift_right_logical w.(t - 2) 10)
    in
    w.(t) <- Int32.add (Int32.add (Int32.add w.(t - 16) s0) w.(t - 7)) s1
  done;
  let h = ctx.h in
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for t = 0 to 63 do
    let s1 = Int32.logxor (Int32.logxor (rotr !e 6) (rotr !e 11)) (rotr !e 25) in
    let ch = Int32.logxor (Int32.logand !e !f) (Int32.logand (Int32.lognot !e) !g) in
    let t1 = Int32.add (Int32.add (Int32.add (Int32.add !hh s1) ch) k.(t)) w.(t) in
    let s0 = Int32.logxor (Int32.logxor (rotr !a 2) (rotr !a 13)) (rotr !a 22) in
    let maj =
      Int32.logxor
        (Int32.logxor (Int32.logand !a !b) (Int32.logand !a !c))
        (Int32.logand !b !c)
    in
    let t2 = Int32.add s0 maj in
    hh := !g;
    g := !f;
    f := !e;
    e := Int32.add !d t1;
    d := !c;
    c := !b;
    b := !a;
    a := Int32.add t1 t2
  done;
  h.(0) <- Int32.add h.(0) !a;
  h.(1) <- Int32.add h.(1) !b;
  h.(2) <- Int32.add h.(2) !c;
  h.(3) <- Int32.add h.(3) !d;
  h.(4) <- Int32.add h.(4) !e;
  h.(5) <- Int32.add h.(5) !f;
  h.(6) <- Int32.add h.(6) !g;
  h.(7) <- Int32.add h.(7) !hh

let feed ctx s =
  if ctx.finished then invalid_arg "Sha256.feed: context already finalized";
  let len = String.length s in
  ctx.total_len <- Int64.add ctx.total_len (Int64.of_int len);
  let pos = ref 0 in
  (* Fill a partial block first. *)
  if ctx.block_len > 0 then begin
    let need = 64 - ctx.block_len in
    let take = min need len in
    Bytes.blit_string s 0 ctx.block ctx.block_len take;
    ctx.block_len <- ctx.block_len + take;
    pos := take;
    if ctx.block_len = 64 then begin
      process_block ctx ctx.block 0;
      ctx.block_len <- 0
    end
  end;
  (* Whole blocks straight from the input. *)
  let tmp = Bytes.create 64 in
  while len - !pos >= 64 do
    Bytes.blit_string s !pos tmp 0 64;
    process_block ctx tmp 0;
    pos := !pos + 64
  done;
  if !pos < len then begin
    Bytes.blit_string s !pos ctx.block 0 (len - !pos);
    ctx.block_len <- len - !pos
  end

let finalize ctx =
  if ctx.finished then invalid_arg "Sha256.finalize: context already finalized";
  ctx.finished <- true;
  let bit_len = Int64.mul ctx.total_len 8L in
  (* Padding: 0x80, zeros, then the 64-bit big-endian bit length. *)
  let pad_len =
    if ctx.block_len < 56 then 56 - ctx.block_len else 120 - ctx.block_len
  in
  let tail = Bytes.make (pad_len + 8) '\000' in
  Bytes.set tail 0 '\x80';
  for i = 0 to 7 do
    let shift = 8 * (7 - i) in
    Bytes.set tail
      (pad_len + i)
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bit_len shift) 0xffL)))
  done;
  (* Absorb the padding without recounting the length. *)
  let s = Bytes.to_string tail in
  let pos = ref 0 in
  let len = String.length s in
  if ctx.block_len > 0 then begin
    let need = 64 - ctx.block_len in
    let take = min need len in
    Bytes.blit_string s 0 ctx.block ctx.block_len take;
    ctx.block_len <- ctx.block_len + take;
    pos := take;
    if ctx.block_len = 64 then begin
      process_block ctx ctx.block 0;
      ctx.block_len <- 0
    end
  end;
  let tmp = Bytes.create 64 in
  while len - !pos >= 64 do
    Bytes.blit_string s !pos tmp 0 64;
    process_block ctx tmp 0;
    pos := !pos + 64
  done;
  assert (len - !pos = 0 && ctx.block_len = 0);
  let out = Bytes.create 32 in
  Array.iteri
    (fun i word ->
      for j = 0 to 3 do
        let shift = 8 * (3 - j) in
        Bytes.set out
          ((i * 4) + j)
          (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical word shift) 0xffl)))
      done)
    ctx.h;
  Bytes.to_string out

let digest s =
  let ctx = init () in
  feed ctx s;
  finalize ctx

let hex raw =
  let buf = Buffer.create (2 * String.length raw) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) raw;
  Buffer.contents buf

let digest_hex s = hex (digest s)
