(** Simulated public-key signatures.

    The paper assumes a computationally bounded adversary that cannot
    forge signatures.  We model exactly that abstraction: a {!keyring}
    holds one secret per registered identity, a signature is an
    HMAC-SHA256 tag under the signer's secret, and verification
    recomputes the tag.  Within the simulator a Byzantine node can only
    produce signatures through {!sign} with its own identity, so
    unforgeability holds by construction, while digests and tags remain
    real SHA-256 values. *)

type keyring

type t = { signer : string; tag : string }
(** A detached signature: who signed, and the 32-byte tag. *)

val create_keyring : seed:int -> keyring

val register : keyring -> string -> unit
(** [register kr identity] generates a key pair for [identity].
    Idempotent. *)

val is_registered : keyring -> string -> bool

val sign : keyring -> signer:string -> string -> t
(** Raises [Not_found] if [signer] is not registered. *)

val verify : keyring -> t -> msg:string -> bool
(** [verify kr s ~msg] checks that [s.tag] is a valid signature by
    [s.signer] over [msg].  Unregistered signers never verify. *)

val forge_attempt : signer:string -> msg:string -> t
(** A tag produced without the secret key — used in tests and fault
    injection to confirm that forgeries are rejected. *)
