type digest_set = string array

let split ~chunk_count content =
  if chunk_count <= 0 then invalid_arg "Chunks.split: chunk_count must be positive";
  let len = String.length content in
  let base = (len + chunk_count - 1) / chunk_count in
  let rec cut i acc =
    if i = chunk_count then List.rev acc
    else begin
      let off = i * base in
      let piece =
        if off >= len then ""
        else String.sub content off (min base (len - off))
      in
      cut (i + 1) (piece :: acc)
    end
  in
  cut 0 []

let digests ~chunk_count content =
  Array.of_list (List.map Sha256.digest (split ~chunk_count content))

let verify_chunk set ~index chunk =
  index >= 0 && index < Array.length set && String.equal set.(index) (Sha256.digest chunk)

let join pieces = String.concat "" pieces
