lib/crypto/chunks.mli:
