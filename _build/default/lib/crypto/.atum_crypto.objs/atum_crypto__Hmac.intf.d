lib/crypto/hmac.mli:
