lib/crypto/signature.mli:
