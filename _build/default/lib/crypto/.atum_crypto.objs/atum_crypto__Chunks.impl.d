lib/crypto/chunks.ml: Array List Sha256 String
