lib/crypto/signature.ml: Atum_util Hashtbl Hmac Int64 Sha256
