(** Chunked content digests for AShare.

    A file is split into a fixed number of chunks; the PUT broadcast
    carries one digest per chunk so that readers can verify chunks
    pulled in parallel from different replicas (§4.2.2). *)

type digest_set = string array
(** One raw SHA-256 digest per chunk, in chunk order. *)

val split : chunk_count:int -> string -> string list
(** [split ~chunk_count content] cuts [content] into [chunk_count]
    nearly equal pieces (the last may be shorter, and trailing pieces
    may be empty when the content is shorter than the chunk count). *)

val digests : chunk_count:int -> string -> digest_set
(** Digest of each chunk of [content]. *)

val verify_chunk : digest_set -> index:int -> string -> bool
(** Does the chunk at [index] match its advertised digest? *)

val join : string list -> string
(** Inverse of {!split}. *)
