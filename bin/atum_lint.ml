(* atum-lint: the repo's determinism & protocol-safety linter.

   Parses every .ml under the given directories (default: lib bin)
   with compiler-libs and enforces the rule set in LINT.md.  Exits
   non-zero on any violation that is not suppressed by lint.allow, so
   a dune rule can gate `dune runtest` on a clean tree. *)

module Driver = Atum_linter.Driver

let () =
  let root = ref "." in
  let allow = ref "lint.allow" in
  let json_dir = ref "" in
  let verbose = ref false in
  let strict_allow = ref false in
  let dirs = ref [] in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR repository root to scan from (default .)");
      ( "--allow",
        Arg.Set_string allow,
        "FILE allowlist file, relative to the root (default lint.allow)" );
      ( "--json",
        Arg.Set_string json_dir,
        "DIR also write ATUM_lint.json and ATUM_lint_state.json into DIR" );
      ("--verbose", Arg.Set verbose, " print allowlisted findings too");
      ( "--strict-allow",
        Arg.Set strict_allow,
        " fail on stale lint.allow entries too (CI mode: the allowlist cannot rot)" );
    ]
  in
  let usage =
    "atum_lint [--root DIR] [--allow FILE] [--json DIR] [--strict-allow] [dirs...]"
  in
  Arg.parse spec (fun d -> dirs := d :: !dirs) usage;
  let dirs = match List.rev !dirs with [] -> [ "lib"; "bin" ] | ds -> ds in
  let allow_file =
    if Filename.is_relative !allow then Filename.concat !root !allow else !allow
  in
  let r = Driver.run ~strict_allow:!strict_allow ~root:!root ~dirs ~allow_file () in
  Driver.print_human ~verbose:!verbose Format.std_formatter r;
  if not (String.equal !json_dir "") then begin
    if not (Sys.file_exists !json_dir) then Sys.mkdir !json_dir 0o755;
    let path = Driver.write_json ~dir:!json_dir r in
    Printf.printf "json             : wrote %s\n" path;
    let spath = Driver.write_state_json ~dir:!json_dir r in
    Printf.printf "json             : wrote %s\n" spath
  end;
  exit (if Driver.ok r then 0 else 1)
