(* atum-cli: drive Atum deployments from the command line.

   Subcommands:
     grow       grow a deployment and report overlay statistics
     broadcast  measure broadcast latency on a fresh deployment
     churn      probe a churn rate for sustainability
     guideline  print the optimal rwl for a (vgroups, hc) pair
     simulate   free-run a deployment with churn and broadcasts
     chaos      run the fault-injection + recovery-verification experiment
     analyze    reconstruct causality from an ATUM_*.json artifact
     export-trace  convert a traced artifact to Chrome trace_event JSON (Perfetto)
     compare    diff two artifacts metric by metric, exit non-zero on regression
     report     render an ATUM_timeseries.json or ATUM_resilience.json artifact
     lint       run the determinism & protocol-safety linter (LINT.md) *)

open Cmdliner

module Atum = Atum_core.Atum
module Params = Atum_core.Params
module W = Atum_workload
module Json = Atum_util.Json

let protocol_conv =
  let parse = function
    | "sync" -> Ok Params.Sync
    | "async" -> Ok Params.Async
    | s -> Error (`Msg (Printf.sprintf "unknown protocol %S (sync|async)" s))
  in
  let print fmt p =
    Format.pp_print_string fmt (match p with Params.Sync -> "sync" | Params.Async -> "async")
  in
  Arg.conv (parse, print)

let nodes_arg =
  Arg.(value & opt int 50 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Target system size.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Also write machine-readable artifacts into the --out-dir: \
           ATUM_$(i,CMD).json (run parameters, a metrics snapshot and the \
           structured event trace) and ATUM_timeseries.json (telemetry gauge \
           series plus the engine profile).  Same JSON dialect as the bench \
           harness's BENCH_*.json files (see EXPERIMENTS.md).")

let out_dir_arg =
  Arg.(
    value
    & opt string "_artifacts"
    & info [ "out-dir" ] ~docv:"DIR"
        ~doc:"Directory for --json artifacts; created if missing.")

let trace_cap_arg =
  Arg.(
    value & opt int 0
    & info [ "trace-cap" ] ~docv:"EVENTS"
        ~doc:
          "Trace ring capacity in events.  0 (the default) auto-sizes by system \
           scale (65536 up to 10k nodes, then 131072/524288/1048576 at the \
           10k/100k/1M tiers); the ATUM_TRACE_CAP environment variable overrides \
           the auto-sizing but not an explicit flag.")

let trace_sample_arg =
  Arg.(
    value & opt float 1.0
    & info [ "trace-sample" ] ~docv:"RATE"
        ~doc:
          "Fraction of hot trace kinds (bcast.hop, net.*) to record, in [0,1].  \
           Sampling is deterministic by correlation id, so an admitted broadcast \
           keeps its whole hop lineage; rare kinds (sagas, violations, faults) \
           always record.")

let dump_arg =
  Arg.(
    value & flag
    & info [ "dump-on-violation" ]
        ~doc:
          "Arm the flight recorder: the first monitor violation (or an unhealed \
           fault span in chaos) dumps ATUM_postmortem.json — last trace events, \
           telemetry rows, engine profile, metrics and the trigger — into the \
           --out-dir.")

(* Precedence: explicit --trace-cap flag, then ATUM_TRACE_CAP, then
   auto-sizing by scale.  The env override exists so wrapper scripts
   (CI, bench sweeps) can resize rings without threading a flag. *)
let resolve_trace_cap ~flag ~n =
  if flag > 0 then flag
  else
    match Sys.getenv_opt "ATUM_TRACE_CAP" with
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some cap when cap > 0 -> cap
      | _ -> Atum_sim.Trace.capacity_for_scale ~nodes:n)
    | None -> Atum_sim.Trace.capacity_for_scale ~nodes:n

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

(* Artifacts embed the command line (provenance), so normalize away
   the invocation-specific binary path. *)
let cmdline () =
  match Array.to_list Sys.argv with
  | [] -> []
  | argv0 :: rest -> Filename.basename argv0 :: rest

(* Mirrors the bench harness envelope: provenance first, then the
   command-specific summary, then the full observability payload. *)
let write_json_artifact ~dir ~cmd ~seed atum summary =
  mkdir_p dir;
  let cmdline = cmdline () in
  let provenance =
    [
      ("schema_version", Json.Int W.Report.schema_version);
      ("cmd", Json.String cmd);
      ("seed", Json.Int seed);
      ("build_info", W.Build_info.to_json ~cmdline ~seed ());
    ]
  in
  let doc =
    Json.Obj
      (provenance
      @ summary
      @ [
          ("metrics", Atum_sim.Metrics.to_json (Atum.metrics atum));
          ("trace", Atum_sim.Trace.to_json (Atum.trace atum));
          (* The per-label engine profile rides along so export-trace
             can build its timeline from this one file. *)
          ("profile", Atum_sim.Engine.profile_json (Atum.engine atum));
        ])
  in
  let path = Filename.concat dir (Printf.sprintf "ATUM_%s.json" cmd) in
  Json.write_file ~path doc;
  Printf.printf "json             : wrote %s\n" path;
  match Atum.telemetry atum with
  | None -> ()
  | Some tel ->
    let ts_doc =
      Json.Obj
        (provenance
        @ [
            ("timeseries", Atum_sim.Telemetry.to_json tel);
            ("profile", Atum_sim.Engine.profile_json (Atum.engine atum));
          ])
    in
    let ts_path = Filename.concat dir "ATUM_timeseries.json" in
    Json.write_file ~path:ts_path ts_doc;
    Printf.printf "json             : wrote %s\n" ts_path

let protocol_arg =
  Arg.(
    value
    & opt protocol_conv Params.Sync
    & info [ "p"; "protocol" ] ~docv:"PROTO" ~doc:"SMR protocol: sync or async.")

(* [--json] runs carry the full observability payload, so they also
   get the online invariant monitor: its monitor.violation.* counters
   land in the metrics snapshot the analyzer reads.  Telemetry is on
   by default in Builder.grow, so every run has gauge series. *)
let build ?(trace = false) ?trace_cap ?sample_rate ?flight_dir ~protocol ~n ~seed
    ~byzantine () =
  let params = { (Params.for_system_size ~protocol n) with Params.seed } in
  let trace_capacity = resolve_trace_cap ~flag:(Option.value ~default:0 trace_cap) ~n in
  W.Builder.grow ~params ~trace ~trace_capacity ?sample_rate ~monitor:trace ?flight_dir
    ~byzantine ~n:(n + byzantine) ~seed ()

let report_postmortem (built : W.Builder.built) =
  match built.W.Builder.flight with
  | Some fl -> (
    match Atum_sim.Flight.last_path fl with
    | Some path -> Printf.printf "postmortem       : wrote %s\n" path
    | None -> ())
  | None -> ()

let report_build built =
  let atum = built.W.Builder.atum in
  let sizes = Atum.vgroup_sizes atum in
  Printf.printf "system size      : %d\n" (Atum.size atum);
  Printf.printf "vgroups          : %d (sizes %s)\n" (Atum.vgroup_count atum)
    (String.concat ", " (List.map string_of_int (List.sort compare sizes)));
  Printf.printf "overlay          : %s\n"
    (match Atum.check_overlay atum with Ok () -> "consistent" | Error e -> e);
  Printf.printf "registry         : %s\n"
    (match Atum.check_consistency atum with Ok () -> "consistent" | Error e -> e);
  Printf.printf "messages sent    : %d (%.1f MB)\n" (Atum.messages_sent atum)
    (float_of_int (Atum.bytes_sent atum) /. 1_048_576.0);
  Printf.printf "simulated time   : %.0f s\n" (Atum.now atum)

let grow_cmd =
  let run protocol n seed json out_dir trace_cap sample dump =
    let built =
      build ~trace:json ~trace_cap ~sample_rate:sample
        ?flight_dir:(if dump then Some out_dir else None)
        ~protocol ~n ~seed ~byzantine:0 ()
    in
    report_build built;
    let atum = built.W.Builder.atum in
    let m = Atum.metrics atum in
    List.iter
      (fun c -> Printf.printf "%-17s: %d\n" c (Atum_sim.Metrics.counter m c))
      [ "join.completed"; "vgroup.split"; "vgroup.merge"; "exchange.completed";
        "exchange.suppressed"; "walk.completed" ];
    if json then
      write_json_artifact ~dir:out_dir ~cmd:"grow" ~seed atum
        [
          ("n", Json.Int n);
          ("size", Json.Int (Atum.size atum));
          ("vgroups", Json.Int (Atum.vgroup_count atum));
          ("messages_sent", Json.Int (Atum.messages_sent atum));
          ("bytes_sent", Json.Int (Atum.bytes_sent atum));
          ("sim_time_s", Json.Float (Atum.now atum));
        ];
    report_postmortem built
  in
  Cmd.v
    (Cmd.info "grow" ~doc:"Grow a deployment and report overlay statistics.")
    Term.(
      const run $ protocol_arg $ nodes_arg $ seed_arg $ json_arg $ out_dir_arg
      $ trace_cap_arg $ trace_sample_arg $ dump_arg)

let broadcast_cmd =
  let messages_arg =
    Arg.(value & opt int 20 & info [ "m"; "messages" ] ~docv:"M" ~doc:"Messages to send.")
  in
  let byz_arg =
    Arg.(value & opt int 0 & info [ "byzantine" ] ~docv:"B" ~doc:"Byzantine nodes to add.")
  in
  let run protocol n seed messages byzantine json out_dir trace_cap sample dump =
    let built =
      build ~trace:json ~trace_cap ~sample_rate:sample
        ?flight_dir:(if dump then Some out_dir else None)
        ~protocol ~n ~seed ~byzantine ()
    in
    let r = W.Latency_exp.run built ~messages ~gap:2.0 ~seed in
    let p q = Atum_util.Stats.percentile r.W.Latency_exp.latencies q in
    Printf.printf "deliveries       : %d/%d (%.2f%%)\n" r.W.Latency_exp.observed_deliveries
      r.expected_deliveries (100.0 *. r.delivery_fraction);
    Printf.printf "latency (s)      : p10=%.2f p50=%.2f p90=%.2f p99=%.2f max=%.2f\n" (p 10.0)
      (p 50.0) (p 90.0) (p 99.0)
      (List.fold_left max 0.0 r.latencies);
    if json then
      write_json_artifact ~dir:out_dir ~cmd:"broadcast" ~seed built.W.Builder.atum
        [
          ("n", Json.Int n);
          ("byzantine", Json.Int byzantine);
          ("messages", Json.Int messages);
          ("latency", W.Report.latency_row ~label:"broadcast" r);
        ];
    report_postmortem built
  in
  Cmd.v
    (Cmd.info "broadcast" ~doc:"Measure broadcast latency on a fresh deployment.")
    Term.(
      const run $ protocol_arg $ nodes_arg $ seed_arg $ messages_arg $ byz_arg $ json_arg
      $ out_dir_arg $ trace_cap_arg $ trace_sample_arg $ dump_arg)

let churn_cmd =
  let rate_arg =
    Arg.(
      value & opt float 10.0
      & info [ "r"; "rate" ] ~docv:"RATE" ~doc:"Re-joins per simulated minute.")
  in
  let duration_arg =
    Arg.(
      value & opt float 180.0
      & info [ "d"; "duration" ] ~docv:"SEC" ~doc:"Churn duration in simulated seconds.")
  in
  let run protocol n seed rate duration json out_dir =
    let built = build ~trace:json ~protocol ~n ~seed ~byzantine:0 () in
    let p = W.Churn.probe built ~rate_per_min:rate ~duration ~seed in
    Printf.printf "rate             : %.1f re-joins/min (%.1f%% of N)\n" rate
      (100.0 *. rate /. float_of_int n);
    Printf.printf "joins            : %d started, %d completed\n" p.W.Churn.joins_started
      p.joins_completed;
    Printf.printf "size             : %d -> %d\n" p.size_before p.size_after;
    Printf.printf "verdict          : %s\n" (if p.sustained then "SUSTAINED" else "NOT sustained");
    if json then
      write_json_artifact ~dir:out_dir ~cmd:"churn" ~seed built.W.Builder.atum
        [
          ("n", Json.Int n);
          ("rate_per_min", Json.Float rate);
          ("duration_s", Json.Float duration);
          ("joins_started", Json.Int p.W.Churn.joins_started);
          ("joins_completed", Json.Int p.joins_completed);
          ("size_before", Json.Int p.size_before);
          ("size_after", Json.Int p.size_after);
          ("sustained", Json.Bool p.sustained);
        ]
  in
  Cmd.v
    (Cmd.info "churn" ~doc:"Probe a churn rate for sustainability.")
    Term.(
      const run $ protocol_arg $ nodes_arg $ seed_arg $ rate_arg $ duration_arg $ json_arg
      $ out_dir_arg)

let guideline_cmd =
  let vgroups_arg =
    Arg.(value & opt int 128 & info [ "vgroups" ] ~docv:"V" ~doc:"Number of vgroups.")
  in
  let hc_arg =
    Arg.(value & opt int 6 & info [ "hc" ] ~docv:"HC" ~doc:"Number of H-graph cycles.")
  in
  let run vgroups hc seed =
    match Atum_overlay.Guideline.optimal_rwl ~vgroups ~hc ~seed () with
    | Some rwl -> Printf.printf "optimal rwl for %d vgroups at hc=%d: %d\n" vgroups hc rwl
    | None -> Printf.printf "no walk length up to the search bound passes the chi2 test\n"
  in
  Cmd.v
    (Cmd.info "guideline" ~doc:"Optimal random-walk length for a configuration (Fig 4).")
    Term.(const run $ vgroups_arg $ hc_arg $ seed_arg)

let simulate_cmd =
  let minutes_arg =
    Arg.(value & opt float 10.0 & info [ "minutes" ] ~docv:"MIN" ~doc:"Simulated minutes.")
  in
  let run protocol n seed minutes json out_dir trace_cap sample dump =
    let built =
      build ~trace:json ~trace_cap ~sample_rate:sample
        ?flight_dir:(if dump then Some out_dir else None)
        ~protocol ~n ~seed ~byzantine:0 ()
    in
    let atum = built.W.Builder.atum in
    Atum.start_heartbeats atum;
    let rng = Atum_util.Rng.create seed in
    let delivered = ref 0 in
    Atum.on_deliver atum (fun _ ~bid:_ ~origin:_ _ -> incr delivered);
    for minute = 1 to int_of_float minutes do
      (* light churn plus one broadcast per minute *)
      let members = W.Builder.correct_members built in
      (match members with
      | from :: _ -> ignore (Atum.broadcast atum ~from (Printf.sprintf "minute-%d" minute))
      | [] -> ());
      let victims = List.filter (fun m -> m <> built.W.Builder.first) members in
      if victims <> [] && Atum_util.Rng.bool rng then begin
        Atum.leave atum (Atum_util.Rng.pick rng victims);
        ignore (Atum.join atum ~contact:built.W.Builder.first ())
      end;
      Atum.run_for atum 60.0;
      Printf.printf "t=%3.0f min  size=%-4d vgroups=%-3d deliveries=%d\n"
        (Atum.now atum /. 60.0) (Atum.size atum) (Atum.vgroup_count atum) !delivered
    done;
    report_build built;
    if json then
      write_json_artifact ~dir:out_dir ~cmd:"simulate" ~seed atum
        [
          ("n", Json.Int n);
          ("minutes", Json.Float minutes);
          ("deliveries", Json.Int !delivered);
          ("size", Json.Int (Atum.size atum));
          ("vgroups", Json.Int (Atum.vgroup_count atum));
          ("sim_time_s", Json.Float (Atum.now atum));
        ];
    report_postmortem built
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Free-run a deployment with churn and broadcasts.")
    Term.(
      const run $ protocol_arg $ nodes_arg $ seed_arg $ minutes_arg $ json_arg $ out_dir_arg
      $ trace_cap_arg $ trace_sample_arg $ dump_arg)

let chaos_cmd =
  let attackers_arg =
    Arg.(
      value & opt int 3
      & info [ "attackers" ] ~docv:"A"
          ~doc:
            "Byzantine adversaries to spawn: each joins with the Target_vgroup \
             strategy (hunt the largest vgroup, then equivocate from inside it).")
  in
  let messages_arg =
    Arg.(
      value & opt int 10
      & info [ "m"; "messages" ] ~docv:"M" ~doc:"Broadcasts per phase (before/after).")
  in
  let restart_arg =
    Arg.(
      value & flag
      & info [ "restart" ]
          ~doc:
            "Durability scenario: attach a write-ahead-logged store and cold-restart \
             the fault victims instead of crash/recover — each comes back through \
             snapshot + WAL replay, rejoin and catch-up, measured as time-to-rejoin / \
             time-to-catch-up.")
  in
  let corrupt_log_arg =
    Arg.(
      value & flag
      & info [ "corrupt-log" ]
          ~doc:
            "With the restart scenario: flip one byte in the first victim's WAL while \
             it is down, forcing its restart into the wipe-and-fresh-join fallback \
             (implies --restart).")
  in
  let run protocol n seed attackers messages restart corrupt_log json out_dir trace_cap
      sample dump =
    (* Resilience attaches its own monitor (the convergence checker
       polls its sweeps), so build without one; trace only with --json
       to keep the default run light. *)
    let params = { (Params.for_system_size ~protocol n) with Params.seed } in
    let built =
      W.Builder.grow ~params ~trace:json
        ~trace_capacity:(resolve_trace_cap ~flag:trace_cap ~n)
        ~sample_rate:sample ~monitor:false ~n ~seed ()
    in
    let atum = built.W.Builder.atum in
    let r =
      W.Resilience.run ~messages_per_phase:messages ~attackers
        ?flight_dir:(if dump then Some out_dir else None)
        ~restart:(restart || corrupt_log) ~corrupt_log built ~seed ()
    in
    Printf.printf "system size      : %d (+%d attackers, target vgroup %d)\n"
      (Atum.size atum) r.W.Resilience.attackers r.target_vg;
    Printf.printf "fault schedule   : %d steps, %d applied\n" (List.length r.schedule)
      r.faults_applied;
    List.iter
      (fun (p : W.Resilience.phase_stats) ->
        Printf.printf "delivery %-8s: %.1f%% (%d broadcasts, %d/%d deliveries)\n"
          p.W.Resilience.phase (100.0 *. p.success) p.broadcasts p.delivered p.expected)
      r.phases;
    List.iter
      (fun (h : W.Resilience.heal_record) ->
        match h.W.Resilience.time_to_heal with
        | Some d -> Printf.printf "heal at t=%-6.0f : converged in %.0f s\n" h.heal_at d
        | None ->
          Printf.printf "heal at t=%-6.0f : window closed before convergence\n" h.heal_at)
      r.heals;
    let count vs = List.fold_left (fun acc (_, n) -> acc + n) 0 vs in
    Printf.printf "violations       : before=%d during=%d after=%d\n"
      (count r.violations_before) (count r.violations_during) (count r.violations_after);
    List.iter
      (fun (rr : Atum_core.System.restart_report) ->
        Printf.printf "restart node %-4d: %s, %d WAL entries replayed%s%s\n"
          rr.Atum_core.System.r_node
          (if rr.Atum_core.System.r_fallback then "corrupt store, fresh join" else "durable recovery")
          rr.Atum_core.System.r_replayed
          (match rr.Atum_core.System.r_rejoined_at with
          | Some j -> Printf.sprintf ", rejoined in %.0f s" (j -. rr.Atum_core.System.r_restarted_at)
          | None -> ", never rejoined")
          (match rr.Atum_core.System.r_caught_up_at with
          | Some c ->
            Printf.sprintf ", caught up in %.0f s" (c -. rr.Atum_core.System.r_restarted_at)
          | None -> ""))
      r.W.Resilience.restarts;
    Printf.printf "consistency      : %s\n"
      (match r.consistency with Ok () -> "ok" | Error e -> e);
    Printf.printf "converged        : %b\n" r.converged;
    (match r.W.Resilience.postmortem with
    | Some path -> Printf.printf "postmortem       : wrote %s\n" path
    | None -> ());
    if json then
      write_json_artifact ~dir:out_dir ~cmd:"resilience" ~seed atum
        [ ("resilience", W.Resilience.to_json r) ]
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run the chaos experiment: scripted partition + crash/recover faults and \
          targeted equivocating adversaries against a steady broadcast workload, with \
          recovery verified by polling registry consistency and the invariant monitor \
          after each heal.  With --json, writes ATUM_resilience.json.")
    Term.(
      const run $ protocol_arg $ nodes_arg $ seed_arg $ attackers_arg $ messages_arg
      $ restart_arg $ corrupt_log_arg $ json_arg $ out_dir_arg $ trace_cap_arg
      $ trace_sample_arg $ dump_arg)

let analyze_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:"An ATUM_*.json artifact written by a subcommand run with --json.")
  in
  let run file json out_dir =
    match W.Analyze.load_file file with
    | Error e ->
      Printf.eprintf "analyze: %s: %s\n" file e;
      exit 1
    | Ok r ->
      Format.printf "@[<v>%a@]@." W.Analyze.pp r;
      if json then begin
        mkdir_p out_dir;
        let fields =
          match W.Analyze.to_json r with
          | Json.Obj fields -> fields
          | j -> [ ("analysis", j) ]
        in
        let path = Filename.concat out_dir "ATUM_analyze.json" in
        Json.write_file ~path
          (Json.Obj
             ([
                ("schema_version", Json.Int W.Report.schema_version);
                ("cmd", Json.String "analyze");
                ("source", Json.String file);
                ("build_info", W.Build_info.to_json ~cmdline:(cmdline ()) ~seed:0 ());
              ]
             @ fields));
        Printf.printf "json             : wrote %s\n" path
      end
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Reconstruct per-broadcast dissemination trees, saga durations and the \
          invariant-violation summary from an ATUM_*.json trace artifact.")
    Term.(const run $ file_arg $ json_arg $ out_dir_arg)

let load_json_file file =
  match
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | contents -> Json.of_string contents

let export_trace_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:
            "A traced ATUM_*.json artifact (run with --json) or an \
             ATUM_postmortem.json flight-recorder dump.")
  in
  let run file out_dir =
    match Result.bind (load_json_file file) W.Perfetto.of_artifact with
    | Error e ->
      Printf.eprintf "export-trace: %s: %s\n" file e;
      exit 1
    | Ok doc ->
      mkdir_p out_dir;
      let path = W.Perfetto.write ~dir:out_dir ~source:file doc in
      let events =
        match Json.member "traceEvents" doc with
        | Some (Json.List evs) -> List.length evs
        | _ -> 0
      in
      Printf.printf "export-trace     : wrote %s (%d events)\n" path events;
      Printf.printf
        "open in https://ui.perfetto.dev or chrome://tracing (Load button)\n"
  in
  Cmd.v
    (Cmd.info "export-trace"
       ~doc:
         "Convert a traced artifact into Chrome trace_event JSON loadable by \
          Perfetto (ui.perfetto.dev) or chrome://tracing: saga spans, broadcast \
          hop lineage, fault spans (unhealed ones tagged) and the per-label \
          engine profile, on simulated-time microsecond timestamps.")
    Term.(const run $ file_arg $ out_dir_arg)

let compare_cmd =
  let old_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"OLD" ~doc:"Baseline artifact (BENCH_*.json or ATUM_*.json).")
  in
  let new_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"NEW" ~doc:"Candidate artifact to compare against the baseline.")
  in
  let threshold_arg =
    Arg.(
      value & opt float 10.0
      & info [ "threshold" ] ~docv:"PCT"
          ~doc:
            "Relative change (percent) beyond which a directional metric counts as a \
             regression or improvement.")
  in
  let run old_file new_file threshold json out_dir =
    if threshold < 0.0 then begin
      Printf.eprintf "compare: threshold must be non-negative\n";
      exit 2
    end;
    match (load_json_file old_file, load_json_file new_file) with
    | Error e, _ ->
      Printf.eprintf "compare: %s: %s\n" old_file e;
      exit 2
    | _, Error e ->
      Printf.eprintf "compare: %s: %s\n" new_file e;
      exit 2
    | Ok old_json, Ok new_json ->
      let r = W.Compare.run ~threshold:(threshold /. 100.0) ~old_json ~new_json () in
      Format.printf "@[<v>%a@]@." W.Compare.pp r;
      if json then begin
        mkdir_p out_dir;
        let path = Filename.concat out_dir "ATUM_compare.json" in
        Json.write_file ~path
          (Json.Obj
             [
               ("schema_version", Json.Int W.Report.schema_version);
               ("cmd", Json.String "compare");
               ("old", Json.String old_file);
               ("new", Json.String new_file);
               ("compare", W.Compare.to_json r);
             ]);
        Printf.printf "json             : wrote %s\n" path
      end;
      if r.W.Compare.regressed > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Diff two JSON artifacts metric by metric (throughputs higher-better, \
          latencies and footprints lower-better, wall-clock informational) and exit \
          non-zero if anything regressed past the threshold or a baseline metric \
          disappeared.  The CI bench-baseline gate runs this against \
          bench/baselines/.")
    Term.(const run $ old_arg $ new_arg $ threshold_arg $ json_arg $ out_dir_arg)

let report_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:
            "An ATUM_timeseries.json or ATUM_resilience.json artifact (written into \
             the --out-dir by any subcommand run with --json).")
  in
  let run file =
    let contents =
      let ic = open_in_bin file in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Json.of_string contents with
    | Error e ->
      Printf.eprintf "report: %s: %s\n" file e;
      exit 1
    | Ok doc -> (
      let render =
        match Json.member "resilience" doc with
        | Some _ -> W.Report.render_resilience_artifact
        | None -> W.Report.render_timeseries_artifact
      in
      match render Format.std_formatter doc with
      | Ok () -> ()
      | Error e ->
        Printf.eprintf "report: %s: %s\n" file e;
        exit 1)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Render an artifact as text.  ATUM_timeseries.json: one sparkline per \
          telemetry gauge plus the engine's per-label profile table (sorted by \
          self-time; by event count when the run had no ATUM_PROF_WALL).  \
          ATUM_resilience.json: the chaos experiment's schedule, delivery success and \
          recovery verdict.")
    Term.(const run $ file_arg)

let lint_cmd =
  let module Driver = Atum_linter.Driver in
  let root_arg =
    Arg.(value & opt dir "." & info [ "root" ] ~docv:"DIR" ~doc:"Repository root to scan from.")
  in
  let allow_arg =
    Arg.(
      value
      & opt string "lint.allow"
      & info [ "allow" ] ~docv:"FILE"
          ~doc:"Allowlist file (rule:file:line # reason), relative to the root.")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Print allowlisted findings too.")
  in
  let strict_allow_arg =
    Arg.(
      value & flag
      & info [ "strict-allow" ]
          ~doc:"Fail on stale allowlist entries too (CI mode: the allowlist cannot rot).")
  in
  let dirs_arg =
    Arg.(
      value
      & pos_all string [ "lib"; "bin" ]
      & info [] ~docv:"DIR" ~doc:"Directories to scan, relative to the root.")
  in
  let run root allow verbose strict_allow dirs json out_dir =
    let allow_file = if Filename.is_relative allow then Filename.concat root allow else allow in
    let r = Driver.run ~strict_allow ~root ~dirs ~allow_file () in
    Driver.print_human ~verbose Format.std_formatter r;
    if json then begin
      mkdir_p out_dir;
      let path = Driver.write_json ~dir:out_dir r in
      Printf.printf "json             : wrote %s\n" path;
      let spath = Driver.write_state_json ~dir:out_dir r in
      Printf.printf "json             : wrote %s\n" spath
    end;
    if not (Driver.ok r) then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the determinism & protocol-safety linter over the repository sources: the \
          per-file AST rules plus the repo-wide effect-propagation and domain-safety \
          analysis (see LINT.md).  Exits non-zero on any violation not suppressed by the \
          allowlist.  With --json, writes ATUM_lint.json and the ATUM_lint_state.json \
          mutable-state inventory.")
    Term.(
      const run $ root_arg $ allow_arg $ verbose_arg $ strict_allow_arg $ dirs_arg $ json_arg
      $ out_dir_arg)

let dht_cmd =
  let byz_pct_arg =
    Arg.(value & opt int 0 & info [ "byzantine-pct" ] ~docv:"PCT" ~doc:"Percent of Byzantine routers.")
  in
  let run n seed byz_pct =
    let module Dht = Atum_apps.Dht in
    let d = Dht.build ~node_ids:(List.init n Fun.id) () in
    let rng = Atum_util.Rng.create seed in
    List.iter (Dht.mark_byzantine d)
      (Atum_util.Rng.sample_without_replacement rng (n * byz_pct / 100) (List.init n Fun.id));
    Printf.printf "nodes            : %d (%d%% Byzantine routers)\n" n byz_pct;
    Printf.printf "mean lookup hops : %.2f\n" (Dht.mean_lookup_hops d ~samples:500 ~seed);
    Printf.printf "lookup success   : %.3f\n" (Dht.lookup_success_rate d ~samples:500 ~seed)
  in
  Cmd.v
    (Cmd.info "dht" ~doc:"Probe the Chord DHT extension (footnote 5).")
    Term.(const run $ nodes_arg $ seed_arg $ byz_pct_arg)

let () =
  let info =
    Cmd.info "atum-cli" ~version:W.Build_info.version
      ~doc:"Drive simulated Atum deployments (volatile-group GCS) from the command line."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            grow_cmd; broadcast_cmd; churn_cmd; guideline_cmd; simulate_cmd; chaos_cmd;
            analyze_cmd; export_trace_cmd; compare_cmd; report_cmd; lint_cmd; dht_cmd;
          ]))
