(* Pass 1 of the repo-wide analysis: a value index and an intra-repo
   call graph over every parsed module.

   Everything is still syntactic — no cmi files, no typing — so name
   resolution is a path heuristic documented in LINT.md:

   - A file's canonical module name comes from its path:
     lib/util/hashtbl_ext.ml -> Atum_util.Hashtbl_ext (the dune
     library wrapper), bin/atum_cli.ml -> Atum_cli.
   - Toplevel [module X = Path] aliases and [open Path] are honoured
     when resolving spelled names; anything that still does not match
     an indexed module (Stdlib, external libraries) resolves to
     nothing and drops out of the graph.
   - A bare identifier reference counts as a call edge: a function
     passed eta-reduced to [Engine.every] or [List.iter] will be
     invoked, and the analysis must follow it.

   Per toplevel binding the index records: resolved-later call edges,
   direct D001 spellings (wall clock / OS entropy), writes to
   module-level mutable state, and whether any of those happened
   inside a closure handed to the engine scheduler (the S002 scope).
   Per module it records toplevel globals built from a mutable
   constructor ([ref], [Hashtbl.create], ..., [Atomic.make]) or a
   record literal naming a mutable field label. *)

open Parsetree

type call = { callee : string; call_line : int; call_in_task : bool }

type impure_use = { spelling : string; use_line : int }

type write = { target : string; write_line : int; write_in_task : bool }

type fn = {
  fn_name : string; (* unqualified binding name *)
  fn_module : string; (* canonical module, e.g. Atum_util.Rng *)
  fn_file : string;
  fn_line : int;
  mutable calls : call list; (* spelled (alias-expanded), newest first *)
  mutable impure : impure_use list;
  mutable writes : write list;
}

let fn_fq f = f.fn_module ^ "." ^ f.fn_name

type global = {
  g_name : string;
  g_module : string;
  g_file : string;
  g_line : int;
  g_kind : string; (* ref | hashtbl | buffer | bytes | array | queue | stack | atomic | mutable-record *)
  g_atomic : bool;
}

let global_fq g = g.g_module ^ "." ^ g.g_name

type module_info = {
  m_name : string; (* canonical *)
  m_file : string;
  mutable m_aliases : (string * string) list; (* local name -> spelled target *)
  mutable m_opens : string list; (* spelled targets, in order *)
  mutable m_values : string list; (* every toplevel binding name *)
}

type t = {
  modules : (string, module_info) Hashtbl.t; (* canonical -> info *)
  by_suffix : (string, string list) Hashtbl.t; (* path suffix -> canonical names *)
  fns : (string, fn) Hashtbl.t; (* canonical Module.value -> fn *)
  globals : (string, global) Hashtbl.t; (* canonical Module.value -> global *)
  mutable_labels : (string, unit) Hashtbl.t; (* record labels declared mutable anywhere *)
}

(* --- canonical module names ----------------------------------------- *)

let library_prefix dir =
  (* lib/lint builds the [atum_linter] library; every other lib/<d>
     directory wraps into Atum_<d>. *)
  if String.equal dir "lint" then "Atum_linter" else "Atum_" ^ dir

let module_of_file file =
  let base = String.capitalize_ascii (Filename.remove_extension (Filename.basename file)) in
  match String.split_on_char '/' file with
  | "lib" :: dir :: _ :: _ -> library_prefix dir ^ "." ^ base
  | _ -> base

(* --- small syntax helpers ------------------------------------------- *)

let longident_name lid = String.concat "." (Longident.flatten lid)

let line_of loc = loc.Location.loc_start.Lexing.pos_lnum

let last_component name =
  match String.rindex_opt name '.' with
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)
  | None -> name

let last_two name =
  match String.rindex_opt name '.' with
  | None -> name
  | Some i -> (
    match String.rindex_from_opt name (i - 1) '.' with
    | None -> name
    | Some j -> String.sub name (j + 1) (String.length name - j - 1))

let rec peel e =
  match e.pexp_desc with
  | Pexp_constraint (inner, _) | Pexp_coerce (inner, _, _) | Pexp_open (_, inner) ->
    peel inner
  | _ -> e

let rec is_function_expr e =
  match (peel e).pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | Pexp_newtype (_, inner) -> is_function_expr inner
  | _ -> false

let rec pattern_vars p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> [ txt ]
  | Ppat_alias (inner, { txt; _ }) -> txt :: pattern_vars inner
  | Ppat_constraint (inner, _) | Ppat_open (_, inner) | Ppat_lazy inner ->
    pattern_vars inner
  | Ppat_tuple ps -> List.concat_map pattern_vars ps
  | _ -> []

let mem_s name l = List.exists (String.equal name) l

let is_banned_entropy name =
  mem_s name Config.banned_idents
  || List.exists (fun p -> Config.starts_with ~prefix:p name) Config.banned_prefixes

(* Kind label for a mutable-constructor application. *)
let mutable_kind name =
  let module_part =
    match String.rindex_opt name '.' with Some i -> String.sub name 0 i | None -> ""
  in
  match last_component module_part with
  | "Hashtbl" -> "hashtbl"
  | "Buffer" -> "buffer"
  | "Bytes" -> "bytes"
  | "Array" -> "array"
  | "Queue" -> "queue"
  | "Stack" -> "stack"
  | "Atomic" -> "atomic"
  | _ -> "ref"

(* --- construction ---------------------------------------------------- *)

let create () =
  {
    modules = Hashtbl.create 64;
    by_suffix = Hashtbl.create 64;
    fns = Hashtbl.create 512;
    globals = Hashtbl.create 32;
    mutable_labels = Hashtbl.create 64;
  }

let register_module t m =
  Hashtbl.replace t.modules m.m_name m;
  let add suffix =
    let prev = Option.value ~default:[] (Hashtbl.find_opt t.by_suffix suffix) in
    if not (mem_s m.m_name prev) then Hashtbl.replace t.by_suffix suffix (m.m_name :: prev)
  in
  add m.m_name;
  add (last_component m.m_name)

(* Collect record labels declared [mutable] anywhere in the repo; used
   to classify toplevel record literals as shared mutable state. *)
let ingest_types t structure =
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_type (_, decls) ->
        List.iter
          (fun d ->
            match d.ptype_kind with
            | Ptype_record labels ->
              List.iter
                (fun l ->
                  if l.pld_mutable = Asttypes.Mutable then
                    Hashtbl.replace t.mutable_labels l.pld_name.txt ())
                labels
            | _ -> ())
          decls
      | _ -> ())
    structure

(* Expand a leading local alias: with [module E = Atum_sim.Engine] in
   scope, "E.every" becomes "Atum_sim.Engine.every". *)
let expand_alias (m : module_info) name =
  match String.index_opt name '.' with
  | None -> name
  | Some i -> (
    let head = String.sub name 0 i in
    match List.assoc_opt head m.m_aliases with
    | Some target -> target ^ String.sub name i (String.length name - i)
    | None -> name)

(* Is this application handing a closure to the engine scheduler?  The
   alias-expanded spelling must end in Engine.(schedule|schedule_at|
   every); the bare spelling only counts inside lib/sim/engine.ml. *)
let is_engine_scheduler ~file name =
  let base = last_component name in
  mem_s base Config.engine_schedulers
  && (String.equal (last_two name) ("Engine." ^ base)
     || (String.equal name base && String.equal file Config.engine_module_file))

(* The body walker: records calls, ident references (they become call
   edges too), banned-entropy spellings and global-write candidates,
   tracking whether the current expression sits inside a closure
   passed to the engine scheduler. *)
let scan_body (m : module_info) (fn : fn) body =
  let in_task = ref false in
  let record_call ~loc name =
    fn.calls <- { callee = name; call_line = line_of loc; call_in_task = !in_task } :: fn.calls
  in
  let record_write ~loc name =
    fn.writes <-
      { target = name; write_line = line_of loc; write_in_task = !in_task } :: fn.writes
  in
  let super = Ast_iterator.default_iterator in
  let expr self e =
    match e.pexp_desc with
    | Pexp_ident { txt; _ } ->
      let name = expand_alias m (longident_name txt) in
      if is_banned_entropy name then
        fn.impure <- { spelling = name; use_line = line_of e.pexp_loc } :: fn.impure;
      record_call ~loc:e.pexp_loc name
    | Pexp_setfield (target, _, value) ->
      (match (peel target).pexp_desc with
      | Pexp_ident { txt; _ } ->
        record_write ~loc:e.pexp_loc (expand_alias m (longident_name txt))
      | _ -> ());
      self.Ast_iterator.expr self target;
      self.Ast_iterator.expr self value
    | Pexp_apply (head, args) -> (
      match (peel head).pexp_desc with
      | Pexp_ident { txt; _ } ->
        let name = expand_alias m (longident_name txt) in
        if is_banned_entropy name then
          fn.impure <- { spelling = name; use_line = line_of e.pexp_loc } :: fn.impure;
        record_call ~loc:e.pexp_loc name;
        (* Write candidate: the first unlabelled argument of a known
           mutator spelling, when it is a plain identifier. *)
        (if
           mem_s name Config.write_functions
           || mem_s (last_two name) Config.write_functions
         then
           match
             List.find_opt (fun (l, _) -> l = Asttypes.Nolabel) args
           with
           | Some (_, arg) -> (
             match (peel arg).pexp_desc with
             | Pexp_ident { txt; _ } ->
               record_write ~loc:e.pexp_loc (expand_alias m (longident_name txt))
             | _ -> ())
           | None -> ());
        if is_engine_scheduler ~file:fn.fn_file name then begin
          (* The task body is the closure (or eta-reduced callable) in
             the final unlabelled position; only that argument runs on
             the engine.  Labelled arguments and the engine handle do
             not. *)
          let unlabelled = List.filter (fun (l, _) -> l = Asttypes.Nolabel) args in
          let task_arg =
            match List.rev unlabelled with (_, a) :: _ -> Some a | [] -> None
          in
          List.iter
            (fun (_, a) ->
              let is_task =
                match task_arg with Some ta -> ta == a | None -> false
              in
              if is_task || is_function_expr a then begin
                let saved = !in_task in
                in_task := true;
                self.Ast_iterator.expr self a;
                in_task := saved
              end
              else self.Ast_iterator.expr self a)
            args
        end
        else List.iter (fun (_, a) -> self.Ast_iterator.expr self a) args
      | _ -> super.Ast_iterator.expr self e)
    | _ -> super.Ast_iterator.expr self e
  in
  let it = { super with Ast_iterator.expr } in
  it.Ast_iterator.expr it body

(* Classify a toplevel binding's RHS as shared mutable state. *)
let global_of_binding (m : module_info) ~file ~line name expr =
  match (peel expr).pexp_desc with
  | Pexp_apply (head, _) -> (
    match (peel head).pexp_desc with
    | Pexp_ident { txt; _ } ->
      let spelled = expand_alias m (longident_name txt) in
      let matches l = mem_s spelled l || mem_s (last_two spelled) l in
      if matches Config.atomic_constructors then
        Some
          {
            g_name = name; g_module = m.m_name; g_file = file; g_line = line;
            g_kind = "atomic"; g_atomic = true;
          }
      else if matches Config.mutable_constructors then
        Some
          {
            g_name = name; g_module = m.m_name; g_file = file; g_line = line;
            g_kind = mutable_kind spelled; g_atomic = false;
          }
      else None
    | _ -> None)
  | _ -> None

let ingest_values t (m : module_info) structure =
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_module { pmb_name = { txt = Some name; _ }; pmb_expr; _ } -> (
        match pmb_expr.pmod_desc with
        | Pmod_ident { txt; _ } -> m.m_aliases <- (name, longident_name txt) :: m.m_aliases
        | _ -> ())
      | Pstr_open { popen_expr = { pmod_desc = Pmod_ident { txt; _ }; _ }; _ } ->
        m.m_opens <- m.m_opens @ [ longident_name txt ]
      | Pstr_value (_, bindings) ->
        List.iter
          (fun vb ->
            let vars = pattern_vars vb.pvb_pat in
            let line = line_of vb.pvb_loc in
            List.iter (fun v -> m.m_values <- v :: m.m_values) vars;
            match vars with
            | [] ->
              (* [let () = ...] initialisation code still calls and
                 writes — e.g. the knot-tying [hook := impl] at the
                 bottom of System.  It is not callable, but its writes
                 belong in the state inventory. *)
              let name = Printf.sprintf "(init:%d)" line in
              let fn =
                {
                  fn_name = name; fn_module = m.m_name; fn_file = m.m_file; fn_line = line;
                  calls = []; impure = []; writes = [];
                }
              in
              scan_body m fn vb.pvb_expr;
              Hashtbl.replace t.fns (m.m_name ^ "." ^ name) fn
            | name :: _ ->
              let fq = m.m_name ^ "." ^ name in
              let fn =
                {
                  fn_name = name; fn_module = m.m_name; fn_file = m.m_file; fn_line = line;
                  calls = []; impure = []; writes = [];
                }
              in
              (if not (is_function_expr vb.pvb_expr) then begin
                 match global_of_binding m ~file:m.m_file ~line name vb.pvb_expr with
                 | Some g -> Hashtbl.replace t.globals fq g
                 | None -> (
                   (* Toplevel record literal with a repo-declared
                      mutable field label: shared mutable state too. *)
                   match (peel vb.pvb_expr).pexp_desc with
                   | Pexp_record (fields, _)
                     when List.exists
                            (fun ({ Location.txt; _ }, _) ->
                              Hashtbl.mem t.mutable_labels
                                (last_component (longident_name txt)))
                            fields ->
                     Hashtbl.replace t.globals fq
                       {
                         g_name = name; g_module = m.m_name; g_file = m.m_file;
                         g_line = line; g_kind = "mutable-record"; g_atomic = false;
                       }
                   | _ -> ())
               end);
              scan_body m fn vb.pvb_expr;
              Hashtbl.replace t.fns fq fn)
          bindings
      | _ -> ())
    structure

let build parsed =
  let t = create () in
  let mods =
    List.map
      (fun (file, structure) ->
        let m =
          { m_name = module_of_file file; m_file = file; m_aliases = []; m_opens = [];
            m_values = [] }
        in
        register_module t m;
        (m, structure))
      parsed
  in
  List.iter (fun (_, structure) -> ingest_types t structure) mods;
  List.iter (fun (m, structure) -> ingest_values t m structure) mods;
  t

(* --- resolution ------------------------------------------------------ *)

let same_library a b =
  let lib n = match String.index_opt n '.' with Some i -> String.sub n 0 i | None -> n in
  String.equal (lib a) (lib b)

let resolve_module t ~from_module path =
  match Hashtbl.find_opt t.by_suffix path with
  | None -> None
  | Some [ c ] -> Some c
  | Some cs -> (
    let cs = List.sort String.compare cs in
    match List.find_opt (same_library from_module) cs with
    | Some c -> Some c
    | None -> ( match cs with c :: _ -> Some c | [] -> None))

let module_has_value t canonical value =
  match Hashtbl.find_opt t.modules canonical with
  | Some m -> mem_s value m.m_values
  | None -> false

(* Resolve a spelled (already alias-expanded) name from [from_module]
   to a canonical Module.value, or None for anything external. *)
let resolve t ~from_module name =
  match String.rindex_opt name '.' with
  | None ->
    let value = name in
    if module_has_value t from_module value then Some (from_module ^ "." ^ value)
    else begin
      let m = Hashtbl.find_opt t.modules from_module in
      let opens = match m with Some m -> m.m_opens | None -> [] in
      List.fold_left
        (fun acc o ->
          match acc with
          | Some _ -> acc
          | None -> (
            match resolve_module t ~from_module o with
            | Some c when module_has_value t c value -> Some (c ^ "." ^ value)
            | _ -> None))
        None opens
    end
  | Some i -> (
    let path = String.sub name 0 i in
    let value = String.sub name (i + 1) (String.length name - i - 1) in
    match resolve_module t ~from_module path with
    | Some c when module_has_value t c value -> Some (c ^ "." ^ value)
    | _ -> None)

(* --- deterministic views --------------------------------------------- *)

let compare_by_site f1 f2 =
  let c = String.compare f1.fn_file f2.fn_file in
  if c <> 0 then c
  else
    let c = Int.compare f1.fn_line f2.fn_line in
    if c <> 0 then c else String.compare f1.fn_name f2.fn_name

let sorted_fns t =
  List.sort compare_by_site
    (Hashtbl.fold (fun _ f acc -> f :: acc) t.fns [])

let sorted_globals t =
  List.sort
    (fun a b ->
      let c = String.compare a.g_file b.g_file in
      if c <> 0 then c else Int.compare a.g_line b.g_line)
    (Hashtbl.fold (fun _ g acc -> g :: acc) t.globals [])

let find_fn t fq = Hashtbl.find_opt t.fns fq

let find_global t fq = Hashtbl.find_opt t.globals fq
