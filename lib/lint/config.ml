(* Repo-specific rule configuration for atum-lint.

   The linter is not a general-purpose OCaml checker: every list below
   names things that exist in *this* repository (wire variants,
   Result-returning checkers, the sanctioned RNG).  Keeping the
   configuration in one module makes the rule set reviewable and keeps
   the engine free of string literals. *)

type severity = Error | Warning

let severity_to_string = function Error -> "error" | Warning -> "warning"

type rule = { id : string; severity : severity; summary : string }

let rules =
  [
    {
      id = "D001";
      severity = Error;
      summary =
        "wall-clock or OS entropy in lib/ (Unix.gettimeofday, Sys.time, Random.*): \
         simulated time and Atum_util.Rng are the only admissible sources";
    };
    {
      id = "D002";
      severity = Warning;
      summary =
        "Hashtbl.iter/Hashtbl.fold whose result is not passed through a sort in the \
         same expression: bucket order is not deterministic";
    };
    {
      id = "D003";
      severity = Error;
      summary =
        "polymorphic compare/=/<> on structured data in lib/smr, lib/core, \
         lib/overlay: protocol state needs module-specific compare/equal";
    };
    {
      id = "F001";
      severity = Error;
      summary = "float-literal equality (x = 0.0): use Float.equal or a sign/epsilon test";
    };
    {
      id = "M001";
      severity = Warning;
      summary = "ignore of a Result-returning checker: the error path is silently dropped";
    };
    {
      id = "W001";
      severity = Error;
      summary =
        "catch-all _ arm in a match over a wire-message variant: new constructors \
         must fail to compile, not vanish into a default case";
    };
  ]

let find_rule id = List.find (fun r -> String.equal r.id id) rules

(* --- path scopes --------------------------------------------------- *)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let in_lib path = starts_with ~prefix:"lib/" path

let protocol_dirs = [ "lib/smr/"; "lib/core/"; "lib/overlay/" ]

let in_protocol path = List.exists (fun d -> starts_with ~prefix:d path) protocol_dirs

(* --- D001: determinism escape hatches ------------------------------ *)

(* Exact identifiers that read the wall clock or per-process entropy.
   Any use of the stdlib [Random] module is banned wholesale: seeded
   randomness must flow through [Atum_util.Rng]. *)
let banned_idents =
  [ "Unix.gettimeofday"; "Unix.time"; "Unix.gmtime"; "Unix.localtime"; "Sys.time" ]

let banned_prefixes = [ "Random."; "Stdlib.Random." ]

(* --- D002: order-dependent traversals ------------------------------ *)

let hashtbl_traversals = [ "Hashtbl.iter"; "Hashtbl.fold"; "Stdlib.Hashtbl.iter"; "Stdlib.Hashtbl.fold" ]

(* Functions that impose a total order on (or deterministically
   consume) whatever flowed into them; a Hashtbl traversal nested in
   their arguments is considered laundered. *)
let sort_functions =
  [
    "List.sort"; "List.sort_uniq"; "List.stable_sort"; "List.fast_sort"; "Array.sort";
    "Hashtbl_ext.sorted_bindings"; "Hashtbl_ext.sorted_keys"; "Hashtbl_ext.sorted_iter";
    "Atum_util.Hashtbl_ext.sorted_bindings"; "Atum_util.Hashtbl_ext.sorted_keys";
    "Atum_util.Hashtbl_ext.sorted_iter";
  ]

(* --- D003: polymorphic comparison ---------------------------------- *)

let eq_operators = [ "="; "<>"; "=="; "!=" ]

let polymorphic_compare_idents = [ "compare"; "Stdlib.compare"; "Pervasives.compare" ]

(* --- M001: ignored Results ----------------------------------------- *)

(* Final path components of functions in this repo that return a
   [Result.t]; [ignore (f ...)] on any of these drops an error path. *)
let result_returning =
  [ "check_consistency"; "check_overlay"; "check_invariants"; "of_json"; "of_string"; "load_file" ]

(* --- W001: wire-message variants ------------------------------------ *)

(* Constructors of the variants that cross the simulated network:
   System.wire, System.gm_payload and Pbft.msg.  A match that names
   any of these must stay exhaustive. *)
let wire_constructors =
  [
    (* System.wire *)
    "Sync_msg"; "Async_msg"; "Group_part"; "Direct"; "Heartbeat";
    (* System.gm_payload *)
    "Control"; "Bcast";
    (* Pbft.msg *)
    "Request"; "Preprepare"; "Prepare"; "Commit"; "Viewchange"; "Newview";
  ]
