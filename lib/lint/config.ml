(* Repo-specific rule configuration for atum-lint.

   The linter is not a general-purpose OCaml checker: every list below
   names things that exist in *this* repository (wire variants,
   Result-returning checkers, the sanctioned RNG).  Keeping the
   configuration in one module makes the rule set reviewable and keeps
   the engine free of string literals. *)

type severity = Error | Warning

let severity_to_string = function Error -> "error" | Warning -> "warning"

type rule = { id : string; severity : severity; summary : string }

let rules =
  [
    {
      id = "D001";
      severity = Error;
      summary =
        "wall-clock or OS entropy in lib/ (Unix.gettimeofday, Sys.time, Random.*): \
         simulated time and Atum_util.Rng are the only admissible sources";
    };
    {
      id = "D002";
      severity = Warning;
      summary =
        "Hashtbl.iter/Hashtbl.fold whose result is not passed through a sort in the \
         same expression: bucket order is not deterministic";
    };
    {
      id = "D003";
      severity = Error;
      summary =
        "polymorphic compare/=/<> on structured data in lib/smr, lib/core, \
         lib/overlay: protocol state needs module-specific compare/equal";
    };
    {
      id = "F001";
      severity = Error;
      summary = "float-literal equality (x = 0.0): use Float.equal or a sign/epsilon test";
    };
    {
      id = "M001";
      severity = Warning;
      summary = "ignore of a Result-returning checker: the error path is silently dropped";
    };
    {
      id = "W001";
      severity = Error;
      summary =
        "catch-all _ arm in a match over a wire-message variant: new constructors \
         must fail to compile, not vanish into a default case";
    };
    {
      id = "E001";
      severity = Error;
      summary =
        "transitive impurity: a lib/ function reaches wall-clock or OS entropy \
         (a D001 source) through the intra-repo call graph; the wrapper is as \
         nondeterministic as the call it hides";
    };
    {
      id = "S001";
      severity = Error;
      summary =
        "module-level mutable state in lib/ (toplevel ref, Hashtbl.create, \
         Buffer.create, Array.make, mutable-record literal): shared across every \
         run in the process and across domains once sweeps go parallel; make it \
         per-instance or Atomic.t";
    };
    {
      id = "S002";
      severity = Error;
      summary =
        "cross-domain race candidate: a function reachable from an Engine task \
         closure writes a module-level mutable global; under parallel sweeps two \
         domains race on it";
    };
  ]

let find_rule id = List.find (fun r -> String.equal r.id id) rules

(* --- path scopes --------------------------------------------------- *)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let in_lib path = starts_with ~prefix:"lib/" path

let protocol_dirs = [ "lib/smr/"; "lib/core/"; "lib/overlay/" ]

let in_protocol path = List.exists (fun d -> starts_with ~prefix:d path) protocol_dirs

(* --- D001: determinism escape hatches ------------------------------ *)

(* Exact identifiers that read the wall clock or per-process entropy.
   Any use of the stdlib [Random] module is banned wholesale: seeded
   randomness must flow through [Atum_util.Rng]. *)
let banned_idents =
  [ "Unix.gettimeofday"; "Unix.time"; "Unix.gmtime"; "Unix.localtime"; "Sys.time" ]

let banned_prefixes = [ "Random."; "Stdlib.Random." ]

(* --- D002: order-dependent traversals ------------------------------ *)

let hashtbl_traversals = [ "Hashtbl.iter"; "Hashtbl.fold"; "Stdlib.Hashtbl.iter"; "Stdlib.Hashtbl.fold" ]

(* Functions that impose a total order on (or deterministically
   consume) whatever flowed into them; a Hashtbl traversal nested in
   their arguments is considered laundered. *)
let sort_functions =
  [
    "List.sort"; "List.sort_uniq"; "List.stable_sort"; "List.fast_sort"; "Array.sort";
    "Hashtbl_ext.sorted_bindings"; "Hashtbl_ext.sorted_keys"; "Hashtbl_ext.sorted_iter";
    "Atum_util.Hashtbl_ext.sorted_bindings"; "Atum_util.Hashtbl_ext.sorted_keys";
    "Atum_util.Hashtbl_ext.sorted_iter";
  ]

(* --- D003: polymorphic comparison ---------------------------------- *)

let eq_operators = [ "="; "<>"; "=="; "!=" ]

let polymorphic_compare_idents = [ "compare"; "Stdlib.compare"; "Pervasives.compare" ]

(* --- M001: ignored Results ----------------------------------------- *)

(* Final path components of functions in this repo that return a
   [Result.t]; [ignore (f ...)] on any of these drops an error path. *)
let result_returning =
  [ "check_consistency"; "check_overlay"; "check_invariants"; "of_json"; "of_string"; "load_file" ]

(* --- W001: wire-message variants ------------------------------------ *)

(* Constructors of the variants that cross the simulated network:
   System.wire, System.gm_payload and Pbft.msg.  A match that names
   any of these must stay exhaustive.

   The second group is *reserved* for the versioned binary codec
   (ROADMAP item 3): the codec PR must name its frame constructors
   from this list so every decoder match is exhaustiveness-policed
   from the first commit, exactly as simplexmq's versioned Protocol
   commands are. *)
let wire_constructors =
  [
    (* System.wire *)
    "Sync_msg"; "Async_msg"; "Group_part"; "Direct"; "Heartbeat";
    (* System.gm_payload *)
    "Control"; "Bcast";
    (* Pbft.msg *)
    "Request"; "Preprepare"; "Prepare"; "Commit"; "Viewchange"; "Newview";
    (* Reserved: versioned wire codec (ROADMAP item 3). *)
    "Frame"; "Hello"; "Version_ack"; "Unsupported_version";
    "Gossip_frame"; "Walk_frame"; "Smr_frame"; "Saga_frame"; "Decode_error";
  ]

(* --- S001/S002: module-level mutable state --------------------------- *)

(* Applications whose *toplevel* result is shared mutable state.  A
   [let] of one of these at module level is S001; the same call inside
   a function body builds per-call state and is fine. *)
let mutable_constructors =
  [
    "ref"; "Stdlib.ref";
    "Hashtbl.create"; "Stdlib.Hashtbl.create";
    "Buffer.create"; "Stdlib.Buffer.create";
    "Bytes.create"; "Bytes.make";
    "Array.make"; "Array.create_float"; "Array.init";
    "Queue.create"; "Stack.create";
  ]

(* Domain-safe by construction: inventoried in ATUM_lint_state.json
   but never flagged by S001/S002. *)
let atomic_constructors = [ "Atomic.make"; "Stdlib.Atomic.make" ]

(* Write spellings recognised by the pass-1 indexer.  [assign] mutate
   their first argument; [setfield] is the [g.f <- e] form handled
   structurally. *)
let write_functions =
  [
    ":="; "incr"; "decr";
    "Hashtbl.add"; "Hashtbl.replace"; "Hashtbl.remove"; "Hashtbl.reset"; "Hashtbl.clear";
    "Buffer.add_char"; "Buffer.add_string"; "Buffer.add_bytes"; "Buffer.clear"; "Buffer.reset";
    "Array.set"; "Array.unsafe_set"; "Array.fill"; "Array.blit";
    "Bytes.set"; "Bytes.unsafe_set"; "Bytes.fill"; "Bytes.blit";
    "Queue.push"; "Queue.add"; "Queue.pop"; "Queue.take"; "Queue.clear";
    "Stack.push"; "Stack.pop"; "Stack.clear";
    (* Atomics mutate too — S002 exempts them, but the state inventory
       still records who writes them. *)
    "Atomic.set"; "Atomic.exchange"; "Atomic.incr"; "Atomic.decr";
    "Atomic.fetch_and_add"; "Atomic.compare_and_set";
  ]

(* --- E001/S002: call-graph roots ------------------------------------- *)

(* A closure passed to one of these runs inside the simulation engine;
   everything it calls is task-reachable (S002's scope).  Matched on
   the alias-expanded spelling's last two components so
   [Engine.every], [Atum_sim.Engine.every] and a [module E = ...]
   alias all count; the bare spelling only counts inside
   lib/sim/engine.ml itself. *)
let engine_schedulers = [ "schedule"; "schedule_at"; "every" ]

let engine_module_file = "lib/sim/engine.ml"
