(* The checked-in suppression file, [lint.allow] at the repo root.

   One entry per line:

     RULE:path/to/file.ml:LINE # reason

   LINE may be [*] to cover every line of the file (for rules like
   D002 where a module legitimately traverses tables many times).  The
   reason is mandatory: an exception nobody can justify is a bug. *)

type entry = {
  rule : string;
  file : string;
  line : int option; (* None = wildcard *)
  reason : string;
  source_line : int; (* position in lint.allow, for stale reporting *)
  mutable used : bool;
}

type t = entry list

let parse_line ~lineno raw =
  let line = String.trim raw in
  if String.length line = 0 || line.[0] = '#' then Ok None
  else begin
    let spec, reason =
      match String.index_opt line '#' with
      | Some i ->
        ( String.trim (String.sub line 0 i),
          String.trim (String.sub line (i + 1) (String.length line - i - 1)) )
      | None -> (line, "")
    in
    if String.equal reason "" then
      Error (Printf.sprintf "lint.allow:%d: missing '# reason'" lineno)
    else begin
      match String.split_on_char ':' spec with
      | [ rule; file; lspec ] ->
        let line_of s =
          if String.equal s "*" then Ok None
          else begin
            match int_of_string_opt s with
            | Some n when n > 0 -> Ok (Some n)
            | _ -> Error (Printf.sprintf "lint.allow:%d: bad line number %S" lineno s)
          end
        in
        Result.map
          (fun l ->
            Some { rule; file; line = l; reason; source_line = lineno; used = false })
          (line_of lspec)
      | _ ->
        Error
          (Printf.sprintf "lint.allow:%d: expected RULE:file:line, got %S" lineno spec)
    end
  end

let spec_to_string e =
  Printf.sprintf "%s:%s:%s" e.rule e.file
    (match e.line with None -> "*" | Some n -> string_of_int n)

(* Two entries covering the same rule:file:line are a rot signal (one
   of them is a stale copy-paste) and an error, not a warning. *)
let duplicate_errors entries =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun e ->
      let key = spec_to_string e in
      match Hashtbl.find_opt seen key with
      | Some first ->
        Some
          (Printf.sprintf "lint.allow:%d: duplicate entry %s (first at line %d)"
             e.source_line key first)
      | None ->
        Hashtbl.replace seen key e.source_line;
        None)
    entries

let of_string s =
  let lines = String.split_on_char '\n' s in
  let rec go lineno acc errs = function
    | [] -> (List.rev acc, List.rev errs)
    | l :: rest -> (
      match parse_line ~lineno l with
      | Ok (Some e) -> go (lineno + 1) (e :: acc) errs rest
      | Ok None -> go (lineno + 1) acc errs rest
      | Error msg -> go (lineno + 1) acc (msg :: errs) rest)
  in
  let entries, errs = go 1 [] [] lines in
  (entries, errs @ duplicate_errors entries)

let load path =
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    of_string s
  end
  else ([], [])

(* Marks the matching entry used; first match wins so exact-line
   entries should precede wildcards for the same file. *)
let suppress t (d : Diagnostic.t) =
  match
    List.find_opt
      (fun e ->
        String.equal e.rule d.Diagnostic.rule
        && String.equal e.file d.Diagnostic.file
        && (match e.line with None -> true | Some n -> n = d.Diagnostic.line))
      t
  with
  | Some e ->
    e.used <- true;
    d.Diagnostic.suppressed <- Some e.reason
  | None -> ()

let stale t = List.filter (fun e -> not e.used) t

(* Non-marking query: does any entry cover this finding?  Pass 2 uses
   it to decide whether an allowlisted D001 source should still seed
   effect propagation (it should not: suppressing the source sanctions
   its callers), without consuming the entry's [used] flag. *)
let covers t ~rule ~file ~line =
  List.exists
    (fun e ->
      String.equal e.rule rule
      && String.equal e.file file
      && (match e.line with None -> true | Some n -> n = line))
    t

let entry_to_string e =
  Printf.sprintf "%s:%s:%s # %s" e.rule e.file
    (match e.line with None -> "*" | Some n -> string_of_int n)
    e.reason
