(* Pass 2 of the repo-wide analysis: interprocedural effect
   propagation and the domain-safety audit over the Pass-1 index.

   Three rule families are computed here (the per-expression rules
   stay in [Engine]):

   - E001: a lib/ function that *transitively* reaches a D001 source
     (wall clock, OS entropy) through the call graph.  A D001 source
     whose direct finding is allowlisted — the sanctioned
     [Prof_clock]-style opt-in wrapper — does not seed propagation:
     suppressing the source sanctions its callers too.
   - S001: module-level mutable state in lib/ ([ref],
     [Hashtbl.create], [Buffer.create], [Array.make], mutable-record
     literals bound at toplevel).  [Atomic.make] globals are
     inventoried but exempt.
   - S002: a function reachable from an Engine task closure that
     writes such a global — a cross-domain race candidate once sweeps
     run on parallel domains.

   The same computation yields the machine-readable state inventory
   (ATUM_lint_state.json): every module-level global with its writers
   and task reachability — the literal work-list for the OCaml 5
   domains work (ROADMAP item 2). *)

let schema_version = 1

type writer = {
  w_fn : string; (* canonical Module.value *)
  w_file : string;
  w_line : int; (* line of the write *)
  w_task : bool; (* write happens on a task-reachable path *)
}

type state_entry = {
  se_global : Index.global;
  se_writers : writer list; (* sorted by file/line/fn *)
  se_task_reachable : bool;
  se_flagged : bool; (* S001 fired on it *)
  se_allowlisted : bool; (* ... and lint.allow covers it *)
}

type state = {
  entries : state_entry list; (* sorted by file/line *)
  task_roots : string list; (* canonical fns seeding task reachability *)
}

let in_lib file = Config.starts_with ~prefix:"lib/" file

(* --- call graph views ------------------------------------------------ *)

(* Resolved, deduplicated callee list per function, deterministic. *)
let resolved_calls index (fn : Index.fn) =
  List.sort_uniq String.compare
    (List.filter_map
       (fun (c : Index.call) -> Index.resolve index ~from_module:fn.Index.fn_module c.Index.callee)
       fn.Index.calls)

(* Forward closure over the call graph from [roots] (canonical fns). *)
let reachable_from index roots =
  let visited = Hashtbl.create 64 in
  let rec go frontier =
    match frontier with
    | [] -> ()
    | _ ->
      let next =
        List.concat_map
          (fun fq ->
            if Hashtbl.mem visited fq then []
            else begin
              Hashtbl.replace visited fq ();
              match Index.find_fn index fq with
              | Some fn -> resolved_calls index fn
              | None -> []
            end)
          frontier
      in
      go (List.sort_uniq String.compare next)
  in
  go (List.sort_uniq String.compare roots);
  visited

(* --- E001: transitive impurity --------------------------------------- *)

(* An unsuppressed direct D001 use seeds propagation; pick the first
   use in the file as the witness. *)
let impure_seed allow (fn : Index.fn) =
  let unsuppressed =
    List.filter
      (fun (u : Index.impure_use) ->
        not (Allowlist.covers allow ~rule:"D001" ~file:fn.Index.fn_file ~line:u.Index.use_line))
      fn.Index.impure
  in
  match
    List.sort
      (fun (a : Index.impure_use) b -> Int.compare a.Index.use_line b.Index.use_line)
      unsuppressed
  with
  | [] -> None
  | u :: _ -> Some u

let effect_diagnostics index allow =
  let fns = Index.sorted_fns index in
  (* Reverse edges: callee -> callers. *)
  let preds : (string, string list) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (fn : Index.fn) ->
      let caller = Index.fn_fq fn in
      List.iter
        (fun callee ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt preds callee) in
          Hashtbl.replace preds callee (caller :: prev))
        (resolved_calls index fn))
    fns;
  let seeds =
    List.filter_map
      (fun (fn : Index.fn) ->
        match impure_seed allow fn with
        | Some u -> Some (Index.fn_fq fn, fn, u)
        | None -> None)
      fns
  in
  let seed_set = Hashtbl.create 8 in
  List.iter (fun (fq, fn, u) -> Hashtbl.replace seed_set fq (fn, u)) seeds;
  (* Multi-source BFS toward the callers; [next_hop] points one step
     back toward the seed so a witness chain can be printed. *)
  let next_hop = Hashtbl.create 64 in
  let origin = Hashtbl.create 64 in
  let rec bfs frontier =
    match frontier with
    | [] -> ()
    | _ ->
      let next =
        List.concat_map
          (fun fq ->
            let callers =
              List.sort_uniq String.compare
                (Option.value ~default:[] (Hashtbl.find_opt preds fq))
            in
            List.filter_map
              (fun caller ->
                if Hashtbl.mem next_hop caller || Hashtbl.mem seed_set caller then None
                else begin
                  Hashtbl.replace next_hop caller fq;
                  Hashtbl.replace origin caller
                    (match Hashtbl.find_opt origin fq with
                    | Some o -> o
                    | None -> fq);
                  Some caller
                end)
              callers)
          frontier
      in
      bfs (List.sort_uniq String.compare next)
  in
  bfs (List.sort_uniq String.compare (List.map (fun (fq, _, _) -> fq) seeds));
  let chain_of fq =
    let rec go acc fq =
      match Hashtbl.find_opt next_hop fq with
      | Some next -> go (next :: acc) next
      | None -> List.rev acc
    in
    fq :: go [] fq
  in
  List.filter_map
    (fun (fn : Index.fn) ->
      let fq = Index.fn_fq fn in
      if (not (in_lib fn.Index.fn_file)) || Hashtbl.mem seed_set fq then None
      else begin
        match Hashtbl.find_opt origin fq with
        | None -> None
        | Some seed_fq ->
          let seed_fn, u = Hashtbl.find seed_set seed_fq in
          Some
            (Diagnostic.make ~rule:"E001" ~file:fn.Index.fn_file ~line:fn.Index.fn_line
               ~col:0
               (Printf.sprintf
                  "%s transitively reaches %s (%s:%d) via %s; determinism requires the \
                   engine clock and Atum_util.Rng at every depth"
                  fq u.Index.spelling seed_fn.Index.fn_file u.Index.use_line
                  (String.concat " -> " (chain_of fq))))
      end)
    fns

(* --- S001/S002 + the state inventory --------------------------------- *)

let analyze ~index ~allow =
  let fns = Index.sorted_fns index in
  let globals = Index.sorted_globals index in
  (* Task roots: everything called (or referenced) inside a closure
     handed to Engine.schedule/schedule_at/every. *)
  let task_roots =
    List.sort_uniq String.compare
      (List.concat_map
         (fun (fn : Index.fn) ->
           List.filter_map
             (fun (c : Index.call) ->
               if c.Index.call_in_task then
                 Index.resolve index ~from_module:fn.Index.fn_module c.Index.callee
               else None)
             fn.Index.calls)
         fns)
  in
  let task_reachable = reachable_from index task_roots in
  let is_task_fn (fn : Index.fn) = Hashtbl.mem task_reachable (Index.fn_fq fn) in
  (* Writers per global: resolve every write target against the global
     index. *)
  let writers : (string, writer list) Hashtbl.t = Hashtbl.create 32 in
  let s002 = ref [] in
  List.iter
    (fun (fn : Index.fn) ->
      List.iter
        (fun (w : Index.write) ->
          match Index.resolve index ~from_module:fn.Index.fn_module w.Index.target with
          | None -> ()
          | Some gfq -> (
            match Index.find_global index gfq with
            | None -> ()
            | Some g ->
              let on_task = w.Index.write_in_task || is_task_fn fn in
              let entry =
                {
                  w_fn = Index.fn_fq fn; w_file = fn.Index.fn_file;
                  w_line = w.Index.write_line; w_task = on_task;
                }
              in
              let prev = Option.value ~default:[] (Hashtbl.find_opt writers gfq) in
              Hashtbl.replace writers gfq (entry :: prev);
              if on_task && (not g.Index.g_atomic) && in_lib fn.Index.fn_file then
                s002 :=
                  Diagnostic.make ~rule:"S002" ~file:fn.Index.fn_file
                    ~line:w.Index.write_line ~col:0
                    (Printf.sprintf
                       "%s is reachable from an Engine task closure and writes the \
                        module-level mutable %s (%s:%d); parallel sweeps race on it — \
                        isolate per run or use Atomic"
                       (Index.fn_fq fn) gfq g.Index.g_file g.Index.g_line)
                  :: !s002))
        fn.Index.writes)
    fns;
  let s001 =
    List.filter_map
      (fun (g : Index.global) ->
        if g.Index.g_atomic || not (in_lib g.Index.g_file) then None
        else
          Some
            (Diagnostic.make ~rule:"S001" ~file:g.Index.g_file ~line:g.Index.g_line ~col:0
               (Printf.sprintf
                  "module-level mutable state %s (%s) is shared by every run in the \
                   process and by all domains under parallel sweeps; make it \
                   per-instance or an Atomic.t"
                  (Index.global_fq g) g.Index.g_kind)))
      globals
  in
  let entries =
    List.map
      (fun (g : Index.global) ->
        let ws =
          List.sort
            (fun a b ->
              let c = String.compare a.w_file b.w_file in
              if c <> 0 then c
              else
                let c = Int.compare a.w_line b.w_line in
                if c <> 0 then c else String.compare a.w_fn b.w_fn)
            (Option.value ~default:[] (Hashtbl.find_opt writers (Index.global_fq g)))
        in
        let flagged = (not g.Index.g_atomic) && in_lib g.Index.g_file in
        {
          se_global = g;
          se_writers = ws;
          se_task_reachable = List.exists (fun w -> w.w_task) ws;
          se_flagged = flagged;
          se_allowlisted =
            flagged
            && Allowlist.covers allow ~rule:"S001" ~file:g.Index.g_file ~line:g.Index.g_line;
        })
      globals
  in
  let diags = effect_diagnostics index allow @ s001 @ !s002 in
  (List.sort Diagnostic.compare diags, { entries; task_roots })

(* --- ATUM_lint_state.json -------------------------------------------- *)

let state_to_json state =
  let open Atum_util.Json in
  let entry se =
    let g = se.se_global in
    Obj
      [
        ("name", String (Index.global_fq g));
        ("file", String g.Index.g_file);
        ("line", Int g.Index.g_line);
        ("kind", String g.Index.g_kind);
        ("atomic", Bool g.Index.g_atomic);
        ("flagged", Bool se.se_flagged);
        ("allowlisted", Bool se.se_allowlisted);
        ("task_reachable", Bool se.se_task_reachable);
        ( "writers",
          List
            (List.map
               (fun w ->
                 Obj
                   [
                     ("fn", String w.w_fn);
                     ("file", String w.w_file);
                     ("line", Int w.w_line);
                     ("in_task", Bool w.w_task);
                   ])
               se.se_writers) );
      ]
  in
  Obj
    [
      ("schema_version", Int schema_version);
      ("cmd", String "lint-state");
      ("globals", List (List.map entry state.entries));
      ("task_roots", List (List.map (fun r -> String r) state.task_roots));
      ( "summary",
        Obj
          [
            ("globals", Int (List.length state.entries));
            ("flagged", Int (List.length (List.filter (fun e -> e.se_flagged) state.entries)));
            ( "task_reachable",
              Int (List.length (List.filter (fun e -> e.se_task_reachable) state.entries)) );
            ("task_roots", Int (List.length state.task_roots));
          ] );
    ]
