type t = {
  rule : string;
  severity : Config.severity;
  file : string; (* repo-relative, forward slashes *)
  line : int; (* 1-based *)
  col : int; (* 0-based, as the compiler reports *)
  message : string;
  mutable suppressed : string option; (* allowlist reason when suppressed *)
}

let make ~rule ~file ~line ~col message =
  let severity = (Config.find_rule rule).Config.severity in
  { rule; severity; file; line; col; message; suppressed = None }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let to_string d =
  Printf.sprintf "%s:%d:%d: [%s/%s] %s%s" d.file d.line d.col d.rule
    (Config.severity_to_string d.severity)
    d.message
    (match d.suppressed with None -> "" | Some r -> Printf.sprintf " (allowed: %s)" r)

let to_json d =
  let open Atum_util.Json in
  Obj
    ([
       ("rule", String d.rule);
       ("severity", String (Config.severity_to_string d.severity));
       ("file", String d.file);
       ("line", Int d.line);
       ("col", Int d.col);
       ("message", String d.message);
       ("suppressed", Bool (Option.is_some d.suppressed));
     ]
    @ match d.suppressed with None -> [] | Some r -> [ ("reason", String r) ])
