(* Directory scanning, the two-pass analysis pipeline, allowlist
   application and reporting for atum-lint.  Shared by
   [bin/atum_lint.ml] (the build gate) and the [atum-cli lint]
   subcommand.

   Pass 1 parses every file once; the per-file syntactic rules
   ([Engine]) run on each parse tree while [Index] accumulates the
   value index and call graph.  Pass 2 ([Effects]) then derives the
   interprocedural findings (E001/S001/S002) and the machine-readable
   state inventory from the whole-repo index. *)

let schema_version = 2

type result = {
  files_scanned : int;
  diagnostics : Diagnostic.t list; (* sorted; includes suppressed *)
  parse_errors : (string * string) list; (* file, message *)
  allow_errors : string list; (* malformed or duplicate lint.allow lines *)
  stale_allows : Allowlist.entry list;
  strict_allow : bool; (* stale entries fail the gate *)
  state : Effects.state; (* the module-level mutable-state inventory *)
}

let unsuppressed r =
  List.filter (fun d -> Option.is_none d.Diagnostic.suppressed) r.diagnostics

let ok r =
  unsuppressed r = [] && r.parse_errors = [] && r.allow_errors = []
  && ((not r.strict_allow) || r.stale_allows = [])

(* Deterministic recursive listing of .ml files under [dir] (relative
   to [root]), skipping build and VCS artifacts. *)
let rec list_ml_files ~root dir =
  let abs = Filename.concat root dir in
  if not (Sys.file_exists abs && Sys.is_directory abs) then []
  else begin
    let entries = Sys.readdir abs in
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc name ->
        if String.equal name "_build" || String.equal name ".git" then acc
        else begin
          let rel = dir ^ "/" ^ name in
          if Sys.is_directory (Filename.concat root rel) then acc @ list_ml_files ~root rel
          else if Filename.check_suffix name ".ml" then acc @ [ rel ]
          else acc
        end)
      [] entries
  end

(* The shared pipeline over already-read sources: parse once, run the
   per-file pass, build the index, run the repo-wide pass, apply the
   allowlist.  [sources] must be deterministic in order. *)
let scan_sources ?(allow = ([] : Allowlist.t)) ?(allow_errors = []) ?(strict_allow = false)
    ~sources () =
  let parsed = ref [] in
  let diags = ref [] in
  let parse_errors = ref [] in
  List.iter
    (fun (file, source) ->
      match Engine.parse_source ~file source with
      | Ok structure ->
        parsed := (file, structure) :: !parsed;
        diags := Engine.check_structure ~file structure :: !diags
      | Error msg -> parse_errors := (file, msg) :: !parse_errors)
    sources;
  let index = Index.build (List.rev !parsed) in
  let effect_diags, state = Effects.analyze ~index ~allow in
  let diagnostics =
    List.sort Diagnostic.compare (List.concat (effect_diags :: !diags))
  in
  List.iter (fun d -> Allowlist.suppress allow d) diagnostics;
  {
    files_scanned = List.length sources;
    diagnostics;
    parse_errors = List.rev !parse_errors;
    allow_errors;
    stale_allows = Allowlist.stale allow;
    strict_allow;
    state;
  }

let scan ?allow ?allow_errors ?strict_allow ~root ~dirs () =
  let files = List.concat_map (fun d -> list_ml_files ~root d) dirs in
  let sources = List.map (fun file -> (file, Engine.read_file ~root ~file)) files in
  scan_sources ?allow ?allow_errors ?strict_allow ~sources ()

let run ?strict_allow ~root ~dirs ~allow_file () =
  let allow, allow_errors = Allowlist.load allow_file in
  scan ~allow ~allow_errors ?strict_allow ~root ~dirs ()

(* --- reporting ------------------------------------------------------ *)

let summary_counts r =
  let total = List.length r.diagnostics in
  let open_ = List.length (unsuppressed r) in
  (total, total - open_, open_)

let print_human ?(verbose = false) fmt r =
  List.iter
    (fun d ->
      if verbose || Option.is_none d.Diagnostic.suppressed then
        Format.fprintf fmt "%s@." (Diagnostic.to_string d))
    r.diagnostics;
  List.iter (fun (f, m) -> Format.fprintf fmt "%s: parse error: %s@." f m) r.parse_errors;
  List.iter (fun m -> Format.fprintf fmt "%s@." m) r.allow_errors;
  List.iter
    (fun e ->
      Format.fprintf fmt "lint.allow:%d: stale entry (matched nothing%s): %s@."
        e.Allowlist.source_line
        (if r.strict_allow then "; fails under --strict-allow" else "")
        (Allowlist.entry_to_string e))
    r.stale_allows;
  let total, suppressed, open_ = summary_counts r in
  Format.fprintf fmt "atum-lint: %d file%s, %d finding%s (%d allowlisted, %d open)@."
    r.files_scanned
    (if r.files_scanned = 1 then "" else "s")
    total
    (if total = 1 then "" else "s")
    suppressed open_

let to_json r =
  let open Atum_util.Json in
  let total, suppressed, open_ = summary_counts r in
  Obj
    [
      ("schema_version", Int schema_version);
      ("cmd", String "lint");
      ("files_scanned", Int r.files_scanned);
      ("strict_allow", Bool r.strict_allow);
      ( "rules",
        List
          (List.map
             (fun (rule : Config.rule) ->
               Obj
                 [
                   ("id", String rule.Config.id);
                   ("severity", String (Config.severity_to_string rule.Config.severity));
                   ("summary", String rule.Config.summary);
                 ])
             Config.rules) );
      ("violations", List (List.map Diagnostic.to_json r.diagnostics));
      ( "parse_errors",
        List
          (List.map
             (fun (f, m) -> Obj [ ("file", String f); ("message", String m) ])
             r.parse_errors) );
      ( "stale_allow",
        List (List.map (fun e -> String (Allowlist.entry_to_string e)) r.stale_allows) );
      ( "summary",
        Obj [ ("total", Int total); ("suppressed", Int suppressed); ("open", Int open_) ] );
    ]

let write_json ~dir r =
  let path = Filename.concat dir "ATUM_lint.json" in
  Atum_util.Json.write_file ~path (to_json r);
  path

(* The state inventory is its own artifact: it is the work-list for
   the multicore migration and is consumed by tooling, so it must stay
   byte-identical across runs on an unchanged tree. *)
let write_state_json ~dir r =
  let path = Filename.concat dir "ATUM_lint_state.json" in
  Atum_util.Json.write_file ~path (Effects.state_to_json r.state);
  path
