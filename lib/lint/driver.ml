(* Directory scanning, allowlist application and reporting for
   atum-lint.  Shared by [bin/atum_lint.ml] (the build gate) and the
   [atum-cli lint] subcommand. *)

let schema_version = 1

type result = {
  files_scanned : int;
  diagnostics : Diagnostic.t list; (* sorted; includes suppressed *)
  parse_errors : (string * string) list; (* file, message *)
  allow_errors : string list; (* malformed lint.allow lines *)
  stale_allows : Allowlist.entry list;
}

let unsuppressed r =
  List.filter (fun d -> Option.is_none d.Diagnostic.suppressed) r.diagnostics

let ok r = unsuppressed r = [] && r.parse_errors = [] && r.allow_errors = []

(* Deterministic recursive listing of .ml files under [dir] (relative
   to [root]), skipping build and VCS artifacts. *)
let rec list_ml_files ~root dir =
  let abs = Filename.concat root dir in
  if not (Sys.file_exists abs && Sys.is_directory abs) then []
  else begin
    let entries = Sys.readdir abs in
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc name ->
        if String.equal name "_build" || String.equal name ".git" then acc
        else begin
          let rel = dir ^ "/" ^ name in
          if Sys.is_directory (Filename.concat root rel) then acc @ list_ml_files ~root rel
          else if Filename.check_suffix name ".ml" then acc @ [ rel ]
          else acc
        end)
      [] entries
  end

let scan ?(allow = ([] : Allowlist.t)) ?(allow_errors = []) ~root ~dirs () =
  let files = List.concat_map (fun d -> list_ml_files ~root d) dirs in
  let diags = ref [] in
  let parse_errors = ref [] in
  List.iter
    (fun file ->
      match Engine.check_file ~root ~file with
      | Ok ds -> diags := ds :: !diags
      | Error msg -> parse_errors := (file, msg) :: !parse_errors)
    files;
  let diagnostics = List.sort Diagnostic.compare (List.concat !diags) in
  List.iter (fun d -> Allowlist.suppress allow d) diagnostics;
  {
    files_scanned = List.length files;
    diagnostics;
    parse_errors = List.rev !parse_errors;
    allow_errors;
    stale_allows = Allowlist.stale allow;
  }

let run ~root ~dirs ~allow_file () =
  let allow, allow_errors = Allowlist.load allow_file in
  scan ~allow ~allow_errors ~root ~dirs ()

(* --- reporting ------------------------------------------------------ *)

let summary_counts r =
  let total = List.length r.diagnostics in
  let open_ = List.length (unsuppressed r) in
  (total, total - open_, open_)

let print_human ?(verbose = false) fmt r =
  List.iter
    (fun d ->
      if verbose || Option.is_none d.Diagnostic.suppressed then
        Format.fprintf fmt "%s@." (Diagnostic.to_string d))
    r.diagnostics;
  List.iter (fun (f, m) -> Format.fprintf fmt "%s: parse error: %s@." f m) r.parse_errors;
  List.iter (fun m -> Format.fprintf fmt "%s@." m) r.allow_errors;
  List.iter
    (fun e ->
      Format.fprintf fmt "lint.allow:%d: stale entry (matched nothing): %s@."
        e.Allowlist.source_line (Allowlist.entry_to_string e))
    r.stale_allows;
  let total, suppressed, open_ = summary_counts r in
  Format.fprintf fmt "atum-lint: %d file%s, %d finding%s (%d allowlisted, %d open)@."
    r.files_scanned
    (if r.files_scanned = 1 then "" else "s")
    total
    (if total = 1 then "" else "s")
    suppressed open_

let to_json r =
  let open Atum_util.Json in
  let total, suppressed, open_ = summary_counts r in
  Obj
    [
      ("schema_version", Int schema_version);
      ("cmd", String "lint");
      ("files_scanned", Int r.files_scanned);
      ( "rules",
        List
          (List.map
             (fun (rule : Config.rule) ->
               Obj
                 [
                   ("id", String rule.Config.id);
                   ("severity", String (Config.severity_to_string rule.Config.severity));
                   ("summary", String rule.Config.summary);
                 ])
             Config.rules) );
      ("violations", List (List.map Diagnostic.to_json r.diagnostics));
      ( "parse_errors",
        List
          (List.map
             (fun (f, m) -> Obj [ ("file", String f); ("message", String m) ])
             r.parse_errors) );
      ( "stale_allow",
        List (List.map (fun e -> String (Allowlist.entry_to_string e)) r.stale_allows) );
      ( "summary",
        Obj [ ("total", Int total); ("suppressed", Int suppressed); ("open", Int open_) ] );
    ]

let write_json ~dir r =
  let path = Filename.concat dir "ATUM_lint.json" in
  Atum_util.Json.write_file ~path (to_json r);
  path
