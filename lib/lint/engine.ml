(* The AST pass: parse one .ml file with compiler-libs and walk its
   Parsetree with an [Ast_iterator], emitting diagnostics for the rule
   set in [Config].

   Everything here is syntactic — there is no type information — so
   each rule is an approximation documented in LINT.md:

   - D003 flags the bare polymorphic [compare] and any [=]/[<>] whose
     operand is a constructor *with a payload* (a tuple, record, or
     [Some x]-style application).  Comparing against constant
     constructors ([None], [[]], [true]) only inspects the tag and
     never descends into payloads, so it stays legal.
   - D002 clears a [Hashtbl.fold] that is syntactically nested inside
     (or piped into) one of [Config.sort_functions]; anything else is
     flagged and must be fixed or allowlisted.
   - M001 matches [ignore (f ...)] by the final path component of [f]
     against [Config.result_returning].
   - W001 fires on a guard-free [_]/variable arm of any [match] or
     [function] whose other arms name a wire constructor. *)

open Parsetree

type context = {
  file : string;
  mutable sort_depth : int;
  mutable diags : Diagnostic.t list;
}

let report ctx ~rule ~loc fmt =
  Printf.ksprintf
    (fun message ->
      let p = loc.Location.loc_start in
      ctx.diags <-
        Diagnostic.make ~rule ~file:ctx.file ~line:p.Lexing.pos_lnum
          ~col:(p.Lexing.pos_cnum - p.Lexing.pos_bol)
          message
        :: ctx.diags)
    fmt

let longident_name lid = String.concat "." (Longident.flatten lid)

let ident_name e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (longident_name txt)
  | _ -> None

let last_component name =
  match String.rindex_opt name '.' with
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)
  | None -> name

let mem_s name l = List.exists (String.equal name) l

let is_eq_op name = mem_s name Config.eq_operators
let is_sort_name name = mem_s name Config.sort_functions
let is_traversal name = mem_s name Config.hashtbl_traversals

let is_banned_entropy name =
  mem_s name Config.banned_idents
  || List.exists (fun p -> Config.starts_with ~prefix:p name) Config.banned_prefixes

(* [List.sort cmp] partially applied, or a full sort application —
   either side of a [|>]/[@@] pipe counts. *)
let is_sortish_expr e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> is_sort_name (longident_name txt)
  | Pexp_apply (f, _) -> (
    match ident_name f with Some n -> is_sort_name n | None -> false)
  | _ -> false

let is_float_literal e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | _ -> false

(* Structured operand of [=]/[<>]: polymorphic comparison will descend
   into a payload.  Constant constructors compare by tag only. *)
let is_structural e =
  match e.pexp_desc with
  | Pexp_construct (_, Some _) -> true
  | Pexp_variant (_, Some _) -> true
  | Pexp_tuple _ -> true
  | Pexp_record _ -> true
  | Pexp_array _ -> true
  | _ -> false

let rec pattern_mentions_wire p =
  match p.ppat_desc with
  | Ppat_construct ({ txt; _ }, arg) ->
    mem_s (last_component (longident_name txt)) Config.wire_constructors
    || (match arg with Some (_, inner) -> pattern_mentions_wire inner | None -> false)
  | Ppat_or (a, b) -> pattern_mentions_wire a || pattern_mentions_wire b
  | Ppat_alias (inner, _) | Ppat_constraint (inner, _) | Ppat_open (_, inner)
  | Ppat_exception inner | Ppat_lazy inner ->
    pattern_mentions_wire inner
  | Ppat_tuple ps -> List.exists pattern_mentions_wire ps
  | _ -> false

let is_catch_all p =
  match p.ppat_desc with Ppat_any | Ppat_var _ -> true | _ -> false

(* --- per-expression checks ------------------------------------------ *)

let check_ident ctx ~loc name =
  if Config.in_lib ctx.file && is_banned_entropy name then
    report ctx ~rule:"D001" ~loc
      "%s reaches outside the simulation for time or entropy; use the engine clock and \
       Atum_util.Rng"
      name;
  if Config.in_protocol ctx.file then begin
    if mem_s name Config.polymorphic_compare_idents then
      report ctx ~rule:"D003" ~loc
        "polymorphic %s on protocol data; pass a module-specific comparator (Int.compare, \
         String.compare, ...)"
        name
    else if is_eq_op name then
      report ctx ~rule:"D003" ~loc
        "polymorphic (%s) passed as a function in protocol code; use a module-specific equal"
        name
  end

let check_eq_application ctx ~loc op args =
  let exprs = List.map snd args in
  if List.exists is_float_literal exprs then
    report ctx ~rule:"F001" ~loc
      "float-literal equality with (%s); use Float.equal or an explicit sign/epsilon test" op;
  if Config.in_protocol ctx.file && List.exists is_structural exprs then
    report ctx ~rule:"D003" ~loc
      "structural (%s) on a constructor payload in protocol code; use a module-specific \
       equal (Option.equal, List.equal, ...)"
      op

let check_ignore ctx ~loc args =
  match args with
  | [ (_, arg) ] -> (
    match arg.pexp_desc with
    | Pexp_apply (f, _) -> (
      match ident_name f with
      | Some n when mem_s (last_component n) Config.result_returning ->
        report ctx ~rule:"M001" ~loc
          "ignore of %s drops a Result error path; match on it or log the Error" n
      | _ -> ())
    | _ -> ())
  | _ -> ()

let check_match ctx cases =
  if List.exists (fun c -> pattern_mentions_wire c.pc_lhs) cases then
    List.iter
      (fun c ->
        if Option.is_none c.pc_guard && is_catch_all c.pc_lhs then
          report ctx ~rule:"W001" ~loc:c.pc_lhs.ppat_loc
            "catch-all arm in a match over a wire-message variant; name every constructor \
             so new messages fail to compile")
      cases

(* --- the iterator --------------------------------------------------- *)

let iterator ctx =
  let super = Ast_iterator.default_iterator in
  let with_sort f =
    ctx.sort_depth <- ctx.sort_depth + 1;
    f ();
    ctx.sort_depth <- ctx.sort_depth - 1
  in
  let expr self e =
    match e.pexp_desc with
    | Pexp_ident { txt; _ } -> check_ident ctx ~loc:e.pexp_loc (longident_name txt)
    | Pexp_apply (f, args) -> (
      let visit_args () = List.iter (fun (_, a) -> self.Ast_iterator.expr self a) args in
      match ident_name f with
      | Some op when is_eq_op op ->
        (* The operator itself is handled here; do not visit [f], so a
           bare [=] reaching [check_ident] is a first-class use. *)
        check_eq_application ctx ~loc:e.pexp_loc op args;
        visit_args ()
      | Some "|>" -> (
        match args with
        | [ (_, lhs); (_, rhs) ] when is_sortish_expr rhs ->
          self.Ast_iterator.expr self rhs;
          with_sort (fun () -> self.Ast_iterator.expr self lhs)
        | _ -> super.Ast_iterator.expr self e)
      | Some "@@" -> (
        match args with
        | [ (_, lhs); (_, rhs) ] when is_sortish_expr lhs ->
          self.Ast_iterator.expr self lhs;
          with_sort (fun () -> self.Ast_iterator.expr self rhs)
        | _ -> super.Ast_iterator.expr self e)
      | Some n when is_sort_name n -> with_sort visit_args
      | Some n when is_traversal n ->
        if ctx.sort_depth = 0 then
          report ctx ~rule:"D002" ~loc:e.pexp_loc
            "%s enumerates buckets in nondeterministic order; sort the result in the same \
             expression (Atum_util.Hashtbl_ext) or allowlist with a commutativity argument"
            n;
        visit_args ()
      | Some n when String.equal (last_component n) "ignore" ->
        check_ignore ctx ~loc:e.pexp_loc args;
        visit_args ()
      | _ -> super.Ast_iterator.expr self e)
    | Pexp_match (_, cases) | Pexp_function cases ->
      check_match ctx cases;
      super.Ast_iterator.expr self e
    | _ -> super.Ast_iterator.expr self e
  in
  { super with Ast_iterator.expr }

(* --- entry points --------------------------------------------------- *)

let check_structure ~file structure =
  let ctx = { file; sort_depth = 0; diags = [] } in
  let it = iterator ctx in
  it.Ast_iterator.structure it structure;
  List.sort Diagnostic.compare ctx.diags

let parse_source ~file source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf file;
  match Parse.implementation lexbuf with
  | structure -> Ok structure
  | exception exn ->
    let msg =
      match Location.error_of_exn exn with
      | Some (`Ok report) -> Format.asprintf "%a" Location.print_report report
      | _ -> Printexc.to_string exn
    in
    Error (String.trim msg)

let check_source ~file source =
  Result.map (check_structure ~file) (parse_source ~file source)

let read_file ~root ~file =
  let path = Filename.concat root file in
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let source = really_input_string ic len in
  close_in ic;
  source

let parse_file ~root ~file = parse_source ~file (read_file ~root ~file)
