module Atum = Atum_core.Atum

type event = { topic : string; subscriber : string; publisher : string; payload : string }

type topic_state = {
  atum : Atum.t;
  clients : (string, Atum.node_id) Hashtbl.t; (* client name -> node *)
  names : (Atum.node_id, string) Hashtbl.t; (* node -> client name *)
}

type t = {
  params : Atum_core.Params.t;
  topic_table : (string, topic_state) Hashtbl.t;
  mutable handler : event -> unit;
  mutable delivered : int;
  rng : Atum_util.Rng.t;
}

let create ?(params = Atum_core.Params.default) () =
  {
    params;
    topic_table = Hashtbl.create 8;
    handler = (fun _ -> ());
    delivered = 0;
    rng = Atum_util.Rng.create (params.Atum_core.Params.seed + 17);
  }

let root_name = "@root"

let topic_state t name =
  match Hashtbl.find_opt t.topic_table name with
  | Some s -> s
  | None -> invalid_arg ("Asub: unknown topic " ^ name)

(* Publishes carry their author so subscribers see who published. *)
let encode ~publisher payload = publisher ^ "\x00" ^ payload

let decode body =
  match String.index_opt body '\x00' with
  | None -> ("?", body)
  | Some i ->
    (String.sub body 0 i, String.sub body (i + 1) (String.length body - i - 1))

let create_topic t name =
  if Hashtbl.mem t.topic_table name then invalid_arg ("Asub: duplicate topic " ^ name);
  let params = { t.params with Atum_core.Params.seed = t.params.seed + Hashtbl.hash name } in
  let atum = Atum.create ~params () in
  let root = Atum.bootstrap atum in
  let st =
    { atum; clients = Hashtbl.create 32; names = Hashtbl.create 32 }
  in
  Hashtbl.replace st.clients root_name root;
  Hashtbl.replace st.names root root_name;
  Atum.on_deliver atum (fun nid ~bid:_ ~origin:_ body ->
      match Hashtbl.find_opt st.names nid with
      | None -> ()
      | Some subscriber ->
        let publisher, payload = decode body in
        t.delivered <- t.delivered + 1;
        t.handler { topic = name; subscriber; publisher; payload });
  Hashtbl.replace t.topic_table name st

let topics t = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.topic_table [])

let subscribe t ~topic client =
  let st = topic_state t topic in
  if Hashtbl.mem st.clients client then invalid_arg ("Asub: already subscribed " ^ client);
  (* Sorted by client name: [existing] feeds a seeded Rng.pick below. *)
  let existing =
    List.map snd (Atum_util.Hashtbl_ext.sorted_bindings ~cmp:String.compare st.clients)
  in
  let live = List.filter (fun nid -> Atum.is_member st.atum nid) existing in
  let contact =
    match live with [] -> invalid_arg "Asub: topic has no live subscriber" | l -> Atum_util.Rng.pick t.rng l
  in
  let nid = Atum.join st.atum ~contact () in
  Hashtbl.replace st.clients client nid;
  Hashtbl.replace st.names nid client

let unsubscribe t ~topic client =
  let st = topic_state t topic in
  match Hashtbl.find_opt st.clients client with
  | None -> invalid_arg ("Asub: not subscribed " ^ client)
  | Some nid ->
    Atum.leave st.atum nid;
    Hashtbl.remove st.clients client;
    Hashtbl.remove st.names nid

let is_subscribed t ~topic client =
  let st = topic_state t topic in
  match Hashtbl.find_opt st.clients client with
  | None -> false
  | Some nid -> Atum.is_member st.atum nid

let subscribers t ~topic =
  let st = topic_state t topic in
  List.sort compare
    (Hashtbl.fold
       (fun name nid acc -> if Atum.is_member st.atum nid then name :: acc else acc)
       st.clients [])

let publish t ~topic ~as_ payload =
  let st = topic_state t topic in
  match Hashtbl.find_opt st.clients as_ with
  | None -> invalid_arg ("Asub: publisher not subscribed: " ^ as_)
  | Some nid -> ignore (Atum.broadcast st.atum ~from:nid (encode ~publisher:as_ payload))

let on_event t f = t.handler <- f

let run_for t dt = Hashtbl.iter (fun _ st -> Atum.run_for st.atum dt) t.topic_table

let events_delivered t = t.delivered
