module Atum = Atum_core.Atum
module System = Atum_core.System
module Bulk = Atum_sim.Bulk

type node_id = int

type content = Real of string | Synthetic of float

type get_result = {
  latency : float;
  pulled_mb : float;
  corrupted_chunks : int;
  data : string option;
}

(* Each node's view of one file: its own mutable replica list (soft
   state), plus the immutable facts from the PUT broadcast. *)
type entry = { size_mb : float; chunk_count : int; mutable replicas : node_id list }

type t = {
  atum : Atum.t;
  rho : int;
  host : Bulk.host;
  rng : Atum_util.Rng.t;
  indexes : (node_id, entry Kv_index.t) Hashtbl.t;
  stored : (node_id, (Kv_index.key, unit) Hashtbl.t) Hashtbl.t;
  contents : (Kv_index.key, content) Hashtbl.t; (* ground-truth bytes *)
  digests : (Kv_index.key, Atum_crypto.Chunks.digest_set) Hashtbl.t;
}

let owner_name nid = "user-" ^ string_of_int nid

let key ~owner ~name = { Kv_index.owner; name }

let sep = '\x01'

let encode parts = String.concat (String.make 1 sep) parts

let decode s = String.split_on_char sep s

let index_of t nid =
  match Hashtbl.find_opt t.indexes nid with
  | Some ix -> ix
  | None ->
    let ix = Kv_index.create () in
    Hashtbl.replace t.indexes nid ix;
    ix

let stored_of t nid =
  match Hashtbl.find_opt t.stored nid with
  | Some s -> s
  | None ->
    let s = Hashtbl.create 8 in
    Hashtbl.replace t.stored nid s;
    s

let atum t = t.atum

let engine t = System.engine (Atum.system t.atum)

let content_size_mb = function
  | Real s -> float_of_int (String.length s) /. 1_048_576.0
  | Synthetic mb -> mb

let stores t ~node ~owner ~name = Hashtbl.mem (stored_of t node) (key ~owner ~name)

let replica_count t ~node ~owner ~name =
  match Kv_index.get (index_of t node) (key ~owner ~name) with
  | Some e -> List.length e.replicas
  | None -> 0

let index_size t ~node = Kv_index.size (index_of t node)

let is_correct_member t nid =
  Atum.is_member t.atum nid
  &&
  match System.node_opt (Atum.system t.atum) nid with
  | Some n -> n.System.alive && not n.System.byzantine
  | None -> false

let is_byzantine t nid =
  match System.node_opt (Atum.system t.atum) nid with
  | Some n -> n.System.byzantine
  | None -> false

(* --- GET (§4.2.2) --------------------------------------------------- *)

(* Chunks are assigned round-robin across every replica the reader
   knows; pulls from all replicas proceed in parallel.  Chunks landing
   on a corrupting holder fail their digest check and are re-pulled
   from the correct holders.  Digest computation is multithreaded
   across chunks (Bulk.hash_time). *)
(* Index resolution and per-replica connection brokering cost a little
   more than one NFS lookup; it is what makes NFS marginally faster on
   very small files (Fig 9). *)
let lookup_overhead = 0.05

let get t ~reader ~owner ~name ~k =
  let finish delay result =
    let delay = delay +. lookup_overhead in
    let result =
      Option.map (fun r -> { r with latency = r.latency +. lookup_overhead }) result
    in
    Atum_sim.Engine.schedule ~label:"ashare.rpc" (engine t) ~delay (fun () -> k result)
  in
  match Kv_index.get (index_of t reader) (key ~owner ~name) with
  | None -> finish 0.001 None
  | Some e ->
    let holders =
      List.filter (fun h -> Hashtbl.mem (stored_of t h) (key ~owner ~name)) e.replicas
    in
    if List.mem reader holders then begin
      (* Local replica: only the integrity check costs anything. *)
      let check = Bulk.hash_time t.host ~mb:e.size_mb ~parallel_chunks:e.chunk_count in
      let data =
        match Hashtbl.find_opt t.contents (key ~owner ~name) with
        | Some (Real s) -> Some s
        | _ -> None
      in
      finish check
        (Some { latency = check; pulled_mb = 0.0; corrupted_chunks = 0; data })
    end
    else begin
      match holders with
      | [] -> finish 0.001 None
      | _ ->
        let corrupt, correct = List.partition (fun h -> is_byzantine t h) holders in
        let chunks = max 1 e.chunk_count in
        let nh = List.length holders in
        (* Round-robin assignment: chunk i goes to holder (i mod nh). *)
        let bad_chunks =
          List.length
            (List.filter
               (fun i -> List.mem (List.nth holders (i mod nh)) corrupt)
               (List.init chunks Fun.id))
        in
        let hosts_of l = List.map (fun _ -> t.host) l in
        let t1 =
          Bulk.parallel_pull_time ~sources:(hosts_of holders) ~dst:t.host ~mb:e.size_mb ~chunks
        in
        let hash1 = Bulk.hash_time t.host ~mb:e.size_mb ~parallel_chunks:chunks in
        if bad_chunks = 0 then begin
          let data =
            match Hashtbl.find_opt t.contents (key ~owner ~name) with
            | Some (Real s) -> Some s
            | _ -> None
          in
          finish (t1 +. hash1)
            (Some
               { latency = t1 +. hash1; pulled_mb = e.size_mb; corrupted_chunks = 0; data })
        end
        else if correct = [] then finish (t1 +. hash1) None
        else begin
          let bad_mb = e.size_mb *. float_of_int bad_chunks /. float_of_int chunks in
          let t2 =
            Bulk.parallel_pull_time ~sources:(hosts_of correct) ~dst:t.host ~mb:bad_mb
              ~chunks:bad_chunks
          in
          let hash2 = Bulk.hash_time t.host ~mb:bad_mb ~parallel_chunks:bad_chunks in
          let total = t1 +. hash1 +. t2 +. hash2 in
          let data =
            match Hashtbl.find_opt t.contents (key ~owner ~name) with
            | Some (Real s) -> Some s
            | _ -> None
          in
          finish total
            (Some
               {
                 latency = total;
                 pulled_mb = e.size_mb +. bad_mb;
                 corrupted_chunks = bad_chunks;
                 data;
               })
        end
    end

(* --- Randomized replication feedback loop (Fig 5) ------------------- *)

let rec maybe_replicate t nid fkey =
  let ix = index_of t nid in
  match Kv_index.get ix fkey with
  | None -> ()
  | Some e ->
    if
      (not (Hashtbl.mem (stored_of t nid) fkey))
      && List.length e.replicas < t.rho
      && is_correct_member t nid
    then begin
      let n = max 1 (Atum.size t.atum) in
      let c = List.length e.replicas in
      let prob = float_of_int (t.rho - c) /. float_of_int n in
      if Atum_util.Rng.bernoulli t.rng prob then begin
        (* Replicating = reading the file, then announcing. *)
        get t ~reader:nid ~owner:fkey.Kv_index.owner ~name:fkey.Kv_index.name ~k:(function
          | Some _ when is_correct_member t nid ->
            Hashtbl.replace (stored_of t nid) fkey ();
            ignore
              (Atum.broadcast t.atum ~from:nid
                 (encode [ "rep"; fkey.Kv_index.owner; fkey.Kv_index.name; string_of_int nid ]))
          | _ -> ())
      end
    end

and handle_deliver t nid body =
  match decode body with
  | [ "put"; owner; name; size_mb; chunks; owner_node ] -> (
    match (float_of_string_opt size_mb, int_of_string_opt chunks, int_of_string_opt owner_node) with
    | Some size_mb, Some chunk_count, Some owner_node ->
      let fkey = key ~owner ~name in
      Kv_index.put (index_of t nid) fkey { size_mb; chunk_count; replicas = [ owner_node ] };
      maybe_replicate t nid fkey
    | _ -> ())
  | [ "rep"; owner; name; holder ] -> (
    match int_of_string_opt holder with
    | Some holder ->
      let fkey = key ~owner ~name in
      (match Kv_index.get (index_of t nid) fkey with
      | Some e ->
        if not (List.mem holder e.replicas) then e.replicas <- holder :: e.replicas;
        maybe_replicate t nid fkey
      | None -> ())
    | None -> ())
  | [ "del"; owner; name ] ->
    let fkey = key ~owner ~name in
    Kv_index.remove (index_of t nid) fkey;
    Hashtbl.remove (stored_of t nid) fkey;
    Hashtbl.remove t.contents fkey;
    Hashtbl.remove t.digests fkey
  | _ -> ()

(* --- durable state (snapshots + WAL replay) -------------------------- *)

module Json = Atum_util.Json

let entry_to_json (e : entry) =
  Json.Obj
    [
      ("size_mb", Json.Float e.size_mb);
      ("chunk_count", Json.Int e.chunk_count);
      ("replicas", Json.List (List.map (fun r -> Json.Int r) (List.sort compare e.replicas)));
    ]

let entry_of_json j =
  match (Json.member "size_mb" j, Json.member "chunk_count" j, Json.member "replicas" j) with
  | Some (Json.Float size_mb), Some (Json.Int chunk_count), Some (Json.List rs) ->
    let replicas = List.filter_map (function Json.Int r -> Some r | _ -> None) rs in
    if List.length replicas = List.length rs then Some { size_mb; chunk_count; replicas }
    else None
  | _ -> None

(* The per-node durable state is exactly what a cold restart loses: the
   metadata index and the stored-replica set.  [contents]/[digests] are
   simulation ground truth (the "disk blocks"), not replica soft state,
   so they survive a restart and stay out of the snapshot. *)
let export_state t nid =
  let stored_keys =
    List.sort Kv_index.compare_key
      (Hashtbl.fold (fun k () acc -> k :: acc) (stored_of t nid) [])
  in
  Json.Obj
    [
      ("index", Kv_index.to_json entry_to_json (index_of t nid));
      ( "stored",
        Json.List
          (List.map
             (fun (k : Kv_index.key) ->
               Json.Obj [ ("owner", Json.String k.owner); ("name", Json.String k.name) ])
             stored_keys) );
    ]

let wipe_state t nid =
  Hashtbl.remove t.indexes nid;
  Hashtbl.remove t.stored nid

let import_state t nid j =
  match (Json.member "index" j, Json.member "stored" j) with
  | Some ix_json, Some (Json.List stored) -> (
    match Kv_index.of_json entry_of_json ix_json with
    | Some ix ->
      Hashtbl.replace t.indexes nid ix;
      let s = Hashtbl.create 8 in
      List.iter
        (fun item ->
          match (Json.member "owner" item, Json.member "name" item) with
          | Some (Json.String owner), Some (Json.String name) ->
            Hashtbl.replace s (key ~owner ~name) ()
          | _ -> ())
        stored;
      Hashtbl.replace t.stored nid s
    | None -> ())
  | _ -> ()

(* WAL replay applies a delivered broadcast to local state only: no
   re-broadcast, no replication lottery — those already ran (and were
   themselves logged) before the crash. *)
let replay_deliver t nid body =
  match decode body with
  | [ "put"; owner; name; size_mb; chunks; owner_node ] -> (
    match (float_of_string_opt size_mb, int_of_string_opt chunks, int_of_string_opt owner_node) with
    | Some size_mb, Some chunk_count, Some owner_node ->
      Kv_index.put (index_of t nid) (key ~owner ~name)
        { size_mb; chunk_count; replicas = [ owner_node ] }
    | _ -> ())
  | [ "rep"; owner; name; holder ] -> (
    match int_of_string_opt holder with
    | Some holder -> (
      match Kv_index.get (index_of t nid) (key ~owner ~name) with
      | Some e -> if not (List.mem holder e.replicas) then e.replicas <- holder :: e.replicas
      | None -> ())
    | None -> ())
  | [ "del"; owner; name ] ->
    let fkey = key ~owner ~name in
    Kv_index.remove (index_of t nid) fkey;
    Hashtbl.remove (stored_of t nid) fkey
  | _ -> ()

let enable_persistence t =
  System.set_app_state (Atum.system t.atum)
    ~export:(fun nid -> export_state t nid)
    ~wipe:(fun nid -> wipe_state t nid)
    ~import:(fun nid j -> import_state t nid j)
    ~replay:(fun nid ~bid:_ ~origin:_ body -> replay_deliver t nid body)

let attach atum ~rho =
  if rho < 1 then invalid_arg "Ashare.attach: rho must be at least 1";
  let t =
    {
      atum;
      rho;
      host = Bulk.ec2_micro;
      rng = Atum_util.Rng.create 23;
      indexes = Hashtbl.create 64;
      stored = Hashtbl.create 64;
      contents = Hashtbl.create 64;
      digests = Hashtbl.create 64;
    }
  in
  Atum.on_deliver atum (fun nid ~bid:_ ~origin:_ body -> handle_deliver t nid body);
  t

(* --- PUT / DELETE / SEARCH ------------------------------------------ *)

let put t ~owner ~name ?(chunk_count = 10) content =
  if not (Atum.is_member t.atum owner) then invalid_arg "Ashare.put: owner not in the system";
  let fkey = key ~owner:(owner_name owner) ~name in
  let size_mb = content_size_mb content in
  Hashtbl.replace t.contents fkey content;
  (match content with
  | Real s -> Hashtbl.replace t.digests fkey (Atum_crypto.Chunks.digests ~chunk_count s)
  | Synthetic _ -> ());
  Hashtbl.replace (stored_of t owner) fkey ();
  ignore
    (Atum.broadcast t.atum ~from:owner
       (encode
          [
            "put";
            owner_name owner;
            name;
            string_of_float size_mb;
            string_of_int chunk_count;
            string_of_int owner;
          ]))

let delete t ~owner ~name =
  ignore (Atum.broadcast t.atum ~from:owner (encode [ "del"; owner_name owner; name ]))

let search t ~node term =
  List.map
    (fun ((k : Kv_index.key), _) -> (k.Kv_index.owner, k.Kv_index.name))
    (Kv_index.search (index_of t node) term)

let indexes_converged t =
  let sys = Atum.system t.atum in
  let members =
    List.filter_map
      (fun (n : System.node) ->
        if n.System.alive && (not n.System.byzantine) && n.System.vg <> None then
          Some n.System.id
        else None)
      (System.live_nodes sys)
  in
  match members with
  | [] -> true
  | first :: rest ->
    let snapshot nid =
      Kv_index.fold
        (fun k e acc -> (k, e.size_mb, e.chunk_count, List.sort compare e.replicas) :: acc)
        (index_of t nid) []
    in
    let reference = snapshot first in
    List.for_all (fun nid -> snapshot nid = reference) rest

let place_replicas t ~owner ~name ~holders =
  let fkey = key ~owner:(owner_name owner) ~name in
  let holders = List.sort_uniq compare holders in
  (* Exact placement: the experiment controls the replica set, so any
     previous holders are dropped first. *)
  Hashtbl.iter (fun _ s -> Hashtbl.remove s fkey) t.stored;
  List.iter (fun h -> Hashtbl.replace (stored_of t h) fkey ()) holders;
  Hashtbl.iter
    (fun _ ix ->
      match Kv_index.get ix fkey with
      | Some e -> e.replicas <- holders
      | None -> ())
    t.indexes
