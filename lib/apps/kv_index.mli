(** The AShare metadata index (§4.2.2): a per-node, in-memory ordered
    key-value store playing the role the paper gives to SQLite — file
    lookup (files-to-nodes mapping) and search over the namespace.
    Backed by {!Atum_util.Btree}.

    Keys are (owner, filename): every user owns a flat namespace and
    only the owner ever writes to it, so index updates never
    conflict (§4.2.1).  The ordering puts a user's whole namespace in
    one contiguous key range, so {!owner_files} is a single B-tree
    range scan. *)

type 'a t

type key = { owner : string; name : string }

val compare_key : key -> key -> int

val create : unit -> 'a t

val put : 'a t -> key -> 'a -> unit

val get : 'a t -> key -> 'a option

val mem : 'a t -> key -> bool

val remove : 'a t -> key -> unit

val size : 'a t -> int

val keys : 'a t -> key list
(** Sorted by owner, then name. *)

val fold : (key -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b

val search : 'a t -> string -> (key * 'a) list
(** Substring match on owner or file name (SEARCH, §4.2.1), sorted. *)

val owner_files : 'a t -> string -> (key * 'a) list
(** All files in one user's namespace — a contiguous range scan. *)

(* --- snapshot codec -------------------------------------------------- *)

val to_json : ('a -> Atum_util.Json.t) -> 'a t -> Atum_util.Json.t
(** Serialize in ascending key order (equal indexes produce identical
    bytes).  Used by the durability layer's snapshots. *)

val of_json : (Atum_util.Json.t -> 'a option) -> Atum_util.Json.t -> 'a t option
(** Inverse of {!to_json}; [None] on any malformed entry. *)
