type key = { owner : string; name : string }

let compare_key a b =
  match compare a.owner b.owner with 0 -> compare a.name b.name | c -> c

(* Backed by the B-tree store (Atum_util.Btree) — the ordered KV
   engine standing in for the paper's SQLite (§4.2.2). *)
type 'a t = ('a kv_tree) ref
and 'a kv_tree = (key, 'a) Atum_util.Btree.t

let create () = ref (Atum_util.Btree.create ~degree:8 ~cmp:compare_key ())

let put t k v = Atum_util.Btree.insert !t k v

let get t k = Atum_util.Btree.find !t k

let mem t k = Atum_util.Btree.mem !t k

let remove t k = Atum_util.Btree.remove !t k

let size t = Atum_util.Btree.size !t

let keys t = List.map fst (Atum_util.Btree.to_list !t)

let fold f t init = Atum_util.Btree.fold f !t init

let contains_substring ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  if nl = 0 then true
  else begin
    let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
    scan 0
  end

let search t term =
  List.rev
    (fold
       (fun k v acc ->
         if contains_substring ~needle:term k.owner || contains_substring ~needle:term k.name
         then (k, v) :: acc
         else acc)
       t [])

(* --- snapshot codec -------------------------------------------------- *)

module Json = Atum_util.Json

(* Ascending key order (Btree.fold), so equal indexes serialize to
   identical bytes — the property the determinism artifacts rely on. *)
let to_json value_to_json t =
  Json.List
    (List.rev
       (fold
          (fun k v acc ->
            Json.Obj
              [
                ("owner", Json.String k.owner);
                ("name", Json.String k.name);
                ("value", value_to_json v);
              ]
            :: acc)
          t []))

let of_json value_of_json j =
  match j with
  | Json.List items ->
    let t = create () in
    let ok =
      List.for_all
        (fun item ->
          match
            ( Json.member "owner" item,
              Json.member "name" item,
              Json.member "value" item )
          with
          | Some (Json.String owner), Some (Json.String name), Some v -> (
            match value_of_json v with
            | Some value ->
              put t { owner; name } value;
              true
            | None -> false)
          | _ -> false)
        items
    in
    if ok then Some t else None
  | _ -> None

let owner_files t owner =
  (* Range scan over the owner's namespace: keys are ordered by owner
     first, so the whole namespace is one contiguous B-tree range. *)
  Atum_util.Btree.range !t ~lo:{ owner; name = "" } ~hi:{ owner; name = "\xff\xff\xff\xff" }
