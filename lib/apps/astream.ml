module Atum = Atum_core.Atum
module System = Atum_core.System
module Hgraph = Atum_overlay.Hgraph

type node_id = int

type t = {
  atum : Atum.t;
  src : node_id;
  primary : (node_id, node_id list) Hashtbl.t;
  shortcuts : (node_id, node_id list) Hashtbl.t;
}

let source t = t.src

let parents t nid = Option.value ~default:[] (Hashtbl.find_opt t.primary nid)

let shortcut_parents t nid = Option.value ~default:[] (Hashtbl.find_opt t.shortcuts nid)

let correct sys nid =
  match System.node_opt sys nid with
  | Some n -> n.System.alive && not n.System.byzantine
  | None -> false

let build ~atum ~source:src ~cycles_used ~seed =
  let sys = Atum.system atum in
  let hg = System.hgraph sys in
  let p = Atum.params atum in
  if cycles_used < 1 || cycles_used > p.Atum_core.Params.hc then
    invalid_arg "Astream.build: cycles_used out of range";
  if not (Atum.is_member atum src) then invalid_arg "Astream.build: source not a member";
  let rng = Atum_util.Rng.create seed in
  (* Deterministic cycle/direction choice, known to every node: hash
     the stream seed. *)
  let base_cycle = abs (Hashtbl.hash (seed, "cycle")) mod p.Atum_core.Params.hc in
  let direction_left = Hashtbl.hash (seed, "dir") land 1 = 0 in
  let cycles = List.init cycles_used (fun i -> (base_cycle + i) mod p.Atum_core.Params.hc) in
  let src_vg = Option.get (Atum.vgroup_of atum src) in
  (* A vgroup mid-split may be missing from some cycles; fall back to
     the vgroup itself so its nodes take the source path directly. *)
  let upstream ~cycle vid =
    let up =
      if direction_left then Hgraph.predecessor_opt hg ~cycle vid
      else Hgraph.successor_opt hg ~cycle vid
    in
    Option.value ~default:vid up
  in
  let t = { atum; src; primary = Hashtbl.create 64; shortcuts = Hashtbl.create 64 } in
  let fault_bound g =
    match p.Atum_core.Params.protocol with
    | Atum_core.Params.Sync -> Atum_smr.Smr_intf.sync_f ~group_size:g
    | Atum_core.Params.Async -> Atum_smr.Smr_intf.async_f ~group_size:g
  in
  List.iter
    (fun vid ->
      let members = Atum.members_of_vgroup atum vid in
      List.iter
        (fun nid ->
          if nid <> src then begin
            let prim =
              List.concat_map
                (fun cycle ->
                  let up = upstream ~cycle vid in
                  if up = src_vg || vid = src_vg then [ src ]
                  else begin
                    let candidates = Atum.members_of_vgroup atum up in
                    let g = List.length candidates in
                    let want = min g (fault_bound g + 1) in
                    Atum_util.Rng.sample_without_replacement rng want candidates
                  end)
                cycles
            in
            Hashtbl.replace t.primary nid (List.sort_uniq compare prim |> fun l ->
              (* keep a deterministic but shuffled preference order *)
              Atum_util.Rng.shuffle_list rng l);
            (* One shortcut parent per other neighboring vgroup. *)
            let other_neighbors =
              List.filter
                (fun v -> v <> vid && not (List.exists (fun c -> upstream ~cycle:c vid = v) cycles))
                (Hgraph.neighbor_set hg vid)
            in
            let sc =
              List.filter_map
                (fun v ->
                  match Atum.members_of_vgroup atum v with
                  | [] -> None
                  | ms -> Some (Atum_util.Rng.pick rng ms))
                other_neighbors
            in
            Hashtbl.replace t.shortcuts nid sc
          end)
        members)
    (Hgraph.vertices hg);
  t

(* Reachability through correct parents only. *)
let reachable t =
  let sys = Atum.system t.atum in
  let reached = Hashtbl.create 64 in
  Hashtbl.replace reached t.src ();
  (* children index *)
  let children = Hashtbl.create 64 in
  let add_edge parent child =
    let l = Option.value ~default:[] (Hashtbl.find_opt children parent) in
    Hashtbl.replace children parent (child :: l)
  in
  Hashtbl.iter
    (fun child ps -> List.iter (fun parent -> add_edge parent child) ps)
    t.primary;
  Hashtbl.iter
    (fun child ps -> List.iter (fun parent -> add_edge parent child) ps)
    t.shortcuts;
  let rec visit nid =
    List.iter
      (fun child ->
        if (not (Hashtbl.mem reached child)) && correct sys child then begin
          Hashtbl.replace reached child ();
          visit child
        end)
      (Option.value ~default:[] (Hashtbl.find_opt children nid))
  in
  (* Only correct parents actually relay chunks. *)
  let rec visit_correct nid =
    if correct sys nid || nid = t.src then
      List.iter
        (fun child ->
          if not (Hashtbl.mem reached child) then begin
            Hashtbl.replace reached child ();
            visit_correct child
          end)
        (Option.value ~default:[] (Hashtbl.find_opt children nid))
  in
  ignore visit;
  visit_correct t.src;
  reached

let check_forest t =
  let sys = Atum.system t.atum in
  let reached = reachable t in
  let missing =
    List.filter_map
      (fun (n : System.node) ->
        if
          n.System.alive && (not n.System.byzantine) && n.System.vg <> None
          && (not (Hashtbl.mem reached n.System.id))
        then Some n.System.id
        else None)
      (System.live_nodes sys)
  in
  match missing with
  | [] -> Ok ()
  | ms ->
    Error
      (Printf.sprintf "correct nodes unreachable from source: %s"
         (String.concat ", " (List.map string_of_int ms)))

type stream_stats = {
  per_node_latency : (node_id * float) list;
  mean_latency : float;
  max_latency : float;
  first_chunk_penalty : float;
  unreached : node_id list;
}

(* Steady-state per-chunk latency: Dijkstra from the source over
   parent->child edges restricted to correct relays.  Each hop costs
   one request round-trip plus the chunk transfer at the uplink rate. *)
let stream t ~chunk_mb =
  let sys = Atum.system t.atum in
  let host = Atum_sim.Bulk.ec2_micro in
  let hop = 0.02 +. (chunk_mb /. host.Atum_sim.Bulk.upload_mbps) in
  let probe_penalty = 0.25 in
  let dist = Hashtbl.create 64 in
  Hashtbl.replace dist t.src 0.0;
  let children = Hashtbl.create 64 in
  let add_edge parent child =
    let l = Option.value ~default:[] (Hashtbl.find_opt children parent) in
    Hashtbl.replace children parent (child :: l)
  in
  (* Steady-state data flows along primary parents; shortcuts are a
     fallback for liveness (check_forest), not the fast path. *)
  Hashtbl.iter (fun child ps -> List.iter (fun p -> add_edge p child) ps) t.primary;
  let q = Atum_util.Pqueue.create () in
  Atum_util.Pqueue.push q 0.0 t.src;
  let rec loop () =
    match Atum_util.Pqueue.pop q with
    | None -> ()
    | Some (d, u) ->
      (match Hashtbl.find_opt dist u with
      | Some best when d > best +. 1e-12 -> () (* stale entry *)
      | _ ->
        if u = t.src || correct sys u then
          List.iter
            (fun child ->
              let nd = d +. hop in
              match Hashtbl.find_opt dist child with
              | Some best when best <= nd -> ()
              | _ ->
                Hashtbl.replace dist child nd;
                Atum_util.Pqueue.push q nd child)
            (Option.value ~default:[] (Hashtbl.find_opt children u)));
      loop ()
  in
  loop ();
  let correct_nodes =
    List.filter_map
      (fun (n : System.node) ->
        if n.System.alive && (not n.System.byzantine) && n.System.vg <> None && n.System.id <> t.src
        then Some n.System.id
        else None)
      (System.live_nodes sys)
  in
  let per_node_latency =
    List.filter_map
      (fun nid ->
        match Hashtbl.find_opt dist nid with Some d -> Some (nid, d) | None -> None)
      correct_nodes
  in
  let unreached = List.filter (fun nid -> not (Hashtbl.mem dist nid)) correct_nodes in
  let lats = List.map snd per_node_latency in
  (* First-chunk probing: a node whose first-preference parent is not
     correct wastes one probe timeout before settling. *)
  let penalties =
    List.map
      (fun nid ->
        match parents t nid with
        | first :: _ when not (correct sys first || first = t.src) -> probe_penalty
        | _ -> 0.0)
      correct_nodes
  in
  {
    per_node_latency;
    mean_latency = Atum_util.Stats.mean lats;
    max_latency = List.fold_left Float.max 0.0 lats;
    first_chunk_penalty = Atum_util.Stats.mean penalties;
    unreached;
  }

type simulation_stats = {
  sim_per_node : (node_id * float) list;
  sim_mean_latency : float;
  sim_max_latency : float;
  parent_switches : int;
  sim_unreached : node_id list;
}

(* Event-driven push-pull (§4.3).  Chunk 1 is pushed along the forest;
   afterwards every child periodically pulls the next chunk from its
   sticky parent — the first parent that delivered a valid chunk — and
   probes the next candidate when the sticky parent goes quiet. *)
let simulate ?(chunks = 8) ?(rate_mb_per_s = 1.0) t ~chunk_mb =
  let sys = Atum.system t.atum in
  let engine = Atum_sim.Engine.create () in
  let host = Atum_sim.Bulk.ec2_micro in
  let hop = 0.02 +. (chunk_mb /. host.Atum_sim.Bulk.upload_mbps) in
  let pull_interval = 0.05 in
  let probe_timeout = 0.25 in
  let production_gap = chunk_mb /. rate_mb_per_s in
  (* have.(node).(chunk): time the node obtained the chunk, or nan *)
  let participants =
    t.src
    :: List.filter_map
         (fun (n : System.node) ->
           if n.System.vg <> None && n.System.alive && n.System.id <> t.src then
             Some n.System.id
           else None)
         (System.live_nodes sys)
  in
  let produced = Array.make chunks infinity in
  let have : (node_id, float array) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun nid -> Hashtbl.replace have nid (Array.make chunks infinity)) participants;
  let got nid chunk =
    match Hashtbl.find_opt have nid with
    | Some arr -> arr.(chunk) < infinity
    | None -> false
  in
  let serves nid chunk =
    (* the source serves what it has produced; a correct relay serves
       what it holds; Byzantine nodes never serve *)
    if nid = t.src then produced.(chunk) <= Atum_sim.Engine.now engine
    else correct sys nid && got nid chunk
  in
  let switches = ref 0 in
  let record nid chunk =
    match Hashtbl.find_opt have nid with
    | Some arr ->
      if arr.(chunk) = infinity then arr.(chunk) <- Atum_sim.Engine.now engine
    | None -> ()
  in
  (* Source production. *)
  for c = 0 to chunks - 1 do
    produced.(c) <- float_of_int c *. production_gap;
    match Hashtbl.find_opt have t.src with
    | Some arr -> arr.(c) <- produced.(c)
    | None -> ()
  done;
  (* Push phase: when the source has chunk 0, it pushes to children
     whose parent list contains it. *)
  let children_of p =
    List.filter (fun nid -> nid <> t.src && List.mem p (parents t nid)) participants
  in
  Atum_sim.Engine.schedule_at ~label:"astream.produce" engine ~time:produced.(0) (fun () ->
      List.iter
        (fun child ->
          Atum_sim.Engine.schedule ~label:"astream.hop" engine ~delay:hop (fun () -> record child 0))
        (children_of t.src));
  (* Correct relays also push chunk 0 onward when they receive it. *)
  let pushed = Hashtbl.create 64 in
  let rec push_loop () =
    (* poll for relays that can push chunk 0 to their children *)
    List.iter
      (fun nid ->
        if nid <> t.src && correct sys nid && got nid 0 && not (Hashtbl.mem pushed nid)
        then begin
          Hashtbl.replace pushed nid ();
          List.iter
            (fun child ->
              Atum_sim.Engine.schedule ~label:"astream.hop" engine ~delay:hop (fun () -> record child 0))
            (children_of nid)
        end)
      participants;
    Atum_sim.Engine.schedule ~label:"astream.push" engine ~delay:pull_interval push_loop
  in
  Atum_sim.Engine.schedule ~label:"astream.push" engine ~delay:pull_interval push_loop;
  (* Pull phase: each non-source node works through its parent list. *)
  let start_pulling nid =
    let my_parents = parents t nid @ shortcut_parents t nid in
    if my_parents <> [] then begin
      let parent_ix = ref 0 in
      let waiting_since = ref 0.0 in
      let next_chunk () =
        let arr = Hashtbl.find have nid in
        let rec scan c = if c >= chunks then None else if arr.(c) = infinity then Some c else scan (c + 1) in
        scan 0
      in
      let rec pull () =
        match next_chunk () with
        | None -> () (* done *)
        | Some c ->
          let parent = List.nth my_parents (!parent_ix mod List.length my_parents) in
          if serves parent c then begin
            waiting_since := Atum_sim.Engine.now engine;
            Atum_sim.Engine.schedule ~label:"astream.hop" engine ~delay:hop (fun () ->
                record nid c;
                pull ())
          end
          else begin
            if Atum_sim.Engine.now engine -. !waiting_since > probe_timeout then begin
              (* sticky parent is not serving: probe the next one *)
              incr parent_ix;
              incr switches;
              waiting_since := Atum_sim.Engine.now engine
            end;
            Atum_sim.Engine.schedule ~label:"astream.pull" engine ~delay:pull_interval pull
          end
      in
      Atum_sim.Engine.schedule ~label:"astream.pull" engine ~delay:pull_interval pull
    end
  in
  List.iter (fun nid -> if nid <> t.src then start_pulling nid) participants;
  let horizon = (float_of_int chunks *. production_gap) +. 60.0 in
  Atum_sim.Engine.run ~until:horizon engine;
  (* Steady-state latency per correct node: mean over chunks of
     (delivery - production), ignoring chunk 0's push/probe warmup. *)
  let correct_nodes =
    List.filter (fun nid -> nid <> t.src && correct sys nid) participants
  in
  let per_node =
    List.filter_map
      (fun nid ->
        let arr = Hashtbl.find have nid in
        let lats =
          List.filter_map
            (fun c -> if arr.(c) < infinity then Some (arr.(c) -. produced.(c)) else None)
            (List.init (chunks - 1) (fun i -> i + 1))
        in
        if lats = [] then None else Some (nid, Atum_util.Stats.mean lats))
      correct_nodes
  in
  let complete nid =
    let arr = Hashtbl.find have nid in
    Array.for_all (fun v -> v < infinity) arr
  in
  {
    sim_per_node = per_node;
    sim_mean_latency = Atum_util.Stats.mean (List.map snd per_node);
    sim_max_latency = List.fold_left (fun acc (_, l) -> Float.max acc l) 0.0 per_node;
    parent_switches = !switches;
    sim_unreached = List.filter (fun nid -> not (complete nid)) correct_nodes;
  }
