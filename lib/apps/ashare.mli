(** AShare: file sharing over Atum (§4.2).

    Atum provides membership and reliable broadcast; AShare adds

    - a per-node metadata index ({!Kv_index}) updated by PUT / DELETE /
      replica-announcement broadcasts,
    - randomized replication with a feedback loop that keeps at least
      ρ replicas per file (Fig 5),
    - chunked parallel GET with SHA-256 integrity checks: corrupted
      chunks are detected and re-pulled from other replicas (§4.2.2).

    Small files carry real content and real chunk digests; large
    benchmark files are synthetic — only their size flows into the
    {!Atum_sim.Bulk} transfer-time model, and corruption is tracked as
    a per-replica flag (a Byzantine holder corrupts everything it
    stores, as in §6.2). *)

type t

type node_id = int

type content =
  | Real of string  (** actual bytes; digests are real SHA-256 *)
  | Synthetic of float  (** size in MB; used for benchmark-scale files *)

type get_result = {
  latency : float;  (** seconds of simulated wall time *)
  pulled_mb : float;  (** includes re-pulled corrupted chunks *)
  corrupted_chunks : int;  (** chunks that failed their integrity check *)
  data : string option;  (** the content, for [Real] files *)
}

val attach : Atum_core.Atum.t -> rho:int -> t
(** Build an AShare service on an already-grown Atum instance.  Takes
    over the instance's deliver callback.  [rho] is the replication
    target. *)

val atum : t -> Atum_core.Atum.t

val put :
  t -> owner:node_id -> name:string -> ?chunk_count:int -> content -> unit
(** PUT (§4.2.2): store at the owner, broadcast (owner, file, digests)
    so every node updates its index, then let randomized replication
    bring the file to ρ replicas. *)

val get :
  t -> reader:node_id -> owner:string -> name:string -> k:(get_result option -> unit) -> unit
(** GET: chunked parallel pull from every replica the reader's index
    knows, with integrity checks and re-pulls.  [k None] when the
    reader's index has no entry or no reachable correct replica. *)

val delete : t -> owner:node_id -> name:string -> unit
(** DELETE: broadcast; every node removes the metadata, holders drop
    their replicas. *)

val search : t -> node:node_id -> string -> (string * string) list
(** SEARCH on the node's own index: (owner, name) pairs matching the
    term. *)

val replica_count : t -> node:node_id -> owner:string -> name:string -> int
(** Replicas of the file according to [node]'s index. *)

val stores : t -> node:node_id -> owner:string -> name:string -> bool
(** Does [node] currently hold a replica? *)

val index_size : t -> node:node_id -> int

val indexes_converged : t -> bool
(** Do all correct member nodes hold identical index contents?  (Soft
    state must converge once broadcasts settle.) *)

val place_replicas : t -> owner:node_id -> name:string -> holders:node_id list -> unit
(** Experiment hook (Figs 10/11): force a replica placement without
    waiting for the feedback loop, updating every node's index. *)

val owner_name : node_id -> string
(** The namespace owner string for a node id. *)

(* --- durable state (snapshots + WAL replay) -------------------------- *)

val export_state : t -> node_id -> Atum_util.Json.t
(** The node's restart-critical soft state — metadata index plus
    stored-replica set — in deterministic (sorted) order. *)

val wipe_state : t -> node_id -> unit
(** Forget the node's in-memory state, as a cold restart would. *)

val import_state : t -> node_id -> Atum_util.Json.t -> unit
(** Inverse of {!export_state}; ignores malformed input. *)

val replay_deliver : t -> node_id -> string -> unit
(** Re-apply one logged broadcast body to local state only: no
    re-broadcast, no replication lottery (those already ran before the
    crash). *)

val enable_persistence : t -> unit
(** Register the four hooks above with [System.set_app_state] so an
    attached durable store snapshots and replays AShare state across
    {!Atum_core.System.restart}. *)
