(* The Atum runtime: volatile groups over a simulated network.

   Ground truth (who is in which vgroup, the H-graph) lives in a
   registry that is mutated only when the responsible vgroup's SMR
   instance has agreed on the change at a majority of its correct
   members — the vgroup-controller abstraction documented in
   DESIGN.md.  Message timing, group-message fan-out and acceptance,
   SMR agreement latency, gossip, heartbeats and Byzantine quietness
   are all simulated at per-node message granularity. *)

module Rng = Atum_util.Rng
module Engine = Atum_sim.Engine
module Network = Atum_sim.Network
module Rounds = Atum_sim.Rounds
module Metrics = Atum_sim.Metrics
module Trace = Atum_sim.Trace
module Telemetry = Atum_sim.Telemetry
module Hgraph = Atum_overlay.Hgraph
module Random_walk = Atum_overlay.Random_walk
module Grouping = Atum_overlay.Grouping

type node_id = int
type vg_id = int

type gm_payload =
  | Control of { label : string }
  | Bcast of { bid : int; origin : node_id; body : string; cycle : int }

type wire =
  | Sync_msg of { vg : vg_id; epoch : int; m : Atum_smr.Sync_smr.msg }
  | Async_msg of { vg : vg_id; epoch : int; m : Atum_smr.Pbft.msg }
  | Group_part of { gm_id : int; src_vg : vg_id; src_size : int; payload : gm_payload }
  | Direct of { token : int; label : string }
  | Heartbeat

(* Sync replicas keep a member-ordered view next to the lookup table:
   the table is immutable between epochs, so the round driver walks a
   list sorted once at install instead of re-sorting every boundary. *)
type sync_replicas = {
  by_member : (node_id, Atum_smr.Sync_smr.t) Hashtbl.t;
  in_order : (node_id * Atum_smr.Sync_smr.t) list; (* ascending member id *)
}

type smr_inst =
  | Smr_sync of sync_replicas
  | Smr_async of (node_id, Atum_smr.Pbft.t) Hashtbl.t

(* How an adversarial node behaves.  [Mute] is the original
   quiet-Byzantine model (§6.1.3): heartbeat, ignore protocol traffic.
   The active strategies implement the attacks the paper defends
   against — equivocation, selective forwarding, traffic flooding,
   join-leave churn, and the targeted attack (§6.2) where an adversary
   concentrates its nodes on one vgroup.  [Target_vgroup] composes:
   its [inner] strategy drives the node's wire-level behaviour while
   the targeting drives where it joins. *)
type byz_strategy =
  | Mute
  | Equivocate
  | Selective_drop of float
  | Flood of { fanout : int; size : int }
  | Join_leave_attack
  | Target_vgroup of { vg : vg_id; inner : byz_strategy }

(* Per-node state is deliberately lean — at a million nodes every
   word per node is a megaword of heap.  The broadcast-dedup marker
   is a bitset over the dense broadcast-id space (three words when
   idle); the acceptance scratch tables (senders seen per pending
   group message / broadcast part) and heartbeat timestamps live in
   system-level tables keyed by (node, ...) instead of one 16-bucket
   stdlib hash table per node per concern. *)
type node = {
  id : node_id;
  mutable vg : vg_id option;
  mutable byzantine : bool;
  mutable strategy : byz_strategy;
  mutable alive : bool;
  mutable exchanging : bool; (* engaged in a shuffle exchange right now *)
  delivered : Atum_util.Bitset.t; (* broadcast ids this node delivered *)
}

type vgroup = {
  vid : vg_id;
  mutable members : node_id list;
  mutable epoch : int;
  mutable smr : smr_inst option;
  mutable busy : bool; (* a shuffle / split / merge holds the vgroup *)
  mutable shuffle_pending : bool;
  mutable retired : bool;
  mutable saga_gen : int; (* increments when a saga takes the vgroup *)
  (* Cached gossip view: the neighbor list annotated with the cycles
     linking to it, sorted by neighbor id — recomputed only when the
     overlay generation moves (one sort per topology change, not one
     per delivery). *)
  mutable nbrs_gen : int;
  mutable nbrs : (vg_id * int list) list;
}

type pending_op = {
  op_id : string;
  op_payload : string;
  action : unit -> unit;
  mutable fired : bool;
  mutable execs : node_id list;
}

type gm_state = {
  dst_needed : int;
  gm_action : (unit -> unit) option;
  mutable node_accepts : int;
  mutable gm_fired : bool;
}

(* Origin and body ride along so restart catch-up can re-deliver any
   broadcast a peer has and the restarted node missed. *)
type bcast_meta = { started : float; b_origin : node_id; b_body : string }

(* One (src_vg -> dst_vg) gossip round being assembled for the current
   engine instant: every member that delivers inside one event appends
   itself as a sender, and a single flush event hands the whole round
   to [Network.send_group] — one engine event per neighbor vgroup per
   round instead of one per (sender, neighbor) pair. *)
type fanout_entry = {
  f_dst : vg_id;
  f_src_vg : vg_id;
  f_src_size : int;
  f_bid : int;
  f_origin : node_id;
  f_body : string;
  f_cycle : int;
  mutable f_srcs : (node_id * int) list; (* (sender, bytes), reversed *)
}

(* Semantic checkpoints for an external auditor (the invariant
   monitor): fired synchronously at the point where the registry or a
   node's delivery log actually changes. *)
type audit =
  | Audit_deliver of { node : node_id; bid : int; known : bool }
  | Audit_reconfig of vg_id

(* One completed-or-in-flight [restart]: when the node came back, when
   its registry membership was re-established, when catch-up finished,
   and what the durable store contributed. *)
type restart_report = {
  r_node : node_id;
  r_restarted_at : float;
  mutable r_rejoined_at : float option;
  mutable r_caught_up_at : float option;
  r_fallback : bool; (* corrupt store: wiped, recovered via fresh join *)
  r_replayed : int; (* WAL entries applied during cold start *)
}

type t = {
  params : Params.t;
  engine : Engine.t;
  net : wire Network.t;
  rounds : Rounds.t option;
  keyring : Atum_crypto.Signature.keyring;
  rng : Rng.t;
  metrics : Metrics.t;
  trace : Trace.t;
  nodes : node Atum_util.Arena.t;
  vgroups : vgroup Atum_util.Arena.t;
  (* Maintained counters: gauges and sagas read these instead of
     rescanning the registry (the old O(N log N)-per-sample bug). *)
  mutable live_count : int; (* alive nodes with a vgroup *)
  mutable live_byz_count : int; (* Byzantine subset of the above *)
  mutable active_vgroups : int; (* non-retired vgroups *)
  (* Append-only log of vgroup ids whose state changed; consumers
     (incremental consistency checks, monitor sweeps) keep a cursor
     into it and only examine what moved since their last look. *)
  mutable dirty_log : int array;
  mutable dirty_len : int;
  (* Acceptance scratch + liveness state, keyed by node (see [node]). *)
  bcast_senders : (node_id * int * vg_id, node_id list ref) Hashtbl.t;
  gm_senders : (node_id * int, node_id list ref) Hashtbl.t;
  gm_accepted : (node_id * int, unit) Hashtbl.t;
  last_seen : (node_id * node_id, float) Hashtbl.t;
  mutable recycle_ids : bool; (* free node ids on depart completion *)
  mutable fast_paths : bool; (* cached gossip views + O(1) gauges *)
  (* Gossip rounds being assembled for the current instant (fast path;
     reversed insertion order) and whether their flush is scheduled. *)
  mutable fanout : fanout_entry list;
  mutable fanout_scheduled : bool;
  mutable hgraph : Hgraph.t;
  mutable bootstrapped : bool;
  mutable next_gm : int;
  mutable next_bid : int;
  mutable next_op : int;
  mutable next_token : int;
  tokens : (int, unit -> unit) Hashtbl.t;
  gms : (int, gm_state) Hashtbl.t;
  pending_ops : (vg_id, pending_op list ref) Hashtbl.t;
  bcasts : (int, bcast_meta) Hashtbl.t;
  mutable next_span : int;
  mutable on_deliver : node_id -> bid:int -> origin:node_id -> string -> unit;
  mutable on_audit : (audit -> unit) option;
  mutable forward_policy : bid:int -> from_vg:vg_id -> cycle:int -> neighbor:vg_id -> bool;
  mutable heartbeats_running : bool;
  mutable heartbeats_since : float;
  mutable shuffling_enabled : bool;
  mutable telemetry : Telemetry.t option;
  (* Durable per-replica state (WAL + snapshots) and the app-state
     hooks the durability layer drives; None/empty until attached. *)
  mutable store : Atum_store.Replica.t option;
  mutable app_export : (node_id -> Atum_util.Json.t) option;
  mutable app_wipe : (node_id -> unit) option;
  mutable app_import : (node_id -> Atum_util.Json.t -> unit) option;
  mutable app_replay : (node_id -> bid:int -> origin:node_id -> string -> unit) option;
  mutable restarts : restart_report list; (* newest first *)
}

(* ------------------------------------------------------------------ *)
(* Construction and small helpers                                      *)
(* ------------------------------------------------------------------ *)

let flood_forward ~bid:_ ~from_vg:_ ~cycle:_ ~neighbor:_ = true

(* The paper's default (§3.3.4): forward to random neighbors — but
   always gossip on a designated cycle, which turns the probabilistic
   delivery of gossip into a deterministic guarantee.  The coin flip
   hashes the broadcast id and the link, so every correct member of a
   vgroup takes the same decision without coordination. *)
let random_forward ~bid ~from_vg ~cycle ~neighbor =
  cycle = 0 || Hashtbl.hash (bid, from_vg, cycle, neighbor) land 1 = 0

let create ?(net_config : Network.config option) ?trace_capacity (params : Params.t) =
  (match Params.validate params with
  | Ok () -> ()
  | Error e -> invalid_arg ("System.create: " ^ e));
  let engine = Engine.create () in
  let metrics = Metrics.create () in
  let trace = Trace.create ?capacity:trace_capacity () in
  Engine.set_trace engine trace;
  let net_config =
    match net_config with
    | Some c -> c
    | None ->
      (match params.protocol with
      | Params.Sync -> Network.datacenter_config ~seed:(params.seed + 1)
      | Params.Async -> Network.wan_config ~seed:(params.seed + 1))
  in
  (* The network shares the system's metrics (so net.drop.* counters
     land in one snapshot) and its trace. *)
  let net = Network.create ~metrics ~trace engine net_config in
  let rounds =
    match params.protocol with
    | Params.Sync ->
      let r = Rounds.create engine ~round_duration:params.round_duration in
      Some r
    | Params.Async -> None
  in
  {
    params;
    engine;
    net;
    rounds;
    keyring = Atum_crypto.Signature.create_keyring ~seed:(params.seed + 2);
    rng = Rng.create params.seed;
    metrics;
    trace;
    nodes = Atum_util.Arena.create ~cap:1024 ();
    vgroups = Atum_util.Arena.create ~cap:256 ();
    live_count = 0;
    live_byz_count = 0;
    active_vgroups = 0;
    dirty_log = Array.make 256 0;
    dirty_len = 0;
    bcast_senders = Hashtbl.create 256;
    gm_senders = Hashtbl.create 256;
    gm_accepted = Hashtbl.create 256;
    last_seen = Hashtbl.create 256;
    recycle_ids = false;
    fast_paths = true;
    fanout = [];
    fanout_scheduled = false;
    hgraph = Hgraph.empty ~cycles:params.hc;
    bootstrapped = false;
    next_gm = 0;
    next_bid = 0;
    next_op = 0;
    next_token = 0;
    tokens = Hashtbl.create 256;
    gms = Hashtbl.create 256;
    pending_ops = Hashtbl.create 64;
    bcasts = Hashtbl.create 64;
    next_span = 0;
    on_deliver = (fun _ ~bid:_ ~origin:_ _ -> ());
    on_audit = None;
    forward_policy = random_forward;
    heartbeats_running = false;
    heartbeats_since = infinity;
    shuffling_enabled = true;
    telemetry = None;
    store = None;
    app_export = None;
    app_wipe = None;
    app_import = None;
    app_replay = None;
    restarts = [];
  }

let engine t = t.engine
let metrics t = t.metrics
let trace t = t.trace
let network t = t.net

(* Protocol-level trace events; the enabled-check keeps the disabled
   cost to one load. *)
let trace_emit t ~kind ?node ?peer ?vgroup ?size ?bid ?span ?parent ?cycle () =
  if Trace.enabled t.trace then
    Trace.emit t.trace ~time:(Engine.now t.engine) ~kind ?node ?peer ?vgroup ?size ?bid ?span
      ?parent ?cycle ()
let now t = Engine.now t.engine
let params t = t.params

(* Saga spans: a ["saga.<name>.begin"] / ["saga.<name>.end"] pair
   shares a fresh span id, and [parent] nests child sagas (a join's
   walk, a split's agreement) under their initiator.  Ids are drawn
   unconditionally so enabling the trace never perturbs the id
   sequence between otherwise identical runs. *)
let fresh_span t =
  let id = t.next_span in
  t.next_span <- id + 1;
  id

let span_begin t ~saga ?node ?vgroup ?parent () =
  let span = fresh_span t in
  Metrics.incr t.metrics "saga.begin.total";
  trace_emit t ~kind:("saga." ^ saga ^ ".begin") ?node ?vgroup ~span ?parent ();
  span

let span_end t ~saga ?node ?vgroup span =
  Metrics.incr t.metrics "saga.end.total";
  trace_emit t ~kind:("saga." ^ saga ^ ".end") ?node ?vgroup ~span ()

let audit t a = match t.on_audit with Some f -> f a | None -> ()

let set_deliver t f = t.on_deliver <- f
let set_audit t f = t.on_audit <- f
let set_forward_policy t f = t.forward_policy <- f

let node t id = Atum_util.Arena.find t.nodes id
let node_opt t id = Atum_util.Arena.get t.nodes id
let vgroup t vid = Atum_util.Arena.find t.vgroups vid
let vgroup_opt t vid = Atum_util.Arena.get t.vgroups vid

(* Mark a vgroup as touched for the incremental consumers.  Appends
   are amortized O(1); duplicates are fine (consumers dedup). *)
let mark_dirty t vid =
  if t.dirty_len = Array.length t.dirty_log then begin
    let log = Array.make (2 * t.dirty_len) 0 in
    Array.blit t.dirty_log 0 log 0 t.dirty_len;
    t.dirty_log <- log
  end;
  t.dirty_log.(t.dirty_len) <- vid;
  t.dirty_len <- t.dirty_len + 1

let dirty_cursor t = t.dirty_len

(* Vgroup ids touched since [cursor], deduped ascending. *)
let dirty_since t cursor =
  if cursor >= t.dirty_len then []
  else begin
    let acc = ref [] in
    for i = t.dirty_len - 1 downto max 0 cursor do
      acc := t.dirty_log.(i) :: !acc
    done;
    List.sort_uniq Int.compare !acc
  end

let node_name id = "node-" ^ string_of_int id

let is_correct n = n.alive && not n.byzantine

let correct_members t vg = List.filter (fun m -> is_correct (node t m)) vg.members

let majority_of count = (count / 2) + 1

let strategy_name = function
  | Mute -> "mute"
  | Equivocate -> "equivocate"
  | Selective_drop _ -> "selective_drop"
  | Flood _ -> "flood"
  | Join_leave_attack -> "join_leave"
  | Target_vgroup _ -> "target_vgroup"

(* A targeted attacker behaves on the wire as its [inner] strategy;
   the targeting itself only drives where the node joins. *)
let effective_strategy n =
  match n.strategy with Target_vgroup { inner; _ } -> inner | s -> s

(* Liveness/membership mutators.  Every change to [n.vg], [n.alive]
   or a vgroup's lifecycle funnels through these so the O(1) counters
   and the dirty log stay exact. *)
let is_live n = n.alive && Option.is_some n.vg

let count_live t n delta =
  t.live_count <- t.live_count + delta;
  if n.byzantine then t.live_byz_count <- t.live_byz_count + delta

(* --- durable-state hooks (WAL append + snapshot fold) --------------- *)

module Json = Atum_util.Json
module Replica = Atum_store.Replica

(* Everything a node needs to come back cold: its registry pointer,
   its delivered-broadcast set, and whatever the application exports.
   WAL records since the last snapshot replay on top of this. *)
let node_snapshot t (n : node) =
  Json.Obj
    [
      ("vid", (match n.vg with Some v -> Json.Int v | None -> Json.Null));
      ( "delivered",
        Json.List (List.map (fun b -> Json.Int b) (Atum_util.Bitset.to_list n.delivered)) );
      ("app", (match t.app_export with Some f -> f n.id | None -> Json.Null));
    ]

let persist t (n : node) record =
  match t.store with
  | None -> ()
  | Some store ->
    Replica.append store ~node:n.id record;
    if Replica.needs_snapshot store ~node:n.id then
      Replica.save_snapshot store ~node:n.id (node_snapshot t n)

let persist_vg t (n : node) =
  persist t n
    (Json.Obj
       [
         ("t", Json.String "vg");
         ("vid", (match n.vg with Some v -> Json.Int v | None -> Json.Null));
       ])

let set_node_vg t n vg =
  (match n.vg with Some v -> mark_dirty t v | None -> ());
  (match vg with Some v -> mark_dirty t v | None -> ());
  let was = is_live n in
  n.vg <- vg;
  let is = is_live n in
  if was && not is then count_live t n (-1) else if (not was) && is then count_live t n 1;
  if Option.is_some t.store then persist_vg t n

let set_node_alive t n alive =
  (match n.vg with Some v -> mark_dirty t v | None -> ());
  let was = is_live n in
  n.alive <- alive;
  let is = is_live n in
  if was && not is then count_live t n (-1) else if (not was) && is then count_live t n 1

let retire_vgroup t vg =
  if not vg.retired then begin
    vg.retired <- true;
    t.active_vgroups <- t.active_vgroups - 1;
    mark_dirty t vg.vid
  end

let add_vgroup t ~members ~busy =
  let vid =
    Atum_util.Arena.alloc_with t.vgroups (fun vid ->
        {
          vid;
          members;
          epoch = 0;
          smr = None;
          busy;
          shuffle_pending = false;
          retired = false;
          saga_gen = 0;
          nbrs_gen = -1;
          nbrs = [];
        })
  in
  t.active_vgroups <- t.active_vgroups + 1;
  mark_dirty t vid;
  vgroup t vid

(* In ascending id order (the arena walks slots in index order):
   callers feed this list to seeded Rng picks (Builder, Churn), so
   its order is part of the reproducible state.  The legacy path
   reproduces the pre-arena cost — a hash-fold over the registry
   followed by a sort — so [set_fast_paths false] benchmarks price
   the old behaviour honestly; both paths return the same list. *)
let live_nodes t =
  let folded =
    Atum_util.Arena.fold
      (fun _ n acc -> if n.alive && Option.is_some n.vg then n :: acc else acc)
      t.nodes []
  in
  if t.fast_paths then List.rev folded
  else List.sort (fun (a : node) b -> Int.compare a.id b.id) folded

(* O(1): maintained by the membership/liveness mutators below.  The
   slow registry recount survives as the legacy path so the scale
   benchmark can price the old behaviour ([set_fast_paths false]). *)
let system_size t =
  if t.fast_paths then t.live_count else List.length (live_nodes t)

let live_byzantine_count t = t.live_byz_count

let vgroup_count t = t.active_vgroups

let vgroup_ids t =
  (* Every vgroup id ever created, retired ones included: dense ids
     make that exactly [0 .. length-1]. *)
  List.init (Atum_util.Arena.length t.vgroups) (fun i -> i)

let vgroup_sizes t =
  List.rev
    (Atum_util.Arena.fold
       (fun _ vg acc -> if vg.retired then acc else List.length vg.members :: acc)
       t.vgroups [])

let fresh_gm_id t =
  let id = t.next_gm in
  t.next_gm <- id + 1;
  id

let fresh_token t =
  let id = t.next_token in
  t.next_token <- id + 1;
  id

(* In the synchronous deployment every protocol step is taken at a
   round boundary; in the asynchronous one, immediately. *)
let defer t f =
  match t.rounds with
  | None -> f ()
  | Some r ->
    let d = Rounds.round_duration r in
    let next = (Float.floor (now t /. d) +. 1.0) *. d in
    Engine.schedule_at ~label:"system.defer" t.engine ~time:next f

(* ------------------------------------------------------------------ *)
(* SMR plumbing                                                        *)
(* ------------------------------------------------------------------ *)

let epoch_id vg = Printf.sprintf "vg%d/e%d" vg.vid vg.epoch

(* Forward declaration: the SMR execute callback needs the whole
   dispatch logic, which needs sagas, which need [agree]... tie the
   knot with a reference. *)
let execute_hook :
    (t -> vgroup -> node_id -> Atum_smr.Smr_intf.op -> unit) ref =
  ref (fun _ _ _ _ -> ())

let stop_smr vg =
  match vg.smr with
  | Some (Smr_sync reps) -> List.iter (fun (_, inst) -> Atum_smr.Sync_smr.stop inst) reps.in_order
  | Some (Smr_async tbl) -> Hashtbl.iter (fun _ inst -> Atum_smr.Pbft.stop inst) tbl
  | None -> ()

let install_smr t vg =
  let g = List.length vg.members in
  let members = vg.members in
  let correct = correct_members t vg in
  (match t.params.protocol with
  | Params.Sync ->
    let f = Atum_smr.Smr_intf.sync_f ~group_size:g in
    let tbl = Hashtbl.create g in
    List.iter
      (fun self ->
        Atum_crypto.Signature.register t.keyring (node_name self);
        let epoch = vg.epoch in
        let transport =
          {
            Atum_smr.Smr_intf.self;
            members;
            f;
            send =
              (fun dst m -> Network.send t.net ~src:self ~dst (Sync_msg { vg = vg.vid; epoch; m }));
            set_timer = (fun delay fn -> Engine.schedule ~label:"smr.timer" t.engine ~delay fn);
          }
        in
        let inst =
          Atum_smr.Sync_smr.create ~keyring:t.keyring ~transport ~epoch_id:(epoch_id vg)
            ~on_execute:(fun op -> !execute_hook t vg self op)
        in
        Hashtbl.replace tbl self inst)
      correct;
    let in_order =
      List.sort
        (fun (a, _) (b, _) -> Int.compare a b)
        (Hashtbl.fold (fun m inst acc -> (m, inst) :: acc) tbl [])
    in
    vg.smr <- Some (Smr_sync { by_member = tbl; in_order })
  | Params.Async ->
    let f = Atum_smr.Smr_intf.async_f ~group_size:g in
    let tbl = Hashtbl.create g in
    List.iter
      (fun self ->
        let epoch = vg.epoch in
        let transport =
          {
            Atum_smr.Smr_intf.self;
            members;
            f;
            send =
              (fun dst m ->
                Network.send t.net ~src:self ~dst (Async_msg { vg = vg.vid; epoch; m }));
            set_timer = (fun delay fn -> Engine.schedule ~label:"smr.timer" t.engine ~delay fn);
          }
        in
        let inst =
          Atum_smr.Pbft.create ~transport ~timeout:t.params.pbft_timeout
            ~on_execute:(fun op -> !execute_hook t vg self op)
        in
        Hashtbl.replace tbl self inst)
      correct;
    vg.smr <- Some (Smr_async tbl))

(* Lazy SMR: bulk-built vgroups ([build_direct]) defer replica
   creation until the first agreement actually needs one — a
   million-node build would otherwise pay for a million SMR instances
   up front.  A no-op on every saga-built vgroup, whose instances are
   installed eagerly by [reconfigure]. *)
let ensure_smr t vg =
  if vg.smr = None && vg.members <> [] && not vg.retired then install_smr t vg

let pending_of t vid =
  match Hashtbl.find_opt t.pending_ops vid with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.replace t.pending_ops vid r;
    r

let proposer_of t vg =
  match correct_members t vg with [] -> None | m :: _ -> Some m

let propose_raw _t vg ~proposer payload =
  match vg.smr with
  | None -> ()
  | Some (Smr_sync reps) ->
    (match Hashtbl.find_opt reps.by_member proposer with
    | Some inst -> Atum_smr.Sync_smr.propose inst payload
    | None -> ())
  | Some (Smr_async tbl) ->
    (match Hashtbl.find_opt tbl proposer with
    | Some inst -> Atum_smr.Pbft.propose inst payload
    | None -> ())

(* Membership changed: stop the old epoch's instances, start the new
   ones, and re-propose any agreement still in flight (the SMART-style
   carry-over). *)
let reconfigure t vg =
  stop_smr vg;
  vg.epoch <- vg.epoch + 1;
  if vg.members <> [] && not vg.retired then begin
    install_smr t vg;
    let pend = pending_of t vg.vid in
    List.iter
      (fun p ->
        if not p.fired then begin
          p.execs <- [];
          match proposer_of t vg with
          | Some proposer -> propose_raw t vg ~proposer ("op#" ^ p.op_id ^ "#" ^ p.op_payload)
          | None -> ()
        end)
      !pend
  end
  else vg.smr <- None;
  audit t (Audit_reconfig vg.vid)

let agree t vg ?proposer ?parent payload action =
  if vg.retired then ()
  else begin
    ensure_smr t vg;
    let op_id = string_of_int t.next_op in
    t.next_op <- t.next_op + 1;
    let span = span_begin t ~saga:"agree" ~vgroup:vg.vid ?parent () in
    let action () =
      span_end t ~saga:"agree" ~vgroup:vg.vid span;
      action ()
    in
    let p = { op_id; op_payload = payload; action; fired = false; execs = [] } in
    let pend = pending_of t vg.vid in
    pend := p :: !pend;
    let proposer = match proposer with Some m -> Some m | None -> proposer_of t vg in
    match proposer with
    | Some proposer -> propose_raw t vg ~proposer ("op#" ^ op_id ^ "#" ^ payload)
    | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Group messages                                                      *)
(* ------------------------------------------------------------------ *)

let control_bytes label = 64 + String.length label

(* A group message src -> dst: every correct member of src sends to
   every member of dst.  Digest substitution (§5.1): only a majority of
   the senders ship the full payload, the rest send a digest — modelled
   in the byte accounting.  [k], if given, fires once, when a majority
   of dst's members have individually accepted (i.e. the vgroup as an
   entity has received the group message). *)
let group_send t ~src_vg ~dst_vg ~payload ?size ?k ?on_fail () =
  match (vgroup_opt t src_vg, vgroup_opt t dst_vg) with
  | Some src, Some dst when (not src.retired) && not dst.retired ->
    let gm_id = fresh_gm_id t in
    let dst_needed = majority_of (List.length dst.members) in
    (match k with
    | Some _ ->
      Hashtbl.replace t.gms gm_id { dst_needed; gm_action = k; node_accepts = 0; gm_fired = false }
    | None -> ());
    let senders = correct_members t src in
    let src_size = List.length src.members in
    let full_senders = majority_of src_size in
    let base_size =
      match size with
      | Some s -> s
      | None -> (match payload with
        | Control { label } -> control_bytes label
        | Bcast { body; _ } -> 64 + String.length body)
    in
    Metrics.incr t.metrics "gm.sent";
    defer t (fun () ->
        List.iteri
          (fun i s ->
            let bytes = if i < full_senders then base_size else 32 in
            List.iter
              (fun d ->
                Network.send ~size:bytes t.net ~src:s ~dst:d
                  (Group_part { gm_id; src_vg; src_size; payload }))
              dst.members)
          senders)
  | _ ->
    Metrics.incr t.metrics "gm.undeliverable";
    (* The destination vanished (merged away) before we could talk to
       it; tell the caller so sagas can recover instead of stalling. *)
    (match on_fail with Some f -> f () | None -> ())

let direct_send t ~src ~dst ~label ?k () =
  let token = fresh_token t in
  (match k with Some k -> Hashtbl.replace t.tokens token k | None -> ());
  Metrics.incr t.metrics "direct.sent";
  defer t (fun () ->
      Network.send ~size:(control_bytes label) t.net ~src ~dst (Direct { token; label }))

(* ------------------------------------------------------------------ *)
(* Distributed random walks (§3.2, §5.1)                               *)
(* ------------------------------------------------------------------ *)

(* The forwarding vgroup certifies each hop: the identity of the
   chosen neighbor, signed on behalf of the vgroup (by its first
   correct member, standing in for a vgroup multi-signature).  The
   selected vgroup returns the whole chain to the origin, which
   verifies every link — so a Byzantine relay cannot teleport the walk
   (§5.1, "random walk certificates"). *)
let certificate t ~walk_id ~hop ~from_vg ~next =
  match vgroup_opt t from_vg with
  | Some vg when not vg.retired -> (
    match correct_members t vg with
    | [] -> None
    | signer :: _ ->
      let payload = Printf.sprintf "walk:%d/hop:%d/%d->%d" walk_id hop from_vg next in
      Some (Atum_crypto.Signature.sign t.keyring ~signer:(node_name signer) payload, payload))
  | _ -> None

let verify_certificates t chain =
  List.for_all
    (fun (signature, payload) -> Atum_crypto.Signature.verify t.keyring signature ~msg:payload)
    chain

(* Bulk RNG: all hop choices are drawn by the initiating vgroup and
   piggybacked on the walk (§5.1).  Each hop is one group message.
   Termination: backward phase for Sync (the reply retraces the path),
   certificate chain for Async (one reply carrying per-hop vgroup
   certificates, verified by the origin). *)
let start_walk ?parent t ~from_vg ~k =
  let choices = Random_walk.bulk_choices t.rng ~length:t.params.rwl in
  let walk_id = fresh_gm_id t in
  Metrics.incr t.metrics "walk.started";
  let span = span_begin t ~saga:"walk" ~vgroup:from_vg ?parent () in
  let rec forward v path certs = function
    | [] -> terminate v path certs
    | c :: rest ->
      if not (Hgraph.mem t.hgraph v) then begin
        Metrics.incr t.metrics "walk.lost";
        restart ()
      end
      else begin
        let links = Hgraph.neighbors t.hgraph v in
        let _, next = List.nth links (Random_walk.choice_index ~degree:(List.length links) c) in
        let certs =
          if t.params.protocol = Params.Async then
            match certificate t ~walk_id ~hop:(List.length path) ~from_vg:v ~next with
            | Some cert -> cert :: certs
            | None -> certs
          else certs
        in
        group_send t ~src_vg:v ~dst_vg:next ~payload:(Control { label = "walk-step" })
          ~size:(96 + (8 * List.length rest))
          ~k:(fun () -> forward next (v :: path) certs rest)
          ~on_fail:(fun () ->
            Metrics.incr t.metrics "walk.lost";
            restart ())
          ()
      end
  and terminate v path certs =
    match t.params.protocol with
    | Params.Async ->
      (* One reply carrying the certificate chain; its size is linear
         in rwl, and the origin verifies every signature. *)
      group_send t ~src_vg:v ~dst_vg:from_vg
        ~payload:(Control { label = "walk-cert" })
        ~size:(64 + (80 * List.length certs))
        ~k:(fun () ->
          if verify_certificates t certs then finish v
          else begin
            Metrics.incr t.metrics "walk.cert_rejected";
            restart ()
          end)
        ~on_fail:(fun () ->
          Metrics.incr t.metrics "walk.lost";
          restart ())
        ()
    | Params.Sync ->
      ignore certs;
      (* Backward phase: retrace the forwarding path, so the origin
         learns the selected vgroup and they can talk directly. *)
      let final = v in
      let rec back_from v path =
        match path with
        | [] -> finish final
        | prev :: rest ->
          group_send t ~src_vg:v ~dst_vg:prev ~payload:(Control { label = "walk-back" })
            ~k:(fun () -> back_from prev rest)
            ~on_fail:(fun () ->
              (* a relay on the return path vanished: the origin would
                 time out and re-issue the walk *)
              Metrics.incr t.metrics "walk.lost";
              restart ())
            ()
      in
      back_from v path
  and finish v =
    match vgroup_opt t v with
    | Some dst when not dst.retired ->
      Metrics.incr t.metrics "walk.completed";
      trace_emit t ~kind:"walk.completed" ~vgroup:v ();
      span_end t ~saga:"walk" ~vgroup:v span;
      k v
    | _ ->
      Metrics.incr t.metrics "walk.lost";
      restart ()
  and restart () =
    (* The walk stepped onto a vgroup that was merged away mid-walk;
       start over from the origin, unless the origin itself is gone. *)
    match vgroup_opt t from_vg with
    | Some src when not src.retired ->
      Engine.schedule ~label:"walk.restart" t.engine ~delay:0.01 (fun () ->
          let choices = Random_walk.bulk_choices t.rng ~length:t.params.rwl in
          forward from_vg [] [] choices)
    | _ ->
      Metrics.incr t.metrics "walk.abandoned";
      span_end t ~saga:"walk" ~vgroup:from_vg span
  in
  forward from_vg [] [] choices

(* ------------------------------------------------------------------ *)
(* Registry mutations (applied only from agreed operations)            *)
(* ------------------------------------------------------------------ *)

let notify_neighbors t vg =
  if Hgraph.mem t.hgraph vg.vid then begin
    let neighbors = List.filter (fun v -> v <> vg.vid) (Hgraph.neighbor_set t.hgraph vg.vid) in
    List.iter
      (fun nb ->
        group_send t ~src_vg:vg.vid ~dst_vg:nb
          ~payload:(Control { label = "reconfig" })
          ~size:(64 * List.length vg.members)
          ())
      neighbors
  end

let seed_last_seen t vg member =
  List.iter
    (fun peer -> if peer <> member then begin
        Hashtbl.replace t.last_seen (member, peer) (now t);
        if Atum_util.Arena.mem t.nodes peer then
          Hashtbl.replace t.last_seen (peer, member) (now t)
      end)
    vg.members

let add_member t vg member =
  vg.members <- vg.members @ [ member ];
  set_node_vg t (node t member) (Some vg.vid);
  seed_last_seen t vg member;
  reconfigure t vg;
  notify_neighbors t vg

let remove_member t vg member =
  vg.members <- List.filter (fun m -> m <> member) vg.members;
  mark_dirty t vg.vid;
  let n = node t member in
  if Option.equal Int.equal n.vg (Some vg.vid) then set_node_vg t n None;
  reconfigure t vg;
  notify_neighbors t vg

(* ------------------------------------------------------------------ *)
(* Logarithmic grouping: split and merge (§3.1, §3.3)                  *)
(* ------------------------------------------------------------------ *)

(* Size maintenance runs after shuffles; forward declarations tie the
   shuffle / split / merge recursion. *)
let rec check_size t vg =
  if (not vg.retired) && not vg.busy then begin
    let size = List.length vg.members in
    if Grouping.needs_split ~gmax:t.params.gmax ~size then split t vg
    else if Grouping.needs_merge ~gmin:t.params.gmin ~size && vgroup_count t > 1 then
      merge t vg ~attempts:5
  end

(* A split's placement walks can be lost; if the new vgroup is still
   absent from some cycles, splice it next to a random resident of
   each missing cycle (the coordinator retrying with local knowledge).
   Without this a half-inserted vgroup would be unreachable by gossip
   restricted to the missing cycles — and a vgroup whose walks were
   ALL lost (e.g. every placement walk crossed a partition) would be
   invisible to gossip entirely, so the repair must also cover the
   not-yet-inserted case. *)
and ensure_on_all_cycles t vg =
  if not vg.retired then begin
    if not (Hgraph.mem t.hgraph vg.vid) then
      Metrics.incr t.metrics "split.insert_recovered";
    for cycle = 0 to t.params.hc - 1 do
      if Hgraph.successor_opt t.hgraph ~cycle vg.vid = None then begin
        let residents =
          List.filter
            (fun v ->
              v <> vg.vid && Hgraph.successor_opt t.hgraph ~cycle v <> None)
            (Hgraph.vertices t.hgraph)
        in
        match residents with
        | [] -> ()
        | _ ->
          Metrics.incr t.metrics "split.insert_repaired";
          Hgraph.insert_after t.hgraph ~cycle ~after:(Rng.pick t.rng residents) vg.vid
      end
    done
  end

(* A saga can stall when a participant vgroup vanishes mid-protocol (a
   group message becomes undeliverable, an agreement's vgroup retires).
   Real deployments recover with timeouts; so do we: if the vgroup is
   still held by the same saga after the deadline, release it, repair
   any half-done overlay insertion, and re-run the size check so
   splits/merges are never blocked forever. *)
and arm_saga_watchdog t vg =
  vg.saga_gen <- vg.saga_gen + 1;
  let gen = vg.saga_gen in
  let timeout =
    Float.max 90.0 (float_of_int (6 * t.params.rwl) *. t.params.round_duration)
  in
  Engine.schedule ~label:"saga.watchdog" t.engine ~delay:timeout (fun () ->
      if (not vg.retired) && vg.busy && vg.saga_gen = gen then begin
        Metrics.incr t.metrics "saga.timeout";
        ensure_on_all_cycles t vg;
        vg.busy <- false;
        let rerun = vg.shuffle_pending in
        vg.shuffle_pending <- false;
        if rerun then shuffle t vg else check_size t vg
      end)

(* Split (§3.3.2): the members are divided into two random halves; the
   new vgroup is spliced into every H-graph cycle at a position chosen
   by a random walk. *)
and split t vg =
  if (not vg.retired) && not vg.busy then begin
    vg.busy <- true;
    arm_saga_watchdog t vg;
    let span = span_begin t ~saga:"split" ~vgroup:vg.vid () in
    agree t vg ~parent:span "split" (fun () ->
        if vg.retired then begin
          vg.busy <- false;
          span_end t ~saga:"split" ~vgroup:vg.vid span
        end
        else begin
          Metrics.incr t.metrics "vgroup.split";
          trace_emit t ~kind:"vgroup.split" ~vgroup:vg.vid ();
          let keep, depart = Grouping.split_halves t.rng vg.members in
          let e = add_vgroup t ~members:depart ~busy:true in
          let evid = e.vid in
          arm_saga_watchdog t e;
          vg.members <- keep;
          mark_dirty t vg.vid;
          List.iter (fun m -> set_node_vg t (node t m) (Some evid)) depart;
          reconfigure t vg;
          reconfigure t e;
          (* One walk per cycle decides where E lands on that cycle. *)
          let remaining = ref t.params.hc in
          for cycle = 0 to t.params.hc - 1 do
            start_walk t ~parent:span ~from_vg:vg.vid ~k:(fun w ->
                (* The walk can come back late (restarted across a
                   partition) after the saga watchdog already repaired
                   the insertion, and its anchor can have left the
                   cycle mid-flight — so only insert when E is still
                   missing from this cycle and the anchor is on it,
                   falling back to the splitting vgroup, then to the
                   repair pass. *)
                (if Hgraph.successor_opt t.hgraph ~cycle evid = None then
                   let on_cycle v = Hgraph.successor_opt t.hgraph ~cycle v <> None in
                   let anchor = if w <> evid && on_cycle w then w else vg.vid in
                   if on_cycle anchor then
                     Hgraph.insert_after t.hgraph ~cycle ~after:anchor evid);
                decr remaining;
                if !remaining = 0 then begin
                  ensure_on_all_cycles t e;
                  notify_neighbors t e;
                  e.busy <- false;
                  vg.busy <- false;
                  span_end t ~saga:"split" ~vgroup:vg.vid span;
                  check_size t vg;
                  check_size t e
                end)
          done
        end)
  end

(* Merge (§3.3.3): all members of a shrunken vgroup join a random
   neighbor; the departing vgroup is removed from every cycle and the
   gaps close.  The combined vgroup then shuffles, per the paper. *)
and merge t vg ~attempts =
  if (not vg.retired) && (not vg.busy) && vgroup_count t > 1 then begin
    let candidates =
      List.filter
        (fun v ->
          v <> vg.vid
          &&
          match vgroup_opt t v with
          | Some m -> (not m.retired) && not m.busy
          | None -> false)
        (Hgraph.neighbor_set t.hgraph vg.vid)
    in
    match candidates with
    | [] ->
      if attempts > 0 then
        Engine.schedule ~label:"merge.retry" t.engine ~delay:(2.0 *. t.params.round_duration) (fun () ->
            merge t vg ~attempts:(attempts - 1))
      else Metrics.incr t.metrics "merge.abandoned"
    | _ ->
      let mvid = Rng.pick t.rng candidates in
      let m = vgroup t mvid in
      vg.busy <- true;
      m.busy <- true;
      arm_saga_watchdog t vg;
      arm_saga_watchdog t m;
      let span = span_begin t ~saga:"merge" ~vgroup:vg.vid () in
      agree t vg ~parent:span "merge-out" (fun () ->
          agree t m ~parent:span "merge-in" (fun () ->
              if vg.retired || m.retired then begin
                vg.busy <- false;
                m.busy <- false;
                span_end t ~saga:"merge" ~vgroup:vg.vid span
              end
              else begin
                Metrics.incr t.metrics "vgroup.merge";
                trace_emit t ~kind:"vgroup.merge" ~vgroup:mvid ();
                let moving = vg.members in
                Hgraph.remove t.hgraph vg.vid;
                retire_vgroup t vg;
                vg.members <- [];
                stop_smr vg;
                vg.smr <- None;
                List.iter (fun x -> set_node_vg t (node t x) (Some mvid)) moving;
                m.members <- m.members @ moving;
                mark_dirty t mvid;
                List.iter (fun x -> seed_last_seen t m x) moving;
                reconfigure t m;
                notify_neighbors t m;
                vg.busy <- false;
                m.busy <- false;
                span_end t ~saga:"merge" ~vgroup:mvid span;
                (* Deferred shuffle of the merged vgroup (§3.3.3). *)
                shuffle t m
              end))
  end

(* ------------------------------------------------------------------ *)
(* Random walk shuffling (§3.2)                                        *)
(* ------------------------------------------------------------------ *)

(* Refresh a vgroup's composition: for every member, a random walk
   picks an exchange partner vgroup; the member and a random node of
   the partner swap places.  An exchange whose partner vgroup is
   already engaged is suppressed — exactly what Fig 13 measures. *)
and shuffle t vg =
  if vg.retired || not t.shuffling_enabled then (if not vg.retired then check_size t vg)
  else if vg.busy then vg.shuffle_pending <- true
  else begin
    vg.busy <- true;
    arm_saga_watchdog t vg;
    Metrics.incr t.metrics "shuffle.started";
    let span = span_begin t ~saga:"shuffle" ~vgroup:vg.vid () in
    let members0 = vg.members in
    let remaining = ref (List.length members0) in
    let finish_one () =
      decr remaining;
      if !remaining = 0 then begin
        vg.busy <- false;
        Metrics.incr t.metrics "shuffle.completed";
        span_end t ~saga:"shuffle" ~vgroup:vg.vid span;
        let rerun = vg.shuffle_pending in
        vg.shuffle_pending <- false;
        if rerun then shuffle t vg else check_size t vg
      end
    in
    if members0 = [] then begin
      vg.busy <- false;
      span_end t ~saga:"shuffle" ~vgroup:vg.vid span;
      check_size t vg
    end
    else
      List.iter
        (fun m ->
          start_walk t ~parent:span ~from_vg:vg.vid ~k:(fun pvid ->
              (* Suppression is per node (§3.2 / Fig 13): the exchange
                 is abandoned when the chosen partner (or the departing
                 member) is already engaged in another exchange, or the
                 partner vgroup is gone / mid-split/merge. *)
              match vgroup_opt t pvid with
              | Some p
                when (not p.retired) && p.vid <> vg.vid
                     && List.mem m vg.members && p.members <> []
                     && not (node t m).exchanging ->
                let partner = Rng.pick t.rng p.members in
                if (node t partner).exchanging then begin
                  Metrics.incr t.metrics "exchange.suppressed";
                  finish_one ()
                end
                else begin
                  (node t m).exchanging <- true;
                  (node t partner).exchanging <- true;
                  let release () =
                    (node t m).exchanging <- false;
                    (node t partner).exchanging <- false
                  in
                  (* The two vgroups agree concurrently (§7: multiple
                     vgroups reconfigure at once); the swap applies
                     when both agreements have fired. *)
                  let barrier = ref 2 in
                  let on_agreed k = decr barrier; if !barrier = 0 then k () in
                  let proceed () =
                          if
                            vg.retired || p.retired
                            || (not (List.mem m vg.members))
                            || not (List.mem partner p.members)
                          then begin
                            release ();
                            Metrics.incr t.metrics "exchange.suppressed";
                            finish_one ()
                          end
                          else begin
                            (* Swap m and partner. *)
                            vg.members <-
                              List.map (fun x -> if x = m then partner else x) vg.members;
                            p.members <-
                              List.map (fun x -> if x = partner then m else x) p.members;
                            set_node_vg t (node t m) (Some p.vid);
                            set_node_vg t (node t partner) (Some vg.vid);
                            seed_last_seen t vg partner;
                            seed_last_seen t p m;
                            reconfigure t vg;
                            reconfigure t p;
                            notify_neighbors t vg;
                            notify_neighbors t p;
                            release ();
                            Metrics.incr t.metrics "exchange.completed";
                            finish_one ()
                          end
                  in
                  agree t vg ~parent:span ("swap-out:" ^ string_of_int m) (fun () ->
                      on_agreed proceed);
                  agree t p ~parent:span ("swap-in:" ^ string_of_int partner) (fun () ->
                      on_agreed proceed)
                end
              | _ ->
                Metrics.incr t.metrics "exchange.suppressed";
                finish_one ()))
        members0
  end

(* ------------------------------------------------------------------ *)
(* Join, leave, eviction (§3.3)                                        *)
(* ------------------------------------------------------------------ *)

(* Join (§3.3.2): contact node -> agreement at the contact vgroup ->
   random walk selects the hosting vgroup D -> D agrees to add the
   joiner -> shuffle D -> split if oversized. *)
let join t ~joiner ~contact ?(k = fun _ -> ()) () =
  let j = node t joiner in
  if j.vg <> None then invalid_arg "System.join: node already in the system";
  let t0 = now t in
  Metrics.incr t.metrics "join.requested";
  trace_emit t ~kind:"join.requested" ~node:joiner ~peer:contact ();
  match Option.bind (node_opt t contact) (fun c -> c.vg) with
  | None -> invalid_arg "System.join: contact node not in the system"
  | Some cvid ->
    let span = span_begin t ~saga:"join" ~node:joiner () in
    let fail () =
      Metrics.incr t.metrics "join.failed";
      span_end t ~saga:"join" ~node:joiner span
    in
    direct_send t ~src:joiner ~dst:contact ~label:"join-contact"
      ~k:(fun () ->
        direct_send t ~src:contact ~dst:joiner ~label:"contact-reply"
          ~k:(fun () ->
            match vgroup_opt t cvid with
            | Some c when not c.retired ->
              (* The joiner asks all of C; C agrees on handling it. *)
              agree t c ~parent:span ("join:" ^ string_of_int joiner) (fun () ->
                  start_walk t ~parent:span ~from_vg:c.vid ~k:(fun dvid ->
                      match vgroup_opt t dvid with
                      | Some _ ->
                        (* C tells j the composition of D; j contacts D. *)
                        direct_send t ~src:(List.hd c.members) ~dst:joiner
                          ~label:"join-assign"
                          ~k:(fun () ->
                            match vgroup_opt t dvid with
                            | Some d when (not d.retired) && j.alive ->
                              agree t d ~parent:span ("add:" ^ string_of_int joiner)
                                (fun () ->
                                  if d.retired || not j.alive then fail ()
                                  else begin
                                    add_member t d joiner;
                                    Metrics.incr t.metrics "join.completed";
                                    trace_emit t ~kind:"join.completed" ~node:joiner
                                      ~vgroup:d.vid ();
                                    Atum_sim.Metrics.observe t.metrics "join.latency"
                                      (now t -. t0);
                                    span_end t ~saga:"join" ~node:joiner ~vgroup:d.vid span;
                                    k d.vid;
                                    shuffle t d
                                  end)
                            | _ -> fail ())
                          ()
                      | None -> fail ()))
            | _ -> fail ())
          ())
      ()

(* Return a departed node's dense id to the arena free list so the
   next spawn reuses it.  Stale liveness entries are purged (a
   recycled id must not inherit its predecessor's heartbeat history);
   acceptance scratch keyed by globally-unique gm/broadcast ids is
   harmless and left to drain.  Opt-in ([set_id_recycling]) because
   strategies that re-join under the same id (Join_leave_attack)
   need the record to survive its departure. *)
let release_node t nid =
  match node_opt t nid with
  | None -> ()
  | Some n ->
    if Option.is_some n.vg then invalid_arg "System.release_node: node still in a vgroup";
    if is_live n then invalid_arg "System.release_node: node still live";
    let stale =
      Hashtbl.fold
        (fun ((a, b) as key) _ acc -> if a = nid || b = nid then key :: acc else acc)
        t.last_seen []
    in
    List.iter (Hashtbl.remove t.last_seen) stale;
    Network.unregister t.net nid;
    Atum_util.Arena.release t.nodes nid

let set_id_recycling t on = t.recycle_ids <- on

(* Leave (§3.3.3): agreement at the leaver's vgroup, neighbor
   notification, then merge (if undersized) or shuffle.

   The agreement can be swallowed: if the vgroup retires mid-saga (a
   concurrent merge moves its members to the partner), pending ops die
   with it while the mover keeps its membership.  A watchdog re-issues
   the departure against the node's current vgroup until the registry
   actually drops it. *)
let rec depart t ~target ~reason ?(k = fun () -> ()) () =
  let n = node t target in
  match n.vg with
  | None -> k ()
  | Some vid ->
    (match vgroup_opt t vid with
    | Some vg when not vg.retired ->
      let saga = if reason = "evicted" then "evict" else reason in
      let span = span_begin t ~saga ~node:target ~vgroup:vid () in
      let fired = ref false in
      let k () =
        if not !fired then begin
          fired := true;
          k ()
        end
      in
      Engine.schedule ~label:"depart.watchdog" t.engine
        ~delay:(Float.max 10.0 (20.0 *. t.params.round_duration))
        (fun () ->
          if (not !fired) && n.alive && Option.is_some n.vg then
            depart t ~target ~reason ~k ());
      agree t vg ~parent:span (reason ^ ":" ^ string_of_int target) (fun () ->
          if vg.retired || not (List.mem target vg.members) then begin
            span_end t ~saga ~node:target span;
            (* If the node is genuinely gone we are done; if it moved
               to another vgroup mid-saga, the watchdog re-issues. *)
            if Option.is_none n.vg then k ()
          end
          else begin
            remove_member t vg target;
            Metrics.incr t.metrics ("node." ^ reason);
            span_end t ~saga ~node:target ~vgroup:vid span;
            k ();
            if t.recycle_ids && Option.is_none n.vg then release_node t target;
            if vg.members = [] then begin
              (* Last member gone: retire the vgroup entirely. *)
              if vgroup_count t > 1 then Hgraph.remove t.hgraph vg.vid;
              retire_vgroup t vg;
              stop_smr vg;
              vg.smr <- None
            end
            else if
              Grouping.needs_merge ~gmin:t.params.gmin ~size:(List.length vg.members)
              && vgroup_count t > 1
            then merge t vg ~attempts:5 (* shuffle deferred until after merge *)
            else shuffle t vg
          end)
    | _ -> k ())

let leave t ~target ?k () = depart t ~target ~reason:"leave" ?k ()

let evict t ~target ?k () =
  Metrics.incr t.metrics "eviction.triggered";
  trace_emit t ~kind:"eviction.triggered" ~node:target ();
  depart t ~target ~reason:"evicted" ?k ()

(* ------------------------------------------------------------------ *)
(* Broadcast (§3.3.4)                                                  *)
(* ------------------------------------------------------------------ *)

let encode_bcast ~bid ~origin ~body =
  Printf.sprintf "bcast#%d#%d#%s" bid origin body

(* Per-node delivery: record latency, hand to the application, then
   gossip the message to neighbor vgroups selected by the forward
   callback (flooding by default). *)
(* The vgroup's gossip view: its neighbors annotated with the
   (deduped, ascending) cycles linking to them, sorted by neighbor
   id.  Cached against the overlay generation, so the sort runs once
   per topology change instead of once per delivery — the per-saga
   hoist of the old per-delivery [chosen] table sort. *)
let gossip_view t vg =
  let gen = Hgraph.generation t.hgraph in
  if vg.nbrs_gen <> gen then begin
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (cycle, nb) ->
        if nb <> vg.vid then
          match Hashtbl.find_opt tbl nb with
          | Some cs -> cs := cycle :: !cs
          | None -> Hashtbl.replace tbl nb (ref [ cycle ]))
      (Hgraph.neighbors t.hgraph vg.vid);
    vg.nbrs <-
      List.map
        (fun (nb, cs) -> (nb, List.sort_uniq Int.compare !cs))
        (Atum_util.Hashtbl_ext.sorted_bindings ~cmp:Int.compare tbl);
    vg.nbrs_gen <- gen;
    Metrics.incr t.metrics "gossip.view.rebuilt"
  end;
  vg.nbrs

(* One target per selected neighbor, tagged with the lowest cycle
   that selected it.  Output is sorted by neighbor id either way; the
   legacy path rebuilds (and re-sorts) the selection table on every
   delivery, kept for the scale benchmark's before/after. *)
let gossip_targets t vg ~bid =
  let vid = vg.vid in
  if t.fast_paths then
    List.filter_map
      (fun (nb, cycles) ->
        let rec first = function
          | [] -> None
          | c :: rest ->
            if t.forward_policy ~bid ~from_vg:vid ~cycle:c ~neighbor:nb then Some (nb, c)
            else first rest
        in
        first cycles)
      (gossip_view t vg)
  else begin
    let chosen = Hashtbl.create 8 in
    List.iter
      (fun (cycle, nb) ->
        if nb <> vid && t.forward_policy ~bid ~from_vg:vid ~cycle ~neighbor:nb then
          match Hashtbl.find_opt chosen nb with
          | Some c when c <= cycle -> ()
          | _ -> Hashtbl.replace chosen nb cycle)
      (Hgraph.neighbors t.hgraph vid);
    Atum_util.Hashtbl_ext.sorted_bindings ~cmp:Int.compare chosen
  end

(* Drain the per-instant fan-out buffer: one [send_group] per
   (src_vg, dst_vg, bid) round.  The buffer is cleared before sending
   so deliveries triggered later at this timestamp start a new round. *)
let flush_fanout t =
  let entries = List.rev t.fanout in
  t.fanout <- [];
  t.fanout_scheduled <- false;
  List.iter
    (fun e ->
      match vgroup_opt t e.f_dst with
      | Some nbg when not nbg.retired ->
        Network.send_group t.net ~srcs:(List.rev e.f_srcs) ~dsts:nbg.members
          (Group_part
             {
               gm_id = -1;
               src_vg = e.f_src_vg;
               src_size = e.f_src_size;
               payload = Bcast { bid = e.f_bid; origin = e.f_origin; body = e.f_body; cycle = e.f_cycle };
             })
      | _ -> ())
    entries

let queue_fanout t ~dst ~src_vg ~src_size ~bid ~origin ~body ~cycle ~sender ~bytes =
  let rec find = function
    | [] -> None
    | (e : fanout_entry) :: rest ->
      if e.f_dst = dst && e.f_bid = bid && e.f_src_vg = src_vg then Some e else find rest
  in
  (match find t.fanout with
  | Some e -> e.f_srcs <- (sender, bytes) :: e.f_srcs
  | None ->
    t.fanout <-
      {
        f_dst = dst;
        f_src_vg = src_vg;
        f_src_size = src_size;
        f_bid = bid;
        f_origin = origin;
        f_body = body;
        f_cycle = cycle;
        f_srcs = [ (sender, bytes) ];
      }
      :: t.fanout);
  if not t.fanout_scheduled then begin
    t.fanout_scheduled <- true;
    Engine.schedule ~label:"system.fanout" t.engine ~delay:0.0 (fun () -> flush_fanout t)
  end

let node_deliver t nid ~bid ~origin ~body =
  let n = node t nid in
  if (not (Atum_util.Bitset.mem n.delivered bid)) && is_correct n then begin
    Atum_util.Bitset.set n.delivered bid;
    audit t (Audit_deliver { node = nid; bid; known = Hashtbl.mem t.bcasts bid });
    if Option.is_some t.store then
      persist t n
        (Json.Obj
           [
             ("t", Json.String "deliver");
             ("bid", Json.Int bid);
             ("origin", Json.Int origin);
             ("body", Json.String body);
           ]);
    (match Hashtbl.find_opt t.bcasts bid with
    | Some meta ->
      Atum_sim.Metrics.observe t.metrics "broadcast.latency" (now t -. meta.started)
    | None -> ());
    Metrics.incr t.metrics "broadcast.delivered";
    trace_emit t ~kind:"broadcast.delivered" ~node:nid ~peer:origin ~bid ();
    t.on_deliver nid ~bid ~origin body;
    match n.vg with
    | None -> ()
    | Some vid ->
      if Hgraph.mem t.hgraph vid then begin
        let vg = vgroup t vid in
        let targets = gossip_targets t vg ~bid in
        let src_size = List.length vg.members in
        let my_rank =
          let rec rank i = function
            | [] -> i
            | x :: rest -> if x = nid then i else rank (i + 1) rest
          in
          rank 0 vg.members
        in
        let full = my_rank < majority_of src_size in
        let bytes = if full then 64 + String.length body else 32 in
        if t.fast_paths then
          (* Vgroup-round batching: members delivering inside the same
             engine event merge their sends to each neighbor into one
             [send_group] round (flushed once per instant). *)
          List.iter
            (fun (nb, cycle) ->
              queue_fanout t ~dst:nb ~src_vg:vid ~src_size ~bid ~origin ~body ~cycle
                ~sender:nid ~bytes)
            targets
        else
          defer t (fun () ->
              List.iter
                (fun (nb, cycle) ->
                  match vgroup_opt t nb with
                  | Some nbg when not nbg.retired ->
                    Network.send_multi ~size:bytes t.net ~src:nid ~dsts:nbg.members
                      (Group_part
                         {
                           gm_id = -1;
                           src_vg = vid;
                           src_size;
                           payload = Bcast { bid; origin; body; cycle };
                         })
                  | _ -> ())
                targets)
      end
  end

(* Broadcast entry point: phase one is a Byzantine broadcast inside
   the caller's vgroup through SMR; phase two is the gossip above. *)
let broadcast t ~from body =
  let n = node t from in
  match n.vg with
  | None -> invalid_arg "System.broadcast: node not in the system"
  | Some vid ->
    let vg = vgroup t vid in
    ensure_smr t vg;
    let bid = t.next_bid in
    t.next_bid <- bid + 1;
    Hashtbl.replace t.bcasts bid { started = now t; b_origin = from; b_body = body };
    Metrics.incr t.metrics "broadcast.sent";
    trace_emit t ~kind:"broadcast.sent" ~node:from ~vgroup:vid ~size:(String.length body) ~bid ();
    (* Phase one: the raw bcast operation goes through the vgroup's
       SMR; each member's execution delivers and starts the gossip. *)
    let proposer =
      if is_correct n then Some from else proposer_of t vg
    in
    (match proposer with
    | Some proposer -> propose_raw t vg ~proposer (encode_bcast ~bid ~origin:from ~body)
    | None -> ());
    bid

(* ------------------------------------------------------------------ *)
(* Active Byzantine behaviour on the wire                              *)
(* ------------------------------------------------------------------ *)

(* Re-gossip a broadcast from a Byzantine member to every member of
   every H-graph neighbor vgroup, with a per-cycle body chosen by
   [mutate].  Mirrors [node_deliver]'s fan-out (lowest selecting
   cycle, sorted targets, round deferral) so the injected traffic
   schedules deterministically — but the attacker ignores the forward
   policy and always hits every neighbor. *)
let byz_gossip t n ~bid ~origin ~mutate =
  match n.vg with
  | None -> ()
  | Some vid ->
    if Hgraph.mem t.hgraph vid then begin
      let vg = vgroup t vid in
      let targets =
        if t.fast_paths then
          List.map (fun (nb, cycles) -> (nb, List.hd cycles)) (gossip_view t vg)
        else begin
          let chosen = Hashtbl.create 8 in
          List.iter
            (fun (cycle, nb) ->
              if nb <> vid then
                match Hashtbl.find_opt chosen nb with
                | Some c when c <= cycle -> ()
                | _ -> Hashtbl.replace chosen nb cycle)
            (Hgraph.neighbors t.hgraph vid);
          Atum_util.Hashtbl_ext.sorted_bindings ~cmp:Int.compare chosen
        end
      in
      let src_size = List.length vg.members in
      defer t (fun () ->
          List.iter
            (fun (nb, cycle) ->
              match vgroup_opt t nb with
              | Some nbg when not nbg.retired ->
                let body = mutate cycle in
                Network.send_multi ~size:(64 + String.length body) t.net ~src:n.id
                  ~dsts:nbg.members
                  (Group_part
                     {
                       gm_id = -1;
                       src_vg = vid;
                       src_size;
                       payload = Bcast { bid; origin; body; cycle };
                     })
              | _ -> ())
            targets)
    end

(* Deterministic per-(bid, node) coin for [Selective_drop]: stable
   across runs, independent of arrival order. *)
let byz_coin ~bid ~nid ~p =
  float_of_int (Hashtbl.hash (bid, nid) land 0xFFFF) < p *. 65536.0

(* What a Byzantine node does with a broadcast part it receives.  The
   [delivered] table doubles as the once-per-bid marker: a Byzantine
   node never delivers properly ([node_deliver] requires
   [is_correct]), so the table is otherwise unused. *)
let byz_on_bcast t n ~bid ~origin ~body =
  match effective_strategy n with
  | Mute | Flood _ | Join_leave_attack | Target_vgroup _ -> ()
  | Equivocate ->
    if not (Atum_util.Bitset.mem n.delivered bid) then begin
      Atum_util.Bitset.set n.delivered bid;
      Metrics.incr t.metrics "byzantine.equivocation";
      trace_emit t ~kind:"byzantine.equivocate" ~node:n.id ?vgroup:n.vg ~bid ();
      byz_gossip t n ~bid ~origin ~mutate:(fun cycle ->
          body ^ "/eq" ^ string_of_int cycle)
    end
  | Selective_drop p ->
    if not (Atum_util.Bitset.mem n.delivered bid) then begin
      Atum_util.Bitset.set n.delivered bid;
      if byz_coin ~bid ~nid:n.id ~p then begin
        Metrics.incr t.metrics "byzantine.selective_drop";
        trace_emit t ~kind:"byzantine.selective_drop" ~node:n.id ~bid ()
      end
      else begin
        Metrics.incr t.metrics "byzantine.relay";
        byz_gossip t n ~bid ~origin ~mutate:(fun _ -> body)
      end
    end

(* ------------------------------------------------------------------ *)
(* Heartbeats and eviction of unresponsive nodes (§5.1)                *)
(* ------------------------------------------------------------------ *)

let heartbeat_sweep t =
  (* Heartbeats draw per-message latencies from the network RNG, so
     the send order must not depend on bucket layout; the arena walks
     vgroups in ascending id order. *)
  Atum_util.Arena.iter
    (fun _ vg ->
      if (not vg.retired) && List.length vg.members > 1 then begin
        (* Everyone (including Byzantine nodes, which have an interest
           in not being evicted) heartbeats its vgroup peers. *)
        List.iter
          (fun m ->
            let n = node t m in
            if n.alive then
              List.iter
                (fun peer ->
                  if peer <> m then Network.send ~size:32 t.net ~src:m ~dst:peer Heartbeat)
                vg.members)
          vg.members;
        (* Byzantine members periodically propose to evict correct
           peers (§6.1.3); correct members check their own evidence and
           ignore proposals about nodes they have recently heard. *)
        List.iter
          (fun m ->
            let n = node t m in
            if n.alive && n.byzantine then
              Metrics.incr t.metrics "byzantine.evict_proposal")
          vg.members;
        (* The lowest correct member checks for silent peers. *)
        match correct_members t vg with
        | [] -> ()
        | detector :: _ ->
          List.iter
            (fun peer ->
              if peer <> detector then begin
                (* Silence only counts from the moment heartbeats
                   started flowing; older [last_seen] entries are
                   join-time seeds, not evidence. *)
                let last =
                  Float.max t.heartbeats_since
                    (Option.value ~default:(now t)
                       (Hashtbl.find_opt t.last_seen (detector, peer)))
                in
                if now t -. last > t.params.eviction_timeout then evict t ~target:peer ()
              end)
            vg.members
      end)
    t.vgroups

let rec heartbeat_loop t () =
  if t.heartbeats_running then begin
    heartbeat_sweep t;
    Engine.schedule ~label:"heartbeat" t.engine ~delay:t.params.heartbeat_period (heartbeat_loop t)
  end

let start_heartbeats t =
  if not t.heartbeats_running then begin
    t.heartbeats_running <- true;
    t.heartbeats_since <- now t;
    Engine.schedule ~label:"heartbeat" t.engine ~delay:t.params.heartbeat_period (heartbeat_loop t)
  end

let stop_heartbeats t = t.heartbeats_running <- false

(* ------------------------------------------------------------------ *)
(* Execute hook and wire dispatch                                      *)
(* ------------------------------------------------------------------ *)

let split3 s =
  (* "tag#a#b#rest" -> tag, a, b, rest *)
  match String.index_opt s '#' with
  | None -> None
  | Some i -> (
    match String.index_from_opt s (i + 1) '#' with
    | None -> None
    | Some j -> (
      match String.index_from_opt s (j + 1) '#' with
      | None ->
        Some
          ( String.sub s 0 i,
            String.sub s (i + 1) (j - i - 1),
            String.sub s (j + 1) (String.length s - j - 1),
            "" )
      | Some l ->
        Some
          ( String.sub s 0 i,
            String.sub s (i + 1) (j - i - 1),
            String.sub s (j + 1) (l - j - 1),
            String.sub s (l + 1) (String.length s - l - 1) )))

(* Two operation shapes reach the replicated state machines:
   "op#<id>#<payload>" — an agreed control operation, counted toward
   its pending continuation; and "bcast#<bid>#<origin>#<body>" — the
   first phase of a broadcast, delivered per member. *)
let on_smr_execute t vg member (op : Atum_smr.Smr_intf.op) =
  match String.index_opt op.payload '#' with
  | None -> ()
  | Some i -> (
    let tag = String.sub op.payload 0 i in
    let rest = String.sub op.payload (i + 1) (String.length op.payload - i - 1) in
    match tag with
    | "op" -> (
      match String.index_opt rest '#' with
      | None -> ()
      | Some j ->
        let op_id = String.sub rest 0 j in
        let pend = pending_of t vg.vid in
        (match List.find_opt (fun p -> p.op_id = op_id && not p.fired) !pend with
        | None -> ()
        | Some p ->
          if not (List.mem member p.execs) then p.execs <- member :: p.execs;
          if List.length p.execs >= majority_of (List.length vg.members) then begin
            p.fired <- true;
            pend := List.filter (fun q -> q.op_id <> op_id) !pend;
            p.action ()
          end))
    | "bcast" -> (
      match split3 op.payload with
      | Some (_, bid, origin, body) -> (
        match (int_of_string_opt bid, int_of_string_opt origin) with
        | Some bid, Some origin -> node_deliver t member ~bid ~origin ~body
        | _ -> ())
      | None -> ())
    | _ -> ())

let () = execute_hook := on_smr_execute

let handle_wire t nid ~src wire =
  match node_opt t nid with
  | None -> ()
  | Some n ->
    if is_correct n then begin
      match wire with
      | Sync_msg { vg = vid; epoch; m } -> (
        match vgroup_opt t vid with
        | Some vg when vg.epoch = epoch && not vg.retired -> (
          match vg.smr with
          | Some (Smr_sync reps) -> (
            match Hashtbl.find_opt reps.by_member nid with
            | Some inst -> Atum_smr.Sync_smr.receive inst ~src m
            | None -> ())
          | _ -> ())
        | _ -> ())
      | Async_msg { vg = vid; epoch; m } -> (
        match vgroup_opt t vid with
        | Some vg when vg.epoch = epoch && not vg.retired -> (
          match vg.smr with
          | Some (Smr_async tbl) -> (
            match Hashtbl.find_opt tbl nid with
            | Some inst -> Atum_smr.Pbft.receive inst ~src m
            | None -> ())
          | _ -> ())
        | _ -> ())
      | Group_part { gm_id; src_vg; src_size; payload } -> (
        let needed_src = majority_of src_size in
        match payload with
        | Control _ ->
          if not (Hashtbl.mem t.gm_accepted (nid, gm_id)) then begin
            let senders =
              match Hashtbl.find_opt t.gm_senders (nid, gm_id) with
              | Some r -> r
              | None ->
                let r = ref [] in
                Hashtbl.replace t.gm_senders (nid, gm_id) r;
                r
            in
            if not (List.mem src !senders) then senders := src :: !senders;
            if List.length !senders >= needed_src then begin
              Hashtbl.replace t.gm_accepted (nid, gm_id) ();
              Hashtbl.remove t.gm_senders (nid, gm_id);
              match Hashtbl.find_opt t.gms gm_id with
              | Some st ->
                st.node_accepts <- st.node_accepts + 1;
                if (not st.gm_fired) && st.node_accepts >= st.dst_needed then begin
                  st.gm_fired <- true;
                  Hashtbl.remove t.gms gm_id;
                  match st.gm_action with Some k -> k () | None -> ()
                end
              | None -> ()
            end
          end
        | Bcast { bid; origin; body; cycle } ->
          if not (Atum_util.Bitset.mem n.delivered bid) then begin
            let key = (nid, bid, src_vg) in
            let senders =
              match Hashtbl.find_opt t.bcast_senders key with
              | Some r -> r
              | None ->
                let r = ref [] in
                Hashtbl.replace t.bcast_senders key r;
                r
            in
            if not (List.mem src !senders) then senders := src :: !senders;
            if List.length !senders >= needed_src then begin
              Hashtbl.remove t.bcast_senders key;
              (* Gossip lineage: this node accepts the broadcast from
                 vgroup [src_vg]; first delivery is a hop edge in the
                 dissemination tree. *)
              trace_emit t ~kind:"bcast.hop" ~node:nid ?vgroup:n.vg ~parent:src_vg ~bid
                ~cycle ();
              node_deliver t nid ~bid ~origin ~body
            end
          end
          else
            (* Redundant receive: the gossip reached a node that had
               already delivered [bid]. *)
            trace_emit t ~kind:"bcast.dup" ~node:nid ?vgroup:n.vg ~parent:src_vg ~bid
              ~cycle ())
      | Direct { token; label = _ } -> (
        match Hashtbl.find_opt t.tokens token with
        | Some k ->
          Hashtbl.remove t.tokens token;
          k ()
        | None -> ())
      | Heartbeat -> Hashtbl.replace t.last_seen (nid, src) (now t)
    end
    else if n.alive && n.byzantine then begin
      (* Byzantine nodes record heartbeats (to keep pretending) and
         still run the point-to-point steps of their own join — a
         join-leave attacker wants in.  A [Mute] node ignores every
         replication and dissemination protocol; the active strategies
         additionally react to broadcast parts ([byz_on_bcast]) with
         equivocation or selective forwarding. *)
      match wire with
      | Heartbeat -> Hashtbl.replace t.last_seen (nid, src) (now t)
      | Direct { token; label = _ } -> (
        match Hashtbl.find_opt t.tokens token with
        | Some k ->
          Hashtbl.remove t.tokens token;
          k ()
        | None -> ())
      | Group_part { gm_id = _; src_vg = _; src_size = _; payload } -> (
        match payload with
        | Control _ -> ()
        | Bcast { bid; origin; body; cycle = _ } -> byz_on_bcast t n ~bid ~origin ~body)
      | Sync_msg _ | Async_msg _ -> ()
    end

(* ------------------------------------------------------------------ *)
(* Driving the synchronous deployment                                  *)
(* ------------------------------------------------------------------ *)

let drive_sync_round t _round =
  (* Round boundaries emit wire messages; drive vgroups and members in
     id order so the event queue fills deterministically. *)
  Atum_util.Arena.iter
    (fun _ vg ->
      if not vg.retired then
        match vg.smr with
        | Some (Smr_sync reps) ->
          (* Member order was fixed at install time: no per-round
             sort on this per-tick path. *)
          List.iter
            (fun (member, inst) ->
              match node_opt t member with
              | Some n when is_correct n -> Atum_smr.Sync_smr.on_round_boundary inst
              | _ -> ())
            reps.in_order
        | _ -> ())
    t.vgroups


(* ------------------------------------------------------------------ *)
(* Node lifecycle                                                      *)
(* ------------------------------------------------------------------ *)

let spawn_node t ?(byzantine = false) () =
  let id =
    Atum_util.Arena.alloc_with t.nodes (fun id ->
        {
          id;
          vg = None;
          byzantine;
          strategy = Mute;
          alive = true;
          exchanging = false;
          delivered = Atum_util.Bitset.create ();
        })
  in
  Atum_crypto.Signature.register t.keyring (node_name id);
  Network.register t.net id (fun ~src w -> handle_wire t id ~src w);
  id

let bootstrap t ?(byzantine = false) () =
  if t.bootstrapped then invalid_arg "System.bootstrap: already bootstrapped";
  t.bootstrapped <- true;
  let id = spawn_node t ~byzantine () in
  let vg = add_vgroup t ~members:[ id ] ~busy:false in
  let vid = vg.vid in
  set_node_vg t (node t id) (Some vid);
  (* Replace the placeholder overlay with one rooted at the bootstrap
     vgroup: a single vertex that neighbors itself on every cycle. *)
  t.hgraph <- Hgraph.singleton ~cycles:t.params.hc vid;
  install_smr t vg;
  (match t.rounds with
  | Some r ->
    ignore (Rounds.subscribe r (fun round -> drive_sync_round t round));
    Rounds.start r
  | None -> ());
  id

(* Bulk construction for the scale benchmark and large experiments:
   build the registry and overlay directly instead of running one
   join saga (walk + agreement + shuffle) per node.  The result is a
   valid settled system — [check_consistency] passes, every vgroup
   size stays inside [gmin, gmax] (except a sub-[gmin] total) — and
   SMR instances are installed lazily ([ensure_smr]), so the build
   cost is the registry itself, not a million replicas.  Returns the
   node ids in ascending order. *)
let build_direct t ~nodes:count () =
  if t.bootstrapped then invalid_arg "System.build_direct: already bootstrapped";
  if count < 1 then invalid_arg "System.build_direct: need at least one node";
  t.bootstrapped <- true;
  let g = max 1 ((t.params.gmin + t.params.gmax) / 2) in
  let ids = Array.init count (fun _ -> spawn_node t ()) in
  (* Round to the nearest group count so sizes land within one of the
     [gmin..gmax] midpoint. *)
  let groups = max 1 (((2 * count) + g) / (2 * g)) in
  let base = count / groups and extra = count mod groups in
  let vids = ref [] in
  let off = ref 0 in
  for gi = 0 to groups - 1 do
    let take = base + if gi < extra then 1 else 0 in
    let members = Array.to_list (Array.sub ids !off take) in
    let vg = add_vgroup t ~members ~busy:false in
    List.iter (fun m -> set_node_vg t (node t m) (Some vg.vid)) members;
    vids := vg.vid :: !vids;
    off := !off + take
  done;
  (match List.rev !vids with
  | [ v ] -> t.hgraph <- Hgraph.singleton ~cycles:t.params.hc v
  | vids -> t.hgraph <- Hgraph.create ~cycles:t.params.hc t.rng vids);
  (match t.rounds with
  | Some r ->
    ignore (Rounds.subscribe r (fun round -> drive_sync_round t round));
    Rounds.start r
  | None -> ());
  Array.to_list ids

let crash t nid =
  let n = node t nid in
  set_node_alive t n false;
  Network.crash t.net nid;
  Metrics.incr t.metrics "node.crashed";
  trace_emit t ~kind:"node.crashed" ~node:nid ()

(* Inverse of [crash]: the node comes back with whatever registry
   state it still holds.  If its vgroup evicted it while it was down,
   it rejoins nothing (vg = None) and simply idles; otherwise it
   resumes heartbeating and protocol participation, and the monitor's
   [vg_crashed] count stops growing — which is the signal the
   convergence checker watches. *)
let recover t nid =
  let n = node t nid in
  if not n.alive then begin
    set_node_alive t n true;
    Network.recover t.net nid;
    Metrics.incr t.metrics "node.recovered";
    trace_emit t ~kind:"node.recovered" ~node:nid ()
  end

(* ------------------------------------------------------------------ *)
(* Cold restart: durable recovery + rejoin + catch-up                  *)
(* ------------------------------------------------------------------ *)

(* After the node is back in a vgroup, pull the broadcasts it missed
   while down from one correct live peer in its vgroup: one request /
   response round-trip, then re-deliver each missed broadcast through
   the normal path (which also re-persists and re-gossips it). *)
let start_catchup t (report : restart_report) nid ~t0 =
  let n = node t nid in
  let peer =
    match n.vg with
    | None -> None
    | Some vid -> (
      match vgroup_opt t vid with
      | Some vg when not vg.retired ->
        List.find_opt (fun m -> m <> nid && is_correct (node t m)) vg.members
      | _ -> None)
  in
  match peer with
  | None ->
    (* Nobody to ask (fresh singleton vgroup or no correct peer): the
       node is as caught up as the system can make it. *)
    report.r_caught_up_at <- Some (now t);
    Metrics.incr t.metrics "recovery.catchup.empty"
  | Some peer ->
    trace_emit t ~kind:"recovery.catchup.begin" ~node:nid ~peer ();
    direct_send t ~src:nid ~dst:peer ~label:"catchup-req"
      ~k:(fun () ->
        (* The peer diffs its delivered set against the request's;
           origin and body come from the broadcast metadata. *)
        let missed = ref [] in
        Atum_util.Bitset.iter
          (fun bid ->
            if not (Atum_util.Bitset.mem n.delivered bid) then
              match Hashtbl.find_opt t.bcasts bid with
              | Some meta -> missed := (bid, meta.b_origin, meta.b_body) :: !missed
              | None -> ())
          (node t peer).delivered;
        let missed = List.rev !missed in
        direct_send t ~src:peer ~dst:nid ~label:"catchup-data"
          ~k:(fun () ->
            List.iter
              (fun (bid, origin, body) ->
                Metrics.incr t.metrics "recovery.catchup.delivered";
                node_deliver t nid ~bid ~origin ~body)
              missed;
            report.r_caught_up_at <- Some (now t);
            Atum_sim.Metrics.observe t.metrics "recovery.catchup.duration" (now t -. t0);
            trace_emit t ~kind:"recovery.catchup.end" ~node:nid ~size:(List.length missed) ())
          ())
      ()

(* Apply one WAL record to the cold node's in-memory state.  Replay is
   local-only: no gossip, no [on_deliver] (the workload's counters
   would double-count) — the application sees it through the dedicated
   replay hook. *)
let apply_wal_record t (n : node) record =
  match Json.member "t" record with
  | Some (Json.String "deliver") -> (
    match (Json.member "bid" record, Json.member "origin" record, Json.member "body" record) with
    | Some (Json.Int bid), Some (Json.Int origin), Some (Json.String body) ->
      Atum_util.Bitset.set n.delivered bid;
      (match t.app_replay with Some f -> f n.id ~bid ~origin body | None -> ())
    | _ -> ())
  | _ -> () (* "vg" records: the registry is ground truth, nothing to apply *)

(* Cold restart of a crashed node from its durable store: wipe the
   in-memory state (a real process restart loses it all), rebuild from
   snapshot + WAL, then either resume in place (still in the registry)
   or fresh-join through a contact, and finally catch up on missed
   broadcasts.  A corrupt store (bad WAL record or snapshot that fails
   authentication) falls back to wiping it and fresh-joining — counted
   under [recovery.fallback]. *)
let restart ?contact t nid =
  let n = node t nid in
  if n.alive then invalid_arg "System.restart: node is alive";
  let t0 = now t in
  let span = span_begin t ~saga:"restart" ~node:nid () in
  Metrics.incr t.metrics "recovery.restart";
  trace_emit t ~kind:"recovery.restart" ~node:nid ();
  (* Everything in memory is gone. *)
  Atum_util.Bitset.clear n.delivered;
  (match t.app_wipe with Some f -> f nid | None -> ());
  let replayed = ref 0 in
  let fallback = ref false in
  (match t.store with
  | None -> ()
  | Some store ->
    let r = Replica.recover store ~node:nid in
    if Replica.corrupt r then begin
      fallback := true;
      Metrics.incr t.metrics "recovery.fallback";
      trace_emit t ~kind:"recovery.fallback" ~node:nid ();
      Replica.wipe store ~node:nid
    end
    else begin
      (match r.Replica.wal_status with
      | Atum_store.Wal.Truncated { dropped_bytes } ->
        Metrics.incr t.metrics "recovery.wal.truncated";
        trace_emit t ~kind:"recovery.wal.truncated" ~node:nid ~size:dropped_bytes ()
      | _ -> ());
      (match r.Replica.snapshot with
      | Some snap ->
        (match Json.member "delivered" snap with
        | Some (Json.List bids) ->
          List.iter
            (function Json.Int b -> Atum_util.Bitset.set n.delivered b | _ -> ())
            bids
        | _ -> ());
        (match (t.app_import, Json.member "app" snap) with
        | Some f, Some (Json.Obj _ as app) -> f nid app
        | _ -> ())
      | None -> ());
      List.iter
        (fun record ->
          incr replayed;
          Metrics.incr t.metrics "recovery.replay.entries";
          apply_wal_record t n record)
        r.Replica.entries
    end);
  set_node_alive t n true;
  Network.recover t.net nid;
  Metrics.incr t.metrics "node.recovered";
  trace_emit t ~kind:"recovery.up" ~node:nid ~size:!replayed ();
  let report =
    {
      r_node = nid;
      r_restarted_at = t0;
      r_rejoined_at = None;
      r_caught_up_at = None;
      r_fallback = !fallback;
      r_replayed = !replayed;
    }
  in
  t.restarts <- report :: t.restarts;
  let rejoined () =
    report.r_rejoined_at <- Some (now t);
    Atum_sim.Metrics.observe t.metrics "recovery.rejoin.duration" (now t -. t0);
    trace_emit t ~kind:"recovery.rejoined" ~node:nid ();
    span_end t ~saga:"restart" ~node:nid span;
    start_catchup t report nid ~t0
  in
  let still_member =
    match n.vg with
    | Some vid -> (
      match vgroup_opt t vid with
      | Some vg -> (not vg.retired) && List.mem nid vg.members
      | None -> false)
    | None -> false
  in
  if still_member then begin
    (* The registry never evicted it: resume in place. *)
    Metrics.incr t.metrics "recovery.resume";
    rejoined ()
  end
  else begin
    if Option.is_some n.vg then set_node_vg t n None;
    Metrics.incr t.metrics "recovery.rejoin";
    let contact =
      match contact with
      | Some c
        when (match node_opt t c with Some cn -> is_correct cn && Option.is_some cn.vg | None -> false)
        ->
        Some c
      | _ -> (
        match List.filter (fun (m : node) -> m.id <> nid && is_correct m) (live_nodes t) with
        | [] -> None
        | m :: _ -> Some m.id)
    in
    match contact with
    | None ->
      (* A one-node system with a corrupt store: nothing to join. *)
      Metrics.incr t.metrics "recovery.no_contact";
      span_end t ~saga:"restart" ~node:nid span
    | Some contact -> join t ~joiner:nid ~contact ~k:(fun _ -> rejoined ()) ()
  end

let restart_reports t = List.rev t.restarts

(* --- periodic drivers for the active Byzantine strategies ----------- *)

let byz_pick_live t ~but =
  match
    List.filter_map
      (fun (m : node) -> if m.id <> but then Some m.id else None)
      (live_nodes t)
  with
  | [] -> None
  | ids -> Some (Rng.pick t.rng ids)

(* Junk point-to-point traffic: each tick sends [fanout] direct
   messages with fresh (never-registered) tokens to random live nodes,
   burning their receive capacity. *)
let start_flood t nid ~fanout ~size =
  Engine.every ~label:"byzantine.flood" t.engine ~period:5.0 (fun () ->
      let n = node t nid in
      if n.alive && n.byzantine then begin
        for _ = 1 to fanout do
          match byz_pick_live t ~but:nid with
          | Some dst ->
            Metrics.incr t.metrics "byzantine.flood.sent";
            Network.send ~size t.net ~src:nid ~dst
              (Direct { token = fresh_token t; label = "byz-flood" })
          | None -> ()
        done;
        true
      end
      else false)

(* Alternate leave / rejoin to keep the membership machinery churning
   (the attack of Guerraoui et al.'s dynamic-Byzantine model). *)
let start_join_leave t nid =
  Engine.every ~label:"byzantine.join_leave" t.engine ~period:30.0 (fun () ->
      let n = node t nid in
      if n.alive && n.byzantine then begin
        Metrics.incr t.metrics "byzantine.join_leave";
        (match n.vg with
        | Some _ -> leave t ~target:nid ()
        | None -> (
          match byz_pick_live t ~but:nid with
          | Some contact -> join t ~joiner:nid ~contact ()
          | None -> ()));
        true
      end
      else false)

(* The paper's targeted attack (§6.2): re-roll join placements until
   the node lands in the target vgroup.  Each attempt goes through the
   normal join saga, so the random walk (and shuffling) is exactly the
   defense being probed.  The driver stops when the target retires —
   merged or split away, the attack has lost its objective. *)
let start_target t nid ~target =
  let landed = ref false in
  Engine.every ~label:"byzantine.target" t.engine ~period:30.0 (fun () ->
      let n = node t nid in
      match vgroup_opt t target with
      | Some tvg when (not tvg.retired) && n.alive && n.byzantine ->
        (match n.vg with
        | Some vid when vid = target ->
          if not !landed then begin
            landed := true;
            Metrics.incr t.metrics "byzantine.target.landed";
            trace_emit t ~kind:"byzantine.target.landed" ~node:nid ~vgroup:target ()
          end
        | Some _ ->
          landed := false;
          Metrics.incr t.metrics "byzantine.target.attempt";
          leave t ~target:nid ()
        | None -> (
          landed := false;
          match correct_members t tvg with
          | [] -> ()
          | contact :: _ ->
            Metrics.incr t.metrics "byzantine.target.attempt";
            join t ~joiner:nid ~contact ()));
        true
      | _ -> false)

let make_byzantine t ?(strategy = Mute) nid =
  (match strategy with
  | Selective_drop p when p < 0.0 || p > 1.0 ->
    invalid_arg "System.make_byzantine: Selective_drop probability outside [0, 1]"
  | Target_vgroup { inner = Target_vgroup _; _ } ->
    invalid_arg "System.make_byzantine: nested Target_vgroup"
  | Mute | Equivocate | Selective_drop _ | Flood _ | Join_leave_attack
  | Target_vgroup _ -> ());
  let n = node t nid in
  if (not n.byzantine) && is_live n then t.live_byz_count <- t.live_byz_count + 1;
  (match n.vg with Some v -> mark_dirty t v | None -> ());
  n.byzantine <- true;
  n.strategy <- strategy;
  Metrics.incr t.metrics "node.byzantine";
  Metrics.incr t.metrics ("byzantine.strategy." ^ strategy_name strategy);
  match strategy with
  | Mute | Equivocate | Selective_drop _ -> ()
  | Flood { fanout; size } -> start_flood t nid ~fanout ~size
  | Join_leave_attack -> start_join_leave t nid
  | Target_vgroup { vg; inner = _ } -> start_target t nid ~target:vg

let hgraph t = t.hgraph

(* Ablation hook: disabling shuffling removes the fault-dispersal
   mechanism of §3.2 while keeping joins/leaves/splits/merges intact;
   the ablation benchmark uses it to show why shuffling matters. *)
let set_shuffling t enabled = t.shuffling_enabled <- enabled

(* Legacy-behaviour switch for the scale benchmark's before/after:
   [false] restores the pre-arena hot paths — per-delivery gossip
   target sorts and full live-list recounts in the gauges. *)
let set_fast_paths t enabled = t.fast_paths <- enabled

let byzantine_concentration t =
  (* max fraction of Byzantine members over all vgroups *)
  Atum_util.Arena.fold
    (fun _ vg acc ->
      if vg.retired || vg.members = [] then acc
      else begin
        let byz =
          List.length (List.filter (fun m -> (node t m).byzantine) vg.members)
        in
        Float.max acc (float_of_int byz /. float_of_int (List.length vg.members))
      end)
    t.vgroups 0.0

(* Registry invariants, used by tests: membership is mutual (node.vg
   matches vgroup.members), every active vgroup is an H-graph vertex,
   and no node belongs to two vgroups. *)

(* Per-vgroup invariant body, shared by the full sweep and the
   incremental [check_vgroups].  Error order stays reproducible: the
   arena (and the incremental caller's deduped list) walk ascending
   vgroup ids. *)
let check_vgroup_into t errors vid vg =
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  if vg.retired then begin
    if Hgraph.mem t.hgraph vid && vgroup_count t > 0 then
      err "retired vgroup %d still in overlay" vid
  end
  else begin
    if not (Hgraph.mem t.hgraph vid) then err "vgroup %d missing from overlay" vid;
    if not vg.busy then
      for cycle = 0 to t.params.hc - 1 do
        if Hgraph.successor_opt t.hgraph ~cycle vid = None then
          err "settled vgroup %d absent from cycle %d" vid cycle
      done;
    if vg.members = [] then err "active vgroup %d is empty" vid;
    List.iter
      (fun m ->
        match node_opt t m with
        | None -> err "vgroup %d contains unknown node %d" vid m
        | Some n ->
          if not (Option.equal Int.equal n.vg (Some vid)) then
            err "node %d in vgroup %d's member list but points to %s" m vid
              (match n.vg with None -> "none" | Some v -> string_of_int v))
      vg.members;
    if List.length (List.sort_uniq Int.compare vg.members) <> List.length vg.members then
      err "vgroup %d has duplicate members" vid
  end

let check_consistency t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  Atum_util.Arena.iter (fun vid vg -> check_vgroup_into t errors vid vg) t.vgroups;
  Atum_util.Arena.iter
    (fun nid n ->
      match n.vg with
      | None -> ()
      | Some vid -> (
        match vgroup_opt t vid with
        | None -> err "node %d points to unknown vgroup %d" nid vid
        | Some vg ->
          if vg.retired then err "node %d points to retired vgroup %d" nid vid
          else if not (List.mem nid vg.members) then
            err "node %d points to vgroup %d but is not a member" nid vid))
    t.nodes;
  List.iter
    (fun v ->
      match vgroup_opt t v with
      | Some vg when not vg.retired -> ()
      | _ -> err "overlay vertex %d is not an active vgroup" v)
    (Hgraph.vertices t.hgraph);
  match !errors with [] -> Ok () | es -> Error (String.concat "; " (List.rev es))

(* Incremental variant: check only the listed vgroup ids (typically
   [dirty_since] output plus fault candidates).  Member backlinks are
   covered by the per-vgroup body; every mutation that can break a
   node's pointer marks the vgroups on both ends dirty, so a sweep
   over the dirty set sees every potential violation.  Cost is
   proportional to the vgroups checked, not the system size. *)
let check_vgroups t vids =
  let errors = ref [] in
  List.iter
    (fun vid ->
      match vgroup_opt t vid with
      | None -> ()
      | Some vg -> check_vgroup_into t errors vid vg)
    vids;
  match !errors with [] -> Ok () | es -> Error (String.concat "; " (List.rev es))

let run_until t time = Engine.run ~until:time t.engine

let run_for t dt = Engine.run ~until:(now t +. dt) t.engine

(* ------------------------------------------------------------------ *)
(* Telemetry: the standard gauge set                                   *)
(* ------------------------------------------------------------------ *)

(* Store gauges read the durability layer's counters; registered from
   whichever of [attach_telemetry] / [attach_store] comes second. *)
let register_store_gauges tel store =
  let reg = Telemetry.register tel in
  reg "store.log.bytes" (fun () -> float_of_int (Replica.log_bytes store));
  reg "store.fsync.count" (fun () -> float_of_int (Replica.fsyncs store));
  reg "store.appends" (fun () -> float_of_int (Replica.appends store));
  reg "store.snapshots" (fun () -> float_of_int (Replica.snapshots store));
  reg "store.replay.entries" (fun () -> float_of_int (Replica.replayed store))

(* Every gauge only *reads* simulation state — no RNG draw, no message,
   no registry mutation — so attaching telemetry cannot perturb a
   seeded run beyond interleaving pure sampling events. *)
let attach_telemetry ?period ?capacity t =
  match t.telemetry with
  | Some tel -> tel
  | None ->
    let tel = Telemetry.create ?period ?capacity t.engine in
    let reg = Telemetry.register tel in
    let delta = Telemetry.register_delta tel in
    reg "system.size" (fun () -> float_of_int (system_size t));
    (* O(1): maintained counter.  The old gauge rebuilt (and sorted)
       the whole live-node list on every sample, which made telemetry
       cost O(N log N) per tick at scale.  [set_fast_paths false]
       restores the recount for the legacy benchmark. *)
    reg "system.byzantine" (fun () ->
        float_of_int
          (if t.fast_paths then live_byzantine_count t
           else List.length (List.filter (fun n -> n.byzantine) (live_nodes t))));
    reg "vgroup.count" (fun () -> float_of_int (vgroup_count t));
    let sizes () = vgroup_sizes t in
    reg "vgroup.size.min" (fun () ->
        match sizes () with [] -> 0.0 | s -> float_of_int (List.fold_left min max_int s));
    reg "vgroup.size.max" (fun () ->
        match sizes () with [] -> 0.0 | s -> float_of_int (List.fold_left max 0 s));
    reg "vgroup.size.mean" (fun () ->
        match sizes () with
        | [] -> 0.0
        | s -> float_of_int (List.fold_left ( + ) 0 s) /. float_of_int (List.length s));
    reg "engine.pending" (fun () -> float_of_int (Engine.pending t.engine));
    reg "net.inflight" (fun () ->
        float_of_int
          (Network.messages_sent t.net - Network.messages_delivered t.net
         - Network.messages_dropped t.net));
    delta "net.bytes.delta" (fun () -> Network.bytes_sent t.net);
    delta "net.sent.delta" (fun () -> Network.messages_sent t.net);
    List.iter
      (fun reason ->
        delta
          ("net.drop." ^ reason ^ ".delta")
          (fun () -> Metrics.counter t.metrics ("net.drop." ^ reason)))
      [ "partition"; "loss"; "no_handler" ];
    (* Sagas in flight: begins minus ends over every saga span kind.
       The counters are bumped by [span_begin]/[span_end] below. *)
    reg "saga.active" (fun () ->
        float_of_int
          (Metrics.counter t.metrics "saga.begin.total"
          - Metrics.counter t.metrics "saga.end.total"));
    delta "monitor.violation.delta" (fun () ->
        Metrics.prefix_total t.metrics "monitor.violation.");
    (match t.store with Some store -> register_store_gauges tel store | None -> ());
    Telemetry.start tel;
    t.telemetry <- Some tel;
    tel

let telemetry t = t.telemetry

(* ------------------------------------------------------------------ *)
(* Durable store attachment                                            *)
(* ------------------------------------------------------------------ *)

let attach_store ?snapshot_every t backend =
  if Option.is_some t.store then invalid_arg "System.attach_store: store already attached";
  let store =
    Replica.create ?snapshot_every
      ~key:("atum-store-" ^ string_of_int t.params.seed)
      backend
  in
  t.store <- Some store;
  (match t.telemetry with Some tel -> register_store_gauges tel store | None -> ());
  store

let store t = t.store

let set_app_state t ~export ~wipe ~import ~replay =
  t.app_export <- Some export;
  t.app_wipe <- Some wipe;
  t.app_import <- Some import;
  t.app_replay <- Some replay
