(** The Atum runtime: volatile groups over a simulated network.

    This is the engine behind the {!Atum} facade.  It owns the ground
    truth — which node is in which vgroup and the H-graph overlay —
    and mutates it only when the responsible vgroup's SMR instance has
    agreed on the change at a majority of its correct members (the
    vgroup-controller abstraction documented in DESIGN.md §4).
    Message fan-out, group-message acceptance, SMR latency, gossip,
    heartbeats and quiet-Byzantine behaviour are all simulated at
    per-node message granularity.

    Most users should go through {!Atum}; the extra surface here
    (sagas, walks, group messages, introspection of nodes and vgroups)
    exists for the workload generators, benchmarks and tests. *)

type node_id = int
type vg_id = int

(** How an adversarial node behaves (see {!make_byzantine}).  [Mute]
    is the quiet-Byzantine model of §6.1.3: heartbeat, ignore protocol
    traffic, never help dissemination.  The active strategies
    implement the attacks the paper claims to withstand:
    - [Equivocate]: re-gossip every broadcast it hears with a
      {e different} body per H-graph cycle, trying to poison delivery
      at nodes that have not yet accepted the real payload;
    - [Selective_drop p]: drop each broadcast with probability [p]
      (deterministic per (bid, node) coin), relay it faithfully
      otherwise — the gray attacker that defeats naive gossip;
    - [Flood]: periodically blast [fanout] junk direct messages of
      [size] bytes at random live nodes, burning receive capacity;
    - [Join_leave_attack]: alternate leave/rejoin to keep the
      membership machinery churning;
    - [Target_vgroup]: the §6.2 targeted attack — re-roll join
      placements until the node lands in vgroup [vg], behaving on the
      wire as [inner] (which must not itself be [Target_vgroup]).
    Per-strategy activity is counted under ["byzantine.*"] metrics
    (equivocation, selective_drop, relay, flood.sent, join_leave,
    target.attempt, target.landed). *)
type byz_strategy =
  | Mute
  | Equivocate
  | Selective_drop of float
  | Flood of { fanout : int; size : int }
  | Join_leave_attack
  | Target_vgroup of { vg : vg_id; inner : byz_strategy }

val strategy_name : byz_strategy -> string
(** Short stable name (["mute"], ["equivocate"], ...) used in metric
    keys and artifacts. *)

(** A node's runtime state.  [vg = None] means the node is not (or no
    longer) part of the system. *)
type node = {
  id : node_id;
  mutable vg : vg_id option;
  mutable byzantine : bool;
  mutable strategy : byz_strategy;
  mutable alive : bool;
  mutable exchanging : bool;
  delivered : Atum_util.Bitset.t;
      (** broadcast ids this node has delivered (or, for a Byzantine
          node, reacted to) — dense bids make a bitset 8× denser than
          the per-node hash table it replaces *)
}

type vgroup = {
  vid : vg_id;
  mutable members : node_id list;
  mutable epoch : int;  (** bumped on every reconfiguration *)
  mutable smr : smr_inst option;
  mutable busy : bool;  (** held by a shuffle / split / merge *)
  mutable shuffle_pending : bool;
  mutable retired : bool;  (** merged away or emptied *)
  mutable saga_gen : int;  (** increments when a saga takes the vgroup *)
  mutable nbrs_gen : int;  (** overlay generation the [nbrs] cache was built at *)
  mutable nbrs : (vg_id * int list) list;
      (** cached gossip view: each distinct overlay neighbor with the
          ascending list of cycles linking to it; rebuilt lazily when
          [nbrs_gen] falls behind the overlay generation *)
}

and sync_replicas = {
  by_member : (node_id, Atum_smr.Sync_smr.t) Hashtbl.t;
  in_order : (node_id * Atum_smr.Sync_smr.t) list;
      (** ascending member id, frozen at install — the round driver
          walks this instead of sorting the table every boundary *)
}

and smr_inst =
  | Smr_sync of sync_replicas
  | Smr_async of (node_id, Atum_smr.Pbft.t) Hashtbl.t

type t

type wire
(** The wire message type (SMR traffic, group-message parts, direct
    messages, heartbeats).  Abstract: inspect traffic through the
    {!Atum_sim.Network} counters. *)

(* --- construction and simulation control ---------------------------- *)

val create : ?net_config:Atum_sim.Network.config -> ?trace_capacity:int -> Params.t -> t
(** [trace_capacity] sizes the trace ring (default
    {!Atum_sim.Trace.default_capacity}; see
    {!Atum_sim.Trace.capacity_for_scale} for large runs). *)

val engine : t -> Atum_sim.Engine.t
val network : t -> wire Atum_sim.Network.t
val metrics : t -> Atum_sim.Metrics.t

val trace : t -> Atum_sim.Trace.t
(** The structured event trace shared by the engine, the network and
    the protocol layer.  Disabled by default; call
    [Atum_sim.Trace.set_enabled] to start recording. *)

val attach_telemetry :
  ?period:float -> ?capacity:int -> t -> Atum_sim.Telemetry.t
(** Register the standard gauge set (system/vgroup sizes, Byzantine
    count, engine queue depth, in-flight messages, bytes and drops per
    period, active sagas, [monitor.violation.*] deltas — 15 gauges)
    and start sampling every [period] (default
    {!Atum_sim.Telemetry.default_period}) simulated seconds.
    Idempotent: a second call returns the already-attached instance.
    Sampling only reads state, so it never perturbs a seeded run. *)

val telemetry : t -> Atum_sim.Telemetry.t option

val params : t -> Params.t
val now : t -> float
val run_until : t -> float -> unit
val run_for : t -> float -> unit

(* --- node lifecycle -------------------------------------------------- *)

val bootstrap : t -> ?byzantine:bool -> unit -> node_id
(** Create the instance: one vgroup holding one node (§3.3.1).  Starts
    the round driver for synchronous deployments.  Callable once. *)

val spawn_node : t -> ?byzantine:bool -> unit -> node_id
(** Register a node with the network and keyring without joining it. *)

val build_direct : t -> nodes:int -> unit -> node_id list
(** Bulk construction for benchmarks and large experiments: spawn
    [nodes] nodes, partition them into vgroups sized around
    [(gmin + gmax) / 2], and build the overlay directly, instead of
    running one join saga per node.  SMR instances are installed
    lazily, on the vgroup's first {!agree}/{!broadcast}.  The result
    is a settled, {!check_consistency}-clean system.  Callable once,
    in place of {!bootstrap}; returns the node ids in ascending
    order. *)

val release_node : t -> node_id -> unit
(** Return a departed node's id to the arena free list so a later
    {!spawn_node} can reuse it.  The node must be outside the system
    ([vg = None]) and not alive inside it; raises [Invalid_argument]
    otherwise.  Unregisters the node from the network and drops its
    liveness bookkeeping. *)

val set_id_recycling : t -> bool -> unit
(** When enabled, a node that completes a leave/evict saga with no
    vgroup is released automatically ({!release_node}).  Off by
    default: rejoin-style workloads (the join-leave attack) expect
    their node ids to survive departure. *)

val join : t -> joiner:node_id -> contact:node_id -> ?k:(vg_id -> unit) -> unit -> unit
(** §3.3.2 join saga; [k] fires when the joiner is installed in its
    vgroup (before the follow-up shuffle/split). *)

val leave : t -> target:node_id -> ?k:(unit -> unit) -> unit -> unit

val evict : t -> target:node_id -> ?k:(unit -> unit) -> unit -> unit

val crash : t -> node_id -> unit
(** Silence a node entirely (heartbeats included).  Reversible with
    {!recover}. *)

val recover : t -> node_id -> unit
(** Bring a crashed node back.  It resumes with whatever registry
    state it still holds: if its vgroup evicted it while it was down
    it simply idles outside the system, otherwise it rejoins protocol
    traffic where it left off.  No-op on a live node.  Counted under
    ["node.recovered"]. *)

(* --- durable replica state and crash-restart recovery ---------------- *)

type restart_report = {
  r_node : node_id;
  r_restarted_at : float;
  mutable r_rejoined_at : float option;
      (** when registry membership was re-established *)
  mutable r_caught_up_at : float option;
      (** when missed-broadcast catch-up completed *)
  r_fallback : bool;
      (** the store was corrupt: wiped, recovered via fresh join *)
  r_replayed : int;  (** WAL entries applied during the cold start *)
}

val attach_store :
  ?snapshot_every:int -> t -> Atum_store.Backend.t -> Atum_store.Replica.t
(** Attach a durable per-replica store (WAL + snapshots over
    [backend]).  From then on every broadcast delivery and registry
    pointer change is appended to the owning node's WAL, folding into
    a snapshot every [snapshot_every] (default 64) appends.  The
    snapshot HMAC key is derived from the run's seed.  Registers the
    [store.*] telemetry gauges when telemetry is (or later becomes)
    attached.  Raises [Invalid_argument] if a store is already
    attached. *)

val store : t -> Atum_store.Replica.t option

val set_app_state :
  t ->
  export:(node_id -> Atum_util.Json.t) ->
  wipe:(node_id -> unit) ->
  import:(node_id -> Atum_util.Json.t -> unit) ->
  replay:(node_id -> bid:int -> origin:node_id -> string -> unit) ->
  unit
(** Let the application above the GCS (e.g. AShare) participate in
    durability: [export] folds its per-node state into snapshots,
    [wipe]/[import] reset and restore it during {!restart}, and
    [replay] applies one logged broadcast locally (no re-broadcast, no
    [set_deliver] callback — workload counters must not double-count
    replay). *)

val restart : ?contact:node_id -> t -> node_id -> unit
(** Cold-restart a crashed node from its durable store: wipe its
    in-memory state, rebuild from snapshot + WAL (tolerating a
    truncated tail), then resume in place if the registry still lists
    it or fresh-join via [contact] (default: lowest-id live correct
    node) if it was evicted — and finally catch up on missed
    broadcasts from a correct vgroup peer.  A corrupt store (bad WAL
    record, snapshot failing authentication) is wiped and the node
    fresh-joins, counted under ["recovery.fallback"].  Raises
    [Invalid_argument] on a live node.  Instruments ["recovery.*"]
    metrics and trace events and appends a {!restart_report}. *)

val restart_reports : t -> restart_report list
(** Oldest first. *)

val make_byzantine : t -> ?strategy:byz_strategy -> node_id -> unit
(** Turn a node adversarial; [strategy] defaults to [Mute]
    (§6.1.3).  Active strategies install a periodic driver task that
    stops when the node dies.  Raises [Invalid_argument] on a
    [Selective_drop] probability outside [0, 1] or a nested
    [Target_vgroup]. *)

(* --- dissemination --------------------------------------------------- *)

val broadcast : t -> from:node_id -> string -> int
(** §3.3.4: SMR in the caller's vgroup, then gossip; returns the
    broadcast id. *)

val set_deliver : t -> (node_id -> bid:int -> origin:node_id -> string -> unit) -> unit

(** Semantic checkpoints fired synchronously where the registry or a
    node's delivery log changes — the invariant monitor subscribes via
    {!set_audit}.  [Audit_deliver.known] is whether the delivered
    broadcast id was ever issued by {!broadcast} on this instance. *)
type audit =
  | Audit_deliver of { node : node_id; bid : int; known : bool }
  | Audit_reconfig of vg_id

val set_audit : t -> (audit -> unit) option -> unit
(** At most one auditor; [None] unsubscribes. *)

val set_forward_policy :
  t -> (bid:int -> from_vg:vg_id -> cycle:int -> neighbor:vg_id -> bool) -> unit
(** Replace the gossip forward callback.  The default is
    {!random_forward}; latency-sensitive applications flood
    ({!flood_forward}), throughput-oriented ones restrict to fewer
    cycles (§3.3.4). *)

val flood_forward : bid:int -> from_vg:vg_id -> cycle:int -> neighbor:vg_id -> bool

val random_forward : bid:int -> from_vg:vg_id -> cycle:int -> neighbor:vg_id -> bool
(** Forward on a designated cycle always (deterministic delivery) and
    on every other link with probability 1/2, decided by a hash all
    members compute identically. *)

(* --- heartbeats / eviction ------------------------------------------ *)

val start_heartbeats : t -> unit
val stop_heartbeats : t -> unit

(* --- overlay protocols (exposed for tests and experiments) ----------- *)

val start_walk : ?parent:int -> t -> from_vg:vg_id -> k:(vg_id -> unit) -> unit
(** Distributed random walk: rwl group-message hops with bulk RNG,
    then backward phase (Sync) or certificate reply (Async); [k]
    receives the selected vgroup.  [parent] links the walk's trace
    span under an enclosing saga. *)

val shuffle : t -> vgroup -> unit
val split : t -> vgroup -> unit
val merge : t -> vgroup -> attempts:int -> unit

val agree :
  t -> vgroup -> ?proposer:node_id -> ?parent:int -> string -> (unit -> unit) -> unit
(** Run one operation through the vgroup's SMR; the action fires once,
    when a majority of members have executed it.  [parent] links the
    agreement's trace span under an enclosing saga. *)

(* --- introspection --------------------------------------------------- *)

val node : t -> node_id -> node
val node_opt : t -> node_id -> node option
val vgroup : t -> vg_id -> vgroup
val vgroup_opt : t -> vg_id -> vgroup option
val live_nodes : t -> node list

val system_size : t -> int
(** O(1): a maintained counter, not a registry recount (the recount —
    the pre-arena behaviour — survives under [set_fast_paths false]
    for the scale benchmark's before/after). *)

val live_byzantine_count : t -> int
(** O(1) maintained counter: Byzantine nodes among {!live_nodes}. *)

val vgroup_count : t -> int
val vgroup_ids : t -> vg_id list
(** Every vgroup id ever created, retired ones included, sorted. *)

val vgroup_sizes : t -> int list
val correct_members : t -> vgroup -> node_id list
val hgraph : t -> Atum_overlay.Hgraph.t
val check_consistency : t -> (unit, string) result

val check_vgroups : t -> vg_id list -> (unit, string) result
(** Incremental slice of {!check_consistency}: validate only the
    listed vgroups (unknown ids are skipped).  Cost is proportional to
    the vgroups checked.  Combine with {!dirty_since}. *)

val dirty_cursor : t -> int
(** Current position in the dirty log.  Hand it back to
    {!dirty_since} later to learn which vgroups changed in between. *)

val dirty_since : t -> int -> vg_id list
(** Vgroup ids touched since the cursor, deduped, ascending.  Every
    membership, liveness, retirement or Byzantine-flag change marks
    the vgroups on both ends of the transition. *)

(* --- ablation hooks --------------------------------------------------- *)

val set_shuffling : t -> bool -> unit
(** Disable/enable random-walk shuffling (fault dispersal, §3.2) while
    keeping the rest of the membership machinery — used by the
    ablation benchmark. *)

val set_fast_paths : t -> bool -> unit
(** [false] restores the pre-arena hot paths — per-delivery gossip
    target sorting and full live-list recounts in the telemetry
    gauges — so the scale benchmark can price the old behaviour.
    Defaults to [true]. *)

val byzantine_concentration : t -> float
(** Largest per-vgroup fraction of Byzantine members — the quantity
    shuffling is designed to keep low. *)
