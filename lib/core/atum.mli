(** Atum: group communication using volatile groups — public API.

    This is the paper's §3.3 interface.  An application creates an
    instance ({!bootstrap}), adds nodes ({!join}), removes them
    ({!leave}), and disseminates data ({!broadcast}); it receives
    messages through the [deliver] callback and steers gossip through
    the [forward] callback.

    The whole deployment — nodes, vgroups, SMR, the H-graph overlay —
    runs inside a deterministic discrete-event simulation; drive it
    with {!run_for} / {!run_until}. *)

type t

type node_id = int

val create :
  ?params:Params.t ->
  ?net_config:Atum_sim.Network.config ->
  ?trace_capacity:int ->
  unit ->
  t
(** A fresh, empty deployment.  Defaults to {!Params.default} (Sync)
    with the matching network model.  [trace_capacity] sizes the trace
    ring (default {!Atum_sim.Trace.default_capacity}). *)

val bootstrap : t -> node_id
(** §3.3.1: create the instance — a single vgroup containing a single
    node, neighbor to itself on every H-graph cycle.  Returns the
    bootstrap node.  Must be called exactly once. *)

val join : t -> ?byzantine:bool -> contact:node_id -> unit -> node_id
(** §3.3.2: create a node and start its join through [contact]'s
    vgroup (agreement, random-walk placement, shuffle, split when
    oversized).  Returns the new node's id immediately; the join
    completes asynchronously in simulated time — poll {!is_member} or
    use {!join_with} for a completion callback. *)

val join_with : t -> ?byzantine:bool -> contact:node_id -> on_joined:(node_id -> unit) -> unit -> node_id

val leave : t -> node_id -> unit
(** §3.3.3: agreed departure, followed by merge or shuffle. *)

val broadcast : t -> from:node_id -> string -> int
(** §3.3.4: Byzantine broadcast in the caller's vgroup, then gossip
    across the overlay.  Returns the broadcast id. *)

val on_deliver : t -> (node_id -> bid:int -> origin:node_id -> string -> unit) -> unit
(** The [deliver] application callback: invoked once per (node,
    broadcast) on first acceptance. *)

val on_forward :
  t -> (bid:int -> from_vg:int -> cycle:int -> neighbor:int -> bool) -> unit
(** The [forward] application callback (§3.3.4): decide, per H-graph
    link, whether a vgroup forwards a broadcast to that neighbor.  The
    decision must be deterministic in its arguments, as every correct
    member of the vgroup evaluates it.  Default: flood every cycle. *)

val crash : t -> node_id -> unit
(** Silence a node (it stops sending anything, including heartbeats,
    and will eventually be evicted if heartbeats are running). *)

val start_heartbeats : t -> unit
val stop_heartbeats : t -> unit

(* --- simulation control ------------------------------------------- *)

val run_for : t -> float -> unit
(** Advance simulated time by [dt] seconds. *)

val run_until : t -> float -> unit

val now : t -> float

(* --- introspection ------------------------------------------------- *)

val size : t -> int
(** Number of live nodes currently placed in a vgroup. *)

val vgroup_count : t -> int

val vgroup_sizes : t -> int list

val is_member : t -> node_id -> bool

val vgroup_of : t -> node_id -> int option

val members_of_vgroup : t -> int -> node_id list

val metrics : t -> Atum_sim.Metrics.t

val trace : t -> Atum_sim.Trace.t
(** Structured event trace (disabled unless
    [Atum_sim.Trace.set_enabled] is called). *)

val engine : t -> Atum_sim.Engine.t

val attach_telemetry :
  ?period:float -> ?capacity:int -> t -> Atum_sim.Telemetry.t
(** Attach the standard sim-time gauge set (see
    {!System.attach_telemetry}); idempotent. *)

val telemetry : t -> Atum_sim.Telemetry.t option

val messages_sent : t -> int
val bytes_sent : t -> int

val params : t -> Params.t

val check_overlay : t -> (unit, string) result
(** Verify the H-graph invariants (tests / debugging). *)

val system : t -> System.t
(** Escape hatch to the runtime internals (used by the workload
    generators and benchmarks). *)

val check_consistency : t -> (unit, string) result
(** Registry invariants: mutual membership, overlay/vgroup agreement
    (tests / debugging). *)
