(* Online invariant monitor: continuous, cheap re-checking of the
   registry properties that [System.check_consistency] asserts only
   when a test calls it.  The monitor piggybacks on the simulation in
   two ways: a periodic engine task sweeps every vgroup, and the
   [System.audit] hook re-checks the touched vgroup synchronously on
   every reconfiguration and screens every delivery.

   Violations are counted per kind under the "monitor.violation.*"
   metrics namespace, mirrored as trace events, and can optionally
   abort the run (fail-fast). *)

module Engine = Atum_sim.Engine
module Metrics = Atum_sim.Metrics
module Network = Atum_sim.Network
module Trace = Atum_sim.Trace
module Hgraph = Atum_overlay.Hgraph

type config = {
  period : float;  (* seconds between full sweeps *)
  s_lo : int;  (* inclusive lower bound on active vgroup size *)
  s_hi : int;  (* inclusive upper bound on active vgroup size *)
  fail_fast : bool;
}

let default_config (p : Params.t) =
  (* A vgroup legitimately overshoots gmax while joins pile up faster
     than its split drains it and undershoots gmin while a merge
     empties it, so the hard envelope is twice the configured maximum
     and "non-empty" — and it only applies to quiescent vgroups (no
     saga running or queued that would correct the size). *)
  { period = 5.0; s_lo = 1; s_hi = 2 * p.gmax; fail_fast = false }

exception Violation of string

type t = {
  sys : System.t;
  cfg : config;
  counts : (string, int ref) Hashtbl.t;
  seen : (System.node_id * int, unit) Hashtbl.t; (* (node, bid) delivered *)
  mutable cursor : int; (* position in the system's dirty log *)
  retained : (int, unit) Hashtbl.t; (* vgroups violating at last check *)
  mutable active : bool;
  flight : Atum_sim.Flight.t option; (* postmortem recorder to trip *)
}

let violations t =
  List.map
    (fun (k, r) -> (k, !r))
    (Atum_util.Hashtbl_ext.sorted_bindings ~cmp:String.compare t.counts)

let total t = Hashtbl.fold (fun _ r acc -> acc + !r) t.counts 0

let violate t kind ?node ?vgroup ?bid detail =
  (match Hashtbl.find_opt t.counts kind with
  | Some r -> incr r
  | None -> Hashtbl.replace t.counts kind (ref 1));
  let name = "monitor.violation." ^ kind in
  Metrics.incr (System.metrics t.sys) name;
  let trace = System.trace t.sys in
  if Trace.enabled trace then
    Trace.emit trace ~time:(System.now t.sys) ~kind:name ?node ?vgroup ?bid ();
  (* Trip the flight recorder before a fail-fast raise can unwind, so
     the postmortem captures state at the moment of the violation. *)
  (match t.flight with
  | Some fl -> Atum_sim.Flight.trip fl ~reason:name ~detail ?node ?vgroup ?bid ()
  | None -> ());
  if t.cfg.fail_fast then raise (Violation (kind ^ ": " ^ detail))

(* Size envelope, Byzantine minority, and no-traffic-to-retired for one
   vgroup.  [transient] relaxes the emptiness check: a vgroup is
   legitimately empty for the instant between losing its last member
   and being retired, and the audit hook fires inside that window. *)
let check_vgroup t ~transient vid =
  match System.vgroup_opt t.sys vid with
  | None -> ()
  | Some vg ->
    if vg.System.retired then begin
      (* The overlay must drop a vgroup before (or at the moment) it
         retires; a retired vertex would keep attracting gossip. *)
      if Hgraph.mem (System.hgraph t.sys) vid && System.vgroup_count t.sys > 0 then
        violate t "retired_reachable" ~vgroup:vid
          (Printf.sprintf "retired vgroup %d still in overlay" vid)
    end
    else begin
      let size = List.length vg.System.members in
      (* The size envelope is only meaningful for a quiescent vgroup:
         at audit time [check_size] has not run yet, and a busy or
         shuffle-pending vgroup is already being corrected (splits and
         merges re-check the size synchronously when they finish, so a
         healthy out-of-envelope vgroup is never idle). *)
      if (not transient) && (not vg.System.busy) && not vg.System.shuffle_pending
      then begin
        if size > t.cfg.s_hi then
          violate t "vg_oversize" ~vgroup:vid
            (Printf.sprintf "vgroup %d has %d members (max %d)" vid size t.cfg.s_hi);
        if size < t.cfg.s_lo then
          violate t "vg_undersize" ~vgroup:vid
            (Printf.sprintf "vgroup %d has %d members (min %d)" vid size t.cfg.s_lo)
      end;
      let byz =
        List.length
          (List.filter
             (fun m ->
               match System.node_opt t.sys m with
               | Some n -> n.System.byzantine
               | None -> false)
             vg.System.members)
      in
      if byz > 0 && 2 * byz >= size then
        violate t "byz_majority" ~vgroup:vid
          (Printf.sprintf "vgroup %d has %d Byzantine of %d members" vid byz size);
      (* Fault awareness (chaos layer): an active vgroup whose live
         members straddle a network partition cannot reach agreement,
         and a crashed member erodes its correct majority.  Both are
         counted every sweep while the fault lasts and stop accruing
         the moment the network heals / the node recovers (or is
         evicted) — which is exactly the signal the recovery
         verifier's time-to-heal measurement polls for. *)
      let net = System.network t.sys in
      let live = List.filter (fun m -> not (Network.is_crashed net m)) vg.System.members in
      (match live with
      | [] | [ _ ] -> ()
      | first :: rest ->
        let tag = Network.partition_of net first in
        if List.exists (fun m -> Network.partition_of net m <> tag) rest then
          violate t "vg_partitioned" ~vgroup:vid
            (Printf.sprintf "vgroup %d members span multiple partitions" vid));
      List.iter
        (fun m ->
          if Network.is_crashed net m then
            violate t "vg_crashed" ~node:m ~vgroup:vid
              (Printf.sprintf "vgroup %d member %d is crashed" vid m))
        vg.System.members
    end

(* One vgroup check with retention bookkeeping: a vgroup that
   violates stays in [retained] and is re-examined on every
   subsequent incremental sweep until it checks clean — persisting
   faults keep accruing exactly as they do under a full scan. *)
let check_and_retain t vid =
  Metrics.incr (System.metrics t.sys) "monitor.sweep.checked";
  let before = total t in
  check_vgroup t ~transient:false vid;
  if total t > before then Hashtbl.replace t.retained vid ()
  else Hashtbl.remove t.retained vid

let sweep t =
  let before = total t in
  List.iter (check_and_retain t) (System.vgroup_ids t.sys);
  t.cursor <- System.dirty_cursor t.sys;
  total t - before

(* Vgroups that host a faulted node right now.  Fault-kind violations
   ([vg_crashed], [vg_partitioned]) depend on network state the dirty
   log does not see, so the incremental sweep always re-checks these;
   both lists are empty (O(1)) on a healthy network. *)
let fault_candidates t =
  let net = System.network t.sys in
  let vg_of nid =
    match System.node_opt t.sys nid with Some n -> n.System.vg | None -> None
  in
  List.filter_map vg_of (Network.crashed_nodes net)
  @ List.filter_map vg_of (Network.partitioned_nodes net)

let sweep_dirty t =
  let before = total t in
  let dirty = System.dirty_since t.sys t.cursor in
  t.cursor <- System.dirty_cursor t.sys;
  let retained = Hashtbl.fold (fun v () acc -> v :: acc) t.retained [] in
  let vids =
    List.sort_uniq Int.compare
      (List.rev_append retained (List.rev_append (fault_candidates t) dirty))
  in
  List.iter (check_and_retain t) vids;
  total t - before

let on_audit t = function
  | System.Audit_reconfig vid -> check_vgroup t ~transient:true vid
  | System.Audit_deliver { node; bid; known } ->
    if not known then
      violate t "unknown_bid" ~node ~bid
        (Printf.sprintf "node %d delivered bid %d that was never broadcast" node bid);
    if Hashtbl.mem t.seen (node, bid) then
      violate t "dup_delivery" ~node ~bid
        (Printf.sprintf "node %d delivered bid %d twice" node bid)
    else Hashtbl.replace t.seen (node, bid) ()

let detach t =
  if t.active then begin
    t.active <- false;
    System.set_audit t.sys None
  end

let attach ?config ?flight sys =
  let cfg =
    match config with Some c -> c | None -> default_config (System.params sys)
  in
  if cfg.period <= 0.0 then invalid_arg "Monitor.attach: period must be positive";
  let t =
    {
      sys;
      cfg;
      counts = Hashtbl.create 8;
      seen = Hashtbl.create 1024;
      cursor = 0;
      retained = Hashtbl.create 32;
      active = true;
      flight;
    }
  in
  System.set_audit sys (Some (fun a -> if t.active then on_audit t a));
  (* The sweep only reads simulation state, so interleaving it with
     protocol events cannot perturb a seeded run's behaviour.  The
     periodic task uses the incremental variant: cost scales with the
     vgroups that changed since the last tick, not the system size. *)
  Engine.every ~label:"monitor.sweep" (System.engine sys) ~period:cfg.period (fun () ->
      if t.active then ignore (sweep_dirty t);
      t.active);
  t
