type t = System.t

type node_id = int

let create ?(params = Params.default) ?net_config ?trace_capacity () =
  System.create ?net_config ?trace_capacity params

let bootstrap t = System.bootstrap t ()

let join_with t ?(byzantine = false) ~contact ~on_joined () =
  let id = System.spawn_node t ~byzantine () in
  System.join t ~joiner:id ~contact ~k:(fun _vid -> on_joined id) ();
  id

let join t ?byzantine ~contact () = join_with t ?byzantine ~contact ~on_joined:ignore ()

let leave t nid = System.leave t ~target:nid ()

let broadcast t ~from body = System.broadcast t ~from body

let on_deliver t f = System.set_deliver t f

let on_forward t f = System.set_forward_policy t f

let crash t nid = System.crash t nid

let start_heartbeats = System.start_heartbeats
let stop_heartbeats = System.stop_heartbeats

let run_for = System.run_for
let run_until = System.run_until
let now = System.now

let size = System.system_size
let vgroup_count = System.vgroup_count
let vgroup_sizes = System.vgroup_sizes

let is_member t nid =
  match System.node_opt t nid with
  | Some n -> n.System.alive && n.System.vg <> None
  | None -> false

let vgroup_of t nid =
  match System.node_opt t nid with Some n -> n.System.vg | None -> None

let members_of_vgroup t vid =
  match System.vgroup_opt t vid with Some vg -> vg.System.members | None -> []

let metrics = System.metrics
let trace = System.trace
let engine = System.engine
let attach_telemetry = System.attach_telemetry
let telemetry = System.telemetry

let messages_sent t = Atum_sim.Network.messages_sent (System.network t)
let bytes_sent t = Atum_sim.Network.bytes_sent (System.network t)

let params = System.params

let check_overlay t = Atum_overlay.Hgraph.check_invariants (System.hgraph t)

let system t = t

let check_consistency = System.check_consistency
