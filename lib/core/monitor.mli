(** Online invariant monitor.

    Continuously re-checks the registry properties that
    {!System.check_consistency} asserts only on demand: vgroup sizes
    inside a configured envelope, Byzantine members in the minority of
    every vgroup, no delivery of a broadcast id that was never issued,
    no duplicate delivery per node, and no retired vgroup still
    reachable in the overlay.  Checks run from a periodic engine task
    ({!config.period}) and synchronously from the {!System.audit}
    hook on every reconfiguration and delivery.

    Each violation increments a ["monitor.violation.<kind>"] counter
    in the system's metrics, emits a trace event of the same kind, and
    — with [fail_fast] — raises {!Violation}.  Kinds: [vg_oversize],
    [vg_undersize], [byz_majority], [unknown_bid], [dup_delivery],
    [retired_reachable], plus two fault-aware kinds for the chaos
    layer: [vg_partitioned] (an active vgroup's live members straddle
    a network partition) and [vg_crashed] (a member is in the crashed
    set).  The fault-aware kinds accrue on every sweep while the fault
    lasts and stop the moment the network heals — the recovery
    verifier ({!Atum_workload.Resilience}) polls {!sweep} for exactly
    that transition. *)

type config = {
  period : float;  (** seconds between full sweeps *)
  s_lo : int;  (** inclusive lower bound on active vgroup size *)
  s_hi : int;  (** inclusive upper bound on active vgroup size *)
  fail_fast : bool;  (** raise {!Violation} on the first violation *)
}

val default_config : Params.t -> config
(** period 5s, size envelope [\[1, 2*gmax\]], no fail-fast.  The
    envelope is enforced only for quiescent vgroups — one with a saga
    running ([busy]) or queued ([shuffle_pending]) is already being
    corrected, and splits/merges re-check the size synchronously when
    they finish. *)

exception Violation of string

type t

val attach : ?config:config -> ?flight:Atum_sim.Flight.t -> System.t -> t
(** Subscribe to the system's audit hook (displacing any previous
    auditor) and schedule the periodic sweep.  The monitor only reads
    simulation state, so attaching it never changes the behaviour of a
    seeded run.  When [flight] is given, the first violation trips the
    flight recorder (before any fail-fast raise unwinds), so the
    postmortem captures the state at the moment of failure. *)

val sweep : t -> int
(** Check every vgroup now (the ground-truth full scan); returns the
    number of new violations. *)

val sweep_dirty : t -> int
(** Incremental sweep: check only vgroups touched since the last
    sweep (the system's dirty log), vgroups hosting a currently
    crashed or partitioned node, and vgroups that violated on the
    previous check (retained until they check clean, so persisting
    faults keep accruing like they do under {!sweep}).  Cost is
    proportional to that set, not the system size — each vgroup
    examined bumps the ["monitor.sweep.checked"] metric.  The
    periodic task {!attach} schedules uses this variant. *)

val violations : t -> (string * int) list
(** Per-kind violation counts, sorted by kind. *)

val total : t -> int

val detach : t -> unit
(** Unsubscribe from the audit hook and let the periodic task lapse. *)
