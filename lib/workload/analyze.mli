(** Post-hoc causal analysis of a traced run.

    Reconstructs per-broadcast dissemination trees from the
    ["bcast.hop"] lineage events, first-delivery latency and
    redundancy from the delivery events, per-saga duration percentiles
    from the ["saga.*.begin"/".end"] span pairs, and the
    invariant-violation summary from the ["monitor.violation.*"]
    metrics counters.  Consumes either a live trace (allocation-free,
    via [Trace.iter]) or an [ATUM_*.json] artifact written by
    [atum-cli --json].

    The trace ring drops its oldest events when full, so results are
    best-effort by construction: bids whose ["broadcast.sent"] root
    was overwritten are counted as [orphan_bids], hops whose sender
    depth is unknown as [incomplete_hops], and the per-kind dropped
    counts are carried through. *)

type tree = {
  bid : int;
  origin : int;  (** broadcasting node, [-1] if unknown *)
  root_vg : int;  (** origin vgroup, [-1] if unknown *)
  sent_at : float;
  deliveries : int;
  dups : int;  (** redundant receives of this bid *)
  depth0 : int;  (** deliveries in the origin vgroup (SMR phase) *)
  max_depth : int;  (** deepest gossip hop in the tree *)
  incomplete_hops : int;  (** hops whose sender depth was unknown *)
}

type saga_stats = {
  saga : string;
  completed : int;
  unmatched : int;  (** begun but never ended within the trace window *)
  d_p50 : float;
  d_p90 : float;
  d_max : float;
}

type result = {
  trees : tree list;  (** sorted by bid; only bids with a known root *)
  orphan_bids : int;  (** bids with hops/deliveries but no root event *)
  deliveries : int;
  dups : int;
  redundancy : float;  (** dups / deliveries *)
  hop_hist : (int * int) list;  (** depth -> first-delivery count *)
  latency_cdf : (float * float) list;  (** empirical first-delivery CDF *)
  latency_p : (string * float) list;  (** p50/p90/p99/max *)
  sagas : saga_stats list;  (** sorted by saga name *)
  violations : (string * int) list;
      (** per kind, the max of the [monitor.violation.*] metrics
          counter and the trace evidence (violation events in the
          window plus those the ring dropped) — the counters alone can
          undercount when a workload clears the metrics mid-run *)
  violations_total : int;
  byzantine_events : (string * int) list;
      (** adversary activity seen in the trace window, by full kind
          ([byzantine.equivocate], [byzantine.selective_drop],
          [byzantine.target.landed], ...), sorted *)
  fault_events : (string * int) list;
      (** injected chaos-layer faults ([fault.partition],
          [fault.heal], [fault.crash], ...), sorted *)
  events_seen : int;
  dropped_total : int;
  dropped_by_kind : (string * int) list;
  sample_rate : float;  (** trace sampling rate in force, 1.0 = everything *)
  sampled_out_total : int;  (** events suppressed by sampling/level *)
  sampled_out_by_kind : (string * int) list;
  trace_truncated : bool;
      (** ring wrapped or sampling suppressed events: CDFs, hop
          histograms and redundancy are estimates over the surviving
          fraction, not exact counts *)
}

val of_trace : Atum_sim.Trace.t -> metrics:Atum_sim.Metrics.t -> result
(** Analyze a live run; violations are read from the metrics
    counters. *)

val of_artifact : Atum_util.Json.t -> (result, string) Stdlib.result
(** Analyze a parsed [ATUM_*.json] artifact (needs its [trace]
    member, i.e. a run with [--json]). *)

val load_file : string -> (result, string) Stdlib.result
(** Read and parse an artifact file, then {!of_artifact}. *)

val to_json : result -> Atum_util.Json.t
(** Machine-readable form; see EXPERIMENTS.md for the schema.
    Includes a [trace_truncated] flag and a [sampling] section
    ([{rate; sampled_out; sampled_out_by_kind; estimates}]) so lossy
    analyses are labeled as estimates. *)

val pp : Format.formatter -> result -> unit
(** Human-readable multi-line summary. *)

(** {2 Shared trace-parsing helpers} *)

val event_of_json : Atum_util.Json.t -> Atum_sim.Trace.event option
(** Parse one event object of an artifact's [trace.events] array
    (negative-id fields restored from absence). *)

val saga_of_kind : string -> (string * bool) option
(** ["saga.<name>.begin"] -> [Some (<name>, true)],
    ["saga.<name>.end"] -> [Some (<name>, false)], else [None]. *)
