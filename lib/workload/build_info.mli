(** Provenance stamped into every JSON artifact: without it, a
    directory of [ATUM_*.json] / [BENCH_*.json] files from different
    checkouts or command lines is unattributable.

    All fields are stable within one checkout and command, so
    embedding them keeps same-seed artifacts byte-identical. *)

val version : string
(** The tool version reported by [atum-cli --version]. *)

val git_describe : unit -> string
(** [git describe --always --dirty] at first use (cached); ["unknown"]
    when git or the repository is unavailable. *)

val to_json :
  ?extra:(string * Atum_util.Json.t) list ->
  cmdline:string list ->
  seed:int ->
  unit ->
  Atum_util.Json.t
(** The [build_info] object: [{version; git; seed; cmdline;
    schema_version; ...extra}]. *)
