(** Recovery verification under scripted chaos (the `atum-cli chaos`
    experiment).

    Runs an {!Atum_sim.Fault} schedule — plus, optionally, targeted
    equivocating attackers ({!Atum_core.System.Target_vgroup}) —
    against a grown deployment while a steady broadcast workload
    measures delivery success before, during and after the faults.
    After each heal step a convergence checker polls
    {!Atum_core.System.check_consistency} and a fresh
    {!Atum_core.Monitor.sweep} until both come back clean, recording
    the time-to-heal.  Same seed and schedule produce byte-identical
    results. *)

type phase_stats = {
  phase : string;  (** "before" | "during" | "after" *)
  broadcasts : int;
  expected : int;
      (** sum over sends of the live correct-member count at send
          time: every correct member is expected to deliver *)
  delivered : int;
  success : float;  (** delivered / expected; the "during" dip is the fault's cost *)
}

type heal_record = {
  heal_at : float;  (** simulated time the heal/recover step fired *)
  converged_at : float option;
      (** first poll at which consistency was [Ok] and a monitor sweep
          added zero violations; [None] if the window closed first
          (the next fault step arrived, or [heal_timeout] expired) *)
  time_to_heal : float option;
}

type result = {
  n : int;
  seed : int;
  target_vg : int;  (** vgroup the attackers concentrate on; -1 = none *)
  attackers : int;
  schedule : Atum_sim.Fault.schedule;
  faults_applied : int;
  phases : phase_stats list;
  heals : heal_record list;  (** one per heal/recover step, in schedule order *)
  tth_percentiles : (string * float) list;  (** p50/p90/max over converged heals *)
  restarts : Atum_core.System.restart_report list;
      (** one per {!Atum_core.System.restart}, oldest first *)
  ttr_percentiles : (string * float) list;
      (** p50/p90/max time-to-rejoin (restart to registry membership) *)
  ttc_percentiles : (string * float) list;
      (** p50/p90/max time-to-catch-up (restart to missed broadcasts
          re-delivered) *)
  recovery_fallbacks : int;
      (** restarts whose store was corrupt and fell back to a fresh join *)
  violations_before : (string * int) list;
  violations_during : (string * int) list;  (** new violations while faults ran *)
  violations_after : (string * int) list;  (** new violations after the last heal window *)
  post_heal_deliveries : int;  (** the network's [net.deliver.post_heal] counter *)
  consistency : (unit, string) Stdlib.result;  (** final [check_consistency] *)
  converged : bool;
      (** the final heal's window reached a clean poll (or the
          end-of-run check was clean) *)
  postmortem : string option;
      (** path of the [ATUM_postmortem.json] the flight recorder
          dumped, when one was armed and tripped *)
}

val default_schedule : Builder.built -> Atum_sim.Fault.schedule
(** The acceptance scenario, built against the live registry:
    partition half of the largest vgroup's replicas at t+10s, crash
    one correct member in each of two other vgroups at t+30s, heal at
    t+150s, recover at t+170s. *)

val default_restart_schedule : Builder.built -> Atum_sim.Fault.schedule
(** {!default_schedule} with the two crash victims cold-restarted
    instead of crashed-and-recovered: down at t+30s, back at t+170s
    through [System.restart] (durable recovery, rejoin, catch-up). *)

val run :
  ?messages_per_phase:int ->
  ?gap:float ->
  ?attackers:int ->
  ?schedule:Atum_sim.Fault.schedule ->
  ?heal_timeout:float ->
  ?drain:float ->
  ?flight_dir:string ->
  ?restart:bool ->
  ?corrupt_log:bool ->
  Builder.built ->
  seed:int ->
  unit ->
  result
(** Attach a fresh monitor (displacing any earlier auditor — build
    with [~monitor:false]), spawn [attackers] (default 0)
    [Target_vgroup]+[Equivocate] adversaries aimed at the largest
    vgroup, install [schedule] (default {!default_schedule}), and
    drive [messages_per_phase] (default 10) broadcasts spaced [gap]
    (default 5s) through each phase.  Convergence polling after each
    heal is bounded by [heal_timeout] (default 600s) and by the next
    scheduled fault step; the run ends with a [drain] (default 180s)
    quiet period before the final consistency check.

    When [flight_dir] is given (or the build carried an armed
    recorder), an {!Atum_sim.Flight} recorder is wired into the
    monitor: the first violation dumps [ATUM_postmortem.json] into
    the directory, and a run that ends with an unconverged heal trips
    the recorder with reason ["fault.unhealed"].

    [restart] (default false) attaches an in-sim durable store and
    swaps the default schedule for {!default_restart_schedule}, so the
    victims come back through cold restart + WAL replay + catch-up.
    [corrupt_log] (default false, implies the store) additionally
    flips one byte in the first victim's WAL while it is down, forcing
    its restart into the wipe-and-fresh-join fallback (counted in
    [recovery_fallbacks]).  Note a restarted node's catch-up
    re-delivers broadcasts it already delivered before going down when
    its delivered-set was lost (fallback case), so phase success can
    exceed 1.0 — evidence of catch-up, not a bug. *)

val to_json : result -> Atum_util.Json.t
(** The ["resilience"] member of [ATUM_resilience.json] — schema
    documented in EXPERIMENTS.md. *)
