module Json = Atum_util.Json

(* 2: trace events gained correlation fields (bid/span/parent/cycle),
   trace objects gained dropped_by_kind, and ATUM_analyze.json
   artifacts exist.
   3: every artifact embeds a build_info provenance object, growth
   rows may carry a telemetry timeseries, and ATUM_timeseries.json
   artifacts (gauge series + engine profile) exist.
   4: the chaos layer — ATUM_resilience.json artifacts (fault
   schedule, per-phase delivery success, time-to-heal), fault.* and
   byzantine.* trace/metric namespaces, and byzantine_events /
   fault_events sections in ATUM_analyze.json.
   5: the observability layer — trace objects gain sampling fields
   (sample_rate, sampled_out, sampled_out_by_kind, admitted_by_kind),
   ATUM_<cmd>.json artifacts gain a top-level profile section,
   ATUM_resilience.json a postmortem member, ATUM_analyze.json a
   trace_truncated flag and sampling section, plus the new
   ATUM_postmortem.json and ATUM_compare.json artifact families. *)
let schema_version = 5

(* Wall-clock time is the only nondeterministic field in a benchmark
   artifact; zeroing it (ATUM_BENCH_JSON_CANON) makes same-seed runs
   byte-identical, which is what the determinism guard and any
   CI-level BENCH_*.json diffing rely on. *)
let canonical () =
  match Sys.getenv_opt "ATUM_BENCH_JSON_CANON" with
  | Some ("" | "0") | None -> false
  | Some _ -> true

let envelope ?(cmdline = []) ~fig ~scale ~seed ~wall_s ?(extra = []) ~rows () =
  let wall_s = if canonical () then 0.0 else wall_s in
  Json.Obj
    ([
       ("schema_version", Json.Int schema_version);
       ("fig", Json.String fig);
       ("scale", Json.String scale);
       ("seed", Json.Int seed);
       ("build_info", Build_info.to_json ~cmdline ~seed ());
       ("wall_s", Json.Float wall_s);
     ]
    @ extra
    @ [ ("rows", Json.List rows) ])

let filename ~fig = Printf.sprintf "BENCH_%s.json" fig

let write ~dir ~fig json =
  let path = Filename.concat dir (filename ~fig) in
  Json.write_file ~path json;
  path

let growth_row ~protocol ~target (r : Growth.result) =
  Json.Obj
    ([
      ("protocol", Json.String protocol);
      ("target", Json.Int target);
      ("final_size", Json.Int r.Growth.final_size);
      ("duration_s", Json.Float r.duration);
      ("reached_target", Json.Bool r.reached_target);
      ("join_latency_p50_s", Json.Float r.join_latency_p50);
      ("join_latency_p90_s", Json.Float r.join_latency_p90);
      ("exchanges_completed", Json.Int r.exchanges_completed);
      ("exchanges_suppressed", Json.Int r.exchanges_suppressed);
      ("completion_rate", Json.Float r.completion_rate);
      ("engine_events", Json.Int r.events_processed);
      ( "curve",
        Json.List
          (List.map
             (fun (p : Growth.point) ->
               Json.Obj [ ("t", Json.Float p.Growth.time); ("size", Json.Int p.Growth.size) ])
             r.curve) );
    ]
    @ match r.Growth.timeseries with None -> [] | Some ts -> [ ("timeseries", ts) ])

let latency_row ~label (r : Latency_exp.result) =
  let lats = r.Latency_exp.latencies in
  let pct p = if lats = [] then Json.Null else Json.Float (Atum_util.Stats.percentile lats p) in
  Json.Obj
    [
      ("label", Json.String label);
      ("n", Json.Int (List.length lats));
      ("p10_s", pct 10.0);
      ("p50_s", pct 50.0);
      ("p90_s", pct 90.0);
      ("p99_s", pct 99.0);
      ( "max_s",
        if lats = [] then Json.Null else Json.Float (List.fold_left max 0.0 lats) );
      ("delivery_fraction", Json.Float r.delivery_fraction);
    ]

(* ------------------------------------------------------------------ *)
(* Rendering ATUM_timeseries.json: gauge timelines + engine profile    *)
(* ------------------------------------------------------------------ *)

let spark_levels = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
                      "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]

let sparkline ?(width = 60) xs =
  match xs with
  | [] -> ""
  | _ ->
    let xs = Array.of_list xs in
    let n = Array.length xs in
    let width = min width n in
    (* Downsample by averaging equal slices so spikes survive zoom-out
       better than point sampling would. *)
    let cell i =
      let lo = i * n / width and hi = max ((i + 1) * n / width) ((i * n / width) + 1) in
      let sum = ref 0.0 in
      for j = lo to hi - 1 do
        sum := !sum +. xs.(j)
      done;
      !sum /. float_of_int (hi - lo)
    in
    let cells = Array.init width cell in
    let mn = Array.fold_left min cells.(0) cells in
    let mx = Array.fold_left max cells.(0) cells in
    let span = mx -. mn in
    let buf = Buffer.create (width * 3) in
    Array.iter
      (fun v ->
        let level =
          if span <= 0.0 then 0
          else
            let l = int_of_float (7.99 *. ((v -. mn) /. span)) in
            if l < 0 then 0 else if l > 7 then 7 else l
        in
        Buffer.add_string buf spark_levels.(level))
      cells;
    Buffer.contents buf

let stats_of xs =
  match xs with
  | [] -> (0.0, 0.0, 0.0, 0.0)
  | x :: _ ->
    let mn = List.fold_left min x xs in
    let mx = List.fold_left max x xs in
    let mean = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
    let last = List.nth xs (List.length xs - 1) in
    (mn, mean, mx, last)

let render_timeseries fmt json =
  match Atum_sim.Telemetry.of_json json with
  | Error _ as e -> e
  | Ok r ->
    let t_lo, t_hi =
      match r.Atum_sim.Telemetry.r_times with
      | [] -> (0.0, 0.0)
      | t :: _ -> (t, List.nth r.r_times (List.length r.r_times - 1))
    in
    Format.fprintf fmt "gauges: %d, samples kept: %d of %d, sim-time %.0f..%.0f s (period %.1f s)@."
      (List.length r.r_gauges) (List.length r.r_times) r.r_samples_total t_lo t_hi r.r_period;
    List.iter
      (fun (name, xs) ->
        let mn, mean, mx, last = stats_of xs in
        Format.fprintf fmt "  %-28s %s@."
          name (sparkline xs);
        Format.fprintf fmt "  %-28s min=%g mean=%.2f max=%g last=%g@." "" mn mean mx last)
      r.r_gauges;
    Ok ()

(* One parsed row of the artifact's ["profile"]["labels"] list. *)
type profile_row = {
  pr_label : string;
  pr_events : int;
  pr_wall_s : float;
  pr_vt_first : float;
  pr_vt_last : float;
  pr_busiest_bucket : int;
}

let profile_rows json =
  let err msg = Error ("Report.profile_rows: " ^ msg) in
  match Json.member "labels" json with
  | Some (Json.List rows) ->
    let parse j =
      let str k = match Json.member k j with Some (Json.String s) -> Some s | _ -> None in
      let int k = match Json.member k j with Some (Json.Int i) -> Some i | _ -> None in
      let flt k =
        match Json.member k j with
        | Some (Json.Float f) -> Some f
        | Some (Json.Int i) -> Some (float_of_int i)
        | _ -> None
      in
      match (str "label", int "events", flt "wall_self_s", flt "vt_first", flt "vt_last") with
      | Some pr_label, Some pr_events, Some pr_wall_s, Some pr_vt_first, Some pr_vt_last ->
        let pr_busiest_bucket =
          match Json.member "delay_hist" j with
          | Some (Json.List hs) ->
            List.fold_left
              (fun (best, best_n) h ->
                match (Json.member "bucket" h, Json.member "count" h) with
                | Some (Json.Int b), Some (Json.Int n) when n > best_n -> (b, n)
                | _ -> (best, best_n))
              (0, 0) hs
            |> fst
          | _ -> 0
        in
        Ok { pr_label; pr_events; pr_wall_s; pr_vt_first; pr_vt_last; pr_busiest_bucket }
      | _ -> err "malformed label row"
    in
    List.fold_left
      (fun acc j ->
        match (acc, parse j) with
        | Ok rows, Ok r -> Ok (r :: rows)
        | (Error _ as e), _ | _, (Error _ as e) -> e)
      (Ok []) rows
    |> Result.map (fun rows ->
           (* Self-time first; with the wall clock off (all zeros) the
              event count decides, so the table is still ranked. *)
           List.sort
             (fun a b ->
               match Float.compare b.pr_wall_s a.pr_wall_s with
               | 0 -> (
                 match Int.compare b.pr_events a.pr_events with
                 | 0 -> String.compare a.pr_label b.pr_label
                 | c -> c)
               | c -> c)
             rows)
  | Some _ -> err "labels is not a list"
  | None -> err "missing labels"

let render_profile fmt json =
  match profile_rows json with
  | Error _ as e -> e
  | Ok rows ->
    let wall_on =
      match Json.member "wall_clock_enabled" json with
      | Some (Json.Bool b) -> b
      | _ -> false
    in
    let total =
      match Json.member "events_total" json with Some (Json.Int n) -> n | _ -> 0
    in
    Format.fprintf fmt "engine profile: %d events, %d labels%s@." total (List.length rows)
      (if wall_on then "" else " (wall clock off: self-times zero, ranked by events)");
    Format.fprintf fmt "  %-20s %10s %12s %10s %10s %s@." "label" "events" "self (ms)"
      "vt first" "vt last" "typ delay";
    List.iter
      (fun r ->
        let lo = Atum_sim.Engine.delay_bucket_lo r.pr_busiest_bucket in
        Format.fprintf fmt "  %-20s %10d %12.2f %10.0f %10.0f %s@." r.pr_label r.pr_events
          (1000.0 *. r.pr_wall_s) r.pr_vt_first r.pr_vt_last
          (if lo <= 0.0 then "immediate" else Printf.sprintf ">=%gs" lo))
      rows;
    Ok ()

let render_artifact_header fmt json =
  let hdr k =
    match Json.member k json with
    | Some (Json.String s) -> s
    | Some (Json.Int i) -> string_of_int i
    | _ -> "?"
  in
  Format.fprintf fmt "artifact         : cmd=%s seed=%s schema=%s@." (hdr "cmd") (hdr "seed")
    (hdr "schema_version");
  match Json.member "build_info" json with
  | Some bi ->
    let f k = match Json.member k bi with Some (Json.String s) -> s | _ -> "?" in
    Format.fprintf fmt "build            : %s (git %s)@." (f "version") (f "git")
  | None -> ()

(* The full ATUM_timeseries.json artifact: provenance header, gauge
   timelines, then the per-label engine profile. *)
let render_timeseries_artifact fmt json =
  render_artifact_header fmt json;
  match Json.member "timeseries" json with
  | None -> Error "Report.render_timeseries_artifact: missing timeseries section"
  | Some ts -> (
    match render_timeseries fmt ts with
    | Error _ as e -> e
    | Ok () -> (
      match Json.member "profile" json with
      | None -> Error "Report.render_timeseries_artifact: missing profile section"
      | Some p -> render_profile fmt p))

(* ------------------------------------------------------------------ *)
(* Rendering ATUM_resilience.json                                      *)
(* ------------------------------------------------------------------ *)

let json_num = function
  | Json.Float f -> Some f
  | Json.Int i -> Some (float_of_int i)
  | Json.Null | Json.Bool _ | Json.String _ | Json.List _ | Json.Obj _ -> None

let render_resilience fmt r =
  let num k j = Option.bind (Json.member k j) json_num in
  let int_of k j = match Json.member k j with Some (Json.Int i) -> Some i | _ -> None in
  (match (int_of "n" r, int_of "attackers" r, int_of "target_vg" r) with
  | Some n, Some a, Some tv ->
    Format.fprintf fmt "deployment       : %d nodes, %d targeted attackers%s@." n a
      (if tv >= 0 then Printf.sprintf " (target vgroup %d)" tv else "")
  | _ -> ());
  (match Json.member "schedule" r with
  | Some (Json.List steps) ->
    Format.fprintf fmt "fault schedule   : %d steps@." (List.length steps);
    List.iter
      (fun s ->
        let name =
          match Json.member "step" s with Some (Json.String x) -> x | _ -> "?"
        in
        Format.fprintf fmt "  %-8s %s@."
          (Printf.sprintf "t+%.0fs" (Option.value ~default:0.0 (num "after_s" s)))
          name)
      steps
  | _ -> ());
  (match Json.member "phases" r with
  | Some (Json.List phases) ->
    Format.fprintf fmt "delivery success :@.";
    List.iter
      (fun p ->
        let name =
          match Json.member "phase" p with Some (Json.String x) -> x | _ -> "?"
        in
        Format.fprintf fmt "  %-8s %5.1f%%  (%d broadcasts, %.0f/%.0f deliveries)@." name
          (100.0 *. Option.value ~default:0.0 (num "success" p))
          (Option.value ~default:0 (int_of "broadcasts" p))
          (Option.value ~default:0.0 (num "observed_deliveries" p))
          (Option.value ~default:0.0 (num "expected_deliveries" p)))
      phases
  | _ -> ());
  (match Json.member "heals" r with
  | Some (Json.List heals) ->
    Format.fprintf fmt "heals            :@.";
    List.iter
      (fun h ->
        let at =
          Printf.sprintf "t=%.0fs" (Option.value ~default:0.0 (num "heal_at_s" h))
        in
        match num "time_to_heal_s" h with
        | Some d -> Format.fprintf fmt "  heal at %-8s converged in %.0f s@." at d
        | None ->
          Format.fprintf fmt "  heal at %-8s window closed before convergence@." at)
      heals
  | _ -> ());
  (match Json.member "time_to_heal_percentiles" r with
  | Some (Json.Obj ps) when ps <> [] ->
    Format.fprintf fmt "time-to-heal     :";
    List.iter
      (fun (k, v) ->
        match json_num v with
        | Some f -> Format.fprintf fmt " %s=%.0fs" k f
        | None -> ())
      ps;
    Format.fprintf fmt "@."
  | _ -> ());
  (match Json.member "violations" r with
  | Some vs ->
    let count label =
      match Json.member label vs with
      | Some (Json.Obj kinds) ->
        List.fold_left
          (fun acc (_, v) -> match v with Json.Int n -> acc + n | _ -> acc)
          0 kinds
      | _ -> 0
    in
    Format.fprintf fmt "violations       : before=%d during=%d after=%d@." (count "before")
      (count "during") (count "after")
  | None -> ());
  let consistency =
    match Json.member "consistency" r with Some (Json.String s) -> s | _ -> "?"
  in
  let converged =
    match Json.member "converged" r with Some (Json.Bool b) -> b | _ -> false
  in
  Format.fprintf fmt "recovery         : consistency=%s converged=%b@." consistency converged

(* An ATUM_resilience.json artifact: header plus the resilience
   summary (falls through to the timeseries renderer otherwise, so
   `atum-cli report` takes either artifact kind). *)
let render_resilience_artifact fmt json =
  match Json.member "resilience" json with
  | None -> Error "Report.render_resilience_artifact: missing resilience section"
  | Some r ->
    render_artifact_header fmt json;
    render_resilience fmt r;
    Ok ()
