module Json = Atum_util.Json

(* 2: trace events gained correlation fields (bid/span/parent/cycle),
   trace objects gained dropped_by_kind, and ATUM_analyze.json
   artifacts exist. *)
let schema_version = 2

(* Wall-clock time is the only nondeterministic field in a benchmark
   artifact; zeroing it (ATUM_BENCH_JSON_CANON) makes same-seed runs
   byte-identical, which is what the determinism guard and any
   CI-level BENCH_*.json diffing rely on. *)
let canonical () =
  match Sys.getenv_opt "ATUM_BENCH_JSON_CANON" with
  | Some ("" | "0") | None -> false
  | Some _ -> true

let envelope ~fig ~scale ~seed ~wall_s ?(extra = []) ~rows () =
  let wall_s = if canonical () then 0.0 else wall_s in
  Json.Obj
    ([
       ("schema_version", Json.Int schema_version);
       ("fig", Json.String fig);
       ("scale", Json.String scale);
       ("seed", Json.Int seed);
       ("wall_s", Json.Float wall_s);
     ]
    @ extra
    @ [ ("rows", Json.List rows) ])

let filename ~fig = Printf.sprintf "BENCH_%s.json" fig

let write ~dir ~fig json =
  let path = Filename.concat dir (filename ~fig) in
  Json.write_file ~path json;
  path

let growth_row ~protocol ~target (r : Growth.result) =
  Json.Obj
    [
      ("protocol", Json.String protocol);
      ("target", Json.Int target);
      ("final_size", Json.Int r.Growth.final_size);
      ("duration_s", Json.Float r.duration);
      ("reached_target", Json.Bool r.reached_target);
      ("join_latency_p50_s", Json.Float r.join_latency_p50);
      ("join_latency_p90_s", Json.Float r.join_latency_p90);
      ("exchanges_completed", Json.Int r.exchanges_completed);
      ("exchanges_suppressed", Json.Int r.exchanges_suppressed);
      ("completion_rate", Json.Float r.completion_rate);
      ("engine_events", Json.Int r.events_processed);
      ( "curve",
        Json.List
          (List.map
             (fun (p : Growth.point) ->
               Json.Obj [ ("t", Json.Float p.Growth.time); ("size", Json.Int p.Growth.size) ])
             r.curve) );
    ]

let latency_row ~label (r : Latency_exp.result) =
  let lats = r.Latency_exp.latencies in
  let pct p = if lats = [] then Json.Null else Json.Float (Atum_util.Stats.percentile lats p) in
  Json.Obj
    [
      ("label", Json.String label);
      ("n", Json.Int (List.length lats));
      ("p10_s", pct 10.0);
      ("p50_s", pct 50.0);
      ("p90_s", pct 90.0);
      ("p99_s", pct 99.0);
      ( "max_s",
        if lats = [] then Json.Null else Json.Float (List.fold_left max 0.0 lats) );
      ("delivery_fraction", Json.Float r.delivery_fraction);
    ]
