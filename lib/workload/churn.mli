(** Continuous-churn workload for Fig 7: constantly remove and re-join
    nodes and find the highest rate the system sustains. *)

type probe_result = {
  rate_per_min : float;  (** re-joins per simulated minute *)
  joins_started : int;
  joins_completed : int;
  size_before : int;
  size_after : int;
  sustained : bool;
  consistency : (unit, string) result;
      (** [System.check_consistency] after the probe's grace period *)
}

val probe :
  ?sustain_completion:float ->
  ?sustain_drift:float ->
  Builder.built ->
  rate_per_min:float ->
  duration:float ->
  seed:int ->
  probe_result
(** Churn an existing deployment at a fixed rate for [duration]
    simulated seconds: at every churn event, one random member leaves
    and one fresh node joins through a random contact.  Sustained
    means at least [sustain_completion] (default 0.85) of the started
    joins completed (the rest may be in flight or lost to vgroups that
    vanished mid-saga) and the system size drifted by at most
    [sustain_drift] (default 0.10, a fraction of the starting size,
    floored at 2 nodes).  Resilience runs loosen both to reuse the
    probe while faults are active.  Raises [Invalid_argument] on a
    completion fraction outside [0, 1] or a negative drift. *)

val max_sustained :
  ?rates:float list ->
  ?duration:float ->
  ?sustain_completion:float ->
  ?sustain_drift:float ->
  Builder.built ->
  seed:int ->
  float * probe_result list
(** Walk an increasing rate ladder (default: fractions of the system
    size per minute) and return the highest sustained rate in
    re-joins/minute, plus every probe.  Between probes the system gets
    slack time to settle. *)
