module Atum = Atum_core.Atum
module System = Atum_core.System

type probe_result = {
  rate_per_min : float;
  joins_started : int;
  joins_completed : int;
  size_before : int;
  size_after : int;
  sustained : bool;
  consistency : (unit, string) result;
}

let live_ids atum =
  List.map (fun (n : System.node) -> n.System.id) (System.live_nodes (Atum.system atum))

let probe ?(sustain_completion = 0.85) ?(sustain_drift = 0.10) (built : Builder.built)
    ~rate_per_min ~duration ~seed =
  if sustain_completion < 0.0 || sustain_completion > 1.0 then
    invalid_arg "Churn.probe: sustain_completion outside [0, 1]";
  if sustain_drift < 0.0 then invalid_arg "Churn.probe: negative sustain_drift";
  let atum = built.Builder.atum in
  let rng = Atum_util.Rng.create seed in
  let size_before = Atum.size atum in
  let interval = 60.0 /. rate_per_min in
  let started = ref 0 in
  let completed = ref 0 in
  let deadline = Atum.now atum +. duration in
  while Atum.now atum < deadline do
    (* One churn event: a random member leaves, a fresh node joins. *)
    let ids = List.filter (fun id -> id <> built.Builder.first) (live_ids atum) in
    if ids <> [] then Atum.leave atum (Atum_util.Rng.pick rng ids);
    let contacts = live_ids atum in
    if contacts <> [] then begin
      incr started;
      ignore
        (Atum.join_with atum
           ~contact:(Atum_util.Rng.pick rng contacts)
           ~on_joined:(fun _ -> incr completed)
           ())
    end;
    Atum.run_for atum interval
  done;
  (* Grace period: in-flight operations may still finish. *)
  Atum.run_for atum 120.0;
  let size_after = Atum.size atum in
  let sustained =
    !started > 0
    && float_of_int !completed >= sustain_completion *. float_of_int !started
    && abs (size_after - size_before)
       <= max 2 (int_of_float (sustain_drift *. float_of_int size_before))
  in
  {
    rate_per_min;
    joins_started = !started;
    joins_completed = !completed;
    size_before;
    size_after;
    sustained;
    consistency = System.check_consistency (Atum.system atum);
  }

let default_rates n =
  (* Fractions of system size per minute, bracketing the paper's
     18–22.5% and extending beyond it so the ceiling is visible. *)
  List.map
    (fun f -> f *. float_of_int n)
    [ 0.06; 0.10; 0.14; 0.18; 0.22; 0.27; 0.33; 0.40 ]

let max_sustained ?rates ?(duration = 120.0) ?sustain_completion ?sustain_drift
    (built : Builder.built) ~seed =
  let n = Atum.size built.Builder.atum in
  let rates = match rates with Some r -> r | None -> default_rates n in
  let results = ref [] in
  let best = ref 0.0 in
  let continue = ref true in
  List.iteri
    (fun i rate ->
      if !continue then begin
        let r =
          probe ?sustain_completion ?sustain_drift built ~rate_per_min:rate ~duration
            ~seed:(seed + (100 * i))
        in
        results := r :: !results;
        if r.sustained then best := rate else continue := false;
        (* settle before the next, harder probe *)
        Atum.run_for built.Builder.atum 180.0
      end)
    rates;
  (!best, List.rev !results)
