module Atum = Atum_core.Atum
module System = Atum_core.System

type built = {
  atum : Atum.t;
  first : Atum.node_id;
  byzantine : Atum.node_id list;
  flight : Atum_sim.Flight.t option;
}

let live_ids atum =
  List.map (fun (n : System.node) -> n.System.id) (System.live_nodes (Atum.system atum))

let grow ?params ?net_config ?(trace = false) ?trace_capacity ?sample_rate
    ?(monitor = false) ?flight_dir ?(telemetry = true) ?telemetry_period ?(byzantine = 0)
    ?(batch = 8) ?(settle = 90.0) ~n ~seed () =
  let params =
    match params with
    | Some p -> p
    | None -> Atum_core.Params.for_system_size ~seed n
  in
  let atum = Atum.create ~params ?net_config ?trace_capacity () in
  if trace then Atum_sim.Trace.set_enabled (Atum.trace atum) true;
  (match sample_rate with
  | Some r -> Atum_sim.Trace.set_sample_rate (Atum.trace atum) r
  | None -> ());
  (* The flight recorder rides along whenever a monitor can trip it, or
     when a dump directory explicitly arms it (Resilience attaches its
     own monitor later and reuses this recorder). *)
  let flight =
    if monitor || Option.is_some flight_dir then
      Some
        (Atum_sim.Flight.create ?dir:flight_dir ~engine:(Atum.engine atum)
           ~trace:(Atum.trace atum) ~metrics:(Atum.metrics atum) ())
    else None
  in
  if monitor then ignore (Atum_core.Monitor.attach ?flight (Atum.system atum));
  if telemetry then begin
    let tel = Atum.attach_telemetry ?period:telemetry_period atum in
    match flight with
    | Some fl -> Atum_sim.Flight.set_telemetry fl tel
    | None -> ()
  end;
  let rng = Atum_util.Rng.create (seed + 31) in
  let first = Atum.bootstrap atum in
  let stall = ref 0 in
  while Atum.size atum < n && !stall < 50 do
    let before = Atum.size atum in
    let contacts = live_ids atum in
    let want = min batch (n - before) in
    for _ = 1 to want do
      ignore (Atum.join atum ~contact:(Atum_util.Rng.pick rng contacts) ())
    done;
    Atum.run_for atum settle;
    if Atum.size atum = before then incr stall else stall := 0
  done;
  if Atum.size atum < n then
    failwith
      (Printf.sprintf "Builder.grow: stalled at %d/%d nodes" (Atum.size atum) n);
  (* Let outstanding shuffles / splits drain before measuring. *)
  Atum.run_for atum (3.0 *. settle);
  let sys = Atum.system atum in
  let candidates = List.filter (fun id -> id <> first) (live_ids atum) in
  let byz = Atum_util.Rng.sample_without_replacement rng byzantine candidates in
  List.iter (fun b -> System.make_byzantine sys b) byz;
  { atum; first; byzantine = byz; flight }

let random_member built rng = Atum_util.Rng.pick rng (live_ids built.atum)

let correct_members built =
  List.filter_map
    (fun (n : System.node) ->
      if n.System.alive && not n.System.byzantine then Some n.System.id else None)
    (System.live_nodes (Atum.system built.atum))
