(* Recovery verification under scripted chaos.

   Runs a Fault schedule (and optionally a squad of targeted
   equivocating attackers) against a grown deployment while a steady
   broadcast workload measures delivery success, then verifies that
   the system actually *recovers*: after each heal step the
   convergence checker polls [System.check_consistency] plus a fresh
   [Monitor] sweep until both come back clean, and records the
   time-to-heal.  Violations are expected — and counted, per phase —
   while faults are active; what the experiment asserts is that they
   stop accruing once the network heals.

   Everything is driven by the simulation clock and the seeded RNG, so
   the same seed and schedule produce byte-identical artifacts. *)

module Atum = Atum_core.Atum
module System = Atum_core.System
module Monitor = Atum_core.Monitor
module Fault = Atum_sim.Fault
module Metrics = Atum_sim.Metrics
module Json = Atum_util.Json
module Stats = Atum_util.Stats
module Rng = Atum_util.Rng

type phase_stats = {
  phase : string;  (* "before" | "during" | "after" *)
  broadcasts : int;
  expected : int;  (* sum over sends of the live correct count at send time *)
  delivered : int;
  success : float;
}

type heal_record = {
  heal_at : float;
  converged_at : float option;  (* None: not within this heal's window *)
  time_to_heal : float option;
}

type result = {
  n : int;
  seed : int;
  target_vg : int;  (* vgroup the attackers concentrate on; -1 = none *)
  attackers : int;
  schedule : Fault.schedule;
  faults_applied : int;
  phases : phase_stats list;
  heals : heal_record list;
  tth_percentiles : (string * float) list;  (* over converged heals *)
  restarts : System.restart_report list;  (* cold restarts, oldest first *)
  ttr_percentiles : (string * float) list;  (* time-to-rejoin *)
  ttc_percentiles : (string * float) list;  (* time-to-catch-up *)
  recovery_fallbacks : int;  (* corrupt stores recovered via fresh join *)
  violations_before : (string * int) list;
  violations_during : (string * int) list;
  violations_after : (string * int) list;
  post_heal_deliveries : int;  (* net.deliver.post_heal counter *)
  consistency : (unit, string) Stdlib.result;  (* final check *)
  converged : bool;  (* clean consistency + sweep after the final heal *)
  postmortem : string option;  (* path of the dumped ATUM_postmortem.json *)
}

let largest_vgroup sys =
  List.fold_left
    (fun acc vid ->
      match System.vgroup_opt sys vid with
      | Some vg when not vg.System.retired ->
        let size = List.length vg.System.members in
        (match acc with
        | Some (_, best) when best >= size -> acc
        | _ -> Some (vid, size))
      | _ -> acc)
    None (System.vgroup_ids sys)

(* The acceptance scenario: partition half the largest vgroup's
   replicas away, crash one correct member in each of two other
   vgroups, then heal and recover.  Built against the live registry so
   the node ids are real; fully determined by the deployment state. *)
let default_schedule (built : Builder.built) =
  let sys = Atum.system built.Builder.atum in
  let target = largest_vgroup sys in
  let half =
    match target with
    | Some (vid, _) ->
      let vg = System.vgroup sys vid in
      let keep = max 1 (List.length vg.System.members / 2) in
      List.filteri (fun i _ -> i < keep) vg.System.members
    | None -> []
  in
  let victims =
    let target_vid = match target with Some (vid, _) -> vid | None -> -1 in
    let rec pick acc = function
      | [] -> List.rev acc
      | vid :: rest ->
        if List.length acc >= 2 then List.rev acc
        else if vid = target_vid then pick acc rest
        else (
          match System.vgroup_opt sys vid with
          | Some vg when not vg.System.retired -> (
            match System.correct_members sys vg with
            | m :: _ when m <> built.Builder.first -> pick (m :: acc) rest
            | _ -> pick acc rest)
          | _ -> pick acc rest)
    in
    pick [] (System.vgroup_ids sys)
  in
  List.concat
    [
      (if half = [] then []
       else [ { Fault.after = 10.0; step = Fault.Partition [ half ] } ]);
      (if victims = [] then [] else [ { Fault.after = 30.0; step = Fault.Crash victims } ]);
      (if half = [] then [] else [ { Fault.after = 150.0; step = Fault.Heal } ]);
      (if victims = [] then []
       else [ { Fault.after = 170.0; step = Fault.Recover victims } ]);
    ]

(* The durability acceptance scenario: same partition as
   [default_schedule], but the two victims are cold-*restarted* rather
   than crashed-and-recovered — down through the heal, back up at the
   same t+170s via [System.restart], which replays their durable store
   and catches them up.  Victim selection is identical, so the two
   scenarios stress the same replicas. *)
let default_restart_schedule (built : Builder.built) =
  List.concat_map
    (fun (e : Fault.entry) ->
      match e.Fault.step with
      | Fault.Crash victims -> [ { e with Fault.step = Fault.Restart { nodes = victims; down = 140.0 } } ]
      | Fault.Recover _ -> []
      | _ -> [ e ])
    (default_schedule built)

(* New violations in [later] relative to the earlier snapshot (both
   are cumulative per-kind counts, sorted by kind). *)
let diff_violations later earlier =
  List.filter_map
    (fun (k, n) ->
      let prev = Option.value ~default:0 (List.assoc_opt k earlier) in
      if n > prev then Some (k, n - prev) else None)
    later

let run ?(messages_per_phase = 10) ?(gap = 5.0) ?(attackers = 0) ?schedule
    ?(heal_timeout = 600.0) ?(drain = 180.0) ?flight_dir ?(restart = false)
    ?(corrupt_log = false) (built : Builder.built) ~seed () =
  let atum = built.Builder.atum in
  let sys = Atum.system atum in
  let rng = Rng.create (seed + 77) in
  (* Restart mode: an in-sim durable store (WAL + snapshots on a VFS
     stamped with simulation time) so cold restarts have something to
     recover from. *)
  let vfs =
    if restart || corrupt_log then begin
      let vfs = Atum_store.Vfs.create ~now:(fun () -> Atum.now atum) () in
      ignore (System.attach_store sys (Atum_store.Vfs.backend vfs));
      Some vfs
    end
    else None
  in
  (* Latency-insensitive but delivery-critical: gossip on every cycle
     so a delivery miss means a fault, not an unlucky coin. *)
  Atum.on_forward atum System.flood_forward;
  (* The flight recorder: reuse the one Builder.grow armed, else create
     one here when a dump directory asks for it.  Violations during
     faults are expected, so the first of them is exactly the evidence
     a postmortem should pin down. *)
  let flight =
    match (built.Builder.flight, flight_dir) with
    | (Some _ as fl), _ -> fl
    | None, Some dir ->
      Some
        (Atum_sim.Flight.create ~dir ~engine:(Atum.engine atum)
           ~trace:(Atum.trace atum) ~metrics:(Atum.metrics atum) ())
    | None, None -> None
  in
  (match (flight, Atum.telemetry atum) with
  | Some fl, Some tel -> Atum_sim.Flight.set_telemetry fl tel
  | _ -> ());
  (* Our own monitor (displacing any earlier auditor): the convergence
     checker below polls its sweeps. *)
  let mon = Monitor.attach ?flight sys in
  let target_vg = match largest_vgroup sys with Some (vid, _) -> vid | None -> -1 in
  if attackers > 0 && target_vg >= 0 then
    for _ = 1 to attackers do
      let nid = System.spawn_node sys () in
      System.make_byzantine sys
        ~strategy:(System.Target_vgroup { vg = target_vg; inner = System.Equivocate })
        nid
    done;
  let schedule =
    match schedule with
    | Some s -> s
    | None ->
      if restart || corrupt_log then default_restart_schedule built
      else default_schedule built
  in
  (* Per-phase delivery accounting, attributed by broadcast id: a
     message sent during a fault counts against "during" even if its
     stragglers arrive later. *)
  let bid_phase = Hashtbl.create 256 in
  let sent = Array.make 3 0 in
  let expected = Array.make 3 0 in
  let delivered = Array.make 3 0 in
  Atum.on_deliver atum (fun _ ~bid ~origin:_ _ ->
      match Hashtbl.find_opt bid_phase bid with
      | Some i -> delivered.(i) <- delivered.(i) + 1
      | None -> ());
  let payload () = String.make (10 + Rng.int rng 91) 'x' in
  let tick phase_idx =
    (match Builder.correct_members built with
    | [] -> ()
    | correct ->
      let publisher = Rng.pick rng correct in
      let bid = Atum.broadcast atum ~from:publisher (payload ()) in
      Hashtbl.replace bid_phase bid phase_idx;
      sent.(phase_idx) <- sent.(phase_idx) + 1;
      expected.(phase_idx) <- expected.(phase_idx) + List.length correct);
    Atum.run_for atum gap
  in
  (* Phase 1: healthy baseline. *)
  for _ = 1 to messages_per_phase do
    tick 0
  done;
  let v_before = Monitor.violations mon in
  (* Phase 2: install the schedule, keep broadcasting through it. *)
  let t_fault = Atum.now atum in
  let fq =
    Fault.install ~on_crash:(System.crash sys) ~on_recover:(System.recover sys)
      ~on_restart:(fun nid -> System.restart sys nid)
      (System.network sys) schedule
  in
  (* Corrupt-log case: while the first restart victim is down, flip one
     byte inside its WAL, so its restart must detect the damage and
     fall back to wiping the store and fresh-joining. *)
  (match vfs with
  | Some vfs when corrupt_log ->
    List.iter
      (fun (e : Fault.entry) ->
        match e.Fault.step with
        | Fault.Restart { nodes = victim :: _; down } ->
          Atum_sim.Engine.schedule ~label:"chaos.corrupt_log" (Atum.engine atum)
            ~delay:(e.Fault.after +. (down /. 2.0))
            (fun () ->
              ignore
                (Atum_store.Vfs.corrupt_byte vfs ~node:victim
                   ~name:Atum_store.Replica.wal_name ~at:40))
        | _ -> ())
      schedule
  | _ -> ());
  (match Atum.telemetry atum with
  | Some tel -> Fault.attach_gauges fq tel
  | None -> ());
  (* Cheap check first: the incremental sweep costs O(vgroups hosting
     a faulted node) per poll and stays non-zero while any fault
     persists, so the O(N) full consistency scan runs only on the
     transition to clean — once per heal, not once per poll. *)
  let converged () =
    Monitor.sweep_dirty mon = 0
    && (match System.check_consistency sys with Ok () -> true | Error _ -> false)
  in
  let all_offsets =
    List.sort Float.compare
      (List.concat_map
         (fun (e : Fault.entry) ->
           e.Fault.after
           ::
           (match e.Fault.step with
           | Fault.Restart { down; _ } -> [ e.Fault.after +. down ]
           | _ -> []))
         schedule)
  in
  let heals =
    List.map
      (fun o ->
        let heal_at = t_fault +. o in
        while Atum.now atum < heal_at do
          tick 1
        done;
        (* Poll until clean — but only until the next scheduled step:
           a heal whose crash victims are still down cannot converge,
           and pretending to wait for it would just burn the budget. *)
        let limit =
          let cap = heal_at +. heal_timeout in
          match List.find_opt (fun x -> x > o) all_offsets with
          | Some next -> Float.min cap (t_fault +. next)
          | None -> cap
        in
        (* Check before ticking: a heal whose repair completes exactly
           on a poll boundary used to be observed only after one more
           [gap]-long tick, crediting it to the next bucket and
           inflating every time-to-heal by up to [gap]. *)
        let converged_at = ref None in
        while Option.is_none !converged_at && Atum.now atum < limit do
          if converged () then converged_at := Some (Atum.now atum) else tick 1
        done;
        {
          heal_at;
          converged_at = !converged_at;
          time_to_heal = Option.map (fun c -> c -. heal_at) !converged_at;
        })
      (List.sort_uniq Float.compare (Fault.heal_offsets schedule))
  in
  let v_mid = Monitor.violations mon in
  (* Phase 3: healthy again (we hope) — measure, then drain.  An
     active adversary keeps churning (join/leave sagas are always in
     flight somewhere), so poll through the drain for a clean snapshot
     rather than judging whatever instant the drain happens to end
     on. *)
  for _ = 1 to messages_per_phase do
    tick 2
  done;
  let drain_end = Atum.now atum +. drain in
  let final_converged = ref (converged ()) in
  while (not !final_converged) && Atum.now atum < drain_end do
    Atum.run_for atum gap;
    final_converged := converged ()
  done;
  let final_converged = !final_converged in
  let v_after = Monitor.violations mon in
  let phases =
    List.map2
      (fun phase i ->
        {
          phase;
          broadcasts = sent.(i);
          expected = expected.(i);
          delivered = delivered.(i);
          success =
            (if expected.(i) = 0 then 0.0
             else float_of_int delivered.(i) /. float_of_int expected.(i));
        })
      [ "before"; "during"; "after" ] [ 0; 1; 2 ]
  in
  let tths = List.filter_map (fun h -> h.time_to_heal) heals in
  let pctl samples =
    if samples = [] then []
    else
      [
        ("p50", Stats.percentile samples 50.0);
        ("p90", Stats.percentile samples 90.0);
        ("max", Stats.percentile samples 100.0);
      ]
  in
  let tth_percentiles = pctl tths in
  let restarts = System.restart_reports sys in
  let ttr_percentiles =
    pctl
      (List.filter_map
         (fun (r : System.restart_report) ->
           Option.map (fun j -> j -. r.System.r_restarted_at) r.System.r_rejoined_at)
         restarts)
  in
  let ttc_percentiles =
    pctl
      (List.filter_map
         (fun (r : System.restart_report) ->
           Option.map (fun c -> c -. r.System.r_restarted_at) r.System.r_caught_up_at)
         restarts)
  in
  let recovery_fallbacks =
    List.length (List.filter (fun (r : System.restart_report) -> r.System.r_fallback) restarts)
  in
  let converged =
    match List.rev heals with
    | last :: _ -> Option.is_some last.converged_at || final_converged
    | [] -> final_converged
  in
  (* An unhealed fault span is a postmortem trigger in its own right:
     if no violation tripped the recorder mid-run (e.g. monitoring was
     quiet) but a heal never converged, capture the end state now. *)
  let postmortem =
    match flight with
    | None -> None
    | Some fl ->
      let unhealed =
        List.exists (fun h -> Option.is_none h.time_to_heal) heals && not converged
      in
      if unhealed && Option.is_none (Atum_sim.Flight.tripped fl) then
        Atum_sim.Flight.trip fl ~reason:"fault.unhealed"
          ~detail:"a heal step never converged within its window" ();
      Atum_sim.Flight.last_path fl
  in
  {
    n = Atum.size atum;
    seed;
    target_vg;
    attackers;
    schedule;
    faults_applied = Fault.applied fq;
    phases;
    heals;
    tth_percentiles;
    restarts;
    ttr_percentiles;
    ttc_percentiles;
    recovery_fallbacks;
    violations_before = v_before;
    violations_during = diff_violations v_mid v_before;
    violations_after = diff_violations v_after v_mid;
    post_heal_deliveries = Metrics.counter (Atum.metrics atum) "net.deliver.post_heal";
    consistency = System.check_consistency sys;
    converged;
    postmortem;
  }

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let phase_to_json p =
  Json.Obj
    [
      ("phase", Json.String p.phase);
      ("broadcasts", Json.Int p.broadcasts);
      ("expected_deliveries", Json.Int p.expected);
      ("observed_deliveries", Json.Int p.delivered);
      ("success", Json.Float p.success);
    ]

let heal_to_json h =
  Json.Obj
    [
      ("heal_at_s", Json.Float h.heal_at);
      ( "converged_at_s",
        match h.converged_at with Some c -> Json.Float c | None -> Json.Null );
      ( "time_to_heal_s",
        match h.time_to_heal with Some d -> Json.Float d | None -> Json.Null );
    ]

let restart_to_json (r : System.restart_report) =
  let opt_time = function Some v -> Json.Float v | None -> Json.Null in
  Json.Obj
    [
      ("node", Json.Int r.System.r_node);
      ("restarted_at_s", Json.Float r.System.r_restarted_at);
      ("rejoined_at_s", opt_time r.System.r_rejoined_at);
      ("caught_up_at_s", opt_time r.System.r_caught_up_at);
      ("fallback", Json.Bool r.System.r_fallback);
      ("replayed_entries", Json.Int r.System.r_replayed);
    ]

let to_json r =
  Json.Obj
    [
      ("n", Json.Int r.n);
      ("seed", Json.Int r.seed);
      ("target_vg", Json.Int r.target_vg);
      ("attackers", Json.Int r.attackers);
      ("schedule", Fault.to_json r.schedule);
      ("faults_applied", Json.Int r.faults_applied);
      ("phases", Json.List (List.map phase_to_json r.phases));
      ("heals", Json.List (List.map heal_to_json r.heals));
      ( "time_to_heal_percentiles",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) r.tth_percentiles) );
      ("restarts", Json.List (List.map restart_to_json r.restarts));
      ( "time_to_rejoin_percentiles",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) r.ttr_percentiles) );
      ( "time_to_catchup_percentiles",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) r.ttc_percentiles) );
      ("recovery_fallbacks", Json.Int r.recovery_fallbacks);
      ( "violations",
        Json.Obj
          (List.map
             (fun (label, vs) ->
               (label, Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) vs)))
             [
               ("before", r.violations_before);
               ("during", r.violations_during);
               ("after", r.violations_after);
             ]) );
      ("post_heal_deliveries", Json.Int r.post_heal_deliveries);
      ( "consistency",
        match r.consistency with
        | Ok () -> Json.String "ok"
        | Error e -> Json.String e );
      ("converged", Json.Bool r.converged);
      (* Basename only: the artifact must not vary with the output
         directory (CI diffs same-seed runs from different dirs). *)
      ( "postmortem",
        match r.postmortem with
        | Some p -> Json.String (Filename.basename p)
        | None -> Json.Null );
    ]
