module Json = Atum_util.Json

let version = "1.1.0"

(* One subprocess per process, at first use.  Deterministic for the
   artifact contract: within one checkout the output never changes
   between two same-seed runs. *)
let git_describe =
  let cached = ref None in
  fun () ->
    match !cached with
    | Some v -> v
    | None ->
      let v =
        try
          let ic = Unix.open_process_in "git describe --always --dirty 2>/dev/null" in
          let line = try input_line ic with End_of_file -> "" in
          let status = Unix.close_process_in ic in
          (match (status, line) with
          | Unix.WEXITED 0, l when String.length l > 0 -> l
          | _ -> "unknown")
        with _ -> "unknown"
      in
      cached := Some v;
      v

let to_json ?(extra = []) ~cmdline ~seed () =
  Json.Obj
    ([
       ("version", Json.String version);
       ("git", Json.String (git_describe ()));
       ("seed", Json.Int seed);
       ("cmdline", Json.String (String.concat " " cmdline));
     ]
    @ extra)
