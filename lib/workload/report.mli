(** Machine-readable benchmark artifacts.

    Every figure the bench harness prints can also be exported as one
    [BENCH_<fig>.json] file (see the "Observability" section of
    README.md and the schema note in EXPERIMENTS.md).  The envelope
    carries run provenance (seed, scale, wall time, schema version)
    around the same rows the text output prints, so successive PRs can
    diff artifacts to prove speedups or catch regressions. *)

val schema_version : int

val canonical : unit -> bool
(** True when [ATUM_BENCH_JSON_CANON] is set (to anything but ["0"] or
    the empty string): {!envelope} then writes [wall_s] as [0.0] so
    same-seed runs are byte-identical. *)

val envelope :
  ?cmdline:string list ->
  fig:string ->
  scale:string ->
  seed:int ->
  wall_s:float ->
  ?extra:(string * Atum_util.Json.t) list ->
  rows:Atum_util.Json.t list ->
  unit ->
  Atum_util.Json.t
(** [{schema_version; fig; scale; seed; build_info; wall_s; ...extra;
    rows}].  [build_info] ({!Build_info.to_json}) records version, git
    describe, seed, and [cmdline].  Every field except [wall_s] is
    deterministic for a fixed seed, scale, cmdline, and checkout. *)

val filename : fig:string -> string
(** ["BENCH_<fig>.json"]. *)

val write : dir:string -> fig:string -> Atum_util.Json.t -> string
(** Write the artifact into [dir]; returns the full path. *)

val growth_row : protocol:string -> target:int -> Growth.result -> Atum_util.Json.t
(** One Fig-6/Fig-13 row: final size, duration, join-latency
    percentiles, exchange counts, engine event count, and the full
    (t, size) curve. *)

val latency_row : label:string -> Latency_exp.result -> Atum_util.Json.t
(** One Fig-8 CDF row: sample count, p10/p50/p90/p99/max latency and
    delivery fraction ([null] percentiles when there are no samples). *)

(** {1 Rendering telemetry artifacts}

    [atum-cli report] turns an [ATUM_timeseries.json] artifact back
    into terminal output: one sparkline per gauge plus the per-label
    engine profile table. *)

val sparkline : ?width:int -> float list -> string
(** Downsample a series to at most [width] (default 60) cells by slice
    averaging and render it with U+2581..U+2588 block characters.
    Empty input renders as the empty string; a constant series renders
    at the lowest level. *)

val render_timeseries :
  Format.formatter -> Atum_util.Json.t -> (unit, string) result
(** Render a {!Atum_sim.Telemetry.to_json} value: a header line
    (gauge/sample counts, sim-time span, period) then a sparkline and
    min/mean/max/last summary per gauge. *)

val render_profile :
  Format.formatter -> Atum_util.Json.t -> (unit, string) result
(** Render an {!Atum_sim.Engine.profile_json} value as a table sorted
    by wall-clock self-time (event count breaks ties, so the ranking
    is still useful when profiling ran without [ATUM_PROF_WALL]). *)

val render_timeseries_artifact :
  Format.formatter -> Atum_util.Json.t -> (unit, string) result
(** Render a whole [ATUM_timeseries.json] artifact: provenance header
    ([cmd], [seed], [build_info]), then {!render_timeseries}, then
    {!render_profile}. *)

val render_resilience_artifact :
  Format.formatter -> Atum_util.Json.t -> (unit, string) result
(** Render an [ATUM_resilience.json] artifact (a {!Resilience.to_json}
    summary under the ["resilience"] member): provenance header, the
    fault schedule, per-phase delivery success, heal records with
    time-to-heal percentiles, violation counts before/during/after the
    faults, and the final consistency/convergence verdict.  [Error] if
    the document has no ["resilience"] member — [atum-cli report]
    dispatches on that to fall back to the timeseries renderer. *)
