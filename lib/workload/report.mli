(** Machine-readable benchmark artifacts.

    Every figure the bench harness prints can also be exported as one
    [BENCH_<fig>.json] file (see the "Observability" section of
    README.md and the schema note in EXPERIMENTS.md).  The envelope
    carries run provenance (seed, scale, wall time, schema version)
    around the same rows the text output prints, so successive PRs can
    diff artifacts to prove speedups or catch regressions. *)

val schema_version : int

val canonical : unit -> bool
(** True when [ATUM_BENCH_JSON_CANON] is set (to anything but ["0"] or
    the empty string): {!envelope} then writes [wall_s] as [0.0] so
    same-seed runs are byte-identical. *)

val envelope :
  fig:string ->
  scale:string ->
  seed:int ->
  wall_s:float ->
  ?extra:(string * Atum_util.Json.t) list ->
  rows:Atum_util.Json.t list ->
  unit ->
  Atum_util.Json.t
(** [{schema_version; fig; scale; seed; wall_s; ...extra; rows}].
    Every field except [wall_s] is deterministic for a fixed seed and
    scale. *)

val filename : fig:string -> string
(** ["BENCH_<fig>.json"]. *)

val write : dir:string -> fig:string -> Atum_util.Json.t -> string
(** Write the artifact into [dir]; returns the full path. *)

val growth_row : protocol:string -> target:int -> Growth.result -> Atum_util.Json.t
(** One Fig-6/Fig-13 row: final size, duration, join-latency
    percentiles, exchange counts, engine event count, and the full
    (t, size) curve. *)

val latency_row : label:string -> Latency_exp.result -> Atum_util.Json.t
(** One Fig-8 CDF row: sample count, p10/p50/p90/p99/max latency and
    delivery fraction ([null] percentiles when there are no samples). *)
