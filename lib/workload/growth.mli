(** Open-loop growth workload: Fig 6 (growth speed) and Fig 13
    (exchange completion rate vs. join rate). *)

type point = { time : float; size : int }

type result = {
  curve : point list;  (** system size sampled over simulated time *)
  final_size : int;
  duration : float;  (** simulated seconds to reach the target *)
  reached_target : bool;
  exchanges_completed : int;
  exchanges_suppressed : int;
  completion_rate : float;  (** completed / (completed + suppressed) *)
  join_latency_p50 : float;  (** seconds from request to installation *)
  join_latency_p90 : float;
  events_processed : int;  (** simulator events the run consumed *)
  consistency : (unit, string) Stdlib.result;
      (** [System.check_consistency] at the end of the run *)
  timeseries : Atum_util.Json.t option;
      (** {!Atum_sim.Telemetry.to_json} of the run's gauge series
          (sampled every [sample_every]); [None] when [telemetry] was
          disabled *)
}

val run :
  ?params:Atum_core.Params.t ->
  ?join_rate_per_min:float ->
  ?time_limit:float ->
  ?sample_every:float ->
  ?telemetry:bool ->
  target:int ->
  seed:int ->
  unit ->
  result
(** Grow a deployment from one node to [target], issuing joins at
    [join_rate_per_min] (default 0.08 = the paper's 8%) of the current
    system size per simulated minute (at least one per tick, so growth
    is exponential as in §6.1.1). *)
