(** Shared experiment scaffolding: grow Atum deployments to a target
    size and place Byzantine nodes, as the evaluation section does
    before each measurement. *)

type built = {
  atum : Atum_core.Atum.t;
  first : Atum_core.Atum.node_id;  (** the bootstrap node *)
  byzantine : Atum_core.Atum.node_id list;
  flight : Atum_sim.Flight.t option;
      (** the postmortem recorder, when a monitor or dump dir armed one *)
}

val grow :
  ?params:Atum_core.Params.t ->
  ?net_config:Atum_sim.Network.config ->
  ?trace:bool ->
  ?trace_capacity:int ->
  ?sample_rate:float ->
  ?monitor:bool ->
  ?flight_dir:string ->
  ?telemetry:bool ->
  ?telemetry_period:float ->
  ?byzantine:int ->
  ?batch:int ->
  ?settle:float ->
  n:int ->
  seed:int ->
  unit ->
  built
(** Bootstrap and grow a deployment to [n] live members by joining
    nodes in small batches through random contacts, letting each batch
    settle, then mark [byzantine] random non-bootstrap members as
    quiet-Byzantine (§6.1.3). Parameters default to
    {!Atum_core.Params.for_system_size}.  [trace] (default [false])
    enables the deployment's structured event trace before growth
    starts, with [trace_capacity] ring slots (default
    {!Atum_sim.Trace.default_capacity}) and, when [sample_rate] is
    given, that fraction of [Sampled]-level kinds admitted
    ({!Atum_sim.Trace.set_sample_rate}); [monitor] (default [false])
    attaches an {!Atum_core.Monitor} with the default config, whose
    [monitor.violation.*] counters land in the deployment's metrics;
    when [monitor] is on or [flight_dir] is given, an
    {!Atum_sim.Flight} recorder is created (armed to auto-dump
    [ATUM_postmortem.json] into [flight_dir] if given) and wired into
    the monitor; [telemetry] (default [true]) attaches the standard
    sim-time gauge set ({!Atum_core.Atum.attach_telemetry}) sampling
    every [telemetry_period] simulated seconds, so every experiment
    gets time-indexed series for free. *)

val random_member :
  built -> Atum_util.Rng.t -> Atum_core.Atum.node_id
(** A uniformly random live member (possibly Byzantine). *)

val correct_members : built -> Atum_core.Atum.node_id list
