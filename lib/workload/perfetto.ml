(* Chrome trace_event export: turn an ATUM_*.json artifact (or an
   ATUM_postmortem.json) into a timeline Perfetto / chrome://tracing
   can load.

   Four tracks, one per "process":
     pid 1  sagas      — begin/end span pairs as complete ("X") slices,
                         one thread row per vgroup
     pid 2  broadcast  — bcast.hop / broadcast.sent / bcast.dup as
                         instants, one thread row per broadcast id
     pid 3  faults     — chaos-layer fault spans (partition..heal,
                         crash..recover, burst..end) as slices; a span
                         still open at the end of the trace is closed
                         at the last event time and tagged unhealed
     pid 4  engine     — the per-label profile as one slice per label,
                         vt_first..vt_last

   Timestamps are simulated time converted to integer microseconds, so
   the export is as deterministic as the artifact it came from. *)

module Json = Atum_util.Json
module Trace = Atum_sim.Trace

let pid_saga = 1
let pid_bcast = 2
let pid_fault = 3
let pid_engine = 4

let us t = Json.Int (int_of_float (Float.round (t *. 1e6)))

let str s = Json.String s

let opt_arg name v = if v < 0 then [] else [ (name, Json.Int v) ]

let complete ~name ~cat ~pid ~tid ~t0 ~t1 args =
  Json.Obj
    [
      ("name", str name);
      ("cat", str cat);
      ("ph", str "X");
      ("ts", us t0);
      ("dur", us (Float.max 0.0 (t1 -. t0)));
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj args);
    ]

let instant ~name ~cat ~pid ~tid ~t args =
  Json.Obj
    [
      ("name", str name);
      ("cat", str cat);
      ("ph", str "i");
      ("s", str "t");
      ("ts", us t);
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj args);
    ]

let process_name ~pid name =
  Json.Obj
    [
      ("name", str "process_name");
      ("ph", str "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int 0);
      ("args", Json.Obj [ ("name", str name) ]);
    ]

let thread_name ~pid ~tid name =
  Json.Obj
    [
      ("name", str "thread_name");
      ("ph", str "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", str name) ]);
    ]

(* --- fault spans ----------------------------------------------------- *)

(* Pair a fault's start kind with the kind that closes it.  Partition /
   heal are global (one open span at a time); crash / recover pair per
   node; the shaping faults carry their own ".end" markers. *)
let fault_close_of = function
  | "fault.partition" -> Some "fault.heal"
  | "fault.crash" -> Some "fault.recover"
  | "fault.loss_burst" -> Some "fault.loss_burst.end"
  | "fault.latency_spike" -> Some "fault.latency_spike.end"
  | "fault.capacity_degrade" -> Some "fault.capacity_degrade.end"
  | _ -> None

let fault_closes kind =
  match kind with
  | "fault.heal" | "fault.recover" | "fault.loss_burst.end"
  | "fault.latency_spike.end" | "fault.capacity_degrade.end" ->
    true
  | _ -> false

let short_fault kind =
  if String.length kind > 6 && String.sub kind 0 6 = "fault." then
    String.sub kind 6 (String.length kind - 6)
  else kind

(* --- conversion ------------------------------------------------------ *)

let of_events (events : Trace.event list) ~profile =
  let out = ref [] in
  let push ev = out := ev :: !out in
  let max_ts = ref 0.0 in
  (* saga spans: span id -> (name, t0, node, vgroup) *)
  let open_spans : (int, string * float * int * int) Hashtbl.t = Hashtbl.create 64 in
  (* fault spans: (start kind, node or -1) -> start time *)
  let open_faults : (string * int, float) Hashtbl.t = Hashtbl.create 8 in
  let saga_tids = Hashtbl.create 16 in
  let bcast_tids = Hashtbl.create 16 in
  List.iter
    (fun (e : Trace.event) ->
      if e.Trace.time > !max_ts then max_ts := e.Trace.time;
      let kind = e.Trace.kind in
      match Analyze.saga_of_kind kind with
      | Some (name, true) when e.Trace.span >= 0 ->
        Hashtbl.replace open_spans e.Trace.span (name, e.Trace.time, e.Trace.node, e.Trace.vgroup)
      | Some (name, false) when e.Trace.span >= 0 -> (
        match Hashtbl.find_opt open_spans e.Trace.span with
        | Some (name0, t0, node, vgroup) ->
          Hashtbl.remove open_spans e.Trace.span;
          let tid = if vgroup >= 0 then vgroup else 0 in
          Hashtbl.replace saga_tids tid ();
          push
            (complete ~name:name0 ~cat:"saga" ~pid:pid_saga ~tid ~t0 ~t1:e.Trace.time
               (("span", Json.Int e.Trace.span) :: opt_arg "node" node
              @ opt_arg "vgroup" vgroup))
        | None ->
          (* begin fell off the ring: an instant keeps the end visible *)
          push
            (instant ~name:(name ^ " (end, begin lost)") ~cat:"saga" ~pid:pid_saga
               ~tid:(if e.Trace.vgroup >= 0 then e.Trace.vgroup else 0)
               ~t:e.Trace.time
               (("span", Json.Int e.Trace.span) :: opt_arg "node" e.Trace.node)))
      | _ ->
        if kind = "bcast.hop" || kind = "broadcast.sent" || kind = "bcast.dup" then begin
          let tid = if e.Trace.bid >= 0 then e.Trace.bid else 0 in
          Hashtbl.replace bcast_tids tid ();
          let name =
            match kind with
            | "broadcast.sent" -> "sent"
            | "bcast.dup" -> "dup"
            | _ -> "hop"
          in
          push
            (instant ~name ~cat:"bcast" ~pid:pid_bcast ~tid ~t:e.Trace.time
               (opt_arg "node" e.Trace.node @ opt_arg "vgroup" e.Trace.vgroup
              @ opt_arg "from_vg" e.Trace.parent @ opt_arg "cycle" e.Trace.cycle))
        end
        else if String.length kind > 6 && String.sub kind 0 6 = "fault." then begin
          match fault_close_of kind with
          | Some _ ->
            (* a start: crash spans pair per node, the rest globally *)
            let key = (kind, if kind = "fault.crash" then e.Trace.node else -1) in
            Hashtbl.replace open_faults key e.Trace.time
          | None ->
            if fault_closes kind then begin
              let close_one start_kind node =
                let key = (start_kind, node) in
                match Hashtbl.find_opt open_faults key with
                | Some t0 ->
                  Hashtbl.remove open_faults key;
                  push
                    (complete ~name:(short_fault start_kind) ~cat:"fault" ~pid:pid_fault
                       ~tid:(max 0 node) ~t0 ~t1:e.Trace.time (opt_arg "node" node))
                | None ->
                  push
                    (instant ~name:(short_fault kind) ~cat:"fault" ~pid:pid_fault
                       ~tid:(max 0 node) ~t:e.Trace.time (opt_arg "node" node))
              in
              match kind with
              | "fault.heal" -> close_one "fault.partition" (-1)
              | "fault.recover" -> close_one "fault.crash" e.Trace.node
              | "fault.loss_burst.end" -> close_one "fault.loss_burst" (-1)
              | "fault.latency_spike.end" -> close_one "fault.latency_spike" (-1)
              | _ -> close_one "fault.capacity_degrade" (-1)
            end
            else
              push
                (instant ~name:(short_fault kind) ~cat:"fault" ~pid:pid_fault ~tid:0
                   ~t:e.Trace.time
                   (opt_arg "node" e.Trace.node @ opt_arg "vgroup" e.Trace.vgroup))
        end
        else
          (* everything else (net.*, vgroup.*, monitor.violation.*, ...):
             an instant on the track of its subsystem keeps rare events
             like violations visible without a dedicated pid *)
          match kind with
          | k
            when String.length k > 18
                 && String.sub k 0 18 = "monitor.violation." ->
            push
              (instant ~name:k ~cat:"violation" ~pid:pid_fault ~tid:0 ~t:e.Trace.time
                 (opt_arg "node" e.Trace.node @ opt_arg "vgroup" e.Trace.vgroup
                @ opt_arg "bid" e.Trace.bid))
          | _ -> ())
    events;
  (* unhealed fault spans: close at the last event time, tagged *)
  let open_fault_list =
    List.sort compare (Hashtbl.fold (fun k t acc -> (k, t) :: acc) open_faults [])
  in
  List.iter
    (fun ((kind, node), t0) ->
      push
        (complete ~name:(short_fault kind ^ " (unhealed)") ~cat:"fault" ~pid:pid_fault
           ~tid:(max 0 node) ~t0 ~t1:(Float.max !max_ts t0)
           (("unhealed", Json.Bool true) :: opt_arg "node" node)))
    open_fault_list;
  (* engine profile: one slice per label over its vt_first..vt_last *)
  let engine_threads = ref [] in
  (match Json.member "labels" profile with
  | Some (Json.List rows) ->
    List.iteri
      (fun i row ->
        let label =
          match Json.member "label" row with Some (Json.String s) -> s | _ -> "?"
        in
        let num key =
          match Json.member key row with
          | Some (Json.Float f) -> f
          | Some (Json.Int n) -> float_of_int n
          | _ -> 0.0
        in
        let events = int_of_float (num "events") in
        if events > 0 then begin
          engine_threads := (i, label) :: !engine_threads;
          push
            (complete ~name:label ~cat:"engine" ~pid:pid_engine ~tid:i ~t0:(num "vt_first")
               ~t1:(num "vt_last")
               [
                 ("events", Json.Int events);
                 ("wall_self_s", Json.Float (num "wall_self_s"));
               ])
        end)
      rows
  | _ -> ());
  let sorted_tids tbl = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl []) in
  let metadata =
    [
      process_name ~pid:pid_saga "sagas";
      process_name ~pid:pid_bcast "broadcast";
      process_name ~pid:pid_fault "faults";
      process_name ~pid:pid_engine "engine";
    ]
    @ List.map (fun tid -> thread_name ~pid:pid_saga ~tid (Printf.sprintf "vg %d" tid))
        (sorted_tids saga_tids)
    @ List.map (fun tid -> thread_name ~pid:pid_bcast ~tid (Printf.sprintf "bid %d" tid))
        (sorted_tids bcast_tids)
    @ List.map
        (fun (tid, label) -> thread_name ~pid:pid_engine ~tid label)
        (List.sort compare !engine_threads)
  in
  Json.Obj
    [
      ("displayTimeUnit", str "ms");
      ("traceEvents", Json.List (metadata @ List.rev !out));
    ]

let events_of_artifact json =
  let from_trace t =
    match Json.member "events" t with
    | Some (Json.List evs) -> Some (List.filter_map Analyze.event_of_json evs)
    | _ -> None
  in
  match Json.member "trace" json with
  | Some t -> from_trace t
  | None -> Option.bind (Json.member "trace_last" json) from_trace

let of_artifact json =
  match events_of_artifact json with
  | None ->
    Error
      "artifact has no trace events (need a \"trace\" or \"trace_last\" member — was \
       the run traced and written with --json?)"
  | Some events ->
    let profile =
      match Json.member "profile" json with Some p -> p | None -> Json.Null
    in
    Ok (of_events events ~profile)

let output_name source =
  let base = Filename.remove_extension (Filename.basename source) in
  base ^ ".trace.json"

let write ~dir ~source doc =
  let path = Filename.concat dir (output_name source) in
  Json.write_file ~path doc;
  path
