module Atum = Atum_core.Atum
module System = Atum_core.System

type point = { time : float; size : int }

type result = {
  curve : point list;
  final_size : int;
  duration : float;
  reached_target : bool;
  exchanges_completed : int;
  exchanges_suppressed : int;
  completion_rate : float;
  join_latency_p50 : float;
  join_latency_p90 : float;
  events_processed : int;
  consistency : (unit, string) Stdlib.result;
  timeseries : Atum_util.Json.t option;
}

let live_ids atum =
  List.map (fun (n : System.node) -> n.System.id) (System.live_nodes (Atum.system atum))

let run ?params ?(join_rate_per_min = 0.08) ?(time_limit = 20_000.0) ?(sample_every = 30.0)
    ?(telemetry = true) ~target ~seed () =
  let params =
    match params with Some p -> p | None -> Atum_core.Params.for_system_size ~seed target
  in
  let atum = Atum.create ~params () in
  if telemetry then
    (* Telemetry shares the curve's sampling period, so the exported
       series line up with the figure's own growth curve. *)
    ignore (Atum.attach_telemetry ~period:sample_every atum : Atum_sim.Telemetry.t);
  let rng = Atum_util.Rng.create (seed + 41) in
  ignore (Atum.bootstrap atum);
  let curve = ref [ { time = 0.0; size = 1 } ] in
  let carry = ref 0.0 in
  let tick = 10.0 in
  let next_sample = ref sample_every in
  while Atum.size atum < target && Atum.now atum < time_limit do
    let size = Atum.size atum in
    (* Joins arrive in proportion to the current size — the paper's
       percent-per-minute open loop — with a floor of one join per
       tick so the system can leave the single-node state. *)
    carry := !carry +. Float.max 1.0 (join_rate_per_min *. float_of_int size *. tick /. 60.0);
    let to_issue = int_of_float !carry in
    carry := !carry -. float_of_int to_issue;
    let contacts = live_ids atum in
    for _ = 1 to min to_issue (target - size) do
      ignore (Atum.join atum ~contact:(Atum_util.Rng.pick rng contacts) ())
    done;
    Atum.run_for atum tick;
    if Atum.now atum >= !next_sample then begin
      curve := { time = Atum.now atum; size = Atum.size atum } :: !curve;
      next_sample := !next_sample +. sample_every
    end
  done;
  let duration = Atum.now atum in
  curve := { time = duration; size = Atum.size atum } :: !curve;
  let m = Atum.metrics atum in
  let completed = Atum_sim.Metrics.counter m "exchange.completed" in
  let suppressed = Atum_sim.Metrics.counter m "exchange.suppressed" in
  let total = completed + suppressed in
  let join_lats = Atum_sim.Metrics.samples m "join.latency" in
  let pct p = if join_lats = [] then 0.0 else Atum_util.Stats.percentile join_lats p in
  {
    curve = List.rev !curve;
    final_size = Atum.size atum;
    duration;
    reached_target = Atum.size atum >= target;
    exchanges_completed = completed;
    exchanges_suppressed = suppressed;
    completion_rate =
      (if total = 0 then 1.0 else float_of_int completed /. float_of_int total);
    join_latency_p50 = pct 50.0;
    join_latency_p90 = pct 90.0;
    events_processed = Atum_sim.Engine.events_processed (Atum.engine atum);
    consistency = System.check_consistency (Atum.system atum);
    timeseries = Option.map Atum_sim.Telemetry.to_json (Atum.telemetry atum);
  }
