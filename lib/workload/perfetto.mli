(** Chrome [trace_event] timeline export (the [atum-cli export-trace]
    subcommand).

    Converts a traced [ATUM_*.json] artifact — or an
    [ATUM_postmortem.json] flight-recorder dump — into JSON loadable
    by Perfetto ([ui.perfetto.dev]) or [chrome://tracing]: saga
    begin/end pairs become complete slices grouped per vgroup,
    broadcast lineage ([broadcast.sent] / [bcast.hop] / [bcast.dup])
    becomes instants grouped per broadcast id, chaos-layer fault spans
    (partition..heal, crash..recover, burst..end — an unhealed span is
    closed at the last event and tagged) become slices, and the
    engine's per-label profile becomes one slice per task label.

    Timestamps are simulated time as integer microseconds, so the
    export is byte-deterministic given a deterministic artifact. *)

val of_artifact : Atum_util.Json.t -> (Atum_util.Json.t, string) result
(** Build the [{displayTimeUnit; traceEvents}] document from a parsed
    artifact.  Errors when the artifact carries no [trace] (or
    [trace_last]) events. *)

val of_events :
  Atum_sim.Trace.event list -> profile:Atum_util.Json.t -> Atum_util.Json.t
(** Convert an explicit event list plus an {!Atum_sim.Engine}
    [profile_json] document ([Null] for none). *)

val output_name : string -> string
(** [output_name "dir/ATUM_broadcast.json"] is
    ["ATUM_broadcast.trace.json"]. *)

val write : dir:string -> source:string -> Atum_util.Json.t -> string
(** Write the document to [dir ^ "/" ^ output_name source]; returns
    the path. *)
