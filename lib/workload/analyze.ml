(* Post-hoc causal analysis of a traced run.

   Consumes either a live trace (via [Trace.fold], so the ring is
   never materialized as a list) or an [ATUM_*.json] artifact, and
   reconstructs: per-broadcast dissemination trees from the
   ["bcast.hop"] lineage events (hop-count distribution, first-
   delivery latency CDF, redundancy ratio), per-saga duration
   percentiles from the ["saga.<name>.begin"/".end"] span pairs, and
   the invariant-violation summary from the "monitor.violation.*"
   metrics counters.

   Trace rings drop their oldest events once full, so the analyzer is
   tolerant by construction: hops and deliveries whose
   ["broadcast.sent"] root was overwritten are reported as orphans
   rather than errors, and [dropped_by_kind] is carried through so a
   reader knows which event kinds are incomplete. *)

module Json = Atum_util.Json
module Stats = Atum_util.Stats
module Trace = Atum_sim.Trace
module Metrics = Atum_sim.Metrics

type tree = {
  bid : int;
  origin : int;  (* broadcasting node, -1 if unknown *)
  root_vg : int;  (* origin vgroup, -1 if unknown *)
  sent_at : float;
  deliveries : int;
  dups : int;  (* redundant receives of this bid *)
  depth0 : int;  (* deliveries in the origin vgroup (SMR phase) *)
  max_depth : int;  (* deepest gossip hop in the tree *)
  incomplete_hops : int;  (* hops whose sender depth was unknown *)
}

type saga_stats = {
  saga : string;
  completed : int;
  unmatched : int;  (* begun but never ended within the trace window *)
  d_p50 : float;
  d_p90 : float;
  d_max : float;
}

type result = {
  trees : tree list;  (* sorted by bid; only bids with a known root *)
  orphan_bids : int;  (* bids with hops/deliveries but no root event *)
  deliveries : int;
  dups : int;
  redundancy : float;  (* dups / deliveries *)
  hop_hist : (int * int) list;  (* depth -> first-delivery count *)
  latency_cdf : (float * float) list;  (* empirical first-delivery CDF *)
  latency_p : (string * float) list;  (* p50/p90/p99/max *)
  sagas : saga_stats list;  (* sorted by saga name *)
  violations : (string * int) list;  (* monitor.violation.* counters *)
  violations_total : int;
  byzantine_events : (string * int) list;  (* byzantine.* trace kinds *)
  fault_events : (string * int) list;  (* fault.* trace kinds *)
  events_seen : int;
  dropped_total : int;
  dropped_by_kind : (string * int) list;
  sample_rate : float;
  sampled_out_total : int;
  sampled_out_by_kind : (string * int) list;
  trace_truncated : bool;
}

(* ------------------------------------------------------------------ *)
(* Accumulator                                                         *)
(* ------------------------------------------------------------------ *)

type root = { r_node : int; r_vg : int; r_time : float }

type acc = {
  roots : (int, root) Hashtbl.t; (* bid -> broadcast.sent *)
  depth : (int * int, int) Hashtbl.t; (* (bid, vg) -> hop depth *)
  hop_counts : (int, int) Hashtbl.t; (* depth -> first deliveries at that depth *)
  deliv : (int, int) Hashtbl.t; (* bid -> total deliveries *)
  hop_deliv : (int, int) Hashtbl.t; (* bid -> gossip-hop deliveries *)
  dup : (int, int) Hashtbl.t; (* bid -> redundant receives *)
  max_depth : (int, int) Hashtbl.t; (* bid -> deepest hop *)
  incomplete : (int, int) Hashtbl.t; (* bid -> hops with unknown sender depth *)
  mutable latencies : float list; (* newest first *)
  open_spans : (int, string * float) Hashtbl.t; (* span -> (saga, t0) *)
  saga_durations : (string, float list ref) Hashtbl.t;
  saga_unmatched : (string, int ref) Hashtbl.t;
  viol_events : (string, int) Hashtbl.t; (* violation kind -> trace events *)
  byz_events : (string, int) Hashtbl.t; (* byzantine.* kind -> trace events *)
  flt_events : (string, int) Hashtbl.t; (* fault.* kind -> trace events *)
  mutable seen : int;
}

let make_acc () =
  {
    roots = Hashtbl.create 64;
    depth = Hashtbl.create 256;
    hop_counts = Hashtbl.create 16;
    deliv = Hashtbl.create 64;
    hop_deliv = Hashtbl.create 64;
    dup = Hashtbl.create 64;
    max_depth = Hashtbl.create 64;
    incomplete = Hashtbl.create 16;
    latencies = [];
    open_spans = Hashtbl.create 256;
    saga_durations = Hashtbl.create 16;
    saga_unmatched = Hashtbl.create 16;
    viol_events = Hashtbl.create 8;
    byz_events = Hashtbl.create 8;
    flt_events = Hashtbl.create 8;
    seen = 0;
  }

let bump tbl key by =
  Hashtbl.replace tbl key (by + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let raise_to tbl key v =
  match Hashtbl.find_opt tbl key with
  | Some old when old >= v -> ()
  | _ -> Hashtbl.replace tbl key v

let violation_prefix = "monitor.violation."

let strip_prefix name =
  String.sub name (String.length violation_prefix)
    (String.length name - String.length violation_prefix)

let has_violation_prefix name =
  String.length name > String.length violation_prefix
  && String.sub name 0 (String.length violation_prefix) = violation_prefix

let has_prefix prefix name =
  String.length name > String.length prefix
  && String.sub name 0 (String.length prefix) = prefix

(* Kind "saga.<name>.begin" / "saga.<name>.end" -> (<name>, is_begin) *)
let saga_of_kind kind =
  if String.length kind > 5 && String.sub kind 0 5 = "saga." then
    let rest = String.sub kind 5 (String.length kind - 5) in
    match String.rindex_opt rest '.' with
    | Some i -> (
      let name = String.sub rest 0 i in
      match String.sub rest (i + 1) (String.length rest - i - 1) with
      | "begin" -> Some (name, true)
      | "end" -> Some (name, false)
      | _ -> None)
    | None -> None
  else None

(* Events arrive oldest-first (the trace is written in simulated-time
   order), which is what the depth propagation below relies on. *)
let feed acc (e : Trace.event) =
  acc.seen <- acc.seen + 1;
  match e.kind with
  | "broadcast.sent" when e.bid >= 0 ->
    Hashtbl.replace acc.roots e.bid { r_node = e.node; r_vg = e.vgroup; r_time = e.time };
    if e.vgroup >= 0 then Hashtbl.replace acc.depth (e.bid, e.vgroup) 0
  | "broadcast.delivered" when e.bid >= 0 ->
    bump acc.deliv e.bid 1;
    (match Hashtbl.find_opt acc.roots e.bid with
    | Some r -> acc.latencies <- (e.time -. r.r_time) :: acc.latencies
    | None -> ())
  | "bcast.hop" when e.bid >= 0 ->
    bump acc.hop_deliv e.bid 1;
    (match Hashtbl.find_opt acc.depth (e.bid, e.parent) with
    | Some dparent ->
      (* This delivery travelled depth(sender vgroup) + 1 hops.  The
         receiving vgroup's depth — what *its* children inherit — is
         its shallowest arrival, so a later longer path never shortens
         or stretches an already-established subtree. *)
      let d = dparent + 1 in
      bump acc.hop_counts d 1;
      if e.vgroup >= 0 then (
        match Hashtbl.find_opt acc.depth (e.bid, e.vgroup) with
        | Some d0 when d0 <= d -> ()
        | _ -> Hashtbl.replace acc.depth (e.bid, e.vgroup) d);
      raise_to acc.max_depth e.bid d
    | None ->
      (* The sender's depth never became known (its own hop or the
         root was dropped from the ring): count, don't guess. *)
      bump acc.incomplete e.bid 1)
  | "bcast.dup" when e.bid >= 0 -> bump acc.dup e.bid 1
  | k when has_violation_prefix k -> bump acc.viol_events (strip_prefix k) 1
  (* Chaos-layer lineage: adversary activity and injected faults keep
     their full kind so equivocation vs. selective drops vs. targeting
     attempts stay distinguishable in the summary. *)
  | k when has_prefix "byzantine." k -> bump acc.byz_events k 1
  | k when has_prefix "fault." k -> bump acc.flt_events k 1
  | _ -> (
    match saga_of_kind e.kind with
    | Some (name, true) when e.span >= 0 ->
      Hashtbl.replace acc.open_spans e.span (name, e.time)
    | Some (_, false) when e.span >= 0 -> (
      match Hashtbl.find_opt acc.open_spans e.span with
      | Some (name, t0) ->
        Hashtbl.remove acc.open_spans e.span;
        let r =
          match Hashtbl.find_opt acc.saga_durations name with
          | Some r -> r
          | None ->
            let r = ref [] in
            Hashtbl.replace acc.saga_durations name r;
            r
        in
        r := (e.time -. t0) :: !r
      | None -> (* begin dropped by ring wrap *) ())
    | _ -> ())

let finish acc ~violations ~dropped_total ~dropped_by_kind ?(sample_rate = 1.0)
    ?(sampled_out_total = 0) ?(sampled_out_by_kind = []) () =
  Hashtbl.iter
    (fun _ (name, _) ->
      let r =
        match Hashtbl.find_opt acc.saga_unmatched name with
        | Some r -> r
        | None ->
          let r = ref 0 in
          Hashtbl.replace acc.saga_unmatched name r;
          r
      in
      incr r)
    acc.open_spans;
  let trees =
    List.sort compare (Hashtbl.fold (fun bid _ acc' -> bid :: acc') acc.roots [])
    |> List.map (fun bid ->
           let r = Hashtbl.find acc.roots bid in
           let deliveries = Option.value ~default:0 (Hashtbl.find_opt acc.deliv bid) in
           let hop_d = Option.value ~default:0 (Hashtbl.find_opt acc.hop_deliv bid) in
           {
             bid;
             origin = r.r_node;
             root_vg = r.r_vg;
             sent_at = r.r_time;
             deliveries;
             dups = Option.value ~default:0 (Hashtbl.find_opt acc.dup bid);
             depth0 = max 0 (deliveries - hop_d);
             max_depth = Option.value ~default:0 (Hashtbl.find_opt acc.max_depth bid);
             incomplete_hops = Option.value ~default:0 (Hashtbl.find_opt acc.incomplete bid);
           })
  in
  let orphan_bids =
    let known bid = Hashtbl.mem acc.roots bid in
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun src ->
        Hashtbl.iter (fun bid _ -> if not (known bid) then Hashtbl.replace tbl bid ()) src)
      [ acc.deliv; acc.hop_deliv; acc.dup ];
    Hashtbl.length tbl
  in
  let deliveries = Hashtbl.fold (fun _ n a -> a + n) acc.deliv 0 in
  let dups = Hashtbl.fold (fun _ n a -> a + n) acc.dup 0 in
  let depth0_total =
    List.fold_left (fun a tr -> a + tr.depth0) 0 trees
  in
  let hop_hist =
    let base = if depth0_total > 0 then [ (0, depth0_total) ] else [] in
    List.sort compare
      (Hashtbl.fold (fun d n l -> (d, n) :: l) acc.hop_counts base)
  in
  let latencies = List.rev acc.latencies in
  let latency_cdf = if latencies = [] then [] else Stats.cdf latencies in
  let latency_p =
    if latencies = [] then []
    else
      [
        ("p50", Stats.percentile latencies 50.0);
        ("p90", Stats.percentile latencies 90.0);
        ("p99", Stats.percentile latencies 99.0);
        ("max", Stats.percentile latencies 100.0);
      ]
  in
  let saga_names =
    let tbl = Hashtbl.create 16 in
    Hashtbl.iter (fun n _ -> Hashtbl.replace tbl n ()) acc.saga_durations;
    Hashtbl.iter (fun n _ -> Hashtbl.replace tbl n ()) acc.saga_unmatched;
    List.sort compare (Hashtbl.fold (fun n () l -> n :: l) tbl [])
  in
  let sagas =
    List.map
      (fun name ->
        let ds =
          match Hashtbl.find_opt acc.saga_durations name with
          | Some r -> List.rev !r
          | None -> []
        in
        let unmatched =
          match Hashtbl.find_opt acc.saga_unmatched name with Some r -> !r | None -> 0
        in
        let p q = if ds = [] then 0.0 else Stats.percentile ds q in
        {
          saga = name;
          completed = List.length ds;
          unmatched;
          d_p50 = p 50.0;
          d_p90 = p 90.0;
          d_max = p 100.0;
        })
      saga_names
  in
  (* The metrics counters can undercount: workloads may clear the
     metrics mid-run (Latency_exp does, to isolate its own deliveries)
     without touching the trace.  Per kind, trust whichever source saw
     more — counter vs. violation events still in the window plus
     those the ring dropped. *)
  let violations =
    let tbl = Hashtbl.create 8 in
    List.iter (fun (k, n) -> Hashtbl.replace tbl k n) violations;
    let traced = Hashtbl.copy acc.viol_events in
    List.iter
      (fun (kind, n) ->
        if has_violation_prefix kind then
          bump traced (strip_prefix kind) n)
      dropped_by_kind;
    Hashtbl.iter
      (fun k n ->
        if n > Option.value ~default:0 (Hashtbl.find_opt tbl k) then
          Hashtbl.replace tbl k n)
      traced;
    List.sort compare (Hashtbl.fold (fun k n l -> (k, n) :: l) tbl [])
  in
  {
    trees;
    orphan_bids;
    deliveries;
    dups;
    redundancy = (if deliveries = 0 then 0.0 else float_of_int dups /. float_of_int deliveries);
    hop_hist;
    latency_cdf;
    latency_p;
    sagas;
    violations;
    violations_total = List.fold_left (fun a (_, n) -> a + n) 0 violations;
    byzantine_events =
      Atum_util.Hashtbl_ext.sorted_bindings ~cmp:String.compare acc.byz_events;
    fault_events =
      Atum_util.Hashtbl_ext.sorted_bindings ~cmp:String.compare acc.flt_events;
    events_seen = acc.seen;
    dropped_total;
    dropped_by_kind;
    sample_rate;
    sampled_out_total;
    sampled_out_by_kind;
    trace_truncated = dropped_total > 0 || sampled_out_total > 0;
  }

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let of_trace trace ~metrics =
  let acc = make_acc () in
  Trace.iter trace (feed acc);
  let violations =
    List.filter_map
      (fun name ->
        if has_violation_prefix name then
          Some (strip_prefix name, Metrics.counter metrics name)
        else None)
      (Metrics.counter_names metrics)
    |> List.sort compare
  in
  finish acc ~violations ~dropped_total:(Trace.dropped trace)
    ~dropped_by_kind:(Trace.dropped_by_kind trace)
    ~sample_rate:(Trace.sample_rate trace) ~sampled_out_total:(Trace.sampled_out trace)
    ~sampled_out_by_kind:(Trace.sampled_out_by_kind trace) ()

(* Artifact parsing: the [ATUM_*.json] layout written by atum_cli
   (schema 2): {..., metrics: {counters; series}, trace: {capacity;
   total; dropped; dropped_by_kind; events}}. *)

let int_member ?(default = -1) key obj =
  match Json.member key obj with Some (Json.Int n) -> n | _ -> default

let float_member key obj =
  match Json.member key obj with
  | Some (Json.Float f) -> f
  | Some (Json.Int n) -> float_of_int n
  | _ -> 0.0

let event_of_json obj : Trace.event option =
  match Json.member "kind" obj with
  | Some (Json.String kind) ->
    Some
      {
        Trace.time = float_member "t" obj;
        kind;
        node = int_member "node" obj;
        peer = int_member "peer" obj;
        vgroup = int_member "vgroup" obj;
        size = int_member "size" obj ~default:0;
        bid = int_member "bid" obj;
        span = int_member "span" obj;
        parent = int_member "parent" obj;
        cycle = int_member "cycle" obj;
      }
  | _ -> None

let of_artifact json =
  match Json.member "trace" json with
  | None -> Error "artifact has no \"trace\" member (was it written with --json?)"
  | Some trace_json -> (
    match Json.member "events" trace_json with
    | Some (Json.List events) ->
      let acc = make_acc () in
      List.iter (fun ev -> Option.iter (feed acc) (event_of_json ev)) events;
      let violations =
        match Option.bind (Json.member "metrics" json) (Json.member "counters") with
        | Some (Json.Obj counters) ->
          List.filter_map
            (fun (name, v) ->
              match v with
              | Json.Int n when has_violation_prefix name -> Some (strip_prefix name, n)
              | _ -> None)
            counters
          |> List.sort compare
        | _ -> []
      in
      let dropped_total = max 0 (int_member "dropped" trace_json ~default:0) in
      let kind_counts key =
        match Json.member key trace_json with
        | Some (Json.Obj kinds) ->
          List.filter_map
            (fun (k, v) -> match v with Json.Int n -> Some (k, n) | _ -> None)
            kinds
        | _ -> []
      in
      let dropped_by_kind = kind_counts "dropped_by_kind" in
      (* Sampling counters landed in trace schema 5; older artifacts
         simply lack them, which reads back as a complete trace. *)
      let sample_rate =
        match Json.member "sample_rate" trace_json with
        | Some (Json.Float f) -> f
        | Some (Json.Int n) -> float_of_int n
        | _ -> 1.0
      in
      let sampled_out_total = max 0 (int_member "sampled_out" trace_json ~default:0) in
      Ok
        (finish acc ~violations ~dropped_total ~dropped_by_kind ~sample_rate
           ~sampled_out_total ~sampled_out_by_kind:(kind_counts "sampled_out_by_kind") ())
    | _ -> Error "artifact trace has no \"events\" array")

let load_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | contents -> Result.bind (Json.of_string contents) of_artifact

(* ------------------------------------------------------------------ *)
(* Output                                                              *)
(* ------------------------------------------------------------------ *)

let tree_to_json tr =
  Json.Obj
    [
      ("bid", Json.Int tr.bid);
      ("origin", Json.Int tr.origin);
      ("root_vg", Json.Int tr.root_vg);
      ("sent_at", Json.Float tr.sent_at);
      ("deliveries", Json.Int tr.deliveries);
      ("dups", Json.Int tr.dups);
      ("depth0", Json.Int tr.depth0);
      ("max_depth", Json.Int tr.max_depth);
      ("incomplete_hops", Json.Int tr.incomplete_hops);
    ]

let to_json r =
  Json.Obj
    [
      ("trees", Json.Int (List.length r.trees));
      ("broadcasts", Json.List (List.map tree_to_json r.trees));
      ("orphan_bids", Json.Int r.orphan_bids);
      ("deliveries", Json.Int r.deliveries);
      ("dups", Json.Int r.dups);
      ("redundancy", Json.Float r.redundancy);
      ( "hop_hist",
        Json.Obj (List.map (fun (d, n) -> (string_of_int d, Json.Int n)) r.hop_hist) );
      ( "latency_cdf",
        Json.List
          (List.map (fun (v, f) -> Json.List [ Json.Float v; Json.Float f ]) r.latency_cdf)
      );
      ( "latency_percentiles",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) r.latency_p) );
      ( "sagas",
        Json.Obj
          (List.map
             (fun s ->
               ( s.saga,
                 Json.Obj
                   [
                     ("completed", Json.Int s.completed);
                     ("unmatched", Json.Int s.unmatched);
                     ("p50", Json.Float s.d_p50);
                     ("p90", Json.Float s.d_p90);
                     ("max", Json.Float s.d_max);
                   ] ))
             r.sagas) );
      ( "violations",
        Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) r.violations) );
      ("violations_total", Json.Int r.violations_total);
      ( "byzantine_events",
        Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) r.byzantine_events) );
      ( "fault_events",
        Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) r.fault_events) );
      ("events_seen", Json.Int r.events_seen);
      ("dropped_total", Json.Int r.dropped_total);
      ( "dropped_by_kind",
        Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) r.dropped_by_kind) );
      ("trace_truncated", Json.Bool r.trace_truncated);
      ( "sampling",
        Json.Obj
          [
            ("rate", Json.Float r.sample_rate);
            ("sampled_out", Json.Int r.sampled_out_total);
            ( "sampled_out_by_kind",
              Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) r.sampled_out_by_kind) );
            (* When true, CDFs, hop histograms and redundancy above are
               estimates over the surviving fraction, not exact counts. *)
            ("estimates", Json.Bool r.trace_truncated);
          ] );
    ]

let pp ppf r =
  let open Format in
  fprintf ppf "broadcast trees: %d (%d orphan bids)@," (List.length r.trees) r.orphan_bids;
  fprintf ppf "deliveries: %d, redundant receives: %d (redundancy %.3f)@," r.deliveries
    r.dups r.redundancy;
  if r.hop_hist <> [] then begin
    fprintf ppf "hop distribution:@,";
    List.iter
      (fun (d, n) -> fprintf ppf "  depth %d: %d deliveries@," d n)
      r.hop_hist
  end;
  if r.latency_p <> [] then begin
    fprintf ppf "first-delivery latency:";
    List.iter (fun (k, v) -> fprintf ppf " %s=%.4fs" k v) r.latency_p;
    fprintf ppf "@,"
  end;
  if r.trees <> [] then begin
    fprintf ppf "per-broadcast:@,";
    List.iter
      (fun tr ->
        fprintf ppf
          "  bid %d: %d deliveries (depth0 %d, max depth %d), %d dups%s@," tr.bid
          tr.deliveries tr.depth0 tr.max_depth tr.dups
          (if tr.incomplete_hops > 0 then
             Printf.sprintf ", %d hops unattributed" tr.incomplete_hops
           else ""))
      r.trees
  end;
  if r.sagas <> [] then begin
    fprintf ppf "sagas:@,";
    List.iter
      (fun s ->
        fprintf ppf "  %-8s completed %5d  unmatched %3d  p50 %.3fs  p90 %.3fs  max %.3fs@,"
          s.saga s.completed s.unmatched s.d_p50 s.d_p90 s.d_max)
      r.sagas
  end;
  if r.violations = [] then fprintf ppf "invariant violations: none@,"
  else begin
    fprintf ppf "invariant violations: %d@," r.violations_total;
    List.iter (fun (k, n) -> fprintf ppf "  %s: %d@," k n) r.violations
  end;
  if r.byzantine_events <> [] then begin
    fprintf ppf "adversary activity:@,";
    List.iter (fun (k, n) -> fprintf ppf "  %s: %d@," k n) r.byzantine_events
  end;
  if r.fault_events <> [] then begin
    fprintf ppf "injected faults:@,";
    List.iter (fun (k, n) -> fprintf ppf "  %s: %d@," k n) r.fault_events
  end;
  if r.dropped_total > 0 then begin
    fprintf ppf "trace incomplete: %d events dropped by ring wrap@," r.dropped_total;
    List.iter (fun (k, n) -> fprintf ppf "  dropped %s: %d@," k n) r.dropped_by_kind
  end;
  if r.sampled_out_total > 0 then begin
    fprintf ppf "trace sampled: %d events suppressed (rate %.3f)@," r.sampled_out_total
      r.sample_rate;
    List.iter (fun (k, n) -> fprintf ppf "  sampled out %s: %d@," k n)
      r.sampled_out_by_kind
  end;
  if r.trace_truncated then
    fprintf ppf
      "NOTE: trace is lossy — CDFs, hop histogram and redundancy are estimates@,"
