(* Perf-regression diffing between two JSON artifacts (the `atum-cli
   compare` subcommand and the CI bench-baseline gate).

   Both artifacts are flattened to sorted (path, number) pairs —
   objects recurse with dotted keys, lists of objects key their rows
   by an identifying field (label/config/section/phase/protocol/n)
   falling back to the index — then matched path by path.  Each key's
   name decides which direction is good: throughputs up, latencies
   and footprints down, everything else informational.  A metric
   present in OLD but missing from NEW counts as a regression (a
   silently vanished measurement must fail the gate). *)

module Json = Atum_util.Json

type direction = Higher_better | Lower_better | Info

type status = Ok_within | Improved | Regressed | Missing | Added

type delta = {
  key : string;
  old_v : float option;
  new_v : float option;
  rel : float;  (* (new - old) / |old|; 0.0 when both sides are 0 *)
  dir : direction;
  status : status;
}

type result = {
  threshold : float;  (* relative, e.g. 0.10 = 10% *)
  deltas : delta list;  (* sorted by key *)
  regressed : int;
  improved : int;
  within : int;
}

(* --- key classification ---------------------------------------------- *)

let leaf_of key =
  match String.rindex_opt key '.' with
  | Some i -> String.sub key (i + 1) (String.length key - i - 1)
  | None -> key

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let ends_with ~suffix s =
  let n = String.length suffix and m = String.length s in
  m >= n && String.sub s (m - n) n = suffix

let higher_better_suffixes =
  [
    "per_sec";
    "speedup";
    "success";
    "delivery_fraction";
    "completion_rate";
    "max_sustained_per_min";
    "deliveries";
    "delivered";
    "final_size";
  ]

let lower_better_leaves =
  [ "engine_events"; "peak_live_words"; "bytes"; "bytes_total"; "dropped"; "dups" ]

let direction_of_key key =
  let leaf = leaf_of key in
  (* Wall-clock readings are nondeterministic run to run (and zeroed
     under ATUM_BENCH_JSON_CANON), so never gate on them. *)
  if contains ~sub:"wall" leaf then Info
  else if List.exists (fun s -> ends_with ~suffix:s leaf) higher_better_suffixes then
    Higher_better
  else if List.mem leaf lower_better_leaves then Lower_better
  else if ends_with ~suffix:"_s" leaf then Lower_better (* latencies / durations *)
  else Info

(* --- flattening ------------------------------------------------------ *)

(* Provenance and bulky event payloads never participate in a diff. *)
let skip_keys =
  [ "build_info"; "schema_version"; "seed"; "trace"; "timeseries"; "telemetry";
    "events"; "schedule"; "latency_cdf"; "curve"; "delay_hist" ]

let row_id fields =
  let find k = List.assoc_opt k fields in
  let id_of = function
    | Some (Json.String s) -> Some s
    | Some (Json.Int n) -> Some (string_of_int n)
    | _ -> None
  in
  let rec first = function
    | [] -> None
    | k :: rest -> (match id_of (find k) with Some s -> Some s | None -> first rest)
  in
  first [ "label"; "config"; "section"; "phase"; "protocol"; "fig"; "name"; "n" ]

let flatten json =
  let out = ref [] in
  let rec go prefix j =
    match j with
    | Json.Obj fields ->
      List.iter
        (fun (k, v) ->
          if not (List.mem k skip_keys) then
            go (if prefix = "" then k else prefix ^ "." ^ k) v)
        fields
    | Json.List items ->
      List.iteri
        (fun i item ->
          let key =
            match item with
            | Json.Obj fields -> (
              match row_id fields with
              | Some id -> prefix ^ "[" ^ id ^ "]"
              | None -> prefix ^ "[" ^ string_of_int i ^ "]")
            | _ -> prefix ^ "[" ^ string_of_int i ^ "]"
          in
          go key item)
        items
    | Json.Int n -> out := (prefix, float_of_int n) :: !out
    | Json.Float f -> out := (prefix, f) :: !out
    | Json.Bool _ | Json.String _ | Json.Null -> ()
  in
  go "" json;
  List.sort compare !out

(* --- diffing --------------------------------------------------------- *)

let rel_change ~old_v ~new_v =
  if Float.abs old_v < 1e-12 then if Float.abs new_v < 1e-12 then 0.0 else 1.0
  else (new_v -. old_v) /. Float.abs old_v

let classify ~threshold ~dir rel =
  match dir with
  | Info -> Ok_within
  | Higher_better ->
    if rel <= -.threshold then Regressed
    else if rel >= threshold then Improved
    else Ok_within
  | Lower_better ->
    if rel >= threshold then Regressed
    else if rel <= -.threshold then Improved
    else Ok_within

let run ?(threshold = 0.10) ~old_json ~new_json () =
  if threshold < 0.0 then invalid_arg "Compare.run: threshold must be non-negative";
  let old_kv = flatten old_json and new_kv = flatten new_json in
  let new_tbl = Hashtbl.create 256 in
  List.iter (fun (k, v) -> Hashtbl.replace new_tbl k v) new_kv;
  let old_tbl = Hashtbl.create 256 in
  List.iter (fun (k, v) -> Hashtbl.replace old_tbl k v) old_kv;
  let deltas = ref [] in
  List.iter
    (fun (key, old_v) ->
      let dir = direction_of_key key in
      match Hashtbl.find_opt new_tbl key with
      | Some new_v ->
        let rel = rel_change ~old_v ~new_v in
        deltas :=
          {
            key;
            old_v = Some old_v;
            new_v = Some new_v;
            rel;
            dir;
            status = classify ~threshold ~dir rel;
          }
          :: !deltas
      | None ->
        (* A measurement that disappeared is a gate failure even if the
           direction is informational: the baseline promises coverage. *)
        deltas :=
          { key; old_v = Some old_v; new_v = None; rel = 0.0; dir; status = Missing }
          :: !deltas)
    old_kv;
  List.iter
    (fun (key, new_v) ->
      if not (Hashtbl.mem old_tbl key) then
        deltas :=
          {
            key;
            old_v = None;
            new_v = Some new_v;
            rel = 0.0;
            dir = direction_of_key key;
            status = Added;
          }
          :: !deltas)
    new_kv;
  let deltas = List.sort (fun a b -> String.compare a.key b.key) !deltas in
  let count st = List.length (List.filter (fun d -> d.status = st) deltas) in
  {
    threshold;
    deltas;
    regressed = count Regressed + count Missing;
    improved = count Improved;
    within = count Ok_within;
  }

let regressions r =
  List.filter (fun d -> d.status = Regressed || d.status = Missing) r.deltas

(* --- output ---------------------------------------------------------- *)

let status_str = function
  | Ok_within -> "ok"
  | Improved -> "improved"
  | Regressed -> "REGRESSED"
  | Missing -> "MISSING"
  | Added -> "added"

let dir_str = function
  | Higher_better -> "higher_better"
  | Lower_better -> "lower_better"
  | Info -> "info"

let delta_to_json d =
  let num = function Some v -> Json.Float v | None -> Json.Null in
  Json.Obj
    [
      ("key", Json.String d.key);
      ("old", num d.old_v);
      ("new", num d.new_v);
      ("rel_change", Json.Float d.rel);
      ("direction", Json.String (dir_str d.dir));
      ("status", Json.String (status_str d.status));
    ]

let to_json r =
  Json.Obj
    [
      ("threshold", Json.Float r.threshold);
      ("regressed", Json.Int r.regressed);
      ("improved", Json.Int r.improved);
      ("within_threshold", Json.Int r.within);
      ("deltas", Json.List (List.map delta_to_json r.deltas));
    ]

let pp ppf r =
  let open Format in
  let pct x = x *. 100.0 in
  let interesting =
    List.filter (fun d -> d.status <> Ok_within && d.status <> Added) r.deltas
  in
  fprintf ppf "compared %d metrics (threshold %.1f%%): %d regressed, %d improved, %d within@,"
    (List.length r.deltas) (pct r.threshold) r.regressed r.improved r.within;
  List.iter
    (fun d ->
      match (d.old_v, d.new_v) with
      | Some o, Some n ->
        fprintf ppf "  %-9s %s: %s -> %s (%+.1f%%)@," (status_str d.status) d.key
          (Json.float_to_string o) (Json.float_to_string n) (pct d.rel)
      | Some o, None ->
        fprintf ppf "  %-9s %s: %s -> (gone)@," (status_str d.status) d.key
          (Json.float_to_string o)
      | None, _ -> ())
    interesting;
  let added = List.filter (fun d -> d.status = Added) r.deltas in
  if added <> [] then fprintf ppf "  %d new metrics not in baseline@," (List.length added)
