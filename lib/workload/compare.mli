(** Perf-regression diffing between two JSON artifacts (the `atum-cli
    compare` subcommand and the CI bench-baseline gate).

    Flattens both artifacts to (dotted-path, number) pairs — list rows
    keyed by an identifying field (label / config / section / phase /
    protocol / n) when one exists, else by index; provenance
    ([build_info], [seed], [schema_version]) and bulky payloads
    ([trace], [timeseries], [events], ...) excluded — then classifies
    each path's change by the metric name: throughput-like keys are
    higher-better, latency/footprint-like keys lower-better,
    wall-clock and everything unrecognized informational.  A metric
    present in the old artifact but missing from the new one is a
    regression. *)

type direction = Higher_better | Lower_better | Info

type status =
  | Ok_within  (** within threshold, or informational *)
  | Improved  (** moved past the threshold in the good direction *)
  | Regressed  (** moved past the threshold in the bad direction *)
  | Missing  (** in the old artifact only — gate failure *)
  | Added  (** in the new artifact only — informational *)

type delta = {
  key : string;
  old_v : float option;
  new_v : float option;
  rel : float;  (** (new - old) / |old|; 1.0 when old = 0 and new <> 0 *)
  dir : direction;
  status : status;
}

type result = {
  threshold : float;  (** relative, e.g. 0.10 = 10% *)
  deltas : delta list;  (** sorted by key *)
  regressed : int;  (** [Regressed] plus [Missing] *)
  improved : int;
  within : int;
}

val direction_of_key : string -> direction

val flatten : Atum_util.Json.t -> (string * float) list
(** Sorted (path, value) pairs, for tests and tooling. *)

val run :
  ?threshold:float ->
  old_json:Atum_util.Json.t ->
  new_json:Atum_util.Json.t ->
  unit ->
  result
(** Diff two parsed artifacts.  [threshold] (default 0.10) is the
    relative change beyond which a directional metric counts as
    regressed/improved.  Raises [Invalid_argument] on a negative
    threshold. *)

val regressions : result -> delta list
(** The [Regressed] and [Missing] deltas; non-empty means the gate
    should fail. *)

val to_json : result -> Atum_util.Json.t
(** [{threshold; regressed; improved; within_threshold; deltas}]. *)

val pp : Format.formatter -> result -> unit
(** Summary line plus one line per regression/improvement/missing
    metric. *)
