type cycle = {
  succ : (int, int) Hashtbl.t;
  pred : (int, int) Hashtbl.t;
}

type t = { rings : cycle array }

let cycles t = Array.length t.rings

let link ring a b =
  Hashtbl.replace ring.succ a b;
  Hashtbl.replace ring.pred b a

let make_ring order =
  let ring = { succ = Hashtbl.create 64; pred = Hashtbl.create 64 } in
  let n = Array.length order in
  for i = 0 to n - 1 do
    link ring order.(i) order.((i + 1) mod n)
  done;
  ring

let create ~cycles rng vertices =
  if cycles <= 0 then invalid_arg "Hgraph.create: need at least one cycle";
  if vertices = [] then invalid_arg "Hgraph.create: need at least one vertex";
  let base = Array.of_list vertices in
  if List.length (List.sort_uniq Int.compare vertices) <> Array.length base then
    invalid_arg "Hgraph.create: duplicate vertices";
  let rings =
    Array.init cycles (fun _ ->
        let order = Array.copy base in
        Atum_util.Rng.shuffle rng order;
        make_ring order)
  in
  { rings }

let singleton ~cycles v =
  if cycles <= 0 then invalid_arg "Hgraph.singleton: need at least one cycle";
  { rings = Array.init cycles (fun _ -> make_ring [| v |]) }

(* A vertex may transiently live on a subset of the cycles while a
   split is splicing it in (§3.3.2); membership and neighbor queries
   therefore consider every ring. *)
let vertices t =
  let seen = Hashtbl.create 64 in
  Array.iter (fun ring -> Hashtbl.iter (fun v _ -> Hashtbl.replace seen v ()) ring.succ) t.rings;
  Atum_util.Hashtbl_ext.sorted_keys ~cmp:Int.compare seen

let vertex_count t = List.length (vertices t)

let mem t v = Array.exists (fun ring -> Hashtbl.mem ring.succ v) t.rings

let check_cycle_index t cycle =
  if cycle < 0 || cycle >= Array.length t.rings then invalid_arg "Hgraph: bad cycle index"

let successor t ~cycle v =
  check_cycle_index t cycle;
  match Hashtbl.find_opt t.rings.(cycle).succ v with
  | Some s -> s
  | None -> invalid_arg "Hgraph.successor: unknown vertex"

let predecessor t ~cycle v =
  check_cycle_index t cycle;
  match Hashtbl.find_opt t.rings.(cycle).pred v with
  | Some p -> p
  | None -> invalid_arg "Hgraph.predecessor: unknown vertex"

let neighbors t v =
  let acc = ref [] in
  for c = Array.length t.rings - 1 downto 0 do
    match (Hashtbl.find_opt t.rings.(c).pred v, Hashtbl.find_opt t.rings.(c).succ v) with
    | Some p, Some s -> acc := (c, p) :: (c, s) :: !acc
    | _ -> () (* not (yet) on this cycle *)
  done;
  !acc

let neighbor_set t v =
  List.sort_uniq Int.compare (List.map snd (neighbors t v))

let insert_after t ~cycle ~after v =
  check_cycle_index t cycle;
  let ring = t.rings.(cycle) in
  if Hashtbl.mem ring.succ v then invalid_arg "Hgraph.insert_after: vertex already on cycle";
  match Hashtbl.find_opt ring.succ after with
  | None -> invalid_arg "Hgraph.insert_after: anchor not on cycle"
  | Some next ->
    link ring after v;
    link ring v next

let remove t v =
  Array.iter
    (fun ring ->
      match (Hashtbl.find_opt ring.pred v, Hashtbl.find_opt ring.succ v) with
      | Some p, Some s ->
        Hashtbl.remove ring.succ v;
        Hashtbl.remove ring.pred v;
        if p <> v then link ring p s
      | _ -> ())
    t.rings

let check_invariants t =
  let expected = vertices t in
  let n = List.length expected in
  let check_ring i ring =
    if Hashtbl.length ring.succ <> n then
      Error (Printf.sprintf "cycle %d has %d vertices, expected %d" i (Hashtbl.length ring.succ) n)
    else begin
      (* Walk the successors: must return to start after exactly n steps
         and visit every vertex. *)
      match expected with
      | [] -> Error "empty graph"
      | start :: _ ->
        let seen = Hashtbl.create n in
        let rec walk v steps =
          if steps > n then Error (Printf.sprintf "cycle %d does not close" i)
          else if v = start && steps > 0 then
            if steps = n then Ok () else Error (Printf.sprintf "cycle %d is fragmented" i)
          else if Hashtbl.mem seen v then Error (Printf.sprintf "cycle %d revisits %d" i v)
          else begin
            Hashtbl.replace seen v ();
            match Hashtbl.find_opt ring.succ v with
            | None -> Error (Printf.sprintf "cycle %d missing successor of %d" i v)
            | Some s ->
              if not (Option.equal Int.equal (Hashtbl.find_opt ring.pred s) (Some v)) then
                Error (Printf.sprintf "cycle %d pred/succ mismatch at %d" i v)
              else walk s (steps + 1)
          end
        in
        walk start 0
    end
  in
  let rec check_all i =
    if i >= Array.length t.rings then Ok ()
    else begin
      match check_ring i t.rings.(i) with Ok () -> check_all (i + 1) | Error e -> Error e
    end
  in
  check_all 0

let successor_opt t ~cycle v =
  check_cycle_index t cycle;
  Hashtbl.find_opt t.rings.(cycle).succ v

let predecessor_opt t ~cycle v =
  check_cycle_index t cycle;
  Hashtbl.find_opt t.rings.(cycle).pred v
