(* H-graph overlay as dense arrays.

   Vgroup ids are dense ints (see Atum_util.Arena), so each ring
   keeps its successor/predecessor maps as flat int arrays indexed by
   vertex id, -1 meaning "not on this cycle".  Every query the gossip
   hot path performs (membership, neighbors, successor) is then an
   array read; enumeration ([vertices]) is an ascending index walk —
   already the sorted order the deterministic artifacts need, with no
   hash fold and no sort.

   [generation] counts structural mutations; the protocol layer keys
   its per-vgroup neighbor-view caches on it so a view is recomputed
   exactly once per overlay change instead of once per delivery. *)

type t = {
  ncycles : int;
  mutable succ : int array array; (* succ.(cycle).(v) = successor, or -1 *)
  mutable pred : int array array;
  mutable on_cycles : int array; (* per-vertex count of cycles it is on *)
  mutable cap : int;
  mutable nverts : int; (* vertices present on at least one cycle *)
  mutable generation : int;
}

let cycles t = t.ncycles
let generation t = t.generation

let make ~cycles ~cap =
  if cycles <= 0 then invalid_arg "Hgraph: need at least one cycle";
  let cap = max cap 16 in
  {
    ncycles = cycles;
    succ = Array.init cycles (fun _ -> Array.make cap (-1));
    pred = Array.init cycles (fun _ -> Array.make cap (-1));
    on_cycles = Array.make cap 0;
    cap;
    nverts = 0;
    generation = 0;
  }

let ensure t v =
  if v >= t.cap then begin
    let cap = max (v + 1) (2 * t.cap) in
    let grow a =
      let b = Array.make cap (-1) in
      Array.blit a 0 b 0 t.cap;
      b
    in
    t.succ <- Array.map grow t.succ;
    t.pred <- Array.map grow t.pred;
    let oc = Array.make cap 0 in
    Array.blit t.on_cycles 0 oc 0 t.cap;
    t.on_cycles <- oc;
    t.cap <- cap
  end

let check_vertex v ~who = if v < 0 then invalid_arg ("Hgraph." ^ who ^ ": negative vertex")

(* Presence on a cycle is defined by the successor slot, as it was by
   membership in the succ table before the array rewrite. *)
let set_succ t ~cycle v s =
  let row = t.succ.(cycle) in
  if row.(v) < 0 && s >= 0 then begin
    t.on_cycles.(v) <- t.on_cycles.(v) + 1;
    if t.on_cycles.(v) = 1 then t.nverts <- t.nverts + 1
  end
  else if row.(v) >= 0 && s < 0 then begin
    t.on_cycles.(v) <- t.on_cycles.(v) - 1;
    if t.on_cycles.(v) = 0 then t.nverts <- t.nverts - 1
  end;
  row.(v) <- s

let link t cycle a b =
  set_succ t ~cycle a b;
  t.pred.(cycle).(b) <- a

let make_ring t cycle order =
  let n = Array.length order in
  for i = 0 to n - 1 do
    link t cycle order.(i) order.((i + 1) mod n)
  done

let create ~cycles rng vertices =
  if vertices = [] then invalid_arg "Hgraph.create: need at least one vertex";
  List.iter (fun v -> check_vertex v ~who:"create") vertices;
  let base = Array.of_list vertices in
  if List.length (List.sort_uniq Int.compare vertices) <> Array.length base then
    invalid_arg "Hgraph.create: duplicate vertices";
  let t = make ~cycles ~cap:(1 + Array.fold_left max 0 base) in
  for cycle = 0 to cycles - 1 do
    let order = Array.copy base in
    Atum_util.Rng.shuffle rng order;
    make_ring t cycle order
  done;
  t.generation <- 1;
  t

let singleton ~cycles v =
  check_vertex v ~who:"singleton";
  let t = make ~cycles ~cap:(v + 1) in
  for cycle = 0 to cycles - 1 do
    make_ring t cycle [| v |]
  done;
  t.generation <- 1;
  t

let empty ~cycles = make ~cycles ~cap:16

(* A vertex may transiently live on a subset of the cycles while a
   split is splicing it in (§3.3.2); membership and neighbor queries
   therefore consider every ring. *)
let vertices t =
  let acc = ref [] in
  for v = t.cap - 1 downto 0 do
    if t.on_cycles.(v) > 0 then acc := v :: !acc
  done;
  !acc

let vertex_count t = t.nverts

let mem t v = v >= 0 && v < t.cap && t.on_cycles.(v) > 0

let check_cycle_index t cycle =
  if cycle < 0 || cycle >= t.ncycles then invalid_arg "Hgraph: bad cycle index"

let slot row v = if v >= 0 && v < Array.length row then row.(v) else -1

let successor t ~cycle v =
  check_cycle_index t cycle;
  let s = slot t.succ.(cycle) v in
  if s < 0 then invalid_arg "Hgraph.successor: unknown vertex" else s

let predecessor t ~cycle v =
  check_cycle_index t cycle;
  let p = slot t.pred.(cycle) v in
  if p < 0 then invalid_arg "Hgraph.predecessor: unknown vertex" else p

let neighbors t v =
  let acc = ref [] in
  for c = t.ncycles - 1 downto 0 do
    let p = slot t.pred.(c) v and s = slot t.succ.(c) v in
    if p >= 0 && s >= 0 then acc := (c, p) :: (c, s) :: !acc
  done;
  !acc

let neighbor_set t v =
  List.sort_uniq Int.compare (List.map snd (neighbors t v))

let insert_after t ~cycle ~after v =
  check_cycle_index t cycle;
  check_vertex v ~who:"insert_after";
  ensure t v;
  if t.succ.(cycle).(v) >= 0 then invalid_arg "Hgraph.insert_after: vertex already on cycle";
  let next = slot t.succ.(cycle) after in
  if next < 0 then invalid_arg "Hgraph.insert_after: anchor not on cycle"
  else begin
    link t cycle after v;
    link t cycle v next;
    t.generation <- t.generation + 1
  end

let remove t v =
  if v >= 0 && v < t.cap then begin
    for cycle = 0 to t.ncycles - 1 do
      let p = t.pred.(cycle).(v) and s = t.succ.(cycle).(v) in
      if p >= 0 && s >= 0 then begin
        set_succ t ~cycle v (-1);
        t.pred.(cycle).(v) <- -1;
        if p <> v then link t cycle p s
      end
    done;
    t.generation <- t.generation + 1
  end

let check_invariants t =
  let expected = vertices t in
  let n = List.length expected in
  let ring_size cycle =
    let row = t.succ.(cycle) in
    let k = ref 0 in
    Array.iter (fun s -> if s >= 0 then incr k) row;
    !k
  in
  let check_ring i =
    if ring_size i <> n then
      Error (Printf.sprintf "cycle %d has %d vertices, expected %d" i (ring_size i) n)
    else begin
      (* Walk the successors: must return to start after exactly n steps
         and visit every vertex. *)
      match expected with
      | [] -> Error "empty graph"
      | start :: _ ->
        let seen = Hashtbl.create n in
        let rec walk v steps =
          if steps > n then Error (Printf.sprintf "cycle %d does not close" i)
          else if v = start && steps > 0 then
            if steps = n then Ok () else Error (Printf.sprintf "cycle %d is fragmented" i)
          else if Hashtbl.mem seen v then Error (Printf.sprintf "cycle %d revisits %d" i v)
          else begin
            Hashtbl.replace seen v ();
            let s = slot t.succ.(i) v in
            if s < 0 then Error (Printf.sprintf "cycle %d missing successor of %d" i v)
            else if slot t.pred.(i) s <> v then
              Error (Printf.sprintf "cycle %d pred/succ mismatch at %d" i v)
            else walk s (steps + 1)
          end
        in
        walk start 0
    end
  in
  let rec check_all i =
    if i >= t.ncycles then Ok ()
    else begin
      match check_ring i with Ok () -> check_all (i + 1) | Error e -> Error e
    end
  in
  check_all 0

let successor_opt t ~cycle v =
  check_cycle_index t cycle;
  let s = slot t.succ.(cycle) v in
  if s < 0 then None else Some s

let predecessor_opt t ~cycle v =
  check_cycle_index t cycle;
  let p = slot t.pred.(cycle) v in
  if p < 0 then None else Some p
