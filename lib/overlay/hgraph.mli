(** H-graph overlay (Law & Siu): a multigraph over vgroup ids made of
    a constant number [hc] of Hamiltonian cycles.  Every vertex has a
    predecessor and a successor on each cycle, so the degree is
    constant (2·hc counting multi-edges), the graph is an expander
    with high probability, and its diameter is logarithmic — which is
    what makes gossip and random walks over it efficient (§3.2).

    The structure supports the two topology changes Atum needs:
    {!insert_after} (vgroup split: the new vgroup is spliced into each
    cycle at a position chosen by a random walk) and {!remove} (vgroup
    merge: the gap on each cycle closes by connecting predecessor and
    successor, §3.3.3). *)

type t

val create : cycles:int -> Atum_util.Rng.t -> int list -> t
(** [create ~cycles rng vertices] builds [cycles] independent uniform
    random Hamiltonian cycles over [vertices] (which must be
    non-empty and duplicate-free). *)

val singleton : cycles:int -> int -> t
(** The bootstrap overlay: one vertex that is its own neighbor on
    every cycle. *)

val empty : cycles:int -> t
(** No vertices at all — the pre-bootstrap placeholder.  Every query
    behaves as if the vertex set were empty; populate with
    {!insert_after} anchored nowhere is impossible, so replace it
    wholesale (see {!create}/{!singleton}). *)

val cycles : t -> int

val generation : t -> int
(** Bumped on every structural mutation ([create], [insert_after],
    [remove]).  Consumers key caches of derived views (gossip
    neighbor lists) on it. *)

val vertices : t -> int list
(** Sorted. *)

val vertex_count : t -> int

val mem : t -> int -> bool

val successor : t -> cycle:int -> int -> int

val predecessor : t -> cycle:int -> int -> int

val neighbors : t -> int -> (int * int) list
(** [(cycle, vertex)] for both directions on every cycle; includes
    duplicates when cycles are short (multigraph semantics).  Walks
    pick uniformly from this list, which is exactly "a random incident
    link of the overlay". *)

val neighbor_set : t -> int -> int list
(** Distinct neighboring vertices (may include the vertex itself only
    when it is alone on a cycle). *)

val insert_after : t -> cycle:int -> after:int -> int -> unit
(** [insert_after g ~cycle ~after v] splices [v] between [after] and
    its successor on [cycle].  [v] must already be present on every
    cycle where it was previously inserted but absent from this one;
    a brand-new vertex must be inserted exactly once per cycle. *)

val remove : t -> int -> unit
(** Remove a vertex from every cycle, closing the gaps. *)

val check_invariants : t -> (unit, string) result
(** Every cycle is a single Hamiltonian cycle over exactly the vertex
    set — used by tests and property checks. *)

val successor_opt : t -> cycle:int -> int -> int option
(** [None] when the vertex is not (yet) on that cycle. *)

val predecessor_opt : t -> cycle:int -> int -> int option
