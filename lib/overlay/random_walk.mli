(** Random walks over the H-graph.

    This is the {e pure} walk used for configuration studies (Fig 4)
    and as the sampling step of the distributed protocols: at each
    step the walk follows a uniformly random incident link (2·hc
    multi-edges).  The distributed implementation in [Atum_core] adds
    the communication machinery (bulk RNG, backward phase or
    certificate chains, §5.1) on top of the same hop choices. *)

val step : Hgraph.t -> Atum_util.Rng.t -> int -> int
(** One hop from a vertex along a random incident link. *)

val walk : Hgraph.t -> Atum_util.Rng.t -> start:int -> length:int -> int
(** Endpoint of a [length]-hop walk. *)

val walk_path : Hgraph.t -> Atum_util.Rng.t -> start:int -> length:int -> int list
(** The full vertex sequence, [length + 1] long, starting at
    [start]. *)

val bulk_choices : Atum_util.Rng.t -> length:int -> int list
(** The paper's bulk RNG (§5.1): draw all [length] hop decisions up
    front; each is later reduced to a link index by {!choice_index}.
    Drawing ahead of time prevents a Byzantine node from biasing hop
    choices by draining a pre-computed randomness pool. *)

val choice_index : degree:int -> int -> int
(** [choice_index ~degree choice] reduces a pre-drawn hop decision to
    a uniform link index in [\[0, degree)].  Unlike [choice mod
    degree] this has no modulo bias, so a replayed walk is distributed
    exactly like a live walk ({!step}'s uniform [Rng.pick]).
    Deterministic in [choice].  Raises [Invalid_argument] when
    [degree <= 0]. *)

val walk_with_choices : Hgraph.t -> start:int -> choices:int list -> int
(** Replay a walk from pre-drawn hop decisions. *)

val step_fast : Hgraph.t -> Atum_util.Rng.t -> int -> int
(** Allocation-free variant of {!step} for large-scale simulation:
    picks one of the 2·hc incident links by index. *)

val walk_fast : Hgraph.t -> Atum_util.Rng.t -> start:int -> length:int -> int
