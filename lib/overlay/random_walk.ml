let step g rng v =
  let links = Hgraph.neighbors g v in
  snd (Atum_util.Rng.pick rng links)

let walk g rng ~start ~length =
  let rec loop v n = if n = 0 then v else loop (step g rng v) (n - 1) in
  loop start length

let walk_path g rng ~start ~length =
  let rec loop v n acc =
    if n = 0 then List.rev (v :: acc) else loop (step g rng v) (n - 1) (v :: acc)
  in
  loop start length []

let bulk_choices rng ~length =
  List.init length (fun _ -> Atum_util.Rng.int rng 1_000_000_007)

(* Reducing a bounded draw with [mod] is biased whenever the draw
   bound is not a multiple of the degree, and the degree (2·hc, or
   fewer during reconfiguration) is not known when the choices are
   drawn.  Seeding a throwaway splitmix stream with the choice and
   rejection-sampling from it is unbiased for every degree, still a
   pure function of the pre-drawn choice (replay stays deterministic),
   and distributed like [step]'s uniform [Rng.pick]. *)
let choice_index ~degree choice =
  if degree <= 0 then invalid_arg "Random_walk.choice_index: degree must be positive";
  Atum_util.Rng.int (Atum_util.Rng.create choice) degree

let walk_with_choices g ~start ~choices =
  List.fold_left
    (fun v choice ->
      let links = Hgraph.neighbors g v in
      snd (List.nth links (choice_index ~degree:(List.length links) choice)))
    start choices

let step_fast g rng v =
  let c = Atum_util.Rng.int rng (2 * Hgraph.cycles g) in
  let cycle = c lsr 1 in
  if c land 1 = 0 then Hgraph.successor g ~cycle v else Hgraph.predecessor g ~cycle v

let walk_fast g rng ~start ~length =
  let v = ref start in
  for _ = 1 to length do
    v := step_fast g rng !v
  done;
  !v
