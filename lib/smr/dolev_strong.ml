module Signature = Atum_crypto.Signature

type msg = { instance_id : string; value : string; sigs : Signature.t list }

let pp_msg fmt m =
  Format.fprintf fmt "ds{%s value=%S sigs=%d}" m.instance_id m.value (List.length m.sigs)

let msg_size m =
  String.length m.instance_id + String.length m.value + (48 * List.length m.sigs) + 16

type t = {
  keyring : Signature.keyring;
  self : Smr_intf.node_id;
  members : Smr_intf.node_id list;
  sender : Smr_intf.node_id;
  f : int;
  instance_id : string;
  mutable extracted : string list; (* reverse order of first extraction *)
  mutable inbox : msg list;
  mutable decided : string option option;
}

let create ~keyring ~self ~members ~sender ~f ~instance_id =
  {
    keyring;
    self;
    members;
    sender;
    f;
    instance_id;
    extracted = [];
    inbox = [];
    decided = None;
  }

let node_name id = "node-" ^ string_of_int id

let signed_payload t value = t.instance_id ^ ":" ^ value

let others t = List.filter (fun m -> m <> t.self) t.members

let sign t value = Signature.sign t.keyring ~signer:(node_name t.self) (signed_payload t value)

let make_msg t value sigs = { instance_id = t.instance_id; value; sigs }

let initiate t value =
  if t.self <> t.sender then invalid_arg "Dolev_strong.initiate: not the sender";
  t.extracted <- [ value ];
  let m = make_msg t value [ sign t value ] in
  List.map (fun dst -> (dst, m)) (others t)

let initiate_equivocating t assignments =
  if t.self <> t.sender then invalid_arg "Dolev_strong.initiate_equivocating: not the sender";
  (* The faulty sender "extracts" nothing consistent; it just signs
     whatever it sends to each victim. *)
  List.map (fun (dst, value) -> (dst, make_msg t value [ sign t value ])) assignments

let receive t ~src:_ m = if Option.is_none t.decided then t.inbox <- m :: t.inbox

(* A valid chain has >= round distinct signatures over this instance's
   payload, all from members, the first one from the sender. *)
let chain_valid t ~round (m : msg) =
  String.equal m.instance_id t.instance_id
  && List.length m.sigs >= round
  &&
  match m.sigs with
  | [] -> false
  | first :: _ ->
    String.equal first.Signature.signer (node_name t.sender)
    &&
    let payload = signed_payload t m.value in
    let signers = List.map (fun s -> s.Signature.signer) m.sigs in
    let distinct = List.sort_uniq String.compare signers in
    List.length distinct = List.length signers
    && List.for_all
         (fun s ->
           List.exists (fun id -> String.equal (node_name id) s.Signature.signer) t.members
           && Signature.verify t.keyring s ~msg:payload)
         m.sigs

let end_of_round t ~round =
  if Option.is_some t.decided then []
  else begin
    let batch = List.rev t.inbox in
    t.inbox <- [];
    let relays = ref [] in
    List.iter
      (fun m ->
        if chain_valid t ~round m && not (List.mem m.value t.extracted) then begin
          t.extracted <- t.extracted @ [ m.value ];
          if round <= t.f then begin
            let relay = make_msg t m.value (m.sigs @ [ sign t m.value ]) in
            List.iter (fun dst -> relays := (dst, relay) :: !relays) (others t)
          end
        end)
      batch;
    if round >= t.f + 1 then
      t.decided <-
        (match t.extracted with [ v ] -> Some (Some v) | _ -> Some None);
    List.rev !relays
  end

let decision t = t.decided

let extracted t = t.extracted
