type msg = { slot : int; sender : Smr_intf.node_id; ds : Dolev_strong.msg }

let msg_size m = Dolev_strong.msg_size m.ds + 16

type t = {
  keyring : Atum_crypto.Signature.keyring;
  tr : msg Smr_intf.transport;
  epoch_id : string;
  on_execute : Smr_intf.op -> unit;
  mutable slot : int;
  mutable round_in_slot : int; (* 0 before the first boundary *)
  mutable pending : string list; (* reversed *)
  mutable instances : (Smr_intf.node_id * Dolev_strong.t) list;
  mutable stopped : bool;
}

(* Batches are length-prefixed so payloads can contain any bytes. *)
let encode_batch payloads =
  String.concat ""
    (List.map (fun p -> string_of_int (String.length p) ^ ":" ^ p) payloads)

let decode_batch s =
  let n = String.length s in
  let rec loop i acc =
    if i >= n then List.rev acc
    else begin
      match String.index_from_opt s i ':' with
      | None -> List.rev acc (* malformed tail from a Byzantine sender *)
      | Some j ->
        (match int_of_string_opt (String.sub s i (j - i)) with
        | None -> List.rev acc
        | Some len when len < 0 || j + 1 + len > n -> List.rev acc
        | Some len -> loop (j + 1 + len) (String.sub s (j + 1) len :: acc))
    end
  in
  loop 0 []

let create ~keyring ~transport ~epoch_id ~on_execute =
  {
    keyring;
    tr = transport;
    epoch_id;
    on_execute;
    slot = 0;
    round_in_slot = 0;
    pending = [];
    instances = [];
    stopped = false;
  }

let propose t payload = if not t.stopped then t.pending <- payload :: t.pending

(* Instances are created lazily — one per sender that actually
   transmits this slot — so idle slots cost nothing.  This matters at
   scale: most vgroup slots carry no operations. *)
let instance_for t sender =
  match List.assoc_opt sender t.instances with
  | Some ds -> Some ds
  | None ->
    if List.mem sender t.tr.members then begin
      let instance_id = Printf.sprintf "%s/s%d/n%d" t.epoch_id t.slot sender in
      let ds =
        Dolev_strong.create ~keyring:t.keyring ~self:t.tr.self ~members:t.tr.members
          ~sender ~f:t.tr.f ~instance_id
      in
      t.instances <- (sender, ds) :: t.instances;
      Some ds
    end
    else None

let receive t ~src (m : msg) =
  if (not t.stopped) && m.slot = t.slot then begin
    match instance_for t m.sender with
    | Some ds -> Dolev_strong.receive ds ~src m.ds
    | None -> ()
  end

let send_all t sender msgs =
  List.iter (fun (dst, ds) -> t.tr.send dst { slot = t.slot; sender; ds }) msgs

let start_slot t =
  t.slot <- t.slot + 1;
  t.round_in_slot <- 1;
  t.instances <- [];
  match t.pending with
  | [] -> ()
  | payloads ->
    t.pending <- [];
    (match instance_for t t.tr.self with
    | Some ds ->
      send_all t t.tr.self (Dolev_strong.initiate ds (encode_batch (List.rev payloads)))
    | None -> ())

let process_round t =
  List.iter
    (fun (sender, ds) ->
      send_all t sender (Dolev_strong.end_of_round ds ~round:t.round_in_slot))
    t.instances

let finish_slot t =
  let deciders = List.sort (fun (a, _) (b, _) -> Int.compare a b) t.instances in
  List.iter
    (fun (sender, ds) ->
      match Dolev_strong.decision ds with
      | Some (Some batch) ->
        List.iter
          (fun payload -> t.on_execute { Smr_intf.origin = sender; payload })
          (decode_batch batch)
      | Some None | None -> ())
    deciders

let on_round_boundary t =
  if not t.stopped then begin
    if t.round_in_slot = 0 then start_slot t
    else begin
      process_round t;
      if t.round_in_slot >= t.tr.f + 1 then begin
        finish_slot t;
        start_slot t
      end
      else t.round_in_slot <- t.round_in_slot + 1
    end
  end

let stop t = t.stopped <- true

let pending_count t = List.length t.pending

let current_slot t = t.slot

let slot_length t = t.tr.f + 1
