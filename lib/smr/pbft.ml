type request = { rid : string; op : string }

type msg =
  | Request of request
  | Preprepare of { view : int; seq : int; req : request }
  | Prepare of { view : int; seq : int; digest : string }
  | Commit of { view : int; seq : int; digest : string }
  | Viewchange of { new_view : int; prepared : (int * request) list }
  | Newview of { view : int; assignments : (int * request) list }

let msg_size = function
  | Request r -> String.length r.rid + String.length r.op + 16
  | Preprepare { req; _ } -> String.length req.rid + String.length req.op + 48
  | Prepare _ | Commit _ -> 80
  | Viewchange { prepared; _ } ->
    List.fold_left (fun acc (_, r) -> acc + String.length r.op + 48) 64 prepared
  | Newview { assignments; _ } ->
    List.fold_left (fun acc (_, r) -> acc + String.length r.op + 48) 64 assignments

(* Prepare/commit votes are buffered per (view, digest) so that votes
   arriving before the pre-prepare (common under random latencies) are
   not lost. *)
type entry = {
  mutable view : int;
  mutable req : request option;
  mutable digest : string;
  mutable prepares : (Smr_intf.node_id * int * string) list; (* node, view, digest *)
  mutable commits : (Smr_intf.node_id * int * string) list;
  mutable sent_commit : bool;
  mutable committed : bool;
  mutable executed : bool;
  mutable cert_prepared : bool; (* carried over from a view-change certificate *)
}

type t = {
  tr : msg Smr_intf.transport;
  timeout : float;
  on_execute : Smr_intf.op -> unit;
  n : int;
  log : (int, entry) Hashtbl.t;
  mutable view : int;
  mutable next_seq : int;
  mutable exec_next : int;
  mutable own_requests : request list;
  watched : (string, request) Hashtbl.t; (* requests we relay & monitor *)
  mutable rid_counter : int;
  executed_rids : (string, unit) Hashtbl.t;
  viewchange_votes : (int, Smr_intf.node_id list ref) Hashtbl.t;
  mutable voted_views : int list;
  mutable stopped : bool;
  mutable executed : int;
}

let digest_of req = Atum_crypto.Sha256.digest_hex (req.rid ^ "\x00" ^ req.op)

let create ~transport ~timeout ~on_execute =
  {
    tr = transport;
    timeout;
    on_execute;
    n = List.length transport.Smr_intf.members;
    log = Hashtbl.create 64;
    view = 0;
    next_seq = 1;
    exec_next = 1;
    own_requests = [];
    watched = Hashtbl.create 16;
    rid_counter = 0;
    executed_rids = Hashtbl.create 64;
    viewchange_votes = Hashtbl.create 8;
    voted_views = [];
    stopped = false;
    executed = 0;
  }

let view t = t.view

let members_sorted t = List.sort Int.compare t.tr.Smr_intf.members

let primary_of t v = List.nth (members_sorted t) (v mod t.n)

let primary t = primary_of t t.view

let quorum t = (2 * t.tr.Smr_intf.f) + 1

let broadcast t m =
  List.iter (fun dst -> if dst <> t.tr.self then t.tr.send dst m) t.tr.members

let executed_count t = t.executed

let fresh_entry view =
  {
    view;
    req = None;
    digest = "";
    prepares = [];
    commits = [];
    sent_commit = false;
    committed = false;
    executed = false;
    cert_prepared = false;
  }

let entry_for t seq =
  match Hashtbl.find_opt t.log seq with
  | Some e -> e
  | None ->
    let e = fresh_entry t.view in
    Hashtbl.replace t.log seq e;
    e

let add_vote votes node view digest =
  if List.exists (fun (n, v, _) -> n = node && v = view) votes then votes
  else (node, view, digest) :: votes

let count_matching votes view digest =
  List.length (List.filter (fun (_, v, d) -> v = view && String.equal d digest) votes)

let rec try_execute t =
  match Hashtbl.find_opt t.log t.exec_next with
  | Some e when e.committed && not e.executed ->
    e.executed <- true;
    (match e.req with
    | Some req when req.op <> "" && not (Hashtbl.mem t.executed_rids req.rid) ->
      Hashtbl.replace t.executed_rids req.rid ();
      t.own_requests <- List.filter (fun r -> r.rid <> req.rid) t.own_requests;
      Hashtbl.remove t.watched req.rid;
      t.executed <- t.executed + 1;
      (match String.index_opt req.rid '/' with
      | Some i ->
        let origin = int_of_string (String.sub req.rid 0 i) in
        t.on_execute { Smr_intf.origin; payload = req.op }
      | None -> ())
    | Some req ->
      t.own_requests <- List.filter (fun r -> r.rid <> req.rid) t.own_requests;
      Hashtbl.remove t.watched req.rid
    | None -> ());
    t.exec_next <- t.exec_next + 1;
    try_execute t
  | _ -> ()

(* --- normal case --------------------------------------------------- *)

let rec assign_seq t req =
  if not (Hashtbl.mem t.executed_rids req.rid) then begin
    let already_assigned =
      Hashtbl.fold
        (fun _ e acc ->
          acc
          ||
          match e.req with
          | Some r -> r.rid = req.rid && not e.executed && e.view = t.view
          | None -> false)
        t.log false
    in
    if not already_assigned then begin
      let seq = t.next_seq in
      t.next_seq <- seq + 1;
      broadcast t (Preprepare { view = t.view; seq; req });
      handle_preprepare t ~src:t.tr.self ~view:t.view ~seq ~req
    end
  end

and handle_preprepare t ~src ~view ~seq ~req =
  if view = t.view && src = primary t && seq >= t.exec_next then begin
    let e = entry_for t seq in
    if (not e.executed) && (Option.is_none e.req || e.view < view) then begin
      e.view <- view;
      e.req <- Some req;
      e.digest <- digest_of req;
      e.sent_commit <- false;
      e.committed <- false;
      broadcast t (Prepare { view; seq; digest = e.digest });
      handle_prepare t ~src:t.tr.self ~view ~seq ~digest:e.digest
    end
  end

and maybe_advance t seq e =
  (* Called whenever a vote lands: check prepared, then committed. *)
  if Option.is_some e.req && not e.executed then begin
    let prepared = count_matching e.prepares e.view e.digest >= quorum t in
    if prepared && not e.sent_commit then begin
      e.sent_commit <- true;
      broadcast t (Commit { view = e.view; seq; digest = e.digest });
      handle_commit t ~src:t.tr.self ~view:e.view ~seq ~digest:e.digest
    end
    else if prepared && (not e.committed)
            && count_matching e.commits e.view e.digest >= quorum t
    then begin
      e.committed <- true;
      try_execute t
    end
  end

and handle_prepare t ~src ~view ~seq ~digest =
  if view >= t.view && seq >= t.exec_next then begin
    let e = entry_for t seq in
    e.prepares <- add_vote e.prepares src view digest;
    maybe_advance t seq e
  end

and handle_commit t ~src ~view ~seq ~digest =
  if view >= t.view && seq >= t.exec_next then begin
    let e = entry_for t seq in
    e.commits <- add_vote e.commits src view digest;
    maybe_advance t seq e
  end

(* --- view change ---------------------------------------------------- *)

and prepared_certificates t =
  (* Certificates travel inside VIEWCHANGE wire messages; enumerate the
     log in sequence order so identical state serializes identically. *)
  List.filter_map
    (fun (seq, e) ->
      match e.req with
      | Some req
        when (not e.executed)
             && (e.cert_prepared || e.committed
                || count_matching e.prepares e.view e.digest >= quorum t) ->
        Some (seq, req)
      | _ -> None)
    (Atum_util.Hashtbl_ext.sorted_bindings ~cmp:Int.compare t.log)

and vote_viewchange t new_view =
  if (not (List.mem new_view t.voted_views)) && new_view > t.view then begin
    t.voted_views <- new_view :: t.voted_views;
    let certs = prepared_certificates t in
    broadcast t (Viewchange { new_view; prepared = certs });
    handle_viewchange t ~src:t.tr.self ~new_view ~prepared:certs
  end

and handle_viewchange t ~src ~new_view ~prepared =
  if new_view > t.view then begin
    let votes =
      match Hashtbl.find_opt t.viewchange_votes new_view with
      | Some v -> v
      | None ->
        let v = ref [] in
        Hashtbl.replace t.viewchange_votes new_view v;
        v
    in
    if not (List.mem src !votes) then votes := src :: !votes;
    List.iter
      (fun (seq, req) ->
        if seq >= t.exec_next then begin
          let e = entry_for t seq in
          if (not e.executed) && Option.is_none e.req then begin
            e.req <- Some req;
            e.digest <- digest_of req
          end;
          e.cert_prepared <- true
        end)
      prepared;
    if List.length !votes >= t.tr.Smr_intf.f + 1 then vote_viewchange t new_view;
    if List.length !votes >= quorum t && new_view > t.view then begin
      if primary_of t new_view = t.tr.self then enter_new_view_as_primary t new_view
    end
  end

and enter_new_view_as_primary t new_view =
  t.view <- new_view;
  let certs =
    List.filter_map
      (fun (seq, e) ->
        match e.req with
        | Some req when (e.cert_prepared || e.committed) && not e.executed ->
          Some (seq, req)
        | _ -> None)
      (Atum_util.Hashtbl_ext.sorted_bindings ~cmp:Int.compare t.log)
  in
  let max_seq = List.fold_left (fun acc (s, _) -> max acc s) (t.exec_next - 1) certs in
  let assignments = ref [] in
  for seq = t.exec_next to max_seq do
    let req =
      match List.assoc_opt seq certs with
      | Some req -> req
      | None -> { rid = Printf.sprintf "noop/%d/%d" new_view seq; op = "" }
    in
    assignments := (seq, req) :: !assignments
  done;
  let assignments = List.rev !assignments in
  t.next_seq <- max_seq + 1;
  broadcast t (Newview { view = new_view; assignments });
  adopt_assignments t new_view assignments;
  List.iter (fun req -> assign_seq t req) (List.rev t.own_requests);
  (* Sequence numbers are handed out in iteration order, so the order
     must not depend on hash-bucket layout. *)
  Atum_util.Hashtbl_ext.sorted_iter ~cmp:String.compare (fun _ req -> assign_seq t req) t.watched

and adopt_assignments t new_view assignments =
  t.view <- max t.view new_view;
  List.iter
    (fun (seq, req) ->
      if seq >= t.exec_next then begin
        let e = entry_for t seq in
        if not e.executed then begin
          e.view <- new_view;
          e.req <- Some req;
          e.digest <- digest_of req;
          e.sent_commit <- false;
          e.committed <- false;
          broadcast t (Prepare { view = new_view; seq; digest = e.digest });
          handle_prepare t ~src:t.tr.self ~view:new_view ~seq ~digest:e.digest
        end
      end)
    assignments

and handle_newview t ~src ~view:new_view ~assignments =
  if new_view > t.view && src = primary_of t new_view then begin
    adopt_assignments t new_view assignments;
    (* Retransmit our pending requests to the new primary. *)
    let p = primary t in
    List.iter
      (fun req ->
        if p = t.tr.self then assign_seq t req else t.tr.send p (Request req))
      (List.rev t.own_requests);
    List.iter (fun req -> arm_timer t req) (List.rev t.own_requests)
  end

and arm_timer t req =
  t.tr.set_timer t.timeout (fun () ->
      if (not t.stopped) && not (Hashtbl.mem t.executed_rids req.rid) then begin
        (* Suspect the primary, and spread the request so that other
           members start watching it too (their timeouts make the
           view-change quorum reachable).  If we already voted a view
           out and its NEW-VIEW never came — the next primary is
           faulty too — escalate past it. *)
        let next = 1 + List.fold_left max t.view t.voted_views in
        vote_viewchange t next;
        broadcast t (Request req);
        arm_timer t req
      end)

(* --- public API ----------------------------------------------------- *)

let propose t op =
  if not t.stopped then begin
    t.rid_counter <- t.rid_counter + 1;
    let rid = Printf.sprintf "%d/%d" t.tr.self t.rid_counter in
    let req = { rid; op } in
    t.own_requests <- req :: t.own_requests;
    if primary t = t.tr.self then assign_seq t req else t.tr.send (primary t) (Request req);
    arm_timer t req
  end

let handle_request t req =
  if not (Hashtbl.mem t.executed_rids req.rid) then begin
    if primary t = t.tr.self then assign_seq t req
    else if not (Hashtbl.mem t.watched req.rid) then begin
      (* Relay to the primary and watch: if it never executes, we join
         the view change. *)
      Hashtbl.replace t.watched req.rid req;
      t.tr.send (primary t) (Request req);
      arm_timer t req
    end
  end

let receive t ~src m =
  if (not t.stopped) && List.mem src t.tr.Smr_intf.members then begin
    match m with
    | Request req -> handle_request t req
    | Preprepare { view; seq; req } -> handle_preprepare t ~src ~view ~seq ~req
    | Prepare { view; seq; digest } -> handle_prepare t ~src ~view ~seq ~digest
    | Commit { view; seq; digest } -> handle_commit t ~src ~view ~seq ~digest
    | Viewchange { new_view; prepared } -> handle_viewchange t ~src ~new_view ~prepared
    | Newview { view; assignments } -> handle_newview t ~src ~view ~assignments
  end

let stop t = t.stopped <- true
