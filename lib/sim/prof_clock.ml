(* See prof_clock.mli: this module exists so that exactly one source
   line in lib/ reads the wall clock, and that line is behind an
   opt-in env var.  Everything deterministic must go through
   [Engine.now] instead. *)

let enabled =
  match Sys.getenv_opt "ATUM_PROF_WALL" with
  | Some ("" | "0") | None -> false
  | Some _ -> true

let now () = if enabled then Unix.gettimeofday () else 0.0
