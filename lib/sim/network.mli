(** Simulated point-to-point network.

    Models the paper's two deployments:
    - a single-datacenter network with tight latency (Sync experiments),
    - a WAN across 8 regions with a heavy-tailed latency distribution
      (Async experiments).

    Messages between nodes in different partitions are silently
    dropped, which is how we model both network partitions and crashed
    nodes (a crashed node is isolated forever). *)

type latency_model =
  | Fixed of float
  | Uniform of float * float  (** lower and upper bound, seconds *)
  | Lognormal of { mu : float; sigma : float; floor : float }
      (** heavy-tailed WAN latency; [floor] is the propagation minimum *)

type config = {
  latency : latency_model;
  drop_probability : float;  (** independent per-message loss *)
  seed : int;
  node_capacity : float option;
      (** messages/second one node can process; [None] = unbounded.
          When set, deliveries to a busy node queue behind its earlier
          messages, so hotspots build real queueing delay (the paper's
          EC2 micro instances are the motivation). *)
}

val datacenter_config : seed:int -> config
(** ~1 ms median intra-DC latency, no loss. *)

val wan_config : seed:int -> config
(** ~80 ms median, lognormal tail reaching seconds, 0.1% loss. *)

type 'msg t

val create : ?metrics:Metrics.t -> ?trace:Trace.t -> Engine.t -> config -> 'msg t
(** [metrics] receives per-reason drop counters (["net.drop.partition"],
    ["net.drop.loss"], ["net.drop.no_handler"]); pass the owning
    system's metrics to aggregate, or omit for a private one.
    [trace] (when enabled) records ["net.send"], ["net.deliver"] and
    ["net.drop.*"] events. *)

val engine : 'msg t -> Engine.t

val metrics : 'msg t -> Metrics.t

val register : 'msg t -> int -> (src:int -> 'msg -> unit) -> unit
(** Install the message handler for a node id (replaces any previous
    one). *)

val unregister : 'msg t -> int -> unit
(** Messages to an unregistered node are dropped (counted). *)

val send : ?size:int -> 'msg t -> src:int -> dst:int -> 'msg -> unit
(** Queue a message for delivery after a sampled latency.  [size] (in
    bytes, default 64) only feeds the traffic accounting. *)

val sample_latency : 'msg t -> float
(** One latency draw from the configured model (for protocols that
    need timeouts calibrated to the network). *)

val set_partition : 'msg t -> int -> int -> unit
(** [set_partition net node tag] — nodes only hear nodes with the same
    tag (default tag 0). *)

val partition_of : 'msg t -> int -> int

val crash : 'msg t -> int -> unit
(** Isolate a node permanently (tag -1, never matched). *)

val messages_sent : 'msg t -> int
val messages_delivered : 'msg t -> int

val messages_dropped : 'msg t -> int
(** Aggregate of every drop; {!metrics} holds the same total split by
    reason.  A message dropped at delivery time (partition re-check or
    missing handler) does {e not} consume receiver capacity. *)

val bytes_sent : 'msg t -> int
val reset_counters : 'msg t -> unit
