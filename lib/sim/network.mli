(** Simulated point-to-point network.

    Models the paper's two deployments:
    - a single-datacenter network with tight latency (Sync experiments),
    - a WAN across 8 regions with a heavy-tailed latency distribution
      (Async experiments).

    Messages between nodes in different partitions are silently
    dropped, and so is anything to or from a node in the crashed set.
    Both faults are reversible ({!heal}, {!recover}), which is what the
    chaos layer ({!Fault}) builds on. *)

type latency_model =
  | Fixed of float
  | Uniform of float * float  (** lower and upper bound, seconds *)
  | Lognormal of { mu : float; sigma : float; floor : float }
      (** heavy-tailed WAN latency; [floor] is the propagation minimum *)

type config = {
  latency : latency_model;
  drop_probability : float;  (** independent per-message loss *)
  seed : int;
  node_capacity : float option;
      (** messages/second one node can process; [None] = unbounded.
          When set, deliveries to a busy node queue behind its earlier
          messages, so hotspots build real queueing delay (the paper's
          EC2 micro instances are the motivation). *)
}

val datacenter_config : seed:int -> config
(** ~1 ms median intra-DC latency, no loss. *)

val wan_config : seed:int -> config
(** ~80 ms median, lognormal tail reaching seconds, 0.1% loss. *)

type 'msg t

val create : ?metrics:Metrics.t -> ?trace:Trace.t -> Engine.t -> config -> 'msg t
(** [metrics] receives per-reason drop counters (["net.drop.partition"],
    ["net.drop.loss"], ["net.drop.crash"], ["net.drop.no_handler"]);
    pass the owning system's metrics to aggregate, or omit for a
    private one.  [trace] (when enabled) records ["net.send"],
    ["net.deliver"] and ["net.drop.*"] events. *)

val engine : 'msg t -> Engine.t

val metrics : 'msg t -> Metrics.t

val trace : 'msg t -> Trace.t option
(** The trace handed to {!create} (the fault injector emits its
    ["fault.*"] events into the same log). *)

val register : 'msg t -> int -> (src:int -> 'msg -> unit) -> unit
(** Install the message handler for a node id (replaces any previous
    one). *)

val unregister : 'msg t -> int -> unit
(** Messages to an unregistered node are dropped (counted). *)

val send : ?size:int -> 'msg t -> src:int -> dst:int -> 'msg -> unit
(** Queue a message for delivery after a sampled latency.  [size] (in
    bytes, default 64) only feeds the traffic accounting. *)

val send_multi : ?size:int -> 'msg t -> src:int -> dsts:int list -> 'msg -> unit
(** Batched fan-out: one latency sample and one engine event for the
    whole destination list (a per-vgroup gossip round), instead of one
    event per pair.  Loss, partition and crash checks remain per
    destination.  With batching disabled (see {!set_batching}) this is
    exactly [List.iter] of {!send}. *)

val send_group : 'msg t -> srcs:(int * int) list -> dsts:int list -> 'msg -> unit
(** Vgroup-round fan-in/fan-out: every [(src, size)] sender transmits
    [msg] to every destination, as ONE latency sample and ONE engine
    event for the whole round.  The logical message set — and the
    per-pair loss, partition and crash checks — is identical to
    calling {!send_multi} once per sender; only the event count and the
    per-sender latency jitter change.  With batching disabled this
    degrades to a plain {!send} per (src, dst) pair. *)

val set_batching : 'msg t -> bool -> unit
(** Toggle batched delivery for {!send_multi} (default [true]).
    Disabling restores the pre-batching one-event-per-message engine —
    kept so the scale benchmark can measure the batching win. *)

val batching : 'msg t -> bool

val sample_latency : 'msg t -> float
(** One latency draw from the configured model (for protocols that
    need timeouts calibrated to the network).  Not scaled by
    {!set_latency_factor}: timeouts calibrate against the healthy
    network. *)

(* --- partitions and crashes (both reversible) ------------------------ *)

val set_partition : 'msg t -> int -> int -> unit
(** [set_partition net node tag] — nodes only hear nodes with the same
    tag (default tag 0). *)

val partition_of : 'msg t -> int -> int

val heal : 'msg t -> unit
(** Clear every partition tag (all nodes back to tag 0).  Deliveries
    from here on are additionally counted under
    ["net.deliver.post_heal"], so recovery verification can tell
    post-heal traffic from the pre-fault baseline. *)

val crash : 'msg t -> int -> unit
(** Add the node to the crashed set: nothing to or from it is
    delivered (drop reason ["crash"]).  Partition tags are untouched,
    so {!recover} can never collide with a legitimate tag. *)

val recover : 'msg t -> int -> unit
(** Remove the node from the crashed set; it rejoins whichever
    partition its tag says.  Counts subsequent deliveries under
    ["net.deliver.post_heal"] like {!heal}. *)

val is_crashed : 'msg t -> int -> bool

val crashed_nodes : 'msg t -> int list
(** Currently crashed node ids, ascending.  O(1) when no node is
    crashed; the incremental monitor derives its fault-candidate
    vgroups from this instead of scanning the registry. *)

val partitioned_nodes : 'msg t -> int list
(** Node ids with a nonzero partition tag, ascending.  O(1) when no
    partition is installed. *)

val faulted_count : 'msg t -> int
(** [crashed + partition-tagged] node count — O(1). *)

(* --- fault-injection overrides (identity by default) ----------------- *)

val set_loss_boost : 'msg t -> float -> unit
(** Additional independent per-message loss probability, added to the
    configured [drop_probability] (clamped to 1.0).  Raises
    [Invalid_argument] outside [0, 1].  Used by {!Fault.Loss_burst}. *)

val loss_boost : 'msg t -> float

val set_latency_factor : 'msg t -> float -> unit
(** Multiply every sampled transit latency (> 0; default 1.0).  Used
    by {!Fault.Latency_spike}. *)

val latency_factor : 'msg t -> float

val set_capacity_factor : 'msg t -> float -> unit
(** Scale per-node processing capacity (> 0; default 1.0; < 1.0
    degrades).  No effect when [node_capacity] is [None].  Used by
    {!Fault.Capacity_degrade}. *)

val capacity_factor : 'msg t -> float

(* --- counters -------------------------------------------------------- *)

val messages_sent : 'msg t -> int
val messages_delivered : 'msg t -> int

val messages_dropped : 'msg t -> int
(** Aggregate of every drop; {!metrics} holds the same total split by
    reason.  A message dropped at delivery time (partition/crash
    re-check or missing handler) does {e not} consume receiver
    capacity. *)

val bytes_sent : 'msg t -> int
val reset_counters : 'msg t -> unit
