(** Discrete-event simulation engine.

    A single virtual clock and an event heap; callbacks scheduled at
    the same instant run in insertion order, so simulations are fully
    deterministic.  Time is in (simulated) seconds. *)

type t

val create : unit -> t

val now : t -> float
(** Current virtual time. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at [now t +. delay].  Negative
    delays are clamped to 0. *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** Absolute-time variant; times in the past run "now". *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Processes events in timestamp order until the queue drains, the
    clock passes [until], [max_events] have run, or {!stop} is
    called.  Events scheduled past [until] stay queued.  On return
    from a run with [until], the clock is at [until] even when the
    queue drained early, so durations measured via {!now} are exact. *)

val every : t -> ?start:float -> period:float -> (unit -> bool) -> unit
(** [every t ~period f] runs [f] at [start] (default [now t +.
    period]) and then every [period] seconds for as long as [f]
    returns [true].  Raises [Invalid_argument] on a non-positive
    period. *)

val set_trace : t -> Trace.t -> unit
(** Attach a structured trace; each {!run} then logs one
    ["engine.run"] event carrying the number of events it processed
    (when the trace is enabled). *)

val step : t -> bool
(** Process a single event; [false] when the queue is empty. *)

val stop : t -> unit
(** Makes the innermost {!run} return after the current event. *)

val events_processed : t -> int

val pending : t -> int
(** Number of queued events. *)
