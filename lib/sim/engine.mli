(** Discrete-event simulation engine.

    A single virtual clock and an event heap; callbacks scheduled at
    the same instant run in insertion order, so simulations are fully
    deterministic.  Time is in (simulated) seconds.

    The engine also profiles itself: every scheduling entry point takes
    an optional [?label], and the engine accumulates per-label event
    counts, a histogram of virtual-time scheduling delays, and — only
    when [ATUM_PROF_WALL=1], see {!Prof_clock} — wall-clock self-time
    per label.  {!profile} / {!profile_json} export the result; with
    the wall clock disabled (the default) the export is a pure
    function of the simulation and stays byte-identical across
    same-seed runs. *)

type t

val create : unit -> t

val now : t -> float
(** Current virtual time. *)

val schedule : ?label:string -> t -> delay:float -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at [now t +. delay].  Negative
    delays are clamped to 0.  [label] (default ["(unlabeled)"])
    attributes the event in the engine profile. *)

val schedule_at : ?label:string -> t -> time:float -> (unit -> unit) -> unit
(** Absolute-time variant; times in the past run "now". *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Processes events in timestamp order until the queue drains, the
    clock passes [until], [max_events] have run, or {!stop} is
    called.  Events scheduled past [until] stay queued.  On return
    from a run with [until], the clock is at [until] even when the
    queue drained early, so durations measured via {!now} are exact. *)

val every : ?label:string -> t -> ?start:float -> period:float -> (unit -> bool) -> unit
(** [every t ~period f] runs [f] at [start] (default [now t +.
    period]) and then every [period] seconds for as long as [f]
    returns [true].  The k-th tick runs at exactly [start +. k *.
    period] (closed form, no floating-point accumulation drift).
    Raises [Invalid_argument] on a non-positive period. *)

val set_trace : t -> Trace.t -> unit
(** Attach a structured trace; each {!run} then logs one
    ["engine.run"] event carrying the number of events it processed
    (when the trace is enabled). *)

val step : t -> bool
(** Process a single event; [false] when the queue is empty. *)

val stop : t -> unit
(** Makes the innermost {!run} return after the current event. *)

val events_processed : t -> int

val pending : t -> int
(** Number of queued events. *)

val set_pooling : t -> bool -> unit
(** Event records are pooled and reused by default.  [set_pooling t
    false] restores the pre-pool behaviour — a fresh record allocated
    per scheduled event — so the scale benchmark's legacy mode prices
    the allocation pressure the pool removes.  Pooling is invisible to
    simulation semantics either way. *)

(* --- self-profile ---------------------------------------------------- *)

type label_profile = {
  label : string;
  events : int;  (** events executed under this label *)
  wall_self_s : float;
      (** wall-clock seconds spent inside the callbacks; 0.0 unless
          [ATUM_PROF_WALL=1] (see {!Prof_clock}) *)
  vt_first : float;  (** virtual time of the first event *)
  vt_last : float;  (** virtual time of the most recent event *)
  delay_hist : (int * int) list;
      (** nonzero log2 buckets of (execution - scheduling) virtual
          delay: bucket 0 is immediate, bucket [i >= 1] covers
          [[2^(i-11), 2^(i-10))] seconds *)
}

val profile : t -> label_profile list
(** Per-label accounting, sorted by label. *)

val profile_json : t -> Atum_util.Json.t
(** [{wall_clock_enabled; events_total; labels: [...]}] — the
    ["profile"] section of [ATUM_timeseries.json]. *)

val delay_bucket_lo : int -> float
(** Lower bound in seconds of a {!label_profile.delay_hist} bucket. *)
