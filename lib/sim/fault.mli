(** Scripted fault injection.

    A declarative, sim-time-driven schedule of network faults and
    their inverses, executed by labeled {!Engine} tasks.  The schedule
    is plain data (serializable with {!to_json} into artifacts), every
    step fires at a fixed offset from {!install} time, and all
    randomness stays in the network's seeded RNG — so a seeded run
    with a fixed schedule is exactly reproducible.

    Each applied step bumps a [fault.<step>] metrics counter and, when
    the network is traced, emits a [fault.<step>] trace event;
    transient steps additionally emit [fault.<step>.end] when they
    expire. *)

type step =
  | Partition of int list list
      (** Sever the network between groups: group [i] gets partition
          tag [i + 1]; unlisted nodes stay at tag 0.  Undone by
          {!Heal}. *)
  | Heal  (** [Network.heal]: clear all partition tags. *)
  | Crash of int list
      (** Crash each node (via the [on_crash] hook, default
          {!Network.crash}).  Undone by {!Recover}. *)
  | Recover of int list  (** Revive each node ([on_recover], default {!Network.recover}). *)
  | Loss_burst of { p : float; duration : float }
      (** Add [p] to the drop probability for [duration] seconds, then
          reset automatically.  [p] must be in [0, 1]. *)
  | Latency_spike of { factor : float; duration : float }
      (** Multiply transit delay by [factor] (> 0) for [duration]
          seconds. *)
  | Capacity_degrade of { factor : float; duration : float }
      (** Scale per-node delivery capacity by [factor] (> 0) for
          [duration] seconds. *)
  | Restart of { nodes : int list; down : float }
      (** Crash each node at [after], then cold-restart it [down] (> 0)
          seconds later via the [on_restart] hook (default
          [on_recover]) — the crash→durable-recovery→rejoin loop. *)

type entry = { after : float; step : step }
(** One scheduled step, [after] seconds (>= 0) from install time. *)

type schedule = entry list

val step_name : step -> string
(** ["partition"], ["heal"], ["crash"], ... — the suffix used in task
    labels and [fault.*] metric / trace kinds. *)

val validate : schedule -> unit
(** Raise [Invalid_argument] on empty partition groups, empty
    crash/recover/restart node lists, [p] outside [0, 1], non-positive
    factors, durations or down times, or negative offsets — and, in
    time order, on a [Recover] of a node with no preceding [Crash] or
    a [Heal] with no partition in force (such inverse steps silently
    did nothing).  [Restart] crashes and revives its own nodes, so it
    neither satisfies nor needs a later [Recover].  {!install} calls
    this. *)

val span : schedule -> float
(** Latest moment the schedule is still acting: the max over entries
    of [after] (plus [duration] for transient steps, [down] for
    restarts). *)

val heal_offsets : schedule -> float list
(** Offsets of the {!Heal} and {!Recover} steps (and [after + down]
    for {!Restart}), in schedule order — the points after which a
    recovery checker should start polling for convergence. *)

type t
(** A live installed schedule. *)

val install :
  ?on_crash:(int -> unit) ->
  ?on_recover:(int -> unit) ->
  ?on_restart:(int -> unit) ->
  'msg Network.t ->
  schedule ->
  t
(** Validate the schedule and register one labeled engine task per
    entry ([fault.<step>] at [+after]; transient steps also get their
    own [fault.<step>.end] expiry task; [Restart] crashes via
    [on_crash] at [+after] and revives via [on_restart] at
    [+after+down]).  The hooks let a higher layer substitute
    registry-aware crash/recover/restart (e.g. [System.crash] /
    [System.recover] / [System.restart]) for the network-level
    defaults without this module depending on it. *)

val applied : t -> int
(** Steps executed so far. *)

val active : t -> int
(** Faults currently in force: 1 if partitioned, plus nodes this
    schedule crashed and has not recovered, plus transient bursts in
    flight. *)

val attach_gauges : t -> Telemetry.t -> unit
(** Register [fault.active] and [fault.applied] gauges. *)

val step_to_json : step -> Atum_util.Json.t

val to_json : schedule -> Atum_util.Json.t
(** The schedule as a JSON list — each entry an object with [after_s],
    [step], and the step's parameters; see EXPERIMENTS.md for the
    schema. *)
