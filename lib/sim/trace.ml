type event = {
  time : float;
  kind : string;
  node : int;
  peer : int;
  vgroup : int;
  size : int;
  bid : int;
  span : int;
  parent : int;
  cycle : int;
}

type level = Always | Sampled | Debug

(* Sampling decisions compare a 30-bit hash against [rate * 2^30]. *)
let sample_one = 0x4000_0000

type t = {
  mutable enabled : bool;
  buf : event option array;
  mutable next : int; (* next write slot *)
  mutable total : int; (* admitted events ever recorded *)
  dropped_kinds : (string, int ref) Hashtbl.t; (* kind -> overwritten count *)
  levels : (string, level) Hashtbl.t; (* per-kind overrides of [default_level] *)
  mutable sample_rate : float;
  mutable sample_threshold : int; (* sample_rate * 2^30, precomputed *)
  mutable debug : bool;
  mutable sampled_out : int; (* events suppressed by sampling/level, exact *)
  admitted_kinds : (string, int ref) Hashtbl.t;
  sampled_kinds : (string, int ref) Hashtbl.t;
}

let default_capacity = 65_536

let capacity_for_scale ~nodes =
  if nodes >= 1_000_000 then 1_048_576
  else if nodes >= 100_000 then 524_288
  else if nodes >= 10_000 then 131_072
  else default_capacity

let create ?(capacity = default_capacity) ?(enabled = false) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  {
    enabled;
    buf = Array.make capacity None;
    next = 0;
    total = 0;
    dropped_kinds = Hashtbl.create 16;
    levels = Hashtbl.create 16;
    sample_rate = 1.0;
    sample_threshold = sample_one;
    debug = false;
    sampled_out = 0;
    admitted_kinds = Hashtbl.create 16;
    sampled_kinds = Hashtbl.create 16;
  }

let enabled t = t.enabled
let set_enabled t flag = t.enabled <- flag
let capacity t = Array.length t.buf
let total t = t.total
let length t = min t.total (Array.length t.buf)
let dropped t = t.total - length t

(* Hot, high-volume kinds default to Sampled; everything rare enough to
   matter individually (sagas, violations, faults, membership) records
   always.  The ["debug."] namespace is reserved for opt-in chatter. *)
let default_level kind =
  if String.length kind >= 4 && String.sub kind 0 4 = "net." then Sampled
  else if String.length kind >= 6 && String.sub kind 0 6 = "debug." then Debug
  else
    match kind with
    | "bcast.hop" | "bcast.dup" -> Sampled
    | _ -> Always

let level_of t kind =
  match Hashtbl.find_opt t.levels kind with
  | Some lvl -> lvl
  | None -> default_level kind

let set_level t ~kind lvl = Hashtbl.replace t.levels kind lvl

let sample_rate t = t.sample_rate

let set_sample_rate t rate =
  if rate < 0.0 || rate > 1.0 then
    invalid_arg "Trace.set_sample_rate: rate must be in [0, 1]";
  t.sample_rate <- rate;
  t.sample_threshold <- int_of_float (rate *. float_of_int sample_one)

let debug_enabled t = t.debug
let set_debug t flag = t.debug <- flag

let sampled_out t = t.sampled_out

let sorted_counts tbl =
  List.map
    (fun (k, r) -> (k, !r))
    (Atum_util.Hashtbl_ext.sorted_bindings ~cmp:String.compare tbl)

let dropped_by_kind t = sorted_counts t.dropped_kinds
let admitted_by_kind t = sorted_counts t.admitted_kinds
let sampled_out_by_kind t = sorted_counts t.sampled_kinds
let lossy t = dropped t > 0 || t.sampled_out > 0

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  Hashtbl.reset t.dropped_kinds;
  Hashtbl.reset t.admitted_kinds;
  Hashtbl.reset t.sampled_kinds;
  t.next <- 0;
  t.total <- 0;
  t.sampled_out <- 0

let bump tbl kind =
  match Hashtbl.find_opt tbl kind with
  | Some r -> incr r
  | None -> Hashtbl.replace tbl kind (ref 1)

(* Hot path: callers are expected to guard with [enabled], but emit
   re-checks so an unguarded call on a disabled trace stays a no-op.

   Sampled kinds admit deterministically by hashing the event's
   correlation id (bid, else span, else node, else peer) so that one
   admitted broadcast keeps its *entire* hop lineage and a dropped one
   vanishes wholesale — a uniform thinning of correlated stories, not
   of individual events.  [Hashtbl.hash] is deterministic across runs
   and processes, so same-seed runs admit the same set. *)
let emit t ~time ~kind ?(node = -1) ?(peer = -1) ?(vgroup = -1) ?(size = 0) ?(bid = -1)
    ?(span = -1) ?(parent = -1) ?(cycle = -1) () =
  if t.enabled then begin
    let admit =
      match level_of t kind with
      | Always -> true
      | Debug -> t.debug
      | Sampled ->
        t.sample_threshold >= sample_one
        ||
        let corr =
          if bid >= 0 then bid
          else if span >= 0 then span
          else if node >= 0 then node
          else if peer >= 0 then peer
          else t.total + t.sampled_out
        in
        Hashtbl.hash corr land (sample_one - 1) < t.sample_threshold
    in
    if admit then begin
      (match t.buf.(t.next) with
      | Some old -> bump t.dropped_kinds old.kind
      | None -> ());
      t.buf.(t.next) <- Some { time; kind; node; peer; vgroup; size; bid; span; parent; cycle };
      t.next <- (t.next + 1) mod Array.length t.buf;
      t.total <- t.total + 1;
      bump t.admitted_kinds kind
    end
    else begin
      t.sampled_out <- t.sampled_out + 1;
      bump t.sampled_kinds kind
    end
  end

let iter t f =
  let cap = Array.length t.buf in
  let len = length t in
  (* Oldest event sits at [next] once the ring has wrapped. *)
  let start = if t.total > cap then t.next else 0 in
  for i = 0 to len - 1 do
    match t.buf.((start + i) mod cap) with
    | Some e -> f e
    | None -> assert false
  done

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun e -> acc := f !acc e);
  !acc

let events t =
  List.rev (fold t ~init:[] ~f:(fun acc e -> e :: acc))

let last_events t k =
  let cap = Array.length t.buf in
  let len = length t in
  let want = min k len in
  let out = ref [] in
  (* Newest event sits just before [next]; walk backwards [want] slots. *)
  for i = 0 to want - 1 do
    match t.buf.(((t.next - 1 - i) mod cap + cap) mod cap) with
    | Some e -> out := e :: !out
    | None -> assert false
  done;
  !out

let event_to_json (e : event) =
  let open Atum_util.Json in
  let base = [ ("t", Float e.time); ("kind", String e.kind) ] in
  let opt name v = if v < 0 then [] else [ (name, Int v) ] in
  let size = if e.size = 0 then [] else [ ("size", Int e.size) ] in
  Obj
    (base @ opt "node" e.node @ opt "peer" e.peer @ opt "vgroup" e.vgroup @ size
    @ opt "bid" e.bid @ opt "span" e.span @ opt "parent" e.parent @ opt "cycle" e.cycle)

let counts_json counts =
  Atum_util.Json.Obj (List.map (fun (k, n) -> (k, Atum_util.Json.Int n)) counts)

let to_json t =
  let open Atum_util.Json in
  let events_json =
    List.rev (fold t ~init:[] ~f:(fun acc e -> event_to_json e :: acc))
  in
  Obj
    [
      ("capacity", Int (capacity t));
      ("total", Int t.total);
      ("dropped", Int (dropped t));
      ("dropped_by_kind", counts_json (dropped_by_kind t));
      ("sample_rate", Float t.sample_rate);
      ("sampled_out", Int t.sampled_out);
      ("sampled_out_by_kind", counts_json (sampled_out_by_kind t));
      ("admitted_by_kind", counts_json (admitted_by_kind t));
      ("events", List events_json);
    ]
