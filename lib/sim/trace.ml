type event = {
  time : float;
  kind : string;
  node : int;
  peer : int;
  vgroup : int;
  size : int;
}

type t = {
  mutable enabled : bool;
  buf : event option array;
  mutable next : int; (* next write slot *)
  mutable total : int; (* events ever emitted *)
}

let default_capacity = 65_536

let create ?(capacity = default_capacity) ?(enabled = false) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { enabled; buf = Array.make capacity None; next = 0; total = 0 }

let enabled t = t.enabled
let set_enabled t flag = t.enabled <- flag
let capacity t = Array.length t.buf
let total t = t.total
let length t = min t.total (Array.length t.buf)
let dropped t = t.total - length t

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.next <- 0;
  t.total <- 0

(* Hot path: callers are expected to guard with [enabled], but emit
   re-checks so an unguarded call on a disabled trace stays a no-op. *)
let emit t ~time ~kind ?(node = -1) ?(peer = -1) ?(vgroup = -1) ?(size = 0) () =
  if t.enabled then begin
    t.buf.(t.next) <- Some { time; kind; node; peer; vgroup; size };
    t.next <- (t.next + 1) mod Array.length t.buf;
    t.total <- t.total + 1
  end

let events t =
  let cap = Array.length t.buf in
  let len = length t in
  (* Oldest event sits at [next] once the ring has wrapped. *)
  let start = if t.total > cap then t.next else 0 in
  List.init len (fun i ->
      match t.buf.((start + i) mod cap) with
      | Some e -> e
      | None -> assert false)

let event_to_json (e : event) =
  let open Atum_util.Json in
  let base = [ ("t", Float e.time); ("kind", String e.kind) ] in
  let opt name v = if v < 0 then [] else [ (name, Int v) ] in
  let size = if e.size = 0 then [] else [ ("size", Int e.size) ] in
  Obj (base @ opt "node" e.node @ opt "peer" e.peer @ opt "vgroup" e.vgroup @ size)

let to_json t =
  let open Atum_util.Json in
  Obj
    [
      ("capacity", Int (capacity t));
      ("total", Int t.total);
      ("dropped", Int (dropped t));
      ("events", List (List.map event_to_json (events t)));
    ]
