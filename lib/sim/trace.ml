type event = {
  time : float;
  kind : string;
  node : int;
  peer : int;
  vgroup : int;
  size : int;
  bid : int;
  span : int;
  parent : int;
  cycle : int;
}

type t = {
  mutable enabled : bool;
  buf : event option array;
  mutable next : int; (* next write slot *)
  mutable total : int; (* events ever emitted *)
  dropped_kinds : (string, int ref) Hashtbl.t; (* kind -> overwritten count *)
}

let default_capacity = 65_536

let create ?(capacity = default_capacity) ?(enabled = false) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  {
    enabled;
    buf = Array.make capacity None;
    next = 0;
    total = 0;
    dropped_kinds = Hashtbl.create 16;
  }

let enabled t = t.enabled
let set_enabled t flag = t.enabled <- flag
let capacity t = Array.length t.buf
let total t = t.total
let length t = min t.total (Array.length t.buf)
let dropped t = t.total - length t

let dropped_by_kind t =
  List.map
    (fun (k, r) -> (k, !r))
    (Atum_util.Hashtbl_ext.sorted_bindings ~cmp:String.compare t.dropped_kinds)

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  Hashtbl.reset t.dropped_kinds;
  t.next <- 0;
  t.total <- 0

(* Hot path: callers are expected to guard with [enabled], but emit
   re-checks so an unguarded call on a disabled trace stays a no-op. *)
let emit t ~time ~kind ?(node = -1) ?(peer = -1) ?(vgroup = -1) ?(size = 0) ?(bid = -1)
    ?(span = -1) ?(parent = -1) ?(cycle = -1) () =
  if t.enabled then begin
    (match t.buf.(t.next) with
    | Some old -> (
      match Hashtbl.find_opt t.dropped_kinds old.kind with
      | Some r -> incr r
      | None -> Hashtbl.replace t.dropped_kinds old.kind (ref 1))
    | None -> ());
    t.buf.(t.next) <- Some { time; kind; node; peer; vgroup; size; bid; span; parent; cycle };
    t.next <- (t.next + 1) mod Array.length t.buf;
    t.total <- t.total + 1
  end

let iter t f =
  let cap = Array.length t.buf in
  let len = length t in
  (* Oldest event sits at [next] once the ring has wrapped. *)
  let start = if t.total > cap then t.next else 0 in
  for i = 0 to len - 1 do
    match t.buf.((start + i) mod cap) with
    | Some e -> f e
    | None -> assert false
  done

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun e -> acc := f !acc e);
  !acc

let events t =
  List.rev (fold t ~init:[] ~f:(fun acc e -> e :: acc))

let event_to_json (e : event) =
  let open Atum_util.Json in
  let base = [ ("t", Float e.time); ("kind", String e.kind) ] in
  let opt name v = if v < 0 then [] else [ (name, Int v) ] in
  let size = if e.size = 0 then [] else [ ("size", Int e.size) ] in
  Obj
    (base @ opt "node" e.node @ opt "peer" e.peer @ opt "vgroup" e.vgroup @ size
    @ opt "bid" e.bid @ opt "span" e.span @ opt "parent" e.parent @ opt "cycle" e.cycle)

let to_json t =
  let open Atum_util.Json in
  let events_json =
    List.rev (fold t ~init:[] ~f:(fun acc e -> event_to_json e :: acc))
  in
  Obj
    [
      ("capacity", Int (capacity t));
      ("total", Int t.total);
      ("dropped", Int (dropped t));
      ( "dropped_by_kind",
        Obj (List.map (fun (k, n) -> (k, Int n)) (dropped_by_kind t)) );
      ("events", List events_json);
    ]
