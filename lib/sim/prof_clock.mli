(** The engine profiler's wall clock — the {e only} sanctioned
    wall-clock read inside [lib/] (one line, allowlisted for lint rule
    D001 so the rule stays meaningful everywhere else).

    Disabled by default: {!now} returns [0.0], so wall-clock self-times
    in the engine profile are identically zero and every artifact stays
    a pure function of the seed.  Set [ATUM_PROF_WALL=1] to measure
    real self-times; doing so makes the [wall_self_s] fields of the
    profile nondeterministic (and only those — gauges, event counts and
    virtual-time statistics never touch this module). *)

val enabled : bool
(** [ATUM_PROF_WALL] set to anything but [""]/["0"] at process start. *)

val now : unit -> float
(** Wall-clock seconds when {!enabled}, [0.0] otherwise. *)
