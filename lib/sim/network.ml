type latency_model =
  | Fixed of float
  | Uniform of float * float
  | Lognormal of { mu : float; sigma : float; floor : float }

type config = {
  latency : latency_model;
  drop_probability : float;
  seed : int;
  node_capacity : float option;
}

let datacenter_config ~seed =
  { latency = Uniform (0.0005, 0.002); drop_probability = 0.0; seed; node_capacity = None }

let wan_config ~seed =
  (* Median ~ exp(mu) = 80 ms; sigma gives occasional multi-second
     stragglers, matching Fig 8's Async tail. *)
  {
    latency = Lognormal { mu = log 0.08; sigma = 0.6; floor = 0.02 };
    drop_probability = 0.001;
    seed;
    node_capacity = None;
  }

type 'msg t = {
  engine : Engine.t;
  config : config;
  rng : Atum_util.Rng.t;
  handlers : (int, src:int -> 'msg -> unit) Hashtbl.t;
  partitions : (int, int) Hashtbl.t;
  crashed : (int, unit) Hashtbl.t; (* explicit, so recover can't collide with a tag *)
  ready : (int, float) Hashtbl.t; (* per-node processing queue tail *)
  metrics : Metrics.t;
  trace : Trace.t option;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable bytes : int;
  (* Fault-injection overrides (see Fault).  All identity by default,
     so an undisturbed run is bit-identical to one without the fields. *)
  mutable loss_boost : float; (* added to config.drop_probability *)
  mutable latency_factor : float; (* multiplies each sampled transit latency *)
  mutable capacity_factor : float; (* multiplies node_capacity (degrade < 1.0) *)
  mutable post_heal : bool; (* a heal/recover happened; label deliveries *)
}

let create ?metrics ?trace engine config =
  {
    engine;
    config;
    rng = Atum_util.Rng.create config.seed;
    handlers = Hashtbl.create 256;
    partitions = Hashtbl.create 64;
    crashed = Hashtbl.create 64;
    ready = Hashtbl.create 256;
    metrics = (match metrics with Some m -> m | None -> Metrics.create ());
    trace;
    sent = 0;
    delivered = 0;
    dropped = 0;
    bytes = 0;
    loss_boost = 0.0;
    latency_factor = 1.0;
    capacity_factor = 1.0;
    post_heal = false;
  }

let engine t = t.engine
let metrics t = t.metrics
let trace t = t.trace

let register t node handler = Hashtbl.replace t.handlers node handler

let unregister t node = Hashtbl.remove t.handlers node

let sample_latency t =
  match t.config.latency with
  | Fixed d -> d
  | Uniform (lo, hi) -> lo +. Atum_util.Rng.float t.rng (hi -. lo)
  | Lognormal { mu; sigma; floor } ->
    Float.max floor (Atum_util.Rng.lognormal t.rng ~mu ~sigma)

let partition_of t node = Option.value ~default:0 (Hashtbl.find_opt t.partitions node)

let set_partition t node tag = Hashtbl.replace t.partitions node tag

let heal t =
  Hashtbl.reset t.partitions;
  t.post_heal <- true

let crash t node = Hashtbl.replace t.crashed node ()

let recover t node =
  Hashtbl.remove t.crashed node;
  t.post_heal <- true

let is_crashed t node = Hashtbl.mem t.crashed node

let set_loss_boost t p =
  if p < 0.0 || p > 1.0 then invalid_arg "Network.set_loss_boost: p outside [0, 1]";
  t.loss_boost <- p

let loss_boost t = t.loss_boost

let set_latency_factor t f =
  if f <= 0.0 then invalid_arg "Network.set_latency_factor: factor must be positive";
  t.latency_factor <- f

let latency_factor t = t.latency_factor

let set_capacity_factor t f =
  if f <= 0.0 then invalid_arg "Network.set_capacity_factor: factor must be positive";
  t.capacity_factor <- f

let capacity_factor t = t.capacity_factor

let trace_emit t ~kind ?node ?peer ?size () =
  match t.trace with
  | Some tr when Trace.enabled tr ->
    Trace.emit tr ~time:(Engine.now t.engine) ~kind ?node ?peer ?size ()
  | _ -> ()

(* Every drop is counted once in the aggregate [dropped] and once
   under a reason-specific metric, so accounting bugs show up as a
   mismatch between the two. *)
let drop t ~reason ~src ~dst =
  t.dropped <- t.dropped + 1;
  Metrics.incr t.metrics ("net.drop." ^ reason);
  trace_emit t ~kind:("net.drop." ^ reason) ~node:src ~peer:dst ()

(* A crashed endpoint silences the link regardless of partition tags;
   the tags themselves are left untouched so a later [recover] drops
   the node back into whichever partition it was in. *)
let severed t ~src ~dst =
  if is_crashed t src || is_crashed t dst then Some "crash"
  else if partition_of t src <> partition_of t dst then Some "partition"
  else None

let send ?(size = 64) t ~src ~dst msg =
  t.sent <- t.sent + 1;
  t.bytes <- t.bytes + size;
  trace_emit t ~kind:"net.send" ~node:src ~peer:dst ~size ();
  let cut = severed t ~src ~dst in
  let lost =
    Atum_util.Rng.bernoulli t.rng
      (Float.min 1.0 (t.config.drop_probability +. t.loss_boost))
  in
  match cut with
  | Some reason -> drop t ~reason ~src ~dst
  | None ->
    if lost then drop t ~reason:"loss" ~src ~dst
    else begin
      let delay = sample_latency t *. t.latency_factor in
      (* The arrival event only covers network transit.  Receiver
         service time (node_capacity) is charged at arrival time, and
         only for messages that are actually processed: a message
         dropped by the delivery-time partition re-check or a missing
         handler must not advance the receiver's queue tail, or dropped
         traffic would permanently consume receiver capacity. *)
      Engine.schedule ~label:"net.transit" t.engine ~delay (fun () ->
          match severed t ~src ~dst with
          | Some reason -> drop t ~reason ~src ~dst
          | None -> begin
            match Hashtbl.find_opt t.handlers dst with
            | None -> drop t ~reason:"no_handler" ~src ~dst
            | Some _ ->
              let deliver () =
                (* Re-resolve the handler: it may have been replaced (or
                   removed) while the message waited in the receiver's
                   service queue. *)
                match Hashtbl.find_opt t.handlers dst with
                | None -> drop t ~reason:"no_handler" ~src ~dst
                | Some handler ->
                  t.delivered <- t.delivered + 1;
                  if t.post_heal then Metrics.incr t.metrics "net.deliver.post_heal";
                  trace_emit t ~kind:"net.deliver" ~node:dst ~peer:src ~size ();
                  handler ~src msg
              in
              (match t.config.node_capacity with
              | None -> deliver ()
              | Some capacity ->
                (* The receiver serves messages in arrival order at a
                   bounded rate; a hot node's queue tail pushes delivery
                   out. *)
                let capacity = capacity *. t.capacity_factor in
                let arrival = Engine.now t.engine in
                let tail = Option.value ~default:arrival (Hashtbl.find_opt t.ready dst) in
                let finish = Float.max arrival tail +. (1.0 /. capacity) in
                Hashtbl.replace t.ready dst finish;
                Engine.schedule ~label:"net.service" t.engine ~delay:(finish -. arrival) deliver)
          end)
    end

let messages_sent t = t.sent
let messages_delivered t = t.delivered
let messages_dropped t = t.dropped
let bytes_sent t = t.bytes

let reset_counters t =
  t.sent <- 0;
  t.delivered <- 0;
  t.dropped <- 0;
  t.bytes <- 0
