type latency_model =
  | Fixed of float
  | Uniform of float * float
  | Lognormal of { mu : float; sigma : float; floor : float }

type config = {
  latency : latency_model;
  drop_probability : float;
  seed : int;
  node_capacity : float option;
}

let datacenter_config ~seed =
  { latency = Uniform (0.0005, 0.002); drop_probability = 0.0; seed; node_capacity = None }

let wan_config ~seed =
  (* Median ~ exp(mu) = 80 ms; sigma gives occasional multi-second
     stragglers, matching Fig 8's Async tail. *)
  {
    latency = Lognormal { mu = log 0.08; sigma = 0.6; floor = 0.02 };
    drop_probability = 0.001;
    seed;
    node_capacity = None;
  }

(* Per-node state lives in flat arrays indexed by the dense node id
   (see Atum_util.Arena): handler dispatch, partition tags, the
   crashed set and the per-node service-queue tail are all O(1) array
   reads with no hashing.  Arrays grow on registration; ids beyond
   the high-water mark behave like unregistered nodes. *)
type 'msg t = {
  engine : Engine.t;
  config : config;
  rng : Atum_util.Rng.t;
  mutable handlers : (src:int -> 'msg -> unit) option array;
  mutable partitions : int array; (* 0 = default partition *)
  mutable crashed : bool array;
  mutable ready : float array; (* per-node processing queue tail; 0 = idle *)
  mutable cap : int; (* length of the arrays above *)
  mutable crashed_count : int;
  mutable tagged_count : int; (* nodes with a nonzero partition tag *)
  mutable batching : bool; (* deliver send_multi batches as one event *)
  metrics : Metrics.t;
  trace : Trace.t option;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable bytes : int;
  (* Fault-injection overrides (see Fault).  All identity by default,
     so an undisturbed run is bit-identical to one without the fields. *)
  mutable loss_boost : float; (* added to config.drop_probability *)
  mutable latency_factor : float; (* multiplies each sampled transit latency *)
  mutable capacity_factor : float; (* multiplies node_capacity (degrade < 1.0) *)
  mutable post_heal : bool; (* a heal/recover happened; label deliveries *)
}

let create ?metrics ?trace engine config =
  {
    engine;
    config;
    rng = Atum_util.Rng.create config.seed;
    handlers = Array.make 256 None;
    partitions = Array.make 256 0;
    crashed = Array.make 256 false;
    ready = Array.make 256 0.0;
    cap = 256;
    crashed_count = 0;
    tagged_count = 0;
    batching = true;
    metrics = (match metrics with Some m -> m | None -> Metrics.create ());
    trace;
    sent = 0;
    delivered = 0;
    dropped = 0;
    bytes = 0;
    loss_boost = 0.0;
    latency_factor = 1.0;
    capacity_factor = 1.0;
    post_heal = false;
  }

let engine t = t.engine
let metrics t = t.metrics
let trace t = t.trace

let ensure t node =
  if node >= t.cap then begin
    let cap = max (node + 1) (2 * t.cap) in
    let handlers = Array.make cap None in
    Array.blit t.handlers 0 handlers 0 t.cap;
    let partitions = Array.make cap 0 in
    Array.blit t.partitions 0 partitions 0 t.cap;
    let crashed = Array.make cap false in
    Array.blit t.crashed 0 crashed 0 t.cap;
    let ready = Array.make cap 0.0 in
    Array.blit t.ready 0 ready 0 t.cap;
    t.handlers <- handlers;
    t.partitions <- partitions;
    t.crashed <- crashed;
    t.ready <- ready;
    t.cap <- cap
  end

let register t node handler =
  ensure t node;
  t.handlers.(node) <- Some handler

let unregister t node = if node < t.cap then t.handlers.(node) <- None

let handler_of t node = if node < t.cap then t.handlers.(node) else None

let set_batching t on = t.batching <- on
let batching t = t.batching

let sample_latency t =
  match t.config.latency with
  | Fixed d -> d
  | Uniform (lo, hi) -> lo +. Atum_util.Rng.float t.rng (hi -. lo)
  | Lognormal { mu; sigma; floor } ->
    Float.max floor (Atum_util.Rng.lognormal t.rng ~mu ~sigma)

let partition_of t node = if node < t.cap then t.partitions.(node) else 0

let set_partition t node tag =
  ensure t node;
  let old = t.partitions.(node) in
  if old = 0 && tag <> 0 then t.tagged_count <- t.tagged_count + 1
  else if old <> 0 && tag = 0 then t.tagged_count <- t.tagged_count - 1;
  t.partitions.(node) <- tag

let heal t =
  Array.fill t.partitions 0 t.cap 0;
  t.tagged_count <- 0;
  t.post_heal <- true

let crash t node =
  ensure t node;
  if not t.crashed.(node) then begin
    t.crashed.(node) <- true;
    t.crashed_count <- t.crashed_count + 1
  end

let recover t node =
  if node < t.cap && t.crashed.(node) then begin
    t.crashed.(node) <- false;
    t.crashed_count <- t.crashed_count - 1
  end;
  t.post_heal <- true

let is_crashed t node = node < t.cap && t.crashed.(node)

(* Faulted-node views, ascending id order — the incremental monitor
   rebuilds its candidate set from these instead of scanning every
   vgroup. *)
let crashed_nodes t =
  if t.crashed_count = 0 then []
  else begin
    let acc = ref [] in
    for i = t.cap - 1 downto 0 do
      if t.crashed.(i) then acc := i :: !acc
    done;
    !acc
  end

let partitioned_nodes t =
  if t.tagged_count = 0 then []
  else begin
    let acc = ref [] in
    for i = t.cap - 1 downto 0 do
      if t.partitions.(i) <> 0 then acc := i :: !acc
    done;
    !acc
  end

let faulted_count t = t.crashed_count + t.tagged_count

let set_loss_boost t p =
  if p < 0.0 || p > 1.0 then invalid_arg "Network.set_loss_boost: p outside [0, 1]";
  t.loss_boost <- p

let loss_boost t = t.loss_boost

let set_latency_factor t f =
  if f <= 0.0 then invalid_arg "Network.set_latency_factor: factor must be positive";
  t.latency_factor <- f

let latency_factor t = t.latency_factor

let set_capacity_factor t f =
  if f <= 0.0 then invalid_arg "Network.set_capacity_factor: factor must be positive";
  t.capacity_factor <- f

let capacity_factor t = t.capacity_factor

let trace_emit t ~kind ?node ?peer ?size () =
  match t.trace with
  | Some tr when Trace.enabled tr ->
    Trace.emit tr ~time:(Engine.now t.engine) ~kind ?node ?peer ?size ()
  | _ -> ()

(* Every drop is counted once in the aggregate [dropped] and once
   under a reason-specific metric, so accounting bugs show up as a
   mismatch between the two. *)
let drop t ~reason ~src ~dst =
  t.dropped <- t.dropped + 1;
  Metrics.incr t.metrics ("net.drop." ^ reason);
  trace_emit t ~kind:("net.drop." ^ reason) ~node:src ~peer:dst ()

(* A crashed endpoint silences the link regardless of partition tags;
   the tags themselves are left untouched so a later [recover] drops
   the node back into whichever partition it was in. *)
let severed t ~src ~dst =
  if is_crashed t src || is_crashed t dst then Some "crash"
  else if partition_of t src <> partition_of t dst then Some "partition"
  else None

(* Deliver one message that survived transit.  Receiver service time
   (node_capacity) is charged here, and only for messages that are
   actually processed: a message dropped by the delivery-time
   partition re-check or a missing handler must not advance the
   receiver's queue tail, or dropped traffic would permanently consume
   receiver capacity. *)
let arrive t ~size ~src ~dst msg =
  match severed t ~src ~dst with
  | Some reason -> drop t ~reason ~src ~dst
  | None -> begin
    match handler_of t dst with
    | None -> drop t ~reason:"no_handler" ~src ~dst
    | Some _ ->
      let deliver () =
        (* Re-resolve the handler: it may have been replaced (or
           removed) while the message waited in the receiver's
           service queue. *)
        match handler_of t dst with
        | None -> drop t ~reason:"no_handler" ~src ~dst
        | Some handler ->
          t.delivered <- t.delivered + 1;
          if t.post_heal then Metrics.incr t.metrics "net.deliver.post_heal";
          trace_emit t ~kind:"net.deliver" ~node:dst ~peer:src ~size ();
          handler ~src msg
      in
      (match t.config.node_capacity with
      | None -> deliver ()
      | Some capacity ->
        (* The receiver serves messages in arrival order at a bounded
           rate; a hot node's queue tail pushes delivery out. *)
        let capacity = capacity *. t.capacity_factor in
        let arrival = Engine.now t.engine in
        let tail = Float.max arrival t.ready.(dst) in
        let finish = tail +. (1.0 /. capacity) in
        t.ready.(dst) <- finish;
        Engine.schedule ~label:"net.service" t.engine ~delay:(finish -. arrival) deliver)
  end

let send ?(size = 64) t ~src ~dst msg =
  t.sent <- t.sent + 1;
  t.bytes <- t.bytes + size;
  trace_emit t ~kind:"net.send" ~node:src ~peer:dst ~size ();
  let cut = severed t ~src ~dst in
  let lost =
    Atum_util.Rng.bernoulli t.rng
      (Float.min 1.0 (t.config.drop_probability +. t.loss_boost))
  in
  match cut with
  | Some reason -> drop t ~reason ~src ~dst
  | None ->
    if lost then drop t ~reason:"loss" ~src ~dst
    else begin
      let delay = sample_latency t *. t.latency_factor in
      Engine.schedule ~label:"net.transit" t.engine ~delay (fun () ->
          arrive t ~size ~src ~dst msg)
    end

(* Batched fan-out: one latency sample and ONE engine event for a
   whole per-vgroup gossip round, instead of one event per (src, dst)
   pair.  Loss and partition checks stay per destination, so the
   delivered set is distribution-identical to the unbatched path; only
   the number of queue operations (and the per-destination latency
   jitter) changes.  With batching disabled this degrades to a plain
   [send] per destination — the pre-batching engine, kept measurable
   for the scale benchmark's before/after comparison. *)
let send_multi ?(size = 64) t ~src ~dsts msg =
  if not t.batching then List.iter (fun dst -> send ~size t ~src ~dst msg) dsts
  else begin
    let survivors =
      List.filter
        (fun dst ->
          t.sent <- t.sent + 1;
          t.bytes <- t.bytes + size;
          trace_emit t ~kind:"net.send" ~node:src ~peer:dst ~size ();
          let cut = severed t ~src ~dst in
          let lost =
            Atum_util.Rng.bernoulli t.rng
              (Float.min 1.0 (t.config.drop_probability +. t.loss_boost))
          in
          match cut with
          | Some reason ->
            drop t ~reason ~src ~dst;
            false
          | None ->
            if lost then begin
              drop t ~reason:"loss" ~src ~dst;
              false
            end
            else true)
        dsts
    in
    if survivors <> [] then begin
      let delay = sample_latency t *. t.latency_factor in
      Engine.schedule ~label:"net.transit.batch" t.engine ~delay (fun () ->
          List.iter (fun dst -> arrive t ~size ~src ~dst msg) survivors)
    end
  end

(* Vgroup-round batching: all of a vgroup's same-instant senders fan
   out to a neighbor round in one engine event.  The surviving (src,
   size, dst) pairs — same per-pair accounting, loss and cut checks as
   [send_multi] — share a single latency sample, so the event count
   per gossip round drops from senders*1 to 1. *)
let send_group t ~srcs ~dsts msg =
  if not t.batching then
    List.iter (fun (src, size) -> List.iter (fun dst -> send ~size t ~src ~dst msg) dsts) srcs
  else begin
    let pairs =
      List.concat_map
        (fun (src, size) ->
          List.filter_map
            (fun dst ->
              t.sent <- t.sent + 1;
              t.bytes <- t.bytes + size;
              trace_emit t ~kind:"net.send" ~node:src ~peer:dst ~size ();
              let cut = severed t ~src ~dst in
              let lost =
                Atum_util.Rng.bernoulli t.rng
                  (Float.min 1.0 (t.config.drop_probability +. t.loss_boost))
              in
              match cut with
              | Some reason ->
                drop t ~reason ~src ~dst;
                None
              | None ->
                if lost then begin
                  drop t ~reason:"loss" ~src ~dst;
                  None
                end
                else Some (src, size, dst))
            dsts)
        srcs
    in
    if pairs <> [] then begin
      let delay = sample_latency t *. t.latency_factor in
      Engine.schedule ~label:"net.transit.batch" t.engine ~delay (fun () ->
          List.iter (fun (src, size, dst) -> arrive t ~size ~src ~dst msg) pairs)
    end
  end

let messages_sent t = t.sent
let messages_delivered t = t.delivered
let messages_dropped t = t.dropped
let bytes_sent t = t.bytes

let reset_counters t =
  t.sent <- 0;
  t.delivered <- 0;
  t.dropped <- 0;
  t.bytes <- 0
