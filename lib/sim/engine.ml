type t = {
  queue : (unit -> unit) Atum_util.Pqueue.t;
  mutable clock : float;
  mutable stopped : bool;
  mutable processed : int;
  mutable trace : Trace.t option;
}

let create () =
  { queue = Atum_util.Pqueue.create (); clock = 0.0; stopped = false; processed = 0; trace = None }

let now t = t.clock

let set_trace t trace = t.trace <- Some trace

let schedule_at t ~time f =
  let time = if time < t.clock then t.clock else time in
  Atum_util.Pqueue.push t.queue time f

let schedule t ~delay f =
  let delay = if delay < 0.0 then 0.0 else delay in
  schedule_at t ~time:(t.clock +. delay) f

let every t ?start ~period f =
  if period <= 0.0 then invalid_arg "Engine.every: period must be positive";
  let first = match start with None -> t.clock +. period | Some s -> s in
  let rec tick () = if f () then schedule t ~delay:period tick in
  schedule_at t ~time:first tick

let step t =
  match Atum_util.Pqueue.pop t.queue with
  | None -> false
  | Some (time, f) ->
    t.clock <- time;
    t.processed <- t.processed + 1;
    f ();
    true

let run ?until ?max_events t =
  t.stopped <- false;
  let at_entry = t.processed in
  let budget = ref (match max_events with None -> max_int | Some n -> n) in
  let continue = ref true in
  while !continue do
    if t.stopped || !budget = 0 then continue := false
    else begin
      match Atum_util.Pqueue.peek t.queue with
      | None ->
        (* The queue drained before the time limit: the clock must
           still advance to [until], otherwise rates derived from
           [now] are skewed by the gap after the last event. *)
        (match until with
        | Some limit when limit > t.clock -> t.clock <- limit
        | _ -> ());
        continue := false
      | Some (time, _) ->
        (match until with
        | Some limit when time > limit ->
          t.clock <- limit;
          continue := false
        | _ ->
          ignore (step t);
          decr budget)
    end
  done;
  match t.trace with
  | Some tr when Trace.enabled tr ->
    Trace.emit tr ~time:t.clock ~kind:"engine.run" ~size:(t.processed - at_entry) ()
  | _ -> ()

let stop t = t.stopped <- true

let events_processed t = t.processed

let pending t = Atum_util.Pqueue.size t.queue
