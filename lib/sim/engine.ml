(* Each queued event carries the label it was scheduled under and its
   scheduling time, so the engine can account its own hot paths:
   per-label event counts, a histogram of virtual-time scheduling
   delays, and (opt-in, see Prof_clock) wall-clock self-time. *)

type ev = { mutable fn : unit -> unit; mutable label : string; mutable sched : float }

(* Event records are pooled: [step] recycles each record after
   running it, and [schedule_at] reuses recycled records instead of
   allocating.  At millions of events per run the queue then performs
   zero per-event allocation (the SoA Pqueue holds no records of its
   own).  The closure slot is blanked on recycle so the pool never
   pins a dead closure's environment. *)
let nop () = ()

(* Log2 buckets of (execution time - scheduling time) in virtual
   seconds.  Bucket 0 is "immediate" (delay <= 0); bucket i >= 1
   covers delays in [2^(i-11), 2^(i-10)), so ~1 ms lands in bucket 1
   and the top bucket absorbs everything from ~2^12 s up. *)
let delay_buckets = 24

let delay_bucket d =
  if d <= 0.0 then 0
  else begin
    let b = int_of_float (Float.floor (Float.log2 d)) + 11 in
    if b < 1 then 1 else if b > delay_buckets - 1 then delay_buckets - 1 else b
  end

let delay_bucket_lo i = if i = 0 then 0.0 else Float.pow 2.0 (float_of_int (i - 11))

type label_stats = {
  mutable events : int;
  mutable wall : float;
  mutable vt_first : float;
  mutable vt_last : float;
  delay_hist : int array;
}

type t = {
  queue : ev Atum_util.Pqueue.t;
  mutable clock : float;
  mutable stopped : bool;
  mutable processed : int;
  mutable trace : Trace.t option;
  labels : (string, label_stats) Hashtbl.t;
  (* One-entry memo for the per-label stats lookup: schedule sites
     pass literal strings, so physical equality hits nearly always
     and the per-event hash lookup disappears. *)
  mutable memo_label : string;
  mutable memo_stats : label_stats option;
  mutable pool : ev array; (* stack of recycled records *)
  mutable pool_len : int;
  mutable pooling : bool; (* off: allocate per event (pre-pool cost) *)
}

let create () =
  {
    queue = Atum_util.Pqueue.create ();
    clock = 0.0;
    stopped = false;
    processed = 0;
    trace = None;
    labels = Hashtbl.create 32;
    memo_label = "";
    memo_stats = None;
    pool = [||];
    pool_len = 0;
    pooling = true;
  }

let now t = t.clock

let set_trace t trace = t.trace <- Some trace

let unlabeled = "(unlabeled)"

(* [set_pooling false] restores the pre-pool behaviour — one fresh
   record per scheduled event, recycled records dropped on the floor —
   so the scale benchmark's legacy mode pays the allocation and GC
   pressure the pool was introduced to remove. *)
let set_pooling t enabled = t.pooling <- enabled

let take_ev t ~fn ~label ~sched =
  if (not t.pooling) || t.pool_len = 0 then { fn; label; sched }
  else begin
    t.pool_len <- t.pool_len - 1;
    let e = t.pool.(t.pool_len) in
    e.fn <- fn;
    e.label <- label;
    e.sched <- sched;
    e
  end

let recycle_ev t e =
  if t.pooling then begin
  e.fn <- nop;
  e.label <- unlabeled;
  if t.pool_len = Array.length t.pool then begin
    let cap = max 64 (2 * Array.length t.pool) in
    let pool = Array.make cap e in
    Array.blit t.pool 0 pool 0 t.pool_len;
    t.pool <- pool
  end;
  t.pool.(t.pool_len) <- e;
  t.pool_len <- t.pool_len + 1
  end

let schedule_at ?(label = unlabeled) t ~time f =
  let time = if time < t.clock then t.clock else time in
  Atum_util.Pqueue.push t.queue time (take_ev t ~fn:f ~label ~sched:t.clock)

let schedule ?label t ~delay f =
  let delay = if delay < 0.0 then 0.0 else delay in
  schedule_at ?label t ~time:(t.clock +. delay) f

(* Tick times use the closed form [first +. k *. period], never a
   running [+. period] accumulator: repeated addition of an inexact
   period (0.1, say) drifts by one ulp per tick, and after enough
   ticks the k-th tick no longer lands where [first + k*period] says
   it should — tick counts and sampling timestamps stop being exact. *)
let every ?label t ?start ~period f =
  if period <= 0.0 then invalid_arg "Engine.every: period must be positive";
  let first = match start with None -> t.clock +. period | Some s -> s in
  let k = ref 0 in
  let rec tick () =
    if f () then begin
      incr k;
      schedule_at ?label t ~time:(first +. (float_of_int !k *. period)) tick
    end
  in
  schedule_at ?label t ~time:first tick

let stats_for t label =
  match t.memo_stats with
  | Some s when t.memo_label == label -> s
  | _ ->
    let s =
      match Hashtbl.find_opt t.labels label with
      | Some s -> s
      | None ->
        let s =
          { events = 0; wall = 0.0; vt_first = 0.0; vt_last = 0.0;
            delay_hist = Array.make delay_buckets 0 }
        in
        Hashtbl.replace t.labels label s;
        s
    in
    t.memo_label <- label;
    t.memo_stats <- Some s;
    s

let account t (e : ev) ~time =
  let s = stats_for t e.label in
  if s.events = 0 then s.vt_first <- time;
  s.events <- s.events + 1;
  s.vt_last <- time;
  let b = delay_bucket (time -. e.sched) in
  s.delay_hist.(b) <- s.delay_hist.(b) + 1;
  s

let step t =
  match Atum_util.Pqueue.pop t.queue with
  | None -> false
  | Some (time, e) ->
    t.clock <- time;
    t.processed <- t.processed + 1;
    let s = account t e ~time in
    let fn = e.fn in
    recycle_ev t e;
    if Prof_clock.enabled then begin
      let t0 = Prof_clock.now () in
      fn ();
      s.wall <- s.wall +. (Prof_clock.now () -. t0)
    end
    else fn ();
    true

let run ?until ?max_events t =
  t.stopped <- false;
  let at_entry = t.processed in
  let budget = ref (match max_events with None -> max_int | Some n -> n) in
  let continue = ref true in
  while !continue do
    if t.stopped || !budget = 0 then continue := false
    else begin
      match Atum_util.Pqueue.peek t.queue with
      | None ->
        (* The queue drained before the time limit: the clock must
           still advance to [until], otherwise rates derived from
           [now] are skewed by the gap after the last event. *)
        (match until with
        | Some limit when limit > t.clock -> t.clock <- limit
        | _ -> ());
        continue := false
      | Some (time, _) ->
        (match until with
        | Some limit when time > limit ->
          t.clock <- limit;
          continue := false
        | _ ->
          ignore (step t);
          decr budget)
    end
  done;
  match t.trace with
  | Some tr when Trace.enabled tr ->
    Trace.emit tr ~time:t.clock ~kind:"engine.run" ~size:(t.processed - at_entry) ()
  | _ -> ()

let stop t = t.stopped <- true

let events_processed t = t.processed

let pending t = Atum_util.Pqueue.size t.queue

(* --- profile export ------------------------------------------------- *)

type label_profile = {
  label : string;
  events : int;
  wall_self_s : float;
  vt_first : float;
  vt_last : float;
  delay_hist : (int * int) list;
}

let profile t =
  List.map
    (fun (label, (s : label_stats)) ->
      let hist = ref [] in
      for i = delay_buckets - 1 downto 0 do
        if s.delay_hist.(i) > 0 then hist := (i, s.delay_hist.(i)) :: !hist
      done;
      {
        label;
        events = s.events;
        wall_self_s = s.wall;
        vt_first = s.vt_first;
        vt_last = s.vt_last;
        delay_hist = !hist;
      })
    (Atum_util.Hashtbl_ext.sorted_bindings ~cmp:String.compare t.labels)

let profile_json t =
  let open Atum_util.Json in
  let rows =
    List.map
      (fun p ->
        Obj
          [
            ("label", String p.label);
            ("events", Int p.events);
            ("wall_self_s", Float p.wall_self_s);
            ("vt_first", Float p.vt_first);
            ("vt_last", Float p.vt_last);
            ( "delay_hist",
              List
                (List.map
                   (fun (b, n) -> Obj [ ("bucket", Int b); ("count", Int n) ])
                   p.delay_hist) );
          ])
      (profile t)
  in
  Obj
    [
      ("wall_clock_enabled", Bool Prof_clock.enabled);
      ("events_total", Int t.processed);
      ("labels", List rows);
    ]
