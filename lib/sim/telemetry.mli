(** Sim-time telemetry: named gauges sampled on a fixed virtual-time
    period into a ring buffer, exported as the time-indexed series
    behind the paper's evolving-load plots (system size over time,
    churn absorbed per round, bandwidth footprint...).

    Gauges are closures over live simulation state, registered before
    {!start} and then sampled together by one [Engine.every] task
    (label ["telemetry.sample"]), so every series shares one time
    axis.  Sampling only {e reads} state — it draws no randomness and
    sends no messages — so attaching telemetry never perturbs a seeded
    run, and the export is byte-identical across same-seed runs. *)

type t

val default_period : float
(** 5 simulated seconds. *)

val default_capacity : int
(** 4096 samples (~5.7 simulated hours at the default period). *)

val create : ?period:float -> ?capacity:int -> Engine.t -> t
(** Raises [Invalid_argument] on a non-positive period or capacity. *)

val period : t -> float
val capacity : t -> int

val register : t -> string -> (unit -> float) -> unit
(** [register t name read] adds a gauge.  Names must be unique (raises
    [Invalid_argument] on a duplicate).  Gauges registered before
    {!start} are sampled — and exported — in name order; a gauge
    registered after sampling started (e.g. a {!Fault} schedule
    installed mid-run) is appended after them with zeros backfilled
    for the samples it missed, so every series still shares the ring's
    time axis. *)

val register_delta : t -> string -> (unit -> int) -> unit
(** A gauge reporting the {e increase} of a monotonic counter since
    the previous sample — drop rates, bytes on wire per period,
    violation deltas.  The first sample reports the counter itself
    (baseline 0). *)

val start : t -> unit
(** Freeze the gauge set and begin periodic sampling at [now +
    period].  Idempotent. *)

val stop : t -> unit
(** Cease sampling after the current tick; the collected series stay
    readable. *)

val gauge_names : t -> string list
(** The export order, before and after {!start} alike: gauges
    registered pre-start sorted by name, then any late registrations
    in arrival order. *)

val samples_total : t -> int
(** Samples ever taken (>= kept; the ring overwrites the oldest). *)

val samples_kept : t -> int

val times : t -> float list
(** Sample timestamps, oldest first. *)

val series : t -> string -> float list
(** Values of one gauge aligned with {!times}; [] for unknown names. *)

val to_json : t -> Atum_util.Json.t
(** [{schema_version; period_s; capacity; samples_total;
    samples_kept; times; gauges: {name: [values]}}]. *)

val to_csv : t -> string
(** Header [time,<gauge>,...] then one row per kept sample. *)

val schema_version : int

(* --- reading an exported artifact back ------------------------------ *)

type reading = {
  r_period : float;
  r_times : float list;
  r_gauges : (string * float list) list;  (** sorted by name *)
  r_samples_total : int;
}

val of_json : Atum_util.Json.t -> (reading, string) result
(** Parse {!to_json} output (e.g. the ["timeseries"] section of an
    [ATUM_timeseries.json] artifact); [Error _] on malformed or
    wrong-version input, never an exception. *)
