(* Scripted fault injection: a declarative, sim-time-driven schedule of
   network faults and their inverses, executed by labeled Engine tasks.

   The schedule is data (serializable into artifacts); every step is
   applied at a fixed offset from [install] time, so a seeded run with
   a fixed schedule is exactly reproducible.  Node-level steps (Crash /
   Recover) default to the network-level crashed set but accept hooks,
   which is how the runtime layers a registry-aware crash
   (System.crash / System.recover) on top without this module depending
   on it. *)

module Json = Atum_util.Json

type step =
  | Partition of int list list
      (* group i gets partition tag i+1; unlisted nodes stay at tag 0 *)
  | Heal
  | Crash of int list
  | Recover of int list
  | Loss_burst of { p : float; duration : float }
  | Latency_spike of { factor : float; duration : float }
  | Capacity_degrade of { factor : float; duration : float }
  | Restart of { nodes : int list; down : float }
      (* crash at [after], cold-restart automatically [down] seconds later *)

type entry = { after : float; step : step }

type schedule = entry list

let step_name = function
  | Partition _ -> "partition"
  | Heal -> "heal"
  | Crash _ -> "crash"
  | Recover _ -> "recover"
  | Loss_burst _ -> "loss_burst"
  | Latency_spike _ -> "latency_spike"
  | Capacity_degrade _ -> "capacity_degrade"
  | Restart _ -> "restart"

let validate_step = function
  | Partition groups ->
    if List.exists (fun g -> g = []) groups then
      invalid_arg "Fault: Partition with an empty group"
  | Heal -> ()
  | Crash [] | Recover [] -> invalid_arg "Fault: Crash/Recover with no nodes"
  | Crash _ | Recover _ -> ()
  | Loss_burst { p; duration } ->
    if p < 0.0 || p > 1.0 then invalid_arg "Fault: Loss_burst p outside [0, 1]";
    if duration <= 0.0 then invalid_arg "Fault: Loss_burst duration must be positive"
  | Latency_spike { factor; duration } ->
    if factor <= 0.0 then invalid_arg "Fault: Latency_spike factor must be positive";
    if duration <= 0.0 then invalid_arg "Fault: Latency_spike duration must be positive"
  | Capacity_degrade { factor; duration } ->
    if factor <= 0.0 then invalid_arg "Fault: Capacity_degrade factor must be positive";
    if duration <= 0.0 then invalid_arg "Fault: Capacity_degrade duration must be positive"
  | Restart { nodes; down } ->
    if nodes = [] then invalid_arg "Fault: Restart with no nodes";
    if down <= 0.0 then invalid_arg "Fault: Restart down time must be positive"

let validate schedule =
  List.iter
    (fun e ->
      if e.after < 0.0 then invalid_arg "Fault: negative schedule offset";
      validate_step e.step)
    schedule;
  (* Cross-step ordering: an inverse step must have something to undo.
     A Recover of a node never crashed, or a Heal with no partition in
     force, silently did nothing before this check existed — a schedule
     typo that made chaos runs look healthier than they were. *)
  let by_time = List.stable_sort (fun a b -> Float.compare a.after b.after) schedule in
  let crashed = Hashtbl.create 8 in
  let partitioned = ref false in
  List.iter
    (fun e ->
      match e.step with
      | Partition _ -> partitioned := true
      | Heal ->
        if not !partitioned then invalid_arg "Fault: Heal with no preceding Partition";
        partitioned := false
      | Crash nodes -> List.iter (fun n -> Hashtbl.replace crashed n ()) nodes
      | Recover nodes ->
        List.iter
          (fun n ->
            if not (Hashtbl.mem crashed n) then
              invalid_arg
                (Printf.sprintf "Fault: Recover of node %d with no preceding Crash" n);
            Hashtbl.remove crashed n)
          nodes
      | Restart _ (* crashes and revives its own nodes *)
      | Loss_burst _ | Latency_spike _ | Capacity_degrade _ -> ())
    by_time

let span schedule =
  List.fold_left
    (fun acc e ->
      let until =
        match e.step with
        | Loss_burst { duration; _ }
        | Latency_spike { duration; _ }
        | Capacity_degrade { duration; _ } ->
          e.after +. duration
        | Restart { down; _ } -> e.after +. down
        | Partition _ | Heal | Crash _ | Recover _ -> e.after
      in
      Float.max acc until)
    0.0 schedule

let heal_offsets schedule =
  List.filter_map
    (fun e ->
      match e.step with
      | Heal | Recover _ -> Some e.after
      | Restart { down; _ } -> Some (e.after +. down)
      | _ -> None)
    schedule

type t = {
  mutable applied : int; (* steps executed so far *)
  mutable partitioned : bool;
  mutable crashed : int; (* nodes currently held in the crashed set by this schedule *)
  mutable bursts : int; (* transient faults (loss/latency/capacity) in flight *)
}

let applied t = t.applied

let active t = (if t.partitioned then 1 else 0) + t.crashed + t.bursts

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let install ?on_crash ?on_recover ?on_restart (net : 'msg Network.t) schedule =
  validate schedule;
  let engine = Network.engine net in
  let metrics = Network.metrics net in
  let t = { applied = 0; partitioned = false; crashed = 0; bursts = 0 } in
  let emit ~kind ?node ?size () =
    Metrics.incr metrics kind;
    match Network.trace net with
    | Some tr when Trace.enabled tr ->
      Trace.emit tr ~time:(Engine.now engine) ~kind ?node ?size ()
    | _ -> ()
  in
  let crash_node = match on_crash with Some f -> f | None -> Network.crash net in
  let recover_node = match on_recover with Some f -> f | None -> Network.recover net in
  let restart_node = match on_restart with Some f -> f | None -> recover_node in
  let apply step =
    t.applied <- t.applied + 1;
    match step with
    | Partition groups ->
      List.iteri
        (fun i group -> List.iter (fun node -> Network.set_partition net node (i + 1)) group)
        groups;
      t.partitioned <- true;
      emit ~kind:"fault.partition"
        ~size:(List.fold_left (fun acc g -> acc + List.length g) 0 groups)
        ()
    | Heal ->
      Network.heal net;
      t.partitioned <- false;
      emit ~kind:"fault.heal" ()
    | Crash nodes ->
      List.iter
        (fun node ->
          crash_node node;
          t.crashed <- t.crashed + 1;
          emit ~kind:"fault.crash" ~node ())
        nodes
    | Recover nodes ->
      List.iter
        (fun node ->
          recover_node node;
          if t.crashed > 0 then t.crashed <- t.crashed - 1;
          emit ~kind:"fault.recover" ~node ())
        nodes
    | Loss_burst { p; duration } ->
      Network.set_loss_boost net p;
      t.bursts <- t.bursts + 1;
      emit ~kind:"fault.loss_burst" ();
      Engine.schedule ~label:"fault.loss_burst.end" engine ~delay:duration (fun () ->
          Network.set_loss_boost net 0.0;
          t.bursts <- t.bursts - 1;
          emit ~kind:"fault.loss_burst.end" ())
    | Latency_spike { factor; duration } ->
      Network.set_latency_factor net factor;
      t.bursts <- t.bursts + 1;
      emit ~kind:"fault.latency_spike" ();
      Engine.schedule ~label:"fault.latency_spike.end" engine ~delay:duration (fun () ->
          Network.set_latency_factor net 1.0;
          t.bursts <- t.bursts - 1;
          emit ~kind:"fault.latency_spike.end" ())
    | Capacity_degrade { factor; duration } ->
      Network.set_capacity_factor net factor;
      t.bursts <- t.bursts + 1;
      emit ~kind:"fault.capacity_degrade" ();
      Engine.schedule ~label:"fault.capacity_degrade.end" engine ~delay:duration (fun () ->
          Network.set_capacity_factor net 1.0;
          t.bursts <- t.bursts - 1;
          emit ~kind:"fault.capacity_degrade.end" ())
    | Restart { nodes; down } ->
      List.iter
        (fun node ->
          crash_node node;
          t.crashed <- t.crashed + 1;
          emit ~kind:"fault.restart.down" ~node ())
        nodes;
      Engine.schedule ~label:"fault.restart.up" engine ~delay:down (fun () ->
          List.iter
            (fun node ->
              restart_node node;
              if t.crashed > 0 then t.crashed <- t.crashed - 1;
              emit ~kind:"fault.restart.up" ~node ())
            nodes)
  in
  List.iter
    (fun e ->
      Engine.schedule ~label:("fault." ^ step_name e.step) engine ~delay:e.after (fun () ->
          apply e.step))
    schedule;
  t

let attach_gauges t telemetry =
  Telemetry.register telemetry "fault.active" (fun () -> float_of_int (active t));
  Telemetry.register telemetry "fault.applied" (fun () -> float_of_int t.applied)

(* ------------------------------------------------------------------ *)
(* Serialization (for ATUM_resilience.json and friends)                *)
(* ------------------------------------------------------------------ *)

let step_to_json step =
  let base = [ ("step", Json.String (step_name step)) ] in
  Json.Obj
    (base
    @
    match step with
    | Partition groups ->
      [
        ( "groups",
          Json.List
            (List.map (fun g -> Json.List (List.map (fun n -> Json.Int n) g)) groups) );
      ]
    | Heal -> []
    | Crash nodes | Recover nodes ->
      [ ("nodes", Json.List (List.map (fun n -> Json.Int n) nodes)) ]
    | Loss_burst { p; duration } ->
      [ ("p", Json.Float p); ("duration_s", Json.Float duration) ]
    | Latency_spike { factor; duration } | Capacity_degrade { factor; duration } ->
      [ ("factor", Json.Float factor); ("duration_s", Json.Float duration) ]
    | Restart { nodes; down } ->
      [
        ("nodes", Json.List (List.map (fun n -> Json.Int n) nodes));
        ("down_s", Json.Float down);
      ])

let to_json schedule =
  Json.List
    (List.map
       (fun e ->
         match step_to_json e.step with
         | Json.Obj fields -> Json.Obj (("after_s", Json.Float e.after) :: fields)
         | j -> j)
       schedule)
