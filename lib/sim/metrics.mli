(** Named counters and sample series collected during a simulation run. *)

type t

val create : unit -> t

val incr : ?by:int -> t -> string -> unit

val counter : t -> string -> int

val observe : t -> string -> float -> unit
(** Append a sample to the named series. *)

val samples : t -> string -> float list
(** Samples in observation order; [] for unknown series. *)

val series_names : t -> string list

val counter_names : t -> string list

val prefix_total : t -> string -> int
(** Sum of every counter whose name starts with the prefix.  One
    unsorted pass, no allocation — safe on per-sample hot paths where
    {!counter_names} (which sorts) is not. *)

val clear : t -> unit

(* --- snapshot / merge / JSON export --------------------------------- *)

type snapshot = {
  snap_counters : (string * int) list;  (** sorted by name *)
  snap_series : (string * float list) list;
      (** sorted by name, samples in observation order *)
}

val snapshot : t -> snapshot

val merge : into:t -> t -> unit
(** Add every counter of the source into [into] and append every
    series sample, so per-run metrics can be combined into one
    aggregate (e.g. across benchmark repetitions). *)

val to_json : ?include_series:bool -> t -> Atum_util.Json.t
(** [{counters: {name: int}, series: {name: {n; mean; p50; p99;
    samples?}}}].  Summaries are always present (an empty series is
    [{n: 0}]); the full [samples] array is included only when
    [include_series] is [true] (default [false]). *)

val of_json : Atum_util.Json.t -> (t, string) result
(** Rebuild a metrics value from {!to_json} output.  Series are only
    restored when the export carried full [samples] (summary-only
    series come back empty). *)

val pp_summary : Format.formatter -> t -> unit
(** One line per counter, plus count/mean/p50/p99 per series. *)
