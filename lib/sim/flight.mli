(** Post-mortem flight recorder.

    A [Flight.t] watches one simulation (engine + trace + metrics +
    optional telemetry) and, when {!trip}ped — by a Monitor violation,
    an unhealed fault span, or explicitly — freezes the evidence into
    a deterministic [ATUM_postmortem.json]: the last-K trace events,
    every telemetry gauge row, the engine's per-label profile, all
    metrics, and the trigger itself.

    The snapshot carries no command line, path, or wall-clock
    provenance, so two same-seed runs dump byte-identical postmortems
    (provided [ATUM_PROF_WALL] is unset, its default).  Only the
    {e first} trip is recorded; later violations still count in
    metrics but do not overwrite the evidence of the original
    failure. *)

val schema_version : int

val filename : string
(** ["ATUM_postmortem.json"] — the fixed basename {!dump} writes. *)

val default_window : int
(** 512 trace events. *)

type trigger = {
  at : float;  (** simulated seconds at trip time *)
  reason : string;  (** e.g. ["monitor.violation.vg_partitioned"] *)
  detail : string;
  node : int;  (** [-1] if none *)
  vgroup : int;  (** [-1] if none *)
  bid : int;  (** [-1] if none *)
}

type t

val create :
  ?window:int ->
  ?dir:string ->
  engine:Engine.t ->
  trace:Trace.t ->
  metrics:Metrics.t ->
  unit ->
  t
(** [window] is the last-K trace-event count (default 512).  When
    [dir] is given the recorder is {e armed}: the first {!trip} dumps
    [dir ^ "/" ^ filename] immediately, capturing state at the moment
    of failure.  Without [dir], trips are recorded and the caller
    decides when (whether) to {!dump}.  Raises [Invalid_argument] on
    a non-positive window. *)

val set_telemetry : t -> Telemetry.t -> unit
(** Attach the telemetry sampler whose rows the snapshot includes. *)

val trip :
  t ->
  reason:string ->
  ?detail:string ->
  ?node:int ->
  ?vgroup:int ->
  ?bid:int ->
  unit ->
  unit
(** Record the failure (first trip wins) and, if armed with a [dir],
    write the postmortem right away. *)

val tripped : t -> trigger option

val dump : ?dir:string -> t -> string
(** Write the snapshot to [dir ^ "/" ^ filename] (directories created
    as needed; [dir] defaults to the arming directory, else ["."]) and
    return the path.  Usable whether or not the recorder tripped —
    an untripped dump has a [null] trigger. *)

val dumps : t -> int
(** Postmortems written so far. *)

val last_path : t -> string option

val window : t -> int

val snapshot_json : t -> Atum_util.Json.t
(** The postmortem document: [{schema_version; artifact:
    "postmortem"; sim_time_s; trigger; trace_last: {window; kept;
    total; dropped; sample_rate; sampled_out; events}; telemetry;
    metrics; profile}]. *)
