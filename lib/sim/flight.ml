module Json = Atum_util.Json

let schema_version = 1
let filename = "ATUM_postmortem.json"
let default_window = 512

type trigger = {
  at : float;
  reason : string;
  detail : string;
  node : int;
  vgroup : int;
  bid : int;
}

(* All recorder state lives in this instance record — no module-level
   mutables, so concurrent engines each own an independent recorder. *)
type t = {
  engine : Engine.t;
  trace : Trace.t;
  metrics : Metrics.t;
  mutable telemetry : Telemetry.t option;
  window : int;
  dir : string option; (* auto-dump directory, if armed for dumping *)
  mutable trigger : trigger option;
  mutable dumps : int;
  mutable last_path : string option;
}

let create ?(window = default_window) ?dir ~engine ~trace ~metrics () =
  if window <= 0 then invalid_arg "Flight.create: window must be positive";
  {
    engine;
    trace;
    metrics;
    telemetry = None;
    window;
    dir;
    trigger = None;
    dumps = 0;
    last_path = None;
  }

let set_telemetry t tel = t.telemetry <- Some tel
let tripped t = t.trigger
let dumps t = t.dumps
let last_path t = t.last_path
let window t = t.window

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    Sys.mkdir dir 0o755
  end

let trigger_json g =
  let opt name v = if v < 0 then [] else [ (name, Json.Int v) ] in
  Json.Obj
    ([
       ("at_s", Json.Float g.at);
       ("reason", Json.String g.reason);
       ("detail", Json.String g.detail);
     ]
    @ opt "node" g.node @ opt "vgroup" g.vgroup @ opt "bid" g.bid)

(* The snapshot deliberately carries no command line, output directory
   or wall-clock provenance: two same-seed runs must produce
   byte-identical postmortems regardless of where they were launched
   from.  (Engine wall profiling is off unless ATUM_PROF_WALL is set;
   with it set, wall_self_s fields naturally differ between runs.) *)
let snapshot_json t =
  let last = Trace.last_events t.trace t.window in
  Json.Obj
    [
      ("schema_version", Json.Int schema_version);
      ("artifact", Json.String "postmortem");
      ("sim_time_s", Json.Float (Engine.now t.engine));
      ("trigger", match t.trigger with Some g -> trigger_json g | None -> Json.Null);
      ( "trace_last",
        Json.Obj
          [
            ("window", Json.Int t.window);
            ("kept", Json.Int (List.length last));
            ("total", Json.Int (Trace.total t.trace));
            ("dropped", Json.Int (Trace.dropped t.trace));
            ("sample_rate", Json.Float (Trace.sample_rate t.trace));
            ("sampled_out", Json.Int (Trace.sampled_out t.trace));
            ("events", Json.List (List.map Trace.event_to_json last));
          ] );
      ( "telemetry",
        match t.telemetry with Some tel -> Telemetry.to_json tel | None -> Json.Null );
      ("metrics", Metrics.to_json t.metrics);
      ("profile", Engine.profile_json t.engine);
    ]

let dump ?dir t =
  let dir =
    match (dir, t.dir) with
    | Some d, _ -> d
    | None, Some d -> d
    | None, None -> "."
  in
  mkdir_p dir;
  let path = Filename.concat dir filename in
  Json.write_file ~path (snapshot_json t);
  t.dumps <- t.dumps + 1;
  t.last_path <- Some path;
  path

let trip t ~reason ?(detail = "") ?(node = -1) ?(vgroup = -1) ?(bid = -1) () =
  match t.trigger with
  | Some _ -> () (* first trigger wins; later violations are in metrics *)
  | None ->
    t.trigger <- Some { at = Engine.now t.engine; reason; detail; node; vgroup; bid };
    (match t.dir with Some _ -> ignore (dump t : string) | None -> ())
