module Json = Atum_util.Json

let schema_version = 1

let default_period = 5.0
let default_capacity = 4096

type gauge = { g_name : string; g_read : unit -> float }

type t = {
  engine : Engine.t;
  period : float;
  cap : int;
  mutable gauges : gauge list; (* sorted by name; late registrations append *)
  mutable started : bool;
  mutable running : bool;
  (* Ring storage, allocated at [start]: one shared time axis plus one
     value row per gauge, all indexed by the same ring cursor. *)
  mutable times : float array;
  mutable values : float array array; (* values.(gauge).(slot) *)
  mutable next : int;
  mutable total : int;
}

let create ?(period = default_period) ?(capacity = default_capacity) engine =
  if period <= 0.0 then invalid_arg "Telemetry.create: period must be positive";
  if capacity <= 0 then invalid_arg "Telemetry.create: capacity must be positive";
  {
    engine;
    period;
    cap = capacity;
    gauges = [];
    started = false;
    running = false;
    times = [||];
    values = [||];
    next = 0;
    total = 0;
  }

let period t = t.period
let capacity t = t.cap

let register t name read =
  if List.exists (fun g -> String.equal g.g_name name) t.gauges then
    invalid_arg (Printf.sprintf "Telemetry.register: duplicate gauge %S" name);
  if not t.started then
    (* Keep the pre-start list sorted by name at all times, so
       [gauge_names], [to_json], [to_csv] and [series] agree on one
       order whether or not [start] has run yet. *)
    t.gauges <-
      List.merge
        (fun a b -> String.compare a.g_name b.g_name)
        [ { g_name = name; g_read = read } ]
        t.gauges
  else begin
    (* Late registration (e.g. a fault schedule installed mid-run):
       append after the sorted start-time gauges and give the new gauge
       a zero-backfilled row so every row shares the ring's time axis. *)
    t.gauges <- t.gauges @ [ { g_name = name; g_read = read } ];
    t.values <- Array.append t.values [| Array.make t.cap 0.0 |]
  end

let register_delta t name read =
  let last = ref 0 in
  register t name (fun () ->
      let v = read () in
      let d = v - !last in
      last := v;
      float_of_int d)

let sample t =
  t.times.(t.next) <- Engine.now t.engine;
  List.iteri (fun i g -> t.values.(i).(t.next) <- g.g_read ()) t.gauges;
  t.next <- (t.next + 1) mod t.cap;
  t.total <- t.total + 1

let start t =
  if not t.started then begin
    t.started <- true;
    t.running <- true;
    (* [register] keeps pre-start gauges sorted; nothing to reorder. *)
    t.times <- Array.make t.cap 0.0;
    t.values <- Array.init (List.length t.gauges) (fun _ -> Array.make t.cap 0.0);
    Engine.every ~label:"telemetry.sample" t.engine ~period:t.period (fun () ->
        if t.running then sample t;
        t.running)
  end

let stop t = t.running <- false

let gauge_names t = List.map (fun g -> g.g_name) t.gauges

let samples_total t = t.total
let samples_kept t = min t.total t.cap

(* Oldest slot sits at [next] once the ring has wrapped. *)
let fold_slots t ~init ~f =
  let kept = samples_kept t in
  let first = if t.total > t.cap then t.next else 0 in
  let acc = ref init in
  for i = 0 to kept - 1 do
    acc := f !acc ((first + i) mod t.cap)
  done;
  !acc

let times t = List.rev (fold_slots t ~init:[] ~f:(fun acc s -> t.times.(s) :: acc))

let series_by_index t i =
  List.rev (fold_slots t ~init:[] ~f:(fun acc s -> t.values.(i).(s) :: acc))

let series t name =
  let rec find i = function
    | [] -> []
    | g :: rest -> if String.equal g.g_name name then series_by_index t i else find (i + 1) rest
  in
  find 0 t.gauges

let to_json t =
  Json.Obj
    [
      ("schema_version", Json.Int schema_version);
      ("period_s", Json.Float t.period);
      ("capacity", Json.Int t.cap);
      ("samples_total", Json.Int (samples_total t));
      ("samples_kept", Json.Int (samples_kept t));
      ("times", Json.List (List.map (fun x -> Json.Float x) (times t)));
      ( "gauges",
        Json.Obj
          (List.mapi
             (fun i g ->
               ( g.g_name,
                 Json.List (List.map (fun x -> Json.Float x) (series_by_index t i)) ))
             t.gauges) );
    ]

let to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "time";
  List.iter
    (fun g ->
      Buffer.add_char buf ',';
      Buffer.add_string buf g.g_name)
    t.gauges;
  Buffer.add_char buf '\n';
  ignore
    (fold_slots t ~init:() ~f:(fun () s ->
         Buffer.add_string buf (Json.float_to_string t.times.(s));
         List.iteri
           (fun i _ ->
             Buffer.add_char buf ',';
             Buffer.add_string buf (Json.float_to_string t.values.(i).(s)))
           t.gauges;
         Buffer.add_char buf '\n'));
  Buffer.contents buf

(* --- reading an exported artifact back ------------------------------ *)

type reading = {
  r_period : float;
  r_times : float list;
  r_gauges : (string * float list) list;
  r_samples_total : int;
}

let of_json json =
  let err msg = Error ("Telemetry.of_json: " ^ msg) in
  let number = function
    | Json.Float f -> Some f
    | Json.Int i -> Some (float_of_int i)
    | _ -> None
  in
  let number_list name = function
    | Json.List xs ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | x :: rest -> (
          match number x with
          | Some f -> go (f :: acc) rest
          | None -> err (name ^ " contains a non-number"))
      in
      go [] xs
    | _ -> err (name ^ " is not a list")
  in
  match json with
  | Json.Obj _ -> (
    match Json.member "schema_version" json with
    | Some (Json.Int v) when v = schema_version -> (
      let period =
        match Option.bind (Json.member "period_s" json) number with
        | Some p when p > 0.0 -> Ok p
        | _ -> err "missing or invalid period_s"
      in
      let total =
        match Json.member "samples_total" json with
        | Some (Json.Int n) when n >= 0 -> Ok n
        | _ -> err "missing or invalid samples_total"
      in
      let times =
        match Json.member "times" json with
        | Some j -> number_list "times" j
        | None -> err "missing times"
      in
      match (period, total, times) with
      | Ok r_period, Ok r_samples_total, Ok r_times -> (
        match Json.member "gauges" json with
        | Some (Json.Obj fields) ->
          let rec go acc = function
            | [] ->
              Ok
                {
                  r_period;
                  r_times;
                  r_gauges =
                    List.sort (fun (a, _) (b, _) -> String.compare a b) (List.rev acc);
                  r_samples_total;
                }
            | (name, j) :: rest -> (
              match number_list ("gauge " ^ name) j with
              | Ok xs ->
                if List.length xs <> List.length r_times then
                  err (Printf.sprintf "gauge %s has %d samples for %d timestamps" name
                         (List.length xs) (List.length r_times))
                else go ((name, xs) :: acc) rest
              | Error e -> Error e)
          in
          go [] fields
        | _ -> err "missing gauges object")
      | (Error _ as e), _, _ | _, (Error _ as e), _ | _, _, (Error _ as e) -> e)
    | Some (Json.Int v) -> err (Printf.sprintf "unsupported schema_version %d" v)
    | _ -> err "missing schema_version")
  | _ -> err "expected an object"
