type t = {
  counters : (string, int ref) Hashtbl.t;
  series : (string, float list ref) Hashtbl.t; (* stored reversed *)
}

let create () = { counters = Hashtbl.create 32; series = Hashtbl.create 32 }

let incr ?(by = 1) t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.replace t.counters name (ref by)

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let observe t name x =
  match Hashtbl.find_opt t.series name with
  | Some r -> r := x :: !r
  | None -> Hashtbl.replace t.series name (ref [ x ])

let samples t name =
  match Hashtbl.find_opt t.series name with Some r -> List.rev !r | None -> []

let series_names t = Atum_util.Hashtbl_ext.sorted_keys ~cmp:String.compare t.series

let counter_names t = Atum_util.Hashtbl_ext.sorted_keys ~cmp:String.compare t.counters

(* Integer addition commutes, so the unsorted traversal cannot leak
   hash order into the result — unlike [counter_names], this is safe
   to call on a per-sample hot path. *)
let prefix_total t prefix =
  Hashtbl.fold
    (fun name r acc -> if String.starts_with ~prefix name then acc + !r else acc)
    t.counters 0

let clear t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.series

(* ------------------------------------------------------------------ *)
(* Snapshot / merge / JSON export                                      *)
(* ------------------------------------------------------------------ *)

type snapshot = {
  snap_counters : (string * int) list;
  snap_series : (string * float list) list;
}

let snapshot t =
  {
    snap_counters = List.map (fun k -> (k, counter t k)) (counter_names t);
    snap_series = List.map (fun k -> (k, samples t k)) (series_names t);
  }

let merge ~into src =
  List.iter (fun (k, v) -> incr ~by:v into k) (snapshot src).snap_counters;
  List.iter
    (fun (k, xs) -> List.iter (observe into k) xs)
    (snapshot src).snap_series

let series_summary_json xs =
  let open Atum_util.Json in
  let n = List.length xs in
  if n = 0 then Obj [ ("n", Int 0) ]
  else
    Obj
      [
        ("n", Int n);
        ("mean", Float (Atum_util.Stats.mean xs));
        ("p50", Float (Atum_util.Stats.percentile xs 50.0));
        ("p99", Float (Atum_util.Stats.percentile xs 99.0));
      ]

let to_json ?(include_series = false) t =
  let open Atum_util.Json in
  let snap = snapshot t in
  let counters = List.map (fun (k, v) -> (k, Int v)) snap.snap_counters in
  let series =
    List.map
      (fun (k, xs) ->
        let summary = series_summary_json xs in
        let v =
          if include_series then
            match summary with
            | Obj fields -> Obj (fields @ [ ("samples", List (List.map (fun x -> Float x) xs)) ])
            | j -> j
          else summary
        in
        (k, v))
      snap.snap_series
  in
  Obj [ ("counters", Obj counters); ("series", Obj series) ]

let of_json json =
  let open Atum_util.Json in
  let t = create () in
  let err msg = Error ("Metrics.of_json: " ^ msg) in
  match json with
  | Obj _ ->
    let counters = Option.value ~default:(Obj []) (member "counters" json) in
    let series = Option.value ~default:(Obj []) (member "series" json) in
    (match (counters, series) with
    | Obj cs, Obj ss ->
      let bad = ref None in
      List.iter
        (fun (k, v) ->
          match v with
          | Int n -> incr ~by:n t k
          | _ -> bad := Some ("counter " ^ k ^ " is not an integer"))
        cs;
      List.iter
        (fun (k, v) ->
          match member "samples" v with
          | Some (List xs) ->
            List.iter
              (fun x ->
                match x with
                | Float f -> observe t k f
                | Int i -> observe t k (float_of_int i)
                | _ -> bad := Some ("sample in " ^ k ^ " is not a number"))
              xs
          | Some _ -> bad := Some ("samples of " ^ k ^ " is not a list")
          | None -> () (* summary-only export: series cannot be restored *))
        ss;
      (match !bad with None -> Ok t | Some msg -> err msg)
    | _ -> err "counters/series must be objects")
  | _ -> err "expected an object"

let pp_summary fmt t =
  let counters = Atum_util.Hashtbl_ext.sorted_bindings ~cmp:String.compare t.counters in
  List.iter (fun (k, r) -> Format.fprintf fmt "%-40s %d@." k !r) counters;
  List.iter
    (fun name ->
      let xs = samples t name in
      if xs <> [] then
        Format.fprintf fmt "%-40s n=%d mean=%.4f p50=%.4f p99=%.4f@." name
          (List.length xs) (Atum_util.Stats.mean xs)
          (Atum_util.Stats.percentile xs 50.0)
          (Atum_util.Stats.percentile xs 99.0))
    (series_names t)
