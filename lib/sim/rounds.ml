type t = {
  engine : Engine.t;
  duration : float;
  mutable round : int;
  mutable running : bool;
  mutable next_id : int;
  mutable subscribers : (int * (int -> unit)) list; (* in subscription order *)
}

let create engine ~round_duration =
  if round_duration <= 0.0 then invalid_arg "Rounds.create: duration must be positive";
  { engine; duration = round_duration; round = 0; running = false; next_id = 0; subscribers = [] }

let round_duration t = t.duration

let current_round t = t.round

let subscribe t f =
  let id = t.next_id in
  t.next_id <- id + 1;
  t.subscribers <- t.subscribers @ [ (id, f) ];
  id

let unsubscribe t id = t.subscribers <- List.filter (fun (i, _) -> i <> id) t.subscribers

let rec tick t () =
  if t.running then begin
    t.round <- t.round + 1;
    List.iter (fun (_, f) -> f t.round) t.subscribers;
    Engine.schedule ~label:"rounds.tick" t.engine ~delay:t.duration (tick t)
  end

let start t =
  if not t.running then begin
    t.running <- true;
    Engine.schedule ~label:"rounds.tick" t.engine ~delay:t.duration (tick t)
  end

let stop t = t.running <- false
