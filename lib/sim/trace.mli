(** Ring-buffered structured event log for the simulator.

    [Engine], [Network] and [Atum_core.System] emit events into a
    shared trace behind a cheap enabled-check (one mutable-bool read),
    so tracing costs nothing when off and never allocates more than
    the fixed ring when on.  Once the ring wraps, the oldest events
    are overwritten; [dropped] reports how many were lost. *)

type event = {
  time : float;  (** simulated seconds *)
  kind : string;  (** e.g. ["net.send"], ["vgroup.split"] *)
  node : int;  (** primary node id, [-1] when not applicable *)
  peer : int;  (** secondary node id (e.g. destination), [-1] if none *)
  vgroup : int;  (** vgroup id, [-1] if none *)
  size : int;  (** payload bytes, [0] if not applicable *)
}

type t

val create : ?capacity:int -> ?enabled:bool -> unit -> t
(** Default capacity 65536 events, disabled.  Raises
    [Invalid_argument] on non-positive capacity. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val emit :
  t ->
  time:float ->
  kind:string ->
  ?node:int ->
  ?peer:int ->
  ?vgroup:int ->
  ?size:int ->
  unit ->
  unit
(** No-op when disabled. *)

val events : t -> event list
(** Buffered events, oldest first (at most [capacity] of them). *)

val capacity : t -> int

val length : t -> int
(** Events currently buffered. *)

val total : t -> int
(** Events ever emitted (while enabled). *)

val dropped : t -> int
(** [total - length]: events overwritten by ring wraparound. *)

val clear : t -> unit

val to_json : t -> Atum_util.Json.t
(** [{capacity; total; dropped; events: [{t; kind; node?; peer?;
    vgroup?; size?}]}] — negative ids and zero sizes are omitted from
    each event object. *)
