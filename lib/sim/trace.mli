(** Ring-buffered structured event log for the simulator.

    [Engine], [Network] and [Atum_core.System] emit events into a
    shared trace behind a cheap enabled-check (one mutable-bool read),
    so tracing costs nothing when off and never allocates more than
    the fixed ring when on.  Once the ring wraps, the oldest events
    are overwritten; [dropped] reports how many were lost, and
    [dropped_by_kind] which kinds are incomplete.

    Events carry optional correlation fields so post-hoc analysis can
    reconstruct causality: [bid] links every event touching one
    broadcast, [span]/[parent] pair begin/end events of sagas (join,
    shuffle, split, ...) into a tree, and [cycle] records which
    H-graph cycle a gossip hop travelled on.

    At large scale the hot kinds ([bcast.hop], [net.*]) would wrap the
    ring within simulated seconds, so each kind carries a {!level}:
    [Always] kinds (sagas, [monitor.violation.*], [fault.*],
    membership) always record, [Sampled] kinds record a deterministic
    fraction chosen by hashing the event's correlation id — one
    admitted broadcast keeps its whole hop lineage — and [Debug] kinds
    are off unless {!set_debug} is on.  Exact per-kind admitted and
    sampled-out counters keep downstream analysis honest about what
    the ring saw. *)

type event = {
  time : float;  (** simulated seconds *)
  kind : string;  (** e.g. ["net.send"], ["vgroup.split"] *)
  node : int;  (** primary node id, [-1] when not applicable *)
  peer : int;  (** secondary node id (e.g. destination), [-1] if none *)
  vgroup : int;  (** vgroup id, [-1] if none *)
  size : int;  (** payload bytes, [0] if not applicable *)
  bid : int;  (** broadcast id, [-1] if none *)
  span : int;  (** saga span id, [-1] if none *)
  parent : int;  (** parent span id, or sender vgroup for ["bcast.hop"]; [-1] if none *)
  cycle : int;  (** H-graph cycle index for gossip hops, [-1] if none *)
}

type level =
  | Always  (** record every occurrence *)
  | Sampled  (** record a {!sample_rate} fraction, by correlation id *)
  | Debug  (** record only when {!set_debug} is on *)

type t

val create : ?capacity:int -> ?enabled:bool -> unit -> t
(** Default capacity 65536 events, disabled.  Raises
    [Invalid_argument] on non-positive capacity. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val default_capacity : int

val capacity_for_scale : nodes:int -> int
(** Recommended ring capacity for an [nodes]-node run: the default
    65536 up to 10k nodes, then 131072 / 524288 / 1048576 at the 10k /
    100k / 1M tiers. *)

val default_level : string -> level
(** [bcast.hop], [bcast.dup] and the [net.*] namespace default to
    [Sampled]; the [debug.*] namespace to [Debug]; everything else to
    [Always]. *)

val level_of : t -> string -> level
(** Effective level: per-kind override if set, else {!default_level}. *)

val set_level : t -> kind:string -> level -> unit
(** Override the level of one kind. *)

val sample_rate : t -> float

val set_sample_rate : t -> float -> unit
(** Fraction of [Sampled]-kind correlation ids admitted, in [0, 1]
    (default 1.0 = record everything).  The decision hashes the
    event's correlation id (bid, else span, else node, else peer)
    with the deterministic [Hashtbl.hash], so same-seed runs admit
    the same events and an admitted broadcast keeps its full hop
    lineage.  Raises [Invalid_argument] outside [0, 1]. *)

val debug_enabled : t -> bool

val set_debug : t -> bool -> unit
(** Enable [Debug]-level kinds (default off). *)

val emit :
  t ->
  time:float ->
  kind:string ->
  ?node:int ->
  ?peer:int ->
  ?vgroup:int ->
  ?size:int ->
  ?bid:int ->
  ?span:int ->
  ?parent:int ->
  ?cycle:int ->
  unit ->
  unit
(** No-op when disabled.  Suppressed (not recorded, counted in
    {!sampled_out}) when the kind's level and the sampling decision
    say so. *)

val iter : t -> (event -> unit) -> unit
(** Visit buffered events oldest-first without materializing a list. *)

val fold : t -> init:'a -> f:('a -> event -> 'a) -> 'a
(** Fold over buffered events oldest-first, allocation-free. *)

val events : t -> event list
(** Buffered events, oldest first (at most [capacity] of them).
    Materializes a list; prefer {!iter}/{!fold} on large rings. *)

val last_events : t -> int -> event list
(** [last_events t k]: the newest (up to) [k] buffered events, oldest
    first — the flight-recorder window. *)

val capacity : t -> int

val length : t -> int
(** Events currently buffered. *)

val total : t -> int
(** Events ever admitted to the ring (while enabled). *)

val dropped : t -> int
(** [total - length]: admitted events overwritten by ring wraparound. *)

val dropped_by_kind : t -> (string * int) list
(** Overwritten-event counts grouped by [kind], sorted by kind.
    Empty until the ring wraps. *)

val sampled_out : t -> int
(** Events suppressed by sampling or level (exact count). *)

val sampled_out_by_kind : t -> (string * int) list
(** Suppressed-event counts grouped by [kind], sorted by kind. *)

val admitted_by_kind : t -> (string * int) list
(** Admitted-event counts grouped by [kind], sorted by kind.  Unlike
    the ring contents these survive wraparound, so
    [admitted + sampled_out] is the true emission count per kind. *)

val lossy : t -> bool
(** True when the ring wrapped or sampling suppressed anything —
    downstream stats are estimates. *)

val clear : t -> unit
(** Drop buffered events and reset all counters.  Levels, sample rate
    and the enabled flag are preserved. *)

val event_to_json : event -> Atum_util.Json.t
(** One event as [{t; kind; node?; peer?; vgroup?; size?; bid?; span?;
    parent?; cycle?}] — negative ids and zero sizes omitted. *)

val to_json : t -> Atum_util.Json.t
(** [{capacity; total; dropped; dropped_by_kind; sample_rate;
    sampled_out; sampled_out_by_kind; admitted_by_kind; events}]. *)
