(** Ring-buffered structured event log for the simulator.

    [Engine], [Network] and [Atum_core.System] emit events into a
    shared trace behind a cheap enabled-check (one mutable-bool read),
    so tracing costs nothing when off and never allocates more than
    the fixed ring when on.  Once the ring wraps, the oldest events
    are overwritten; [dropped] reports how many were lost, and
    [dropped_by_kind] which kinds are incomplete.

    Events carry optional correlation fields so post-hoc analysis can
    reconstruct causality: [bid] links every event touching one
    broadcast, [span]/[parent] pair begin/end events of sagas (join,
    shuffle, split, ...) into a tree, and [cycle] records which
    H-graph cycle a gossip hop travelled on. *)

type event = {
  time : float;  (** simulated seconds *)
  kind : string;  (** e.g. ["net.send"], ["vgroup.split"] *)
  node : int;  (** primary node id, [-1] when not applicable *)
  peer : int;  (** secondary node id (e.g. destination), [-1] if none *)
  vgroup : int;  (** vgroup id, [-1] if none *)
  size : int;  (** payload bytes, [0] if not applicable *)
  bid : int;  (** broadcast id, [-1] if none *)
  span : int;  (** saga span id, [-1] if none *)
  parent : int;  (** parent span id, or sender vgroup for ["bcast.hop"]; [-1] if none *)
  cycle : int;  (** H-graph cycle index for gossip hops, [-1] if none *)
}

type t

val create : ?capacity:int -> ?enabled:bool -> unit -> t
(** Default capacity 65536 events, disabled.  Raises
    [Invalid_argument] on non-positive capacity. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val emit :
  t ->
  time:float ->
  kind:string ->
  ?node:int ->
  ?peer:int ->
  ?vgroup:int ->
  ?size:int ->
  ?bid:int ->
  ?span:int ->
  ?parent:int ->
  ?cycle:int ->
  unit ->
  unit
(** No-op when disabled. *)

val iter : t -> (event -> unit) -> unit
(** Visit buffered events oldest-first without materializing a list. *)

val fold : t -> init:'a -> f:('a -> event -> 'a) -> 'a
(** Fold over buffered events oldest-first, allocation-free. *)

val events : t -> event list
(** Buffered events, oldest first (at most [capacity] of them).
    Materializes a list; prefer {!iter}/{!fold} on large rings. *)

val capacity : t -> int

val length : t -> int
(** Events currently buffered. *)

val total : t -> int
(** Events ever emitted (while enabled). *)

val dropped : t -> int
(** [total - length]: events overwritten by ring wraparound. *)

val dropped_by_kind : t -> (string * int) list
(** Overwritten-event counts grouped by [kind], sorted by kind.
    Empty until the ring wraps. *)

val clear : t -> unit

val to_json : t -> Atum_util.Json.t
(** [{capacity; total; dropped; dropped_by_kind; events: [{t; kind;
    node?; peer?; vgroup?; size?; bid?; span?; parent?; cycle?}]}] —
    negative ids and zero sizes are omitted from each event object. *)
