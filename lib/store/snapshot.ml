(* Versioned, authenticated snapshots.

   Layout:  magic "ATUMSNAP" | version (1 byte) | HMAC-SHA256 tag
   (32 bytes, over version byte + payload) | payload (compact JSON).

   The tag (keyed per deployment) catches both bit rot and a log from
   a different deployment being replayed into this one; either reads
   back as [Error], which the recovery path treats like a corrupt
   WAL. *)

module Json = Atum_util.Json
module Hmac = Atum_crypto.Hmac

let magic = "ATUMSNAP"
let version = 1

let save (b : Backend.t) ~key ~node ~name doc =
  let payload = Json.to_string ~pretty:false doc in
  let vbyte = String.make 1 (Char.chr version) in
  let tag = Hmac.mac ~key (vbyte ^ payload) in
  let blob = magic ^ vbyte ^ tag ^ payload in
  b.Backend.save ~node ~name blob;
  String.length blob

let header_bytes = String.length magic + 1 + 32

let load (b : Backend.t) ~key ~node ~name =
  match b.Backend.load ~node ~name with
  | None -> Ok None
  | Some blob ->
    let n = String.length blob in
    if n < header_bytes then Error "snapshot too short"
    else if not (String.equal (String.sub blob 0 (String.length magic)) magic) then
      Error "bad snapshot magic"
    else begin
      let v = Char.code blob.[String.length magic] in
      if v <> version then Error (Printf.sprintf "unsupported snapshot version %d" v)
      else begin
        let tag = String.sub blob (String.length magic + 1) 32 in
        let payload = String.sub blob header_bytes (n - header_bytes) in
        let vbyte = String.make 1 (Char.chr v) in
        if not (Hmac.verify ~key ~msg:(vbyte ^ payload) ~tag) then
          Error "snapshot authentication failed"
        else
          match Json.of_string payload with
          | Ok doc -> Ok (Some doc)
          | Error e -> Error ("snapshot decode: " ^ e)
      end
    end

let remove (b : Backend.t) ~node ~name = b.Backend.remove ~node ~name
