(* Per-replica durable state manager: one WAL + one snapshot per node,
   over any Backend.

   The write path is append-only; every [snapshot_every] appends the
   caller is told to fold its state into a fresh snapshot, after which
   the WAL is truncated.  Recovery loads snapshot + WAL prefix and
   reports exactly how much survived and in what shape, leaving the
   fall-back policy (fresh join on corruption) to the caller. *)

module Json = Atum_util.Json

let wal_name = "wal.log"
let snapshot_name = "snapshot.bin"

type t = {
  backend : Backend.t;
  key : string;
  snapshot_every : int;
  (* Appends since the node's last snapshot — the snapshot trigger. *)
  pending : (int, int) Hashtbl.t;
  (* Live WAL + snapshot bytes per node (rebuilt on truncate). *)
  bytes : (int, int) Hashtbl.t;
  mutable appends : int;
  mutable snapshots : int;
  mutable replayed : int;
}

type recovery = {
  snapshot : Json.t option;
  entries : Json.t list;
  wal_status : Wal.status;
  snapshot_error : string option;
}

let corrupt r =
  (match r.wal_status with Wal.Corrupt _ -> true | _ -> false)
  || Option.is_some r.snapshot_error

let create ?(snapshot_every = 64) ~key backend =
  if snapshot_every < 1 then invalid_arg "Replica.create: snapshot_every must be >= 1";
  {
    backend;
    key;
    snapshot_every;
    pending = Hashtbl.create 64;
    bytes = Hashtbl.create 64;
    appends = 0;
    snapshots = 0;
    replayed = 0;
  }

let backend t = t.backend

let bump tbl node delta =
  Hashtbl.replace tbl node (delta + Option.value ~default:0 (Hashtbl.find_opt tbl node))

let append t ~node record =
  let n = Wal.append t.backend ~node ~name:wal_name record in
  t.appends <- t.appends + 1;
  bump t.pending node 1;
  bump t.bytes node n

let needs_snapshot t ~node =
  Option.value ~default:0 (Hashtbl.find_opt t.pending node) >= t.snapshot_every

let save_snapshot t ~node doc =
  let n = Snapshot.save t.backend ~key:t.key ~node ~name:snapshot_name doc in
  Wal.reset t.backend ~node ~name:wal_name;
  t.snapshots <- t.snapshots + 1;
  Hashtbl.replace t.pending node 0;
  Hashtbl.replace t.bytes node n

let recover t ~node =
  let snapshot, snapshot_error =
    match Snapshot.load t.backend ~key:t.key ~node ~name:snapshot_name with
    | Ok s -> (s, None)
    | Error e -> (None, Some e)
  in
  let entries, wal_status = Wal.replay t.backend ~node ~name:wal_name in
  t.replayed <- t.replayed + List.length entries;
  { snapshot; entries; wal_status; snapshot_error }

let wipe t ~node =
  Wal.reset t.backend ~node ~name:wal_name;
  Snapshot.remove t.backend ~node ~name:snapshot_name;
  Hashtbl.replace t.pending node 0;
  Hashtbl.replace t.bytes node 0

let appends t = t.appends
let snapshots t = t.snapshots
let replayed t = t.replayed
let fsyncs t = t.backend.Backend.sync_count ()

let log_bytes t = Hashtbl.fold (fun _ n acc -> acc + n) t.bytes 0
