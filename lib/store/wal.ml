(* Append-only write-ahead log.

   Record framing, per entry:

     +------------+------------------+------------------+
     | length (4B | SHA-256(payload) | payload          |
     | big-endian)| (32 bytes, raw)  | (compact JSON)   |
     +------------+------------------+------------------+

   Replay walks the frames front to back, stopping at the first frame
   that does not check out.  A short tail (crash mid-append) yields
   [Truncated] and the valid prefix survives; a checksum or decode
   mismatch yields [Corrupt] — the caller decides whether the prefix
   is still trustworthy (System falls back to a fresh join). *)

module Json = Atum_util.Json
module Sha256 = Atum_crypto.Sha256

let header_bytes = 4 + 32

(* Upper bound on a single record: a length prefix beyond this is
   treated as corruption, not as a 2 GB allocation request. *)
let max_record_bytes = 1 lsl 26

type status =
  | Complete
  | Truncated of { dropped_bytes : int }
  | Corrupt of { at_record : int }

let be32 n =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xFF));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xFF));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xFF));
  Bytes.set b 3 (Char.chr (n land 0xFF));
  Bytes.to_string b

let read_be32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let frame payload = be32 (String.length payload) ^ Sha256.digest payload ^ payload

let append (b : Backend.t) ~node ~name record =
  let payload = Json.to_string ~pretty:false record in
  if String.length payload > max_record_bytes then
    invalid_arg "Wal.append: record too large";
  let f = frame payload in
  b.Backend.append ~node ~name f;
  String.length f

let decode data =
  let n = String.length data in
  let entries = ref [] in
  let rec scan off idx =
    if off = n then (List.rev !entries, Complete)
    else if off + header_bytes > n then
      (List.rev !entries, Truncated { dropped_bytes = n - off })
    else begin
      let len = read_be32 data off in
      if len < 0 || len > max_record_bytes then
        (List.rev !entries, Corrupt { at_record = idx })
      else if off + header_bytes + len > n then
        (List.rev !entries, Truncated { dropped_bytes = n - off })
      else begin
        let sum = String.sub data (off + 4) 32 in
        let payload = String.sub data (off + header_bytes) len in
        if not (String.equal sum (Sha256.digest payload)) then
          (List.rev !entries, Corrupt { at_record = idx })
        else
          match Json.of_string payload with
          | Error _ -> (List.rev !entries, Corrupt { at_record = idx })
          | Ok v ->
            entries := v :: !entries;
            scan (off + header_bytes + len) (idx + 1)
      end
    end
  in
  scan 0 0

let replay (b : Backend.t) ~node ~name =
  match b.Backend.load ~node ~name with
  | None -> ([], Complete)
  | Some data -> decode data

let reset (b : Backend.t) ~node ~name = b.Backend.remove ~node ~name
