(* In-simulation virtual filesystem.

   The durable bytes of every node live in one hash table keyed by
   (node, name); timestamps come from the [now] closure the caller
   provides (simulation time), so a seeded run touches no wall clock
   and two same-seed runs hold byte-identical store contents.  The
   fault-injection helpers ([corrupt_byte], [truncate]) exist so chaos
   scenarios can damage a node's log deterministically before a
   restart. *)

type file = { mutable data : string; mutable mtime : float }

type t = {
  files : (int * string, file) Hashtbl.t;
  now : unit -> float;
  mutable syncs : int;
}

let create ?(now = fun () -> 0.0) () = { files = Hashtbl.create 64; now; syncs = 0 }

let find t ~node ~name = Hashtbl.find_opt t.files (node, name)

let read t ~node ~name = Option.map (fun f -> f.data) (find t ~node ~name)

let mtime t ~node ~name = Option.map (fun f -> f.mtime) (find t ~node ~name)

let total_bytes t =
  Hashtbl.fold (fun _ f acc -> acc + String.length f.data) t.files 0

let file_count t = Hashtbl.length t.files

let backend t =
  {
    Backend.load = (fun ~node ~name -> read t ~node ~name);
    save =
      (fun ~node ~name data ->
        t.syncs <- t.syncs + 1;
        Hashtbl.replace t.files (node, name) { data; mtime = t.now () });
    append =
      (fun ~node ~name data ->
        t.syncs <- t.syncs + 1;
        match find t ~node ~name with
        | Some f ->
          f.data <- f.data ^ data;
          f.mtime <- t.now ()
        | None -> Hashtbl.replace t.files (node, name) { data; mtime = t.now () });
    remove = (fun ~node ~name -> Hashtbl.remove t.files (node, name));
    sync_count = (fun () -> t.syncs);
  }

(* --- deterministic damage, for chaos scenarios ---------------------- *)

let corrupt_byte t ~node ~name ~at =
  match find t ~node ~name with
  | Some f when at >= 0 && at < String.length f.data ->
    let b = Bytes.of_string f.data in
    Bytes.set b at (Char.chr (Char.code (Bytes.get b at) lxor 0xFF));
    f.data <- Bytes.to_string b;
    true
  | _ -> false

let truncate t ~node ~name ~keep =
  match find t ~node ~name with
  | Some f when keep >= 0 && keep < String.length f.data ->
    f.data <- String.sub f.data 0 keep;
    true
  | _ -> false
