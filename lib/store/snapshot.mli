(** Versioned, HMAC-authenticated state snapshots.

    Layout: magic ["ATUMSNAP"], a version byte, an HMAC-SHA256 tag
    over (version byte + payload) with the deployment key, then the
    compact-JSON payload.  A failed magic/version/tag/decode check
    loads as [Error] — treated by recovery exactly like a corrupt
    WAL record (fresh-join fallback). *)

val magic : string
val version : int

val header_bytes : int

val save : Backend.t -> key:string -> node:int -> name:string -> Atum_util.Json.t -> int
(** Write (replacing any previous snapshot); returns blob size. *)

val load :
  Backend.t -> key:string -> node:int -> name:string ->
  (Atum_util.Json.t option, string) result
(** [Ok None] when no snapshot exists. *)

val remove : Backend.t -> node:int -> name:string -> unit
