(** Per-replica durable state: one {!Wal} + one {!Snapshot} per node
    over any {!Backend}.

    The runtime appends one record per state change; once a node has
    accumulated [snapshot_every] appends, {!needs_snapshot} turns true
    and the caller folds its full state into {!save_snapshot}, which
    truncates the WAL.  {!recover} loads snapshot + WAL prefix and
    reports what survived; the fresh-join fall-back policy on
    corruption belongs to the caller (see [System.restart]). *)

type t

type recovery = {
  snapshot : Atum_util.Json.t option;  (** decoded snapshot, if any *)
  entries : Atum_util.Json.t list;  (** valid WAL prefix, oldest first *)
  wal_status : Wal.status;
  snapshot_error : string option;
      (** snapshot failed magic / version / HMAC / decode *)
}

val corrupt : recovery -> bool
(** True when the WAL hit a corrupt record or the snapshot failed
    authentication — the fresh-join fall-back trigger.  A merely
    truncated WAL is not corrupt. *)

val wal_name : string
val snapshot_name : string
(** The two file names used per node (damage targets for chaos). *)

val create : ?snapshot_every:int -> key:string -> Backend.t -> t
(** [snapshot_every] (default 64, >= 1) appends between snapshots;
    [key] authenticates snapshots (per deployment). *)

val backend : t -> Backend.t

val append : t -> node:int -> Atum_util.Json.t -> unit

val needs_snapshot : t -> node:int -> bool

val save_snapshot : t -> node:int -> Atum_util.Json.t -> unit
(** Write the snapshot, then truncate the node's WAL. *)

val recover : t -> node:int -> recovery

val wipe : t -> node:int -> unit
(** Drop both files — the fresh-join fall-back. *)

(* --- counters (telemetry gauges) ------------------------------------ *)

val appends : t -> int
val snapshots : t -> int
val replayed : t -> int
(** Cumulative WAL entries returned by {!recover} calls. *)

val fsyncs : t -> int
(** The backend's durable-write count. *)

val log_bytes : t -> int
(** Live WAL + snapshot bytes across all nodes. *)
