(* Thin real-directory backend: dir/node-<id>/<name>.

   This is the only store implementation that touches the OS — it
   exists for running a replica's durability layer outside the
   simulation (and for inspecting store contents on disk).  Simulated
   runs use Vfs; nothing on the deterministic artifact path reaches
   this module.  Durability is modeled with flush + a wall-clock mtime
   stamp per sync, mirroring what a production fsync path would do. *)

(* Process-wide durable-write counter across every directory backend —
   the store.fsync gauge when running against real files. *)
let fsyncs = ref 0

(* Wall-clock stamp of the last durable write, recorded like a real
   store would for its manifest; never read back on any deterministic
   path. *)
let last_sync = ref 0.0

let sync () =
  incr fsyncs;
  last_sync := Unix.gettimeofday ()

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let path ~dir ~node ~name =
  Filename.concat (Filename.concat dir ("node-" ^ string_of_int node)) name

let load ~dir ~node ~name =
  let p = path ~dir ~node ~name in
  if Sys.file_exists p then begin
    let ic = open_in_bin p in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  end
  else None

let write ~dir ~node ~name ~append data =
  let p = path ~dir ~node ~name in
  mkdir_p (Filename.dirname p);
  let oc =
    open_out_gen
      (if append then [ Open_wronly; Open_creat; Open_append; Open_binary ]
       else [ Open_wronly; Open_creat; Open_trunc; Open_binary ])
      0o644 p
  in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc data;
      flush oc;
      sync ())

let create ~dir =
  {
    Backend.load = (fun ~node ~name -> load ~dir ~node ~name);
    save = (fun ~node ~name data -> write ~dir ~node ~name ~append:false data);
    append = (fun ~node ~name data -> write ~dir ~node ~name ~append:true data);
    remove =
      (fun ~node ~name ->
        let p = path ~dir ~node ~name in
        if Sys.file_exists p then try Sys.remove p with Sys_error _ -> ());
    sync_count = (fun () -> !fsyncs);
  }
