type t = {
  load : node:int -> name:string -> string option;
  save : node:int -> name:string -> string -> unit;
  append : node:int -> name:string -> string -> unit;
  remove : node:int -> name:string -> unit;
  sync_count : unit -> int;
}
