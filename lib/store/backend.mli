(** Storage backend signature for the durability layer.

    A backend is a record of functions over a per-node flat namespace:
    each node id owns a handful of named files (a write-ahead log, a
    snapshot).  Two implementations exist — {!Vfs}, an in-simulation
    virtual filesystem whose contents are plain deterministic bytes,
    and {!File_backend}, a thin real-directory backend used outside
    the simulation — so the WAL/snapshot machinery above never knows
    which world it is writing to. *)

type t = {
  load : node:int -> name:string -> string option;
      (** Whole-file read; [None] when the file does not exist. *)
  save : node:int -> name:string -> string -> unit;
      (** Whole-file replace (and durably sync). *)
  append : node:int -> name:string -> string -> unit;
      (** Append bytes (and durably sync); creates the file. *)
  remove : node:int -> name:string -> unit;  (** No-op when absent. *)
  sync_count : unit -> int;
      (** Durable writes performed so far — the fsync-count gauge. *)
}
