(** Real-directory {!Backend}: [dir/node-<id>/<name>].

    For running a replica's durability layer against actual files —
    nothing on the deterministic simulation path uses it ({!Vfs} does
    that job); lint allowlist entries pin its wall-clock stamp and its
    process-wide sync counter.  Writes flush eagerly, standing in for
    a production fsync. *)

val create : dir:string -> Backend.t

val fsyncs : int ref
(** Process-wide durable-write count across every directory backend. *)
