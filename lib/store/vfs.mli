(** In-simulation virtual filesystem: the deterministic {!Backend}.

    All durable bytes live in memory, keyed by (node id, file name);
    file timestamps are drawn from the [now] closure (simulation time),
    never the wall clock — so attaching a store to a seeded run keeps
    artifacts byte-identical across runs.

    The damage helpers let chaos scenarios corrupt or truncate a
    node's log deterministically before a cold restart, which is how
    the corrupted-log recovery path is exercised. *)

type t

val create : ?now:(unit -> float) -> unit -> t
(** [now] supplies file mtimes (default: constant 0); pass the
    simulation clock, e.g. [fun () -> System.now sys]. *)

val backend : t -> Backend.t

val read : t -> node:int -> name:string -> string option
(** Raw bytes of a file, for tests and damage targeting. *)

val mtime : t -> node:int -> name:string -> float option

val total_bytes : t -> int
(** Total bytes held across all nodes and files. *)

val file_count : t -> int

val corrupt_byte : t -> node:int -> name:string -> at:int -> bool
(** Flip every bit of the byte at offset [at].  [false] when the file
    is missing or the offset is out of range. *)

val truncate : t -> node:int -> name:string -> keep:int -> bool
(** Cut the file down to its first [keep] bytes (a torn tail).
    [false] when the file is missing or already that short. *)
