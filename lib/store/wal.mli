(** Append-only, length-prefixed, checksummed write-ahead log.

    Each record is framed as a 4-byte big-endian payload length, the
    raw SHA-256 of the payload, then the payload itself (compact
    JSON).  {!replay} returns the longest valid prefix plus a status:
    a torn tail (crash mid-append) is {!Truncated} and tolerated; a
    checksum or decode failure is {!Corrupt}, which the recovery path
    treats as grounds for falling back to a fresh join. *)

type status =
  | Complete
  | Truncated of { dropped_bytes : int }
      (** The log ends mid-frame; the returned prefix is intact. *)
  | Corrupt of { at_record : int }
      (** Record [at_record] (0-based) failed its checksum or decode. *)

val header_bytes : int
(** Frame overhead per record: 4 (length) + 32 (SHA-256). *)

val max_record_bytes : int
(** A length prefix beyond this is treated as corruption. *)

val append : Backend.t -> node:int -> name:string -> Atum_util.Json.t -> int
(** Frame and append one record; returns the frame size in bytes.
    Raises [Invalid_argument] on a record over {!max_record_bytes}. *)

val replay : Backend.t -> node:int -> name:string -> Atum_util.Json.t list * status
(** Decode the log front to back; a missing file is [([], Complete)]. *)

val reset : Backend.t -> node:int -> name:string -> unit
(** Delete the log (after a snapshot has captured its contents). *)
