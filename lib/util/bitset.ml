(* Growable dense bitset over small non-negative ints.

   Three words when empty, one bit per potential member once touched —
   the per-node broadcast-dedup marker at million-node scale, where a
   hash table per node (16-bucket minimum in the stdlib) would cost
   three orders of magnitude more. *)

type t = { mutable words : int array }

let bits_per_word = Sys.int_size

let empty_words : int array = [||]

let create () = { words = empty_words }

let ensure t i =
  let need = (i / bits_per_word) + 1 in
  if need > Array.length t.words then begin
    let cap = max need (max 1 (2 * Array.length t.words)) in
    let words = Array.make cap 0 in
    Array.blit t.words 0 words 0 (Array.length t.words);
    t.words <- words
  end

let set t i =
  if i < 0 then invalid_arg "Bitset.set: negative index";
  ensure t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl b)

let unset t i =
  if i >= 0 then begin
    let w = i / bits_per_word in
    if w < Array.length t.words then
      t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))
  end

let mem t i =
  i >= 0
  &&
  let w = i / bits_per_word in
  w < Array.length t.words && t.words.(w) land (1 lsl (i mod bits_per_word)) <> 0

let clear t = t.words <- empty_words

let popcount w =
  let rec go w acc = if w = 0 then acc else go (w lsr 1) (acc + (w land 1)) in
  go w 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let iter f t =
  Array.iteri
    (fun wi w ->
      if w <> 0 then
        for b = 0 to bits_per_word - 1 do
          if w land (1 lsl b) <> 0 then f ((wi * bits_per_word) + b)
        done)
    t.words

let to_list t =
  let acc = ref [] in
  iter (fun i -> acc := i :: !acc) t;
  List.rev !acc
