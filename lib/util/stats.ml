let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  let n = List.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (ss /. float_of_int (n - 1))
  end

let percentile xs p =
  match xs with
  | [] -> invalid_arg "Stats.percentile: empty list"
  | _ ->
    let a = Array.of_list xs in
    Array.sort Float.compare a;
    let n = Array.length a in
    if n = 1 then a.(0)
    else begin
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (floor rank) in
      let hi = min (lo + 1) (n - 1) in
      let frac = rank -. float_of_int lo in
      a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
    end

let median xs = percentile xs 50.0

let cdf xs =
  let a = Array.of_list xs in
  Array.sort Float.compare a;
  let n = float_of_int (Array.length a) in
  Array.to_list (Array.mapi (fun i x -> (x, float_of_int (i + 1) /. n)) a)

let histogram ~buckets ~lo ~hi xs =
  if buckets <= 0 then invalid_arg "Stats.histogram: buckets must be positive";
  if hi <= lo then invalid_arg "Stats.histogram: hi must exceed lo";
  let counts = Array.make buckets 0 in
  let width = (hi -. lo) /. float_of_int buckets in
  let bucket_of x = max 0 (min (buckets - 1) (int_of_float ((x -. lo) /. width))) in
  List.iter (fun x -> counts.(bucket_of x) <- counts.(bucket_of x) + 1) xs;
  counts

(* Lanczos approximation, from Numerical Recipes. *)
let gammln x =
  let cof =
    [| 76.18009172947146; -86.50532032941677; 24.01409824083091;
       -1.231739572450155; 0.1208650973866179e-2; -0.5395239384953e-5 |]
  in
  let y = ref x in
  let tmp = x +. 5.5 in
  let tmp = tmp -. ((x +. 0.5) *. log tmp) in
  let ser = ref 1.000000000190015 in
  Array.iter
    (fun c ->
      y := !y +. 1.0;
      ser := !ser +. (c /. !y))
    cof;
  -.tmp +. log (2.5066282746310005 *. !ser /. x)

(* Series expansion of P(a, x), valid for x < a + 1. *)
let gamma_p_series a x =
  let gln = gammln a in
  if x <= 0.0 then 0.0
  else begin
    let ap = ref a in
    let sum = ref (1.0 /. a) in
    let del = ref !sum in
    let continue = ref true in
    let iter = ref 0 in
    while !continue && !iter < 500 do
      incr iter;
      ap := !ap +. 1.0;
      del := !del *. x /. !ap;
      sum := !sum +. !del;
      if abs_float !del < abs_float !sum *. 3e-9 then continue := false
    done;
    !sum *. exp (-.x +. (a *. log x) -. gln)
  end

(* Continued fraction for Q(a, x), valid for x >= a + 1. *)
let gamma_q_cf a x =
  let gln = gammln a in
  let fpmin = 1e-300 in
  let b = ref (x +. 1.0 -. a) in
  let c = ref (1.0 /. fpmin) in
  let d = ref (1.0 /. !b) in
  let h = ref !d in
  let continue = ref true in
  let i = ref 1 in
  while !continue && !i < 500 do
    let an = -.float_of_int !i *. (float_of_int !i -. a) in
    b := !b +. 2.0;
    d := (an *. !d) +. !b;
    if abs_float !d < fpmin then d := fpmin;
    c := !b +. (an /. !c);
    if abs_float !c < fpmin then c := fpmin;
    d := 1.0 /. !d;
    let del = !d *. !c in
    h := !h *. del;
    if abs_float (del -. 1.0) < 3e-9 then continue := false;
    incr i
  done;
  exp (-.x +. (a *. log x) -. gln) *. !h

let regularized_gamma_q a x =
  if x < 0.0 || a <= 0.0 then invalid_arg "Stats.regularized_gamma_q";
  (* The guard above already rejected x < 0, so this sign test is an
     exact x = 0 check without float-literal equality (lint F001). *)
  if x <= 0.0 then 1.0
  else if x < a +. 1.0 then 1.0 -. gamma_p_series a x
  else gamma_q_cf a x

let chi2_cdf_complement ~df x =
  if df <= 0 then invalid_arg "Stats.chi2_cdf_complement: df must be positive";
  regularized_gamma_q (float_of_int df /. 2.0) (x /. 2.0)

let chi2_statistic ~observed ~expected =
  if Array.length observed <> Array.length expected then
    invalid_arg "Stats.chi2_statistic: length mismatch";
  let acc = ref 0.0 in
  Array.iteri
    (fun i o ->
      let e = expected.(i) in
      if e > 0.0 then acc := !acc +. (((float_of_int o -. e) ** 2.0) /. e))
    observed;
  !acc

let chi2_uniform_test ~confidence counts =
  let cells = Array.length counts in
  if cells < 2 then true
  else begin
    let total = Array.fold_left ( + ) 0 counts in
    let expected = Array.make cells (float_of_int total /. float_of_int cells) in
    let x2 = chi2_statistic ~observed:counts ~expected in
    let p = chi2_cdf_complement ~df:(cells - 1) x2 in
    (* Reject uniformity when p < 1 - confidence. *)
    p >= 1.0 -. confidence
  end
