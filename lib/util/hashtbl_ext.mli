(** Deterministic, sorted views of hash tables.

    [Hashtbl.fold]/[Hashtbl.iter] enumerate buckets in an
    implementation-defined order, which silently breaks the
    bit-for-bit reproducibility the simulator's seeded runs rely on
    (lint rule D002).  Every traversal whose order can be observed
    must go through one of these helpers, which take an explicit
    comparator on the key type. *)

val sorts_performed : unit -> int
(** Process-wide count of materialize-and-sort traversals these
    helpers have executed.  Regression tests snapshot it around
    operations that must run sort-free (gauge sampling, gossip
    fan-out) to pin their cost. *)

val sorted_bindings : cmp:('a -> 'a -> int) -> ('a, 'b) Hashtbl.t -> ('a * 'b) list
(** All bindings, sorted by key with [cmp].  With duplicate keys (from
    [Hashtbl.add] shadowing) the relative order of equal keys is
    unspecified; the repo only uses [Hashtbl.replace] tables. *)

val sorted_keys : cmp:('a -> 'a -> int) -> ('a, 'b) Hashtbl.t -> 'a list
(** All keys, sorted with [cmp]. *)

val sorted_iter : cmp:('a -> 'a -> int) -> ('a -> 'b -> unit) -> ('a, 'b) Hashtbl.t -> unit
(** [iter] in ascending key order — a drop-in for [Hashtbl.iter] where
    the side effects are order-sensitive. *)
