(* Dense-int id arena: a growable flat array plus a free list.

   Ids are handed out densely from 0, so they double as array
   indices everywhere downstream (network handler tables, overlay
   rings, per-node state) — no hashing, no buckets, no rehash pauses.
   [release] returns an id to the free list; the next [alloc] reuses
   the smallest released id, keeping the id space dense under churn.

   Iteration order is ascending index order, which is the ascending
   id order the deterministic artifacts already rely on — the arena
   replaces the fold-then-sort idiom over hash tables with a plain
   array walk. *)

type 'a t = {
  mutable slots : 'a option array;
  mutable high : int;        (* slots.(i) with i >= high are all None *)
  mutable live : int;        (* number of Some slots *)
  mutable free : int list;   (* released ids, kept sorted ascending *)
}

let create ?(cap = 16) () = { slots = Array.make (max cap 1) None; high = 0; live = 0; free = [] }

let length t = t.high
let live t = t.live

let ensure t i =
  if i >= Array.length t.slots then begin
    let cap = max (i + 1) (2 * Array.length t.slots) in
    let slots = Array.make cap None in
    Array.blit t.slots 0 slots 0 t.high;
    t.slots <- slots
  end

let alloc t v =
  let id =
    match t.free with
    | id :: rest ->
      t.free <- rest;
      id
    | [] ->
      let id = t.high in
      ensure t id;
      t.high <- t.high + 1;
      id
  in
  t.slots.(id) <- Some v;
  t.live <- t.live + 1;
  id

(* Allocate where the stored value needs to know its own id. *)
let alloc_with t f =
  let id =
    match t.free with
    | id :: rest ->
      t.free <- rest;
      id
    | [] ->
      let id = t.high in
      ensure t id;
      t.high <- t.high + 1;
      id
  in
  t.slots.(id) <- Some (f id);
  t.live <- t.live + 1;
  id

let get t i = if i < 0 || i >= t.high then None else t.slots.(i)

let find t i =
  match get t i with Some v -> v | None -> raise Not_found

let mem t i = get t i <> None

let release t i =
  match get t i with
  | None -> invalid_arg "Arena.release: empty slot"
  | Some _ ->
    t.slots.(i) <- None;
    t.live <- t.live - 1;
    (* Sorted insert keeps allocation order deterministic and dense:
       the smallest free id is always reused first.  Free lists stay
       short (releases are churn events, not steady state). *)
    let rec ins = function
      | [] -> [ i ]
      | x :: _ as l when i < x -> i :: l
      | x :: rest -> x :: ins rest
    in
    t.free <- ins t.free

let iter f t =
  for i = 0 to t.high - 1 do
    match t.slots.(i) with Some v -> f i v | None -> ()
  done

let fold f t acc =
  let acc = ref acc in
  for i = 0 to t.high - 1 do
    match t.slots.(i) with Some v -> acc := f i v !acc | None -> ()
  done;
  !acc
