(** Growable dense bitset over small non-negative ints.

    Three words when empty, one bit per potential member once
    touched.  Used for per-node broadcast dedup markers, where a hash
    table per node (16-bucket stdlib minimum) is prohibitive at
    million-node scale. *)

type t

val create : unit -> t

val set : t -> int -> unit
(** Raises [Invalid_argument] on a negative index. *)

val unset : t -> int -> unit
(** No-op when the index was never set (or is negative). *)

val mem : t -> int -> bool

val clear : t -> unit
(** Drop every member and release the backing storage. *)

val cardinal : t -> int

val iter : (int -> unit) -> t -> unit
(** Members in ascending order — the durability layer snapshots
    delivered-broadcast sets and diffs them during restart catch-up. *)

val to_list : t -> int list
(** Ascending. *)
