(** Minimal dependency-free JSON tree, writer, and parser.

    Used by the observability pipeline (metrics snapshots, trace
    dumps, [BENCH_*.json] benchmark artifacts) so the repo stays free
    of external JSON libraries.  The writer is deterministic: object
    members keep their construction order, floats render with the
    shortest representation that round-trips, and no whitespace
    depends on the environment — two identical trees always serialize
    to identical bytes, which is what makes the benchmark-diff
    workflow (EXPERIMENTS.md) possible. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Serialize; [pretty] (default [true]) indents with two spaces.
    Non-finite floats serialize as [null] (JSON has no representation
    for them). *)

val to_buffer : ?pretty:bool -> Buffer.t -> t -> unit

val write_file : ?pretty:bool -> path:string -> t -> unit
(** [to_string] plus a trailing newline, written atomically enough for
    our purposes (single [open_out]/[close_out]). *)

val of_string : string -> (t, string) result
(** Parse a JSON document.  Accepts exactly the values the writer
    emits (plus standard escapes and whitespace); numbers without
    [.], [e] or [E] parse as [Int].  The error string contains a
    character offset.

    Hardened for the WAL-recovery decode path: truncated or garbage
    input always returns [Error] (no exception escapes), nesting
    deeper than an internal bound (512) is rejected instead of
    overflowing the stack, and objects with duplicate keys are
    rejected rather than silently shadowed. *)

val of_string_exn : string -> t
(** @raise Invalid_argument on parse errors. *)

val member : string -> t -> t option
(** [member key (Obj ...)] — [None] on missing key or non-object. *)

val float_to_string : float -> string
(** The writer's float format: shortest of %.12g/%.17g that parses
    back to the same float, with a ["."] or exponent always present so
    the value stays a float on re-parse. *)

val equal : t -> t -> bool
(** Structural equality; [Float] compared by bit pattern so NaN = NaN
    and 0. <> -0. (round-trip checks need this). *)
