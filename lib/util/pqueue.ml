(* Structure-of-arrays binary min-heap.

   The heap used to store one [{ prio; seq; value }] record per
   entry; at millions of scheduled events that is one short-lived
   allocation per push plus a pointer chase per comparison.  Keeping
   the fields in parallel arrays (an unboxed float array for the
   priorities) removes the per-entry record entirely: pushes and
   sift swaps touch flat arrays, and the only allocation left is the
   amortized doubling of the backing store.

   Slots at or beyond [len] are dead: they are only ever overwritten,
   never read as ['a].  [pop] blanks the vacated slot so popped
   values stay collectable. *)

type 'a t = {
  mutable prio : float array;
  mutable seq : int array;
  mutable value : 'a array;
  mutable len : int;
  mutable next_seq : int;
}

(* Filler for dead slots.  The immediate 0 is never read back as
   ['a]; all accesses in this module are polymorphic, so even a
   [float t] keeps a boxed (non-flat) value array and stays sound. *)
let blank : 'a. unit -> 'a = fun () -> Obj.magic 0

let create () = { prio = [||]; seq = [||]; value = [||]; len = 0; next_seq = 0 }

let is_empty t = t.len = 0
let size t = t.len

let less t i j =
  t.prio.(i) < t.prio.(j) || (t.prio.(i) = t.prio.(j) && t.seq.(i) < t.seq.(j))

let swap t i j =
  let p = t.prio.(i) in
  t.prio.(i) <- t.prio.(j);
  t.prio.(j) <- p;
  let s = t.seq.(i) in
  t.seq.(i) <- t.seq.(j);
  t.seq.(j) <- s;
  let v = t.value.(i) in
  t.value.(i) <- t.value.(j);
  t.value.(j) <- v

let grow t =
  let cap = max 16 (2 * Array.length t.prio) in
  let prio = Array.make cap 0.0 in
  let seq = Array.make cap 0 in
  let value = Array.make cap (blank ()) in
  Array.blit t.prio 0 prio 0 t.len;
  Array.blit t.seq 0 seq 0 t.len;
  Array.blit t.value 0 value 0 t.len;
  t.prio <- prio;
  t.seq <- seq;
  t.value <- value

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && less t l !smallest then smallest := l;
  if r < t.len && less t r !smallest then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t prio value =
  if t.len = Array.length t.prio then grow t;
  let i = t.len in
  t.prio.(i) <- prio;
  t.seq.(i) <- t.next_seq;
  t.value.(i) <- value;
  t.next_seq <- t.next_seq + 1;
  t.len <- t.len + 1;
  sift_up t i

let pop t =
  if t.len = 0 then None
  else begin
    let p = t.prio.(0) and v = t.value.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.prio.(0) <- t.prio.(t.len);
      t.seq.(0) <- t.seq.(t.len);
      t.value.(0) <- t.value.(t.len);
      sift_down t 0
    end;
    t.value.(t.len) <- blank ();
    Some (p, v)
  end

let peek t = if t.len = 0 then None else Some (t.prio.(0), t.value.(0))

let clear t =
  t.len <- 0;
  t.prio <- [||];
  t.seq <- [||];
  t.value <- [||]
