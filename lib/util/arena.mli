(** Dense-int id arena: growable flat array plus a free list.

    [alloc] hands out ids densely from 0 (reusing the smallest
    released id first), so ids double as array indices in every
    downstream structure.  [iter]/[fold] walk slots in ascending id
    order — the deterministic enumeration order the simulator's
    artifacts rely on, with no sort. *)

type 'a t

val create : ?cap:int -> unit -> 'a t

val alloc : 'a t -> 'a -> int
(** Store a value and return its id: the smallest released id if any,
    else the next fresh one. *)

val alloc_with : 'a t -> (int -> 'a) -> int
(** Like {!alloc} for values that carry their own id: the id is
    chosen first and passed to the constructor. *)

val release : 'a t -> int -> unit
(** Return [id] to the free list.  Raises [Invalid_argument] if the
    slot is already empty. *)

val get : 'a t -> int -> 'a option
val find : 'a t -> int -> 'a
(** Raises [Not_found] on an empty or out-of-range slot. *)

val mem : 'a t -> int -> bool

val length : 'a t -> int
(** High-water mark: one past the largest id ever allocated. *)

val live : 'a t -> int
(** Number of occupied slots — maintained, O(1). *)

val iter : (int -> 'a -> unit) -> 'a t -> unit
(** Ascending id order. *)

val fold : (int -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b
(** Ascending id order. *)
