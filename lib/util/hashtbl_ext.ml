(* Deterministic views of hash tables.

   [Hashtbl.fold]/[Hashtbl.iter] enumerate buckets in an order that
   depends on insertion history and the hash function, so any result
   that escapes the fold must be sorted before it can feed a
   reproducible artifact (JSON exports, wire messages, seeded runs).
   These helpers package the fold-then-sort idiom with an explicit,
   monomorphic comparator so call sites never reach for the
   polymorphic [compare]. *)

let sorted_bindings ~cmp tbl =
  List.sort (fun (a, _) (b, _) -> cmp a b) (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let sorted_keys ~cmp tbl =
  List.sort cmp (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])

let sorted_iter ~cmp f tbl =
  List.iter (fun (k, v) -> f k v) (sorted_bindings ~cmp tbl)
