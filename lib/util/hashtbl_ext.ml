(* Deterministic views of hash tables.

   [Hashtbl.fold]/[Hashtbl.iter] enumerate buckets in an order that
   depends on insertion history and the hash function, so any result
   that escapes the fold must be sorted before it can feed a
   reproducible artifact (JSON exports, wire messages, seeded runs).
   These helpers package the fold-then-sort idiom with an explicit,
   monomorphic comparator so call sites never reach for the
   polymorphic [compare].

   [sorts_performed] counts every materialize-and-sort these helpers
   execute.  Hot paths that are supposed to run sort-free (telemetry
   gauge sampling, gossip fan-out, incremental sweeps) are pinned by
   regression tests that snapshot the counter around the operation.
   The counter is an [Atomic.t]: it is the one module-level global the
   library keeps (atum-lint S001 polices the rest), and the sort-bound
   tests must stay meaningful when sweeps fan out across domains. *)

let sorts = Atomic.make 0

let sorts_performed () = Atomic.get sorts

let sorted_bindings ~cmp tbl =
  Atomic.incr sorts;
  List.sort (fun (a, _) (b, _) -> cmp a b) (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let sorted_keys ~cmp tbl =
  Atomic.incr sorts;
  List.sort cmp (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])

let sorted_iter ~cmp f tbl =
  List.iter (fun (k, v) -> f k v) (sorted_bindings ~cmp tbl)
