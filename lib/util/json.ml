type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let float_to_string x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
  else begin
    let s = Printf.sprintf "%.12g" x in
    if float_of_string s = x then s else Printf.sprintf "%.17g" x
  end

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_buffer ?(pretty = true) buf t =
  let indent n = for _ = 1 to n do Buffer.add_string buf "  " done in
  let newline depth =
    if pretty then begin
      Buffer.add_char buf '\n';
      indent depth
    end
  in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float x ->
      if not (Float.is_finite x) then Buffer.add_string buf "null"
      else Buffer.add_string buf (float_to_string x)
    | String s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          newline (depth + 1);
          go (depth + 1) x)
        xs;
      newline depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          newline (depth + 1);
          escape_string buf k;
          Buffer.add_string buf (if pretty then ": " else ":");
          go (depth + 1) v)
        kvs;
      newline depth;
      Buffer.add_char buf '}'
  in
  go 0 t

let to_string ?pretty t =
  let buf = Buffer.create 1024 in
  to_buffer ?pretty buf t;
  Buffer.contents buf

let write_file ?pretty ~path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string ?pretty t);
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

(* Recursion bound for the parser: deeper nesting raises a typed
   [Parse_error] instead of blowing the OCaml stack.  512 is far above
   anything the writer emits and far below stack exhaustion. *)
let max_depth = 512

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' ->
        (if !pos >= n then fail "unterminated escape";
         let e = s.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'u' ->
           if !pos + 4 > n then fail "truncated \\u escape";
           let hex = String.sub s !pos 4 in
           pos := !pos + 4;
           let code =
             try int_of_string ("0x" ^ hex) with Failure _ -> fail "bad \\u escape"
           in
           (* Only the escapes our writer emits (< 0x20) plus plain
              BMP codepoints encoded as UTF-8. *)
           if code < 0x80 then Buffer.add_char buf (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
           else begin
             Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
             Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
         | _ -> fail "unknown escape");
        loop ()
      | c -> Buffer.add_char buf c; loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do advance () done;
    let tok = String.sub s start (!pos - start) in
    let is_float = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok in
    if is_float then
      match float_of_string_opt tok with
      | Some x -> Float x
      | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> fail "bad number"
  in
  let rec parse_value depth =
    if depth > max_depth then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); List [] end
      else begin
        let items = ref [ parse_value (depth + 1) ] in
        let rec loop () =
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); items := parse_value (depth + 1) :: !items; loop ()
          | Some ']' -> advance ()
          | _ -> fail "expected , or ]"
        in
        loop ();
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let seen = Hashtbl.create 8 in
        let parse_member () =
          skip_ws ();
          let k = parse_string () in
          if Hashtbl.mem seen k then fail (Printf.sprintf "duplicate key %S" k);
          Hashtbl.replace seen k ();
          skip_ws ();
          expect ':';
          (k, parse_value (depth + 1))
        in
        let items = ref [ parse_member () ] in
        let rec loop () =
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); items := parse_member () :: !items; loop ()
          | Some '}' -> advance ()
          | _ -> fail "expected , or }"
        in
        loop ();
        Obj (List.rev !items)
      end
    | Some _ -> parse_number ()
  in
  try
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    Ok v
  with Parse_error msg -> Error msg

let of_string_exn s =
  match of_string s with
  | Ok v -> v
  | Error msg -> invalid_arg ("Json.of_string_exn: " ^ msg)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | String x, String y -> String.equal x y
  | List xs, List ys ->
    List.length xs = List.length ys && List.for_all2 equal xs ys
  | Obj xs, Obj ys ->
    List.length xs = List.length ys
    && List.for_all2 (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2) xs ys
  | _ -> false
