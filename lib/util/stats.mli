(** Descriptive statistics and the Pearson chi-squared goodness-of-fit
    test used by the random-walk configuration guideline (Fig. 4). *)

val mean : float list -> float

val stddev : float list -> float
(** Sample standard deviation (n-1 denominator); 0 for fewer than two
    samples. *)

val percentile : float list -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], linear interpolation.
    Raises [Invalid_argument] on the empty list. *)

val median : float list -> float

val cdf : float list -> (float * float) list
(** [cdf xs] returns the empirical CDF as (value, fraction <= value)
    points, sorted by value. *)

val histogram : buckets:int -> lo:float -> hi:float -> float list -> int array
(** Counts per equal-width bucket; out-of-range samples clamp to the
    first/last bucket.  Raises [Invalid_argument] when [buckets <= 0]
    or [hi <= lo] (an empty range would silently pile every sample
    into bucket 0). *)

val gammln : float -> float
(** Log of the Gamma function (Lanczos approximation). *)

val regularized_gamma_q : float -> float -> float
(** [regularized_gamma_q a x] = Q(a, x), the upper regularized
    incomplete gamma function. *)

val chi2_cdf_complement : df:int -> float -> float
(** [chi2_cdf_complement ~df x] is the p-value of a chi-squared
    statistic [x] with [df] degrees of freedom. *)

val chi2_statistic : observed:int array -> expected:float array -> float

val chi2_uniform_test : confidence:float -> int array -> bool
(** [chi2_uniform_test ~confidence counts] tests whether [counts] is
    consistent with a uniform distribution over the cells.  Returns
    [true] when the test {e cannot} reject uniformity at the given
    confidence level (e.g. 0.99), which is the acceptance criterion of
    the paper's configuration guideline. *)
