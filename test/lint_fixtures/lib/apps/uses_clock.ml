(* Caller of the sanctioned opt-in clock wrapper.  Unsuppressed, this
   is E001; with the wrapper's D001 allowlisted it must stay silent. *)

let stamp () = Atum_sim.Opt_clock.now ()
