(* Negative fixture for atum-lint (never compiled, only parsed).  The
   fixture root makes this file lib/apps/bad_app.ml, so the lib/-wide
   rules apply. *)

(* D001: wall clock in lib/. *)
let now () = Unix.gettimeofday ()

(* D001: global entropy in lib/. *)
let jitter () = Random.float 1.0

(* D001: reseeding the global PRNG from the OS. *)
let reseed () = Random.self_init ()

(* D002: Hashtbl traversal whose result is not sorted. *)
let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []

(* F001: float-literal equality. *)
let is_unit x = x = 1.0

(* M001: ignoring a Result-returning checker. *)
let probe st = ignore (check_consistency st)
