(* Negative fixture: entropy wrapped two-plus calls deep and across a
   module boundary.  The syntactic D001 pass cannot see anything here;
   only the call-graph propagation (E001) can. *)

(* E001: two calls deep, via Atum_sim.Entropy_core.wrapped. *)
let delay () = Atum_sim.Entropy_core.wrapped ()

(* E001: three calls deep. *)
let send_with_jitter x = x +. delay ()
