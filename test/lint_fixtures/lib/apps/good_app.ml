(* Positive fixture for atum-lint: nothing here may produce a finding.
   Shows the sanctioned spellings of the patterns the bad fixtures
   trip. *)

type wire = Preprepare of int | Prepare of int | Commit of int

let keys tbl = Atum_util.Hashtbl_ext.sorted_keys ~cmp:String.compare tbl

let piped tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort String.compare

let is_unit x = Float.equal x 1.0

let probe st = match check_consistency st with Ok () -> true | Error _ -> false

let handle m = match m with Preprepare n -> n | Prepare _ -> 0 | Commit _ -> 0
