(* Negative fixture for the domain-safety rules (never compiled, only
   parsed).  Module-level mutable state is S001; writing it from a
   function reachable out of an Engine task closure is S002. *)

(* S001: toplevel ref. *)
let hits = ref 0

(* S001: toplevel shared table. *)
let cache = Hashtbl.create 16

(* S002 once [start] schedules it: writes the module-level [hits]. *)
let bump () = incr hits

(* Writer of [cache], but never task-reachable: no S002. *)
let record k v = Hashtbl.replace cache k v

let start engine = Engine.every engine ~period:1.0 (fun () -> bump (); true)
