(* Positive fixture for the domain-safety rules: nothing here may
   produce a finding.  Atomics are exempt (inventoried, not flagged)
   and function-local mutable state is per-call by construction. *)

let total = Atomic.make 0

let fresh_counter () = ref 0

let count xs =
  let c = ref 0 in
  List.iter (fun _ -> incr c) xs;
  !c

let tick () = Atomic.incr total

let start engine = Engine.every engine ~period:1.0 (fun () -> tick (); true)
