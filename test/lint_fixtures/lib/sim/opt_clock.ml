(* Fixture for the sanctioned-wrapper story: a Prof_clock-style opt-in
   wall clock.  The D001 below sits at a pinned line; when the test
   allowlists it, the suppression must also silence E001 in every
   caller — an allowlisted source sanctions its wrappers. *)

let enabled = false

let now () = if enabled then Unix.gettimeofday () else 0.0
