(* Negative fixture for the effect-propagation pass (never compiled,
   only parsed).  The direct entropy read below is D001; [wrapped]
   hides it one call deep and must be flagged E001. *)

(* D001: direct OS entropy. *)
let raw_jitter () = Random.float 1.0

(* E001: one call away from the entropy read. *)
let wrapped () = 0.5 +. raw_jitter ()
