(* Negative fixture for atum-lint (never compiled, only parsed): every
   construct below must trip a rule when scanned with the fixture root,
   because this file sits under lib/smr/. *)

type wire = Preprepare of int | Prepare of int | Commit of int

(* D003: polymorphic compare in a protocol directory. *)
let sort_members ms = List.sort compare ms

(* D003: structural equality with a payload-carrying constructor. *)
let same_req a b = a = Some b

(* W001: catch-all arm in a match over wire-message constructors. *)
let handle m = match m with Preprepare n -> n | _ -> 0
