(* The observability layer end to end: leveled/sampled tracing, the
   flight recorder, the Perfetto exporter and the perf-regression
   differ.  The common thread is determinism — sampling decisions,
   postmortem dumps and timeline exports must all be byte-stable
   across same-seed runs, because CI diffs them. *)

module Json = Atum_util.Json
module Trace = Atum_sim.Trace
module Flight = Atum_sim.Flight
module Telemetry = Atum_sim.Telemetry
module Atum = Atum_core.Atum
module W = Atum_workload

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Trace levels and sampling                                           *)
(* ------------------------------------------------------------------ *)

let test_trace_levels () =
  Alcotest.(check bool) "net.* defaults Sampled" true
    (Trace.default_level "net.send" = Trace.Sampled);
  Alcotest.(check bool) "bcast.hop defaults Sampled" true
    (Trace.default_level "bcast.hop" = Trace.Sampled);
  Alcotest.(check bool) "debug.* defaults Debug" true
    (Trace.default_level "debug.sweep" = Trace.Debug);
  Alcotest.(check bool) "sagas default Always" true
    (Trace.default_level "join.begin" = Trace.Always);
  Alcotest.(check bool) "violations default Always" true
    (Trace.default_level "monitor.violation.vg_oversize" = Trace.Always);
  let t = Trace.create ~enabled:true () in
  Trace.set_level t ~kind:"join.begin" Trace.Debug;
  Alcotest.(check bool) "override wins" true (Trace.level_of t "join.begin" = Trace.Debug);
  Trace.emit t ~time:1.0 ~kind:"join.begin" ();
  Alcotest.(check int) "debug kind off by default" 0 (Trace.length t);
  Alcotest.(check int) "suppression counted" 1 (Trace.sampled_out t);
  Trace.set_debug t true;
  Trace.emit t ~time:2.0 ~kind:"join.begin" ();
  Alcotest.(check int) "debug kind on with set_debug" 1 (Trace.length t);
  Alcotest.(check bool) "lossy once anything suppressed" true (Trace.lossy t)

let test_trace_sampling_deterministic () =
  (* Same emission sequence, same rate: the admitted subset must be
     identical — and an admitted bid keeps every one of its hops. *)
  let run () =
    let t = Trace.create ~enabled:true () in
    Trace.set_sample_rate t 0.25;
    for bid = 0 to 199 do
      for hop = 0 to 4 do
        Trace.emit t ~time:(float_of_int (bid + hop)) ~kind:"bcast.hop" ~node:hop ~bid ()
      done
    done;
    t
  in
  let t1 = run () and t2 = run () in
  let admitted t =
    Trace.fold t ~init:[] ~f:(fun acc e -> (e.Trace.bid, e.Trace.node) :: acc)
  in
  Alcotest.(check bool) "admitted subsets identical" true (admitted t1 = admitted t2);
  Alcotest.(check int) "exact counters agree" (Trace.sampled_out t1) (Trace.sampled_out t2);
  Alcotest.(check int) "admitted + sampled_out = emitted" 1000
    (Trace.total t1 + Trace.sampled_out t1);
  Alcotest.(check bool) "some admitted" true (Trace.total t1 > 0);
  Alcotest.(check bool) "some suppressed" true (Trace.sampled_out t1 > 0);
  (* whole-lineage property: each bid is all-in or all-out *)
  let by_bid = Hashtbl.create 64 in
  Trace.iter t1 (fun e ->
      Hashtbl.replace by_bid e.Trace.bid
        (1 + Option.value ~default:0 (Hashtbl.find_opt by_bid e.Trace.bid)));
  Hashtbl.iter
    (fun bid n ->
      Alcotest.(check int) (Printf.sprintf "bid %d kept whole lineage" bid) 5 n)
    by_bid;
  (* rate 1.0 admits everything; counters exposed per kind *)
  let t3 = Trace.create ~enabled:true () in
  Trace.emit t3 ~time:0.0 ~kind:"bcast.hop" ~bid:7 ();
  Alcotest.(check int) "rate 1.0 admits all" 1 (Trace.length t3);
  Alcotest.(check (list (pair string int))) "admitted_by_kind" [ ("bcast.hop", 1) ]
    (Trace.admitted_by_kind t3);
  Alcotest.(check bool) "bad rate rejected" true
    (try
       Trace.set_sample_rate t3 1.5;
       false
     with Invalid_argument _ -> true)

let test_trace_last_events () =
  let t = Trace.create ~capacity:8 ~enabled:true () in
  for i = 0 to 19 do
    Trace.emit t ~time:(float_of_int i) ~kind:"tick" ~node:i ()
  done;
  let last = Trace.last_events t 3 in
  Alcotest.(check (list int)) "newest 3, oldest first" [ 17; 18; 19 ]
    (List.map (fun e -> e.Trace.node) last);
  Alcotest.(check int) "window larger than ring clamps" 8
    (List.length (Trace.last_events t 100));
  Alcotest.(check bool) "ring wrap makes it lossy" true (Trace.lossy t)

(* ------------------------------------------------------------------ *)
(* Telemetry gauge order (satellite regression)                        *)
(* ------------------------------------------------------------------ *)

let test_gauge_names_order () =
  (* gauge_names must report the export order both before AND after
     start — pre-start registrations sorted by name, late ones
     appended.  It used to sort only at start time, so the pre-start
     answer disagreed with the export. *)
  let eng = Atum_sim.Engine.create () in
  let tel = Telemetry.create eng in
  Telemetry.register tel "zeta" (fun () -> 0.0);
  Telemetry.register tel "alpha" (fun () -> 0.0);
  Telemetry.register tel "mid" (fun () -> 0.0);
  Alcotest.(check (list string)) "sorted before start" [ "alpha"; "mid"; "zeta" ]
    (Telemetry.gauge_names tel);
  Telemetry.start tel;
  Alcotest.(check (list string)) "unchanged by start" [ "alpha"; "mid"; "zeta" ]
    (Telemetry.gauge_names tel);
  Telemetry.register tel "aaa_late" (fun () -> 0.0);
  Alcotest.(check (list string)) "late gauge appended, not re-sorted"
    [ "alpha"; "mid"; "zeta"; "aaa_late" ]
    (Telemetry.gauge_names tel)

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

let test_flight_trip_and_snapshot () =
  let eng = Atum_sim.Engine.create () in
  let trace = Trace.create ~enabled:true () in
  let metrics = Atum_sim.Metrics.create () in
  let fl = Flight.create ~window:4 ~engine:eng ~trace ~metrics () in
  Alcotest.(check bool) "untripped initially" true (Flight.tripped fl = None);
  for i = 0 to 9 do
    Trace.emit trace ~time:(float_of_int i) ~kind:"tick" ~node:i ()
  done;
  Flight.trip fl ~reason:"vg_oversize" ~detail:"21 members" ~vgroup:3 ();
  Flight.trip fl ~reason:"later" ();
  (match Flight.tripped fl with
  | None -> Alcotest.fail "trip not recorded"
  | Some tr ->
    Alcotest.(check string) "first trip wins" "vg_oversize" tr.Flight.reason;
    Alcotest.(check int) "vgroup captured" 3 tr.Flight.vgroup);
  let doc = Flight.snapshot_json fl in
  (match Json.member "trace_last" doc with
  | Some tl -> (
    Alcotest.(check bool) "window recorded" true
      (Json.member "window" tl = Some (Json.Int 4));
    Alcotest.(check bool) "kept clamps to window" true
      (Json.member "kept" tl = Some (Json.Int 4));
    match Json.member "events" tl with
    | Some (Json.List evs) -> Alcotest.(check int) "last-K events only" 4 (List.length evs)
    | _ -> Alcotest.fail "trace_last.events missing")
  | None -> Alcotest.fail "trace_last section missing");
  Alcotest.(check bool) "no cmdline provenance (determinism)" false
    (contains "cmdline" (Json.to_string doc))

let test_flight_armed_autodump () =
  (* An armed recorder (Builder.grow ~flight_dir) must write the
     postmortem the moment it trips — capturing state at the failure,
     not at process exit. *)
  let dir = "flight_autodump" in
  let b =
    W.Builder.grow ~trace:true ~monitor:true ~flight_dir:dir ~n:16 ~seed:9 ()
  in
  let fl = match b.W.Builder.flight with
    | Some fl -> fl
    | None -> Alcotest.fail "grow ~flight_dir must arm a recorder"
  in
  Alcotest.(check int) "no dump before the trip" 0 (Flight.dumps fl);
  Flight.trip fl ~reason:"test_kind" ~detail:"forced by test" ~vgroup:1 ();
  Alcotest.(check int) "trip on an armed recorder dumps" 1 (Flight.dumps fl);
  let path = Filename.concat dir Flight.filename in
  Alcotest.(check bool) "dump at armed dir" true (Sys.file_exists path);
  Alcotest.(check bool) "last_path agrees" true (Flight.last_path fl = Some path);
  match Json.of_string (read_file path) with
  | Error e -> Alcotest.failf "postmortem is not valid JSON: %s" e
  | Ok j -> (
    Alcotest.(check bool) "artifact tagged" true
      (Json.member "artifact" j = Some (Json.String "postmortem"));
    Alcotest.(check bool) "schema versioned" true
      (Json.member "schema_version" j = Some (Json.Int Flight.schema_version));
    match Json.member "trigger" j with
    | Some trg ->
      Alcotest.(check bool) "trigger reason" true
        (Json.member "reason" trg = Some (Json.String "test_kind"))
    | None -> Alcotest.fail "trigger missing")

let test_flight_snapshot_deterministic () =
  (* Two same-seed chaos runs, each tripped by its own violations:
     byte-identical snapshots. *)
  let run () =
    let b = W.Builder.grow ~trace:true ~n:24 ~seed:5 () in
    let r = W.Resilience.run ~messages_per_phase:4 ~attackers:2 b ~seed:5 () in
    ignore r;
    let atum = b.W.Builder.atum in
    let fl =
      Flight.create ~engine:(Atum.engine atum) ~trace:(Atum.trace atum)
        ~metrics:(Atum.metrics atum) ()
    in
    (match Atum.telemetry atum with
    | Some tel -> Flight.set_telemetry fl tel
    | None -> ());
    Flight.trip fl ~reason:"test" ();
    Json.to_string (Flight.snapshot_json fl)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "snapshot non-trivial" true (String.length a > 500);
  Alcotest.(check bool) "snapshot byte-identical" true (String.equal a b)

(* ------------------------------------------------------------------ *)
(* Analyze: sampling awareness                                         *)
(* ------------------------------------------------------------------ *)

let test_analyze_sampling_section () =
  let b = W.Builder.grow ~trace:true ~sample_rate:0.25 ~n:24 ~seed:7 () in
  ignore (W.Latency_exp.run b ~messages:6 ~gap:3.0 ~seed:7);
  let atum = b.W.Builder.atum in
  let a = W.Analyze.of_trace (Atum.trace atum) ~metrics:(Atum.metrics atum) in
  Alcotest.(check bool) "rate surfaced" true
    (Float.abs (a.W.Analyze.sample_rate -. 0.25) < 1e-9);
  Alcotest.(check bool) "suppressed events counted" true
    (a.W.Analyze.sampled_out_total > 0);
  Alcotest.(check bool) "flagged truncated" true a.W.Analyze.trace_truncated;
  let j = Json.to_string (W.Analyze.to_json a) in
  Alcotest.(check bool) "sampling section exported" true (contains "\"sampling\"" j);
  Alcotest.(check bool) "estimates flag exported" true (contains "\"estimates\"" j);
  let rendered = Format.asprintf "%a" W.Analyze.pp a in
  Alcotest.(check bool) "pp warns about lossy trace" true (contains "estimates" rendered);
  (* reconstructing from a written artifact keeps the counters *)
  let artifact = Json.Obj [ ("trace", Atum_sim.Trace.to_json (Atum.trace atum)) ] in
  match W.Analyze.of_artifact artifact with
  | Error e -> Alcotest.failf "artifact round-trip failed: %s" e
  | Ok a2 ->
    Alcotest.(check int) "sampled_out survives round-trip" a.W.Analyze.sampled_out_total
      a2.W.Analyze.sampled_out_total;
    Alcotest.(check bool) "truncated flag survives" true a2.W.Analyze.trace_truncated

(* ------------------------------------------------------------------ *)
(* Perfetto export                                                     *)
(* ------------------------------------------------------------------ *)

let structurally_valid_trace_events doc =
  match Json.member "traceEvents" doc with
  | Some (Json.List evs) ->
    List.iter
      (fun ev ->
        (match Json.member "name" ev with
        | Some (Json.String _) -> ()
        | _ -> Alcotest.fail "event missing name");
        (match Json.member "ph" ev with
        | Some (Json.String ph) ->
          Alcotest.(check bool) ("known phase " ^ ph) true
            (List.mem ph [ "X"; "i"; "M" ]);
          if ph <> "M" then (
            match Json.member "ts" ev with
            | Some (Json.Int ts) ->
              Alcotest.(check bool) "ts non-negative" true (ts >= 0)
            | _ -> Alcotest.fail "timed event missing integer ts");
          if ph = "X" then (
            match Json.member "dur" ev with
            | Some (Json.Int d) -> Alcotest.(check bool) "dur non-negative" true (d >= 0)
            | _ -> Alcotest.fail "complete event missing integer dur")
        | _ -> Alcotest.fail "event missing ph");
        match Json.member "pid" ev with
        | Some (Json.Int _) -> ()
        | _ -> Alcotest.fail "event missing pid")
      evs;
    List.length evs
  | _ -> Alcotest.fail "traceEvents missing"

let test_perfetto_export () =
  let b = W.Builder.grow ~trace:true ~n:24 ~seed:5 () in
  ignore (W.Resilience.run ~messages_per_phase:4 ~attackers:2 b ~seed:5 ());
  let atum = b.W.Builder.atum in
  let doc =
    W.Perfetto.of_events
      (Trace.events (Atum.trace atum))
      ~profile:(Atum_sim.Engine.profile_json (Atum.engine atum))
  in
  let n = structurally_valid_trace_events doc in
  Alcotest.(check bool) (Printf.sprintf "%d events, expected many" n) true (n > 100);
  let s = Json.to_string doc in
  Alcotest.(check bool) "has saga slices" true (contains "\"join\"" s);
  Alcotest.(check bool) "has fault track" true (contains "\"faults\"" s);
  Alcotest.(check bool) "has engine track" true (contains "\"engine\"" s);
  (* determinism: rebuilding from the same artifact is byte-identical *)
  let artifact =
    Json.Obj
      [
        ("trace", Trace.to_json (Atum.trace atum));
        ("profile", Atum_sim.Engine.profile_json (Atum.engine atum));
      ]
  in
  (match W.Perfetto.of_artifact artifact with
  | Error e -> Alcotest.failf "of_artifact failed: %s" e
  | Ok doc2 ->
    Alcotest.(check bool) "of_artifact matches of_events" true
      (String.equal s (Json.to_string doc2)));
  Alcotest.(check string) "output naming" "ATUM_broadcast.trace.json"
    (W.Perfetto.output_name "runs/ATUM_broadcast.json");
  match W.Perfetto.of_artifact (Json.Obj [ ("cmd", Json.String "x") ]) with
  | Ok _ -> Alcotest.fail "traceless artifact must be rejected"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Compare                                                             *)
(* ------------------------------------------------------------------ *)

let obj_of_string s =
  match Json.of_string s with Ok j -> j | Error e -> Alcotest.failf "bad json: %s" e

let test_compare_matrix () =
  let old_json =
    obj_of_string
      {|{"rows": [{"label": "a", "events_per_sec": 100.0, "p99_s": 0.5}],
         "wall_s": 3.0, "legacy_metric": 7.0}|}
  in
  let case name new_s ~regressed ~improved check =
    let r = W.Compare.run ~old_json ~new_json:(obj_of_string new_s) () in
    Alcotest.(check int) (name ^ ": regressed") regressed r.W.Compare.regressed;
    Alcotest.(check int) (name ^ ": improved") improved r.W.Compare.improved;
    check r
  in
  (* within threshold: 2% dip on a 10% gate *)
  case "within"
    {|{"rows": [{"label": "a", "events_per_sec": 98.0, "p99_s": 0.51}],
       "wall_s": 30.0, "legacy_metric": 7.0}|}
    ~regressed:0 ~improved:0
    (fun r -> Alcotest.(check bool) "no gate failures" true (W.Compare.regressions r = []));
  (* improvement: throughput up, latency down *)
  case "improved"
    {|{"rows": [{"label": "a", "events_per_sec": 150.0, "p99_s": 0.3}],
       "wall_s": 3.0, "legacy_metric": 7.0}|}
    ~regressed:0 ~improved:2 (fun _ -> ());
  (* regression in both directions *)
  case "regressed"
    {|{"rows": [{"label": "a", "events_per_sec": 50.0, "p99_s": 0.9}],
       "wall_s": 3.0, "legacy_metric": 7.0}|}
    ~regressed:2 ~improved:0
    (fun r ->
      let keys = List.map (fun d -> d.W.Compare.key) (W.Compare.regressions r) in
      Alcotest.(check bool) "throughput drop flagged" true
        (List.mem "rows[a].events_per_sec" keys);
      Alcotest.(check bool) "latency rise flagged" true (List.mem "rows[a].p99_s" keys));
  (* a metric that vanished is a gate failure *)
  case "missing"
    {|{"rows": [{"label": "a", "events_per_sec": 100.0, "p99_s": 0.5}], "wall_s": 3.0}|}
    ~regressed:1 ~improved:0
    (fun r ->
      match W.Compare.regressions r with
      | [ d ] ->
        Alcotest.(check string) "missing key" "legacy_metric" d.W.Compare.key;
        Alcotest.(check bool) "status Missing" true (d.W.Compare.status = W.Compare.Missing)
      | ds -> Alcotest.failf "expected one missing delta, got %d" (List.length ds));
  (* wall time is informational no matter how much it moves *)
  case "wall ignored"
    {|{"rows": [{"label": "a", "events_per_sec": 100.0, "p99_s": 0.5}],
       "wall_s": 900.0, "legacy_metric": 7.0}|}
    ~regressed:0 ~improved:0 (fun _ -> ());
  Alcotest.(check bool) "wall keys Info" true
    (W.Compare.direction_of_key "rows[a].wall_s" = W.Compare.Info);
  Alcotest.(check bool) "throughput higher-better" true
    (W.Compare.direction_of_key "rows[a].events_per_sec" = W.Compare.Higher_better);
  Alcotest.(check bool) "durations lower-better" true
    (W.Compare.direction_of_key "rows[a].p99_s" = W.Compare.Lower_better)

(* ------------------------------------------------------------------ *)
(* CLI end-to-end: chaos --dump-on-violation byte identity             *)
(* ------------------------------------------------------------------ *)

let test_cli_postmortem_byte_identity () =
  let exe =
    Filename.concat
      (Filename.dirname (Filename.dirname Sys.executable_name))
      "bin/atum_cli.exe"
  in
  if not (Sys.file_exists exe) then
    Alcotest.fail (Printf.sprintf "cli executable missing at %s" exe);
  let sh cmd = Alcotest.(check int) ("exit status of " ^ cmd) 0 (Sys.command cmd) in
  let run dir =
    sh
      (Printf.sprintf
         "%s chaos -n 48 --seed 11 --json --out-dir %s --dump-on-violation > /dev/null"
         (Filename.quote exe) (Filename.quote dir));
    let path = Filename.concat dir "ATUM_postmortem.json" in
    Alcotest.(check bool) ("postmortem written in " ^ dir) true (Sys.file_exists path);
    read_file path
  in
  let a = run "cli_pm_a" and b = run "cli_pm_b" in
  Alcotest.(check bool) "postmortem non-trivial" true (String.length a > 500);
  Alcotest.(check bool) "postmortem byte-identical across runs" true (String.equal a b);
  (* and it feeds straight into export-trace *)
  sh
    (Printf.sprintf "%s export-trace %s --out-dir cli_pm_a > /dev/null"
       (Filename.quote exe)
       (Filename.quote (Filename.concat "cli_pm_a" "ATUM_postmortem.json")));
  match Json.of_string (read_file (Filename.concat "cli_pm_a" "ATUM_postmortem.trace.json")) with
  | Error e -> Alcotest.failf "exported timeline is not valid JSON: %s" e
  | Ok doc ->
    let n = structurally_valid_trace_events doc in
    Alcotest.(check bool) (Printf.sprintf "%d timeline events" n) true (n > 0)

let test_cli_compare_gate () =
  let exe =
    Filename.concat
      (Filename.dirname (Filename.dirname Sys.executable_name))
      "bin/atum_cli.exe"
  in
  if not (Sys.file_exists exe) then
    Alcotest.fail (Printf.sprintf "cli executable missing at %s" exe);
  let write path s =
    let oc = open_out path in
    output_string oc s;
    close_out oc
  in
  write "cmp_old.json" {|{"rows": [{"label": "a", "events_per_sec": 100.0}]}|};
  write "cmp_good.json" {|{"rows": [{"label": "a", "events_per_sec": 97.0}]}|};
  write "cmp_bad.json" {|{"rows": [{"label": "a", "events_per_sec": 10.0}]}|};
  let run args =
    Sys.command (Printf.sprintf "%s compare %s > /dev/null" (Filename.quote exe) args)
  in
  Alcotest.(check int) "clean compare exits 0" 0 (run "cmp_old.json cmp_good.json");
  Alcotest.(check int) "regression exits 1" 1 (run "cmp_old.json cmp_bad.json");
  Alcotest.(check int) "tight threshold flags the 3% dip" 1
    (run "cmp_old.json cmp_good.json --threshold 2");
  (* cmdliner reports CLI usage errors (unreadable positional arg) as 124 *)
  Alcotest.(check int) "missing file is a usage error" 124 (run "cmp_old.json nope.json")

let () =
  Alcotest.run "observability"
    [
      ( "trace",
        [
          Alcotest.test_case "levels" `Quick test_trace_levels;
          Alcotest.test_case "sampling deterministic" `Quick
            test_trace_sampling_deterministic;
          Alcotest.test_case "last_events window" `Quick test_trace_last_events;
        ] );
      ( "telemetry",
        [ Alcotest.test_case "gauge_names order" `Quick test_gauge_names_order ] );
      ( "flight",
        [
          Alcotest.test_case "trip + snapshot" `Quick test_flight_trip_and_snapshot;
          Alcotest.test_case "armed autodump" `Quick test_flight_armed_autodump;
          Alcotest.test_case "snapshot deterministic" `Slow
            test_flight_snapshot_deterministic;
        ] );
      ( "analyze",
        [ Alcotest.test_case "sampling section" `Quick test_analyze_sampling_section ] );
      ( "perfetto",
        [ Alcotest.test_case "structural validity" `Slow test_perfetto_export ] );
      ( "compare",
        [ Alcotest.test_case "classification matrix" `Quick test_compare_matrix ] );
      ( "cli",
        [
          Alcotest.test_case "postmortem byte identity" `Slow
            test_cli_postmortem_byte_identity;
          Alcotest.test_case "compare gate" `Slow test_cli_compare_gate;
        ] );
    ]
