(* The chaos layer: scripted fault injection (Atum_sim.Fault), active
   Byzantine adversaries (System.byz_strategy), and recovery
   verification (Atum_workload.Resilience).

   The common shape: violations and delivery dips are EXPECTED while a
   fault is active — what these tests assert is that the monitor sees
   them while they last, that they stop accruing once the network
   heals, and that the whole pipeline stays deterministic. *)

module Atum = Atum_core.Atum
module System = Atum_core.System
module Monitor = Atum_core.Monitor
module Fault = Atum_sim.Fault
module Network = Atum_sim.Network
module Metrics = Atum_sim.Metrics
module Json = Atum_util.Json
module W = Atum_workload

let counter atum name = Metrics.counter (Atum.metrics atum) name

(* A settled deployment, no monitor (tests attach their own). *)
let build ?(n = 24) ?(seed = 11) ?(trace = false) () =
  W.Builder.grow ~trace ~n ~seed ()

(* ------------------------------------------------------------------ *)
(* Monitor under partition                                             *)
(* ------------------------------------------------------------------ *)

let test_monitor_sees_partition () =
  let built = build () in
  let atum = built.W.Builder.atum in
  let sys = Atum.system atum in
  let net = System.network sys in
  let mon = Monitor.attach sys in
  Alcotest.(check int) "clean before the fault" 0 (Monitor.sweep mon);
  (* Split one vgroup's replicas across the partition boundary. *)
  let vid = List.hd (System.vgroup_ids sys) in
  let vg = System.vgroup sys vid in
  (match vg.System.members with
  | m :: _ -> Network.set_partition net m 1
  | [] -> Alcotest.fail "empty vgroup");
  Alcotest.(check bool) "vg_partitioned during the fault" true (Monitor.sweep mon > 0);
  Alcotest.(check bool) "violation kind recorded" true
    (List.mem_assoc "vg_partitioned" (Monitor.violations mon));
  Network.heal net;
  Alcotest.(check int) "clean after heal" 0 (Monitor.sweep mon)

let test_monitor_sees_crash () =
  let built = build () in
  let atum = built.W.Builder.atum in
  let sys = Atum.system atum in
  let mon = Monitor.attach sys in
  let victim =
    match W.Builder.correct_members built with
    | m :: _ when m <> built.W.Builder.first -> m
    | _ :: m :: _ -> m
    | _ -> Alcotest.fail "no victim available"
  in
  System.crash sys victim;
  Alcotest.(check bool) "vg_crashed during the fault" true (Monitor.sweep mon > 0);
  Alcotest.(check bool) "violation kind recorded" true
    (List.mem_assoc "vg_crashed" (Monitor.violations mon));
  System.recover sys victim;
  Alcotest.(check int) "clean after recover" 0 (Monitor.sweep mon);
  Alcotest.(check int) "recovery counted" 1 (counter atum "node.recovered")

(* ------------------------------------------------------------------ *)
(* Crash / recover delivery accounting                                 *)
(* ------------------------------------------------------------------ *)

let test_crash_recover_delivery () =
  let built = build () in
  let atum = built.W.Builder.atum in
  let sys = Atum.system atum in
  Atum.on_forward atum System.flood_forward;
  let victim =
    match List.filter (fun m -> m <> built.W.Builder.first) (W.Builder.correct_members built) with
    | m :: _ -> m
    | [] -> Alcotest.fail "no victim available"
  in
  System.crash sys victim;
  (match W.Builder.correct_members built with
  | from :: _ -> ignore (Atum.broadcast atum ~from "during-crash")
  | [] -> ());
  Atum.run_for atum 60.0;
  Alcotest.(check bool) "traffic to the crashed node dropped" true
    (counter atum "net.drop.crash" > 0);
  Alcotest.(check int) "nothing post-heal yet" 0 (counter atum "net.deliver.post_heal");
  System.recover sys victim;
  (match W.Builder.correct_members built with
  | from :: _ -> ignore (Atum.broadcast atum ~from "after-recover")
  | [] -> ());
  Atum.run_for atum 60.0;
  Alcotest.(check bool) "post-heal deliveries counted" true
    (counter atum "net.deliver.post_heal" > 0)

(* ------------------------------------------------------------------ *)
(* Fault schedules                                                     *)
(* ------------------------------------------------------------------ *)

let test_fault_schedule_validation () =
  let bad schedule =
    try
      Fault.validate schedule;
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "empty partition group" true
    (bad [ { Fault.after = 0.0; step = Fault.Partition [ [] ] } ]);
  Alcotest.(check bool) "empty crash list" true
    (bad [ { Fault.after = 0.0; step = Fault.Crash [] } ]);
  Alcotest.(check bool) "loss p out of range" true
    (bad [ { Fault.after = 0.0; step = Fault.Loss_burst { p = 1.5; duration = 1.0 } } ]);
  Alcotest.(check bool) "non-positive duration" true
    (bad [ { Fault.after = 0.0; step = Fault.Latency_spike { factor = 2.0; duration = 0.0 } } ]);
  Alcotest.(check bool) "negative offset" true
    (bad [ { Fault.after = -1.0; step = Fault.Heal } ]);
  Alcotest.(check bool) "empty restart list" true
    (bad [ { Fault.after = 0.0; step = Fault.Restart { nodes = []; down = 5.0 } } ]);
  Alcotest.(check bool) "non-positive restart down" true
    (bad [ { Fault.after = 0.0; step = Fault.Restart { nodes = [ 1 ]; down = 0.0 } } ]);
  (* The ordering bug this validate pass fixes: inverse steps with
     nothing to undo used to pass silently and then do nothing. *)
  Alcotest.(check bool) "recover with no preceding crash" true
    (bad [ { Fault.after = 1.0; step = Fault.Recover [ 3 ] } ]);
  Alcotest.(check bool) "heal with no preceding partition" true
    (bad [ { Fault.after = 1.0; step = Fault.Heal } ]);
  Alcotest.(check bool) "recover precedes its crash in time" true
    (bad
       [
         { Fault.after = 5.0; step = Fault.Recover [ 3 ] };
         { Fault.after = 9.0; step = Fault.Crash [ 3 ] };
       ]);
  (* Restart auto-revives its nodes, so it does not license a Recover. *)
  Alcotest.(check bool) "recover of a restart victim" true
    (bad
       [
         { Fault.after = 1.0; step = Fault.Restart { nodes = [ 3 ]; down = 2.0 } };
         { Fault.after = 9.0; step = Fault.Recover [ 3 ] };
       ]);
  let ok =
    [
      { Fault.after = 1.0; step = Fault.Partition [ [ 1; 2 ] ] };
      { Fault.after = 2.0; step = Fault.Loss_burst { p = 0.5; duration = 10.0 } };
      { Fault.after = 3.0; step = Fault.Crash [ 3 ] };
      { Fault.after = 5.0; step = Fault.Heal };
      { Fault.after = 6.0; step = Fault.Recover [ 3 ] };
    ]
  in
  Fault.validate ok;
  Alcotest.(check (float 1e-9)) "span covers burst tails" 12.0 (Fault.span ok);
  Alcotest.(check (list (float 1e-9))) "heal offsets" [ 5.0; 6.0 ] (Fault.heal_offsets ok);
  let restart = [ { Fault.after = 4.0; step = Fault.Restart { nodes = [ 7 ]; down = 6.0 } } ] in
  Fault.validate restart;
  Alcotest.(check (float 1e-9)) "span covers restart down time" 10.0 (Fault.span restart);
  Alcotest.(check (list (float 1e-9)))
    "restart up time is a heal offset" [ 10.0 ] (Fault.heal_offsets restart)

let test_fault_schedule_execution () =
  let built = build () in
  let atum = built.W.Builder.atum in
  let sys = Atum.system atum in
  let net = System.network sys in
  let victim =
    match List.filter (fun m -> m <> built.W.Builder.first) (W.Builder.correct_members built) with
    | m :: _ -> m
    | [] -> Alcotest.fail "no victim available"
  in
  let schedule =
    [
      { Fault.after = 5.0; step = Fault.Loss_burst { p = 0.4; duration = 20.0 } };
      { Fault.after = 10.0; step = Fault.Crash [ victim ] };
      { Fault.after = 30.0; step = Fault.Latency_spike { factor = 4.0; duration = 15.0 } };
      { Fault.after = 40.0; step = Fault.Recover [ victim ] };
    ]
  in
  let fq =
    Fault.install ~on_crash:(System.crash sys) ~on_recover:(System.recover sys) net schedule
  in
  Alcotest.(check int) "nothing applied yet" 0 (Fault.applied fq);
  Atum.run_for atum 12.0;
  Alcotest.(check int) "burst + crash applied" 2 (Fault.applied fq);
  Alcotest.(check (float 1e-9)) "loss boost in force" 0.4 (Network.loss_boost net);
  Alcotest.(check bool) "victim crashed" true (Network.is_crashed net victim);
  Alcotest.(check int) "two faults active" 2 (Fault.active fq);
  Atum.run_for atum 20.0;
  Alcotest.(check (float 1e-9)) "burst expired" 0.0 (Network.loss_boost net);
  Alcotest.(check (float 1e-9)) "latency spike in force" 4.0 (Network.latency_factor net);
  Atum.run_for atum 20.0;
  Alcotest.(check int) "all steps applied" 4 (Fault.applied fq);
  Alcotest.(check int) "nothing active at the end" 0 (Fault.active fq);
  Alcotest.(check (float 1e-9)) "latency back to identity" 1.0 (Network.latency_factor net);
  Alcotest.(check bool) "victim recovered" false (Network.is_crashed net victim);
  List.iter
    (fun k -> Alcotest.(check int) k 1 (counter atum k))
    [ "fault.loss_burst"; "fault.loss_burst.end"; "fault.crash"; "fault.latency_spike";
      "fault.latency_spike.end"; "fault.recover" ]

(* ------------------------------------------------------------------ *)
(* Active adversaries                                                  *)
(* ------------------------------------------------------------------ *)

let test_equivocation_detected () =
  let built = build ~trace:true () in
  let atum = built.W.Builder.atum in
  let sys = Atum.system atum in
  Atum.on_forward atum System.flood_forward;
  (* Flip a correct member in some vgroup other than the publisher's:
     equivocation triggers on the gossip (Group_part) path. *)
  let from = List.hd (W.Builder.correct_members built) in
  let from_vg = Atum.vgroup_of atum from in
  let liar =
    match
      List.filter
        (fun m -> m <> from && Atum.vgroup_of atum m <> from_vg)
        (W.Builder.correct_members built)
    with
    | m :: _ -> m
    | [] -> Alcotest.fail "needs at least two vgroups"
  in
  System.make_byzantine sys ~strategy:System.Equivocate liar;
  for i = 1 to 5 do
    ignore (Atum.broadcast atum ~from (Printf.sprintf "m%d" i));
    Atum.run_for atum 30.0
  done;
  Alcotest.(check bool) "equivocations counted" true
    (counter atum "byzantine.equivocation" > 0);
  let r = W.Analyze.of_trace (Atum.trace atum) ~metrics:(Atum.metrics atum) in
  Alcotest.(check bool) "analyzer surfaces the adversary" true
    (List.mem_assoc "byzantine.equivocate" r.W.Analyze.byzantine_events)

let test_target_vgroup_hunts () =
  let built = build ~n:30 ~seed:5 () in
  let atum = built.W.Builder.atum in
  let sys = Atum.system atum in
  let target = List.hd (System.vgroup_ids sys) in
  let nid = System.spawn_node sys () in
  System.make_byzantine sys
    ~strategy:(System.Target_vgroup { vg = target; inner = System.Mute })
    nid;
  Alcotest.(check int) "strategy counted" 1
    (counter atum "byzantine.strategy.target_vgroup");
  Atum.run_for atum 900.0;
  let attempts = counter atum "byzantine.target.attempt" in
  let landed = counter atum "byzantine.target.landed" in
  Alcotest.(check bool)
    (Printf.sprintf "hunting observable (attempts=%d landed=%d)" attempts landed)
    true
    (attempts + landed > 0)

let test_selective_drop_counts () =
  let built = build ~trace:true () in
  let atum = built.W.Builder.atum in
  let sys = Atum.system atum in
  Atum.on_forward atum System.flood_forward;
  let from = List.hd (W.Builder.correct_members built) in
  let from_vg = Atum.vgroup_of atum from in
  let dropper =
    match
      List.filter
        (fun m -> m <> from && Atum.vgroup_of atum m <> from_vg)
        (W.Builder.correct_members built)
    with
    | m :: _ -> m
    | [] -> Alcotest.fail "needs at least two vgroups"
  in
  System.make_byzantine sys ~strategy:(System.Selective_drop 0.5) dropper;
  for i = 1 to 10 do
    ignore (Atum.broadcast atum ~from (Printf.sprintf "m%d" i));
    Atum.run_for atum 30.0
  done;
  (* Every bid is either dropped or faithfully relayed — both observable. *)
  Alcotest.(check bool) "dropped or relayed" true
    (counter atum "byzantine.selective_drop" + counter atum "byzantine.relay" > 0)

(* ------------------------------------------------------------------ *)
(* Churn probe thresholds (satellite)                                  *)
(* ------------------------------------------------------------------ *)

let test_churn_thresholds () =
  let built = build () in
  let loose =
    W.Churn.probe built ~sustain_completion:0.0 ~sustain_drift:1.0 ~rate_per_min:6.0
      ~duration:60.0 ~seed:3
  in
  Alcotest.(check bool) "loose thresholds always sustain" true loose.W.Churn.sustained;
  Alcotest.check_raises "completion outside [0, 1]"
    (Invalid_argument "Churn.probe: sustain_completion outside [0, 1]") (fun () ->
      ignore
        (W.Churn.probe built ~sustain_completion:1.5 ~rate_per_min:6.0 ~duration:10.0 ~seed:3));
  Alcotest.check_raises "negative drift"
    (Invalid_argument "Churn.probe: negative sustain_drift") (fun () ->
      ignore
        (W.Churn.probe built ~sustain_drift:(-0.1) ~rate_per_min:6.0 ~duration:10.0 ~seed:3))

(* ------------------------------------------------------------------ *)
(* Recovery verification end to end                                    *)
(* ------------------------------------------------------------------ *)

let resilience_run seed =
  let built = W.Builder.grow ~trace:true ~n:24 ~seed () in
  let r =
    W.Resilience.run ~messages_per_phase:4 ~attackers:1 ~drain:120.0 built ~seed ()
  in
  (r, Json.to_string (W.Resilience.to_json r))

let test_resilience_recovers () =
  let r, _ = resilience_run 11 in
  Alcotest.(check int) "three phases" 3 (List.length r.W.Resilience.phases);
  Alcotest.(check bool) "all scheduled faults applied" true
    (r.W.Resilience.faults_applied = List.length r.W.Resilience.schedule
    && r.W.Resilience.faults_applied > 0);
  Alcotest.(check bool) "one heal record per heal step" true
    (List.length r.W.Resilience.heals >= 1);
  Alcotest.(check bool) "violations observed during the faults" true
    (List.fold_left (fun acc (_, n) -> acc + n) 0 r.W.Resilience.violations_during > 0);
  Alcotest.(check bool) "consistency restored" true
    (match r.W.Resilience.consistency with Ok () -> true | Error _ -> false);
  Alcotest.(check bool) "converged" true r.W.Resilience.converged;
  (match r.W.Resilience.phases with
  | [ before; _; _ ] ->
    Alcotest.(check bool) "healthy baseline delivers" true
      (before.W.Resilience.success > 0.99)
  | _ -> Alcotest.fail "expected before/during/after")

let test_resilience_deterministic () =
  let _, a = resilience_run 11 in
  let _, b = resilience_run 11 in
  Alcotest.(check bool) "same-seed results byte-identical" true (String.equal a b);
  let _, c = resilience_run 12 in
  Alcotest.(check bool) "different seed diverges" false (String.equal a c)

let () =
  Alcotest.run "chaos"
    [
      ( "monitor",
        [
          Alcotest.test_case "partition violations clear on heal" `Quick
            test_monitor_sees_partition;
          Alcotest.test_case "crash violations clear on recover" `Quick
            test_monitor_sees_crash;
        ] );
      ( "fault",
        [
          Alcotest.test_case "schedule validation" `Quick test_fault_schedule_validation;
          Alcotest.test_case "schedule execution" `Quick test_fault_schedule_execution;
          Alcotest.test_case "crash/recover delivery accounting" `Quick
            test_crash_recover_delivery;
        ] );
      ( "adversary",
        [
          Alcotest.test_case "equivocation detected" `Quick test_equivocation_detected;
          Alcotest.test_case "target vgroup hunts" `Quick test_target_vgroup_hunts;
          Alcotest.test_case "selective drop counts" `Quick test_selective_drop_counts;
        ] );
      ( "churn",
        [ Alcotest.test_case "probe thresholds" `Quick test_churn_thresholds ] );
      ( "resilience",
        [
          Alcotest.test_case "recovers after the schedule" `Slow test_resilience_recovers;
          Alcotest.test_case "same-seed byte-identical" `Slow test_resilience_deterministic;
        ] );
    ]
