(* Scale-engine regression tests: dense id arenas, bulk construction,
   vgroup-round gossip batching, and the flat-cost accounting paths
   (O(1) gauges, incremental monitor sweeps, hoisted gossip sorts)
   that the million-node trajectory depends on. *)

open Atum_core

let scale_params ?(seed = 41) n = Params.for_system_size ~seed n

let check_ok label = function
  | Ok () -> ()
  | Error e -> Alcotest.fail (label ^ ": " ^ e)

(* Build a system with [build_direct], broadcast from the first node,
   and run to saturation.  Returns (sys, node ids). *)
let build_and_broadcast ?seed n =
  let sys = System.create (scale_params ?seed n) in
  let ids = System.build_direct sys ~nodes:n () in
  let metrics = System.metrics sys in
  let delivered () = Atum_sim.Metrics.counter metrics "broadcast.delivered" in
  ignore (System.broadcast sys ~from:(List.hd ids) "probe");
  let stalls = ref 0 in
  while delivered () < n && !stalls < 2 do
    let before = delivered () in
    System.run_for sys 120.0;
    if delivered () = before then incr stalls else stalls := 0
  done;
  (sys, ids)

(* ------------------------------------------------------------------ *)
(* Id arena recycling                                                  *)
(* ------------------------------------------------------------------ *)

(* The raw arena: released slots are reused lowest-first and never
   alias a live slot. *)
let test_arena_recycling () =
  let a = Atum_util.Arena.create ~cap:2 () in
  let ids = List.init 5 (fun i -> Atum_util.Arena.alloc a (100 + i)) in
  Alcotest.(check (list int)) "dense ids" [ 0; 1; 2; 3; 4 ] ids;
  Atum_util.Arena.release a 3;
  Atum_util.Arena.release a 1;
  Alcotest.(check int) "live after release" 3 (Atum_util.Arena.live a);
  Alcotest.(check int) "lowest free id first" 1 (Atum_util.Arena.alloc a 201);
  Alcotest.(check int) "next free id" 3 (Atum_util.Arena.alloc a 203);
  Alcotest.(check int) "fresh id past high water" 5 (Atum_util.Arena.alloc a 205);
  (* Survivors kept their values: recycling never clobbered a live slot. *)
  List.iter
    (fun i -> Alcotest.(check int) "survivor intact" (100 + i) (Atum_util.Arena.find a i))
    [ 0; 2; 4 ];
  Alcotest.(check int) "recycled slot holds new value" 201 (Atum_util.Arena.find a 1)

(* System level: a node that leaves under id recycling frees its id
   for the next spawn, without disturbing the live population. *)
let test_node_id_recycling () =
  let n = 60 in
  let sys = System.create (scale_params n) in
  let ids = System.build_direct sys ~nodes:n () in
  System.set_id_recycling sys true;
  let target = List.nth ids (n / 2) in
  let gone = ref false in
  System.leave sys ~target ~k:(fun () -> gone := true) ();
  let deadline = System.now sys +. 600.0 in
  while (not !gone) && System.now sys < deadline do
    System.run_for sys 5.0
  done;
  Alcotest.(check bool) "leave completed" true !gone;
  Alcotest.(check int) "size dropped" (n - 1) (System.system_size sys);
  (* The departed id is back on the free list: the next spawn reuses
     it instead of extending the arena. *)
  let fresh = System.spawn_node sys () in
  Alcotest.(check int) "id recycled" target fresh;
  let nn = System.node sys fresh in
  Alcotest.(check bool) "recycled node starts outside" true (nn.System.vg = None);
  (* No aliasing: every live node still backlinks consistently. *)
  check_ok "registry after recycle" (System.check_consistency sys)

(* ------------------------------------------------------------------ *)
(* Bulk growth smoke (CI-capped stand-in for the 1M bench tier)        *)
(* ------------------------------------------------------------------ *)

let test_grow_smoke () =
  let n = 2_000 in
  let sys, _ = build_and_broadcast n in
  let metrics = System.metrics sys in
  Alcotest.(check int) "all delivered" n
    (Atum_sim.Metrics.counter metrics "broadcast.delivered");
  Alcotest.(check int) "size" n (System.system_size sys);
  check_ok "registry" (System.check_consistency sys);
  (* Dense construction really is dense: ids are exactly 0..n-1. *)
  let hw = List.fold_left max 0 (List.map (fun (nd : System.node) -> nd.System.id)
                                   (System.live_nodes sys)) in
  Alcotest.(check int) "ids dense" (n - 1) hw

(* ------------------------------------------------------------------ *)
(* Same-seed determinism of the dense-id fast path                     *)
(* ------------------------------------------------------------------ *)

let test_dense_determinism () =
  let fingerprint () =
    let sys, _ = build_and_broadcast ~seed:43 1_000 in
    Printf.sprintf "%d/%.6f/%s"
      (Atum_sim.Engine.events_processed (System.engine sys))
      (System.now sys)
      (Atum_util.Json.to_string (Atum_sim.Metrics.to_json (System.metrics sys)))
  in
  let a = fingerprint () in
  let b = fingerprint () in
  Alcotest.(check string) "two invocations byte-identical" a b

(* ------------------------------------------------------------------ *)
(* Flat-cost accounting paths                                          *)
(* ------------------------------------------------------------------ *)

(* Telemetry gauges are O(1) reads: a window of samples performs no
   registry sort at all (the pre-arena size gauge sorted the whole
   live-node list on every sample). *)
let test_gauges_do_not_sort () =
  let n = 500 in
  let sys = System.create (scale_params n) in
  ignore (System.build_direct sys ~nodes:n ());
  ignore (System.attach_telemetry ~period:1.0 sys);
  System.run_for sys 2.0 (* let the first samples land *);
  let tel = match System.telemetry sys with Some t -> t | None -> assert false in
  let k0 = Atum_sim.Telemetry.samples_total tel in
  let s0 = Atum_util.Hashtbl_ext.sorts_performed () in
  System.run_for sys 20.0;
  let sorts = Atum_util.Hashtbl_ext.sorts_performed () - s0 in
  let samples = Atum_sim.Telemetry.samples_total tel - k0 in
  Alcotest.(check bool) "samples landed" true (samples >= 10);
  Alcotest.(check int) "no sort per gauge sample" 0 sorts

(* The per-delivery [chosen]-table sort is hoisted: a full broadcast
   performs at most one gossip-view sort per vgroup (cached against
   the overlay generation), not one per delivery. *)
let test_gossip_sorts_hoisted () =
  let n = 1_000 in
  let sys = System.create (scale_params n) in
  let ids = System.build_direct sys ~nodes:n () in
  let metrics = System.metrics sys in
  let delivered () = Atum_sim.Metrics.counter metrics "broadcast.delivered" in
  let s0 = Atum_util.Hashtbl_ext.sorts_performed () in
  ignore (System.broadcast sys ~from:(List.hd ids) "probe");
  let stalls = ref 0 in
  while delivered () < n && !stalls < 2 do
    let before = delivered () in
    System.run_for sys 120.0;
    if delivered () = before then incr stalls else stalls := 0
  done;
  Alcotest.(check int) "all delivered" n (delivered ());
  let sorts = Atum_util.Hashtbl_ext.sorts_performed () - s0 in
  let vgroups = System.vgroup_count sys in
  Alcotest.(check bool)
    (Printf.sprintf "sorts (%d) bounded by vgroups (%d), not deliveries (%d)" sorts
       vgroups n)
    true
    (sorts <= vgroups + 4);
  let rebuilt = Atum_sim.Metrics.counter metrics "gossip.view.rebuilt" in
  Alcotest.(check bool) "views rebuilt once per vgroup" true (rebuilt <= vgroups)

(* Incremental monitor sweeps examine the touched set, not the world:
   across a quiet window the periodic sweeps check far fewer vgroups
   than (full scans x vgroup count) would. *)
let test_monitor_sweep_incremental () =
  let n = 600 in
  let sys = System.create (scale_params n) in
  ignore (System.build_direct sys ~nodes:n ());
  let mon = Monitor.attach sys in
  System.run_for sys 6.0 (* first sweep drains the construction dirty log *);
  let metrics = System.metrics sys in
  let c0 = Atum_sim.Metrics.counter metrics "monitor.sweep.checked" in
  System.run_for sys 50.0 (* ~10 periodic sweeps, nothing changing *);
  let quiet = Atum_sim.Metrics.counter metrics "monitor.sweep.checked" - c0 in
  let vgroups = System.vgroup_count sys in
  Alcotest.(check bool)
    (Printf.sprintf "quiet sweeps check %d vgroups, full scans would check >= %d" quiet
       (10 * vgroups))
    true
    (quiet < vgroups);
  Alcotest.(check int) "no violations" 0 (Monitor.total mon);
  Monitor.detach mon

let () =
  Alcotest.run "scale"
    [
      ( "arena",
        [
          Alcotest.test_case "recycles ids without aliasing" `Quick test_arena_recycling;
          Alcotest.test_case "node ids recycle through leave" `Slow test_node_id_recycling;
        ] );
      ( "growth",
        [
          Alcotest.test_case "bulk grow + broadcast smoke" `Slow test_grow_smoke;
          Alcotest.test_case "same-seed dense runs identical" `Slow test_dense_determinism;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "gauge sampling performs no sort" `Slow test_gauges_do_not_sort;
          Alcotest.test_case "gossip sorts hoisted per saga" `Slow test_gossip_sorts_hoisted;
          Alcotest.test_case "monitor sweeps are incremental" `Slow
            test_monitor_sweep_incremental;
        ] );
    ]
