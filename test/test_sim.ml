open Atum_sim

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let test_engine_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:2.0 (fun () -> log := "b" :: !log);
  Engine.schedule e ~delay:1.0 (fun () -> log := "a" :: !log);
  Engine.schedule e ~delay:3.0 (fun () -> log := "c" :: !log);
  Engine.run e;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check bool) "clock at last event" true (Engine.now e = 3.0)

let test_engine_same_time_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.schedule e ~delay:1.0 (fun () -> log := i :: !log)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let fired = ref [] in
  Engine.schedule e ~delay:1.0 (fun () ->
      fired := "outer" :: !fired;
      Engine.schedule e ~delay:1.0 (fun () -> fired := "inner" :: !fired));
  Engine.run e;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !fired);
  Alcotest.(check bool) "clock" true (Engine.now e = 2.0)

let test_engine_until () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    Engine.schedule e ~delay:(float_of_int i) (fun () -> incr count)
  done;
  Engine.run ~until:5.5 e;
  Alcotest.(check int) "only first five" 5 !count;
  Alcotest.(check bool) "clock clamped" true (Engine.now e = 5.5);
  Engine.run e;
  Alcotest.(check int) "rest run later" 10 !count

let test_engine_until_empty_queue_advances_clock () =
  (* Regression: when the queue drains before [until], the clock must
     still advance to [until] — callers rely on [run_for d] moving
     simulated time by exactly [d] even through quiet periods. *)
  let e = Engine.create () in
  Engine.schedule e ~delay:2.0 (fun () -> ());
  Engine.run ~until:10.0 e;
  Alcotest.(check (float 1e-9)) "advances past last event" 10.0 (Engine.now e);
  Engine.run ~until:15.0 e;
  Alcotest.(check (float 1e-9)) "advances with empty queue" 15.0 (Engine.now e);
  Engine.run ~until:4.0 e;
  Alcotest.(check (float 1e-9)) "never moves backwards" 15.0 (Engine.now e)

let test_engine_stop () =
  let e = Engine.create () in
  let count = ref 0 in
  for _ = 1 to 10 do
    Engine.schedule e ~delay:1.0 (fun () ->
        incr count;
        if !count = 3 then Engine.stop e)
  done;
  Engine.run e;
  Alcotest.(check int) "stopped after 3" 3 !count

let test_engine_max_events () =
  let e = Engine.create () in
  let count = ref 0 in
  for _ = 1 to 10 do
    Engine.schedule e ~delay:1.0 (fun () -> incr count)
  done;
  Engine.run ~max_events:4 e;
  Alcotest.(check int) "bounded" 4 !count

let test_engine_negative_delay_clamped () =
  let e = Engine.create () in
  let at = ref nan in
  Engine.schedule e ~delay:5.0 (fun () ->
      Engine.schedule e ~delay:(-3.0) (fun () -> at := Engine.now e));
  Engine.run e;
  Alcotest.(check bool) "clamped to now" true (!at = 5.0)

let test_engine_every_no_drift () =
  (* Regression for float-accumulation drift: 0.1 is not representable
     in binary, so a [t := !t +. period] loop slides off the grid and
     long runs gain or lose ticks.  The engine uses the closed form
     [start +. k *. period]; over 10k ticks the tick times must stay
     exactly on it. *)
  let period = 0.1 in
  let horizon = 1000.0 in
  let e = Engine.create () in
  let ticks = ref 0 in
  let last = ref nan in
  Engine.every e ~period (fun () ->
      incr ticks;
      last := Engine.now e;
      true);
  Engine.run ~until:horizon e;
  (* Expected count/time computed with the engine's own closed form,
     so the assertion is exact, not approximate. *)
  let expected = ref 0 in
  while period +. (float_of_int !expected *. period) <= horizon do
    incr expected
  done;
  Alcotest.(check int)
    (Printf.sprintf "exactly %d ticks in %.0f s" !expected horizon)
    !expected !ticks;
  Alcotest.(check bool) "final tick exactly on the closed-form grid" true
    (!last = period +. (float_of_int (!ticks - 1) *. period));
  (* Document the drift the closed form avoids: naive accumulation
     ends somewhere else after this many additions. *)
  let accumulated = ref 0.0 in
  for _ = 1 to !ticks do
    accumulated := !accumulated +. period
  done;
  Alcotest.(check bool) "naive accumulation drifts off the grid" true
    (!accumulated <> !last)

let test_engine_every_rejects_bad_period () =
  let e = Engine.create () in
  Alcotest.check_raises "non-positive period"
    (Invalid_argument "Engine.every: period must be positive") (fun () ->
      Engine.every e ~period:0.0 (fun () -> true))

let test_engine_profile_accounting () =
  let e = Engine.create () in
  Engine.schedule ~label:"a" e ~delay:1.0 (fun () -> ());
  Engine.schedule ~label:"a" e ~delay:4.0 (fun () -> ());
  Engine.schedule ~label:"b" e ~delay:2.0 (fun () -> ());
  Engine.schedule e ~delay:3.0 (fun () -> ());
  Engine.run e;
  let prof = Engine.profile e in
  Alcotest.(check (list string)) "labels sorted, unlabeled accounted"
    [ "(unlabeled)"; "a"; "b" ]
    (List.map (fun (p : Engine.label_profile) -> p.Engine.label) prof);
  let a = List.nth prof 1 in
  Alcotest.(check int) "a ran twice" 2 a.Engine.events;
  Alcotest.(check (float 1e-9)) "first virtual time" 1.0 a.Engine.vt_first;
  Alcotest.(check (float 1e-9)) "last virtual time" 4.0 a.Engine.vt_last;
  (* ATUM_PROF_WALL is unset under dune runtest, so self-times must be
     identically zero — that's what keeps profiles deterministic. *)
  List.iter
    (fun (p : Engine.label_profile) ->
      Alcotest.(check (float 0.0)) (p.Engine.label ^ " wall off") 0.0 p.Engine.wall_self_s)
    prof;
  (* Delays of 1..4 s land in the log2 buckets for [1,2) and [2,4)
     and [4,8): lower bounds 1, 2 and 4 seconds. *)
  Alcotest.(check (float 1e-12)) "bucket 11 lower bound" 1.0 (Engine.delay_bucket_lo 11);
  Alcotest.(check (float 1e-12)) "bucket 13 lower bound" 4.0 (Engine.delay_bucket_lo 13);
  Alcotest.(check (list (pair int int))) "a's delay histogram"
    [ (11, 1); (13, 1) ] a.Engine.delay_hist;
  match Engine.profile_json e with
  | Atum_util.Json.Obj fields ->
    Alcotest.(check bool) "wall_clock_enabled false" true
      (List.assoc_opt "wall_clock_enabled" fields = Some (Atum_util.Json.Bool false));
    Alcotest.(check bool) "events_total matches" true
      (List.assoc_opt "events_total" fields
      = Some (Atum_util.Json.Int (Engine.events_processed e)))
  | _ -> Alcotest.fail "profile_json not an object"

(* ------------------------------------------------------------------ *)
(* Network                                                             *)
(* ------------------------------------------------------------------ *)

let make_net ?(config = Network.datacenter_config ~seed:1) () =
  let e = Engine.create () in
  let net : string Network.t = Network.create e config in
  (e, net)

let test_network_delivery () =
  let e, net = make_net () in
  let got = ref [] in
  Network.register net 2 (fun ~src msg -> got := (src, msg) :: !got);
  Network.send net ~src:1 ~dst:2 "hello";
  Engine.run e;
  Alcotest.(check bool) "delivered" true (!got = [ (1, "hello") ]);
  Alcotest.(check int) "counted" 1 (Network.messages_delivered net)

let test_network_latency_positive () =
  let e, net = make_net () in
  let at = ref nan in
  Network.register net 2 (fun ~src:_ _ -> at := Engine.now e);
  Network.send net ~src:1 ~dst:2 "x";
  Engine.run e;
  Alcotest.(check bool) "nonzero latency" true (!at > 0.0 && !at < 0.01)

let test_network_unregistered_dropped () =
  let e, net = make_net () in
  Network.send net ~src:1 ~dst:99 "x";
  Engine.run e;
  Alcotest.(check int) "dropped" 1 (Network.messages_dropped net);
  Alcotest.(check int) "not delivered" 0 (Network.messages_delivered net)

let test_network_partition () =
  let e, net = make_net () in
  let got = ref 0 in
  Network.register net 2 (fun ~src:_ _ -> incr got);
  Network.set_partition net 1 7;
  Network.send net ~src:1 ~dst:2 "x";
  Engine.run e;
  Alcotest.(check int) "partitioned" 0 !got;
  Network.set_partition net 1 0;
  Network.send net ~src:1 ~dst:2 "y";
  Engine.run e;
  Alcotest.(check int) "healed" 1 !got

let test_network_crash_isolates () =
  let e, net = make_net () in
  let got = ref 0 in
  Network.register net 2 (fun ~src:_ _ -> incr got);
  Network.crash net 2;
  Network.send net ~src:1 ~dst:2 "x";
  Engine.run e;
  Alcotest.(check int) "crashed node unreachable" 0 !got

let test_network_two_crashed_nodes_cannot_talk () =
  let e, net = make_net () in
  let got = ref 0 in
  Network.register net 2 (fun ~src:_ _ -> incr got);
  Network.crash net 1;
  Network.crash net 2;
  Network.send net ~src:1 ~dst:2 "x";
  Engine.run e;
  Alcotest.(check int) "distinct isolation tags" 0 !got

let test_network_drop_probability () =
  let e = Engine.create () in
  let config = { (Network.datacenter_config ~seed:3) with Network.drop_probability = 0.5 } in
  let net : int Network.t = Network.create e config in
  let got = ref 0 in
  Network.register net 2 (fun ~src:_ _ -> incr got);
  for _ = 1 to 1000 do
    Network.send net ~src:1 ~dst:2 0
  done;
  Engine.run e;
  Alcotest.(check bool) "about half lost" true (!got > 400 && !got < 600)

let test_network_wan_latency_distribution () =
  let e = Engine.create () in
  let net : int Network.t = Network.create e (Network.wan_config ~seed:5) in
  let xs = List.init 5000 (fun _ -> Network.sample_latency net) in
  let median = Atum_util.Stats.median xs in
  Alcotest.(check bool) "median near 80ms" true (median > 0.05 && median < 0.12);
  Alcotest.(check bool) "floor respected" true (List.for_all (fun x -> x >= 0.02) xs);
  let p999 = Atum_util.Stats.percentile xs 99.9 in
  Alcotest.(check bool) "tail is heavy" true (p999 > 0.3)

let test_network_mid_flight_partition () =
  let e, net = make_net () in
  let got = ref 0 in
  Network.register net 2 (fun ~src:_ _ -> incr got);
  Network.send net ~src:1 ~dst:2 "x";
  (* Partition before delivery happens. *)
  Network.crash net 2;
  Engine.run e;
  Alcotest.(check int) "message in flight dropped" 0 !got

let test_network_fixed_latency () =
  let e = Engine.create () in
  let config =
    { (Network.datacenter_config ~seed:1) with Network.latency = Network.Fixed 0.25 }
  in
  let net : int Network.t = Network.create e config in
  let at = ref nan in
  Network.register net 2 (fun ~src:_ _ -> at := Engine.now e);
  Network.send net ~src:1 ~dst:2 0;
  Engine.run e;
  Alcotest.(check (float 1e-9)) "exactly the fixed latency" 0.25 !at

let test_network_node_capacity_queues () =
  (* A burst to one receiver drains at the configured rate. *)
  let e = Engine.create () in
  let config =
    {
      (Network.datacenter_config ~seed:2) with
      Network.latency = Network.Fixed 0.001;
      node_capacity = Some 10.0 (* 100 ms per message *);
    }
  in
  let net : int Network.t = Network.create e config in
  let times = ref [] in
  Network.register net 9 (fun ~src:_ _ -> times := Engine.now e :: !times);
  for _ = 1 to 5 do
    Network.send net ~src:1 ~dst:9 0
  done;
  Engine.run e;
  let times = List.rev !times in
  Alcotest.(check int) "all delivered" 5 (List.length times);
  let last = List.nth times 4 in
  Alcotest.(check bool)
    (Printf.sprintf "last at %.2fs (queueing)" last)
    true
    (last >= 0.5 -. 1e-6);
  (* Arrival order respected, spaced by the service time. *)
  let rec spaced = function
    | a :: (b :: _ as rest) -> b -. a >= 0.1 -. 1e-9 && spaced rest
    | _ -> true
  in
  Alcotest.(check bool) "service spacing" true (spaced times)

let test_network_capacity_idle_resets () =
  let e = Engine.create () in
  let config =
    {
      (Network.datacenter_config ~seed:3) with
      Network.latency = Network.Fixed 0.001;
      node_capacity = Some 10.0;
    }
  in
  let net : int Network.t = Network.create e config in
  let at = ref nan in
  Network.register net 9 (fun ~src:_ _ -> at := Engine.now e);
  Network.send net ~src:1 ~dst:9 0;
  Engine.run e;
  (* Long idle period; the next message must not queue behind history. *)
  Engine.schedule e ~delay:10.0 (fun () -> Network.send net ~src:1 ~dst:9 0);
  Engine.run e;
  Alcotest.(check bool) "no stale queueing" true (!at < 10.3)

let test_network_capacity_not_charged_for_presend_drops () =
  (* Regression: messages dropped before transit (partitioned sender)
     must not occupy the receiver's service queue. *)
  let e = Engine.create () in
  let config =
    {
      (Network.datacenter_config ~seed:4) with
      Network.latency = Network.Fixed 0.001;
      node_capacity = Some 10.0;
    }
  in
  let net : int Network.t = Network.create e config in
  let at = ref nan in
  Network.register net 9 (fun ~src:_ _ -> at := Engine.now e);
  Network.set_partition net 9 7;
  for _ = 1 to 5 do
    Network.send net ~src:1 ~dst:9 0
  done;
  Network.set_partition net 9 0;
  Network.send net ~src:1 ~dst:9 0;
  Engine.run e;
  Alcotest.(check int) "five dropped" 5 (Network.messages_dropped net);
  Alcotest.(check int) "one delivered" 1 (Network.messages_delivered net);
  Alcotest.(check bool)
    (Printf.sprintf "no queueing behind dropped traffic (at %.3fs)" !at)
    true (!at < 0.2)

let test_network_capacity_not_charged_for_arrival_drops () =
  (* Regression: messages that arrive but drop (no handler) must not
     occupy the receiver's service queue either. *)
  let e = Engine.create () in
  let config =
    {
      (Network.datacenter_config ~seed:5) with
      Network.latency = Network.Fixed 0.001;
      node_capacity = Some 10.0;
    }
  in
  let net : int Network.t = Network.create e config in
  let at = ref nan in
  (* No handler registered yet: these arrive at t=0.001 and drop. *)
  for _ = 1 to 5 do
    Network.send net ~src:1 ~dst:9 0
  done;
  Engine.schedule e ~delay:0.05 (fun () ->
      Network.register net 9 (fun ~src:_ _ -> at := Engine.now e);
      Network.send net ~src:1 ~dst:9 0);
  Engine.run e;
  Alcotest.(check int) "five dropped" 5 (Network.messages_dropped net);
  (* Leaky accounting would push the finish time past 0.6s. *)
  Alcotest.(check bool)
    (Printf.sprintf "no stale service tail (at %.3fs)" !at)
    true (!at < 0.2)

let test_network_drop_reason_counters () =
  let e = Engine.create () in
  let config =
    { (Network.datacenter_config ~seed:6) with Network.latency = Network.Fixed 0.001 }
  in
  let net : int Network.t = Network.create e config in
  Network.register net 2 (fun ~src:_ _ -> ());
  Network.set_partition net 1 7;
  Network.send net ~src:1 ~dst:2 0;
  Network.set_partition net 1 0;
  Network.send net ~src:1 ~dst:99 0;
  Engine.run e;
  let m = Network.metrics net in
  Alcotest.(check int) "partition" 1 (Metrics.counter m "net.drop.partition");
  Alcotest.(check int) "no_handler" 1 (Metrics.counter m "net.drop.no_handler");
  Alcotest.(check int) "aggregate" 2 (Network.messages_dropped net);
  let lossy = Engine.create () in
  let net2 : int Network.t =
    Network.create lossy
      { (Network.datacenter_config ~seed:7) with Network.drop_probability = 1.0 }
  in
  Network.register net2 2 (fun ~src:_ _ -> ());
  for _ = 1 to 3 do
    Network.send net2 ~src:1 ~dst:2 0
  done;
  Engine.run lossy;
  Alcotest.(check int) "loss" 3 (Metrics.counter (Network.metrics net2) "net.drop.loss")

(* ------------------------------------------------------------------ *)
(* Rounds                                                              *)
(* ------------------------------------------------------------------ *)

let test_rounds_ticks () =
  let e = Engine.create () in
  let r = Rounds.create e ~round_duration:1.5 in
  let seen = ref [] in
  ignore (Rounds.subscribe r (fun round -> seen := round :: !seen));
  Rounds.start r;
  Engine.run ~until:6.5 e;
  Rounds.stop r;
  Alcotest.(check (list int)) "rounds 1..4" [ 1; 2; 3; 4 ] (List.rev !seen)

let test_rounds_subscriber_order () =
  let e = Engine.create () in
  let r = Rounds.create e ~round_duration:1.0 in
  let log = ref [] in
  ignore (Rounds.subscribe r (fun _ -> log := "a" :: !log));
  ignore (Rounds.subscribe r (fun _ -> log := "b" :: !log));
  Rounds.start r;
  Engine.run ~until:1.0 e;
  Rounds.stop r;
  Alcotest.(check (list string)) "subscription order" [ "a"; "b" ] (List.rev !log)

let test_rounds_unsubscribe () =
  let e = Engine.create () in
  let r = Rounds.create e ~round_duration:1.0 in
  let count = ref 0 in
  let id = Rounds.subscribe r (fun _ -> incr count) in
  Rounds.start r;
  Engine.run ~until:2.0 e;
  Rounds.unsubscribe r id;
  Engine.run ~until:5.0 e;
  Rounds.stop r;
  Alcotest.(check int) "stopped after unsubscribe" 2 !count

let test_rounds_stop () =
  let e = Engine.create () in
  let r = Rounds.create e ~round_duration:1.0 in
  let count = ref 0 in
  ignore (Rounds.subscribe r (fun _ -> incr count));
  Rounds.start r;
  Engine.run ~until:3.0 e;
  Rounds.stop r;
  Engine.run e;
  Alcotest.(check int) "no ticks after stop" 3 !count

(* ------------------------------------------------------------------ *)
(* Bulk transfer model                                                 *)
(* ------------------------------------------------------------------ *)

let test_bulk_latency_per_mb_decreases () =
  let h = Bulk.ec2_micro in
  let per_mb mb = Bulk.single_stream_time ~src:h ~dst:h ~mb /. mb in
  Alcotest.(check bool) "2MB slower per MB than 64MB" true (per_mb 2.0 > per_mb 64.0);
  Alcotest.(check bool) "64MB slower per MB than 2048MB" true (per_mb 64.0 > per_mb 2048.0)

let test_bulk_parallel_beats_single_for_big_files () =
  let h = Bulk.ec2_micro in
  let single = Bulk.single_stream_time ~src:h ~dst:h ~mb:1024.0 in
  let parallel = Bulk.parallel_pull_time ~sources:[ h; h ] ~dst:h ~mb:1024.0 ~chunks:10 in
  Alcotest.(check bool) "parallel faster" true (parallel < single);
  Alcotest.(check bool) "roughly 2x" true (single /. parallel > 1.5)

let test_bulk_download_caps_aggregate () =
  let h = Bulk.ec2_micro in
  let five = Bulk.parallel_pull_time ~sources:[ h; h; h; h; h ] ~dst:h ~mb:1024.0 ~chunks:10 in
  let three = Bulk.parallel_pull_time ~sources:[ h; h; h ] ~dst:h ~mb:1024.0 ~chunks:10 in
  (* 3 x 8 MB/s allready saturates the 20 MB/s download link. *)
  Alcotest.(check bool) "no benefit beyond download cap" true (five >= three -. 0.2)

let test_bulk_hash_parallelism () =
  let h = Bulk.ec2_micro in
  let serial = Bulk.hash_time h ~mb:100.0 ~parallel_chunks:1 in
  let parallel = Bulk.hash_time h ~mb:100.0 ~parallel_chunks:10 in
  Alcotest.(check bool) "bounded by cores" true
    (abs_float (serial /. parallel -. float_of_int h.Bulk.cores) < 0.01)

let test_bulk_no_sources_raises () =
  Alcotest.check_raises "no sources"
    (Invalid_argument "Bulk.parallel_pull_time: no sources") (fun () ->
      ignore (Bulk.parallel_pull_time ~sources:[] ~dst:Bulk.ec2_micro ~mb:1.0 ~chunks:1))

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_metrics_counters () =
  let m = Metrics.create () in
  Metrics.incr m "a";
  Metrics.incr ~by:4 m "a";
  Alcotest.(check int) "a" 5 (Metrics.counter m "a");
  Alcotest.(check int) "unknown" 0 (Metrics.counter m "b")

let test_metrics_series () =
  let m = Metrics.create () in
  Metrics.observe m "lat" 1.0;
  Metrics.observe m "lat" 2.0;
  Alcotest.(check (list (float 0.0))) "ordered" [ 1.0; 2.0 ] (Metrics.samples m "lat");
  Alcotest.(check (list string)) "names" [ "lat" ] (Metrics.series_names m)

let test_metrics_clear () =
  let m = Metrics.create () in
  Metrics.incr m "a";
  Metrics.observe m "s" 1.0;
  Metrics.clear m;
  Alcotest.(check int) "counter gone" 0 (Metrics.counter m "a");
  Alcotest.(check (list (float 0.0))) "series gone" [] (Metrics.samples m "s")

let test_metrics_merge () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.incr ~by:2 a "x";
  Metrics.observe a "lat" 1.0;
  Metrics.incr ~by:3 b "x";
  Metrics.incr b "y";
  Metrics.observe b "lat" 2.0;
  Metrics.merge ~into:a b;
  Alcotest.(check int) "counters added" 5 (Metrics.counter a "x");
  Alcotest.(check int) "new counter" 1 (Metrics.counter a "y");
  Alcotest.(check (list (float 0.0))) "samples appended" [ 1.0; 2.0 ] (Metrics.samples a "lat");
  Alcotest.(check int) "source untouched" 3 (Metrics.counter b "x")

let test_metrics_json_roundtrip () =
  let m = Metrics.create () in
  Metrics.incr ~by:7 m "net.drop.loss";
  Metrics.incr m "join.completed";
  List.iter (Metrics.observe m "join.latency") [ 0.5; 1.25; 3.0 ];
  let s = Atum_util.Json.to_string (Metrics.to_json ~include_series:true m) in
  match Atum_util.Json.of_string s with
  | Error e -> Alcotest.failf "reparse failed: %s" e
  | Ok j -> (
      match Metrics.of_json j with
      | Error e -> Alcotest.failf "of_json failed: %s" e
      | Ok m' ->
          Alcotest.(check (list string))
            "counter names" (Metrics.counter_names m) (Metrics.counter_names m');
          List.iter
            (fun c ->
              Alcotest.(check int) c (Metrics.counter m c) (Metrics.counter m' c))
            (Metrics.counter_names m);
          Alcotest.(check (list (float 1e-12)))
            "samples" [ 0.5; 1.25; 3.0 ]
            (Metrics.samples m' "join.latency"))

let test_metrics_json_summary_only () =
  let m = Metrics.create () in
  Metrics.observe m "lat" 4.0;
  let j = Metrics.to_json m in
  (* Without include_series the summary is exported but not samples. *)
  match Atum_util.Json.member "series" j with
  | Some (Atum_util.Json.Obj [ ("lat", summary) ]) ->
      Alcotest.(check bool) "has n" true (Atum_util.Json.member "n" summary <> None);
      Alcotest.(check bool) "no samples" true
        (Atum_util.Json.member "samples" summary = None)
  | _ -> Alcotest.fail "unexpected series shape"

let test_metrics_merge_of_json_roundtrip () =
  (* The bench fig8 path: each run's metrics are serialized with
     [to_json ~include_series:true], restored with [of_json], and
     merged into one aggregate. *)
  let m1 = Metrics.create () and m2 = Metrics.create () in
  Metrics.incr m1 "a";
  Metrics.incr ~by:2 m1 "b";
  List.iter (Metrics.observe m1 "lat") [ 1.0; 2.0 ];
  Metrics.incr ~by:3 m2 "b";
  Metrics.incr ~by:4 m2 "c";
  Metrics.observe m2 "lat" 3.0;
  Metrics.observe m2 "size" 9.0;
  let restore m =
    let s = Atum_util.Json.to_string (Metrics.to_json ~include_series:true m) in
    match Atum_util.Json.of_string s with
    | Error e -> Alcotest.failf "reparse failed: %s" e
    | Ok j -> (
        match Metrics.of_json j with
        | Error e -> Alcotest.failf "of_json failed: %s" e
        | Ok m' -> m')
  in
  let agg = Metrics.create () in
  Metrics.merge ~into:agg (restore m1);
  Metrics.merge ~into:agg (restore m2);
  Alcotest.(check int) "a" 1 (Metrics.counter agg "a");
  Alcotest.(check int) "b summed across runs" 5 (Metrics.counter agg "b");
  Alcotest.(check int) "c" 4 (Metrics.counter agg "c");
  Alcotest.(check (list string)) "counter names" [ "a"; "b"; "c" ]
    (Metrics.counter_names agg);
  Alcotest.(check (list (float 1e-12))) "series appended in merge order"
    [ 1.0; 2.0; 3.0 ] (Metrics.samples agg "lat");
  Alcotest.(check (list (float 1e-12))) "series unique to one run" [ 9.0 ]
    (Metrics.samples agg "size")

let test_metrics_of_json_error_paths () =
  (* The analyzer feeds artifacts straight into [of_json]; malformed
     input must come back as [Error _], never an exception. *)
  let open Atum_util.Json in
  let expect_error label json =
    match Metrics.of_json json with
    | Error e ->
      Alcotest.(check bool) (label ^ ": error is prefixed") true
        (String.length e > String.length "Metrics.of_json: ")
    | Ok _ -> Alcotest.failf "%s: expected Error, got Ok" label
  in
  expect_error "non-object document" (List [ Int 1 ]);
  expect_error "string document" (String "metrics");
  expect_error "counters not an object" (Obj [ ("counters", Int 3) ]);
  expect_error "counter not an integer"
    (Obj [ ("counters", Obj [ ("x", String "seven") ]) ]);
  expect_error "samples not a list"
    (Obj [ ("series", Obj [ ("lat", Obj [ ("samples", Int 1) ]) ]) ]);
  expect_error "sample not a number"
    (Obj [ ("series", Obj [ ("lat", Obj [ ("samples", List [ Bool true ]) ]) ]) ]);
  (* Absent sections are fine: an empty object is an empty snapshot. *)
  match Metrics.of_json (Obj []) with
  | Ok m -> Alcotest.(check (list string)) "empty snapshot" [] (Metrics.counter_names m)
  | Error e -> Alcotest.failf "empty object should parse: %s" e

(* ------------------------------------------------------------------ *)
(* Telemetry                                                           *)
(* ------------------------------------------------------------------ *)

let test_telemetry_samples_gauges () =
  let e = Engine.create () in
  let tel = Telemetry.create ~period:1.0 ~capacity:16 e in
  let x = ref 0.0 in
  let counter = ref 0 in
  Telemetry.register tel "x" (fun () -> !x);
  Telemetry.register_delta tel "c.delta" (fun () -> !counter);
  Telemetry.start tel;
  (* State evolves between samples; deltas must report per-period
     increases, with the first sample baselined at zero. *)
  Engine.schedule e ~delay:0.5 (fun () ->
      x := 10.0;
      counter := 3);
  Engine.schedule e ~delay:2.5 (fun () -> counter := 5);
  Engine.run ~until:3.5 e;
  Alcotest.(check (list (float 1e-9))) "shared time axis" [ 1.0; 2.0; 3.0 ]
    (Telemetry.times tel);
  Alcotest.(check (list string)) "names sorted" [ "c.delta"; "x" ]
    (Telemetry.gauge_names tel);
  Alcotest.(check (list (float 1e-9))) "plain gauge" [ 10.0; 10.0; 10.0 ]
    (Telemetry.series tel "x");
  Alcotest.(check (list (float 1e-9))) "delta gauge" [ 3.0; 0.0; 2.0 ]
    (Telemetry.series tel "c.delta");
  Alcotest.(check (list (float 1e-9))) "unknown gauge" [] (Telemetry.series tel "nope")

let test_telemetry_ring_wraparound () =
  let e = Engine.create () in
  let tel = Telemetry.create ~period:1.0 ~capacity:4 e in
  Telemetry.register tel "t" (fun () -> Engine.now e);
  Telemetry.start tel;
  Engine.run ~until:10.5 e;
  Alcotest.(check int) "all samples counted" 10 (Telemetry.samples_total tel);
  Alcotest.(check int) "ring keeps the newest" 4 (Telemetry.samples_kept tel);
  Alcotest.(check (list (float 1e-9))) "oldest-first after wrap" [ 7.0; 8.0; 9.0; 10.0 ]
    (Telemetry.times tel);
  Alcotest.(check (list (float 1e-9))) "series aligned" [ 7.0; 8.0; 9.0; 10.0 ]
    (Telemetry.series tel "t")

let test_telemetry_stop_and_late_register () =
  let e = Engine.create () in
  let tel = Telemetry.create ~period:1.0 e in
  Telemetry.register tel "x" (fun () -> 1.0);
  Telemetry.start tel;
  Engine.run ~until:1.5 e;
  (* Late registration is allowed: the new gauge's missed samples are
     backfilled with zeros so it stays aligned with the time axis. *)
  Telemetry.register tel "late" (fun () -> 9.0);
  Alcotest.check_raises "duplicate late gauge"
    (Invalid_argument "Telemetry.register: duplicate gauge \"x\"") (fun () ->
      Telemetry.register tel "x" (fun () -> 0.0));
  Engine.run ~until:2.5 e;
  Alcotest.(check (list (float 1e-9))) "late gauge zero-backfilled" [ 0.0; 9.0 ]
    (Telemetry.series tel "late");
  Telemetry.stop tel;
  Engine.run ~until:9.5 e;
  Alcotest.(check int) "no samples after stop" 2 (Telemetry.samples_total tel)

let test_telemetry_json_roundtrip () =
  let e = Engine.create () in
  let tel = Telemetry.create ~period:2.0 ~capacity:8 e in
  let n = ref 0 in
  Telemetry.register tel "n" (fun () -> float_of_int !n);
  Telemetry.register tel "half" (fun () -> float_of_int !n /. 2.0);
  Telemetry.start tel;
  Engine.every e ~period:1.0 (fun () ->
      incr n;
      true);
  Engine.run ~until:8.5 e;
  let j = Telemetry.to_json tel in
  (* Through bytes and back, as [atum-cli report] reads it. *)
  match Atum_util.Json.of_string (Atum_util.Json.to_string j) with
  | Error err -> Alcotest.failf "reparse failed: %s" err
  | Ok j' -> (
    match Telemetry.of_json j' with
    | Error err -> Alcotest.failf "of_json failed: %s" err
    | Ok r ->
      Alcotest.(check (float 1e-9)) "period" 2.0 r.Telemetry.r_period;
      Alcotest.(check (list (float 1e-9))) "times" (Telemetry.times tel)
        r.Telemetry.r_times;
      Alcotest.(check int) "samples_total" (Telemetry.samples_total tel)
        r.Telemetry.r_samples_total;
      Alcotest.(check (list string)) "gauge names" [ "half"; "n" ]
        (List.map fst r.Telemetry.r_gauges);
      List.iter
        (fun (name, xs) ->
          Alcotest.(check (list (float 1e-9))) name (Telemetry.series tel name) xs)
        r.Telemetry.r_gauges)

let test_telemetry_of_json_error_paths () =
  let open Atum_util.Json in
  let expect_error label json =
    match Telemetry.of_json json with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: expected Error, got Ok" label
  in
  expect_error "non-object" (List []);
  expect_error "missing fields" (Obj []);
  expect_error "wrong schema version"
    (Obj
       [
         ("schema_version", Int (Telemetry.schema_version + 1));
         ("period_s", Float 1.0);
         ("samples_total", Int 0);
         ("times", List []);
         ("gauges", Obj []);
       ]);
  expect_error "gauge series length mismatch"
    (Obj
       [
         ("schema_version", Int Telemetry.schema_version);
         ("period_s", Float 1.0);
         ("samples_total", Int 2);
         ("times", List [ Float 1.0; Float 2.0 ]);
         ("gauges", Obj [ ("x", List [ Float 0.0 ]) ]);
       ]);
  expect_error "non-numeric sample"
    (Obj
       [
         ("schema_version", Int Telemetry.schema_version);
         ("period_s", Float 1.0);
         ("samples_total", Int 1);
         ("times", List [ Float 1.0 ]);
         ("gauges", Obj [ ("x", List [ String "one" ]) ]);
       ])

let test_telemetry_csv () =
  let e = Engine.create () in
  let tel = Telemetry.create ~period:1.0 e in
  Telemetry.register tel "b" (fun () -> 2.0);
  Telemetry.register tel "a" (fun () -> 1.0);
  Telemetry.start tel;
  Engine.run ~until:2.5 e;
  let lines = String.split_on_char '\n' (String.trim (Telemetry.to_csv tel)) in
  match lines with
  | header :: rows ->
    Alcotest.(check string) "header sorted by gauge name" "time,a,b" header;
    Alcotest.(check int) "one row per sample" 2 (List.length rows)
  | [] -> Alcotest.fail "empty csv"

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let test_trace_disabled_noop () =
  let t = Trace.create ~capacity:8 () in
  Trace.emit t ~time:1.0 ~kind:"k" ();
  Alcotest.(check int) "nothing recorded" 0 (Trace.total t);
  Trace.set_enabled t true;
  Trace.emit t ~time:2.0 ~kind:"k" ();
  Alcotest.(check int) "recorded once enabled" 1 (Trace.total t)

let test_trace_ring_wraparound () =
  let t = Trace.create ~capacity:4 ~enabled:true () in
  for i = 1 to 10 do
    Trace.emit t ~time:(float_of_int i) ~kind:"tick" ~node:i ()
  done;
  Alcotest.(check int) "total" 10 (Trace.total t);
  Alcotest.(check int) "length capped" 4 (Trace.length t);
  Alcotest.(check int) "dropped" 6 (Trace.dropped t);
  let nodes = List.map (fun (ev : Trace.event) -> ev.Trace.node) (Trace.events t) in
  Alcotest.(check (list int)) "oldest-first tail" [ 7; 8; 9; 10 ] nodes;
  (match Trace.to_json t with
  | Atum_util.Json.Obj fields ->
      Alcotest.(check bool) "json dropped" true
        (List.assoc_opt "dropped" fields = Some (Atum_util.Json.Int 6))
  | _ -> Alcotest.fail "trace json not an object");
  Trace.clear t;
  Alcotest.(check int) "cleared" 0 (Trace.length t)

let test_trace_iter_fold_dropped_kinds () =
  let t = Trace.create ~capacity:4 ~enabled:true () in
  for i = 1 to 6 do
    Trace.emit t ~time:(float_of_int i) ~kind:"tick" ~node:i ()
  done;
  for i = 7 to 10 do
    Trace.emit t ~time:(float_of_int i) ~kind:"tock" ~node:i ()
  done;
  (* iter visits oldest-first, in the same order [events] returns. *)
  let seen = ref [] in
  Trace.iter t (fun ev -> seen := ev :: !seen);
  Alcotest.(check bool) "iter matches events" true (List.rev !seen = Trace.events t);
  Alcotest.(check (list int)) "iter oldest-first" [ 7; 8; 9; 10 ]
    (List.rev_map (fun (ev : Trace.event) -> ev.Trace.node) !seen);
  Alcotest.(check int) "fold counts retained" 4
    (Trace.fold t ~init:0 ~f:(fun acc _ -> acc + 1));
  (* The six overwritten events were all ticks. *)
  Alcotest.(check (list (pair string int))) "dropped by kind" [ ("tick", 6) ]
    (Trace.dropped_by_kind t);
  (match Trace.to_json t with
  | Atum_util.Json.Obj fields ->
      Alcotest.(check bool) "json dropped_by_kind" true
        (List.assoc_opt "dropped_by_kind" fields
        = Some (Atum_util.Json.Obj [ ("tick", Atum_util.Json.Int 6) ]))
  | _ -> Alcotest.fail "trace json not an object");
  Trace.clear t;
  Alcotest.(check (list (pair string int))) "clear resets drop counts" []
    (Trace.dropped_by_kind t)

let test_trace_correlation_fields () =
  let t = Trace.create ~capacity:8 ~enabled:true () in
  Trace.emit t ~time:1.0 ~kind:"bcast.hop" ~node:3 ~bid:7 ~span:2 ~parent:1 ~cycle:0 ();
  Trace.emit t ~time:2.0 ~kind:"plain" ();
  (match Trace.events t with
  | [ hop; plain ] ->
      Alcotest.(check int) "bid" 7 hop.Trace.bid;
      Alcotest.(check int) "span" 2 hop.Trace.span;
      Alcotest.(check int) "parent" 1 hop.Trace.parent;
      Alcotest.(check int) "cycle" 0 hop.Trace.cycle;
      Alcotest.(check int) "bid defaults to -1" (-1) plain.Trace.bid;
      Alcotest.(check int) "span defaults to -1" (-1) plain.Trace.span
  | _ -> Alcotest.fail "expected two events");
  (* JSON form: correlation keys present when set, omitted when unset. *)
  match Trace.to_json t with
  | Atum_util.Json.Obj fields -> (
      match List.assoc_opt "events" fields with
      | Some (Atum_util.Json.List [ hop; plain ]) ->
          let has key j = Atum_util.Json.member key j <> None in
          Alcotest.(check bool) "hop has bid/span/parent/cycle" true
            (has "bid" hop && has "span" hop && has "parent" hop && has "cycle" hop);
          Alcotest.(check bool) "plain omits them" true
            (not (has "bid" plain || has "span" plain || has "parent" plain
                 || has "cycle" plain))
      | _ -> Alcotest.fail "unexpected events shape")
  | _ -> Alcotest.fail "trace json not an object"

let test_trace_engine_emits () =
  let e = Engine.create () in
  let t = Trace.create ~enabled:true () in
  Engine.set_trace e t;
  Engine.schedule e ~delay:1.0 (fun () -> ());
  Engine.run e;
  let kinds = List.map (fun (ev : Trace.event) -> ev.Trace.kind) (Trace.events t) in
  Alcotest.(check bool) "engine.run recorded" true (List.mem "engine.run" kinds)

let () =
  Alcotest.run "sim"
    [
      ( "engine",
        [
          Alcotest.test_case "ordering" `Quick test_engine_ordering;
          Alcotest.test_case "fifo ties" `Quick test_engine_same_time_fifo;
          Alcotest.test_case "nested" `Quick test_engine_nested_scheduling;
          Alcotest.test_case "until" `Quick test_engine_until;
          Alcotest.test_case "until past drained queue" `Quick
            test_engine_until_empty_queue_advances_clock;
          Alcotest.test_case "stop" `Quick test_engine_stop;
          Alcotest.test_case "max_events" `Quick test_engine_max_events;
          Alcotest.test_case "negative delay" `Quick test_engine_negative_delay_clamped;
          Alcotest.test_case "every: no accumulation drift" `Quick
            test_engine_every_no_drift;
          Alcotest.test_case "every: bad period" `Quick test_engine_every_rejects_bad_period;
          Alcotest.test_case "profile accounting" `Quick test_engine_profile_accounting;
        ] );
      ( "network",
        [
          Alcotest.test_case "delivery" `Quick test_network_delivery;
          Alcotest.test_case "latency" `Quick test_network_latency_positive;
          Alcotest.test_case "unregistered" `Quick test_network_unregistered_dropped;
          Alcotest.test_case "partition" `Quick test_network_partition;
          Alcotest.test_case "crash" `Quick test_network_crash_isolates;
          Alcotest.test_case "crashed pair" `Quick test_network_two_crashed_nodes_cannot_talk;
          Alcotest.test_case "loss" `Quick test_network_drop_probability;
          Alcotest.test_case "wan distribution" `Quick test_network_wan_latency_distribution;
          Alcotest.test_case "mid-flight partition" `Quick test_network_mid_flight_partition;
          Alcotest.test_case "fixed latency" `Quick test_network_fixed_latency;
          Alcotest.test_case "node capacity queues" `Quick test_network_node_capacity_queues;
          Alcotest.test_case "capacity idle reset" `Quick test_network_capacity_idle_resets;
          Alcotest.test_case "drops don't charge capacity (pre-send)" `Quick
            test_network_capacity_not_charged_for_presend_drops;
          Alcotest.test_case "drops don't charge capacity (arrival)" `Quick
            test_network_capacity_not_charged_for_arrival_drops;
          Alcotest.test_case "drop reason counters" `Quick test_network_drop_reason_counters;
        ] );
      ( "rounds",
        [
          Alcotest.test_case "ticks" `Quick test_rounds_ticks;
          Alcotest.test_case "subscriber order" `Quick test_rounds_subscriber_order;
          Alcotest.test_case "unsubscribe" `Quick test_rounds_unsubscribe;
          Alcotest.test_case "stop" `Quick test_rounds_stop;
        ] );
      ( "bulk",
        [
          Alcotest.test_case "amortized overhead" `Quick test_bulk_latency_per_mb_decreases;
          Alcotest.test_case "parallel pull" `Quick test_bulk_parallel_beats_single_for_big_files;
          Alcotest.test_case "download cap" `Quick test_bulk_download_caps_aggregate;
          Alcotest.test_case "hash parallelism" `Quick test_bulk_hash_parallelism;
          Alcotest.test_case "no sources" `Quick test_bulk_no_sources_raises;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_metrics_counters;
          Alcotest.test_case "series" `Quick test_metrics_series;
          Alcotest.test_case "clear" `Quick test_metrics_clear;
          Alcotest.test_case "merge" `Quick test_metrics_merge;
          Alcotest.test_case "json roundtrip" `Quick test_metrics_json_roundtrip;
          Alcotest.test_case "json summary only" `Quick test_metrics_json_summary_only;
          Alcotest.test_case "merge + of_json roundtrip" `Quick
            test_metrics_merge_of_json_roundtrip;
          Alcotest.test_case "of_json error paths" `Quick test_metrics_of_json_error_paths;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "samples gauges" `Quick test_telemetry_samples_gauges;
          Alcotest.test_case "ring wraparound" `Quick test_telemetry_ring_wraparound;
          Alcotest.test_case "stop + late register" `Quick
            test_telemetry_stop_and_late_register;
          Alcotest.test_case "json roundtrip" `Quick test_telemetry_json_roundtrip;
          Alcotest.test_case "of_json error paths" `Quick
            test_telemetry_of_json_error_paths;
          Alcotest.test_case "csv" `Quick test_telemetry_csv;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled noop" `Quick test_trace_disabled_noop;
          Alcotest.test_case "ring wraparound" `Quick test_trace_ring_wraparound;
          Alcotest.test_case "iter/fold + dropped kinds" `Quick
            test_trace_iter_fold_dropped_kinds;
          Alcotest.test_case "correlation fields" `Quick test_trace_correlation_fields;
          Alcotest.test_case "engine emits" `Quick test_trace_engine_emits;
        ] );
    ]
