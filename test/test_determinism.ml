(* Same-seed determinism acceptance test (the property the atum-lint
   rules defend): two in-process runs of the same churn workload with
   one seed must produce byte-identical structured traces and metric
   snapshots.  Any wall-clock read, global-Random draw or
   bucket-order-dependent traversal on an observable path breaks
   this. *)

module Atum = Atum_core.Atum
module Json = Atum_util.Json
module W = Atum_workload

let churn_run seed =
  let built = W.Builder.grow ~trace:true ~n:24 ~seed () in
  let probe = W.Churn.probe built ~rate_per_min:6.0 ~duration:120.0 ~seed:(seed + 7) in
  let atum = built.W.Builder.atum in
  ( probe,
    Json.to_string (Atum_sim.Metrics.to_json (Atum.metrics atum)),
    Json.to_string (Atum_sim.Trace.to_json (Atum.trace atum)) )

let test_churn_same_seed () =
  let p1, m1, t1 = churn_run 42 in
  let p2, m2, t2 = churn_run 42 in
  Alcotest.(check bool) "trace non-trivial" true (String.length t1 > 1000);
  Alcotest.(check int) "joins started agree" p1.W.Churn.joins_started p2.W.Churn.joins_started;
  Alcotest.(check int) "joins completed agree" p1.W.Churn.joins_completed
    p2.W.Churn.joins_completed;
  Alcotest.(check int) "size after agrees" p1.W.Churn.size_after p2.W.Churn.size_after;
  Alcotest.(check bool) "metrics byte-identical" true (String.equal m1 m2);
  Alcotest.(check bool) "trace byte-identical" true (String.equal t1 t2)

let test_telemetry_same_seed () =
  (* The telemetry contract: gauge sampling only reads state, so two
     same-seed runs export byte-identical ATUM_timeseries payloads
     (series AND engine profile — ATUM_PROF_WALL is unset here, so
     wall self-times are identically zero). *)
  let run seed =
    let built = W.Builder.grow ~telemetry_period:10.0 ~n:24 ~seed () in
    ignore (W.Churn.probe built ~rate_per_min:6.0 ~duration:120.0 ~seed:(seed + 7));
    let atum = built.W.Builder.atum in
    match Atum.telemetry atum with
    | None -> Alcotest.fail "Builder.grow should attach telemetry by default"
    | Some tel ->
      ( Json.to_string (Atum_sim.Telemetry.to_json tel),
        Atum_sim.Telemetry.to_csv tel,
        Json.to_string (Atum_sim.Engine.profile_json (Atum.engine atum)) )
  in
  let j1, c1, p1 = run 42 in
  let j2, c2, p2 = run 42 in
  Alcotest.(check bool) "timeseries non-trivial" true (String.length j1 > 500);
  Alcotest.(check bool) "timeseries byte-identical" true (String.equal j1 j2);
  Alcotest.(check bool) "csv byte-identical" true (String.equal c1 c2);
  Alcotest.(check bool) "engine profile byte-identical" true (String.equal p1 p2);
  let j3, _, _ = run 43 in
  Alcotest.(check bool) "different seed diverges" false (String.equal j1 j3)

let chaos_run seed =
  (* The chaos pipeline draws on every moving part at once — fault
     tasks, adversary drivers, convergence polling — so its byte
     identity is the strongest determinism statement the repo makes. *)
  let built = W.Builder.grow ~trace:true ~n:24 ~seed () in
  let r = W.Resilience.run ~messages_per_phase:4 ~attackers:2 ~drain:60.0 built ~seed () in
  let atum = built.W.Builder.atum in
  ( Json.to_string (W.Resilience.to_json r),
    Json.to_string (Atum_sim.Metrics.to_json (Atum.metrics atum)),
    Json.to_string (Atum_sim.Trace.to_json (Atum.trace atum)) )

let test_chaos_same_seed () =
  let r1, m1, t1 = chaos_run 42 in
  let r2, m2, t2 = chaos_run 42 in
  Alcotest.(check bool) "trace non-trivial" true (String.length t1 > 1000);
  Alcotest.(check bool) "resilience byte-identical" true (String.equal r1 r2);
  Alcotest.(check bool) "metrics byte-identical" true (String.equal m1 m2);
  Alcotest.(check bool) "trace byte-identical" true (String.equal t1 t2);
  let r3, _, _ = chaos_run 43 in
  Alcotest.(check bool) "different seed diverges" false (String.equal r1 r3)

let test_churn_seed_sensitivity () =
  (* Sanity: the equality above is not vacuous — a different seed must
     visibly change the run. *)
  let _, m1, t1 = churn_run 42 in
  let _, m2, t2 = churn_run 43 in
  Alcotest.(check bool) "different seeds diverge" false
    (String.equal m1 m2 && String.equal t1 t2)

let () =
  Alcotest.run "determinism"
    [
      ( "churn",
        [
          Alcotest.test_case "same-seed byte-identical" `Slow test_churn_same_seed;
          Alcotest.test_case "telemetry byte-identical" `Slow test_telemetry_same_seed;
          Alcotest.test_case "chaos byte-identical" `Slow test_chaos_same_seed;
          Alcotest.test_case "seed sensitivity" `Slow test_churn_seed_sensitivity;
        ] );
    ]
