(* Same-seed determinism acceptance test (the property the atum-lint
   rules defend): two in-process runs of the same churn workload with
   one seed must produce byte-identical structured traces and metric
   snapshots.  Any wall-clock read, global-Random draw or
   bucket-order-dependent traversal on an observable path breaks
   this. *)

module Atum = Atum_core.Atum
module Json = Atum_util.Json
module W = Atum_workload

let churn_run seed =
  let built = W.Builder.grow ~trace:true ~n:24 ~seed () in
  let probe = W.Churn.probe built ~rate_per_min:6.0 ~duration:120.0 ~seed:(seed + 7) in
  let atum = built.W.Builder.atum in
  ( probe,
    Json.to_string (Atum_sim.Metrics.to_json (Atum.metrics atum)),
    Json.to_string (Atum_sim.Trace.to_json (Atum.trace atum)) )

let test_churn_same_seed () =
  let p1, m1, t1 = churn_run 42 in
  let p2, m2, t2 = churn_run 42 in
  Alcotest.(check bool) "trace non-trivial" true (String.length t1 > 1000);
  Alcotest.(check int) "joins started agree" p1.W.Churn.joins_started p2.W.Churn.joins_started;
  Alcotest.(check int) "joins completed agree" p1.W.Churn.joins_completed
    p2.W.Churn.joins_completed;
  Alcotest.(check int) "size after agrees" p1.W.Churn.size_after p2.W.Churn.size_after;
  Alcotest.(check bool) "metrics byte-identical" true (String.equal m1 m2);
  Alcotest.(check bool) "trace byte-identical" true (String.equal t1 t2)

let test_churn_seed_sensitivity () =
  (* Sanity: the equality above is not vacuous — a different seed must
     visibly change the run. *)
  let _, m1, t1 = churn_run 42 in
  let _, m2, t2 = churn_run 43 in
  Alcotest.(check bool) "different seeds diverge" false
    (String.equal m1 m2 && String.equal t1 t2)

let () =
  Alcotest.run "determinism"
    [
      ( "churn",
        [
          Alcotest.test_case "same-seed byte-identical" `Slow test_churn_same_seed;
          Alcotest.test_case "seed sensitivity" `Slow test_churn_seed_sensitivity;
        ] );
    ]
