open Atum_workload
module Atum = Atum_core.Atum
module Params = Atum_core.Params

let small_params seed =
  { Params.default with Params.hc = 3; rwl = 4; round_duration = 0.5; seed }

(* ------------------------------------------------------------------ *)
(* Params                                                              *)
(* ------------------------------------------------------------------ *)

let test_params_validate_default () =
  Alcotest.(check bool) "default valid" true (Params.validate Params.default = Ok ());
  Alcotest.(check bool) "async valid" true (Params.validate Params.default_async = Ok ())

let test_params_validate_rejects () =
  let bad fields =
    match Params.validate fields with Ok () -> false | Error _ -> true
  in
  Alcotest.(check bool) "hc=0" true (bad { Params.default with Params.hc = 0 });
  Alcotest.(check bool) "rwl=0" true (bad { Params.default with Params.rwl = 0 });
  Alcotest.(check bool) "gmax<gmin" true (bad { Params.default with Params.gmax = 2; gmin = 4 });
  Alcotest.(check bool) "split remerges" true
    (bad { Params.default with Params.gmin = 6; gmax = 8 });
  Alcotest.(check bool) "round<=0" true
    (bad { Params.default with Params.round_duration = 0.0 });
  Alcotest.(check bool) "eviction < heartbeat" true
    (bad { Params.default with Params.eviction_timeout = 1.0; heartbeat_period = 10.0 })

let test_params_sizing_monotone () =
  let rwl n = (Params.for_system_size n).Params.rwl in
  Alcotest.(check bool) "bigger systems need longer walks" true (rwl 2000 >= rwl 20)

(* ------------------------------------------------------------------ *)
(* Builder                                                             *)
(* ------------------------------------------------------------------ *)

let test_builder_grows_exact () =
  let b = Builder.grow ~params:(small_params 1) ~n:30 ~seed:1 () in
  Alcotest.(check int) "exact size" 30 (Atum.size b.Builder.atum);
  Alcotest.(check bool) "consistent" true
    (Atum.check_consistency b.Builder.atum = Ok ())

let test_builder_places_byzantine () =
  let b = Builder.grow ~params:(small_params 2) ~n:20 ~byzantine:3 ~seed:2 () in
  Alcotest.(check int) "three byzantine" 3 (List.length b.Builder.byzantine);
  Alcotest.(check bool) "bootstrap stays correct" true
    (not (List.mem b.Builder.first b.Builder.byzantine));
  Alcotest.(check int) "correct members" 17 (List.length (Builder.correct_members b))

(* ------------------------------------------------------------------ *)
(* Growth (Fig 6 / Fig 13 machinery)                                   *)
(* ------------------------------------------------------------------ *)

let test_growth_reaches_target () =
  let r = Growth.run ~params:(small_params 3) ~target:40 ~seed:3 () in
  Alcotest.(check bool) "reached" true r.Growth.reached_target;
  (match r.Growth.consistency with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("registry inconsistent after growth: " ^ e));
  Alcotest.(check bool) "curve monotone" true
    (let sizes = List.map (fun (p : Growth.point) -> p.Growth.size) r.Growth.curve in
     List.sort compare sizes = sizes)

let test_growth_counts_exchanges () =
  let r = Growth.run ~params:(small_params 4) ~target:40 ~seed:4 () in
  Alcotest.(check bool) "exchanges recorded" true
    (r.Growth.exchanges_completed + r.Growth.exchanges_suppressed > 0);
  Alcotest.(check bool) "completion rate in [0,1]" true
    (r.Growth.completion_rate >= 0.0 && r.Growth.completion_rate <= 1.0)

let test_growth_faster_rate_more_suppression () =
  (* Fig 13's claim: higher join rates suppress more exchanges. *)
  let rate r =
    (Growth.run ~params:(small_params 5) ~join_rate_per_min:r ~target:60 ~seed:5 ())
      .Growth.completion_rate
  in
  let slow = rate 0.05 and fast = rate 0.5 in
  Alcotest.(check bool)
    (Printf.sprintf "slow %.3f >= fast %.3f - 0.05" slow fast)
    true
    (slow >= fast -. 0.05)

(* ------------------------------------------------------------------ *)
(* Churn (Fig 7 machinery)                                             *)
(* ------------------------------------------------------------------ *)

let test_churn_probe_gentle_rate_sustained () =
  let b = Builder.grow ~params:(small_params 6) ~n:30 ~seed:6 () in
  let p = Churn.probe b ~rate_per_min:3.0 ~duration:120.0 ~seed:6 in
  Alcotest.(check bool) "gentle churn sustained" true p.Churn.sustained;
  Alcotest.(check bool) "size held" true (p.Churn.size_after >= 27);
  match p.Churn.consistency with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("registry inconsistent after churn: " ^ e)

let test_churn_ladder_returns_probes () =
  let b = Builder.grow ~params:(small_params 7) ~n:24 ~seed:7 () in
  let best, probes = Churn.max_sustained ~rates:[ 2.0; 4.0 ] ~duration:60.0 b ~seed:7 in
  Alcotest.(check bool) "probes recorded" true (List.length probes >= 1);
  Alcotest.(check bool) "best is one of the rates or zero" true
    (List.mem best [ 0.0; 2.0; 4.0 ])

(* ------------------------------------------------------------------ *)
(* Latency experiment (Fig 8 machinery)                                *)
(* ------------------------------------------------------------------ *)

let test_latency_exp_full_delivery () =
  let b = Builder.grow ~params:(small_params 8) ~n:30 ~seed:8 () in
  let r = Latency_exp.run b ~messages:5 ~gap:3.0 ~seed:8 in
  Alcotest.(check int) "every correct node delivers every message"
    r.Latency_exp.expected_deliveries r.Latency_exp.observed_deliveries;
  Alcotest.(check int) "samples" r.Latency_exp.observed_deliveries
    (List.length r.Latency_exp.latencies)

let test_latency_exp_byzantine_no_decay () =
  (* §6.1.3's headline: latency unchanged with a Byzantine minority. *)
  let clean =
    let b = Builder.grow ~params:(small_params 9) ~n:30 ~seed:9 () in
    Latency_exp.run b ~messages:5 ~gap:3.0 ~seed:9
  in
  let dirty =
    let b = Builder.grow ~params:(small_params 9) ~n:33 ~byzantine:3 ~seed:9 () in
    Latency_exp.run b ~messages:5 ~gap:3.0 ~seed:9
  in
  Alcotest.(check bool) "clean full delivery" true (clean.Latency_exp.delivery_fraction > 0.999);
  Alcotest.(check bool) "dirty full delivery to correct nodes" true
    (dirty.Latency_exp.delivery_fraction > 0.999);
  let p90 r = Atum_util.Stats.percentile r.Latency_exp.latencies 90.0 in
  Alcotest.(check bool)
    (Printf.sprintf "p90 %.2f vs %.2f: no decay" (p90 dirty) (p90 clean))
    true
    (p90 dirty <= p90 clean +. 2.0)

let test_latency_cdf_shape () =
  let b = Builder.grow ~params:(small_params 10) ~n:20 ~seed:10 () in
  let r = Latency_exp.run b ~messages:3 ~gap:3.0 ~seed:10 in
  let cdf = Latency_exp.cdf r in
  Alcotest.(check bool) "cdf ends at 1" true
    (match List.rev cdf with (_, f) :: _ -> abs_float (f -. 1.0) < 1e-9 | [] -> false);
  Alcotest.(check bool) "cdf nondecreasing" true
    (let fs = List.map snd cdf in
     List.sort compare fs = fs)

(* ------------------------------------------------------------------ *)
(* AShare / AStream experiments                                        *)
(* ------------------------------------------------------------------ *)

let test_fig9_shape () =
  let rows = Ashare_exp.fig9 ~sizes_mb:[ 2.0; 512.0 ] ~seed:11 () in
  match rows with
  | [ small; big ] ->
    Alcotest.(check bool) "nfs wins small files" true
      (small.Ashare_exp.nfs <= small.Ashare_exp.simple);
    Alcotest.(check bool) "parallel wins big files by >=1.5x" true
      (big.Ashare_exp.nfs /. big.Ashare_exp.parallel >= 1.5);
    Alcotest.(check bool) "per-MB latency amortizes" true
      (big.Ashare_exp.nfs < small.Ashare_exp.nfs)
  | _ -> Alcotest.fail "expected two rows"

let test_fig10_shape () =
  let rows = Ashare_exp.byzantine_reads ~n:24 ~files:39 ~byzantine:5 ~rho:8 ~seed:12 in
  Alcotest.(check bool) "rows produced" true (List.length rows >= 10);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "faulty >= clean at r=%d" r.Ashare_exp.replicas)
        true
        (r.Ashare_exp.faulty_latency_per_mb >= r.Ashare_exp.clean_latency_per_mb -. 1e-6))
    rows

let test_fig12_shape () =
  let rows = Astream_exp.run ~sizes:[ 16; 40 ] ~seed:13 () in
  match rows with
  | [ small; big ] ->
    Alcotest.(check bool) "positive latencies" true
      (small.Astream_exp.single_ms > 0.0 && big.Astream_exp.double_ms > 0.0);
    Alcotest.(check bool) "double <= single (big system)" true
      (big.Astream_exp.double_ms <= big.Astream_exp.single_ms +. 1.0)
  | _ -> Alcotest.fail "expected two rows"

(* ------------------------------------------------------------------ *)
(* Determinism                                                         *)
(* ------------------------------------------------------------------ *)

let test_runs_are_deterministic () =
  (* Every experiment is seeded; the same seed must reproduce the same
     simulation bit for bit. *)
  let run () =
    let r = Growth.run ~params:(small_params 99) ~target:30 ~seed:99 () in
    ( List.map (fun (p : Growth.point) -> (p.Growth.time, p.Growth.size)) r.Growth.curve,
      r.Growth.exchanges_completed,
      r.Growth.exchanges_suppressed,
      r.Growth.duration )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical runs" true (a = b)

let test_latency_deterministic () =
  let run () =
    let b = Builder.grow ~params:(small_params 98) ~n:16 ~seed:98 () in
    (Latency_exp.run b ~messages:3 ~gap:3.0 ~seed:98).Latency_exp.latencies
  in
  Alcotest.(check bool) "identical latency samples" true (run () = run ())

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let test_ablation_forward_policies_tradeoff () =
  let rows = Ablation.forward_policies ~n:60 ~messages:6 ~seed:14 () in
  match rows with
  | [ flood; two; single ] ->
    Alcotest.(check bool) "all deliver" true
      (flood.Ablation.delivery_fraction > 0.999
      && two.Ablation.delivery_fraction > 0.999
      && single.Ablation.delivery_fraction > 0.999);
    Alcotest.(check bool) "flood fastest" true
      (flood.Ablation.p50_latency <= single.Ablation.p50_latency +. 1e-6);
    Alcotest.(check bool) "single cheapest" true
      (single.Ablation.messages_per_broadcast <= flood.Ablation.messages_per_broadcast)
  | _ -> Alcotest.fail "expected three rows"

let test_ablation_shuffling_disperses () =
  (* Statistical at this size: a single seed's draw can go either way,
     so require the direction on a mean over a few seeds. *)
  let mean shuffling =
    let seeds = [ 15; 16; 17 ] in
    List.fold_left
      (fun acc seed ->
        let r = Ablation.join_leave_attack ~n:60 ~attackers:6 ~rounds:8 ~shuffling ~seed () in
        acc +. r.Ablation.concentration)
      0.0 seeds
    /. float_of_int (List.length seeds)
  in
  let on = mean true and off = mean false in
  Alcotest.(check bool)
    (Printf.sprintf "mean concentration on=%.2f <= off=%.2f + slack" on off)
    true
    (on <= off +. 0.15)

(* ------------------------------------------------------------------ *)
(* Bench JSON artifacts                                                *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_bench_json_deterministic () =
  (* Acceptance gate for the observability pipeline: two same-seed
     quick runs must write byte-identical BENCH_fig6.json (wall time
     is zeroed by ATUM_BENCH_JSON_CANON). *)
  (* This test binary lives in _build/default/test/, the bench harness
     in _build/default/bench/ — resolve it relative to ourselves so the
     test works under both [dune runtest] and [dune exec]. *)
  let exe =
    Filename.concat
      (Filename.dirname (Filename.dirname Sys.executable_name))
      "bench/main.exe"
  in
  if not (Sys.file_exists exe) then
    Alcotest.fail (Printf.sprintf "bench executable missing at %s" exe);
  let run dir =
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let cmd =
      Printf.sprintf
        "ATUM_BENCH_SCALE=quick ATUM_BENCH_JSON_CANON=1 ATUM_BENCH_JSON=%s %s fig6 \
         > /dev/null"
        (Filename.quote dir) (Filename.quote exe)
    in
    Alcotest.(check int) ("exit status of " ^ cmd) 0 (Sys.command cmd);
    read_file (Filename.concat dir "BENCH_fig6.json")
  in
  let a = run "bench_json_a" and b = run "bench_json_b" in
  Alcotest.(check bool) "artifact non-trivial" true (String.length a > 200);
  Alcotest.(check bool) "byte-identical across same-seed runs" true (String.equal a b);
  match Atum_util.Json.of_string a with
  | Error e -> Alcotest.failf "artifact is not valid JSON: %s" e
  | Ok j ->
      Alcotest.(check bool) "fig tagged" true
        (Atum_util.Json.member "fig" j = Some (Atum_util.Json.String "fig6"));
      Alcotest.(check bool) "has rows" true (Atum_util.Json.member "rows" j <> None)

(* ------------------------------------------------------------------ *)
(* Analyzer                                                            *)
(* ------------------------------------------------------------------ *)

let test_analyze_of_trace () =
  let b = Builder.grow ~params:(small_params 20) ~trace:true ~monitor:true ~n:20 ~seed:20 () in
  let r = Latency_exp.run b ~messages:4 ~gap:3.0 ~seed:20 in
  Alcotest.(check bool) "full delivery" true (r.Latency_exp.delivery_fraction > 0.999);
  let a =
    Analyze.of_trace (Atum.trace b.Builder.atum) ~metrics:(Atum.metrics b.Builder.atum)
  in
  (* The broadcast-phase events are the newest in the ring, so even if
     the growth phase rotated out, every tree root survives. *)
  Alcotest.(check int) "one tree per broadcast" 4 (List.length a.Analyze.trees);
  Alcotest.(check int) "no orphan bids" 0 a.Analyze.orphan_bids;
  List.iter
    (fun (tr : Analyze.tree) ->
      Alcotest.(check bool)
        (Printf.sprintf "tree %d delivered everywhere" tr.Analyze.bid)
        true
        (tr.Analyze.deliveries = Atum.size b.Builder.atum);
      Alcotest.(check bool) "origin known" true (tr.Analyze.origin >= 0);
      Alcotest.(check bool) "root vgroup known" true (tr.Analyze.root_vg >= 0))
    a.Analyze.trees;
  Alcotest.(check bool) "gossip went beyond the origin vgroup" true
    (List.exists (fun (d, _) -> d >= 1) a.Analyze.hop_hist);
  Alcotest.(check bool) "latency percentiles present" true
    (List.mem_assoc "p50" a.Analyze.latency_p);
  Alcotest.(check bool) "saga stats include joins" true
    (List.exists (fun (s : Analyze.saga_stats) -> s.Analyze.saga = "join") a.Analyze.sagas);
  Alcotest.(check int) "healthy run: no violations" 0 a.Analyze.violations_total;
  (* Violation evidence in the trace must be surfaced even when the
     corresponding metrics counter is gone — Latency_exp cleared the
     metrics above, exactly the situation the merge covers. *)
  Atum_sim.Trace.emit (Atum.trace b.Builder.atum) ~time:0.0
    ~kind:"monitor.violation.vg_oversize" ();
  let a2 =
    Analyze.of_trace (Atum.trace b.Builder.atum) ~metrics:(Atum.metrics b.Builder.atum)
  in
  Alcotest.(check (list (pair string int))) "trace-only violation counted"
    [ ("vg_oversize", 1) ] a2.Analyze.violations

let test_cli_broadcast_then_analyze () =
  (* End-to-end artifact pipeline: [atum-cli broadcast --json] writes
     ATUM_broadcast.json, [atum-cli analyze --json] reconstructs the
     dissemination trees from it with zero invariant violations. *)
  let exe =
    Filename.concat
      (Filename.dirname (Filename.dirname Sys.executable_name))
      "bin/atum_cli.exe"
  in
  if not (Sys.file_exists exe) then
    Alcotest.fail (Printf.sprintf "cli executable missing at %s" exe);
  let dir = "cli_analyze" in
  let sh cmd = Alcotest.(check int) ("exit status of " ^ cmd) 0 (Sys.command cmd) in
  sh
    (Printf.sprintf "%s broadcast -n 24 -m 6 --seed 5 --json --out-dir %s > /dev/null"
       (Filename.quote exe) (Filename.quote dir));
  let artifact = Filename.concat dir "ATUM_broadcast.json" in
  sh
    (Printf.sprintf "%s analyze %s --json --out-dir %s > /dev/null" (Filename.quote exe)
       (Filename.quote artifact) (Filename.quote dir));
  match Atum_util.Json.of_string (read_file (Filename.concat dir "ATUM_analyze.json")) with
  | Error e -> Alcotest.failf "ATUM_analyze.json is not valid JSON: %s" e
  | Ok j ->
      let int_member key =
        match Atum_util.Json.member key j with
        | Some (Atum_util.Json.Int n) -> n
        | _ -> Alcotest.failf "missing int member %s" key
      in
      Alcotest.(check bool) "at least one tree" true (int_member "trees" >= 1);
      Alcotest.(check int) "zero violations" 0 (int_member "violations_total");
      Alcotest.(check bool) "cmd tagged" true
        (Atum_util.Json.member "cmd" j = Some (Atum_util.Json.String "analyze"))

let test_cli_churn_telemetry_and_report () =
  (* Acceptance gate for the telemetry pipeline: a default [churn
     --json] run emits ATUM_timeseries.json with a healthy set of
     gauges, two same-seed runs write it byte-identically (same
     cmdline, same out-dir, so build_info matches too), and [atum-cli
     report] renders it. *)
  let module Json = Atum_util.Json in
  let exe =
    Filename.concat
      (Filename.dirname (Filename.dirname Sys.executable_name))
      "bin/atum_cli.exe"
  in
  if not (Sys.file_exists exe) then
    Alcotest.fail (Printf.sprintf "cli executable missing at %s" exe);
  let dir = "cli_telemetry" in
  let sh cmd = Alcotest.(check int) ("exit status of " ^ cmd) 0 (Sys.command cmd) in
  let churn () =
    sh
      (Printf.sprintf "%s churn -n 24 --seed 5 -d 120 --json --out-dir %s > /dev/null"
         (Filename.quote exe) (Filename.quote dir));
    read_file (Filename.concat dir "ATUM_timeseries.json")
  in
  let a = churn () in
  let b = churn () in
  Alcotest.(check bool) "same-seed byte-identical timeseries" true (String.equal a b);
  (match Json.of_string a with
  | Error e -> Alcotest.failf "ATUM_timeseries.json is not valid JSON: %s" e
  | Ok j ->
    Alcotest.(check bool) "schema versioned" true
      (Json.member "schema_version" j <> None);
    Alcotest.(check bool) "build_info present" true (Json.member "build_info" j <> None);
    (match Json.member "timeseries" j with
    | Some ts -> (
      match Json.member "gauges" ts with
      | Some (Json.Obj gauges) ->
        Alcotest.(check bool)
          (Printf.sprintf "%d gauges >= 8" (List.length gauges))
          true
          (List.length gauges >= 8)
      | _ -> Alcotest.fail "timeseries.gauges missing")
    | None -> Alcotest.fail "timeseries section missing");
    match Json.member "profile" j with
    | Some p ->
      Alcotest.(check bool) "profile has labels" true (Json.member "labels" p <> None)
    | None -> Alcotest.fail "profile section missing");
  let out = Filename.concat dir "report.txt" in
  sh
    (Printf.sprintf "%s report %s > %s" (Filename.quote exe)
       (Filename.quote (Filename.concat dir "ATUM_timeseries.json"))
       (Filename.quote out));
  let rendered = read_file out in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "report names a gauge" true (contains "system.size" rendered);
  Alcotest.(check bool) "report renders sparklines" true (contains "\xe2\x96" rendered);
  Alcotest.(check bool) "report renders the profile table" true
    (contains "engine profile" rendered);
  Alcotest.(check bool) "telemetry task is labeled" true
    (contains "telemetry.sample" rendered)

let () =
  Alcotest.run "workload"
    [
      ( "params",
        [
          Alcotest.test_case "default valid" `Quick test_params_validate_default;
          Alcotest.test_case "rejects bad" `Quick test_params_validate_rejects;
          Alcotest.test_case "sizing monotone" `Quick test_params_sizing_monotone;
        ] );
      ( "builder",
        [
          Alcotest.test_case "grows exact" `Slow test_builder_grows_exact;
          Alcotest.test_case "byzantine placement" `Slow test_builder_places_byzantine;
        ] );
      ( "growth",
        [
          Alcotest.test_case "reaches target" `Slow test_growth_reaches_target;
          Alcotest.test_case "counts exchanges" `Slow test_growth_counts_exchanges;
          Alcotest.test_case "rate vs suppression" `Slow test_growth_faster_rate_more_suppression;
        ] );
      ( "churn",
        [
          Alcotest.test_case "gentle sustained" `Slow test_churn_probe_gentle_rate_sustained;
          Alcotest.test_case "ladder" `Slow test_churn_ladder_returns_probes;
        ] );
      ( "latency",
        [
          Alcotest.test_case "full delivery" `Slow test_latency_exp_full_delivery;
          Alcotest.test_case "byzantine no decay" `Slow test_latency_exp_byzantine_no_decay;
          Alcotest.test_case "cdf shape" `Slow test_latency_cdf_shape;
        ] );
      ( "figures",
        [
          Alcotest.test_case "fig9 shape" `Slow test_fig9_shape;
          Alcotest.test_case "fig10 shape" `Slow test_fig10_shape;
          Alcotest.test_case "fig12 shape" `Slow test_fig12_shape;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "growth deterministic" `Slow test_runs_are_deterministic;
          Alcotest.test_case "latency deterministic" `Slow test_latency_deterministic;
        ] );
      ( "ablation",
        [
          Alcotest.test_case "forward policies" `Slow test_ablation_forward_policies_tradeoff;
          Alcotest.test_case "shuffling disperses" `Slow test_ablation_shuffling_disperses;
        ] );
      ( "analyze",
        [
          Alcotest.test_case "live trace" `Slow test_analyze_of_trace;
          Alcotest.test_case "cli pipeline" `Slow test_cli_broadcast_then_analyze;
          Alcotest.test_case "cli telemetry + report" `Slow
            test_cli_churn_telemetry_and_report;
        ] );
      ( "bench-json",
        [ Alcotest.test_case "same-seed determinism" `Slow test_bench_json_deterministic ] );
    ]
