open Atum_util

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let xs = List.init 32 (fun _ -> Rng.bits64 a) in
  let ys = List.init 32 (fun _ -> Rng.bits64 b) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_rng_int_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.fail "Rng.int out of range"
  done

let test_rng_int_uniformish () =
  let rng = Rng.create 5 in
  let counts = Array.make 10 0 in
  for _ = 1 to 100_000 do
    let v = Rng.int rng 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Alcotest.(check bool) "chi2 accepts uniform"
    true
    (Stats.chi2_uniform_test ~confidence:0.999 counts)

let test_rng_float_range () =
  let rng = Rng.create 11 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.fail "Rng.float out of range"
  done

let test_rng_bernoulli () =
  let rng = Rng.create 13 in
  let hits = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let p = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "p close to 0.3" true (abs_float (p -. 0.3) < 0.01)

let test_rng_exponential_mean () =
  let rng = Rng.create 17 in
  let xs = List.init 50_000 (fun _ -> Rng.exponential rng 2.0) in
  Alcotest.(check bool) "mean ~ 0.5" true (abs_float (Stats.mean xs -. 0.5) < 0.02)

let test_rng_gaussian_moments () =
  let rng = Rng.create 19 in
  let xs = List.init 50_000 (fun _ -> Rng.gaussian rng ~mean:3.0 ~stddev:2.0) in
  Alcotest.(check bool) "mean ~ 3" true (abs_float (Stats.mean xs -. 3.0) < 0.05);
  Alcotest.(check bool) "stddev ~ 2" true (abs_float (Stats.stddev xs -. 2.0) < 0.05)

let test_rng_lognormal_median () =
  let rng = Rng.create 41 in
  let xs = List.init 40_000 (fun _ -> Rng.lognormal rng ~mu:(log 2.0) ~sigma:0.5) in
  (* The median of a lognormal is exp(mu). *)
  Alcotest.(check bool) "median ~ 2.0" true (abs_float (Stats.median xs -. 2.0) < 0.05)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 23 in
  let a = Array.init 100 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 100 Fun.id) sorted

let test_rng_sample_without_replacement () =
  let rng = Rng.create 29 in
  let xs = List.init 20 Fun.id in
  let s = Rng.sample_without_replacement rng 5 xs in
  Alcotest.(check int) "size" 5 (List.length s);
  Alcotest.(check int) "distinct" 5 (List.length (List.sort_uniq compare s));
  List.iter (fun x -> Alcotest.(check bool) "member" true (List.mem x xs)) s

let test_rng_sample_all_when_k_large () =
  let rng = Rng.create 31 in
  let s = Rng.sample_without_replacement rng 50 [ 1; 2; 3 ] in
  Alcotest.(check int) "whole list" 3 (List.length s)

let test_rng_pick_singleton () =
  let rng = Rng.create 37 in
  Alcotest.(check int) "only element" 9 (Rng.pick rng [ 9 ])

let test_rng_pick_empty () =
  let rng = Rng.create 37 in
  Alcotest.check_raises "empty pick" (Invalid_argument "Rng.pick: empty list")
    (fun () -> ignore (Rng.pick rng []))

(* ------------------------------------------------------------------ *)
(* Pqueue                                                              *)
(* ------------------------------------------------------------------ *)

let test_pqueue_ordering () =
  let q = Pqueue.create () in
  Pqueue.push q 3.0 "c";
  Pqueue.push q 1.0 "a";
  Pqueue.push q 2.0 "b";
  let order = List.init 3 (fun _ -> snd (Option.get (Pqueue.pop q))) in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] order

let test_pqueue_fifo_ties () =
  let q = Pqueue.create () in
  List.iter (fun x -> Pqueue.push q 1.0 x) [ "first"; "second"; "third" ];
  let order = List.init 3 (fun _ -> snd (Option.get (Pqueue.pop q))) in
  Alcotest.(check (list string)) "insertion order on ties"
    [ "first"; "second"; "third" ] order

let test_pqueue_empty () =
  let q : int Pqueue.t = Pqueue.create () in
  Alcotest.(check bool) "empty" true (Pqueue.is_empty q);
  Alcotest.(check bool) "pop none" true (Pqueue.pop q = None);
  Alcotest.(check bool) "peek none" true (Pqueue.peek q = None)

let test_pqueue_peek_does_not_remove () =
  let q = Pqueue.create () in
  Pqueue.push q 5.0 42;
  Alcotest.(check bool) "peek" true (Pqueue.peek q = Some (5.0, 42));
  Alcotest.(check int) "still there" 1 (Pqueue.size q)

let test_pqueue_interleaved () =
  let q = Pqueue.create () in
  Pqueue.push q 2.0 2;
  Pqueue.push q 1.0 1;
  Alcotest.(check bool) "min first" true (Pqueue.pop q = Some (1.0, 1));
  Pqueue.push q 0.5 0;
  Alcotest.(check bool) "new min" true (Pqueue.pop q = Some (0.5, 0));
  Alcotest.(check bool) "rest" true (Pqueue.pop q = Some (2.0, 2))

let test_pqueue_clear () =
  let q = Pqueue.create () in
  for i = 1 to 10 do
    Pqueue.push q (float_of_int i) i
  done;
  Pqueue.clear q;
  Alcotest.(check bool) "cleared" true (Pqueue.is_empty q)

let prop_pqueue_sorted =
  QCheck.Test.make ~name:"pqueue pops in priority order" ~count:200
    QCheck.(list (pair (float_range 0.0 100.0) small_int))
    (fun items ->
      let q = Pqueue.create () in
      List.iter (fun (p, v) -> Pqueue.push q p v) items;
      let rec drain acc =
        match Pqueue.pop q with
        | None -> List.rev acc
        | Some (p, _) -> drain (p :: acc)
      in
      let prios = drain [] in
      List.sort compare prios = prios)

let prop_pqueue_model =
  QCheck.Test.make ~name:"pqueue matches a sorted-list model under interleaved ops" ~count:150
    QCheck.(list (option (pair (float_range 0.0 50.0) small_int)))
    (fun ops ->
      (* Some op = push, None = pop; compare against a stable-sorted model. *)
      let q = Pqueue.create () in
      let model = ref [] in
      let seq = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Some (p, v) ->
            Pqueue.push q p v;
            model := (p, !seq, v) :: !model;
            incr seq
          | None ->
            let expected =
              match List.sort compare (List.rev !model) with
              | [] -> None
              | ((p, _, v) as entry) :: _ ->
                model := List.filter (fun e -> e <> entry) !model;
                Some (p, v)
            in
            if Pqueue.pop q <> expected then ok := false)
        ops;
      !ok)

(* ------------------------------------------------------------------ *)
(* Btree                                                               *)
(* ------------------------------------------------------------------ *)

let make_btree ?(degree = 3) () = Btree.create ~degree ~cmp:compare ()

let btree_ok bt =
  match Btree.check_invariants bt with Ok () -> () | Error e -> Alcotest.fail e

let test_btree_empty () =
  let bt : (int, string) Btree.t = make_btree () in
  Alcotest.(check bool) "empty" true (Btree.is_empty bt);
  Alcotest.(check (option string)) "find" None (Btree.find bt 1);
  Alcotest.(check bool) "min" true (Btree.min_binding bt = None);
  Alcotest.(check int) "height" 0 (Btree.height bt);
  btree_ok bt

let test_btree_insert_find () =
  let bt = make_btree () in
  List.iter (fun i -> Btree.insert bt i (string_of_int i)) [ 5; 1; 9; 3; 7; 2; 8; 4; 6; 0 ];
  btree_ok bt;
  Alcotest.(check int) "size" 10 (Btree.size bt);
  for i = 0 to 9 do
    Alcotest.(check (option string)) "find" (Some (string_of_int i)) (Btree.find bt i)
  done;
  Alcotest.(check (option string)) "absent" None (Btree.find bt 99)

let test_btree_replace () =
  let bt = make_btree () in
  Btree.insert bt 1 "a";
  Btree.insert bt 1 "b";
  Alcotest.(check int) "no duplicate" 1 (Btree.size bt);
  Alcotest.(check (option string)) "replaced" (Some "b") (Btree.find bt 1)

let test_btree_ordered_iteration () =
  let bt = make_btree () in
  let input = [ 42; 7; 13; 99; 1; 56; 28; 3; 77; 64 ] in
  List.iter (fun i -> Btree.insert bt i i) input;
  Alcotest.(check (list int)) "sorted" (List.sort compare input)
    (List.map fst (Btree.to_list bt));
  Alcotest.(check bool) "min" true (Btree.min_binding bt = Some (1, 1));
  Alcotest.(check bool) "max" true (Btree.max_binding bt = Some (99, 99))

let test_btree_range () =
  let bt = make_btree () in
  for i = 0 to 50 do
    Btree.insert bt i (i * 2)
  done;
  Alcotest.(check (list (pair int int))) "inclusive range"
    [ (10, 20); (11, 22); (12, 24) ]
    (Btree.range bt ~lo:10 ~hi:12);
  Alcotest.(check int) "full range" 51 (List.length (Btree.range bt ~lo:0 ~hi:50));
  Alcotest.(check (list (pair int int))) "empty range" [] (Btree.range bt ~lo:60 ~hi:70)

let test_btree_delete () =
  let bt = make_btree () in
  for i = 0 to 100 do
    Btree.insert bt i i
  done;
  btree_ok bt;
  (* remove every third key *)
  for i = 0 to 33 do
    Btree.remove bt (i * 3)
  done;
  btree_ok bt;
  Alcotest.(check int) "size" 67 (Btree.size bt);
  for i = 0 to 100 do
    let expected = if i mod 3 = 0 then None else Some i in
    Alcotest.(check (option int)) (Printf.sprintf "find %d" i) expected (Btree.find bt i)
  done

let test_btree_delete_everything () =
  let bt = make_btree () in
  let rng = Rng.create 7 in
  let keys = Array.init 200 Fun.id in
  Rng.shuffle rng keys;
  Array.iter (fun k -> Btree.insert bt k k) keys;
  Rng.shuffle rng keys;
  Array.iter
    (fun k ->
      Btree.remove bt k;
      (match Btree.check_invariants bt with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Printf.sprintf "after removing %d: %s" k e)))
    keys;
  Alcotest.(check bool) "empty again" true (Btree.is_empty bt)

let test_btree_height_logarithmic () =
  let bt = Btree.create ~degree:8 ~cmp:compare () in
  for i = 1 to 10_000 do
    Btree.insert bt i i
  done;
  btree_ok bt;
  (* with degree 8, height of 10k keys is at most log_8(10k) + 1 ~ 5 *)
  Alcotest.(check bool)
    (Printf.sprintf "height %d is logarithmic" (Btree.height bt))
    true
    (Btree.height bt <= 6)

let test_btree_empty_range_bounds () =
  let bt = make_btree () in
  for i = 0 to 20 do
    Btree.insert bt i i
  done;
  Alcotest.(check (list (pair int int))) "inverted bounds" [] (Btree.range bt ~lo:15 ~hi:3);
  Alcotest.(check (list (pair int int))) "point range" [ (7, 7) ] (Btree.range bt ~lo:7 ~hi:7)

let test_btree_degree_validation () =
  Alcotest.check_raises "degree too small"
    (Invalid_argument "Btree.create: degree must be at least 2") (fun () ->
      ignore (Btree.create ~degree:1 ~cmp:compare ()))

let prop_btree_model =
  QCheck.Test.make ~name:"btree behaves like a map under random insert/remove" ~count:120
    QCheck.(pair (int_range 2 6) (list (pair bool (int_range 0 60))))
    (fun (degree, ops) ->
      let bt = Btree.create ~degree ~cmp:compare () in
      let model = Hashtbl.create 32 in
      List.for_all
        (fun (is_insert, k) ->
          if is_insert then begin
            Btree.insert bt k (k * 7);
            Hashtbl.replace model k (k * 7)
          end
          else begin
            Btree.remove bt k;
            Hashtbl.remove model k
          end;
          Btree.check_invariants bt = Ok ()
          && Btree.size bt = Hashtbl.length model
          && Hashtbl.fold (fun k v acc -> acc && Btree.find bt k = Some v) model true)
        ops)

let prop_btree_iteration_sorted =
  QCheck.Test.make ~name:"btree iteration is always sorted" ~count:100
    QCheck.(list small_int)
    (fun keys ->
      let bt = make_btree () in
      List.iter (fun k -> Btree.insert bt k k) keys;
      let out = List.map fst (Btree.to_list bt) in
      out = List.sort_uniq compare keys)

(* Batched mixed workload with range queries: apply a whole batch of
   inserts/deletes, then check the invariants once per batch (the
   snapshot-codec usage pattern: bulk load, then serve reads) and
   cross-check a random range query against a sorted model. *)
let prop_btree_batches_and_ranges =
  QCheck.Test.make ~name:"btree ranges stay correct across insert/delete batches" ~count:80
    QCheck.(
      pair (int_range 2 6)
        (small_list (triple (small_list (pair bool (int_range 0 80))) (int_range 0 80)
           (int_range 0 80))))
    (fun (degree, batches) ->
      let bt = Btree.create ~degree ~cmp:compare () in
      let model = Hashtbl.create 32 in
      List.for_all
        (fun (ops, a, b) ->
          List.iter
            (fun (is_insert, k) ->
              if is_insert then begin
                Btree.insert bt k (k + 1);
                Hashtbl.replace model k (k + 1)
              end
              else begin
                Btree.remove bt k;
                Hashtbl.remove model k
              end)
            ops;
          let lo = min a b and hi = max a b in
          let expect =
            List.sort compare
              (Hashtbl.fold (fun k v acc -> if k >= lo && k <= hi then (k, v) :: acc else acc)
                 model [])
          in
          Btree.check_invariants bt = Ok () && Btree.range bt ~lo ~hi = expect)
        batches)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let feq ?(eps = 1e-6) a b = abs_float (a -. b) < eps

let test_stats_mean () = Alcotest.(check bool) "mean" true (feq (Stats.mean [ 1.0; 2.0; 3.0 ]) 2.0)

let test_stats_mean_empty () = Alcotest.(check bool) "mean []" true (Stats.mean [] = 0.0)

let test_stats_stddev () =
  Alcotest.(check bool) "stddev" true (feq (Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ]) 2.138089935)

let test_stats_percentile () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  Alcotest.(check bool) "p0" true (feq (Stats.percentile xs 0.0) 1.0);
  Alcotest.(check bool) "p50" true (feq (Stats.percentile xs 50.0) 3.0);
  Alcotest.(check bool) "p100" true (feq (Stats.percentile xs 100.0) 5.0);
  Alcotest.(check bool) "p25" true (feq (Stats.percentile xs 25.0) 2.0)

let test_stats_median_interpolates () =
  Alcotest.(check bool) "median of 4" true (feq (Stats.median [ 1.0; 2.0; 3.0; 4.0 ]) 2.5)

let test_stats_cdf () =
  let pts = Stats.cdf [ 3.0; 1.0; 2.0 ] in
  Alcotest.(check bool) "cdf shape" true
    (pts = [ (1.0, 1.0 /. 3.0); (2.0, 2.0 /. 3.0); (3.0, 1.0) ])

let test_stats_histogram () =
  let h = Stats.histogram ~buckets:4 ~lo:0.0 ~hi:4.0 [ 0.5; 1.5; 1.6; 3.9; -1.0; 9.0 ] in
  Alcotest.(check (array int)) "buckets" [| 2; 2; 0; 2 |] h

let test_gammln_factorial () =
  (* Gamma(n) = (n-1)! *)
  Alcotest.(check bool) "Gamma(5)=24" true (feq ~eps:1e-6 (exp (Stats.gammln 5.0)) 24.0);
  Alcotest.(check bool) "Gamma(1)=1" true (feq ~eps:1e-6 (exp (Stats.gammln 1.0)) 1.0)

let test_gamma_q_edge_cases () =
  (* Boundary behaviour of Q(a, x) around x = 0: the sign test that
     replaced float-literal equality (lint rule F001) must keep
     Q(a, 0) = 1 exactly and stay continuous just right of zero. *)
  Alcotest.(check (float 0.0)) "Q(a,0) = 1 exactly" 1.0 (Stats.regularized_gamma_q 2.5 0.0);
  Alcotest.(check bool) "Q(a,eps) ~ 1" true
    (feq ~eps:1e-6 (Stats.regularized_gamma_q 2.5 1e-12) 1.0);
  Alcotest.(check bool) "Q(a,x) decreases in x" true
    (Stats.regularized_gamma_q 2.5 1.0 > Stats.regularized_gamma_q 2.5 4.0);
  Alcotest.(check bool) "Q(a,large) ~ 0" true
    (Stats.regularized_gamma_q 2.5 1e3 < 1e-9);
  (* Q(1, x) = exp(-x) in closed form, on both sides of the series /
     continued-fraction split at x = a + 1. *)
  Alcotest.(check bool) "Q(1,0.5) = exp(-0.5)" true
    (feq ~eps:1e-9 (Stats.regularized_gamma_q 1.0 0.5) (exp (-0.5)));
  Alcotest.(check bool) "Q(1,5) = exp(-5)" true
    (feq ~eps:1e-9 (Stats.regularized_gamma_q 1.0 5.0) (exp (-5.0)))

let test_chi2_known_values () =
  (* chi2 CDF complement checked against standard tables. *)
  Alcotest.(check bool) "df=1, x=3.841 -> p ~ 0.05" true
    (feq ~eps:1e-3 (Stats.chi2_cdf_complement ~df:1 3.841) 0.05);
  Alcotest.(check bool) "df=10, x=18.307 -> p ~ 0.05" true
    (feq ~eps:1e-3 (Stats.chi2_cdf_complement ~df:10 18.307) 0.05);
  Alcotest.(check bool) "df=5, x=15.086 -> p ~ 0.01" true
    (feq ~eps:1e-3 (Stats.chi2_cdf_complement ~df:5 15.086) 0.01)

let test_chi2_statistic () =
  let x2 = Stats.chi2_statistic ~observed:[| 10; 20 |] ~expected:[| 15.0; 15.0 |] in
  Alcotest.(check bool) "stat" true (feq x2 (25.0 /. 15.0 *. 2.0))

let test_chi2_uniform_accepts_uniform () =
  Alcotest.(check bool) "uniform accepted" true
    (Stats.chi2_uniform_test ~confidence:0.99 [| 100; 101; 99; 100 |])

let test_chi2_uniform_rejects_skewed () =
  Alcotest.(check bool) "skew rejected" false
    (Stats.chi2_uniform_test ~confidence:0.99 [| 400; 10; 10; 10 |])

let test_stats_histogram_rejects_bad_bounds () =
  Alcotest.check_raises "hi = lo"
    (Invalid_argument "Stats.histogram: hi must exceed lo") (fun () ->
      ignore (Stats.histogram ~buckets:4 ~lo:1.0 ~hi:1.0 [ 1.0 ]));
  Alcotest.check_raises "hi < lo"
    (Invalid_argument "Stats.histogram: hi must exceed lo") (fun () ->
      ignore (Stats.histogram ~buckets:4 ~lo:2.0 ~hi:1.0 [ 1.0 ]))

let test_stats_percentile_negative_values () =
  (* Regression: sorting must use a float comparison, so mixed-sign
     samples land in numeric (not structural) order. *)
  let xs = [ 3.0; -7.5; 0.0; -1.25; 12.0 ] in
  Alcotest.(check bool) "p0 is min" true (feq (Stats.percentile xs 0.0) (-7.5));
  Alcotest.(check bool) "p50 is median" true (feq (Stats.percentile xs 50.0) 0.0);
  Alcotest.(check bool) "p100 is max" true (feq (Stats.percentile xs 100.0) 12.0);
  match Stats.cdf xs with
  | (first, _) :: _ -> Alcotest.(check bool) "cdf starts at min" true (feq first (-7.5))
  | [] -> Alcotest.fail "empty cdf"

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

let json_examples =
  Json.
    [
      Null;
      Bool true;
      Int (-42);
      Int max_int;
      Float 0.1;
      Float (-1.5e300);
      Float 1234567.0;
      String "plain";
      String "esc \"quotes\" \\ back \n tab \t ctrl \x01 end";
      List [ Int 1; Null; String "x" ];
      Obj [ ("a", Int 1); ("nested", Obj [ ("b", List [ Bool false ]) ]); ("", Null) ];
    ]

let test_json_roundtrip_examples () =
  List.iter
    (fun j ->
      let compact = Json.to_string ~pretty:false j in
      let pretty = Json.to_string j in
      (match Json.of_string compact with
      | Ok j' -> Alcotest.(check bool) ("compact: " ^ compact) true (Json.equal j j')
      | Error e -> Alcotest.failf "compact reparse of %s failed: %s" compact e);
      match Json.of_string pretty with
      | Ok j' -> Alcotest.(check bool) ("pretty: " ^ compact) true (Json.equal j j')
      | Error e -> Alcotest.failf "pretty reparse failed: %s" e)
    json_examples

let test_json_float_format () =
  Alcotest.(check string) "integral floats keep a point" "2.0"
    (Json.to_string ~pretty:false (Json.Float 2.0));
  Alcotest.(check string) "short decimals stay short" "0.25"
    (Json.to_string ~pretty:false (Json.Float 0.25));
  Alcotest.(check string) "non-finite becomes null" "null"
    (Json.to_string ~pretty:false (Json.Float nan));
  Alcotest.(check string) "infinity becomes null" "null"
    (Json.to_string ~pretty:false (Json.Float infinity));
  (* Round-trip precision even for awkward doubles. *)
  let x = 0.1 +. 0.2 in
  match Json.of_string (Json.to_string ~pretty:false (Json.Float x)) with
  | Ok (Json.Float y) -> Alcotest.(check bool) "exact bits" true (x = y)
  | _ -> Alcotest.fail "float did not reparse as a float"

let test_json_member () =
  let j = Json.Obj [ ("a", Json.Int 1); ("b", Json.Null) ] in
  Alcotest.(check bool) "present" true (Json.member "a" j = Some (Json.Int 1));
  Alcotest.(check bool) "null member present" true (Json.member "b" j = Some Json.Null);
  Alcotest.(check bool) "absent" true (Json.member "c" j = None);
  Alcotest.(check bool) "non-object" true (Json.member "a" (Json.Int 3) = None)

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted malformed input %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{'a':1}" ]

(* WAL-recovery hardening: truncated prefixes of valid documents must
   come back as [Error], never raise or loop. *)
let test_json_truncated_prefixes () =
  let doc = Json.to_string ~pretty:false (Json.Obj [
      ("t", Json.String "deliver");
      ("bid", Json.Int 17);
      ("body", Json.String "xy\"z\\");
      ("nested", Json.List [ Json.Obj [ ("f", Json.Float 1.5) ]; Json.Null; Json.Bool true ]);
    ])
  in
  for keep = 0 to String.length doc - 1 do
    match Json.of_string (String.sub doc 0 keep) with
    | Ok _ -> Alcotest.failf "accepted truncated prefix of length %d" keep
    | Error _ -> ()
  done;
  match Json.of_string doc with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "rejected the full document: %s" e

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_json_duplicate_keys_rejected () =
  (match Json.of_string "{\"a\": 1, \"a\": 2}" with
  | Ok _ -> Alcotest.fail "accepted duplicate keys"
  | Error e ->
    Alcotest.(check bool) "error names the cause" true (contains_sub e "duplicate"));
  (* Same key in sibling objects is fine. *)
  match Json.of_string "[{\"a\": 1}, {\"a\": 2}]" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "rejected sibling keys: %s" e

let test_json_deep_nesting_bounded () =
  let deep n = String.make n '[' ^ "1" ^ String.make n ']' in
  (* Far past the bound: must be a typed error, not a stack overflow. *)
  (match Json.of_string (deep 100_000) with
  | Ok _ -> Alcotest.fail "accepted pathological nesting"
  | Error _ -> ());
  (* Unclosed deep nesting (the truncated-garbage shape). *)
  (match Json.of_string (String.make 100_000 '[') with
  | Ok _ -> Alcotest.fail "accepted unclosed nesting"
  | Error _ -> ());
  (* Reasonable nesting still parses. *)
  match Json.of_string (deep 100) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "rejected 100-deep nesting: %s" e

let prop_json_roundtrip =
  let gen =
    QCheck.Gen.(
      sized @@ fix (fun self n ->
          let leaf =
            oneof
              [
                return Json.Null;
                map (fun b -> Json.Bool b) bool;
                map (fun i -> Json.Int i) int;
                map (fun f -> Json.Float f) (float_bound_inclusive 1e9);
                map (fun s -> Json.String s) (string_size (0 -- 12));
              ]
          in
          if n <= 0 then leaf
          else
            frequency
              [
                (3, leaf);
                (1, map (fun l -> Json.List l) (list_size (0 -- 4) (self (n / 2))));
                ( 1,
                  (* the parser rejects duplicate keys, so generate
                     objects with each key at most once *)
                  map
                    (fun kvs ->
                      let seen = Hashtbl.create 8 in
                      Json.Obj
                        (List.filter
                           (fun (k, _) ->
                             if Hashtbl.mem seen k then false
                             else (Hashtbl.add seen k (); true))
                           kvs))
                    (list_size (0 -- 4)
                       (pair (string_size (0 -- 6)) (self (n / 2)))) );
              ]))
  in
  QCheck.Test.make ~name:"json print/parse roundtrip" ~count:200
    (QCheck.make ~print:(fun j -> Json.to_string j) gen)
    (fun j ->
      match Json.of_string (Json.to_string ~pretty:false j) with
      | Ok j' -> Json.equal j j'
      | Error _ -> false)

let prop_percentile_bounds =
  QCheck.Test.make ~name:"percentile stays within min/max" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_range (-100.0) 100.0)) (float_range 0.0 100.0))
    (fun (xs, p) ->
      let v = Stats.percentile xs p in
      let mn = List.fold_left min infinity xs and mx = List.fold_left max neg_infinity xs in
      v >= mn -. 1e-9 && v <= mx +. 1e-9)

let prop_mean_bounds =
  QCheck.Test.make ~name:"mean within min/max" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_range (-1000.0) 1000.0))
    (fun xs ->
      let m = Stats.mean xs in
      let mn = List.fold_left min infinity xs and mx = List.fold_left max neg_infinity xs in
      m >= mn -. 1e-9 && m <= mx +. 1e-9)

(* --- Bitset ------------------------------------------------------------ *)

let test_bitset_basics () =
  let b = Bitset.create () in
  Alcotest.(check int) "empty cardinal" 0 (Bitset.cardinal b);
  Alcotest.(check (list int)) "empty to_list" [] (Bitset.to_list b);
  List.iter (Bitset.set b) [ 5; 0; 129; 5; 64 ];
  Alcotest.(check int) "cardinal dedups" 4 (Bitset.cardinal b);
  Alcotest.(check (list int)) "ascending" [ 0; 5; 64; 129 ] (Bitset.to_list b);
  Alcotest.(check bool) "mem set" true (Bitset.mem b 64);
  Alcotest.(check bool) "mem unset" false (Bitset.mem b 63);
  Bitset.unset b 64;
  Bitset.unset b 4096 (* beyond backing storage: no-op *);
  Alcotest.(check (list int)) "after unset" [ 0; 5; 129 ] (Bitset.to_list b);
  Alcotest.check_raises "negative set"
    (Invalid_argument "Bitset.set: negative index") (fun () -> Bitset.set b (-1))

let test_bitset_iter_matches_to_list () =
  let b = Bitset.create () in
  List.iter (Bitset.set b) [ 300; 2; 77; 31; 32; 33 ];
  let seen = ref [] in
  Bitset.iter (fun i -> seen := i :: !seen) b;
  Alcotest.(check (list int)) "iter order" (Bitset.to_list b) (List.rev !seen)

let test_bitset_clear () =
  let b = Bitset.create () in
  List.iter (Bitset.set b) [ 1; 2; 3 ];
  Bitset.clear b;
  Alcotest.(check int) "cleared" 0 (Bitset.cardinal b);
  Alcotest.(check (list int)) "cleared list" [] (Bitset.to_list b);
  Bitset.set b 9;
  Alcotest.(check (list int)) "usable after clear" [ 9 ] (Bitset.to_list b)

let prop_bitset_model =
  QCheck.Test.make ~name:"bitset matches set model" ~count:200
    QCheck.(small_list (pair bool (int_range 0 500)))
    (fun ops ->
      let b = Bitset.create () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (add, i) ->
          if add then (Bitset.set b i; Hashtbl.replace model i ())
          else (Bitset.unset b i; Hashtbl.remove model i))
        ops;
      let expect =
        Hashtbl.fold (fun k () acc -> k :: acc) model [] |> List.sort compare
      in
      Bitset.to_list b = expect && Bitset.cardinal b = List.length expect)

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "int uniform" `Quick test_rng_int_uniformish;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "bernoulli" `Quick test_rng_bernoulli;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "lognormal median" `Quick test_rng_lognormal_median;
          Alcotest.test_case "shuffle is a permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "sample without replacement" `Quick test_rng_sample_without_replacement;
          Alcotest.test_case "sample clamps k" `Quick test_rng_sample_all_when_k_large;
          Alcotest.test_case "pick singleton" `Quick test_rng_pick_singleton;
          Alcotest.test_case "pick empty raises" `Quick test_rng_pick_empty;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "ordering" `Quick test_pqueue_ordering;
          Alcotest.test_case "fifo ties" `Quick test_pqueue_fifo_ties;
          Alcotest.test_case "empty" `Quick test_pqueue_empty;
          Alcotest.test_case "peek" `Quick test_pqueue_peek_does_not_remove;
          Alcotest.test_case "interleaved" `Quick test_pqueue_interleaved;
          Alcotest.test_case "clear" `Quick test_pqueue_clear;
          QCheck_alcotest.to_alcotest prop_pqueue_sorted;
          QCheck_alcotest.to_alcotest prop_pqueue_model;
        ] );
      ( "btree",
        [
          Alcotest.test_case "empty" `Quick test_btree_empty;
          Alcotest.test_case "insert/find" `Quick test_btree_insert_find;
          Alcotest.test_case "replace" `Quick test_btree_replace;
          Alcotest.test_case "ordered iteration" `Quick test_btree_ordered_iteration;
          Alcotest.test_case "range" `Quick test_btree_range;
          Alcotest.test_case "delete" `Quick test_btree_delete;
          Alcotest.test_case "delete everything" `Quick test_btree_delete_everything;
          Alcotest.test_case "logarithmic height" `Quick test_btree_height_logarithmic;
          Alcotest.test_case "degree validation" `Quick test_btree_degree_validation;
          Alcotest.test_case "range bounds" `Quick test_btree_empty_range_bounds;
          QCheck_alcotest.to_alcotest prop_btree_model;
          QCheck_alcotest.to_alcotest prop_btree_iteration_sorted;
          QCheck_alcotest.to_alcotest prop_btree_batches_and_ranges;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "basics" `Quick test_bitset_basics;
          Alcotest.test_case "iter matches to_list" `Quick test_bitset_iter_matches_to_list;
          Alcotest.test_case "clear" `Quick test_bitset_clear;
          QCheck_alcotest.to_alcotest prop_bitset_model;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "mean empty" `Quick test_stats_mean_empty;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "median interpolates" `Quick test_stats_median_interpolates;
          Alcotest.test_case "cdf" `Quick test_stats_cdf;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
          Alcotest.test_case "histogram bad bounds" `Quick
            test_stats_histogram_rejects_bad_bounds;
          Alcotest.test_case "percentile negatives" `Quick
            test_stats_percentile_negative_values;
          Alcotest.test_case "gammln factorial" `Quick test_gammln_factorial;
          Alcotest.test_case "gamma Q edge cases" `Quick test_gamma_q_edge_cases;
          Alcotest.test_case "chi2 table values" `Quick test_chi2_known_values;
          Alcotest.test_case "chi2 statistic" `Quick test_chi2_statistic;
          Alcotest.test_case "chi2 accepts uniform" `Quick test_chi2_uniform_accepts_uniform;
          Alcotest.test_case "chi2 rejects skew" `Quick test_chi2_uniform_rejects_skewed;
          QCheck_alcotest.to_alcotest prop_percentile_bounds;
          QCheck_alcotest.to_alcotest prop_mean_bounds;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip examples" `Quick test_json_roundtrip_examples;
          Alcotest.test_case "float format" `Quick test_json_float_format;
          Alcotest.test_case "member" `Quick test_json_member;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "truncated prefixes" `Quick test_json_truncated_prefixes;
          Alcotest.test_case "duplicate keys" `Quick test_json_duplicate_keys_rejected;
          Alcotest.test_case "deep nesting bounded" `Quick test_json_deep_nesting_bounded;
          QCheck_alcotest.to_alcotest prop_json_roundtrip;
        ] );
    ]
