open Atum_smr

let keyring_for n =
  let kr = Atum_crypto.Signature.create_keyring ~seed:99 in
  for i = 0 to n - 1 do
    Atum_crypto.Signature.register kr ("node-" ^ string_of_int i)
  done;
  kr

(* ------------------------------------------------------------------ *)
(* Dolev-Strong: lock-step harness                                     *)
(* ------------------------------------------------------------------ *)

(* Drives one broadcast instance over a perfectly synchronous network.
   [quiet] nodes are Byzantine and never relay. Returns the decision of
   every correct node. *)
let run_ds ?(quiet = []) ~g ~sender ~init () =
  let f = Smr_intf.sync_f ~group_size:g in
  let kr = keyring_for g in
  let members = List.init g Fun.id in
  let correct = List.filter (fun i -> not (List.mem i quiet)) members in
  let instances =
    List.map
      (fun self ->
        ( self,
          Dolev_strong.create ~keyring:kr ~self ~members ~sender ~f
            ~instance_id:"test" ))
      correct
  in
  let pending = ref (init (List.assoc_opt sender instances)) in
  for round = 1 to f + 1 do
    List.iter
      (fun (dst, src, m) ->
        if not (List.mem src quiet) || src = sender then
          match List.assoc_opt dst instances with
          | Some inst -> Dolev_strong.receive inst ~src m
          | None -> ())
      (List.rev !pending);
    pending := [];
    List.iter
      (fun (self, inst) ->
        if self <> sender || not (List.mem sender quiet) then
          List.iter
            (fun (dst, m) -> pending := (dst, self, m) :: !pending)
            (Dolev_strong.end_of_round inst ~round))
      instances
  done;
  List.map (fun (self, inst) -> (self, Dolev_strong.decision inst)) instances

let honest_init value sender_inst =
  match sender_inst with
  | Some inst -> List.map (fun (dst, m) -> (dst, 0, m)) (Dolev_strong.initiate inst value)
  | None -> []

let test_ds_all_correct () =
  let decisions = run_ds ~g:7 ~sender:0 ~init:(honest_init "v") () in
  List.iter
    (fun (_, d) -> Alcotest.(check bool) "decided v" true (d = Some (Some "v")))
    decisions

let test_ds_silent_sender () =
  let decisions = run_ds ~g:7 ~sender:0 ~init:(fun _ -> []) ~quiet:[ 0 ] () in
  List.iter
    (fun (_, d) -> Alcotest.(check bool) "decided bottom" true (d = Some None))
    decisions

let test_ds_single_node_group () =
  let decisions = run_ds ~g:1 ~sender:0 ~init:(honest_init "solo") () in
  Alcotest.(check bool) "self-decides" true (decisions = [ (0, Some (Some "solo")) ])

let test_ds_quiet_relays () =
  (* f Byzantine (quiet) relays; correct sender still gets through. *)
  let decisions = run_ds ~g:7 ~sender:0 ~init:(honest_init "v") ~quiet:[ 1; 2; 3 ] () in
  List.iter
    (fun (_, d) -> Alcotest.(check bool) "decided v" true (d = Some (Some "v")))
    decisions

let test_ds_equivocating_sender_agreement () =
  (* Byzantine sender sends different values to different members; all
     correct members must still decide the same thing. *)
  let init sender_inst =
    match sender_inst with
    | Some inst ->
      let assignments = [ (1, "A"); (2, "B"); (3, "A"); (4, "B"); (5, "A"); (6, "B") ] in
      List.map (fun (dst, m) -> (dst, 0, m)) (Dolev_strong.initiate_equivocating inst assignments)
    | None -> []
  in
  let decisions = run_ds ~g:7 ~sender:0 ~init () in
  let correct_decisions =
    List.filter_map (fun (self, d) -> if self = 0 then None else Some d) decisions
  in
  (match correct_decisions with
  | [] -> Alcotest.fail "no correct nodes"
  | d0 :: rest ->
    List.iter (fun d -> Alcotest.(check bool) "agreement" true (d = d0)) rest);
  (* With both values extracted, the decision must be bottom. *)
  Alcotest.(check bool) "bottom" true (List.for_all (fun d -> d = Some None) correct_decisions)

let test_ds_forged_chain_rejected () =
  let g = 5 in
  let f = Smr_intf.sync_f ~group_size:g in
  let kr = keyring_for g in
  let members = List.init g Fun.id in
  let victim =
    Dolev_strong.create ~keyring:kr ~self:1 ~members ~sender:0 ~f ~instance_id:"test"
  in
  (* A message claiming to come from the sender but without its real
     signature must not be extracted. *)
  let attacker =
    Dolev_strong.create ~keyring:kr ~self:2 ~members ~sender:2 ~f ~instance_id:"test"
  in
  let msgs = Dolev_strong.initiate attacker "evil" in
  List.iter (fun (dst, m) -> if dst = 1 then Dolev_strong.receive victim ~src:2 m) msgs;
  ignore (Dolev_strong.end_of_round victim ~round:1);
  Alcotest.(check (list string)) "nothing extracted" [] (Dolev_strong.extracted victim)

let test_ds_replay_across_instances_rejected () =
  let g = 5 in
  let f = Smr_intf.sync_f ~group_size:g in
  let kr = keyring_for g in
  let members = List.init g Fun.id in
  let sender_inst =
    Dolev_strong.create ~keyring:kr ~self:0 ~members ~sender:0 ~f ~instance_id:"inst-A"
  in
  let victim =
    Dolev_strong.create ~keyring:kr ~self:1 ~members ~sender:0 ~f ~instance_id:"inst-B"
  in
  let msgs = Dolev_strong.initiate sender_inst "v" in
  List.iter (fun (dst, m) -> if dst = 1 then Dolev_strong.receive victim ~src:0 m) msgs;
  ignore (Dolev_strong.end_of_round victim ~round:1);
  Alcotest.(check (list string)) "replay rejected" [] (Dolev_strong.extracted victim)

let prop_ds_validity =
  QCheck.Test.make ~name:"DS validity: correct sender's value decided despite quiet faults"
    ~count:40
    QCheck.(pair (int_range 4 10) (int_range 0 1000))
    (fun (g, seed) ->
      let f = Smr_intf.sync_f ~group_size:g in
      let rng = Atum_util.Rng.create seed in
      (* Pick up to f quiet nodes, never the sender (node 0). *)
      let quiet =
        Atum_util.Rng.sample_without_replacement rng f (List.init (g - 1) (fun i -> i + 1))
      in
      let decisions = run_ds ~g ~sender:0 ~init:(honest_init "v") ~quiet () in
      List.for_all (fun (_, d) -> d = Some (Some "v")) decisions)

let prop_ds_agreement_under_equivocation =
  QCheck.Test.make ~name:"DS agreement: equivocating sender cannot split correct nodes"
    ~count:40
    QCheck.(pair (int_range 4 9) (int_range 0 1000))
    (fun (g, seed) ->
      let rng = Atum_util.Rng.create seed in
      let init sender_inst =
        match sender_inst with
        | Some inst ->
          let assignments =
            List.filter_map
              (fun dst ->
                if Atum_util.Rng.bool rng then
                  Some (dst, if Atum_util.Rng.bool rng then "A" else "B")
                else None)
              (List.init (g - 1) (fun i -> i + 1))
          in
          List.map (fun (dst, m) -> (dst, 0, m))
            (Dolev_strong.initiate_equivocating inst assignments)
        | None -> []
      in
      let decisions = run_ds ~g ~sender:0 ~init () in
      let ds = List.filter_map (fun (self, d) -> if self = 0 then None else Some d) decisions in
      match ds with [] -> true | d0 :: rest -> List.for_all (fun d -> d = d0) rest)

(* ------------------------------------------------------------------ *)
(* Sync SMR: lock-step harness                                         *)
(* ------------------------------------------------------------------ *)

type sync_cluster = {
  nodes : (int * Sync_smr.t) list;
  queue : (int * int * Sync_smr.msg) list ref; (* dst, src, msg *)
  logs : (int, (int * string) list ref) Hashtbl.t;
}

let make_sync_cluster ?(quiet = []) ~g () =
  let kr = keyring_for g in
  let members = List.init g Fun.id in
  let correct = List.filter (fun i -> not (List.mem i quiet)) members in
  let queue = ref [] in
  let logs = Hashtbl.create g in
  let f = Smr_intf.sync_f ~group_size:g in
  let nodes =
    List.map
      (fun self ->
        let log = ref [] in
        Hashtbl.replace logs self log;
        let transport =
          {
            Smr_intf.self;
            members;
            f;
            send = (fun dst m -> queue := (dst, self, m) :: !queue);
            set_timer = (fun _ _ -> ());
          }
        in
        let smr =
          Sync_smr.create ~keyring:kr ~transport ~epoch_id:"e0"
            ~on_execute:(fun op -> log := (op.Smr_intf.origin, op.payload) :: !log)
        in
        (self, smr))
      correct
  in
  { nodes; queue; logs }

let run_boundaries cluster n =
  for _ = 1 to n do
    let batch = List.rev !(cluster.queue) in
    cluster.queue := [];
    List.iter
      (fun (dst, src, m) ->
        match List.assoc_opt dst cluster.nodes with
        | Some smr -> Sync_smr.receive smr ~src m
        | None -> ())
      batch;
    List.iter (fun (_, smr) -> Sync_smr.on_round_boundary smr) cluster.nodes
  done

let log_of cluster i = List.rev !(Hashtbl.find cluster.logs i)

let test_sync_smr_single_node () =
  let c = make_sync_cluster ~g:1 () in
  Sync_smr.propose (List.assoc 0 c.nodes) "op1";
  Sync_smr.propose (List.assoc 0 c.nodes) "op2";
  run_boundaries c 3;
  Alcotest.(check (list (pair int string))) "executed in order"
    [ (0, "op1"); (0, "op2") ] (log_of c 0)

let test_sync_smr_all_correct_agree () =
  let g = 5 in
  let c = make_sync_cluster ~g () in
  List.iter (fun (self, smr) -> Sync_smr.propose smr (Printf.sprintf "op-%d" self)) c.nodes;
  let f = Smr_intf.sync_f ~group_size:g in
  run_boundaries c ((f + 1) * 2 + 1);
  let reference = log_of c 0 in
  Alcotest.(check int) "all ops executed" g (List.length reference);
  List.iter
    (fun (self, _) ->
      Alcotest.(check (list (pair int string)))
        (Printf.sprintf "node %d log" self) reference (log_of c self))
    c.nodes;
  (* Within a slot, batches execute in sender-id order. *)
  Alcotest.(check (list (pair int string))) "sender order"
    (List.init g (fun i -> (i, Printf.sprintf "op-%d" i)))
    reference

let test_sync_smr_quiet_byzantine () =
  let g = 7 in
  let quiet = [ 5; 6 ] in
  let c = make_sync_cluster ~g ~quiet () in
  List.iter (fun (self, smr) -> Sync_smr.propose smr (Printf.sprintf "op-%d" self)) c.nodes;
  let f = Smr_intf.sync_f ~group_size:g in
  run_boundaries c ((f + 1) * 2 + 1);
  let reference = log_of c 0 in
  Alcotest.(check int) "correct ops executed" 5 (List.length reference);
  List.iter
    (fun (self, _) ->
      Alcotest.(check (list (pair int string)))
        (Printf.sprintf "node %d log" self) reference (log_of c self))
    c.nodes

let test_sync_smr_cross_slot_order () =
  let c = make_sync_cluster ~g:4 () in
  let f = Smr_intf.sync_f ~group_size:4 in
  Sync_smr.propose (List.assoc 1 c.nodes) "first";
  run_boundaries c (f + 2);
  Sync_smr.propose (List.assoc 2 c.nodes) "second";
  run_boundaries c ((f + 1) * 2);
  List.iter
    (fun (self, _) ->
      Alcotest.(check (list (pair int string)))
        (Printf.sprintf "node %d" self)
        [ (1, "first"); (2, "second") ] (log_of c self))
    c.nodes

let test_sync_smr_stop_freezes () =
  let c = make_sync_cluster ~g:3 () in
  let smr = List.assoc 0 c.nodes in
  Sync_smr.propose smr "op";
  Sync_smr.stop smr;
  run_boundaries c 6;
  Alcotest.(check (list (pair int string))) "nothing executed after stop" [] (log_of c 0)

let test_sync_smr_batching () =
  (* Several payloads proposed before a slot start travel as one batch
     and execute in proposal order. *)
  let c = make_sync_cluster ~g:4 () in
  let smr = List.assoc 3 c.nodes in
  List.iter (Sync_smr.propose smr) [ "a"; "b"; "c" ];
  run_boundaries c 6;
  Alcotest.(check (list (pair int string))) "batch order"
    [ (3, "a"); (3, "b"); (3, "c") ] (log_of c 3)

let prop_sync_smr_agreement =
  QCheck.Test.make ~name:"sync SMR: identical logs at all correct nodes" ~count:25
    QCheck.(triple (int_range 2 8) (int_range 0 500) (int_range 1 4))
    (fun (g, seed, ops_per_node) ->
      let rng = Atum_util.Rng.create seed in
      let f = Smr_intf.sync_f ~group_size:g in
      let quiet =
        Atum_util.Rng.sample_without_replacement rng (Atum_util.Rng.int rng (f + 1))
          (List.init g Fun.id)
      in
      let c = make_sync_cluster ~g ~quiet () in
      List.iter
        (fun (self, smr) ->
          for k = 1 to ops_per_node do
            Sync_smr.propose smr (Printf.sprintf "%d.%d" self k)
          done)
        c.nodes;
      run_boundaries c ((f + 1) * 3 + 1);
      match c.nodes with
      | [] -> true
      | (i0, _) :: rest ->
        let reference = log_of c i0 in
        List.length reference = List.length c.nodes * ops_per_node
        && List.for_all (fun (i, _) -> log_of c i = reference) rest)

let prop_batch_roundtrip =
  QCheck.Test.make ~name:"batch encoding roundtrips arbitrary payloads" ~count:300
    QCheck.(list string)
    (fun payloads -> Sync_smr.decode_batch (Sync_smr.encode_batch payloads) = payloads)

let prop_batch_decode_total =
  QCheck.Test.make ~name:"batch decoding never raises on garbage" ~count:500 QCheck.string
    (fun s ->
      let decoded = Sync_smr.decode_batch s in
      (* Every decoded payload must re-encode into a prefix-consistent
         batch; mostly we care that no exception escaped. *)
      List.length decoded >= 0)

(* ------------------------------------------------------------------ *)
(* PBFT over the simulated network                                     *)
(* ------------------------------------------------------------------ *)

type pbft_cluster = {
  engine : Atum_sim.Engine.t;
  instances : (int * Pbft.t) list;
  plogs : (int, (int * string) list ref) Hashtbl.t;
}

let make_pbft_cluster ?(quiet = []) ?(timeout = 2.0) ~n () =
  let engine = Atum_sim.Engine.create () in
  let net : Pbft.msg Atum_sim.Network.t =
    Atum_sim.Network.create engine (Atum_sim.Network.datacenter_config ~seed:7)
  in
  let members = List.init n Fun.id in
  let correct = List.filter (fun i -> not (List.mem i quiet)) members in
  let f = Smr_intf.async_f ~group_size:n in
  let plogs = Hashtbl.create n in
  let instances =
    List.map
      (fun self ->
        let log = ref [] in
        Hashtbl.replace plogs self log;
        let transport =
          {
            Smr_intf.self;
            members;
            f;
            send = (fun dst m -> Atum_sim.Network.send net ~src:self ~dst m);
            set_timer = (fun delay fn -> Atum_sim.Engine.schedule engine ~delay fn);
          }
        in
        let inst =
          Pbft.create ~transport ~timeout ~on_execute:(fun op ->
              log := (op.Smr_intf.origin, op.payload) :: !log)
        in
        Atum_sim.Network.register net self (fun ~src m -> Pbft.receive inst ~src m);
        (self, inst))
      correct
  in
  { engine; instances; plogs }

let pbft_log c i = List.rev !(Hashtbl.find c.plogs i)

let test_pbft_basic () =
  let c = make_pbft_cluster ~n:4 () in
  Pbft.propose (List.assoc 1 c.instances) "hello";
  Atum_sim.Engine.run ~until:1.0 c.engine;
  List.iter
    (fun (self, _) ->
      Alcotest.(check (list (pair int string)))
        (Printf.sprintf "node %d" self) [ (1, "hello") ] (pbft_log c self))
    c.instances

let test_pbft_many_proposers_same_order () =
  let c = make_pbft_cluster ~n:7 () in
  List.iter
    (fun (self, inst) ->
      Pbft.propose inst (Printf.sprintf "a-%d" self);
      Pbft.propose inst (Printf.sprintf "b-%d" self))
    c.instances;
  Atum_sim.Engine.run ~until:5.0 c.engine;
  let reference = pbft_log c 0 in
  Alcotest.(check int) "all executed" 14 (List.length reference);
  List.iter
    (fun (self, _) ->
      Alcotest.(check (list (pair int string)))
        (Printf.sprintf "node %d" self) reference (pbft_log c self))
    c.instances

let test_pbft_quiet_backups_still_live () =
  let c = make_pbft_cluster ~n:7 ~quiet:[ 5; 6 ] () in
  Pbft.propose (List.assoc 0 c.instances) "op";
  Atum_sim.Engine.run ~until:2.0 c.engine;
  List.iter
    (fun (self, _) ->
      Alcotest.(check (list (pair int string)))
        (Printf.sprintf "node %d" self) [ (0, "op") ] (pbft_log c self))
    c.instances

let test_pbft_view_change_on_quiet_primary () =
  (* View 0 primary is node 0; keep it quiet.  The request must still
     execute after a view change, on all correct nodes. *)
  let c = make_pbft_cluster ~n:4 ~quiet:[ 0 ] ~timeout:0.5 () in
  Pbft.propose (List.assoc 1 c.instances) "survive";
  Atum_sim.Engine.run ~until:30.0 c.engine;
  List.iter
    (fun (self, inst) ->
      Alcotest.(check (list (pair int string)))
        (Printf.sprintf "node %d" self) [ (1, "survive") ] (pbft_log c self);
      Alcotest.(check bool) "moved past view 0" true (Pbft.view inst >= 1))
    c.instances

let test_pbft_executes_exactly_once () =
  let c = make_pbft_cluster ~n:4 ~timeout:0.2 () in
  (* Short timeout: requests are retransmitted while the protocol is
     still running; dedup must prevent double execution. *)
  Pbft.propose (List.assoc 2 c.instances) "once";
  Atum_sim.Engine.run ~until:10.0 c.engine;
  List.iter
    (fun (self, _) ->
      Alcotest.(check (list (pair int string)))
        (Printf.sprintf "node %d" self) [ (2, "once") ] (pbft_log c self))
    c.instances

let test_pbft_primary_rotation_is_member_order () =
  let c = make_pbft_cluster ~n:4 () in
  let inst = List.assoc 0 c.instances in
  Alcotest.(check int) "view 0 primary" 0 (Pbft.primary inst)

let test_pbft_two_view_changes () =
  (* Primaries of views 0 and 1 are both quiet: the protocol must walk
     two view changes and still execute everywhere. *)
  let c = make_pbft_cluster ~n:7 ~quiet:[ 0; 1 ] ~timeout:0.5 () in
  Pbft.propose (List.assoc 2 c.instances) "persist";
  Atum_sim.Engine.run ~until:60.0 c.engine;
  List.iter
    (fun (self, inst) ->
      Alcotest.(check (list (pair int string)))
        (Printf.sprintf "node %d" self) [ (2, "persist") ] (pbft_log c self);
      Alcotest.(check bool) "reached view >= 2" true (Pbft.view inst >= 2))
    c.instances

let test_pbft_post_viewchange_proposals () =
  (* After a view change, fresh proposals must keep flowing. *)
  let c = make_pbft_cluster ~n:4 ~quiet:[ 0 ] ~timeout:0.5 () in
  Pbft.propose (List.assoc 1 c.instances) "first";
  Atum_sim.Engine.run ~until:30.0 c.engine;
  Pbft.propose (List.assoc 2 c.instances) "second";
  Atum_sim.Engine.run ~until:60.0 c.engine;
  let reference = pbft_log c 1 in
  Alcotest.(check int) "both executed" 2 (List.length reference);
  List.iter
    (fun (self, _) ->
      Alcotest.(check (list (pair int string)))
        (Printf.sprintf "node %d" self) reference (pbft_log c self))
    c.instances

let test_pbft_decisions_stable_across_runs () =
  (* Regression for the determinism sweep: replacing the polymorphic
     member sorts and certificate folds in PBFT's decision path with
     keyed sorts must keep seed-run decisions reproducible.  Two
     identical in-process runs — through a view change, which exercises
     the certificate-collection path — must decide byte-identical
     sequences on every replica. *)
  let run () =
    let c = make_pbft_cluster ~n:7 ~quiet:[ 0 ] ~timeout:0.5 () in
    List.iter
      (fun (self, inst) -> Pbft.propose inst (Printf.sprintf "op-%d" self))
      c.instances;
    Atum_sim.Engine.run ~until:60.0 c.engine;
    List.map (fun (self, _) -> (self, pbft_log c self)) c.instances
  in
  let rec is_prefix p l =
    match (p, l) with
    | [], _ -> true
    | x :: p', y :: l' -> x = y && is_prefix p' l'
    | _ :: _, [] -> false
  in
  let a = run () in
  (match a with
  | (_, reference) :: rest ->
    Alcotest.(check int) "all ops executed at the first replica" 6 (List.length reference);
    (* A replica may still be committing the tail at the cutoff, so
       safety here is prefix agreement, not log equality. *)
    List.iter
      (fun (self, l) ->
        Alcotest.(check bool)
          (Printf.sprintf "replica %d decided a prefix of the reference" self)
          true (is_prefix l reference);
        Alcotest.(check bool)
          (Printf.sprintf "replica %d is nearly caught up" self)
          true
          (List.length l >= List.length reference - 1))
      rest
  | [] -> Alcotest.fail "no instances");
  let b = run () in
  Alcotest.(check bool) "same-seed runs decide identically" true (a = b)

let prop_pbft_agreement =
  QCheck.Test.make ~name:"PBFT: identical logs with random quiet faults" ~count:15
    QCheck.(pair (int_range 4 10) (int_range 0 500))
    (fun (n, seed) ->
      let f = Smr_intf.async_f ~group_size:n in
      let rng = Atum_util.Rng.create seed in
      let quiet =
        Atum_util.Rng.sample_without_replacement rng
          (Atum_util.Rng.int rng (f + 1))
          (List.init (n - 1) (fun i -> i + 1))
      in
      let c = make_pbft_cluster ~n ~quiet ~timeout:1.0 () in
      List.iter (fun (self, inst) -> Pbft.propose inst (Printf.sprintf "op-%d" self)) c.instances;
      Atum_sim.Engine.run ~until:20.0 c.engine;
      match c.instances with
      | [] -> true
      | (i0, _) :: rest ->
        let reference = pbft_log c i0 in
        List.length reference = List.length c.instances
        && List.for_all (fun (i, _) -> pbft_log c i = reference) rest)

let () =
  Alcotest.run "smr"
    [
      ( "dolev-strong",
        [
          Alcotest.test_case "all correct" `Quick test_ds_all_correct;
          Alcotest.test_case "silent sender" `Quick test_ds_silent_sender;
          Alcotest.test_case "single node" `Quick test_ds_single_node_group;
          Alcotest.test_case "quiet relays" `Quick test_ds_quiet_relays;
          Alcotest.test_case "equivocation" `Quick test_ds_equivocating_sender_agreement;
          Alcotest.test_case "forged chain" `Quick test_ds_forged_chain_rejected;
          Alcotest.test_case "replay rejected" `Quick test_ds_replay_across_instances_rejected;
          QCheck_alcotest.to_alcotest prop_ds_validity;
          QCheck_alcotest.to_alcotest prop_ds_agreement_under_equivocation;
        ] );
      ( "sync-smr",
        [
          Alcotest.test_case "single node" `Quick test_sync_smr_single_node;
          Alcotest.test_case "all correct" `Quick test_sync_smr_all_correct_agree;
          Alcotest.test_case "quiet byzantine" `Quick test_sync_smr_quiet_byzantine;
          Alcotest.test_case "cross-slot order" `Quick test_sync_smr_cross_slot_order;
          Alcotest.test_case "stop freezes" `Quick test_sync_smr_stop_freezes;
          Alcotest.test_case "batching" `Quick test_sync_smr_batching;
          QCheck_alcotest.to_alcotest prop_sync_smr_agreement;
          QCheck_alcotest.to_alcotest prop_batch_roundtrip;
          QCheck_alcotest.to_alcotest prop_batch_decode_total;
        ] );
      ( "pbft",
        [
          Alcotest.test_case "basic" `Quick test_pbft_basic;
          Alcotest.test_case "many proposers" `Quick test_pbft_many_proposers_same_order;
          Alcotest.test_case "quiet backups" `Quick test_pbft_quiet_backups_still_live;
          Alcotest.test_case "view change" `Quick test_pbft_view_change_on_quiet_primary;
          Alcotest.test_case "exactly once" `Quick test_pbft_executes_exactly_once;
          Alcotest.test_case "primary order" `Quick test_pbft_primary_rotation_is_member_order;
          Alcotest.test_case "two view changes" `Quick test_pbft_two_view_changes;
          Alcotest.test_case "post-viewchange proposals" `Quick test_pbft_post_viewchange_proposals;
          Alcotest.test_case "decisions stable across runs" `Quick
            test_pbft_decisions_stable_across_runs;
          QCheck_alcotest.to_alcotest prop_pbft_agreement;
        ] );
    ]
