open Atum_apps

let quick_params =
  { Atum_core.Params.default with Atum_core.Params.hc = 3; rwl = 4; round_duration = 0.5; seed = 3 }

(* ------------------------------------------------------------------ *)
(* Kv_index                                                            *)
(* ------------------------------------------------------------------ *)

let k owner name = { Kv_index.owner; name }

let test_index_put_get () =
  let ix = Kv_index.create () in
  Kv_index.put ix (k "alice" "song.mp3") 1;
  Kv_index.put ix (k "bob" "movie.mkv") 2;
  Alcotest.(check (option int)) "get" (Some 1) (Kv_index.get ix (k "alice" "song.mp3"));
  Alcotest.(check (option int)) "missing" None (Kv_index.get ix (k "alice" "movie.mkv"));
  Alcotest.(check int) "size" 2 (Kv_index.size ix)

let test_index_overwrite () =
  let ix = Kv_index.create () in
  Kv_index.put ix (k "a" "f") 1;
  Kv_index.put ix (k "a" "f") 2;
  Alcotest.(check (option int)) "overwritten" (Some 2) (Kv_index.get ix (k "a" "f"));
  Alcotest.(check int) "no duplicate" 1 (Kv_index.size ix)

let test_index_remove () =
  let ix = Kv_index.create () in
  Kv_index.put ix (k "a" "f") 1;
  Kv_index.remove ix (k "a" "f");
  Alcotest.(check bool) "gone" false (Kv_index.mem ix (k "a" "f"))

let test_index_namespaces_disjoint () =
  let ix = Kv_index.create () in
  Kv_index.put ix (k "alice" "file") 1;
  Kv_index.put ix (k "bob" "file") 2;
  Alcotest.(check int) "same name, two owners" 2 (Kv_index.size ix)

let test_index_search () =
  let ix = Kv_index.create () in
  Kv_index.put ix (k "alice" "holiday-photos.zip") 1;
  Kv_index.put ix (k "bob" "report.pdf") 2;
  Kv_index.put ix (k "carol" "holiday-video.mp4") 3;
  let hits = Kv_index.search ix "holiday" in
  Alcotest.(check int) "two hits" 2 (List.length hits);
  let by_owner = Kv_index.search ix "bob" in
  Alcotest.(check int) "owner match" 1 (List.length by_owner);
  Alcotest.(check int) "empty term matches all" 3 (List.length (Kv_index.search ix ""))

let test_index_keys_sorted () =
  let ix = Kv_index.create () in
  Kv_index.put ix (k "b" "1") 0;
  Kv_index.put ix (k "a" "2") 0;
  Kv_index.put ix (k "a" "1") 0;
  Alcotest.(check (list (pair string string))) "sorted"
    [ ("a", "1"); ("a", "2"); ("b", "1") ]
    (List.map (fun { Kv_index.owner; name } -> (owner, name)) (Kv_index.keys ix))

let test_index_owner_files_range () =
  let ix = Kv_index.create () in
  Kv_index.put ix (k "alice" "a.txt") 1;
  Kv_index.put ix (k "alice" "b.txt") 2;
  Kv_index.put ix (k "bob" "a.txt") 3;
  Kv_index.put ix (k "albert" "z.txt") 4;
  let files = Kv_index.owner_files ix "alice" in
  Alcotest.(check (list string)) "alice's namespace only" [ "a.txt"; "b.txt" ]
    (List.map (fun ({ Kv_index.name; _ }, _) -> name) files)

let prop_index_model =
  QCheck.Test.make ~name:"kv_index behaves like an association map" ~count:200
    QCheck.(list (pair (pair small_string small_string) small_int))
    (fun ops ->
      let ix = Kv_index.create () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun ((o, n), v) ->
          Kv_index.put ix (k o n) v;
          Hashtbl.replace model (o, n) v)
        ops;
      Hashtbl.fold
        (fun (o, n) v acc -> acc && Kv_index.get ix (k o n) = Some v)
        model true
      && Kv_index.size ix = Hashtbl.length model)

(* Snapshot-codec round-trip: an index rebuilt from its durable JSON
   form must be indistinguishable from the original. *)
let prop_index_snapshot_roundtrip =
  let module Json = Atum_util.Json in
  QCheck.Test.make ~name:"kv_index snapshot codec roundtrips" ~count:200
    QCheck.(list (pair bool (pair (pair small_string small_string) small_int)))
    (fun ops ->
      let ix = Kv_index.create () in
      List.iter
        (fun (add, ((o, n), v)) ->
          if add then Kv_index.put ix (k o n) v else Kv_index.remove ix (k o n))
        ops;
      let blob = Kv_index.to_json (fun v -> Json.Int v) ix in
      match
        Kv_index.of_json (function Json.Int v -> Some v | _ -> None) blob
      with
      | None -> false
      | Some ix' ->
        let dump t = Kv_index.fold (fun key v acc -> (key, v) :: acc) t [] in
        dump ix' = dump ix
        (* and the serialized form itself is stable *)
        && Json.equal blob (Kv_index.to_json (fun v -> Json.Int v) ix'))

let test_index_of_json_rejects_malformed () =
  let module Json = Atum_util.Json in
  let dec = function Json.Int v -> Some v | _ -> None in
  List.iter
    (fun j ->
      match Kv_index.of_json dec j with
      | None -> ()
      | Some _ -> Alcotest.failf "accepted malformed snapshot %s" (Json.to_string j))
    [
      Json.Int 3;
      Json.List [ Json.Int 1 ];
      Json.List [ Json.Obj [ ("owner", Json.String "a") ] ];
      Json.List
        [
          Json.Obj
            [ ("owner", Json.String "a"); ("name", Json.String "f");
              ("value", Json.String "not an int") ];
        ];
    ]

(* ------------------------------------------------------------------ *)
(* ASub                                                                *)
(* ------------------------------------------------------------------ *)

let test_asub_topic_lifecycle () =
  let s = Asub.create ~params:quick_params () in
  Asub.create_topic s "news";
  Asub.create_topic s "sports";
  Alcotest.(check (list string)) "topics" [ "news"; "sports" ] (Asub.topics s);
  Alcotest.check_raises "duplicate topic" (Invalid_argument "Asub: duplicate topic news")
    (fun () -> Asub.create_topic s "news")

let test_asub_subscribe_publish () =
  let s = Asub.create ~params:quick_params () in
  Asub.create_topic s "news";
  Asub.subscribe s ~topic:"news" "alice";
  Asub.subscribe s ~topic:"news" "bob";
  Asub.run_for s 120.0;
  Alcotest.(check bool) "alice subscribed" true (Asub.is_subscribed s ~topic:"news" "alice");
  let events = ref [] in
  Asub.on_event s (fun e -> events := e :: !events);
  Asub.publish s ~topic:"news" ~as_:"alice" "headline";
  Asub.run_for s 60.0;
  let subs = List.length (Asub.subscribers s ~topic:"news") in
  Alcotest.(check int) "everyone got it" subs (List.length !events);
  List.iter
    (fun (e : Asub.event) ->
      Alcotest.(check string) "topic" "news" e.Asub.topic;
      Alcotest.(check string) "publisher" "alice" e.Asub.publisher;
      Alcotest.(check string) "payload" "headline" e.Asub.payload)
    !events

let test_asub_unsubscribe () =
  let s = Asub.create ~params:quick_params () in
  Asub.create_topic s "t";
  Asub.subscribe s ~topic:"t" "alice";
  Asub.run_for s 120.0;
  Asub.unsubscribe s ~topic:"t" "alice";
  Asub.run_for s 120.0;
  Alcotest.(check bool) "gone" false (Asub.is_subscribed s ~topic:"t" "alice");
  let events = ref 0 in
  Asub.on_event s (fun _ -> incr events);
  Asub.publish s ~topic:"t" ~as_:"@root" "after";
  Asub.run_for s 30.0;
  Alcotest.(check int) "only root delivers" 1 !events

let test_asub_topics_isolated () =
  let s = Asub.create ~params:quick_params () in
  Asub.create_topic s "a";
  Asub.create_topic s "b";
  Asub.subscribe s ~topic:"a" "alice";
  Asub.run_for s 120.0;
  let seen = ref [] in
  Asub.on_event s (fun e -> seen := e.Asub.topic :: !seen);
  Asub.publish s ~topic:"a" ~as_:"@root" "x";
  Asub.run_for s 30.0;
  Alcotest.(check bool) "no leak to topic b" true (List.for_all (( = ) "a") !seen);
  Alcotest.(check bool) "delivered in a" true (!seen <> [])

let test_asub_publish_requires_subscription () =
  let s = Asub.create ~params:quick_params () in
  Asub.create_topic s "t";
  Alcotest.check_raises "stranger cannot publish"
    (Invalid_argument "Asub: publisher not subscribed: mallory") (fun () ->
      Asub.publish s ~topic:"t" ~as_:"mallory" "spam")

(* ------------------------------------------------------------------ *)
(* AShare                                                              *)
(* ------------------------------------------------------------------ *)

let make_share ?(n = 12) ?(rho = 3) ?(seed = 21) () =
  let built = Atum_workload.Builder.grow ~params:{ quick_params with seed } ~n ~seed () in
  let share = Ashare.attach built.Atum_workload.Builder.atum ~rho in
  (built, share)

let run_share share dt = Atum_core.Atum.run_for (Ashare.atum share) dt

let test_ashare_put_indexes_everywhere () =
  let built, share = make_share () in
  let owner = List.hd (Atum_workload.Builder.correct_members built) in
  Ashare.put share ~owner ~name:"doc.txt" (Ashare.Real "hello world");
  run_share share 120.0;
  List.iter
    (fun node ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d indexed it" node)
        true
        (Ashare.replica_count share ~node ~owner:(Ashare.owner_name owner) ~name:"doc.txt" >= 1))
    (Atum_workload.Builder.correct_members built)

let test_ashare_replication_reaches_rho () =
  let built, share = make_share ~rho:4 () in
  let owner = List.hd (Atum_workload.Builder.correct_members built) in
  Ashare.put share ~owner ~name:"popular.bin" (Ashare.Real (String.make 2048 'p'));
  (* Let the feedback loop run several broadcast generations. *)
  run_share share 2_000.0;
  let node = List.hd (Atum_workload.Builder.correct_members built) in
  let c = Ashare.replica_count share ~node ~owner:(Ashare.owner_name owner) ~name:"popular.bin" in
  Alcotest.(check bool) (Printf.sprintf "at least rho replicas (got %d)" c) true (c >= 4)

let test_ashare_get_returns_content () =
  let built, share = make_share () in
  let members = Atum_workload.Builder.correct_members built in
  let owner = List.hd members and reader = List.nth members 2 in
  let content = String.make 4096 'z' in
  Ashare.put share ~owner ~name:"data.bin" (Ashare.Real content);
  run_share share 120.0;
  let got = ref None in
  Ashare.get share ~reader ~owner:(Ashare.owner_name owner) ~name:"data.bin" ~k:(fun r ->
      got := r);
  run_share share 600.0;
  match !got with
  | Some r ->
    Alcotest.(check (option string)) "content" (Some content) r.Ashare.data;
    Alcotest.(check int) "no corruption" 0 r.Ashare.corrupted_chunks;
    Alcotest.(check bool) "positive latency" true (r.Ashare.latency > 0.0)
  | None -> Alcotest.fail "GET failed"

let test_ashare_get_unknown_file () =
  let built, share = make_share () in
  let reader = List.hd (Atum_workload.Builder.correct_members built) in
  let got = ref (Some { Ashare.latency = 0.0; pulled_mb = 0.0; corrupted_chunks = 0; data = None }) in
  Ashare.get share ~reader ~owner:"nobody" ~name:"ghost" ~k:(fun r -> got := r);
  run_share share 10.0;
  Alcotest.(check bool) "None for unknown file" true (!got = None)

let test_ashare_corrupted_replicas_repulled () =
  let built, share = make_share ~n:14 () in
  let members = Atum_workload.Builder.correct_members built in
  let owner = List.hd members in
  Ashare.put share ~owner ~name:"victim.bin" ~chunk_count:10 (Ashare.Synthetic 10.0);
  run_share share 120.0;
  (* Two corrupting holders, two correct ones. *)
  let sys = Atum_core.Atum.system (Ashare.atum share) in
  let h1 = List.nth members 3 and h2 = List.nth members 4 in
  let c1 = List.nth members 5 and c2 = List.nth members 6 in
  Atum_core.System.make_byzantine sys h1;
  Atum_core.System.make_byzantine sys h2;
  Ashare.place_replicas share ~owner ~name:"victim.bin" ~holders:[ h1; h2; c1; c2 ];
  let reader = List.nth members 7 in
  let got = ref None in
  Ashare.get share ~reader ~owner:(Ashare.owner_name owner) ~name:"victim.bin" ~k:(fun r ->
      got := r);
  run_share share 600.0;
  (match !got with
  | Some r ->
    Alcotest.(check bool)
      (Printf.sprintf "some chunks corrupted (%d)" r.Ashare.corrupted_chunks)
      true
      (r.Ashare.corrupted_chunks > 0);
    Alcotest.(check bool) "re-pulled extra data" true (r.Ashare.pulled_mb > 10.0)
  | None -> Alcotest.fail "GET failed despite correct replicas");
  (* Clean read of the same size for comparison. *)
  Ashare.place_replicas share ~owner ~name:"victim.bin" ~holders:[ c1; c2 ];
  let clean = ref None in
  Ashare.get share ~reader ~owner:(Ashare.owner_name owner) ~name:"victim.bin" ~k:(fun r ->
      clean := r);
  run_share share 600.0;
  match (!got, !clean) with
  | Some dirty, Some clean ->
    Alcotest.(check bool) "corruption costs latency" true
      (dirty.Ashare.latency > clean.Ashare.latency)
  | _ -> Alcotest.fail "comparison GET failed"

let test_ashare_delete () =
  let built, share = make_share () in
  let members = Atum_workload.Builder.correct_members built in
  let owner = List.hd members in
  Ashare.put share ~owner ~name:"temp.txt" (Ashare.Real "bye");
  run_share share 120.0;
  Ashare.delete share ~owner ~name:"temp.txt";
  run_share share 120.0;
  List.iter
    (fun node ->
      Alcotest.(check int)
        (Printf.sprintf "node %d dropped metadata" node)
        0
        (Ashare.replica_count share ~node ~owner:(Ashare.owner_name owner) ~name:"temp.txt");
      Alcotest.(check bool) "replica dropped" false
        (Ashare.stores share ~node ~owner:(Ashare.owner_name owner) ~name:"temp.txt"))
    members

let test_ashare_search () =
  let built, share = make_share () in
  let members = Atum_workload.Builder.correct_members built in
  let owner = List.hd members in
  Ashare.put share ~owner ~name:"summer-photos.zip" (Ashare.Real "a");
  Ashare.put share ~owner ~name:"winter-photos.zip" (Ashare.Real "b");
  Ashare.put share ~owner ~name:"taxes.pdf" (Ashare.Real "c");
  run_share share 200.0;
  let node = List.nth members 2 in
  Alcotest.(check int) "photos" 2 (List.length (Ashare.search share ~node "photos"));
  Alcotest.(check int) "by owner" 3
    (List.length (Ashare.search share ~node (Ashare.owner_name owner)))

let test_ashare_indexes_converge () =
  let built, share = make_share () in
  let owner = List.hd (Atum_workload.Builder.correct_members built) in
  Ashare.put share ~owner ~name:"one" (Ashare.Real "1");
  Ashare.put share ~owner ~name:"two" (Ashare.Real "2");
  run_share share 2_000.0;
  Alcotest.(check bool) "soft state converged" true (Ashare.indexes_converged share)

let test_ashare_local_read_is_cheap () =
  let built, share = make_share () in
  let members = Atum_workload.Builder.correct_members built in
  let owner = List.hd members in
  Ashare.put share ~owner ~name:"mine.bin" ~chunk_count:4 (Ashare.Synthetic 8.0) ;
  run_share share 120.0;
  (* The owner reads its own replica: no network pull at all. *)
  let got = ref None in
  Ashare.get share ~reader:owner ~owner:(Ashare.owner_name owner) ~name:"mine.bin"
    ~k:(fun r -> got := r);
  run_share share 120.0;
  match !got with
  | Some r ->
    Alcotest.(check (float 1e-9)) "nothing pulled" 0.0 r.Ashare.pulled_mb;
    Alcotest.(check bool) "cheaper than a remote read" true (r.Ashare.latency < 0.5)
  | None -> Alcotest.fail "local GET failed"

let test_ashare_all_replicas_corrupt_fails () =
  let built, share = make_share ~n:12 () in
  let members = Atum_workload.Builder.correct_members built in
  let owner = List.hd members in
  Ashare.put share ~owner ~name:"doomed.bin" ~chunk_count:10 (Ashare.Synthetic 10.0);
  run_share share 120.0;
  let sys = Atum_core.Atum.system (Ashare.atum share) in
  let h1 = List.nth members 3 and h2 = List.nth members 4 in
  Atum_core.System.make_byzantine sys h1;
  Atum_core.System.make_byzantine sys h2;
  Ashare.place_replicas share ~owner ~name:"doomed.bin" ~holders:[ h1; h2 ];
  let reader = List.nth members 5 in
  let got = ref (Some { Ashare.latency = 0.0; pulled_mb = 0.0; corrupted_chunks = 0; data = None }) in
  Ashare.get share ~reader ~owner:(Ashare.owner_name owner) ~name:"doomed.bin"
    ~k:(fun r -> got := r);
  run_share share 600.0;
  Alcotest.(check bool) "no correct replica -> failure" true (!got = None)

let test_ashare_rho_one_means_no_replication () =
  let built, share = make_share ~rho:1 () in
  let members = Atum_workload.Builder.correct_members built in
  let owner = List.hd members in
  Ashare.put share ~owner ~name:"lonely.txt" (Ashare.Real "just me");
  run_share share 1_000.0;
  let node = List.nth members 2 in
  Alcotest.(check int) "owner is the only replica" 1
    (Ashare.replica_count share ~node ~owner:(Ashare.owner_name owner) ~name:"lonely.txt")

(* ------------------------------------------------------------------ *)
(* AStream                                                             *)
(* ------------------------------------------------------------------ *)

let make_stream ?(n = 20) ?(cycles_used = 1) ?(seed = 33) () =
  let built = Atum_workload.Builder.grow ~params:{ quick_params with seed } ~n ~seed () in
  let forest =
    Astream.build ~atum:built.Atum_workload.Builder.atum
      ~source:built.Atum_workload.Builder.first ~cycles_used ~seed
  in
  (built, forest)

let test_astream_forest_complete () =
  let _, forest = make_stream () in
  match Astream.check_forest forest with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_astream_every_node_has_parents () =
  let built, forest = make_stream () in
  List.iter
    (fun nid ->
      if nid <> Astream.source forest then
        Alcotest.(check bool)
          (Printf.sprintf "node %d has parents" nid)
          true
          (Astream.parents forest nid <> []))
    (Atum_workload.Builder.correct_members built)

let test_astream_stream_reaches_everyone () =
  let built, forest = make_stream () in
  let stats = Astream.stream forest ~chunk_mb:1.0 in
  Alcotest.(check (list int)) "no unreached nodes" [] stats.Astream.unreached;
  Alcotest.(check int) "latency for every correct node"
    (List.length (Atum_workload.Builder.correct_members built) - 1)
    (List.length stats.Astream.per_node_latency);
  Alcotest.(check bool) "positive latency" true (stats.Astream.mean_latency > 0.0)

let test_astream_double_cycle_faster () =
  let built = Atum_workload.Builder.grow ~params:{ quick_params with seed = 44 } ~n:40 ~seed:44 () in
  let lat cycles_used =
    let f =
      Astream.build ~atum:built.Atum_workload.Builder.atum
        ~source:built.Atum_workload.Builder.first ~cycles_used ~seed:44
    in
    (Astream.stream f ~chunk_mb:1.0).Astream.mean_latency
  in
  let single = lat 1 and double = lat 2 in
  Alcotest.(check bool)
    (Printf.sprintf "double (%.3f) <= single (%.3f)" double single)
    true (double <= single)

let test_astream_tolerates_byzantine_parents () =
  let built, forest = make_stream ~n:24 ~seed:55 () in
  (* Make up to f nodes per vgroup Byzantine, then confirm everyone is
     still reachable through correct parents. *)
  let atum = built.Atum_workload.Builder.atum in
  let sys = Atum_core.Atum.system atum in
  let rng = Atum_util.Rng.create 7 in
  List.iter
    (fun vid ->
      let members =
        List.filter (fun m -> m <> built.Atum_workload.Builder.first)
          (Atum_core.Atum.members_of_vgroup atum vid)
      in
      let g = List.length (Atum_core.Atum.members_of_vgroup atum vid) in
      let f = Atum_smr.Smr_intf.sync_f ~group_size:g in
      let byz = Atum_util.Rng.sample_without_replacement rng (min f (List.length members)) members in
      List.iter (fun b -> Atum_core.System.make_byzantine sys b) byz)
    (Atum_overlay.Hgraph.vertices (Atum_core.System.hgraph sys));
  let stats = Astream.stream forest ~chunk_mb:1.0 in
  Alcotest.(check (list int)) "still reaches every correct node" [] stats.Astream.unreached

let test_astream_simulate_delivers_all_chunks () =
  let _, forest = make_stream () in
  let stats = Astream.simulate forest ~chunk_mb:1.0 in
  Alcotest.(check (list int)) "every correct node got the full stream" []
    stats.Astream.sim_unreached;
  Alcotest.(check bool) "positive latency" true (stats.Astream.sim_mean_latency > 0.0)

let test_astream_simulate_tolerates_byzantine () =
  let built, forest = make_stream ~n:24 ~seed:77 () in
  let sys = Atum_core.Atum.system built.Atum_workload.Builder.atum in
  let rng = Atum_util.Rng.create 9 in
  (* one Byzantine member per vgroup, sparing the source *)
  List.iter
    (fun vid ->
      let members =
        List.filter (fun m -> m <> built.Atum_workload.Builder.first)
          (Atum_core.Atum.members_of_vgroup built.Atum_workload.Builder.atum vid)
      in
      match members with
      | [] -> ()
      | ms -> Atum_core.System.make_byzantine sys (Atum_util.Rng.pick rng ms))
    (Atum_overlay.Hgraph.vertices (Atum_core.System.hgraph sys));
  let stats = Astream.simulate forest ~chunk_mb:1.0 in
  Alcotest.(check (list int)) "full delivery despite Byzantine relays" []
    stats.Astream.sim_unreached;
  Alcotest.(check bool) "some probing happened or not needed" true
    (stats.Astream.parent_switches >= 0)

let test_astream_simulate_matches_analytic_ordering () =
  (* The event-driven simulation and the analytic model must agree on
     who is slow: deeper systems have higher latency in both. *)
  let _, small_forest = make_stream ~n:14 ~seed:88 () in
  let _, big_forest = make_stream ~n:40 ~seed:89 () in
  let s1 = (Astream.simulate small_forest ~chunk_mb:1.0).Astream.sim_mean_latency in
  let s2 = (Astream.simulate big_forest ~chunk_mb:1.0).Astream.sim_mean_latency in
  Alcotest.(check bool)
    (Printf.sprintf "bigger is slower (%.3f <= %.3f + slack)" s1 s2)
    true (s1 <= s2 +. 0.15)

let test_astream_bad_cycles_used () =
  let built = Atum_workload.Builder.grow ~params:{ quick_params with seed = 66 } ~n:8 ~seed:66 () in
  Alcotest.check_raises "cycles_used out of range"
    (Invalid_argument "Astream.build: cycles_used out of range") (fun () ->
      ignore
        (Astream.build ~atum:built.Atum_workload.Builder.atum
           ~source:built.Atum_workload.Builder.first ~cycles_used:99 ~seed:1))

(* ------------------------------------------------------------------ *)
(* DHT (the paper's footnote-5 future work)                            *)
(* ------------------------------------------------------------------ *)

let make_dht ?(n = 128) ?(replicas = 4) () =
  Dht.build ~replicas ~node_ids:(List.init n Fun.id) ()

let test_dht_positions_unique () =
  let d = make_dht () in
  let positions = List.init 128 (Dht.position_of d) in
  Alcotest.(check int) "all distinct" 128 (List.length (List.sort_uniq compare positions))

let test_dht_holders () =
  let d = make_dht ~replicas:5 () in
  let hs = Dht.holders d "some-file" in
  Alcotest.(check int) "replica count" 5 (List.length hs);
  Alcotest.(check int) "distinct" 5 (List.length (List.sort_uniq compare hs));
  (* deterministic *)
  Alcotest.(check (list int)) "stable" hs (Dht.holders d "some-file")

let test_dht_lookup_clean () =
  let d = make_dht () in
  for i = 0 to 30 do
    let r = Dht.lookup d ~from:(i * 4) ~key:(Printf.sprintf "k-%d" i) in
    (match r.Dht.responsible with
    | Some owner ->
      Alcotest.(check bool) "owner is a holder" true
        (List.mem owner (Dht.holders d (Printf.sprintf "k-%d" i)))
    | None -> Alcotest.fail "clean lookup failed");
    Alcotest.(check bool)
      (Printf.sprintf "hops %d bounded" r.Dht.hops)
      true
      (r.Dht.hops <= 30)
  done

let test_dht_hops_logarithmic () =
  let small = make_dht ~n:32 () in
  let big = make_dht ~n:512 () in
  let hs = Dht.mean_lookup_hops small ~samples:300 ~seed:1 in
  let hb = Dht.mean_lookup_hops big ~samples:300 ~seed:1 in
  Alcotest.(check bool)
    (Printf.sprintf "hops grow slowly (%.2f -> %.2f)" hs hb)
    true
    (hb > hs && hb < 3.0 *. hs && hb <= 12.0)

let test_dht_survives_churn_with_detours () =
  let d = make_dht ~n:200 () in
  let rng = Atum_util.Rng.create 3 in
  let dead = Atum_util.Rng.sample_without_replacement rng 40 (List.init 200 Fun.id) in
  List.iter (Dht.mark_dead d) dead;
  let rate = Dht.lookup_success_rate d ~samples:400 ~seed:5 in
  Alcotest.(check bool)
    (Printf.sprintf "success %.3f despite 20%% departures" rate)
    true (rate >= 0.90);
  (* stabilization restores clean routing *)
  let fresh = Dht.rebuild d in
  Alcotest.(check int) "rebuilt over the live set" 160 (Dht.size fresh);
  Alcotest.(check (float 0.001)) "clean again" 1.0
    (Dht.lookup_success_rate fresh ~samples:300 ~seed:7)

let test_dht_byzantine_degrades_lookups () =
  (* The quantitative version of the paper's footnote: Byzantine
     routers hurt the DHT where Atum's broadcast index is immune. *)
  let clean = make_dht ~n:200 () in
  let dirty = make_dht ~n:200 () in
  let rng = Atum_util.Rng.create 11 in
  let byz = Atum_util.Rng.sample_without_replacement rng 50 (List.init 200 Fun.id) in
  List.iter (Dht.mark_byzantine dirty) byz;
  let clean_rate = Dht.lookup_success_rate clean ~samples:400 ~seed:13 in
  let dirty_rate = Dht.lookup_success_rate dirty ~samples:400 ~seed:13 in
  Alcotest.(check (float 0.001)) "clean is perfect" 1.0 clean_rate;
  Alcotest.(check bool)
    (Printf.sprintf "25%% byzantine degrade lookups (%.3f)" dirty_rate)
    true
    (dirty_rate < 1.0);
  (* rebuild cannot wash out quiet Byzantine routers *)
  let rebuilt = Dht.rebuild dirty in
  Alcotest.(check bool) "stabilization does not help against byzantine" true
    (Dht.lookup_success_rate rebuilt ~samples:400 ~seed:13 < 1.0)

let test_dht_more_replicas_help () =
  let rate replicas =
    let d = Dht.build ~replicas ~node_ids:(List.init 150 Fun.id) () in
    let rng = Atum_util.Rng.create 17 in
    List.iter (Dht.mark_byzantine d)
      (Atum_util.Rng.sample_without_replacement rng 45 (List.init 150 Fun.id));
    Dht.lookup_success_rate d ~samples:400 ~seed:19
  in
  let thin = rate 1 and thick = rate 6 in
  Alcotest.(check bool)
    (Printf.sprintf "replication helps (%.3f -> %.3f)" thin thick)
    true (thick >= thin)

let test_dht_ring_wraparound () =
  (* Keys whose position exceeds every node position wrap to the first
     ring entry. *)
  let d = make_dht ~n:16 () in
  for i = 0 to 200 do
    let key = Printf.sprintf "wrap-%d" i in
    let hs = Dht.holders d key in
    Alcotest.(check bool) "holders nonempty" true (hs <> []);
    List.iter
      (fun h -> Alcotest.(check bool) "holder is a node" true (h >= 0 && h < 16))
      hs
  done

let test_dht_rebuild_keeps_byzantine_marks () =
  let d = make_dht ~n:30 () in
  Dht.mark_byzantine d 3;
  Dht.mark_dead d 4;
  let fresh = Dht.rebuild d in
  Alcotest.(check int) "dead removed" 29 (Dht.size fresh);
  (* a lookup from the byzantine node is still refused *)
  let r = Dht.lookup fresh ~from:3 ~key:"x" in
  ignore r;
  Alcotest.(check bool) "byzantine mark survives" true
    (Dht.lookup_success_rate fresh ~samples:200 ~seed:1 <= 1.0)

let test_dht_bad_args () =
  Alcotest.check_raises "no nodes" (Invalid_argument "Dht.build: need at least one node")
    (fun () -> ignore (Dht.build ~node_ids:[] ()));
  Alcotest.check_raises "no replicas" (Invalid_argument "Dht.build: replicas must be at least 1")
    (fun () -> ignore (Dht.build ~replicas:0 ~node_ids:[ 1 ] ()))

let () =
  Alcotest.run "apps"
    [
      ( "kv-index",
        [
          Alcotest.test_case "put/get" `Quick test_index_put_get;
          Alcotest.test_case "overwrite" `Quick test_index_overwrite;
          Alcotest.test_case "remove" `Quick test_index_remove;
          Alcotest.test_case "namespaces" `Quick test_index_namespaces_disjoint;
          Alcotest.test_case "search" `Quick test_index_search;
          Alcotest.test_case "keys sorted" `Quick test_index_keys_sorted;
          Alcotest.test_case "owner range scan" `Quick test_index_owner_files_range;
          Alcotest.test_case "of_json rejects malformed" `Quick
            test_index_of_json_rejects_malformed;
          QCheck_alcotest.to_alcotest prop_index_model;
          QCheck_alcotest.to_alcotest prop_index_snapshot_roundtrip;
        ] );
      ( "asub",
        [
          Alcotest.test_case "topic lifecycle" `Quick test_asub_topic_lifecycle;
          Alcotest.test_case "subscribe/publish" `Slow test_asub_subscribe_publish;
          Alcotest.test_case "unsubscribe" `Slow test_asub_unsubscribe;
          Alcotest.test_case "topics isolated" `Slow test_asub_topics_isolated;
          Alcotest.test_case "publish needs subscription" `Quick test_asub_publish_requires_subscription;
        ] );
      ( "ashare",
        [
          Alcotest.test_case "put indexes everywhere" `Slow test_ashare_put_indexes_everywhere;
          Alcotest.test_case "replication reaches rho" `Slow test_ashare_replication_reaches_rho;
          Alcotest.test_case "get returns content" `Slow test_ashare_get_returns_content;
          Alcotest.test_case "get unknown" `Slow test_ashare_get_unknown_file;
          Alcotest.test_case "corruption re-pull" `Slow test_ashare_corrupted_replicas_repulled;
          Alcotest.test_case "delete" `Slow test_ashare_delete;
          Alcotest.test_case "search" `Slow test_ashare_search;
          Alcotest.test_case "indexes converge" `Slow test_ashare_indexes_converge;
          Alcotest.test_case "local read" `Slow test_ashare_local_read_is_cheap;
          Alcotest.test_case "all corrupt fails" `Slow test_ashare_all_replicas_corrupt_fails;
          Alcotest.test_case "rho=1 no replication" `Slow test_ashare_rho_one_means_no_replication;
        ] );
      ( "dht",
        [
          Alcotest.test_case "positions unique" `Quick test_dht_positions_unique;
          Alcotest.test_case "holders" `Quick test_dht_holders;
          Alcotest.test_case "clean lookups" `Quick test_dht_lookup_clean;
          Alcotest.test_case "logarithmic hops" `Quick test_dht_hops_logarithmic;
          Alcotest.test_case "churn detours" `Quick test_dht_survives_churn_with_detours;
          Alcotest.test_case "byzantine degradation" `Quick test_dht_byzantine_degrades_lookups;
          Alcotest.test_case "replication helps" `Quick test_dht_more_replicas_help;
          Alcotest.test_case "bad args" `Quick test_dht_bad_args;
          Alcotest.test_case "ring wraparound" `Quick test_dht_ring_wraparound;
          Alcotest.test_case "rebuild keeps byz" `Quick test_dht_rebuild_keeps_byzantine_marks;
        ] );
      ( "astream",
        [
          Alcotest.test_case "forest complete" `Slow test_astream_forest_complete;
          Alcotest.test_case "parents exist" `Slow test_astream_every_node_has_parents;
          Alcotest.test_case "stream reaches all" `Slow test_astream_stream_reaches_everyone;
          Alcotest.test_case "double cycle faster" `Slow test_astream_double_cycle_faster;
          Alcotest.test_case "byzantine parents" `Slow test_astream_tolerates_byzantine_parents;
          Alcotest.test_case "simulate full delivery" `Slow test_astream_simulate_delivers_all_chunks;
          Alcotest.test_case "simulate byzantine" `Slow test_astream_simulate_tolerates_byzantine;
          Alcotest.test_case "simulate vs analytic" `Slow test_astream_simulate_matches_analytic_ordering;
          Alcotest.test_case "bad cycles" `Slow test_astream_bad_cycles_used;
        ] );
    ]
