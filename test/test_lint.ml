(* atum-lint acceptance tests.

   The fixtures under lint_fixtures/ mirror the repo layout (lib/smr/,
   lib/apps/) so path-scoped rules apply exactly as they do on the real
   tree.  The bad fixtures must trip every rule — this is the negative
   test demonstrating that the dune lint gate would fail a tree that
   reintroduces a violation — and the good fixture must stay silent. *)

module Driver = Atum_linter.Driver
module Engine = Atum_linter.Engine
module Allowlist = Atum_linter.Allowlist
module Diagnostic = Atum_linter.Diagnostic

(* The executable lives in _build/default/test/, next to the copied
   fixture tree — resolve relative to it so the test works under both
   [dune runtest] and [dune exec]. *)
let fixture_root = Filename.concat (Filename.dirname Sys.executable_name) "lint_fixtures"

let scan ?allow () =
  Driver.scan ?allow ~root:fixture_root ~dirs:[ "lib" ] ()

let rules_hit file r =
  List.sort_uniq String.compare
    (List.filter_map
       (fun d ->
         if String.equal d.Diagnostic.file file then Some d.Diagnostic.rule else None)
       r.Driver.diagnostics)

let test_bad_fixtures_trip_every_rule () =
  let r = scan () in
  Alcotest.(check (list string)) "no parse errors" []
    (List.map fst r.Driver.parse_errors);
  Alcotest.(check (list string))
    "protocol fixture: D003 twice, W001 once"
    [ "D003"; "W001" ]
    (rules_hit "lib/smr/bad_protocol.ml" r);
  Alcotest.(check (list string))
    "app fixture: D001, D002, F001, M001"
    [ "D001"; "D002"; "F001"; "M001" ]
    (rules_hit "lib/apps/bad_app.ml" r);
  Alcotest.(check bool) "gate would fail the build" false (Driver.ok r)

let test_good_fixture_is_clean () =
  let r = scan () in
  Alcotest.(check (list string)) "sanctioned spellings produce nothing" []
    (rules_hit "lib/apps/good_app.ml" r)

let test_allowlist_suppresses () =
  (* Suppressing every finding turns the gate green; the unused entry
     is reported as stale and the malformed one as an error. *)
  let base = scan () in
  let entries =
    List.map
      (fun d ->
        Printf.sprintf "%s:%s:%d # fixture exercises this rule on purpose"
          d.Diagnostic.rule d.Diagnostic.file d.Diagnostic.line)
      base.Driver.diagnostics
  in
  let allow_text =
    String.concat "\n"
      (entries
      @ [
          "D001:lib/apps/no_such_file.ml:3 # stale on purpose";
          "D002:lib/apps/bad_app.ml:12 this line has no hash reason";
        ])
  in
  let allow, allow_errors = Allowlist.of_string allow_text in
  Alcotest.(check int) "one malformed line" 1 (List.length allow_errors);
  let r = Driver.scan ~allow ~root:fixture_root ~dirs:[ "lib" ] () in
  Alcotest.(check int) "all findings suppressed" 0 (List.length (Driver.unsuppressed r));
  Alcotest.(check int) "one stale entry" 1 (List.length r.Driver.stale_allows);
  (* Stale entries and suppressed findings alone don't fail the gate;
     malformed allowlist lines do. *)
  Alcotest.(check bool) "gate red on malformed allow line" false
    (Driver.ok { r with Driver.allow_errors });
  Alcotest.(check bool) "gate green once allow file is well-formed" true
    (Driver.ok r)

let test_wildcard_line () =
  let allow, errs = Allowlist.of_string "D003:lib/smr/bad_protocol.ml:* # whole file" in
  Alcotest.(check (list string)) "parses" [] errs;
  let r = Driver.scan ~allow ~root:fixture_root ~dirs:[ "lib" ] () in
  Alcotest.(check (list string)) "only W001 left open in protocol fixture" [ "W001" ]
    (List.sort_uniq String.compare
       (List.filter_map
          (fun d ->
            if String.equal d.Diagnostic.file "lib/smr/bad_protocol.ml" then
              Some d.Diagnostic.rule
            else None)
          (Driver.unsuppressed r)))

let test_json_artifact () =
  let r = scan () in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "atum_lint_json_test" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Driver.write_json ~dir r in
  Alcotest.(check string) "artifact name" (Filename.concat dir "ATUM_lint.json") path;
  match Atum_util.Json.of_string (In_channel.with_open_bin path In_channel.input_all) with
  | Error e -> Alcotest.failf "ATUM_lint.json is not valid JSON: %s" e
  | Ok (Atum_util.Json.Obj fields) ->
    Alcotest.(check bool) "has schema_version" true (List.mem_assoc "schema_version" fields);
    Alcotest.(check bool) "has violations" true (List.mem_assoc "violations" fields);
    Alcotest.(check bool) "has rules" true (List.mem_assoc "rules" fields)
  | Ok _ -> Alcotest.fail "ATUM_lint.json is not an object"

let test_sort_launders_traversal () =
  (* D002's core discrimination, straight from source strings: a
     traversal is fine exactly when a sort consumes it in the same
     expression. *)
  let check src expected_rules =
    match Engine.check_source ~file:"lib/apps/inline.ml" src with
    | Error e -> Alcotest.failf "parse error: %s" e
    | Ok ds ->
      Alcotest.(check (list string))
        src expected_rules
        (List.sort_uniq String.compare (List.map (fun d -> d.Diagnostic.rule) ds))
  in
  check "let ks t = Hashtbl.fold (fun k _ a -> k :: a) t []" [ "D002" ];
  check "let ks t = List.sort compare (Hashtbl.fold (fun k _ a -> k :: a) t [])" [];
  check "let ks t = Hashtbl.fold (fun k _ a -> k :: a) t [] |> List.sort_uniq compare" [];
  check "let ks t = Atum_util.Hashtbl_ext.sorted_keys ~cmp:Int.compare t" []

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "bad fixtures trip every rule" `Quick
            test_bad_fixtures_trip_every_rule;
          Alcotest.test_case "good fixture is clean" `Quick test_good_fixture_is_clean;
          Alcotest.test_case "sort launders traversal" `Quick test_sort_launders_traversal;
        ] );
      ( "allowlist",
        [
          Alcotest.test_case "suppresses with reasons" `Quick test_allowlist_suppresses;
          Alcotest.test_case "wildcard line" `Quick test_wildcard_line;
        ] );
      ("json", [ Alcotest.test_case "artifact shape" `Quick test_json_artifact ]);
    ]
