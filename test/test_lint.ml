(* atum-lint acceptance tests.

   The fixtures under lint_fixtures/ mirror the repo layout (lib/smr/,
   lib/sim/, lib/apps/) so path-scoped rules apply exactly as they do
   on the real tree.  The bad fixtures must trip every rule — this is
   the negative test demonstrating that the dune lint gate would fail
   a tree that reintroduces a violation — and the good fixtures must
   stay silent.

   The v2 two-pass analysis gets the same treatment: entropy wrapped
   two calls deep across a module boundary must be flagged (E001), an
   allowlisted Prof_clock-style source must sanction its callers,
   S001/S002 must fire on the stateful fixture and stay silent on the
   atomic/local one, and ATUM_lint_state.json must round-trip
   deterministically. *)

module Driver = Atum_linter.Driver
module Engine = Atum_linter.Engine
module Allowlist = Atum_linter.Allowlist
module Diagnostic = Atum_linter.Diagnostic

(* The executable lives in _build/default/test/, next to the copied
   fixture tree — resolve relative to it so the test works under both
   [dune runtest] and [dune exec]. *)
let fixture_root = Filename.concat (Filename.dirname Sys.executable_name) "lint_fixtures"

let scan ?allow ?strict_allow () =
  Driver.scan ?allow ?strict_allow ~root:fixture_root ~dirs:[ "lib" ] ()

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.equal (String.sub s i n) sub || go (i + 1)) in
  n = 0 || go 0

let rules_hit ?(only_open = false) file r =
  let pool = if only_open then Driver.unsuppressed r else r.Driver.diagnostics in
  List.sort_uniq String.compare
    (List.filter_map
       (fun d ->
         if String.equal d.Diagnostic.file file then Some d.Diagnostic.rule else None)
       pool)

let test_bad_fixtures_trip_every_rule () =
  let r = scan () in
  Alcotest.(check (list string)) "no parse errors" []
    (List.map fst r.Driver.parse_errors);
  Alcotest.(check (list string))
    "protocol fixture: D003 twice, W001 once"
    [ "D003"; "W001" ]
    (rules_hit "lib/smr/bad_protocol.ml" r);
  Alcotest.(check (list string))
    "app fixture: D001, D002, F001, M001"
    [ "D001"; "D002"; "F001"; "M001" ]
    (rules_hit "lib/apps/bad_app.ml" r);
  Alcotest.(check bool) "gate would fail the build" false (Driver.ok r)

let test_good_fixture_is_clean () =
  let r = scan () in
  Alcotest.(check (list string)) "sanctioned spellings produce nothing" []
    (rules_hit "lib/apps/good_app.ml" r);
  Alcotest.(check (list string)) "atomic/local state produces nothing" []
    (rules_hit "lib/sim/stateful_ok.ml" r)

(* --- effect propagation (E001) --------------------------------------- *)

let test_effect_propagation () =
  let r = scan () in
  Alcotest.(check (list string))
    "direct source: D001 plus E001 on the one-deep wrapper"
    [ "D001"; "E001" ]
    (rules_hit "lib/sim/entropy_core.ml" r);
  Alcotest.(check (list string))
    "two-plus calls deep, cross-module: E001 only"
    [ "E001" ]
    (rules_hit "lib/apps/deep_entropy.ml" r);
  let deep =
    List.filter
      (fun d -> String.equal d.Diagnostic.file "lib/apps/deep_entropy.ml")
      r.Driver.diagnostics
  in
  Alcotest.(check int) "both deep wrappers flagged" 2 (List.length deep);
  let chain_ok d =
    (* The witness chain must run all the way back to the source. *)
    contains ~sub:"Atum_sim.Entropy_core.raw_jitter" d.Diagnostic.message
    && contains ~sub:"Random.float" d.Diagnostic.message
  in
  Alcotest.(check bool) "witness chain names source and spelling" true
    (List.for_all chain_ok deep)

let test_sanctioned_wrapper_silences_callers () =
  (* Allowlisting the D001 source must also silence E001 in callers:
     the sanctioned wrapper story of lib/sim/prof_clock.ml. *)
  let allow, errs =
    Allowlist.of_string
      "D001:lib/sim/opt_clock.ml:8 # opt-in wall clock fixture, mirrors prof_clock"
  in
  Alcotest.(check (list string)) "allow parses" [] errs;
  let r = scan ~allow () in
  Alcotest.(check (list string)) "caller of sanctioned wrapper is silent" []
    (rules_hit "lib/apps/uses_clock.ml" r);
  Alcotest.(check (list string)) "wrapper's own D001 suppressed" []
    (rules_hit ~only_open:true "lib/sim/opt_clock.ml" r);
  (* Without the allow entry both fire. *)
  let r0 = scan () in
  Alcotest.(check (list string)) "unsanctioned: E001 on the caller" [ "E001" ]
    (rules_hit "lib/apps/uses_clock.ml" r0);
  Alcotest.(check (list string)) "unsanctioned: D001 at the source" [ "D001" ]
    (rules_hit "lib/sim/opt_clock.ml" r0)

(* --- domain safety (S001/S002) --------------------------------------- *)

let test_domain_safety_rules () =
  let r = scan () in
  Alcotest.(check (list string))
    "stateful fixture: S001 globals and an S002 task-reachable writer"
    [ "S001"; "S002" ]
    (rules_hit "lib/sim/stateful.ml" r);
  let stateful =
    List.filter
      (fun d -> String.equal d.Diagnostic.file "lib/sim/stateful.ml")
      r.Driver.diagnostics
  in
  let count rule =
    List.length (List.filter (fun d -> String.equal d.Diagnostic.rule rule) stateful)
  in
  Alcotest.(check int) "two S001 globals (ref + table)" 2 (count "S001");
  (* [bump] is task-reachable and writes [hits]; [record] writes
     [cache] but is never scheduled, so exactly one S002. *)
  Alcotest.(check int) "one S002 writer" 1 (count "S002")

let test_s001_catches_prefix_hashtbl_ext () =
  (* Regression for the seeded real-tree hit: the pre-fix
     Atum_util.Hashtbl_ext kept a plain [ref] counter bumped by every
     sorted traversal; sweeps call those helpers from engine tasks.
     S001 must flag the global and S002 its task-reachable writer. *)
  let sources =
    [
      ( "lib/util/hashtbl_ext.ml",
        "let sorts = ref 0\n\
         let sorts_performed () = !sorts\n\
         let sorted_keys ~cmp tbl =\n\
        \  incr sorts;\n\
        \  List.sort cmp (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])\n" );
      ( "lib/core/monitor.ml",
        "let sweep tbl = Atum_util.Hashtbl_ext.sorted_keys ~cmp:Int.compare tbl\n\
         let attach e tbl = Engine.every e ~period:1.0 (fun () -> ignore (sweep tbl); true)\n" );
    ]
  in
  let r = Driver.scan_sources ~sources () in
  Alcotest.(check (list string)) "no parse errors" [] (List.map fst r.Driver.parse_errors);
  Alcotest.(check (list string))
    "pre-fix tree: S001 on the counter, S002 on the task-reachable writer"
    [ "S001"; "S002" ]
    (rules_hit "lib/util/hashtbl_ext.ml" r);
  let s001 =
    List.find
      (fun d -> String.equal d.Diagnostic.rule "S001")
      r.Driver.diagnostics
  in
  Alcotest.(check int) "flagged at the counter's definition line" 1 s001.Diagnostic.line

(* --- allowlist -------------------------------------------------------- *)

let test_allowlist_suppresses () =
  (* Suppressing every finding turns the gate green; the unused entry
     is reported as stale and the malformed one as an error.  E001
     findings disappear outright once their D001 source is suppressed
     (the sanctioned-wrapper rule), so their entries go stale too. *)
  let base = scan () in
  let e001s =
    List.length
      (List.filter
         (fun d -> String.equal d.Diagnostic.rule "E001")
         base.Driver.diagnostics)
  in
  let entries =
    List.map
      (fun d ->
        Printf.sprintf "%s:%s:%d # fixture exercises this rule on purpose"
          d.Diagnostic.rule d.Diagnostic.file d.Diagnostic.line)
      base.Driver.diagnostics
  in
  let allow_text =
    String.concat "\n"
      (entries
      @ [
          "D001:lib/apps/no_such_file.ml:3 # stale on purpose";
          "D002:lib/apps/bad_app.ml:12 this line has no hash reason";
        ])
  in
  let allow, allow_errors = Allowlist.of_string allow_text in
  Alcotest.(check int) "one malformed line" 1 (List.length allow_errors);
  let r = Driver.scan ~allow ~root:fixture_root ~dirs:[ "lib" ] () in
  Alcotest.(check int) "all findings suppressed" 0 (List.length (Driver.unsuppressed r));
  Alcotest.(check int)
    "stale: the deliberate entry plus every vanished E001"
    (1 + e001s)
    (List.length r.Driver.stale_allows);
  (* Stale entries and suppressed findings alone don't fail the gate;
     malformed allowlist lines do. *)
  Alcotest.(check bool) "gate red on malformed allow line" false
    (Driver.ok { r with Driver.allow_errors });
  Alcotest.(check bool) "gate green once allow file is well-formed" true
    (Driver.ok r)

let test_wildcard_line () =
  let allow, errs = Allowlist.of_string "D003:lib/smr/bad_protocol.ml:* # whole file" in
  Alcotest.(check (list string)) "parses" [] errs;
  let r = Driver.scan ~allow ~root:fixture_root ~dirs:[ "lib" ] () in
  Alcotest.(check (list string)) "only W001 left open in protocol fixture" [ "W001" ]
    (List.sort_uniq String.compare
       (List.filter_map
          (fun d ->
            if String.equal d.Diagnostic.file "lib/smr/bad_protocol.ml" then
              Some d.Diagnostic.rule
            else None)
          (Driver.unsuppressed r)))

let test_duplicate_entries_are_errors () =
  let allow_text =
    "D003:lib/smr/bad_protocol.ml:8 # first\n\
     D002:lib/apps/bad_app.ml:15 # fine\n\
     D003:lib/smr/bad_protocol.ml:8 # duplicate of the first\n"
  in
  let entries, errs = Allowlist.of_string allow_text in
  Alcotest.(check int) "all three entries parse" 3 (List.length entries);
  Alcotest.(check int) "one duplicate error" 1 (List.length errs);
  Alcotest.(check bool) "error names both lines" true
    (match errs with
    | [ e ] -> contains ~sub:"lint.allow:3" e && contains ~sub:"first at line 1" e
    | _ -> false);
  let r = Driver.scan ~allow:entries ~allow_errors:errs ~root:fixture_root ~dirs:[ "lib" ] () in
  Alcotest.(check bool) "duplicates fail the gate" false (Driver.ok r)

let test_strict_allow_promotes_stale () =
  let allow, errs =
    Allowlist.of_string "D001:lib/apps/no_such_file.ml:3 # stale on purpose"
  in
  Alcotest.(check (list string)) "parses" [] errs;
  (* Suppress nothing real: every fixture finding stays open, so use a
     tree slice with no findings to isolate the stale behaviour. *)
  let sources = [ ("lib/apps/clean.ml", "let id x = x\n") ] in
  let lenient = Driver.scan_sources ~allow ~sources () in
  Alcotest.(check int) "entry is stale" 1 (List.length lenient.Driver.stale_allows);
  Alcotest.(check bool) "lenient: stale alone keeps the gate green" true
    (Driver.ok lenient);
  let strict = Driver.scan_sources ~allow ~strict_allow:true ~sources () in
  Alcotest.(check bool) "strict: stale fails the gate" false (Driver.ok strict)

(* --- artifacts -------------------------------------------------------- *)

let tmp_dir name =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) name in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  dir

let test_json_artifact () =
  let r = scan () in
  let dir = tmp_dir "atum_lint_json_test" in
  let path = Driver.write_json ~dir r in
  Alcotest.(check string) "artifact name" (Filename.concat dir "ATUM_lint.json") path;
  match Atum_util.Json.of_string (In_channel.with_open_bin path In_channel.input_all) with
  | Error e -> Alcotest.failf "ATUM_lint.json is not valid JSON: %s" e
  | Ok (Atum_util.Json.Obj fields) ->
    Alcotest.(check bool) "has schema_version" true (List.mem_assoc "schema_version" fields);
    Alcotest.(check bool) "has violations" true (List.mem_assoc "violations" fields);
    Alcotest.(check bool) "has rules" true (List.mem_assoc "rules" fields)
  | Ok _ -> Alcotest.fail "ATUM_lint.json is not an object"

let test_state_inventory_artifact () =
  let r = scan () in
  let dir = tmp_dir "atum_lint_state_test" in
  let path = Driver.write_state_json ~dir r in
  Alcotest.(check string) "artifact name"
    (Filename.concat dir "ATUM_lint_state.json")
    path;
  let read () = In_channel.with_open_bin path In_channel.input_all in
  let first = read () in
  (* Byte-identical on re-emission: the inventory is a machine-read
     work-list and must not depend on hash order. *)
  let r2 = scan () in
  ignore (Driver.write_state_json ~dir r2);
  Alcotest.(check string) "deterministic across scans" first (read ());
  match Atum_util.Json.of_string first with
  | Error e -> Alcotest.failf "ATUM_lint_state.json is not valid JSON: %s" e
  | Ok (Atum_util.Json.Obj fields) -> (
    Alcotest.(check bool) "has schema_version" true (List.mem_assoc "schema_version" fields);
    Alcotest.(check bool) "has task_roots" true (List.mem_assoc "task_roots" fields);
    match List.assoc "globals" fields with
    | Atum_util.Json.List globals ->
      let find_global name =
        List.find_opt
          (fun g ->
            match g with
            | Atum_util.Json.Obj f -> (
              match List.assoc_opt "name" f with
              | Some (Atum_util.Json.String n) -> String.equal n name
              | _ -> false)
            | _ -> false)
          globals
      in
      let field g key =
        match g with Atum_util.Json.Obj f -> List.assoc_opt key f | _ -> None
      in
      (match find_global "Atum_sim.Stateful.hits" with
      | None -> Alcotest.fail "inventory misses Stateful.hits"
      | Some g ->
        Alcotest.(check bool) "hits flagged" true
          (field g "flagged" = Some (Atum_util.Json.Bool true));
        Alcotest.(check bool) "hits task-reachable" true
          (field g "task_reachable" = Some (Atum_util.Json.Bool true)));
      (match find_global "Atum_sim.Stateful_ok.total" with
      | None -> Alcotest.fail "inventory misses the atomic global"
      | Some g ->
        Alcotest.(check bool) "atomic exempt" true
          (field g "flagged" = Some (Atum_util.Json.Bool false));
        Alcotest.(check bool) "atomic kind recorded" true
          (field g "kind" = Some (Atum_util.Json.String "atomic")))
    | _ -> Alcotest.fail "globals is not a list")
  | Ok _ -> Alcotest.fail "ATUM_lint_state.json is not an object"

let test_sort_launders_traversal () =
  (* D002's core discrimination, straight from source strings: a
     traversal is fine exactly when a sort consumes it in the same
     expression. *)
  let check src expected_rules =
    match Engine.check_source ~file:"lib/apps/inline.ml" src with
    | Error e -> Alcotest.failf "parse error: %s" e
    | Ok ds ->
      Alcotest.(check (list string))
        src expected_rules
        (List.sort_uniq String.compare (List.map (fun d -> d.Diagnostic.rule) ds))
  in
  check "let ks t = Hashtbl.fold (fun k _ a -> k :: a) t []" [ "D002" ];
  check "let ks t = List.sort compare (Hashtbl.fold (fun k _ a -> k :: a) t [])" [];
  check "let ks t = Hashtbl.fold (fun k _ a -> k :: a) t [] |> List.sort_uniq compare" [];
  check "let ks t = Atum_util.Hashtbl_ext.sorted_keys ~cmp:Int.compare t" []

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "bad fixtures trip every rule" `Quick
            test_bad_fixtures_trip_every_rule;
          Alcotest.test_case "good fixtures are clean" `Quick test_good_fixture_is_clean;
          Alcotest.test_case "sort launders traversal" `Quick test_sort_launders_traversal;
        ] );
      ( "effects",
        [
          Alcotest.test_case "entropy two calls deep is flagged" `Quick
            test_effect_propagation;
          Alcotest.test_case "sanctioned wrapper silences callers" `Quick
            test_sanctioned_wrapper_silences_callers;
        ] );
      ( "domain-safety",
        [
          Alcotest.test_case "S001/S002 on the stateful fixture" `Quick
            test_domain_safety_rules;
          Alcotest.test_case "pre-fix hashtbl_ext counter is caught" `Quick
            test_s001_catches_prefix_hashtbl_ext;
        ] );
      ( "allowlist",
        [
          Alcotest.test_case "suppresses with reasons" `Quick test_allowlist_suppresses;
          Alcotest.test_case "wildcard line" `Quick test_wildcard_line;
          Alcotest.test_case "duplicate entries are errors" `Quick
            test_duplicate_entries_are_errors;
          Alcotest.test_case "strict-allow promotes stale to failure" `Quick
            test_strict_allow_promotes_stale;
        ] );
      ( "json",
        [
          Alcotest.test_case "artifact shape" `Quick test_json_artifact;
          Alcotest.test_case "state inventory round-trips deterministically" `Quick
            test_state_inventory_artifact;
        ] );
    ]
