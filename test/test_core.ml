open Atum_core

let quick_sync_params =
  (* Small rounds and short walks keep unit-test simulations fast. *)
  {
    Params.default with
    Params.hc = 3;
    rwl = 4;
    round_duration = 0.5;
    seed = 11;
  }

let quick_async_params =
  { Params.default_async with Params.hc = 3; rwl = 4; pbft_timeout = 1.0; seed = 12 }

let check_ok label = function
  | Ok () -> ()
  | Error e -> Alcotest.fail (label ^ ": " ^ e)

(* Grow a system by joining nodes through random existing members,
   giving each batch time to settle. *)
let grow t ~target ~settle =
  let first = Atum.bootstrap t in
  let members = ref [ first ] in
  let rng = Atum_util.Rng.create 5 in
  while Atum.size t < target do
    let batch = min 4 (target - Atum.size t) in
    for _ = 1 to batch do
      let contact = Atum_util.Rng.pick rng !members in
      ignore (Atum.join t ~contact ())
    done;
    Atum.run_for t settle;
    members :=
      List.filter_map
        (fun (n : System.node) -> if n.System.alive then Some n.System.id else None)
        (System.live_nodes (Atum.system t))
  done;
  first

(* ------------------------------------------------------------------ *)
(* Bootstrap and basic lifecycle                                       *)
(* ------------------------------------------------------------------ *)

let test_bootstrap () =
  let t = Atum.create ~params:quick_sync_params () in
  let n0 = Atum.bootstrap t in
  Alcotest.(check int) "one node" 1 (Atum.size t);
  Alcotest.(check int) "one vgroup" 1 (Atum.vgroup_count t);
  Alcotest.(check bool) "member" true (Atum.is_member t n0);
  check_ok "overlay" (Atum.check_overlay t);
  check_ok "registry" (Atum.check_consistency t)

let test_bootstrap_twice_rejected () =
  let t = Atum.create ~params:quick_sync_params () in
  ignore (Atum.bootstrap t);
  Alcotest.check_raises "double bootstrap"
    (Invalid_argument "System.bootstrap: already bootstrapped") (fun () ->
      ignore (Atum.bootstrap t))

let test_self_broadcast () =
  let t = Atum.create ~params:quick_sync_params () in
  let n0 = Atum.bootstrap t in
  let got = ref [] in
  Atum.on_deliver t (fun nid ~bid:_ ~origin body -> got := (nid, origin, body) :: !got);
  ignore (Atum.broadcast t ~from:n0 "hello");
  Atum.run_for t 10.0;
  Alcotest.(check (list (triple int int string))) "delivered to self"
    [ (n0, n0, "hello") ] !got

let test_single_join () =
  let t = Atum.create ~params:quick_sync_params () in
  let n0 = Atum.bootstrap t in
  let joined = ref None in
  let n1 = Atum.join_with t ~contact:n0 ~on_joined:(fun id -> joined := Some id) () in
  Atum.run_for t 60.0;
  Alcotest.(check bool) "join callback fired" true (!joined = Some n1);
  Alcotest.(check int) "two nodes" 2 (Atum.size t);
  check_ok "registry" (Atum.check_consistency t)

let test_grow_sync () =
  let t = Atum.create ~params:quick_sync_params () in
  ignore (grow t ~target:24 ~settle:120.0);
  Atum.run_for t 200.0;
  Alcotest.(check int) "grew to 24" 24 (Atum.size t);
  check_ok "overlay" (Atum.check_overlay t);
  check_ok "registry" (Atum.check_consistency t);
  (* Logarithmic grouping: with gmax = 8, 24 nodes need >= 3 vgroups,
     and no vgroup may exceed gmax for long after settling. *)
  Alcotest.(check bool) "multiple vgroups" true (Atum.vgroup_count t >= 3);
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "vgroup size %d within [1, gmax+1]" s)
        true
        (s >= 1 && s <= quick_sync_params.Params.gmax + 1))
    (Atum.vgroup_sizes t)

let test_grow_async () =
  let t = Atum.create ~params:quick_async_params () in
  ignore (grow t ~target:20 ~settle:60.0);
  Atum.run_for t 120.0;
  Alcotest.(check int) "grew to 20" 20 (Atum.size t);
  check_ok "overlay" (Atum.check_overlay t);
  check_ok "registry" (Atum.check_consistency t)

(* ------------------------------------------------------------------ *)
(* Broadcast dissemination                                             *)
(* ------------------------------------------------------------------ *)

let test_broadcast_reaches_all_sync () =
  let t = Atum.create ~params:quick_sync_params () in
  let n0 = grow t ~target:20 ~settle:120.0 in
  Atum.run_for t 200.0;
  let got = Hashtbl.create 32 in
  Atum.on_deliver t (fun nid ~bid:_ ~origin:_ _ -> Hashtbl.replace got nid ());
  ignore (Atum.broadcast t ~from:n0 "news");
  Atum.run_for t 60.0;
  Alcotest.(check int) "all nodes delivered" (Atum.size t) (Hashtbl.length got)

let test_broadcast_reaches_all_async () =
  let t = Atum.create ~params:quick_async_params () in
  let n0 = grow t ~target:16 ~settle:60.0 in
  Atum.run_for t 120.0;
  let got = Hashtbl.create 32 in
  Atum.on_deliver t (fun nid ~bid:_ ~origin:_ _ -> Hashtbl.replace got nid ());
  ignore (Atum.broadcast t ~from:n0 "news");
  Atum.run_for t 60.0;
  Alcotest.(check int) "all nodes delivered" (Atum.size t) (Hashtbl.length got)

let test_broadcast_multiple_messages_dedup () =
  let t = Atum.create ~params:quick_sync_params () in
  let n0 = grow t ~target:12 ~settle:120.0 in
  Atum.run_for t 120.0;
  let deliveries = ref 0 in
  Atum.on_deliver t (fun _ ~bid:_ ~origin:_ _ -> incr deliveries);
  ignore (Atum.broadcast t ~from:n0 "a");
  ignore (Atum.broadcast t ~from:n0 "b");
  Atum.run_for t 60.0;
  (* Each node delivers each broadcast exactly once. *)
  Alcotest.(check int) "n * messages" (2 * Atum.size t) !deliveries

let test_forward_single_cycle_still_delivers () =
  let t = Atum.create ~params:quick_sync_params () in
  let n0 = grow t ~target:16 ~settle:120.0 in
  Atum.run_for t 200.0;
  (* AStream-style: gossip only along cycle 0.  The ring structure
     still guarantees delivery, just more slowly. *)
  Atum.on_forward t (fun ~bid:_ ~from_vg:_ ~cycle ~neighbor:_ -> cycle = 0);
  let got = Hashtbl.create 32 in
  Atum.on_deliver t (fun nid ~bid:_ ~origin:_ _ -> Hashtbl.replace got nid ());
  ignore (Atum.broadcast t ~from:n0 "ring");
  Atum.run_for t 120.0;
  Alcotest.(check int) "all nodes delivered" (Atum.size t) (Hashtbl.length got)

let test_broadcast_latency_bounded_sync () =
  let t = Atum.create ~params:quick_sync_params () in
  let n0 = grow t ~target:16 ~settle:120.0 in
  Atum.run_for t 200.0;
  ignore (Atum.broadcast t ~from:n0 "ping");
  Atum.run_for t 100.0;
  let lats = Atum_sim.Metrics.samples (Atum.metrics t) "broadcast.latency" in
  Alcotest.(check bool) "observed latencies" true (lats <> []);
  let worst = List.fold_left max 0.0 lats in
  (* Flooding on a 16-node system: a handful of rounds. *)
  Alcotest.(check bool)
    (Printf.sprintf "worst %.1fs bounded" worst)
    true
    (worst <= 20.0 *. quick_sync_params.Params.round_duration)

(* ------------------------------------------------------------------ *)
(* Leave, merge, eviction                                              *)
(* ------------------------------------------------------------------ *)

let test_leave () =
  let t = Atum.create ~params:quick_sync_params () in
  let n0 = grow t ~target:12 ~settle:120.0 in
  Atum.run_for t 120.0;
  ignore n0;
  let victim =
    List.find (fun (n : System.node) -> n.System.id <> n0) (System.live_nodes (Atum.system t))
  in
  Atum.leave t victim.System.id;
  Atum.run_for t 200.0;
  Alcotest.(check int) "one fewer node" 11 (Atum.size t);
  Alcotest.(check bool) "not a member" false (Atum.is_member t victim.System.id);
  check_ok "registry" (Atum.check_consistency t);
  check_ok "overlay" (Atum.check_overlay t)

let test_mass_leave_merges () =
  let t = Atum.create ~params:quick_sync_params () in
  let n0 = grow t ~target:24 ~settle:120.0 in
  Atum.run_for t 200.0;
  let groups_before = Atum.vgroup_count t in
  (* Remove half the system; vgroups must merge rather than starve. *)
  let victims =
    List.filter_map
      (fun (n : System.node) -> if n.System.id <> n0 then Some n.System.id else None)
      (System.live_nodes (Atum.system t))
  in
  let rec take k = function
    | [] -> []
    | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest
  in
  List.iter (fun v -> Atum.leave t v) (take 12 victims);
  Atum.run_for t 400.0;
  Alcotest.(check int) "half remain" 12 (Atum.size t);
  Alcotest.(check bool)
    (Printf.sprintf "vgroups shrank (%d -> %d)" groups_before (Atum.vgroup_count t))
    true
    (Atum.vgroup_count t <= groups_before);
  check_ok "registry" (Atum.check_consistency t);
  check_ok "overlay" (Atum.check_overlay t)

let test_crash_eviction () =
  let params = { quick_sync_params with Params.heartbeat_period = 5.0; eviction_timeout = 15.0 } in
  let t = Atum.create ~params () in
  let n0 = grow t ~target:10 ~settle:120.0 in
  Atum.run_for t 120.0;
  Atum.start_heartbeats t;
  Atum.run_for t 20.0;
  let victim =
    List.find (fun (n : System.node) -> n.System.id <> n0) (System.live_nodes (Atum.system t))
  in
  Atum.crash t victim.System.id;
  Atum.run_for t 300.0;
  Alcotest.(check bool) "evicted from its vgroup" false (Atum.is_member t victim.System.id);
  Alcotest.(check int) "size dropped" 9 (Atum.size t);
  check_ok "registry" (Atum.check_consistency t)

let test_partitioned_minority_does_not_block () =
  (* §2: a limited number of nodes isolated by a partition count as
     faulty; the rest of the system keeps delivering broadcasts. *)
  let t = Atum.create ~params:quick_sync_params () in
  let n0 = grow t ~target:18 ~settle:120.0 in
  Atum.run_for t 200.0;
  let sys = Atum.system t in
  let rng = Atum_util.Rng.create 91 in
  let others =
    List.filter_map
      (fun (n : System.node) -> if n.System.id <> n0 then Some n.System.id else None)
      (System.live_nodes sys)
  in
  let isolated = Atum_util.Rng.sample_without_replacement rng 2 others in
  List.iter
    (fun nid -> Atum_sim.Network.set_partition (System.network sys) nid 99)
    isolated;
  let got = Hashtbl.create 32 in
  Atum.on_deliver t (fun nid ~bid:_ ~origin:_ _ -> Hashtbl.replace got nid ());
  ignore (Atum.broadcast t ~from:n0 "mainland");
  Atum.run_for t 60.0;
  Alcotest.(check int) "everyone outside the partition delivers"
    (Atum.size t - 2) (Hashtbl.length got);
  List.iter
    (fun nid -> Alcotest.(check bool) "isolated node missed it" false (Hashtbl.mem got nid))
    isolated;
  (* Heal: new broadcasts reach the returned nodes again. *)
  List.iter (fun nid -> Atum_sim.Network.set_partition (System.network sys) nid 0) isolated;
  Hashtbl.reset got;
  ignore (Atum.broadcast t ~from:n0 "after-heal");
  Atum.run_for t 60.0;
  Alcotest.(check int) "everyone delivers after healing" (Atum.size t) (Hashtbl.length got)

(* ------------------------------------------------------------------ *)
(* Byzantine behaviour                                                 *)
(* ------------------------------------------------------------------ *)

let test_byzantine_minority_broadcast_still_works () =
  let t = Atum.create ~params:quick_sync_params () in
  let n0 = grow t ~target:18 ~settle:120.0 in
  Atum.run_for t 200.0;
  (* Mark ~11% of nodes Byzantine (quiet). *)
  let sys = Atum.system t in
  let rng = Atum_util.Rng.create 77 in
  let correct_nodes =
    List.filter_map
      (fun (n : System.node) -> if n.System.id <> n0 then Some n.System.id else None)
      (System.live_nodes sys)
  in
  let byz = Atum_util.Rng.sample_without_replacement rng 2 correct_nodes in
  List.iter (fun b -> System.make_byzantine sys b) byz;
  let got = Hashtbl.create 32 in
  Atum.on_deliver t (fun nid ~bid:_ ~origin:_ _ -> Hashtbl.replace got nid ());
  ignore (Atum.broadcast t ~from:n0 "resilient");
  Atum.run_for t 60.0;
  (* Every correct node delivers; Byzantine ones do not. *)
  Alcotest.(check int) "correct nodes delivered" (Atum.size t - 2) (Hashtbl.length got);
  List.iter
    (fun b -> Alcotest.(check bool) "byzantine silent" false (Hashtbl.mem got b))
    byz

let test_byzantine_not_evicted () =
  let params = { quick_sync_params with Params.heartbeat_period = 5.0; eviction_timeout = 15.0 } in
  let t = Atum.create ~params () in
  let n0 = grow t ~target:10 ~settle:120.0 in
  Atum.run_for t 120.0;
  Atum.start_heartbeats t;
  Atum.run_for t 20.0;
  let sys = Atum.system t in
  let victim =
    List.find (fun (n : System.node) -> n.System.id <> n0) (System.live_nodes sys)
  in
  System.make_byzantine sys victim.System.id;
  Atum.run_for t 300.0;
  (* Byzantine nodes keep heartbeating, so they are never evicted. *)
  Alcotest.(check bool) "still a member" true (Atum.is_member t victim.System.id)

let test_agreement_survives_reconfiguration () =
  (* SMART-style carry-over: an agreement proposed just before the
     vgroup reconfigures must be re-proposed into the new epoch and
     still fire. *)
  let t = Atum.create ~params:quick_sync_params () in
  ignore (grow t ~target:16 ~settle:120.0);
  Atum.run_for t 300.0;
  let sys = Atum.system t in
  let vid = Option.get (Atum.vgroup_of t 0) in
  let vg = System.vgroup sys vid in
  let fired = ref false in
  System.agree sys vg "test-op" (fun () -> fired := true);
  (* A shuffle churns the epoch (usually before the op decides). *)
  System.shuffle sys vg;
  Atum.run_for t 600.0;
  Alcotest.(check bool) "agreement fired across epochs" true !fired

let test_broadcast_storm () =
  (* Every node publishes at once; every correct node must deliver
     every message exactly once. *)
  let t = Atum.create ~params:quick_sync_params () in
  ignore (grow t ~target:16 ~settle:120.0);
  Atum.run_for t 200.0;
  let senders =
    List.map (fun (n : System.node) -> n.System.id) (System.live_nodes (Atum.system t))
  in
  let deliveries = ref 0 in
  Atum.on_deliver t (fun _ ~bid:_ ~origin:_ _ -> incr deliveries);
  List.iter (fun s -> ignore (Atum.broadcast t ~from:s (Printf.sprintf "storm-%d" s))) senders;
  Atum.run_for t 120.0;
  Alcotest.(check int) "n^2 deliveries"
    (List.length senders * List.length senders)
    !deliveries

let test_crash_eviction_async () =
  let params =
    { quick_async_params with Params.heartbeat_period = 5.0; eviction_timeout = 15.0 }
  in
  let t = Atum.create ~params () in
  let n0 = grow t ~target:12 ~settle:60.0 in
  Atum.run_for t 120.0;
  Atum.start_heartbeats t;
  Atum.run_for t 20.0;
  let victim =
    List.find (fun (n : System.node) -> n.System.id <> n0) (System.live_nodes (Atum.system t))
  in
  Atum.crash t victim.System.id;
  Atum.run_for t 400.0;
  Alcotest.(check bool) "evicted (async deployment)" false (Atum.is_member t victim.System.id);
  check_ok "registry" (Atum.check_consistency t)

(* ------------------------------------------------------------------ *)
(* Shuffling and registry invariants under churn                       *)
(* ------------------------------------------------------------------ *)

let test_exchange_metrics_recorded () =
  let t = Atum.create ~params:quick_sync_params () in
  ignore (grow t ~target:24 ~settle:120.0);
  Atum.run_for t 400.0;
  let m = Atum.metrics t in
  let completed = Atum_sim.Metrics.counter m "exchange.completed" in
  let suppressed = Atum_sim.Metrics.counter m "exchange.suppressed" in
  Alcotest.(check bool)
    (Printf.sprintf "exchanges happened (completed=%d suppressed=%d)" completed suppressed)
    true
    (completed + suppressed > 0)

let prop_churn_preserves_invariants =
  QCheck.Test.make ~name:"random churn preserves registry and overlay invariants" ~count:5
    (QCheck.int_range 0 1000)
    (fun seed ->
      let params = { quick_sync_params with Params.seed = 100 + seed } in
      let t = Atum.create ~params () in
      let n0 = Atum.bootstrap t in
      let rng = Atum_util.Rng.create seed in
      for _ = 1 to 10 do
        let live = System.live_nodes (Atum.system t) in
        let ids = List.map (fun (n : System.node) -> n.System.id) live in
        if List.length ids < 6 || Atum_util.Rng.bool rng then
          ignore (Atum.join t ~contact:(Atum_util.Rng.pick rng ids) ())
        else begin
          let candidates = List.filter (fun i -> i <> n0) ids in
          if candidates <> [] then Atum.leave t (Atum_util.Rng.pick rng candidates)
        end;
        Atum.run_for t 90.0
      done;
      Atum.run_for t 300.0;
      (match Atum.check_consistency t with Ok () -> true | Error _ -> false)
      && match Atum.check_overlay t with Ok () -> true | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Walks and size maintenance                                          *)
(* ------------------------------------------------------------------ *)

let test_walk_selects_live_vgroups () =
  let t = Atum.create ~params:quick_sync_params () in
  ignore (grow t ~target:24 ~settle:120.0);
  Atum.run_for t 300.0;
  let sys = Atum.system t in
  let from_vg = Option.get (Atum.vgroup_of t 0) in
  let results = ref [] in
  for _ = 1 to 12 do
    System.start_walk sys ~from_vg ~k:(fun v -> results := v :: !results)
  done;
  Atum.run_for t 600.0;
  Alcotest.(check int) "all walks completed" 12 (List.length !results);
  List.iter
    (fun v ->
      match System.vgroup_opt sys v with
      | Some vg -> Alcotest.(check bool) "live vgroup" false vg.System.retired
      | None -> Alcotest.fail "walk selected unknown vgroup")
    !results

let test_walk_spreads_over_vgroups () =
  let t = Atum.create ~params:quick_sync_params () in
  ignore (grow t ~target:30 ~settle:120.0);
  Atum.run_for t 300.0;
  let sys = Atum.system t in
  let from_vg = Option.get (Atum.vgroup_of t 0) in
  let results = ref [] in
  for _ = 1 to 40 do
    System.start_walk sys ~from_vg ~k:(fun v -> results := v :: !results)
  done;
  Atum.run_for t 2000.0;
  let distinct = List.length (List.sort_uniq compare !results) in
  Alcotest.(check bool)
    (Printf.sprintf "walks reach several vgroups (%d distinct)" distinct)
    true (distinct >= 2)

let test_oversized_vgroups_eventually_split () =
  (* Slam many concurrent joins through one contact, then check that
     logarithmic grouping brings every vgroup back under control even
     if some shuffles were suppressed along the way. *)
  let t = Atum.create ~params:quick_sync_params () in
  let n0 = Atum.bootstrap t in
  for _ = 1 to 40 do
    ignore (Atum.join t ~contact:n0 ())
  done;
  Atum.run_for t 3000.0;
  Alcotest.(check int) "all joined" 41 (Atum.size t);
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "size %d <= gmax + 1" s)
        true
        (s <= quick_sync_params.Params.gmax + 1))
    (Atum.vgroup_sizes t)

let test_async_walk_certificates_verified () =
  (* Async walks carry per-hop vgroup certificates; in a fault-free
     run every completed walk's chain verifies and none is rejected. *)
  let t = Atum.create ~params:quick_async_params () in
  ignore (grow t ~target:20 ~settle:60.0);
  Atum.run_for t 400.0;
  let m = Atum.metrics t in
  Alcotest.(check bool) "walks completed" true
    (Atum_sim.Metrics.counter m "walk.completed" > 0);
  Alcotest.(check int) "no certificate rejected" 0
    (Atum_sim.Metrics.counter m "walk.cert_rejected")

let test_byzantine_join () =
  let t = Atum.create ~params:quick_sync_params () in
  let n0 = grow t ~target:12 ~settle:120.0 in
  let b = Atum.join t ~byzantine:true ~contact:n0 () in
  Atum.run_for t 200.0;
  Alcotest.(check bool) "byzantine node joined" true (Atum.is_member t b);
  check_ok "registry" (Atum.check_consistency t)

let test_broadcast_from_nonmember_rejected () =
  let t = Atum.create ~params:quick_sync_params () in
  ignore (Atum.bootstrap t);
  let stranger = System.spawn_node (Atum.system t) () in
  Alcotest.check_raises "stranger broadcast"
    (Invalid_argument "System.broadcast: node not in the system") (fun () ->
      ignore (Atum.broadcast t ~from:stranger "spam"))

(* ------------------------------------------------------------------ *)
(* Online invariant monitor                                            *)
(* ------------------------------------------------------------------ *)

let active_vgroups sys =
  List.filter_map
    (fun vid ->
      match System.vgroup_opt sys vid with
      | Some vg when (not vg.System.retired) && vg.System.members <> [] -> Some vg
      | _ -> None)
    (System.vgroup_ids sys)

let test_monitor_clean_run () =
  let t = Atum.create ~params:quick_sync_params () in
  let mon = Monitor.attach (Atum.system t) in
  let n0 = grow t ~target:20 ~settle:120.0 in
  Atum.run_for t 200.0;
  ignore (Atum.broadcast t ~from:n0 "news");
  Atum.run_for t 60.0;
  ignore (Monitor.sweep mon);
  Alcotest.(check int) "healthy run has no violations" 0 (Monitor.total mon);
  Alcotest.(check (list (pair string int))) "no violation counts" []
    (Monitor.violations mon)

let test_monitor_flags_forced_faults () =
  let t = Atum.create ~params:quick_sync_params () in
  ignore (grow t ~target:24 ~settle:120.0);
  Atum.run_for t 200.0;
  let sys = Atum.system t in
  let cfg = Monitor.default_config quick_sync_params in
  let mon = Monitor.attach ~config:{ cfg with Monitor.period = 1.0 } sys in
  (match active_vgroups sys with
  | vg1 :: vg2 :: vg3 :: _ ->
      (* Oversize: pad the membership list past the envelope. *)
      while List.length vg1.System.members <= cfg.Monitor.s_hi do
        vg1.System.members <- vg1.System.members @ vg1.System.members
      done;
      (* Byzantine majority: corrupt every member of one vgroup. *)
      List.iter (System.make_byzantine sys) vg2.System.members;
      (* Retired vgroup left wired into the overlay. *)
      vg3.System.retired <- true
  | _ -> Alcotest.fail "expected at least three active vgroups");
  let fresh = Monitor.sweep mon in
  Alcotest.(check bool) "sweep reports new violations" true (fresh >= 3);
  let count kind = List.assoc_opt kind (Monitor.violations mon) in
  let counted kind = match count kind with Some c -> c >= 1 | None -> false in
  Alcotest.(check bool) "vg_oversize flagged" true (counted "vg_oversize");
  Alcotest.(check bool) "byz_majority flagged" true (counted "byz_majority");
  Alcotest.(check bool) "retired_reachable flagged" true (counted "retired_reachable");
  (* Violations also land in the metrics namespace. *)
  let m = Atum.metrics t in
  List.iter
    (fun kind ->
      Alcotest.(check bool)
        ("monitor.violation." ^ kind ^ " counter")
        true
        (Atum_sim.Metrics.counter m ("monitor.violation." ^ kind) >= 1))
    [ "vg_oversize"; "byz_majority"; "retired_reachable" ];
  (* fail_fast: a fresh monitor over the same corrupted state raises. *)
  Monitor.detach mon;
  let strict =
    Monitor.attach ~config:{ cfg with Monitor.fail_fast = true } sys
  in
  Alcotest.(check bool) "fail_fast raises" true
    (try
       ignore (Monitor.sweep strict);
       false
     with Monitor.Violation _ -> true)

let test_monitor_dup_delivery () =
  let t = Atum.create ~params:quick_sync_params () in
  let n0 = grow t ~target:16 ~settle:120.0 in
  Atum.run_for t 200.0;
  let sys = Atum.system t in
  let mon = Monitor.attach sys in
  (* Flood maximizes redundant gossip, so after the delivery log is
     wiped some vgroup's still-in-flight copies re-trigger acceptance
     and the node delivers the same bid twice.  Wipe only on a node's
     first delivery — wiping every time would make gossip diverge. *)
  Atum.on_forward t (fun ~bid:_ ~from_vg:_ ~cycle:_ ~neighbor:_ -> true);
  let wiped = Hashtbl.create 32 in
  Atum.on_deliver t (fun nid ~bid:_ ~origin:_ _ ->
      if not (Hashtbl.mem wiped nid) then begin
        Hashtbl.add wiped nid ();
        Atum_util.Bitset.clear (System.node sys nid).System.delivered
      end);
  ignore (Atum.broadcast t ~from:n0 "once");
  Atum.run_for t 60.0;
  let dups = List.assoc_opt "dup_delivery" (Monitor.violations mon) in
  Alcotest.(check bool) "dup_delivery flagged" true
    (match dups with Some c -> c >= 1 | None -> false);
  Alcotest.(check bool) "dup_delivery counter" true
    (Atum_sim.Metrics.counter (Atum.metrics t) "monitor.violation.dup_delivery" >= 1)

(* ------------------------------------------------------------------ *)
(* Causal tracing: saga spans and broadcast lineage                    *)
(* ------------------------------------------------------------------ *)

let test_trace_spans_and_lineage () =
  let t = Atum.create ~params:quick_sync_params () in
  Atum_sim.Trace.set_enabled (Atum.trace t) true;
  let n0 = grow t ~target:12 ~settle:60.0 in
  Atum.run_for t 120.0;
  let bid = Atum.broadcast t ~from:n0 "traced" in
  Atum.run_for t 60.0;
  let events = Atum_sim.Trace.events (Atum.trace t) in
  let saga_of kind suffix =
    (* "saga.join.begin" -> Some "join" *)
    let plen = String.length "saga." and slen = String.length suffix in
    let klen = String.length kind in
    if
      klen > plen + slen
      && String.sub kind 0 plen = "saga."
      && String.sub kind (klen - slen) slen = suffix
    then Some (String.sub kind plen (klen - plen - slen))
    else None
  in
  let begins = Hashtbl.create 64 in
  List.iter
    (fun (ev : Atum_sim.Trace.event) ->
      match saga_of ev.Atum_sim.Trace.kind ".begin" with
      | Some saga -> Hashtbl.replace begins ev.Atum_sim.Trace.span saga
      | None -> ())
    events;
  let matched = Hashtbl.create 64 in
  List.iter
    (fun (ev : Atum_sim.Trace.event) ->
      match saga_of ev.Atum_sim.Trace.kind ".end" with
      | Some saga -> (
          match Hashtbl.find_opt begins ev.Atum_sim.Trace.span with
          | Some saga' ->
              Alcotest.(check string)
                (Printf.sprintf "span %d ends the saga it began" ev.Atum_sim.Trace.span)
                saga' saga;
              Hashtbl.replace matched saga ()
          | None -> () (* begin rotated out of the ring: fine *))
      | None -> ())
    events;
  Alcotest.(check bool) "join spans matched" true (Hashtbl.mem matched "join");
  Alcotest.(check bool) "agree spans matched" true (Hashtbl.mem matched "agree");
  (* Every gossip hop of our broadcast carries the bid, the sender
     vgroup as parent, and the H-graph cycle it travelled on. *)
  let hops =
    List.filter
      (fun (ev : Atum_sim.Trace.event) ->
        ev.Atum_sim.Trace.kind = "bcast.hop" && ev.Atum_sim.Trace.bid = bid)
      events
  in
  Alcotest.(check bool) "broadcast produced gossip hops" true (hops <> []);
  List.iter
    (fun (ev : Atum_sim.Trace.event) ->
      Alcotest.(check bool) "hop has sender vgroup" true (ev.Atum_sim.Trace.parent >= 0);
      Alcotest.(check bool) "hop has cycle" true (ev.Atum_sim.Trace.cycle >= 0))
    hops;
  Alcotest.(check bool) "broadcast.sent tagged with bid" true
    (List.exists
       (fun (ev : Atum_sim.Trace.event) ->
         ev.Atum_sim.Trace.kind = "broadcast.sent" && ev.Atum_sim.Trace.bid = bid)
       events)

let () =
  Alcotest.run "core"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "bootstrap" `Quick test_bootstrap;
          Alcotest.test_case "double bootstrap" `Quick test_bootstrap_twice_rejected;
          Alcotest.test_case "self broadcast" `Quick test_self_broadcast;
          Alcotest.test_case "single join" `Quick test_single_join;
          Alcotest.test_case "grow sync" `Slow test_grow_sync;
          Alcotest.test_case "grow async" `Slow test_grow_async;
        ] );
      ( "broadcast",
        [
          Alcotest.test_case "reaches all (sync)" `Slow test_broadcast_reaches_all_sync;
          Alcotest.test_case "reaches all (async)" `Slow test_broadcast_reaches_all_async;
          Alcotest.test_case "dedup" `Slow test_broadcast_multiple_messages_dedup;
          Alcotest.test_case "single-cycle forward" `Slow test_forward_single_cycle_still_delivers;
          Alcotest.test_case "latency bounded" `Slow test_broadcast_latency_bounded_sync;
          Alcotest.test_case "broadcast storm" `Slow test_broadcast_storm;
          Alcotest.test_case "agreement survives reconfiguration" `Slow
            test_agreement_survives_reconfiguration;
        ] );
      ( "membership",
        [
          Alcotest.test_case "leave" `Slow test_leave;
          Alcotest.test_case "mass leave merges" `Slow test_mass_leave_merges;
          Alcotest.test_case "crash eviction" `Slow test_crash_eviction;
          Alcotest.test_case "partition tolerance" `Slow test_partitioned_minority_does_not_block;
          Alcotest.test_case "crash eviction (async)" `Slow test_crash_eviction_async;
        ] );
      ( "byzantine",
        [
          Alcotest.test_case "minority tolerated" `Slow test_byzantine_minority_broadcast_still_works;
          Alcotest.test_case "not evicted" `Slow test_byzantine_not_evicted;
        ] );
      ( "churn",
        [
          Alcotest.test_case "exchange metrics" `Slow test_exchange_metrics_recorded;
          QCheck_alcotest.to_alcotest prop_churn_preserves_invariants;
        ] );
      ( "walks",
        [
          Alcotest.test_case "walks select live vgroups" `Slow test_walk_selects_live_vgroups;
          Alcotest.test_case "walks spread" `Slow test_walk_spreads_over_vgroups;
          Alcotest.test_case "async walk certificates" `Slow test_async_walk_certificates_verified;
        ] );
      ( "grouping",
        [
          Alcotest.test_case "oversized splits" `Slow test_oversized_vgroups_eventually_split;
          Alcotest.test_case "byzantine join" `Slow test_byzantine_join;
          Alcotest.test_case "nonmember broadcast" `Quick test_broadcast_from_nonmember_rejected;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "clean run" `Slow test_monitor_clean_run;
          Alcotest.test_case "forced faults flagged" `Slow test_monitor_flags_forced_faults;
          Alcotest.test_case "duplicate delivery flagged" `Slow test_monitor_dup_delivery;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "saga spans + broadcast lineage" `Slow
            test_trace_spans_and_lineage;
        ] );
    ]
